/**
 * @file
 * Protocol face-off: the paper's full small-multiprocessor evaluation
 * on the three workloads (Sections 4-5), printed exhibit by exhibit.
 *
 * Usage: protocol_faceoff [--full]
 *   --full  use full-size (~3.2M reference) traces as in the paper;
 *           default is quarter-size for a fast run.
 */

#include <cstring>
#include <iostream>

#include "analysis/evaluation.hh"
#include "analysis/exhibits.hh"
#include "gen/workloads.hh"

int
main(int argc, char **argv)
{
    using namespace dirsim;

    const bool full_size =
        argc > 1 && std::strcmp(argv[1], "--full") == 0;

    const auto workloads = gen::standardWorkloads(full_size);
    std::cout << analysis::table3(
                     analysis::characterizeWorkloads(workloads))
                     .toString()
              << "\n";

    const analysis::Evaluation eval =
        analysis::evaluateWorkloads(workloads);

    std::cout << analysis::table4(eval).toString() << "\n";
    std::cout << analysis::renderFigure1(analysis::figure1(eval),
                                         5)
                     .toString()
              << "\n";
    std::cout << analysis::figure2(eval).toString() << "\n";
    std::cout << analysis::figure3(eval).toString() << "\n";
    std::cout << analysis::table5(eval).toString() << "\n";
    std::cout << analysis::figure5(eval).toString() << "\n";
    return 0;
}
