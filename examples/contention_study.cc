/**
 * @file
 * Contention study: driving the timed bus subsystem end to end.
 *
 * Walks through what the discrete-event bus adds over the paper's
 * static accounting:
 *
 *   1. The zero-contention anchor — with one CPU the timed run's bus
 *      cycles equal the static cost model exactly, integer for
 *      integer (the property tests/timing_test.cc enforces).
 *   2. Utilization and queueing delay as the CPU count grows, on the
 *      pipelined and the non-pipelined bus.
 *   3. The arbitration disciplines at a saturated bus: a per-CPU
 *      stall table showing fixed priority starving the high-index
 *      CPUs while FCFS and round-robin spread the wait.
 *
 * Usage: contention_study [maxCpus] [refsPerCpu]
 *        (maxCpus in [2, 32], default 8; refsPerCpu in
 *        [1000, 1000000], default 20000)
 */

#include <iostream>
#include <memory>
#include <vector>

#include "cli/parse.hh"
#include "coherence/inval_engine.hh"
#include "gen/workloads.hh"
#include "sim/cost_model.hh"
#include "stats/table.hh"
#include "timing/sweep.hh"
#include "timing/timed_bus.hh"
#include "timing/transactions.hh"

namespace
{

using namespace dirsim;

std::unique_ptr<coherence::CoherenceEngine>
invalEngine(unsigned units)
{
    coherence::InvalEngineConfig cfg;
    cfg.nUnits = units;
    return std::make_unique<coherence::InvalEngine>(cfg);
}

timing::TimedRun
runOne(sim::Scheme scheme, const timing::TimedBusModel &bus,
       timing::Discipline d, const gen::WorkloadConfig &workload)
{
    timing::TimedBusConfig cfg;
    cfg.scheme = scheme;
    cfg.bus = bus;
    cfg.discipline = d;
    timing::TimedBusSim sim(cfg,
                            invalEngine(workload.space.nProcesses));
    gen::WorkloadSource source(workload);
    return sim.run(source);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dirsim;

    unsigned max_cpus = 8;
    std::uint64_t refs_per_cpu = 20'000;
    if (argc > 1)
        max_cpus = cli::parseUnsignedInRange(argv[1], "maxCpus", 2, 32);
    if (argc > 2)
        refs_per_cpu = cli::parseUnsignedInRange(
            argv[2], "refsPerCpu", 1'000, 1'000'000);

    const auto pipe = timing::timedPipelinedBus();
    const auto nonpipe = timing::timedNonPipelinedBus();

    // 1. Zero-contention anchor: one CPU, timed == static, exactly.
    std::cout << "1. Zero-contention check (Dir0B, one CPU)\n";
    gen::WorkloadConfig solo = gen::scaledConfig(1, refs_per_cpu);
    const timing::TimedRun anchor = runOne(
        sim::Scheme::Dir0B, pipe, timing::Discipline::FCFS, solo);
    const std::uint64_t expected = timing::staticBusCycles(
        sim::Scheme::Dir0B, anchor.engine, pipe.costs, {});
    std::cout << "   timed bus cycles  " << anchor.busBusyCycles
              << "\n   static bus cycles " << expected << "  ["
              << (anchor.busBusyCycles == expected ? "exact match"
                                                   : "MISMATCH!")
              << "]\n   static model/ref  "
              << sim::computeCost(sim::Scheme::Dir0B, anchor.engine,
                                  pipe.costs, {})
                     .total()
              << "  timed/ref " << anchor.busCyclesPerRef() << "\n\n";

    // 2. Contention vs CPU count on both bus organisations.
    std::cout << "2. Dir0B under contention (FCFS)\n";
    std::vector<timing::TimedSweepPoint> points;
    std::vector<unsigned> counts;
    for (unsigned n = 2; n <= max_cpus; n *= 2)
        counts.push_back(n);
    for (const auto *bus : {&pipe, &nonpipe}) {
        for (const unsigned n : counts) {
            const gen::WorkloadConfig workload =
                gen::scaledConfig(n, refs_per_cpu * n);
            timing::TimedSweepPoint point;
            point.name = bus->costs.name + "@" + std::to_string(n);
            point.config.scheme = sim::Scheme::Dir0B;
            point.config.bus = *bus;
            point.engine = [units = workload.space.nProcesses] {
                return invalEngine(units);
            };
            point.source = [workload] {
                return std::make_unique<gen::WorkloadSource>(workload);
            };
            points.push_back(std::move(point));
        }
    }
    const auto runs = timing::runTimedSweep(points);

    std::vector<std::string> headers = {"Bus"};
    for (const unsigned n : counts)
        headers.push_back("n=" + std::to_string(n));
    stats::TextTable util("Bus utilization", headers);
    stats::TextTable slow(
        "Effective cycles per reference (CPU view, stall included)",
        headers);
    std::size_t r = 0;
    for (const auto *bus : {&pipe, &nonpipe}) {
        std::vector<std::string> urow = {bus->costs.name};
        std::vector<std::string> srow = {bus->costs.name};
        for (std::size_t c = 0; c < counts.size(); ++c, ++r) {
            urow.push_back(
                stats::TextTable::num(runs[r].busUtilization()));
            srow.push_back(stats::TextTable::num(
                runs[r].effectiveCyclesPerRef()));
        }
        util.addRow(urow);
        slow.addRow(srow);
    }
    std::cout << util.toString() << "\n"
              << slow.toString() << "\n";

    // 3. Disciplines at the largest machine: who eats the stall.
    std::cout << "3. Arbitration disciplines (WTI, " << max_cpus
              << " CPUs, pipelined bus)\n";
    const gen::WorkloadConfig big =
        gen::scaledConfig(max_cpus, refs_per_cpu * max_cpus);
    std::vector<std::string> dheaders = {"CPU"};
    std::vector<timing::TimedRun> druns;
    for (const auto d :
         {timing::Discipline::FCFS, timing::Discipline::RoundRobin,
          timing::Discipline::FixedPriority}) {
        druns.push_back(runOne(sim::Scheme::WTI, pipe, d, big));
        dheaders.push_back(druns.back().discipline);
    }
    stats::TextTable stalls("Per-CPU stall fraction", dheaders);
    for (unsigned c = 0; c < max_cpus; ++c) {
        std::vector<std::string> row = {std::to_string(c)};
        for (const auto &run : druns)
            row.push_back(
                stats::TextTable::num(run.cpus[c].stallFraction()));
        stalls.addRow(row);
    }
    std::cout << stalls.toString() << "\n";
    for (const auto &run : druns)
        std::cout << "   " << run.discipline << ": utilization "
                  << stats::TextTable::num(run.busUtilization())
                  << ", mean queue delay "
                  << stats::TextTable::num(run.meanQueueDelay())
                  << ", p95 "
                  << stats::TextTable::num(run.p95QueueDelay())
                  << " cycles\n";
    std::cout << "\nFixed priority starves the high-index CPUs; FCFS "
                 "and round-robin\nspread the same total stall "
                 "evenly.  Bus-busy cycles still match the\nstatic "
                 "model's aggregate for every run above.\n";
    return 0;
}
