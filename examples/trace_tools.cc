/**
 * @file
 * Trace tooling: generate, convert, inspect and simulate trace files.
 *
 * The library consumes any interleaved multiprocessor reference trace
 * through trace::RefSource; this tool shows the full round trip on
 * files so recorded traces from other tools can be plugged in.
 *
 * Usage:
 *   trace_tools gen <pops|thor|pero> <out.trc> [refs]
 *       Generate a synthetic workload into a binary trace file.
 *   trace_tools info <in.trc>
 *       Print Table-3-style characteristics of a binary trace.
 *   trace_tools dump <in.trc> [n]
 *       Print the first n (default 20) records as text.
 *   trace_tools sim <in.trc>
 *       Run the four-protocol evaluation on a binary trace.
 */

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "analysis/exhibits.hh"
#include "cli/parse.hh"
#include "coherence/dragon_engine.hh"
#include "coherence/inval_engine.hh"
#include "coherence/limited_engine.hh"
#include "gen/workloads.hh"
#include "sim/simulator.hh"
#include "trace/characterize.hh"
#include "trace/io.hh"

namespace
{

using namespace dirsim;

int
usage()
{
    std::cerr << "usage:\n"
              << "  trace_tools gen <pops|thor|pero> <out.trc> [refs]\n"
              << "  trace_tools info <in.trc>\n"
              << "  trace_tools dump <in.trc> [n]\n"
              << "  trace_tools sim <in.trc>\n";
    return 1;
}

int
cmdGen(const std::string &name, const std::string &path,
       std::uint64_t refs)
{
    gen::WorkloadConfig cfg;
    if (name == "pops")
        cfg = gen::popsConfig();
    else if (name == "thor")
        cfg = gen::thorConfig();
    else if (name == "pero")
        cfg = gen::peroConfig();
    else
        return usage();
    if (refs != 0)
        cfg.totalRefs = refs;

    const trace::MemoryTrace trace = gen::generateTrace(cfg);
    trace::saveBinaryFile(trace, path);
    std::cout << "wrote " << trace.size() << " records to " << path
              << "\n";
    return 0;
}

int
cmdInfo(const std::string &path)
{
    const trace::MemoryTrace trace = trace::loadBinaryFile(path);
    trace::MemoryTraceSource source(trace);
    const auto ch =
        trace::characterize(source, trace.meta().name);
    std::cout << "name:          " << ch.name << "\n"
              << "cpus:          " << trace.meta().nCpus << "\n"
              << "processes:     " << trace.meta().nProcesses << "\n"
              << "references:    " << ch.refs << "\n"
              << "instructions:  " << ch.instr << "\n"
              << "data reads:    " << ch.dataReads << "\n"
              << "data writes:   " << ch.dataWrites << "\n"
              << "system refs:   " << ch.system << "\n"
              << "lock spins:    " << ch.lockTestReads << "\n"
              << "unique blocks: " << ch.uniqueDataBlocks << "\n"
              << "shared blocks: " << ch.sharedDataBlocks << "\n"
              << "read/write:    " << ch.readWriteRatio() << "\n";
    return 0;
}

int
cmdDump(const std::string &path, std::size_t n)
{
    const trace::MemoryTrace trace = trace::loadBinaryFile(path);
    for (std::size_t i = 0; i < std::min(n, trace.size()); ++i) {
        const trace::TraceRecord &rec = trace[i];
        const char type = rec.isInstr() ? 'I'
                          : rec.isRead() ? 'R'
                                         : 'W';
        std::cout << i << ": cpu" << unsigned(rec.cpu) << " pid"
                  << rec.pid << ' ' << type << " 0x" << std::hex
                  << rec.addr << std::dec;
        if (rec.isSystem())
            std::cout << " [sys]";
        if (rec.isLockTest())
            std::cout << " [lock-test]";
        if (rec.isLockWrite())
            std::cout << " [lock-write]";
        std::cout << "\n";
    }
    return 0;
}

int
cmdSim(const std::string &path)
{
    const trace::MemoryTrace trace = trace::loadBinaryFile(path);
    const unsigned units =
        std::max(trace.meta().nProcesses, trace.meta().nCpus);
    if (units == 0 || units > 64) {
        std::cerr << "trace metadata reports " << units
                  << " sharing units; need 1..64\n";
        return 1;
    }

    sim::Simulator simulator;
    coherence::InvalEngineConfig icfg;
    icfg.nUnits = units;
    auto &inval = simulator.addEngine(
        std::make_unique<coherence::InvalEngine>(icfg));
    auto &dir1nb = simulator.addEngine(
        std::make_unique<coherence::LimitedEngine>(units, 1));
    auto &dragon = simulator.addEngine(
        std::make_unique<coherence::DragonEngine>(units));
    trace::MemoryTraceSource source(trace);
    simulator.run(source);

    analysis::Evaluation eval;
    analysis::TraceEvaluation te;
    te.trace = trace.meta().name;
    te.inval = inval.results();
    te.dir1nb = dir1nb.results();
    te.dragon = dragon.results();
    eval.average = te;
    eval.traces.push_back(std::move(te));

    std::cout << analysis::table4(eval).toString() << "\n"
              << analysis::figure2(eval).toString();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        if (argc < 3)
            return usage();
        const std::string cmd = argv[1];
        if (cmd == "gen" && argc >= 4) {
            const std::uint64_t refs =
                argc > 4 ? cli::parseUnsigned(argv[4], "gen refs") : 0;
            return cmdGen(argv[2], argv[3], refs);
        }
        if (cmd == "info")
            return cmdInfo(argv[2]);
        if (cmd == "dump") {
            const std::size_t n =
                argc > 3 ? cli::parseUnsigned(argv[3], "dump count")
                         : 20;
            return cmdDump(argv[2], n);
        }
        if (cmd == "sim")
            return cmdSim(argv[2]);
        return usage();
    } catch (const std::exception &err) {
        std::cerr << "error: " << err.what() << "\n";
        return 1;
    }
}
