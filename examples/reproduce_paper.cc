/**
 * @file
 * One-shot reproduction driver: runs the complete evaluation — every
 * table and figure of the paper plus the extension studies — and
 * writes each exhibit as both aligned text and CSV into an output
 * directory, so the whole paper can be regenerated (and plotted) with
 * a single command.
 *
 * Usage: reproduce_paper [outdir] [--full] [--jobs N]
 *   outdir   defaults to ./results
 *   --full   full-size (~3.2M reference) traces
 *   --jobs N fan simulation sweeps out over N worker threads
 *            (0 = one per hardware thread; default 1 = serial);
 *            parallel runs are bit-identical to serial ones
 *   --trace-cache-dir PATH    persist prepared traces as out-of-core
 *            store files under PATH and replay them streamed; a
 *            second run (even in another process) reuses the files
 *            and skips all generate/prepare work
 *   --trace-cache-budget MiB  disk-cache byte budget (default 4096)
 *   --stream-chunk-refs N     refs per streamed chunk (default
 *            1048576; smaller = lower replay RSS)
 *   --repo-stats   print trace-repository hit/miss/spill counters
 *            at the end of the run
 *   --no-fused     replay each scheme in its own sequential pass
 *            instead of the fused multi-scheme column walk (A/B
 *            hatch; exhibits are bit-identical either way)
 *   --no-multi     run each DiriNB configuration in its own
 *            LimitedEngine instead of collapsing a sweep's pointer
 *            counts into one shared-table MultiLimitedEngine (A/B
 *            hatch; exhibits are bit-identical either way)
 *   --schemes CSV  restrict the Section 6 DiriNB pointer sweep to
 *            the named configurations (dir1nb..dir8nb, in the order
 *            given); an unknown name is a hard error
 *   --no-direct-gen  build prepared traces through the legacy
 *            generateTrace + two-phase decode instead of the
 *            single-pass direct generate-prepare pipeline (A/B
 *            hatch; exhibits are bit-identical either way)
 *   --gen-chunk-refs N  data references per direct-pipeline pack
 *            chunk (default 65536)
 */

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "analysis/evaluation.hh"
#include "cli/parse.hh"
#include "analysis/exhibits.hh"
#include "analysis/analytical.hh"
#include "analysis/extensions.hh"
#include "analysis/system_perf.hh"
#include "directory/storage.hh"
#include "gen/workloads.hh"
#include "sim/trace_repo.hh"
#include "trace/store.hh"

namespace
{

using namespace dirsim;

std::filesystem::path outDir;

void
emit(const std::string &name, const stats::TextTable &table)
{
    std::cout << table.toString() << "\n";
    std::ofstream txt(outDir / (name + ".txt"));
    txt << table.toString();
    std::ofstream csv(outDir / (name + ".csv"));
    csv << table.toCsv();
    if (!txt || !csv)
        throw std::runtime_error("cannot write exhibit " + name);
}

} // namespace

int
main(int argc, char **argv)
{
    bool full_size = false;
    unsigned jobs = 1;
    std::string cacheDir;
    std::uint64_t cacheBudgetMiB = 4096;
    std::uint64_t streamChunkRefs = trace::kDefaultChunkRefs;
    bool repoStats = false;
    // Section 6 sweeps Dir1NB..Dir4NB by default (the paper's range);
    // --schemes replaces the list from the dirXnb vocabulary.
    std::vector<unsigned> sweepPointers = {1, 2, 3, 4};
    outDir = "results";
    const auto want = [&](int &a, const char *flag) -> const char * {
        if (a + 1 >= argc) {
            std::cerr << "error: " << flag << " requires a value\n";
            std::exit(2);
        }
        return argv[++a];
    };
    for (int a = 1; a < argc; ++a) {
        if (std::strcmp(argv[a], "--full") == 0) {
            full_size = true;
        } else if (std::strcmp(argv[a], "--jobs") == 0) {
            jobs = cli::parseUnsigned(want(a, "--jobs"), "--jobs");
        } else if (std::strncmp(argv[a], "--jobs=", 7) == 0) {
            jobs = cli::parseUnsigned(argv[a] + 7, "--jobs");
        } else if (std::strcmp(argv[a], "--trace-cache-dir") == 0) {
            cacheDir = want(a, "--trace-cache-dir");
        } else if (std::strcmp(argv[a], "--trace-cache-budget") ==
                   0) {
            cacheBudgetMiB = cli::parseUnsignedInRange(
                want(a, "--trace-cache-budget"),
                "--trace-cache-budget", 1, 16u * 1024 * 1024);
        } else if (std::strcmp(argv[a], "--stream-chunk-refs") == 0) {
            streamChunkRefs = cli::parseUnsignedInRange(
                want(a, "--stream-chunk-refs"), "--stream-chunk-refs",
                1, 1u << 31);
        } else if (std::strcmp(argv[a], "--repo-stats") == 0) {
            repoStats = true;
        } else if (std::strcmp(argv[a], "--no-fused") == 0) {
            // A/B escape hatch: sequential whole-stream replay per
            // engine instead of the fused multi-scheme column walk.
            // Results are bit-identical either way.
            analysis::setDefaultFusedReplay(false);
        } else if (std::strcmp(argv[a], "--no-multi") == 0) {
            // A/B escape hatch: independent LimitedEngines instead of
            // the shared-table multi-configuration collapse.  Results
            // are bit-identical either way.
            analysis::setDefaultMultiConfig(false);
        } else if (std::strcmp(argv[a], "--no-direct-gen") == 0) {
            // A/B escape hatch: the legacy two-pass cold path instead
            // of the single-pass direct generate-prepare pipeline.
            // Results are bit-identical either way.
            sim::TraceRepository::global().setDirectGen(false);
        } else if (std::strcmp(argv[a], "--gen-chunk-refs") == 0) {
            sim::TraceRepository::global().setDirectGenChunkRefs(
                cli::parseUnsignedInRange(want(a, "--gen-chunk-refs"),
                                          "--gen-chunk-refs", 1,
                                          1u << 31));
        } else if (std::strcmp(argv[a], "--schemes") == 0) {
            const std::vector<std::string> allowed = {
                "dir1nb", "dir2nb", "dir3nb", "dir4nb",
                "dir5nb", "dir6nb", "dir7nb", "dir8nb"};
            sweepPointers.clear();
            for (const std::string &name : cli::parseNameList(
                     want(a, "--schemes"), "--schemes", allowed))
                sweepPointers.push_back(
                    static_cast<unsigned>(name[3] - '0'));
        } else {
            outDir = argv[a];
        }
    }
    // Every evaluation below (including the ones inside the extension
    // studies) picks this up and fans out over the sweep engine.
    analysis::setDefaultEvalJobs(jobs);
    if (!cacheDir.empty()) {
        sim::DiskCacheConfig disk;
        disk.dir = cacheDir;
        disk.budgetBytes = cacheBudgetMiB * 1024 * 1024;
        disk.chunkRefs = streamChunkRefs;
        sim::TraceRepository::global().setDiskCache(disk);
        // Stream warm/spilled store files instead of materialising
        // prepared traces; results are bit-identical either way.
        analysis::setDefaultStreamReplay(true);
        std::cout << "Trace cache: " << cacheDir << " (budget "
                  << cacheBudgetMiB << " MiB, chunk "
                  << streamChunkRefs << " refs)\n";
    }
    std::filesystem::create_directories(outDir);
    std::cout << "Writing exhibits to " << outDir << "/ (sweep jobs: "
              << jobs << ") ...\n\n";
    const auto wall_start = std::chrono::steady_clock::now();

    const auto workloads = gen::standardWorkloads(full_size);

    emit("table1", analysis::table1());
    emit("table2", analysis::table2());
    emit("table3",
         analysis::table3(analysis::characterizeWorkloads(workloads)));

    const analysis::Evaluation eval =
        analysis::evaluateWorkloads(workloads);
    emit("table4", analysis::table4(eval));
    emit("figure1",
         analysis::renderFigure1(analysis::figure1(eval), 5));
    emit("figure2", analysis::figure2(eval));
    emit("figure3", analysis::figure3(eval));
    emit("table5", analysis::table5(eval));
    emit("figure4", analysis::figure4(eval));
    emit("figure5", analysis::figure5(eval));
    emit("sec51_overhead",
         analysis::section51(eval, {0.0, 1.0, 2.0, 4.0}));

    {
        analysis::EvalOptions opts;
        opts.dropLockTests = true;
        const analysis::Evaluation no_locks =
            analysis::evaluateWorkloads(workloads, opts);
        emit("sec52_spinlocks", analysis::section52(eval, no_locks));
    }

    emit("sec6_alternatives",
         analysis::renderSection6(analysis::section6(eval, 8.0), 8.0));
    emit("sec6_dirinb_sweep",
         analysis::limitedSweepTable(
             analysis::limitedSweep(workloads, sweepPointers),
             sweepPointers));
    emit("ext_directory_messages",
         analysis::renderDirectoryMessages(
             analysis::directoryMessageStudy(full_size)));

    // System limit (Section 5 closing paragraph).
    {
        std::vector<analysis::SystemEstimate> estimates;
        for (const auto &sc : analysis::schemeCosts(eval.average)) {
            estimates.push_back(analysis::systemEstimate(
                sc.pipelined, analysis::MachineParams{}));
        }
        emit("sec5_system_limit",
             analysis::renderSystemLimits(estimates, {4, 8, 16, 32}));
    }

    // Extension studies.
    emit("ext_scaling",
         analysis::renderScaling(analysis::scalingStudy({2, 4, 8, 16})));
    emit("ext_finite_cache",
         analysis::renderFiniteCache(analysis::finiteCacheStudy(
             {16 * 1024, 128 * 1024, 1024 * 1024}, full_size)));
    emit("ext_sharing_domain",
         analysis::renderSharingDomain(
             analysis::sharingDomainStudy(0.02, full_size)));
    emit("ext_network",
         analysis::renderNetwork(
             analysis::networkStudy({2, 4, 8, 16, 32, 64})));
    emit("ext_home_locality",
         analysis::renderHomeLocality(
             analysis::homeLocalityStudy({2, 4, 8, 16, 32})));
    emit("ext_analytical",
         analysis::renderAnalytical(
             analysis::analyticalStudy(workloads)));

    const double wall_s =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    std::cout << "Done: " << outDir << "/ contains every exhibit as "
              << ".txt and .csv (" << wall_s << " s wall clock, "
              << jobs << " sweep job" << (jobs == 1 ? "" : "s")
              << ")\n";
    if (repoStats)
        std::cout << "Repo stats: "
                  << sim::TraceRepository::global().stats().summary()
                  << "\n";
    return 0;
}
