/**
 * @file
 * Scalability study: the large-machine question the paper poses but
 * could not answer with 4-CPU ATUM traces.
 *
 * Sweeps the processor count with the generic scaled workload and
 * reports, per machine size:
 *   - bus cycles/reference for Dir1NB, Dir0B, DirnNB and Dragon;
 *   - the Figure-1 statistic (share of clean-block writes that
 *     invalidate at most one cache) — the paper's argument for
 *     limited-pointer directories stands or falls with it;
 *   - the DiriB pointer sweep at a realistic broadcast cost, showing
 *     where extra pointers stop paying off;
 *   - directory storage per memory block for the competing
 *     organisations at that scale.
 *
 * Usage: scalability_study [maxCpus]   (default 32, power of two)
 */

#include <iostream>
#include <vector>

#include "analysis/evaluation.hh"
#include "analysis/exhibits.hh"
#include "analysis/extensions.hh"
#include "bus/bus_model.hh"
#include "cli/parse.hh"
#include "directory/storage.hh"
#include "sim/cost_model.hh"
#include "stats/table.hh"

int
main(int argc, char **argv)
{
    using namespace dirsim;

    unsigned max_cpus = 32;
    if (argc > 1)
        max_cpus = cli::parseUnsignedInRange(argv[1], "maxCpus", 2, 64);

    std::vector<unsigned> counts;
    for (unsigned n = 2; n <= max_cpus; n *= 2)
        counts.push_back(n);

    std::cout << "Scaling the directory-scheme evaluation to "
              << max_cpus << " CPUs...\n\n";
    const auto points = analysis::scalingStudy(counts);
    std::cout << analysis::renderScaling(points).toString() << "\n";

    // DiriB pointer sweep at the largest machine.
    const gen::WorkloadConfig big =
        gen::scaledConfig(max_cpus, 100'000 * max_cpus);
    const analysis::Evaluation eval =
        analysis::evaluateWorkloads({big});
    const auto pipe = bus::standardBuses().pipelined;
    stats::TextTable sweep(
        "DiriB at " + std::to_string(max_cpus) +
            " CPUs (broadcast cost b = cycles to reach every cache)",
        {"i", "b=4", "b=" + std::to_string(max_cpus)});
    for (unsigned i : {1u, 2u, 4u, 8u}) {
        sim::CostOptions opts;
        opts.nPointers = i;
        opts.broadcastCost = 4.0;
        const double b4 = sim::computeCost(sim::Scheme::DirIB,
                                           eval.average.inval, pipe,
                                           opts)
                              .total();
        opts.broadcastCost = max_cpus;
        const double bn = sim::computeCost(sim::Scheme::DirIB,
                                           eval.average.inval, pipe,
                                           opts)
                              .total();
        sweep.addRow({std::to_string(i), stats::TextTable::num(b4),
                      stats::TextTable::num(bn)});
    }
    std::cout << sweep.toString() << "\n";

    // Storage comparison at the swept machine sizes.
    const auto storage =
        directory::storageTable(counts, directory::StorageParams{});
    std::vector<std::string> headers = {"Scheme"};
    for (unsigned n : counts)
        headers.push_back("n=" + std::to_string(n));
    stats::TextTable storage_table(
        "Directory storage (bits per memory block)", headers);
    for (const auto &row : storage) {
        std::vector<std::string> cells = {row.scheme};
        for (double bits : row.bitsPerBlock)
            cells.push_back(stats::TextTable::num(bits, 1));
        storage_table.addRow(cells);
    }
    std::cout << storage_table.toString();
    return 0;
}
