/**
 * @file
 * Quickstart: generate a small synthetic multiprocessor workload, run
 * the three coherence state engines over it, and print the paper's
 * headline comparison — bus cycles per memory reference for Dir1NB,
 * WTI, Dir0B and Dragon on both bus models.
 *
 * This is the minimal end-to-end use of the library: workload ->
 * simulator -> cost model -> table.
 */

#include <cstdio>
#include <iostream>

#include "analysis/evaluation.hh"
#include "analysis/exhibits.hh"
#include "gen/workloads.hh"

int
main()
{
    using namespace dirsim;

    // A quarter-size pops-like workload keeps this instant.
    gen::WorkloadConfig cfg = gen::popsConfig();
    cfg.totalRefs = 400'000;

    std::cout << "Simulating workload '" << cfg.name << "' ("
              << cfg.totalRefs << " refs, " << cfg.space.nCpus
              << " CPUs)...\n\n";

    const analysis::Evaluation eval =
        analysis::evaluateWorkloads({cfg});

    std::cout << analysis::table4(eval).toString() << "\n";
    std::cout << analysis::figure2(eval).toString() << "\n";

    const analysis::Figure1 fig1 = analysis::figure1(eval);
    std::printf("Writes to previously-clean blocks invalidating at "
                "most one cache: %.1f%%\n",
                100.0 * fig1.fracAtMostOne);
    return 0;
}
