/**
 * @file
 * Unit tests for the trace substrate: records, containers, I/O,
 * filters and the characteriser.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "trace/characterize.hh"
#include "trace/filter.hh"
#include "trace/io.hh"
#include "trace/record.hh"
#include "trace/trace.hh"
#include "gen/rng.hh"

namespace
{

using namespace dirsim::trace;

TraceRecord
makeRecord(std::uint8_t cpu, std::uint16_t pid, RefType type,
           std::uint64_t addr, std::uint8_t flags = FlagNone)
{
    TraceRecord rec;
    rec.cpu = cpu;
    rec.pid = pid;
    rec.type = type;
    rec.addr = addr;
    rec.flags = flags;
    return rec;
}

MemoryTrace
makeSampleTrace()
{
    TraceMeta meta;
    meta.name = "sample";
    meta.nCpus = 2;
    meta.nProcesses = 3;
    meta.lockAddrs = {0x1000, 0x2000};
    MemoryTrace trace(meta);
    trace.append(makeRecord(0, 0, RefType::Instr, 0x400));
    trace.append(makeRecord(1, 1, RefType::Read, 0x1000, FlagLockTest));
    trace.append(makeRecord(0, 0, RefType::Write, 0x8000));
    trace.append(
        makeRecord(1, 2, RefType::Read, 0x9000, FlagSystem));
    trace.append(
        makeRecord(0, 1, RefType::Write, 0x1000, FlagLockWrite));
    return trace;
}

TEST(Record, FlagPredicates)
{
    TraceRecord rec = makeRecord(0, 0, RefType::Read, 0x10,
                                 FlagSystem | FlagLockTest);
    EXPECT_TRUE(rec.isRead());
    EXPECT_TRUE(rec.isData());
    EXPECT_FALSE(rec.isWrite());
    EXPECT_FALSE(rec.isInstr());
    EXPECT_TRUE(rec.isSystem());
    EXPECT_TRUE(rec.isLockTest());
    EXPECT_FALSE(rec.isLockWrite());
}

TEST(Record, InstrIsNotData)
{
    TraceRecord rec = makeRecord(0, 0, RefType::Instr, 0x10);
    EXPECT_TRUE(rec.isInstr());
    EXPECT_FALSE(rec.isData());
    EXPECT_FALSE(rec.isRead());
}

TEST(Record, Equality)
{
    TraceRecord a = makeRecord(1, 2, RefType::Write, 0x30);
    TraceRecord b = a;
    EXPECT_EQ(a, b);
    b.addr = 0x31;
    EXPECT_FALSE(a == b);
}

TEST(MemoryTraceTest, AppendAndIndex)
{
    MemoryTrace trace = makeSampleTrace();
    ASSERT_EQ(trace.size(), 5u);
    EXPECT_EQ(trace[0].type, RefType::Instr);
    EXPECT_EQ(trace[4].flags, FlagLockWrite);
    EXPECT_FALSE(trace.empty());
}

TEST(MemoryTraceTest, SourceReplayAndRewind)
{
    MemoryTrace trace = makeSampleTrace();
    MemoryTraceSource source(trace);
    TraceRecord rec;
    std::size_t count = 0;
    while (source.next(rec))
        ++count;
    EXPECT_EQ(count, trace.size());
    EXPECT_FALSE(source.next(rec));

    source.rewind();
    ASSERT_TRUE(source.next(rec));
    EXPECT_EQ(rec, trace[0]);
}

TEST(MemoryTraceTest, FillFromWithLimit)
{
    MemoryTrace trace = makeSampleTrace();
    MemoryTraceSource source(trace);
    MemoryTrace copy;
    EXPECT_EQ(copy.fillFrom(source, 3), 3u);
    EXPECT_EQ(copy.size(), 3u);
    // The source continues where it stopped.
    MemoryTrace rest;
    EXPECT_EQ(rest.fillFrom(source), 2u);
}

TEST(TraceIo, BinaryRoundTrip)
{
    const MemoryTrace trace = makeSampleTrace();
    std::stringstream buffer;
    writeBinary(trace, buffer);
    const MemoryTrace loaded = readBinary(buffer);

    EXPECT_EQ(loaded.meta().name, "sample");
    EXPECT_EQ(loaded.meta().nCpus, 2u);
    EXPECT_EQ(loaded.meta().nProcesses, 3u);
    EXPECT_EQ(loaded.meta().lockAddrs, trace.meta().lockAddrs);
    ASSERT_EQ(loaded.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(loaded[i], trace[i]) << "record " << i;
}

TEST(TraceIo, TextRoundTrip)
{
    const MemoryTrace trace = makeSampleTrace();
    std::stringstream buffer;
    writeText(trace, buffer);
    const MemoryTrace loaded = readText(buffer);

    EXPECT_EQ(loaded.meta().name, "sample");
    EXPECT_EQ(loaded.meta().lockAddrs, trace.meta().lockAddrs);
    ASSERT_EQ(loaded.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(loaded[i], trace[i]) << "record " << i;
}

TEST(TraceIo, BinaryRejectsBadMagic)
{
    std::stringstream buffer;
    buffer << "NOPE garbage";
    EXPECT_THROW(readBinary(buffer), std::runtime_error);
}

TEST(TraceIo, BinaryRejectsTruncation)
{
    const MemoryTrace trace = makeSampleTrace();
    std::stringstream buffer;
    writeBinary(trace, buffer);
    std::string bytes = buffer.str();
    bytes.resize(bytes.size() - 7);
    std::stringstream truncated(bytes);
    EXPECT_THROW(readBinary(truncated), std::runtime_error);
}

TEST(TraceIo, BinaryRejectsPayloadCorruption)
{
    // Flip one byte of a record's address: the structure still
    // parses, so only the digest footer can catch it.
    const MemoryTrace trace = makeSampleTrace();
    std::stringstream buffer;
    writeBinary(trace, buffer);
    std::string bytes = buffer.str();
    bytes[bytes.size() - 20] ^= 0x01;
    std::stringstream corrupt(bytes);
    try {
        readBinary(corrupt);
        FAIL() << "corrupt payload accepted";
    } catch (const std::runtime_error &err) {
        EXPECT_NE(std::string(err.what()).find("digest"),
                  std::string::npos)
            << err.what();
    }
}

TEST(TraceIo, BinaryRejectsTrailingBytes)
{
    const MemoryTrace trace = makeSampleTrace();
    std::stringstream buffer;
    writeBinary(trace, buffer);
    buffer << "junk";
    try {
        readBinary(buffer);
        FAIL() << "trailing bytes accepted";
    } catch (const std::runtime_error &err) {
        EXPECT_NE(std::string(err.what()).find("trailing"),
                  std::string::npos)
            << err.what();
    }
}

TEST(TraceIo, BinaryReadsVersion1Files)
{
    // A v1 file is a v2 file minus the digest footer, with the
    // version field saying 1; the compat path must still read it.
    const MemoryTrace trace = makeSampleTrace();
    std::stringstream buffer;
    writeBinary(trace, buffer);
    std::string bytes = buffer.str();
    bytes[4] = 1;
    bytes.resize(bytes.size() - 8);
    std::stringstream v1(bytes);
    const MemoryTrace loaded = readBinary(v1);
    ASSERT_EQ(loaded.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(loaded[i], trace[i]) << "record " << i;
}

TEST(TraceIo, BinaryRejectsUnsupportedVersion)
{
    const MemoryTrace trace = makeSampleTrace();
    std::stringstream buffer;
    writeBinary(trace, buffer);
    std::string bytes = buffer.str();
    bytes[4] = 3;
    std::stringstream v3(bytes);
    try {
        readBinary(v3);
        FAIL() << "future version accepted";
    } catch (const std::runtime_error &err) {
        EXPECT_NE(std::string(err.what()).find("version 3"),
                  std::string::npos)
            << err.what();
    }
}

TEST(TraceIo, BinaryRejectsOversizedNameLength)
{
    // Patch the name-length field to a multi-gigabyte claim; the cap
    // must reject it before any allocation, not after.
    const MemoryTrace trace = makeSampleTrace();
    std::stringstream buffer;
    writeBinary(trace, buffer);
    std::string bytes = buffer.str();
    bytes[16] = static_cast<char>(0xff);
    bytes[17] = static_cast<char>(0xff);
    bytes[18] = static_cast<char>(0xff);
    bytes[19] = static_cast<char>(0x7f);
    std::stringstream bad(bytes);
    try {
        readBinary(bad);
        FAIL() << "oversized name length accepted";
    } catch (const std::runtime_error &err) {
        EXPECT_NE(std::string(err.what()).find("name length"),
                  std::string::npos)
            << err.what();
    }
}

TEST(TraceIo, TextRejectsBadType)
{
    std::stringstream buffer;
    buffer << "0 0 Q 0x10 0\n";
    EXPECT_THROW(readText(buffer), std::runtime_error);
}

TEST(TraceIo, EmptyTraceRoundTrips)
{
    MemoryTrace trace;
    trace.meta().name = "empty";
    std::stringstream buffer;
    writeBinary(trace, buffer);
    const MemoryTrace loaded = readBinary(buffer);
    EXPECT_EQ(loaded.size(), 0u);
    EXPECT_EQ(loaded.meta().name, "empty");
}

TEST(Filter, DropLockTests)
{
    MemoryTrace trace = makeSampleTrace();
    MemoryTraceSource inner(trace);
    FilteredSource filtered = dropLockTests(inner);
    TraceRecord rec;
    std::size_t count = 0;
    while (filtered.next(rec)) {
        EXPECT_FALSE(rec.isLockTest());
        ++count;
    }
    EXPECT_EQ(count, 4u); // one lock-test read dropped
}

TEST(Filter, DropInstructions)
{
    MemoryTrace trace = makeSampleTrace();
    MemoryTraceSource inner(trace);
    FilteredSource filtered = dropInstructions(inner);
    TraceRecord rec;
    std::size_t count = 0;
    while (filtered.next(rec)) {
        EXPECT_TRUE(rec.isData());
        ++count;
    }
    EXPECT_EQ(count, 4u);
}

TEST(Filter, DropSystemRefs)
{
    MemoryTrace trace = makeSampleTrace();
    MemoryTraceSource inner(trace);
    FilteredSource filtered = dropSystemRefs(inner);
    TraceRecord rec;
    std::size_t count = 0;
    while (filtered.next(rec)) {
        EXPECT_FALSE(rec.isSystem());
        ++count;
    }
    EXPECT_EQ(count, 4u);
}

TEST(Filter, RewindRestartsUpstream)
{
    MemoryTrace trace = makeSampleTrace();
    MemoryTraceSource inner(trace);
    FilteredSource filtered = dropInstructions(inner);
    TraceRecord rec;
    while (filtered.next(rec)) {
    }
    filtered.rewind();
    std::size_t count = 0;
    while (filtered.next(rec))
        ++count;
    EXPECT_EQ(count, 4u);
}

TEST(Characterize, CountsByKind)
{
    MemoryTrace trace = makeSampleTrace();
    MemoryTraceSource source(trace);
    const TraceCharacteristics ch = characterize(source, "sample");
    EXPECT_EQ(ch.refs, 5u);
    EXPECT_EQ(ch.instr, 1u);
    EXPECT_EQ(ch.dataReads, 2u);
    EXPECT_EQ(ch.dataWrites, 2u);
    EXPECT_EQ(ch.system, 1u);
    EXPECT_EQ(ch.user, 4u);
    EXPECT_EQ(ch.lockTestReads, 1u);
    EXPECT_DOUBLE_EQ(ch.readWriteRatio(), 1.0);
    EXPECT_DOUBLE_EQ(ch.lockTestReadFrac(), 0.5);
}

TEST(Characterize, SharedBlockDetection)
{
    MemoryTrace trace;
    // Block 0x100/16 touched by pids 1 and 2; block 0x200/16 only by
    // pid 1.
    trace.append(makeRecord(0, 1, RefType::Read, 0x100));
    trace.append(makeRecord(1, 2, RefType::Write, 0x104));
    trace.append(makeRecord(0, 1, RefType::Read, 0x200));
    MemoryTraceSource source(trace);
    const TraceCharacteristics ch = characterize(source, "t");
    EXPECT_EQ(ch.uniqueDataBlocks, 2u);
    EXPECT_EQ(ch.sharedDataBlocks, 1u);
    EXPECT_EQ(ch.refsToSharedBlocks, 2u);
}

TEST(Characterize, RatioGuardsAgainstZeroWrites)
{
    MemoryTrace trace;
    trace.append(makeRecord(0, 0, RefType::Read, 0x10));
    MemoryTraceSource source(trace);
    const TraceCharacteristics ch = characterize(source, "t");
    EXPECT_DOUBLE_EQ(ch.readWriteRatio(), 0.0);
}

TEST(Characterize, BlockSizeMatters)
{
    MemoryTrace trace;
    trace.append(makeRecord(0, 1, RefType::Read, 0x100));
    trace.append(makeRecord(0, 2, RefType::Read, 0x108));
    {
        MemoryTraceSource source(trace);
        // 16-byte blocks: same block, shared.
        EXPECT_EQ(characterize(source, "t", 16).sharedDataBlocks, 1u);
    }
    {
        MemoryTraceSource source(trace);
        // 8-byte blocks: distinct blocks, no sharing.
        EXPECT_EQ(characterize(source, "t", 8).sharedDataBlocks, 0u);
    }
}

} // namespace

namespace
{

using namespace dirsim::trace;

/** Parser robustness: random garbage must throw, never crash. */
TEST(TraceIoFuzz, TextParserSurvivesGarbage)
{
    dirsim::gen::Rng rng(0xFADE);
    const std::string alphabet =
        "0123456789abcdefxIRW# \t\n\"-+.,";
    for (int trial = 0; trial < 500; ++trial) {
        std::string garbage;
        const std::size_t len = rng.nextBelow(200);
        for (std::size_t i = 0; i < len; ++i)
            garbage += alphabet[rng.nextBelow(alphabet.size())];
        std::stringstream is(garbage);
        try {
            const MemoryTrace trace = readText(is);
            // Parsed cleanly: every record must be well-formed.
            for (std::size_t i = 0; i < trace.size(); ++i) {
                EXPECT_LE(static_cast<unsigned>(trace[i].type),
                          static_cast<unsigned>(RefType::Write));
            }
        } catch (const std::runtime_error &) {
            // Rejection is fine; crashing is not.
        }
    }
}

TEST(TraceIoFuzz, BinaryParserSurvivesBitFlips)
{
    // Serialise a small trace, flip random bytes, and reload: the
    // reader must either parse or throw, never crash or hang.
    dirsim::gen::Rng rng(0xD00D);
    MemoryTrace trace;
    trace.meta().name = "fuzz";
    for (int i = 0; i < 20; ++i) {
        TraceRecord rec;
        rec.cpu = static_cast<std::uint8_t>(i % 4);
        rec.pid = static_cast<std::uint16_t>(i % 3);
        rec.type = static_cast<RefType>(i % 3);
        rec.addr = 0x1000 + 16 * i;
        trace.append(rec);
    }
    std::stringstream buffer;
    writeBinary(trace, buffer);
    const std::string golden = buffer.str();

    for (int trial = 0; trial < 500; ++trial) {
        std::string bytes = golden;
        const std::size_t flips = 1 + rng.nextBelow(4);
        for (std::size_t f = 0; f < flips; ++f) {
            const std::size_t pos = rng.nextBelow(bytes.size());
            bytes[pos] = static_cast<char>(rng.nextBelow(256));
        }
        std::stringstream is(bytes);
        try {
            const MemoryTrace loaded = readBinary(is);
            for (std::size_t i = 0; i < loaded.size(); ++i) {
                EXPECT_LE(static_cast<unsigned>(loaded[i].type),
                          static_cast<unsigned>(RefType::Write));
            }
        } catch (const std::runtime_error &) {
            // Rejection is the expected failure mode; the reader
            // bounds its preallocation, so corrupt record counts can
            // never demand pathological memory.
        }
    }
}

} // namespace
