/**
 * @file
 * Property tests for util::FlatMap / util::FlatSet.
 *
 * The flat tables back every per-block hot structure, so they are
 * checked against the standard containers under long randomized
 * operation sequences — insert, erase (tombstones), re-insert
 * (tombstone reuse), clear (capacity-preserving) and reserve
 * (rehash) — with key distributions chosen to stress probing:
 * uniform, sequential (block ids), and strided/clustered.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/flat_map.hh"
#include "util/flat_set.hh"

namespace
{

using dirsim::util::FlatMap;
using dirsim::util::FlatSet;

/** Key generators stressing different probe patterns. */
std::uint64_t
drawKey(std::mt19937_64 &rng, int mode, std::uint64_t range)
{
    switch (mode) {
      case 0: // Uniform over a small range: heavy key reuse.
        return rng() % range;
      case 1: // Sequential-ish: what block ids look like.
        return (rng() % range) + 0x1000;
      default: // Strided clusters: worst case for identity hashing.
        return (rng() % range) * 4096;
    }
}

TEST(FlatMap, MatchesUnorderedMapUnderRandomizedOps)
{
    for (int mode = 0; mode < 3; ++mode) {
        std::mt19937_64 rng(0x15CA1988u + mode);
        FlatMap<std::uint64_t, std::uint64_t> flat;
        std::unordered_map<std::uint64_t, std::uint64_t> ref;

        for (int op = 0; op < 200000; ++op) {
            const std::uint64_t key = drawKey(rng, mode, 4096);
            const unsigned action = rng() % 100;
            if (action < 55) {
                // tryEmplace + mutate, exactly like the engines do.
                auto emplaced = flat.tryEmplace(key);
                auto [it, inserted] = ref.try_emplace(key, 0);
                ASSERT_EQ(emplaced.inserted, inserted);
                ASSERT_EQ(emplaced.value, it->second);
                emplaced.value += op;
                it->second += op;
            } else if (action < 75) {
                ASSERT_EQ(flat.erase(key), ref.erase(key) != 0);
            } else if (action < 90) {
                const auto *found = flat.find(key);
                const auto it = ref.find(key);
                ASSERT_EQ(found != nullptr, it != ref.end());
                if (found)
                    ASSERT_EQ(*found, it->second);
                ASSERT_EQ(flat.contains(key), it != ref.end());
            } else if (action < 95) {
                flat[key] = op;
                ref[key] = op;
            } else if (action == 95) {
                // Rare: capacity-preserving clear.
                const std::size_t cap = flat.capacity();
                flat.clear();
                ref.clear();
                ASSERT_EQ(flat.capacity(), cap);
                ASSERT_TRUE(flat.empty());
            } else if (action == 96) {
                flat.reserve(rng() % 10000);
            }
            ASSERT_EQ(flat.size(), ref.size());
        }

        // Full-content equality, both directions.
        std::size_t visited = 0;
        flat.forEach([&](std::uint64_t k, std::uint64_t v) {
            ++visited;
            auto it = ref.find(k);
            ASSERT_NE(it, ref.end());
            ASSERT_EQ(v, it->second);
        });
        ASSERT_EQ(visited, ref.size());
        for (const auto &[k, v] : ref) {
            const auto *found = flat.find(k);
            ASSERT_NE(found, nullptr);
            ASSERT_EQ(*found, v);
        }
    }
}

TEST(FlatSet, MatchesUnorderedSetUnderRandomizedOps)
{
    for (int mode = 0; mode < 3; ++mode) {
        std::mt19937_64 rng(0xA11CEu + mode);
        FlatSet<std::uint64_t> flat;
        std::unordered_set<std::uint64_t> ref;

        for (int op = 0; op < 200000; ++op) {
            const std::uint64_t key = drawKey(rng, mode, 4096);
            const unsigned action = rng() % 100;
            if (action < 55) {
                ASSERT_EQ(flat.insert(key), ref.insert(key).second);
            } else if (action < 80) {
                ASSERT_EQ(flat.erase(key), ref.erase(key) != 0);
            } else if (action < 95) {
                ASSERT_EQ(flat.contains(key), ref.count(key) != 0);
            } else if (action == 95) {
                const std::size_t cap = flat.capacity();
                flat.clear();
                ref.clear();
                ASSERT_EQ(flat.capacity(), cap);
            } else if (action == 96) {
                flat.reserve(rng() % 10000);
            }
            ASSERT_EQ(flat.size(), ref.size());
        }

        std::size_t visited = 0;
        flat.forEach([&](std::uint64_t k) {
            ++visited;
            ASSERT_TRUE(ref.count(k) != 0);
        });
        ASSERT_EQ(visited, ref.size());
    }
}

/**
 * Tombstone reuse: erase/re-insert cycles over a fixed key set must
 * not grow the table — the freed slots are found on the probe path
 * and recycled.
 */
TEST(FlatMap, TombstoneReuseDoesNotGrowTable)
{
    FlatMap<std::uint64_t, int> flat;
    for (std::uint64_t k = 0; k < 64; ++k)
        flat[k] = static_cast<int>(k);
    const std::size_t cap = flat.capacity();
    for (int cycle = 0; cycle < 10000; ++cycle) {
        const std::uint64_t k = cycle % 64;
        ASSERT_TRUE(flat.erase(k));
        ASSERT_TRUE(flat.tryEmplace(k).inserted);
        flat[k] = cycle;
    }
    EXPECT_EQ(flat.capacity(), cap);
    EXPECT_EQ(flat.size(), 64u);
}

TEST(FlatSet, TombstoneReuseDoesNotGrowTable)
{
    FlatSet<std::uint64_t> flat;
    for (std::uint64_t k = 0; k < 64; ++k)
        flat.insert(k);
    const std::size_t cap = flat.capacity();
    for (int cycle = 0; cycle < 10000; ++cycle) {
        const std::uint64_t k = cycle % 64;
        ASSERT_TRUE(flat.erase(k));
        ASSERT_TRUE(flat.insert(k));
    }
    EXPECT_EQ(flat.capacity(), cap);
    EXPECT_EQ(flat.size(), 64u);
}

/** Values with heap resources survive rehash and reset on reuse. */
TEST(FlatMap, VectorValuesAcrossRehashEraseAndClear)
{
    FlatMap<std::uint64_t, std::vector<int>> flat;
    for (std::uint64_t k = 0; k < 1000; ++k)
        flat[k].push_back(static_cast<int>(k));
    for (std::uint64_t k = 0; k < 1000; ++k) {
        const auto *v = flat.find(k);
        ASSERT_NE(v, nullptr);
        ASSERT_EQ(v->size(), 1u);
        ASSERT_EQ((*v)[0], static_cast<int>(k));
    }
    // Erase resets the value; a fresh tryEmplace sees an empty vector.
    ASSERT_TRUE(flat.erase(7));
    auto emplaced = flat.tryEmplace(7);
    ASSERT_TRUE(emplaced.inserted);
    EXPECT_TRUE(emplaced.value.empty());
    // clear() keeps capacity; reused slots also start empty.
    flat.clear();
    EXPECT_TRUE(flat.empty());
    auto again = flat.tryEmplace(3);
    ASSERT_TRUE(again.inserted);
    EXPECT_TRUE(again.value.empty());
}

TEST(FlatMap, ReserveMakesInsertsRehashFree)
{
    FlatMap<std::uint64_t, int> flat;
    flat.reserve(100000);
    const std::size_t cap = flat.capacity();
    for (std::uint64_t k = 0; k < 100000; ++k)
        flat[k] = 1;
    EXPECT_EQ(flat.capacity(), cap);
}

} // namespace
