/**
 * @file
 * Tests for the parallel sweep engine and its supporting fixes.
 *
 * The central property: a sweep fanned out across worker threads is
 * *bit-identical* to running the same points serially — same event
 * counts, same histograms, same auxiliary counters, for every
 * protocol engine.  Alongside: thread-pool basics, submission-ordered
 * collection, error propagation, the fail-clean Simulator capacity
 * check, and the text-trace range-check regression.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "analysis/evaluation.hh"
#include "coherence/berkeley_engine.hh"
#include "coherence/dragon_engine.hh"
#include "coherence/inval_engine.hh"
#include "coherence/limited_engine.hh"
#include "gen/workload.hh"
#include "gen/workloads.hh"
#include "sim/simulator.hh"
#include "sim/sweep.hh"
#include "sim/thread_pool.hh"
#include "trace/io.hh"
#include "trace/trace.hh"

namespace
{

using namespace dirsim;

/** The protocol engines under test, buildable by name. */
const std::vector<std::string> protocolNames = {
    "inval", "dir1nb", "dir2nb", "dragon", "berkeley"};

std::unique_ptr<coherence::CoherenceEngine>
makeEngine(const std::string &protocol, unsigned units)
{
    if (protocol == "inval") {
        coherence::InvalEngineConfig cfg;
        cfg.nUnits = units;
        return std::make_unique<coherence::InvalEngine>(cfg);
    }
    if (protocol == "dir1nb")
        return std::make_unique<coherence::LimitedEngine>(units, 1);
    if (protocol == "dir2nb")
        return std::make_unique<coherence::LimitedEngine>(units, 2);
    if (protocol == "dragon")
        return std::make_unique<coherence::DragonEngine>(units);
    if (protocol == "berkeley")
        return std::make_unique<coherence::BerkeleyEngine>(units);
    throw std::logic_error("unknown protocol " + protocol);
}

/** Small but non-trivial versions of the three standard workloads. */
std::vector<gen::WorkloadConfig>
smallWorkloads()
{
    auto cfgs = gen::standardWorkloads();
    for (auto &cfg : cfgs)
        cfg.totalRefs = 40'000;
    return cfgs;
}

TEST(ThreadPoolTest, RunsEveryTask)
{
    sim::ThreadPool pool(4);
    EXPECT_EQ(pool.numThreads(), 4u);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 100);
}

/**
 * Tasks must not throw (thread_pool.hh's contract).  A task that does
 * must die loudly — message on stderr, then abort — instead of the
 * bare std::terminate an escaping exception used to trigger.
 */
TEST(ThreadPoolDeathTest, ThrowingTaskAbortsWithMessage)
{
    EXPECT_DEATH(
        {
            sim::ThreadPool pool(1);
            pool.submit(
                [] { throw std::runtime_error("boom"); });
            pool.wait();
        },
        "task threw 'boom'; tasks must not throw");
}

TEST(ThreadPoolTest, WaitIsReusable)
{
    sim::ThreadPool pool(2);
    std::atomic<int> counter{0};
    pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 1);
    pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 2);
}

TEST(RunOrderedTest, ZeroTasksReturnEmpty)
{
    const std::vector<std::function<int()>> tasks;
    EXPECT_TRUE(sim::runOrdered<int>(4, tasks).empty());
}

/** More workers than tasks: results still land in submission order. */
TEST(RunOrderedTest, MoreJobsThanTasks)
{
    std::vector<std::function<int()>> tasks;
    for (int i = 0; i < 3; ++i)
        tasks.push_back([i] { return i * 10; });
    const std::vector<int> results = sim::runOrdered<int>(8, tasks);
    ASSERT_EQ(results.size(), 3u);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(results[static_cast<std::size_t>(i)], i * 10);
}

/**
 * When several tasks throw, the earliest-submitted failure is the one
 * rethrown — not whichever completed first — and only after every
 * task has run.
 */
TEST(RunOrderedTest, RethrowsEarliestSubmittedFailure)
{
    std::atomic<int> ran{0};
    std::vector<std::function<int()>> tasks;
    tasks.push_back([&ran] {
        ++ran;
        return 0;
    });
    tasks.push_back([&ran]() -> int {
        ++ran;
        throw std::runtime_error("first failure");
    });
    tasks.push_back([&ran]() -> int {
        ++ran;
        throw std::logic_error("second failure");
    });
    tasks.push_back([&ran] {
        ++ran;
        return 3;
    });
    try {
        sim::runOrdered<int>(2, tasks);
        FAIL() << "expected the earliest failure to be rethrown";
    } catch (const std::runtime_error &err) {
        EXPECT_STREQ(err.what(), "first failure");
    }
    EXPECT_EQ(ran.load(), 4);
}

/**
 * Parallel sweep (15 points across 8 workers) versus the serial
 * Simulator path, for every protocol engine.  Each workload is
 * materialised once and shared read-only by its five protocol jobs.
 */
TEST(SweepTest, BitIdenticalToSerialForEveryProtocol)
{
    const auto cfgs = smallWorkloads();

    // Serial reference: one Simulator per workload carrying all the
    // protocol engines in one pass.
    std::vector<std::vector<coherence::EngineResults>> serial;
    for (const auto &cfg : cfgs) {
        sim::Simulator simulator;
        for (const auto &protocol : protocolNames)
            simulator.addEngine(
                makeEngine(protocol, cfg.space.nProcesses));
        gen::WorkloadSource source(cfg);
        simulator.run(source);
        std::vector<coherence::EngineResults> results;
        for (std::size_t e = 0; e < simulator.numEngines(); ++e)
            results.push_back(simulator.engine(e).results());
        serial.push_back(std::move(results));
    }

    // Parallel: one job per (workload, protocol), replaying a shared
    // immutable trace, across 8 worker threads.
    std::vector<trace::MemoryTrace> traces;
    for (const auto &cfg : cfgs)
        traces.push_back(gen::generateTrace(cfg));

    sim::SweepRunner runner(8);
    EXPECT_EQ(runner.jobs(), 8u);
    for (std::size_t c = 0; c < cfgs.size(); ++c) {
        for (const auto &protocol : protocolNames) {
            sim::SweepPoint point;
            point.name = cfgs[c].name + "/" + protocol;
            point.engines = [protocol,
                             units = cfgs[c].space.nProcesses] {
                std::vector<
                    std::unique_ptr<coherence::CoherenceEngine>>
                    engines;
                engines.push_back(makeEngine(protocol, units));
                return engines;
            };
            point.source = [trace = &traces[c]] {
                return std::make_unique<trace::MemoryTraceSource>(
                    *trace);
            };
            runner.add(std::move(point));
        }
    }
    ASSERT_EQ(runner.numPoints(), cfgs.size() * protocolNames.size());
    const auto results = runner.run();

    ASSERT_EQ(results.size(), cfgs.size() * protocolNames.size());
    for (std::size_t c = 0; c < cfgs.size(); ++c) {
        for (std::size_t p = 0; p < protocolNames.size(); ++p) {
            const auto &res = results[c * protocolNames.size() + p];
            // Submission-ordered output.
            EXPECT_EQ(res.name,
                      cfgs[c].name + "/" + protocolNames[p]);
            EXPECT_EQ(res.refs, cfgs[c].totalRefs);
            ASSERT_EQ(res.engines.size(), 1u);
            EXPECT_TRUE(res.engines[0] == serial[c][p])
                << "parallel results diverged for " << res.name;
        }
    }
}

/**
 * A job that regenerates its WorkloadSource from the seed must match
 * one that replays the materialised trace.
 */
TEST(SweepTest, RegeneratedSourceMatchesReplayedTrace)
{
    const gen::WorkloadConfig cfg = smallWorkloads()[0];
    const trace::MemoryTrace trace = gen::generateTrace(cfg);

    sim::SweepRunner runner(4);
    for (const bool regenerate : {false, true}) {
        sim::SweepPoint point;
        point.name = regenerate ? "regen" : "replay";
        point.engines = [units = cfg.space.nProcesses] {
            std::vector<std::unique_ptr<coherence::CoherenceEngine>>
                engines;
            engines.push_back(makeEngine("inval", units));
            return engines;
        };
        if (regenerate) {
            point.source = [cfg] {
                return std::make_unique<gen::WorkloadSource>(cfg);
            };
        } else {
            point.source = [trace = &trace] {
                return std::make_unique<trace::MemoryTraceSource>(
                    *trace);
            };
        }
        runner.add(std::move(point));
    }
    const auto results = runner.run();
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].engines[0] == results[1].engines[0]);
}

TEST(SweepTest, PropagatesJobFailure)
{
    const gen::WorkloadConfig cfg = smallWorkloads()[0];
    sim::SweepRunner runner(2);
    sim::SweepPoint point;
    point.name = "too-few-units";
    point.engines = [] {
        std::vector<std::unique_ptr<coherence::CoherenceEngine>>
            engines;
        // Fewer units than the workload's process count.
        engines.push_back(makeEngine("dragon", 2));
        return engines;
    };
    point.source = [cfg] {
        return std::make_unique<gen::WorkloadSource>(cfg);
    };
    runner.add(std::move(point));
    EXPECT_THROW(runner.run(), std::runtime_error);
}

TEST(SweepTest, RejectsPointWithoutFactories)
{
    sim::SweepRunner runner(1);
    EXPECT_THROW(runner.add(sim::SweepPoint{}),
                 std::invalid_argument);
}

/** The analysis-layer parallel path equals its serial path exactly. */
TEST(SweepTest, ParallelEvaluationMatchesSerial)
{
    const auto cfgs = smallWorkloads();

    analysis::EvalOptions serial_opts;
    serial_opts.jobs = 1;
    const analysis::Evaluation serial =
        analysis::evaluateWorkloads(cfgs, serial_opts);

    analysis::EvalOptions parallel_opts;
    parallel_opts.jobs = 8;
    const analysis::Evaluation parallel =
        analysis::evaluateWorkloads(cfgs, parallel_opts);

    ASSERT_EQ(serial.traces.size(), parallel.traces.size());
    for (std::size_t c = 0; c < serial.traces.size(); ++c) {
        EXPECT_EQ(serial.traces[c].trace, parallel.traces[c].trace);
        EXPECT_TRUE(serial.traces[c].inval == parallel.traces[c].inval);
        EXPECT_TRUE(serial.traces[c].dir1nb ==
                    parallel.traces[c].dir1nb);
        EXPECT_TRUE(serial.traces[c].dragon ==
                    parallel.traces[c].dragon);
    }
    EXPECT_TRUE(serial.average.inval == parallel.average.inval);
    EXPECT_TRUE(serial.average.dir1nb == parallel.average.dir1nb);
    EXPECT_TRUE(serial.average.dragon == parallel.average.dragon);
}

/** Same for the lock-test-filtered (Section 5.2) evaluation. */
TEST(SweepTest, ParallelFilteredEvaluationMatchesSerial)
{
    const std::vector<gen::WorkloadConfig> cfgs = {smallWorkloads()[0]};

    analysis::EvalOptions serial_opts;
    serial_opts.jobs = 1;
    serial_opts.dropLockTests = true;
    const analysis::Evaluation serial =
        analysis::evaluateWorkloads(cfgs, serial_opts);

    analysis::EvalOptions parallel_opts;
    parallel_opts.jobs = 4;
    parallel_opts.dropLockTests = true;
    const analysis::Evaluation parallel =
        analysis::evaluateWorkloads(cfgs, parallel_opts);

    EXPECT_TRUE(serial.average.inval == parallel.average.inval);
    EXPECT_TRUE(serial.average.dragon == parallel.average.dragon);
}

TEST(SweepTest, ParallelLimitedSweepMatchesSerial)
{
    const auto cfgs = smallWorkloads();
    const std::vector<unsigned> pointers = {1, 2, 4};

    analysis::EvalOptions serial_opts;
    serial_opts.jobs = 1;
    const auto serial =
        analysis::limitedSweep(cfgs, pointers, serial_opts);

    analysis::EvalOptions parallel_opts;
    parallel_opts.jobs = 8;
    const auto parallel =
        analysis::limitedSweep(cfgs, pointers, parallel_opts);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t e = 0; e < serial.size(); ++e)
        EXPECT_TRUE(serial[e] == parallel[e]);
}

/**
 * A run that overflows an engine's unit capacity must leave every
 * engine unmutated (the old driver threw mid-stream and left the
 * engines with mutually inconsistent partial counts).
 */
TEST(SimulatorTest, FailedRunMutatesNothing)
{
    trace::MemoryTrace trace;
    for (unsigned pid = 0; pid < 8; ++pid) {
        trace::TraceRecord rec;
        rec.addr = 0x1000 + 16 * pid;
        rec.pid = static_cast<std::uint16_t>(pid);
        rec.cpu = static_cast<std::uint8_t>(pid % 4);
        rec.type = trace::RefType::Write;
        trace.append(rec);
    }

    sim::Simulator simulator;
    auto &big = simulator.addEngine(makeEngine("inval", 8));
    auto &small = simulator.addEngine(makeEngine("dragon", 4));

    trace::MemoryTraceSource source(trace);
    EXPECT_THROW(simulator.run(source), std::runtime_error);

    // Both engines reset — not just the one that overflowed.
    EXPECT_EQ(big.results().events.totalRefs(), 0u);
    EXPECT_EQ(small.results().events.totalRefs(), 0u);
    EXPECT_EQ(simulator.unitsSeen(), 0u);

    // The simulator stays usable: a fitting trace runs afterwards.
    trace::MemoryTrace small_trace;
    for (unsigned pid = 0; pid < 4; ++pid) {
        trace::TraceRecord rec;
        rec.addr = 0x2000 + 16 * pid;
        rec.pid = static_cast<std::uint16_t>(pid);
        rec.type = trace::RefType::Read;
        small_trace.append(rec);
    }
    trace::MemoryTraceSource retry(small_trace);
    EXPECT_EQ(simulator.run(retry), 4u);
    EXPECT_EQ(big.results().events.totalRefs(), 4u);
    EXPECT_EQ(small.results().events.totalRefs(), 4u);
}

/** Regression: readText must reject values wider than record fields. */
TEST(TraceIoTest, ReadTextRejectsOutOfRangeFields)
{
    const auto parse = [](const std::string &text) {
        std::istringstream is(text);
        return trace::readText(is);
    };

    // cpu is 8-bit: 256 used to silently become cpu 0.
    EXPECT_THROW(parse("256 0 R 0x10 0\n"), std::runtime_error);
    // pid is 16-bit: 65536 used to silently become pid 0.
    EXPECT_THROW(parse("0 65536 R 0x10 0\n"), std::runtime_error);
    // flags is 8-bit.
    EXPECT_THROW(parse("0 0 R 0x10 256\n"), std::runtime_error);
    // Negative values must not wrap into valid records.
    EXPECT_THROW(parse("-1 0 R 0x10 0\n"), std::runtime_error);
    EXPECT_THROW(parse("0 -2 R 0x10 0\n"), std::runtime_error);

    // Boundary values still parse exactly.
    const trace::MemoryTrace trace = parse("255 65535 W 0xff 3\n");
    ASSERT_EQ(trace.size(), 1u);
    EXPECT_EQ(trace[0].cpu, 255u);
    EXPECT_EQ(trace[0].pid, 65535u);
    EXPECT_EQ(trace[0].flags, 3u);
    EXPECT_TRUE(trace[0].isWrite());
}

/** Records must stay inside the header's declared cpu/pid counts. */
TEST(TraceIoTest, ReadTextRejectsRecordsOutsideDeclaredCounts)
{
    const auto parse = [](const std::string &text) {
        std::istringstream is(text);
        return trace::readText(is);
    };

    EXPECT_THROW(parse("# ncpus 2\n2 0 R 0x10 0\n"),
                 std::runtime_error);
    EXPECT_THROW(parse("# nprocesses 4\n0 4 R 0x10 0\n"),
                 std::runtime_error);
    // Header lines bound the ids wherever they appear in the file.
    EXPECT_THROW(parse("3 0 R 0x10 0\n# ncpus 2\n"),
                 std::runtime_error);

    // In-range records parse; undeclared counts stay unchecked.
    EXPECT_EQ(parse("# ncpus 2\n1 7 R 0x10 0\n").size(), 1u);
    EXPECT_EQ(parse("200 0 R 0x10 0\n").size(), 1u);
}

/** Batched replay must deliver the identical record stream. */
TEST(TraceIoTest, NextBatchMatchesNext)
{
    const gen::WorkloadConfig cfg = smallWorkloads()[0];
    const trace::MemoryTrace trace = gen::generateTrace(cfg);

    trace::MemoryTraceSource one_by_one(trace);
    trace::MemoryTraceSource batched(trace);
    std::vector<trace::TraceRecord> batch(1000);
    std::size_t total = 0;
    std::size_t n;
    while ((n = batched.nextBatch(batch.data(), batch.size())) != 0) {
        for (std::size_t i = 0; i < n; ++i) {
            trace::TraceRecord rec;
            ASSERT_TRUE(one_by_one.next(rec));
            EXPECT_TRUE(rec == batch[i]);
        }
        total += n;
    }
    trace::TraceRecord rec;
    EXPECT_FALSE(one_by_one.next(rec));
    EXPECT_EQ(total, trace.size());
}

} // namespace
