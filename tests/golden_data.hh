/**
 * @file
 * Shared golden-digest fixture: the scheme axis, the canonical
 * EngineResults digest, and the seed-recorded digest table.
 *
 * golden_test.cc (raw/prepared/streamed equivalence) and
 * fused_test.cc (fused multi-scheme replay) both pin their results to
 * the same 14 schemes × 3 workloads table, so the fixture lives here
 * once.  Regenerate the table after an intentional model change with:
 *
 *     DIRSIM_GOLDEN_PRINT=1 ./tests/golden_test
 *
 * and paste the printed rows over kGolden below.
 */

#ifndef DIRSIM_TESTS_GOLDEN_DATA_HH
#define DIRSIM_TESTS_GOLDEN_DATA_HH

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "coherence/berkeley_engine.hh"
#include "coherence/dragon_engine.hh"
#include "coherence/engine.hh"
#include "coherence/inval_engine.hh"
#include "coherence/limited_engine.hh"
#include "coherence/wti_engine.hh"
#include "directory/coarse_vector.hh"
#include "directory/dir_cache.hh"
#include "directory/full_map.hh"
#include "directory/limited_pointer.hh"
#include "directory/two_bit.hh"
#include "mem/set_assoc.hh"

namespace dirsim::golden
{

/** FNV-1a over the canonical serialisation below. */
class Digest
{
  public:
    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            _h ^= (v >> (8 * i)) & 0xff;
            _h *= 0x100000001b3ULL;
        }
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        for (char c : s)
            u64(static_cast<unsigned char>(c));
    }

    void
    histogram(const stats::Histogram &h)
    {
        u64(h.totalSamples());
        u64(h.totalWeight());
        u64(h.maxValue());
        for (std::size_t v = 0; v <= h.maxValue(); ++v)
            u64(h.count(v));
    }

    std::uint64_t value() const { return _h; }

  private:
    std::uint64_t _h = 0xcbf29ce484222325ULL;
};

/** Canonical digest of everything EngineResults holds. */
inline std::uint64_t
digest(const coherence::EngineResults &r)
{
    Digest d;
    d.str(r.name);
    d.u64(r.events.totalRefs());
    for (std::size_t e = 0; e < coherence::numEvents; ++e)
        d.u64(r.events.count(static_cast<coherence::Event>(e)));
    d.histogram(r.whClnFanout);
    d.histogram(r.wmClnFanout);
    d.u64(r.holderGrowth12);
    d.u64(r.displacementInvals);
    d.u64(r.dirDirectedInvals);
    d.u64(r.dirBroadcasts);
    d.u64(r.dirOvershoot);
    d.u64(r.homeLocalTransactions);
    d.u64(r.homeRemoteTransactions);
    d.u64(r.replacementEvictions);
    d.u64(r.replacementWriteBacks);
    return d.value();
}

/**
 * The scheme axis: every engine variant the repo can run.  Makers
 * take an optional directory-cache configuration (null = the paper's
 * entry-per-block directory); engines without a directory to cache —
 * the snoopy WTI/Dragon/Berkeley models — ignore it.
 */
struct Scheme
{
    const char *label;
    std::unique_ptr<coherence::CoherenceEngine> (*make)(
        unsigned units, const directory::DirCacheConfig *dc);
    /** Does the engine model a directory this cache sits in front of? */
    bool dirCacheCapable;
};

inline directory::DirCacheConfig
dirCacheOrNone(const directory::DirCacheConfig *dc)
{
    return dc ? *dc : directory::DirCacheConfig{};
}

inline std::unique_ptr<coherence::CoherenceEngine>
makeInval(unsigned units, const directory::DirCacheConfig *dc)
{
    coherence::InvalEngineConfig cfg;
    cfg.nUnits = units;
    cfg.dirCache = dirCacheOrNone(dc);
    return std::make_unique<coherence::InvalEngine>(cfg);
}

template <typename Factory>
std::unique_ptr<coherence::CoherenceEngine>
makeInvalWithDir(unsigned units, const directory::DirCacheConfig *dc)
{
    static const Factory factory;
    coherence::InvalEngineConfig cfg;
    cfg.nUnits = units;
    cfg.dirFactory = &factory;
    cfg.dirCache = dirCacheOrNone(dc);
    return std::make_unique<coherence::InvalEngine>(cfg);
}

inline std::unique_ptr<coherence::CoherenceEngine>
makeInvalDir2B(unsigned units, const directory::DirCacheConfig *dc)
{
    static const directory::LimitedPointerFactory factory(2, true);
    coherence::InvalEngineConfig cfg;
    cfg.nUnits = units;
    cfg.dirFactory = &factory;
    cfg.dirCache = dirCacheOrNone(dc);
    return std::make_unique<coherence::InvalEngine>(cfg);
}

inline std::unique_ptr<coherence::CoherenceEngine>
makeInvalHome(unsigned units, coherence::HomePolicy policy,
              const directory::DirCacheConfig *dc)
{
    coherence::InvalEngineConfig cfg;
    cfg.nUnits = units;
    cfg.homePolicy = policy;
    cfg.dirCache = dirCacheOrNone(dc);
    return std::make_unique<coherence::InvalEngine>(cfg);
}

inline std::unique_ptr<coherence::CoherenceEngine>
makeInvalFinite(unsigned units, const directory::DirCacheConfig *dc)
{
    coherence::InvalEngineConfig cfg;
    cfg.nUnits = units;
    cfg.cacheFactory = [] {
        mem::CacheGeometry geometry;
        geometry.capacityBytes = 16 * 1024; // Small: forces evictions.
        geometry.blockBytes = 16;
        geometry.ways = 2;
        return std::make_unique<mem::SetAssocTagStore>(geometry);
    };
    cfg.dirCache = dirCacheOrNone(dc);
    return std::make_unique<coherence::InvalEngine>(cfg);
}

inline const Scheme kSchemes[] = {
    {"inval", makeInval, true},
    {"dir1nb",
     [](unsigned u, const directory::DirCacheConfig *dc)
         -> std::unique_ptr<coherence::CoherenceEngine> {
         return std::make_unique<coherence::LimitedEngine>(
             u, 1, dirCacheOrNone(dc));
     },
     true},
    {"dir2nb",
     [](unsigned u, const directory::DirCacheConfig *dc)
         -> std::unique_ptr<coherence::CoherenceEngine> {
         return std::make_unique<coherence::LimitedEngine>(
             u, 2, dirCacheOrNone(dc));
     },
     true},
    {"wti",
     [](unsigned u, const directory::DirCacheConfig *)
         -> std::unique_ptr<coherence::CoherenceEngine> {
         return std::make_unique<coherence::WtiEngine>(u, true);
     },
     false},
    {"wti-noalloc",
     [](unsigned u, const directory::DirCacheConfig *)
         -> std::unique_ptr<coherence::CoherenceEngine> {
         return std::make_unique<coherence::WtiEngine>(u, false);
     },
     false},
    {"dragon",
     [](unsigned u, const directory::DirCacheConfig *)
         -> std::unique_ptr<coherence::CoherenceEngine> {
         return std::make_unique<coherence::DragonEngine>(u);
     },
     false},
    {"berkeley",
     [](unsigned u, const directory::DirCacheConfig *)
         -> std::unique_ptr<coherence::CoherenceEngine> {
         return std::make_unique<coherence::BerkeleyEngine>(u);
     },
     false},
    {"inval+fullmap", makeInvalWithDir<directory::FullMapFactory>,
     true},
    {"inval+twobit", makeInvalWithDir<directory::TwoBitFactory>, true},
    {"inval+coarse", makeInvalWithDir<directory::CoarseVectorFactory>,
     true},
    {"inval+dir2b", makeInvalDir2B, true},
    {"inval+home-mod",
     [](unsigned u, const directory::DirCacheConfig *dc) {
         return makeInvalHome(u, coherence::HomePolicy::Modulo, dc);
     },
     true},
    {"inval+home-ft",
     [](unsigned u, const directory::DirCacheConfig *dc) {
         return makeInvalHome(u, coherence::HomePolicy::FirstTouch, dc);
     },
     true},
    {"inval+finite", makeInvalFinite, true},
};

inline constexpr std::size_t kNumSchemes =
    sizeof(kSchemes) / sizeof(kSchemes[0]);

/**
 * Digests recorded from the seed implementation (node-based
 * std::unordered_map/set block tables, unique_ptr DirEntry) over the
 * quarter-size standard workloads.  kGolden[workload][scheme] in
 * standardWorkloads() × kSchemes order.
 */
inline const std::uint64_t kGolden[3][kNumSchemes] = {
    // pops
    {0xae0e843ecb260cb7ULL, 0x97edd7f4fd3b4863ULL, 0x6830083eb9d5e8cfULL, 0xb6442018df56820bULL, 0xac977d2f58481d6aULL, 0xf4c98169ab5e0ff8ULL, 0xb9f8543ae7e56205ULL, 0xa799fa74acd9f4d0ULL, 0xf47a85d4ce438e3ULL, 0xfceeeac846465fbdULL, 0x736e5681a0f861aaULL, 0x57013e6088943e95ULL, 0xeb2b34b1a3e4ef8dULL, 0xb37298eeb6417cd7ULL},
    // thor
    {0xb3bc4643f878782eULL, 0x2df7a9e3adc2a4bbULL, 0x62547051064a3c43ULL, 0x919faf64ac1ea99bULL, 0x2dd626f20917e2eeULL, 0x6b5793fd62ca325fULL, 0xaf06c1a08f419a42ULL, 0x777a0fabcd011e3bULL, 0x87dcf92d15181961ULL, 0xccc5c766b82f1fd2ULL, 0x1e51d3dbe9671c6eULL, 0x31195e0407cfe55ULL, 0xcbe7aba5fec94d3bULL, 0xeac1e4f54c7e9ac0ULL},
    // pero
    {0x8490315cc2c28de0ULL, 0x3a6576db60fb5c83ULL, 0x240d242b0726cc6fULL, 0x4ae94e4ec043eb4ULL, 0xf4560a28d0566508ULL, 0x4dba17cd7107b8f3ULL, 0x9dff3aa5bc5681e2ULL, 0x6ed35fdbc3d80342ULL, 0x5b2f697773492301ULL, 0x8ae18d9750f8ba02ULL, 0xb15d31fd9f5e7330ULL, 0x81004f7e170f8819ULL, 0x70b87af67e234bd9ULL, 0x3dc95d507ab7bd8dULL},
};

/** A scratch disk-cache directory, removed on destruction. */
struct CacheDirGuard
{
    explicit CacheDirGuard(const std::string &stem)
        : path(testing::TempDir() + "dirsim-golden-" + stem + "-" +
               std::to_string(::getpid()))
    {
        std::filesystem::remove_all(path);
    }
    ~CacheDirGuard() { std::filesystem::remove_all(path); }
    std::string path;
};

} // namespace dirsim::golden

#endif // DIRSIM_TESTS_GOLDEN_DATA_HH
