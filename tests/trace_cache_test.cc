/**
 * @file
 * Tests for the TraceRepository disk tier: cold-miss spills, warm-hit
 * serving (in-process, cross-instance and cross-process), LRU
 * eviction under a byte budget, corruption recovery, and the
 * RepoStats counters that make all of it observable.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "coherence/inval_engine.hh"
#include "gen/workload.hh"
#include "gen/workloads.hh"
#include "sim/simulator.hh"
#include "sim/trace_repo.hh"
#include "trace/prepared.hh"
#include "trace/store.hh"

// fork()-based tests are skipped under TSan: forking a process that
// has ever run threads is unsupported there.
#if defined(__SANITIZE_THREAD__)
#define DIRSIM_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DIRSIM_TSAN 1
#endif
#endif
#ifndef DIRSIM_TSAN
#define DIRSIM_TSAN 0
#endif

namespace
{

using namespace dirsim;
namespace fs = std::filesystem;

gen::WorkloadConfig
smallWorkload()
{
    auto cfg = gen::standardWorkloads()[0];
    cfg.totalRefs = 30'000;
    return cfg;
}

/** Unique scratch cache directory, removed on destruction. */
struct DirGuard
{
    explicit DirGuard(const std::string &stem)
        : path(testing::TempDir() + "dirsim-cache-" + stem + "-" +
               std::to_string(::getpid()))
    {
        fs::remove_all(path);
    }
    ~DirGuard() { fs::remove_all(path); }
    std::string path;
};

sim::DiskCacheConfig
diskConfig(const DirGuard &dir,
           std::uint64_t chunkRefs = 4096,
           std::uint64_t budget = 4ull * 1024 * 1024 * 1024)
{
    sim::DiskCacheConfig cfg;
    cfg.dir = dir.path;
    cfg.chunkRefs = chunkRefs;
    cfg.budgetBytes = budget;
    return cfg;
}

/** Store files currently in the cache directory. */
std::vector<fs::path>
cacheFiles(const std::string &dir)
{
    std::vector<fs::path> files;
    for (const auto &entry : fs::directory_iterator(dir))
        if (entry.path().extension() == ".dspt")
            files.push_back(entry.path());
    return files;
}

/** Engine results of replaying @p cfg directly from the generator. */
coherence::EngineResults
directResults(const gen::WorkloadConfig &cfg)
{
    coherence::InvalEngineConfig ecfg;
    ecfg.nUnits = cfg.space.nProcesses;
    sim::Simulator simulator;
    coherence::CoherenceEngine &engine = simulator.addEngine(
        std::make_unique<coherence::InvalEngine>(ecfg));
    gen::WorkloadSource source(cfg);
    simulator.run(source);
    return engine.results();
}

/** Engine results of replaying the stored trace's span stream. */
coherence::EngineResults
streamedResults(const trace::StoredTrace &stored,
                const gen::WorkloadConfig &cfg)
{
    coherence::InvalEngineConfig ecfg;
    ecfg.nUnits = cfg.space.nProcesses;
    sim::Simulator simulator;
    coherence::CoherenceEngine &engine = simulator.addEngine(
        std::make_unique<coherence::InvalEngine>(ecfg));
    const auto spans = stored.spanCursor();
    simulator.run(*spans);
    return engine.results();
}

TEST(TraceCacheTest, GetStoredRequiresConfiguredDiskTier)
{
    sim::TraceRepository repo(1);
    EXPECT_FALSE(repo.diskCacheEnabled());
    EXPECT_THROW(repo.getStored(smallWorkload()), std::logic_error);
}

TEST(TraceCacheTest, ColdMissSpillsAndWarmInstanceServesFile)
{
    const auto cfg = smallWorkload();
    DirGuard dir("cold-warm");

    // Cold: the first repository generates, spills and replays.
    sim::TraceRepository first(1);
    first.setDiskCache(diskConfig(dir));
    EXPECT_TRUE(first.diskCacheEnabled());
    const auto stored = first.getStored(cfg);
    ASSERT_NE(stored, nullptr);
    EXPECT_EQ(stored->totalRefs(), cfg.totalRefs);
    {
        const sim::RepoStats s = first.stats();
        EXPECT_EQ(s.builds, 1u);
        EXPECT_EQ(s.diskWrites, 1u);
        EXPECT_EQ(s.diskHits, 0u);
    }
    EXPECT_EQ(cacheFiles(dir.path).size(), 1u);
    EXPECT_TRUE(streamedResults(*stored, cfg) == directResults(cfg));

    // A repeat on the same instance is an in-memory hit, not a
    // second open or build.
    const auto again = first.getStored(cfg);
    EXPECT_EQ(again.get(), stored.get());
    EXPECT_EQ(first.stats().builds, 1u);

    // Warm: a fresh instance on the same directory does zero
    // generate/prepare work for both tiers of access.
    sim::TraceRepository second(1);
    second.setDiskCache(diskConfig(dir));
    const auto warmStored = second.getStored(cfg);
    {
        const sim::RepoStats s = second.stats();
        EXPECT_EQ(s.builds, 0u);
        EXPECT_EQ(s.diskHits, 1u);
        EXPECT_EQ(s.diskWrites, 0u);
    }
    EXPECT_TRUE(streamedResults(*warmStored, cfg) ==
                directResults(cfg));

    // The in-memory get() path also rides the warm file: column
    // read-back, not re-generation.
    sim::TraceRepository third(1);
    third.setDiskCache(diskConfig(dir));
    const auto prepared = third.get(cfg);
    EXPECT_EQ(prepared->totalRefs(), cfg.totalRefs);
    {
        const sim::RepoStats s = third.stats();
        EXPECT_EQ(s.builds, 0u);
        EXPECT_EQ(s.diskHits, 1u);
    }
}

TEST(TraceCacheTest, ChunkRefsIsNotPartOfTheCacheKey)
{
    const auto cfg = smallWorkload();
    DirGuard dir("chunkrefs");

    sim::TraceRepository writer(1);
    writer.setDiskCache(diskConfig(dir, 1024));
    writer.getStored(cfg);

    // A different replay chunking must still hit the same file.
    sim::TraceRepository reader(1);
    reader.setDiskCache(diskConfig(dir, 16384));
    reader.getStored(cfg);
    EXPECT_EQ(reader.stats().builds, 0u);
    EXPECT_EQ(reader.stats().diskHits, 1u);
}

TEST(TraceCacheTest, ConcurrentGetStoredBuildsExactlyOnce)
{
    const auto cfg = smallWorkload();
    DirGuard dir("threads");
    sim::TraceRepository repo(1);
    repo.setDiskCache(diskConfig(dir));

    std::vector<std::shared_ptr<const trace::StoredTrace>> results(8);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < results.size(); ++t)
        threads.emplace_back([&repo, &results, &cfg, t] {
            results[t] = repo.getStored(cfg);
        });
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_EQ(repo.stats().builds, 1u);
    for (const auto &result : results) {
        ASSERT_NE(result, nullptr);
        EXPECT_EQ(result.get(), results[0].get());
    }
}

TEST(TraceCacheTest, SecondProcessOnWarmDirDoesZeroBuildWork)
{
#if DIRSIM_TSAN
    GTEST_SKIP() << "fork() under TSan is unreliable";
#endif
    const auto cfg = smallWorkload();
    DirGuard dir("two-proc");

    // Parent warms the directory.
    {
        sim::TraceRepository warm(1);
        warm.setDiskCache(diskConfig(dir));
        warm.getStored(cfg);
    }

    // The acceptance bar: a second *process* re-running the same
    // workload on the warm directory performs zero generate/prepare
    // work, observable through the RepoStats disk-hit counters.
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        int code = 1;
        try {
            sim::TraceRepository repo(1);
            repo.setDiskCache(diskConfig(dir));
            const auto stored = repo.getStored(cfg);
            const sim::RepoStats s = repo.stats();
            if (stored != nullptr &&
                stored->totalRefs() == cfg.totalRefs &&
                s.builds == 0 && s.diskHits == 1 && s.diskWrites == 0)
                code = 0;
        } catch (...) {
            code = 2;
        }
        ::_exit(code);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0)
        << "warm-dir child rebuilt or failed";
}

TEST(TraceCacheTest, TwoProcessesRacingOnColdDirBothSucceed)
{
#if DIRSIM_TSAN
    GTEST_SKIP() << "fork() under TSan is unreliable";
#endif
    const auto cfg = smallWorkload();
    DirGuard dir("race");

    // Both children start cold and spill concurrently; the pid-
    // suffixed temp + rename protocol means neither can observe a
    // torn file, and the directory converges to one valid entry.
    std::vector<pid_t> children;
    for (int i = 0; i < 2; ++i) {
        const pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            int code = 1;
            try {
                sim::TraceRepository repo(1);
                repo.setDiskCache(diskConfig(dir));
                const auto stored = repo.getStored(cfg);
                if (stored != nullptr &&
                    stored->totalRefs() == cfg.totalRefs)
                    code = 0;
            } catch (...) {
                code = 2;
            }
            ::_exit(code);
        }
        children.push_back(pid);
    }
    for (const pid_t pid : children) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status));
        EXPECT_EQ(WEXITSTATUS(status), 0) << "racing child failed";
    }

    // No temp litter, and the surviving file is valid and warm.
    EXPECT_EQ(cacheFiles(dir.path).size(), 1u);
    sim::TraceRepository after(1);
    after.setDiskCache(diskConfig(dir));
    after.getStored(cfg);
    EXPECT_EQ(after.stats().builds, 0u);
    EXPECT_EQ(after.stats().diskHits, 1u);
}

TEST(TraceCacheTest, DiskEvictionHonorsByteBudget)
{
    DirGuard dir("evict");
    // A 1-byte budget can keep nothing but the always-spared newest
    // file, so every additional spill must evict a predecessor.
    sim::TraceRepository repo(1);
    repo.setDiskCache(diskConfig(dir, 4096, 1));

    auto cfg = smallWorkload();
    cfg.totalRefs = 10'000;
    repo.getStored(cfg);
    EXPECT_EQ(cacheFiles(dir.path).size(), 1u);

    auto other = cfg;
    other.seed ^= 0x5a5a;
    repo.getStored(other);
    EXPECT_EQ(cacheFiles(dir.path).size(), 1u);
    const sim::RepoStats s = repo.stats();
    EXPECT_EQ(s.diskWrites, 2u);
    EXPECT_GE(s.diskEvictions, 1u);
}

TEST(TraceCacheTest, CorruptWarmFileIsRebuiltNotServed)
{
    const auto cfg = smallWorkload();
    DirGuard dir("corrupt");
    {
        sim::TraceRepository warm(1);
        warm.setDiskCache(diskConfig(dir, 512));
        warm.getStored(cfg);
    }
    auto files = cacheFiles(dir.path);
    ASSERT_EQ(files.size(), 1u);

    // Flip one byte deep in the chunk payload: the file still opens,
    // so only the per-chunk digests can catch it at read time.
    {
        std::fstream f(files[0],
                       std::ios::in | std::ios::out | std::ios::binary);
        const auto size =
            static_cast<std::streamoff>(fs::file_size(files[0]));
        f.seekg(size * 2 / 3);
        char byte = 0;
        f.get(byte);
        f.seekp(size * 2 / 3);
        f.put(static_cast<char>(byte ^ 0x10));
    }

    sim::TraceRepository repo(1);
    repo.setDiskCache(diskConfig(dir, 512));
    const auto prepared = repo.get(cfg);
    EXPECT_EQ(prepared->totalRefs(), cfg.totalRefs);
    // The corruption was detected and the trace rebuilt from the
    // generator, never served wrong.
    EXPECT_EQ(repo.stats().builds, 1u);
    EXPECT_EQ(repo.stats().diskHits, 0u);
}

TEST(TraceCacheTest, FilenameCollisionWithWrongFingerprintIsAMiss)
{
    const auto cfg = smallWorkload();
    DirGuard dir("collide");
    {
        sim::TraceRepository warm(1);
        warm.setDiskCache(diskConfig(dir));
        warm.getStored(cfg);
    }
    auto files = cacheFiles(dir.path);
    ASSERT_EQ(files.size(), 1u);

    // Overwrite the cache file with a *valid* store that belongs to
    // some other configuration (wrong fingerprint): the reader must
    // treat it as a miss and rebuild, not replay the impostor.
    auto other = cfg;
    other.totalRefs = 5'000;
    trace::StoreWriteOptions wopts;
    wopts.configFingerprint = 0x1234;
    trace::writeStored(
        trace::PreparedTrace::build(gen::generateTrace(other)),
        files[0].string(), wopts);

    sim::TraceRepository repo(1);
    repo.setDiskCache(diskConfig(dir));
    const auto stored = repo.getStored(cfg);
    EXPECT_EQ(stored->totalRefs(), cfg.totalRefs);
    EXPECT_EQ(repo.stats().builds, 1u);
    EXPECT_EQ(repo.stats().diskHits, 0u);
}

TEST(TraceCacheTest, StatsSummaryNamesEveryCounter)
{
    sim::RepoStats stats;
    stats.hits = 1;
    stats.misses = 2;
    stats.builds = 3;
    stats.diskHits = 4;
    stats.diskWrites = 5;
    stats.evictions = 6;
    stats.diskEvictions = 7;
    const std::string line = stats.summary();
    for (const char *needle :
         {"1 hits", "2 misses", "3 builds", "4 disk hits",
          "5 disk writes", "6 evictions", "7 disk evictions"})
        EXPECT_NE(line.find(needle), std::string::npos)
            << "summary '" << line << "' lacks '" << needle << "'";
}

} // namespace
