/**
 * @file
 * Tests for the concrete snoopy-protocol engines (true write-through
 * WTI and real Berkeley Ownership) and the MESI/BerkeleyOwn cost
 * models — including verification of two structural claims the paper
 * makes without proof:
 *
 *  1. WTI and Dir0B share event frequencies because they share a
 *     state-change model (Section 5);
 *  2. Berkeley's owner-supplies optimisation "does not impact our
 *     performance metric in the pipelined bus" (Section 5 footnote).
 */

#include <gtest/gtest.h>

#include "bus/bus_model.hh"
#include "coherence/berkeley_engine.hh"
#include "coherence/inval_engine.hh"
#include "coherence/wti_engine.hh"
#include "gen/rng.hh"
#include "gen/workloads.hh"
#include "sim/cost_model.hh"
#include "sim/simulator.hh"

namespace
{

using namespace dirsim;
using coherence::Event;
using trace::RefType;

constexpr RefType R = RefType::Read;
constexpr RefType W = RefType::Write;

struct RandomRef
{
    unsigned unit;
    RefType type;
    mem::BlockId block;
};

std::vector<RandomRef>
randomTrace(unsigned units, std::size_t n, std::uint64_t seed)
{
    gen::Rng rng(seed);
    std::vector<RandomRef> refs;
    refs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        RandomRef ref;
        ref.unit = static_cast<unsigned>(rng.nextBelow(units));
        ref.type = rng.chance(0.3) ? W : R;
        ref.block = rng.nextBelow(150);
        refs.push_back(ref);
    }
    return refs;
}

// ---------------------------------------------------------------------
// WtiEngine.
// ---------------------------------------------------------------------

TEST(Wti, RejectsBadUnitCounts)
{
    EXPECT_THROW(coherence::WtiEngine(0), std::invalid_argument);
    EXPECT_THROW(coherence::WtiEngine(65), std::invalid_argument);
}

TEST(Wti, NothingIsEverDirty)
{
    coherence::WtiEngine eng(4);
    eng.access(0, W, 10);
    eng.access(1, R, 10);
    // A read after a write is serviced without a dirty flush: the
    // write went through to memory.
    EXPECT_EQ(eng.results().events.count(Event::RmBlkCln), 1u);
    EXPECT_EQ(eng.results().events.count(Event::RmBlkDrty), 0u);
}

TEST(Wti, WritesInvalidateOtherCopies)
{
    coherence::WtiEngine eng(4);
    eng.access(0, R, 10);
    eng.access(1, R, 10);
    eng.access(0, W, 10);
    EXPECT_EQ(eng.results().events.count(Event::WhBlkClnShared), 1u);
    EXPECT_EQ(eng.results().whClnFanout.count(1), 1u);
    eng.access(1, R, 10); // invalidated: misses
    EXPECT_EQ(eng.results().events.count(Event::RmBlkCln), 2u);
}

/**
 * The paper's frequency-equivalence claim, verified: the true WTI
 * engine and the invalidation engine classify every reference into
 * the same hit/miss aggregate on any trace (the dirty sub-category
 * collapses into clean under write-through, so totals are compared).
 */
class WtiEquivalence : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(WtiEquivalence, AggregateFrequenciesMatchInvalModel)
{
    const unsigned units = GetParam();
    coherence::WtiEngine wti(units);
    coherence::InvalEngineConfig icfg;
    icfg.nUnits = units;
    coherence::InvalEngine inval(icfg);

    for (const auto &ref : randomTrace(units, 60'000, units * 13 + 7)) {
        wti.access(ref.unit, ref.type, ref.block);
        inval.access(ref.unit, ref.type, ref.block);
    }
    const auto &w = wti.results().events;
    const auto &v = inval.results().events;
    EXPECT_EQ(w.count(Event::RdHit), v.count(Event::RdHit));
    EXPECT_EQ(w.readMisses(), v.readMisses());
    EXPECT_EQ(w.writeMisses(), v.writeMisses());
    EXPECT_EQ(w.writeHits(), v.writeHits());
    // WTI classifies every write hit as clean (nothing is ever
    // dirty); the clean total therefore equals the reference model's
    // full write-hit count.
    EXPECT_EQ(w.writeHitsClean(), v.writeHits());
    EXPECT_EQ(w.count(Event::RmFirstRef), v.count(Event::RmFirstRef));
    EXPECT_EQ(w.count(Event::WmFirstRef), v.count(Event::WmFirstRef));
}

INSTANTIATE_TEST_SUITE_P(UnitCounts, WtiEquivalence,
                         ::testing::Values(2u, 4u, 8u, 16u));

TEST(Wti, NoAllocateBreaksEquivalence)
{
    // Write-around: the writer keeps no copy, so a write-then-read by
    // the same unit misses — the state model genuinely differs.
    coherence::WtiEngine eng(4, /*allocateOnWriteMiss=*/false);
    eng.access(0, W, 10); // first ref, no allocation
    eng.access(0, R, 10); // would hit with allocation
    EXPECT_EQ(eng.results().events.count(Event::RdHit), 0u);
    EXPECT_EQ(eng.results().events.count(Event::RmMemory), 1u);
}

TEST(Wti, NoAllocateIncreasesReadMisses)
{
    const unsigned units = 4;
    coherence::WtiEngine allocate(units, true);
    coherence::WtiEngine around(units, false);
    for (const auto &ref : randomTrace(units, 60'000, 77)) {
        allocate.access(ref.unit, ref.type, ref.block);
        around.access(ref.unit, ref.type, ref.block);
    }
    EXPECT_GT(around.results().events.readMisses() +
                  around.results().events.count(Event::RmFirstRef),
              allocate.results().events.readMisses() +
                  allocate.results().events.count(Event::RmFirstRef));
}

// ---------------------------------------------------------------------
// BerkeleyEngine.
// ---------------------------------------------------------------------

TEST(Berkeley, RejectsBadUnitCounts)
{
    EXPECT_THROW(coherence::BerkeleyEngine(0), std::invalid_argument);
    EXPECT_THROW(coherence::BerkeleyEngine(65), std::invalid_argument);
}

TEST(Berkeley, OwnerSuppliesAndKeepsOwnership)
{
    coherence::BerkeleyEngine eng(4);
    eng.access(0, W, 10); // first ref, owner 0
    EXPECT_EQ(eng.owner(10), 0);
    eng.access(1, R, 10);
    EXPECT_EQ(eng.results().events.count(Event::RmBlkDrty), 1u);
    // Ownership is retained: the next reader is also supplied by the
    // owner (memory was never updated).
    EXPECT_EQ(eng.owner(10), 0);
    eng.access(2, R, 10);
    EXPECT_EQ(eng.results().events.count(Event::RmBlkDrty), 2u);
}

TEST(Berkeley, SharedDirtyWriteInvalidates)
{
    coherence::BerkeleyEngine eng(4);
    eng.access(0, W, 10);
    eng.access(1, R, 10); // SharedDirty: owner 0, holders {0, 1}
    eng.access(0, W, 10); // owner writes again: invalidate sharer
    EXPECT_EQ(eng.results().events.count(Event::WhBlkClnShared), 1u);
    eng.access(1, R, 10); // invalidated: miss, supplied by owner
    EXPECT_EQ(eng.results().events.count(Event::RmBlkDrty), 2u);
}

TEST(Berkeley, ExclusiveOwnerWritesAreSilent)
{
    coherence::BerkeleyEngine eng(4);
    eng.access(0, W, 10);
    eng.access(0, W, 10);
    eng.access(0, W, 10);
    EXPECT_EQ(eng.results().events.count(Event::WhBlkDrty), 2u);
}

/** Berkeley's state dynamics coincide with the invalidation model. */
class BerkeleyEquivalence : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BerkeleyEquivalence, AggregatesMatchButDirtySplitDiffers)
{
    const unsigned units = GetParam();
    coherence::BerkeleyEngine berkeley(units);
    coherence::InvalEngineConfig icfg;
    icfg.nUnits = units;
    coherence::InvalEngine inval(icfg);

    for (const auto &ref : randomTrace(units, 60'000, units * 57 + 3)) {
        berkeley.access(ref.unit, ref.type, ref.block);
        inval.access(ref.unit, ref.type, ref.block);
    }
    const auto &b = berkeley.results().events;
    const auto &v = inval.results().events;
    // Holder dynamics are isomorphic: hit/miss aggregates match.
    EXPECT_EQ(b.count(Event::RdHit), v.count(Event::RdHit));
    EXPECT_EQ(b.readMisses(), v.readMisses());
    EXPECT_EQ(b.writeMisses(), v.writeMisses());
    EXPECT_EQ(b.writeHits(), v.writeHits());
    EXPECT_EQ(b.count(Event::WhBlkDrty), v.count(Event::WhBlkDrty));
    EXPECT_EQ(b.writeHitsClean(), v.writeHitsClean());
    // The clean/dirty miss split differs: Berkeley never flushes on a
    // read miss, so ownership (and staleness of memory) persists and
    // strictly more misses are serviced cache-to-cache.  With three
    // or more caches the divergence is visible.
    EXPECT_GE(b.count(Event::RmBlkDrty), v.count(Event::RmBlkDrty));
    EXPECT_GE(b.count(Event::WmBlkDrty), v.count(Event::WmBlkDrty));
    if (units > 2) {
        EXPECT_GT(b.count(Event::RmBlkDrty),
                  v.count(Event::RmBlkDrty));
    }
}

INSTANTIATE_TEST_SUITE_P(UnitCounts, BerkeleyEquivalence,
                         ::testing::Values(2u, 4u, 8u));

// ---------------------------------------------------------------------
// Cost models over the real protocols.
// ---------------------------------------------------------------------

class ProtocolCosts : public ::testing::Test
{
  protected:
    static const coherence::EngineResults &
    invalResults()
    {
        static const coherence::EngineResults results = [] {
            gen::WorkloadConfig cfg = gen::popsConfig();
            cfg.totalRefs = 150'000;
            sim::Simulator simulator;
            coherence::InvalEngineConfig icfg;
            icfg.nUnits = 4;
            auto &eng = simulator.addEngine(
                std::make_unique<coherence::InvalEngine>(icfg));
            gen::WorkloadSource source(cfg);
            simulator.run(source);
            return eng.results();
        }();
        return results;
    }
};

TEST_F(ProtocolCosts, BerkeleyOwnPricesLikeFlushOnPipelinedBus)
{
    // The paper's footnote: on the pipelined bus a cache-to-cache
    // supply (5) equals a request + write-back (1 + 4), so the
    // owner-supply optimisation changes nothing.
    const auto pipe = bus::standardBuses().pipelined;
    const auto own = sim::computeCost(sim::Scheme::BerkeleyOwn,
                                      invalResults(), pipe);
    // Dirty-miss service is worth the same under both accountings.
    const double flush_price =
        sim::computeCost(sim::Scheme::Dir0B, invalResults(), pipe)
            .writeBack +
        sim::computeCost(sim::Scheme::Dir0B, invalResults(), pipe)
            .memAccess;
    const double supply_price = own.cacheAccess + own.memAccess;
    EXPECT_NEAR(supply_price, flush_price,
                0.02 * std::max(supply_price, flush_price));
}

TEST_F(ProtocolCosts, BerkeleyOwnCheaperOnNonPipelinedBus)
{
    // On the non-pipelined bus a cache access (6) beats the
    // dir-check + write-back path (3 + 4).
    const auto np = bus::standardBuses().nonPipelined;
    const auto own =
        sim::computeCost(sim::Scheme::BerkeleyOwn, invalResults(), np);
    const auto dir0b =
        sim::computeCost(sim::Scheme::Dir0B, invalResults(), np);
    EXPECT_LT(own.total(), dir0b.total());
}

TEST_F(ProtocolCosts, MesiBeatsDir0BViaSilentUpgrades)
{
    const auto pipe = bus::standardBuses().pipelined;
    const auto mesi =
        sim::computeCost(sim::Scheme::MESI, invalResults(), pipe);
    const auto dir0b =
        sim::computeCost(sim::Scheme::Dir0B, invalResults(), pipe);
    EXPECT_LT(mesi.total(), dir0b.total());
    EXPECT_DOUBLE_EQ(mesi.dirCheck, 0.0);
    // Fewer transactions: exclusive write hits are silent.
    EXPECT_LT(mesi.transactionsPerRef, dir0b.transactionsPerRef);
}

TEST_F(ProtocolCosts, SnoopyFamilyOrdering)
{
    // On the pipelined bus: MESI <= Berkeley(own) <= WTI; all real
    // protocols remain well below WTI's write-through traffic.
    const auto pipe = bus::standardBuses().pipelined;
    const double mesi =
        sim::computeCost(sim::Scheme::MESI, invalResults(), pipe)
            .total();
    const double own = sim::computeCost(sim::Scheme::BerkeleyOwn,
                                        invalResults(), pipe)
                           .total();
    const double wti =
        sim::computeCost(sim::Scheme::WTI, invalResults(), pipe)
            .total();
    EXPECT_LE(mesi, own + 1e-12);
    EXPECT_LT(own, wti);
}

TEST_F(ProtocolCosts, NewSchemesMapToInvalEngine)
{
    EXPECT_EQ(sim::engineKindFor(sim::Scheme::BerkeleyOwn),
              sim::EngineKind::Inval);
    EXPECT_EQ(sim::engineKindFor(sim::Scheme::MESI),
              sim::EngineKind::Inval);
    EXPECT_EQ(sim::schemeName(sim::Scheme::MESI), "MESI");
    EXPECT_EQ(sim::schemeName(sim::Scheme::BerkeleyOwn),
              "Berkeley (own)");
}

} // namespace
