/**
 * @file
 * Exhaustive model checking of the coherence engines.
 *
 * A deliberately naive, independently written reference specification
 * of each state-change model is replayed against the production
 * engines over *every* reference sequence up to a bounded length
 * (2 units x read/write x 2 blocks = 8 symbols; all 8^6 = 262,144
 * sequences of length 6, plus sampled deeper sequences with 3 units).
 * Divergence in any event classification fails the test, so any
 * behavioural regression in the engines' fast paths is caught by
 * construction rather than by luck.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "coherence/dragon_engine.hh"
#include "coherence/inval_engine.hh"
#include "coherence/limited_engine.hh"
#include "coherence/multi_limited_engine.hh"
#include "gen/rng.hh"

namespace
{

using namespace dirsim;
using coherence::Event;
using trace::RefType;

/**
 * Reference specification of the multiple-clean/single-dirty model,
 * written in the most literal style possible (sets and maps, no
 * bit tricks).
 */
class SpecInval
{
  public:
    explicit SpecInval(unsigned units) : _units(units) {}

    Event
    access(unsigned unit, RefType type, std::uint64_t block)
    {
        auto &holders = _holders[block];
        auto &dirty = _dirty[block];
        const bool seen = _referenced.count(block) > 0;
        _referenced.insert(block);

        if (type == RefType::Read) {
            if (holders.count(unit))
                return Event::RdHit;
            Event event;
            if (!seen) {
                event = Event::RmFirstRef;
            } else if (dirty.has_value()) {
                event = Event::RmBlkDrty;
                dirty.reset(); // flushed; ex-owner keeps a clean copy
            } else if (!holders.empty()) {
                event = Event::RmBlkCln;
            } else {
                event = Event::RmMemory;
            }
            holders.insert(unit);
            return event;
        }

        // Write.
        Event event;
        if (holders.count(unit) && dirty == unit) {
            return Event::WhBlkDrty;
        } else if (holders.count(unit)) {
            event = holders.size() == 1 ? Event::WhBlkClnExcl
                                        : Event::WhBlkClnShared;
        } else if (!seen) {
            event = Event::WmFirstRef;
        } else if (dirty.has_value()) {
            event = Event::WmBlkDrty;
        } else if (!holders.empty()) {
            event = Event::WmBlkCln;
        } else {
            event = Event::WmMemory;
        }
        holders.clear();
        holders.insert(unit);
        dirty = unit;
        return event;
    }

  private:
    unsigned _units;
    std::map<std::uint64_t, std::set<unsigned>> _holders;
    std::map<std::uint64_t, std::optional<unsigned>> _dirty;
    std::set<std::uint64_t> _referenced;
};

/** Reference specification of the Dragon update model. */
class SpecDragon
{
  public:
    Event
    access(unsigned unit, RefType type, std::uint64_t block)
    {
        auto &holders = _holders[block];
        auto &owner = _owner[block];
        const bool seen = _referenced.count(block) > 0;
        _referenced.insert(block);

        if (type == RefType::Read) {
            if (holders.count(unit))
                return Event::RdHit;
            Event event;
            if (!seen)
                event = Event::RmFirstRef;
            else if (owner.has_value())
                event = Event::RmBlkDrty;
            else if (!holders.empty())
                event = Event::RmBlkCln;
            else
                event = Event::RmMemory;
            holders.insert(unit);
            return event;
        }

        Event event;
        if (holders.count(unit)) {
            event = holders.size() == 1 ? Event::WhLocal
                                        : Event::WhDistrib;
        } else if (!seen) {
            event = Event::WmFirstRef;
        } else if (owner.has_value()) {
            event = Event::WmBlkDrty;
        } else if (!holders.empty()) {
            event = Event::WmBlkCln;
        } else {
            event = Event::WmMemory;
        }
        holders.insert(unit);
        owner = unit;
        return event;
    }

  private:
    std::map<std::uint64_t, std::set<unsigned>> _holders;
    std::map<std::uint64_t, std::optional<unsigned>> _owner;
    std::set<std::uint64_t> _referenced;
};

/** Decode symbol s in [0, units*2*blocks) to (unit, type, block). */
struct Symbol
{
    unsigned unit;
    RefType type;
    std::uint64_t block;
};

Symbol
decode(unsigned s, unsigned units, unsigned blocks)
{
    Symbol sym;
    sym.unit = s % units;
    s /= units;
    sym.type = (s % 2) == 0 ? RefType::Read : RefType::Write;
    s /= 2;
    sym.block = s % blocks;
    return sym;
}

/** Capture the event an engine records for one access. */
template <typename Engine>
Event
observe(Engine &engine, const Symbol &sym)
{
    std::array<std::uint64_t, coherence::numEvents> before;
    for (std::size_t e = 0; e < coherence::numEvents; ++e)
        before[e] =
            engine.results().events.count(static_cast<Event>(e));
    engine.access(sym.unit, sym.type, sym.block);
    for (std::size_t e = 0; e < coherence::numEvents; ++e) {
        if (engine.results().events.count(static_cast<Event>(e)) !=
            before[e])
            return static_cast<Event>(e);
    }
    ADD_FAILURE() << "engine recorded no event";
    return Event::Instr;
}

TEST(ModelCheck, InvalEngineExhaustiveLength6)
{
    constexpr unsigned units = 2;
    constexpr unsigned blocks = 2;
    constexpr unsigned alphabet = units * 2 * blocks; // 8
    constexpr unsigned length = 6;
    std::uint64_t total = 1;
    for (unsigned i = 0; i < length; ++i)
        total *= alphabet;

    for (std::uint64_t seq = 0; seq < total; ++seq) {
        coherence::InvalEngineConfig cfg;
        cfg.nUnits = units;
        coherence::InvalEngine engine(cfg);
        SpecInval spec(units);
        std::uint64_t code = seq;
        for (unsigned step = 0; step < length; ++step) {
            const Symbol sym =
                decode(static_cast<unsigned>(code % alphabet), units,
                       blocks);
            code /= alphabet;
            const Event expected =
                spec.access(sym.unit, sym.type, sym.block);
            const Event got = observe(engine, sym);
            ASSERT_EQ(got, expected)
                << "sequence " << seq << " step " << step << ": spec "
                << coherence::eventName(expected) << ", engine "
                << coherence::eventName(got);
        }
    }
}

TEST(ModelCheck, DragonEngineExhaustiveLength6)
{
    constexpr unsigned units = 2;
    constexpr unsigned blocks = 2;
    constexpr unsigned alphabet = units * 2 * blocks;
    constexpr unsigned length = 6;
    std::uint64_t total = 1;
    for (unsigned i = 0; i < length; ++i)
        total *= alphabet;

    for (std::uint64_t seq = 0; seq < total; ++seq) {
        coherence::DragonEngine engine(units);
        SpecDragon spec;
        std::uint64_t code = seq;
        for (unsigned step = 0; step < length; ++step) {
            const Symbol sym =
                decode(static_cast<unsigned>(code % alphabet), units,
                       blocks);
            code /= alphabet;
            const Event expected =
                spec.access(sym.unit, sym.type, sym.block);
            const Event got = observe(engine, sym);
            ASSERT_EQ(got, expected)
                << "sequence " << seq << " step " << step;
        }
    }
}

TEST(ModelCheck, InvalEngineRandomDeepSequencesThreeUnits)
{
    constexpr unsigned units = 3;
    constexpr unsigned blocks = 3;
    gen::Rng rng(0xC0FFEE);
    for (int trial = 0; trial < 2'000; ++trial) {
        coherence::InvalEngineConfig cfg;
        cfg.nUnits = units;
        coherence::InvalEngine engine(cfg);
        SpecInval spec(units);
        for (int step = 0; step < 40; ++step) {
            Symbol sym;
            sym.unit = static_cast<unsigned>(rng.nextBelow(units));
            sym.type =
                rng.chance(0.4) ? RefType::Write : RefType::Read;
            sym.block = rng.nextBelow(blocks);
            const Event expected =
                spec.access(sym.unit, sym.type, sym.block);
            const Event got = observe(engine, sym);
            ASSERT_EQ(got, expected) << "trial " << trial << " step "
                                     << step;
        }
    }
}

TEST(ModelCheck, DragonEngineRandomDeepSequencesFourUnits)
{
    constexpr unsigned units = 4;
    constexpr unsigned blocks = 3;
    gen::Rng rng(0xBEEF);
    for (int trial = 0; trial < 2'000; ++trial) {
        coherence::DragonEngine engine(units);
        SpecDragon spec;
        for (int step = 0; step < 40; ++step) {
            Symbol sym;
            sym.unit = static_cast<unsigned>(rng.nextBelow(units));
            sym.type =
                rng.chance(0.4) ? RefType::Write : RefType::Read;
            sym.block = rng.nextBelow(blocks);
            const Event expected =
                spec.access(sym.unit, sym.type, sym.block);
            const Event got = observe(engine, sym);
            ASSERT_EQ(got, expected) << "trial " << trial << " step "
                                     << step;
        }
    }
}

/** Dir1NB reference spec: at most one copy exists. */
TEST(ModelCheck, Dir1NbExhaustiveLength6)
{
    constexpr unsigned units = 2;
    constexpr unsigned blocks = 2;
    constexpr unsigned alphabet = units * 2 * blocks;
    constexpr unsigned length = 6;
    std::uint64_t total = 1;
    for (unsigned i = 0; i < length; ++i)
        total *= alphabet;

    for (std::uint64_t seq = 0; seq < total; ++seq) {
        coherence::LimitedEngine engine(units, 1);
        // Literal single-copy spec.
        std::map<std::uint64_t, std::optional<unsigned>> holder;
        std::map<std::uint64_t, bool> dirty;
        std::set<std::uint64_t> referenced;

        std::uint64_t code = seq;
        for (unsigned step = 0; step < length; ++step) {
            const Symbol sym =
                decode(static_cast<unsigned>(code % alphabet), units,
                       blocks);
            code /= alphabet;

            Event expected;
            auto &h = holder[sym.block];
            const bool seen = referenced.count(sym.block) > 0;
            referenced.insert(sym.block);
            if (sym.type == RefType::Read) {
                if (h == sym.unit) {
                    expected = Event::RdHit;
                } else {
                    if (!seen)
                        expected = Event::RmFirstRef;
                    else if (dirty[sym.block])
                        expected = Event::RmBlkDrty;
                    else
                        expected = Event::RmBlkCln;
                    h = sym.unit;
                    dirty[sym.block] = false;
                }
            } else {
                if (h == sym.unit) {
                    expected = dirty[sym.block] ? Event::WhBlkDrty
                                                : Event::WhBlkClnExcl;
                } else if (!seen) {
                    expected = Event::WmFirstRef;
                } else {
                    expected = dirty[sym.block] ? Event::WmBlkDrty
                                                : Event::WmBlkCln;
                }
                h = sym.unit;
                dirty[sym.block] = true;
            }
            const Event got = observe(engine, sym);
            ASSERT_EQ(got, expected)
                << "sequence " << seq << " step " << step;
        }
    }
}

// --- Multi-configuration lanes ---------------------------------------

/**
 * Reference specification of the general DiriNB model, written in the
 * same literal style as the Dir1NB spec above: an ordered holder list
 * (oldest first, at most i entries), an optional dirty owner, a seen
 * set.  A read miss on a full list displaces the oldest holder; a
 * read miss to a dirty block writes back, and with i == 1 also
 * removes the ex-owner's copy; a write invalidates everyone else.
 * The displacement and 1-to-2 growth counters are tracked so the
 * engine's sharing statistics can be checked exactly, not just the
 * event classification.
 */
class SpecDirINB
{
  public:
    explicit SpecDirINB(unsigned pointers) : _pointers(pointers) {}

    Event
    access(unsigned unit, RefType type, std::uint64_t block)
    {
        auto &holders = _holders[block]; // oldest first
        auto &dirty = _dirty[block];
        const bool seen = _referenced.count(block) > 0;
        const bool holds =
            std::find(holders.begin(), holders.end(), unit) !=
            holders.end();

        if (type == RefType::Read) {
            if (holds)
                return Event::RdHit;
            _referenced.insert(block);
            Event event;
            if (!seen) {
                event = Event::RmFirstRef;
            } else if (dirty.has_value()) {
                event = Event::RmBlkDrty;
                dirty.reset();
                if (_pointers == 1)
                    holders.clear(); // the single copy moves
            } else if (!holders.empty()) {
                event = Event::RmBlkCln;
            } else {
                event = Event::RmMemory;
            }
            if (holders.size() == 1)
                ++holderGrowth12;
            if (holders.size() == _pointers) {
                holders.erase(holders.begin());
                ++displacementInvals;
            }
            holders.push_back(unit);
            return event;
        }

        // Write.
        if (holds && dirty == unit)
            return Event::WhBlkDrty;
        _referenced.insert(block);
        Event event;
        if (holds) {
            event = holders.size() == 1 ? Event::WhBlkClnExcl
                                        : Event::WhBlkClnShared;
        } else if (!seen) {
            event = Event::WmFirstRef;
        } else if (dirty.has_value()) {
            event = Event::WmBlkDrty;
        } else if (!holders.empty()) {
            event = Event::WmBlkCln;
        } else {
            event = Event::WmMemory;
        }
        holders.clear();
        holders.push_back(unit);
        dirty = unit;
        return event;
    }

    std::uint64_t holderGrowth12 = 0;
    std::uint64_t displacementInvals = 0;

  private:
    unsigned _pointers;
    std::map<std::uint64_t, std::vector<unsigned>> _holders;
    std::map<std::uint64_t, std::optional<unsigned>> _dirty;
    std::set<std::uint64_t> _referenced;
};

/** One access through the shared table; the event each lane records. */
std::vector<Event>
observeLanes(coherence::MultiLimitedEngine &multi, const Symbol &sym)
{
    const std::size_t k = multi.numLanes();
    std::vector<std::array<std::uint64_t, coherence::numEvents>>
        before(k);
    for (std::size_t l = 0; l < k; ++l)
        for (std::size_t e = 0; e < coherence::numEvents; ++e)
            before[l][e] = multi.laneResults(l).events.count(
                static_cast<Event>(e));
    multi.access(sym.unit, sym.type, sym.block);
    std::vector<Event> events(k, Event::Instr);
    for (std::size_t l = 0; l < k; ++l) {
        bool found = false;
        for (std::size_t e = 0; e < coherence::numEvents; ++e) {
            if (multi.laneResults(l).events.count(
                    static_cast<Event>(e)) != before[l][e]) {
                events[l] = static_cast<Event>(e);
                found = true;
                break;
            }
        }
        if (!found)
            ADD_FAILURE() << "lane " << l << " recorded no event";
    }
    return events;
}

/**
 * Every lane of the shared-table engine checked against its own
 * literal DiriNB spec over every length-5 sequence of 3 units × 2
 * blocks (12^5 = 248,832): per-step event equality per lane, plus
 * end-of-sequence equality of the displacement and growth counters.
 * Lanes {1, 2, 3} cover the degenerate single-copy protocol, a
 * displacing middle configuration, and a full-map-equivalent one —
 * side by side over one table, where cross-lane state bleed would be
 * a new failure mode no single-engine test can see.
 */
TEST(ModelCheckMultiConfig, LanesExhaustiveLength5)
{
    constexpr unsigned units = 3;
    constexpr unsigned blocks = 2;
    constexpr unsigned alphabet = units * 2 * blocks; // 12
    constexpr unsigned length = 5;
    const std::vector<unsigned> lanes = {1, 2, 3};
    std::uint64_t total = 1;
    for (unsigned i = 0; i < length; ++i)
        total *= alphabet;

    for (std::uint64_t seq = 0; seq < total; ++seq) {
        coherence::MultiLimitedEngine multi(units, lanes);
        std::vector<SpecDirINB> specs;
        for (const unsigned p : lanes)
            specs.emplace_back(p);
        std::uint64_t code = seq;
        for (unsigned step = 0; step < length; ++step) {
            const Symbol sym =
                decode(static_cast<unsigned>(code % alphabet), units,
                       blocks);
            code /= alphabet;
            const std::vector<Event> got = observeLanes(multi, sym);
            for (std::size_t l = 0; l < specs.size(); ++l) {
                const Event expected =
                    specs[l].access(sym.unit, sym.type, sym.block);
                ASSERT_EQ(got[l], expected)
                    << "sequence " << seq << " step " << step
                    << " lane dir" << lanes[l] << "nb: spec "
                    << coherence::eventName(expected) << ", engine "
                    << coherence::eventName(got[l]);
            }
        }
        for (std::size_t l = 0; l < specs.size(); ++l) {
            const coherence::EngineResults &r = multi.laneResults(l);
            ASSERT_EQ(r.displacementInvals,
                      specs[l].displacementInvals)
                << "sequence " << seq << " lane dir" << lanes[l]
                << "nb";
            ASSERT_EQ(r.holderGrowth12, specs[l].holderGrowth12)
                << "sequence " << seq << " lane dir" << lanes[l]
                << "nb";
        }
    }
}

// --- Finite directory caches -----------------------------------------

/**
 * Reference specification of the inval model with a tiny finite
 * directory cache in front of the directory: a 2-entry, literal-LRU
 * list of blocks with resident entries.  Every directory transaction
 * (anything but a pure RdHit / WhBlkDrty) touches the list; filling
 * it past capacity drops the least-recently-consulted entry, and
 * coherence demands the victim's copies die with it — holders
 * cleared, a dirty owner written back first.  The spec also counts
 * the eviction traffic so the engine's conservation counters can be
 * checked exactly.
 */
class SpecInvalDirCache
{
  public:
    static constexpr unsigned capacity = 2;

    Event
    access(unsigned unit, RefType type, std::uint64_t block)
    {
        auto &holders = _holders[block];
        auto &dirty = _dirty[block];
        const bool seen = _referenced.count(block) > 0;

        // Pure cache hits never reach the directory.
        if (type == RefType::Read && holders.count(unit))
            return Event::RdHit;
        if (type == RefType::Write && holders.count(unit) &&
            dirty == unit)
            return Event::WhBlkDrty;

        touchCache(block);
        _referenced.insert(block);

        if (type == RefType::Read) {
            Event event;
            if (!seen) {
                event = Event::RmFirstRef;
            } else if (dirty.has_value()) {
                event = Event::RmBlkDrty;
                dirty.reset();
            } else if (!holders.empty()) {
                event = Event::RmBlkCln;
            } else {
                event = Event::RmMemory;
            }
            holders.insert(unit);
            return event;
        }

        Event event;
        if (holders.count(unit)) {
            event = holders.size() == 1 ? Event::WhBlkClnExcl
                                        : Event::WhBlkClnShared;
        } else if (!seen) {
            event = Event::WmFirstRef;
        } else if (dirty.has_value()) {
            event = Event::WmBlkDrty;
        } else if (!holders.empty()) {
            event = Event::WmBlkCln;
        } else {
            event = Event::WmMemory;
        }
        holders.clear();
        holders.insert(unit);
        dirty = unit;
        return event;
    }

    const std::set<unsigned> &holders(std::uint64_t block)
    {
        return _holders[block];
    }
    const std::optional<unsigned> &dirtyOwner(std::uint64_t block)
    {
        return _dirty[block];
    }

    std::uint64_t evictions = 0;
    std::uint64_t evictionInvals = 0;
    std::uint64_t evictionWriteBacks = 0;

  private:
    void
    touchCache(std::uint64_t block)
    {
        for (auto it = _lru.begin(); it != _lru.end(); ++it) {
            if (*it == block) { // hit: refresh to MRU
                _lru.erase(it);
                _lru.insert(_lru.begin(), block);
                return;
            }
        }
        if (_lru.size() == capacity) { // full: evict the LRU entry
            const std::uint64_t victim = _lru.back();
            _lru.pop_back();
            ++evictions;
            evictionInvals += _holders[victim].size();
            if (_dirty[victim].has_value()) {
                ++evictionWriteBacks;
                _dirty[victim].reset();
            }
            _holders[victim].clear();
        }
        _lru.insert(_lru.begin(), block);
    }

    std::vector<std::uint64_t> _lru; //!< MRU first, size <= capacity.
    std::map<std::uint64_t, std::set<unsigned>> _holders;
    std::map<std::uint64_t, std::optional<unsigned>> _dirty;
    std::set<std::uint64_t> _referenced;
};

coherence::InvalEngine
invalWithTinyDirCache(unsigned units)
{
    coherence::InvalEngineConfig cfg;
    cfg.nUnits = units;
    cfg.dirCache.enabled = true;
    cfg.dirCache.entries = SpecInvalDirCache::capacity;
    cfg.dirCache.associativity = SpecInvalDirCache::capacity;
    return coherence::InvalEngine(cfg);
}

/**
 * The distilled eviction-coherence scenario: a 2-entry directory
 * cache, 2 CPUs, 3 blocks.  Consulting the directory for blocks 1
 * and 2 evicts block 0's entry, which must kill cpu 0's cached copy
 * — its next read of block 0 must miss (to memory: the entry died
 * clean with no other sharers), never hit stale data.
 */
TEST(ModelCheckDirCache, NoStaleReadAfterEviction)
{
    auto engine = invalWithTinyDirCache(2);
    Symbol s0{0, RefType::Read, 0};
    EXPECT_EQ(observe(engine, s0), Event::RmFirstRef);
    EXPECT_EQ(observe(engine, s0), Event::RdHit);

    Symbol s1{1, RefType::Read, 1};
    EXPECT_EQ(observe(engine, s1), Event::RmFirstRef);
    Symbol s2{1, RefType::Read, 2}; // evicts block 0's entry
    EXPECT_EQ(observe(engine, s2), Event::RmFirstRef);
    EXPECT_EQ(engine.results().dirCacheEvictions, 1u);
    EXPECT_EQ(engine.results().dirCacheEvictionInvals, 1u);
    EXPECT_EQ(engine.holders(0), 0u) << "stale copy survived eviction";

    // The re-read is a miss serviced from memory, not a stale RdHit.
    EXPECT_EQ(observe(engine, s0), Event::RmMemory);

    // Dirty variant: a written block's eviction must write back.
    auto dirtyEngine = invalWithTinyDirCache(2);
    Symbol w0{0, RefType::Write, 0};
    EXPECT_EQ(observe(dirtyEngine, w0), Event::WmFirstRef);
    EXPECT_EQ(observe(dirtyEngine, s1), Event::RmFirstRef);
    EXPECT_EQ(observe(dirtyEngine, s2), Event::RmFirstRef);
    EXPECT_EQ(dirtyEngine.results().dirCacheEvictionWriteBacks, 1u);
    EXPECT_EQ(dirtyEngine.dirtyOwner(0), -1);
    EXPECT_EQ(observe(dirtyEngine, s0), Event::RmMemory);
}

/**
 * Exhaustive check of the inval engine behind a 2-entry directory
 * cache: 2 units × 3 blocks (so the third block forces evictions),
 * every length-5 sequence (12^5 = 248,832), asserting per-step event
 * equality, per-step holder/owner state equality for every block
 * (i.e. eviction invalidation is neither missed nor overshot), and
 * end-of-sequence conservation of the eviction counters.
 */
TEST(ModelCheckDirCache, InvalEngineExhaustiveLength5)
{
    constexpr unsigned units = 2;
    constexpr unsigned blocks = 3;
    constexpr unsigned alphabet = units * 2 * blocks; // 12
    constexpr unsigned length = 5;
    std::uint64_t total = 1;
    for (unsigned i = 0; i < length; ++i)
        total *= alphabet;

    for (std::uint64_t seq = 0; seq < total; ++seq) {
        auto engine = invalWithTinyDirCache(units);
        SpecInvalDirCache spec;
        std::uint64_t code = seq;
        for (unsigned step = 0; step < length; ++step) {
            const Symbol sym =
                decode(static_cast<unsigned>(code % alphabet), units,
                       blocks);
            code /= alphabet;
            const Event expected =
                spec.access(sym.unit, sym.type, sym.block);
            const Event got = observe(engine, sym);
            ASSERT_EQ(got, expected)
                << "sequence " << seq << " step " << step << ": spec "
                << coherence::eventName(expected) << ", engine "
                << coherence::eventName(got);

            // Full sharing-state equality across every block.
            for (std::uint64_t b = 0; b < blocks; ++b) {
                std::uint64_t mask = 0;
                for (const unsigned u : spec.holders(b))
                    mask |= 1ULL << u;
                ASSERT_EQ(engine.holders(b), mask)
                    << "sequence " << seq << " step " << step
                    << " block " << b;
                const int owner = spec.dirtyOwner(b).has_value()
                                      ? static_cast<int>(
                                            *spec.dirtyOwner(b))
                                      : -1;
                ASSERT_EQ(engine.dirtyOwner(b), owner)
                    << "sequence " << seq << " step " << step
                    << " block " << b;
            }
        }
        // Eviction-traffic conservation.
        const coherence::EngineResults &r = engine.results();
        ASSERT_EQ(r.dirCacheEvictions, spec.evictions)
            << "sequence " << seq;
        ASSERT_EQ(r.dirCacheEvictionInvals, spec.evictionInvals)
            << "sequence " << seq;
        ASSERT_EQ(r.dirCacheEvictionWriteBacks,
                  spec.evictionWriteBacks)
            << "sequence " << seq;
    }
}

/** Deeper random sequences at 3 units × 4 blocks: the cache churns
 *  constantly, so eviction paths dominate. */
TEST(ModelCheckDirCache, InvalEngineRandomDeepSequencesThreeUnits)
{
    constexpr unsigned units = 3;
    constexpr unsigned blocks = 4;
    gen::Rng rng(0xD1CACE);
    for (int trial = 0; trial < 2'000; ++trial) {
        auto engine = invalWithTinyDirCache(units);
        SpecInvalDirCache spec;
        for (int step = 0; step < 60; ++step) {
            Symbol sym;
            sym.unit = static_cast<unsigned>(rng.nextBelow(units));
            sym.type =
                rng.chance(0.4) ? RefType::Write : RefType::Read;
            sym.block = rng.nextBelow(blocks);
            const Event expected =
                spec.access(sym.unit, sym.type, sym.block);
            const Event got = observe(engine, sym);
            ASSERT_EQ(got, expected) << "trial " << trial << " step "
                                     << step;
        }
        const coherence::EngineResults &r = engine.results();
        ASSERT_GT(r.dirCacheEvictions, 0u) << "trial " << trial;
        ASSERT_EQ(r.dirCacheEvictions, spec.evictions)
            << "trial " << trial;
        ASSERT_EQ(r.dirCacheEvictionInvals, spec.evictionInvals)
            << "trial " << trial;
        ASSERT_EQ(r.dirCacheEvictionWriteBacks,
                  spec.evictionWriteBacks)
            << "trial " << trial;
    }
}

/**
 * The limited (Dir1NB) engine behind the same 2-entry cache, checked
 * exhaustively with a literal single-copy spec extended with the LRU
 * list.  After an eviction the sole copy is gone, so a re-reference
 * goes to memory — a state plain Dir1NB can never reach.
 */
TEST(ModelCheckDirCache, Dir1NbExhaustiveLength5)
{
    constexpr unsigned units = 2;
    constexpr unsigned blocks = 3;
    constexpr unsigned alphabet = units * 2 * blocks;
    constexpr unsigned length = 5;
    constexpr unsigned capacity = 2;
    std::uint64_t total = 1;
    for (unsigned i = 0; i < length; ++i)
        total *= alphabet;

    directory::DirCacheConfig dc;
    dc.enabled = true;
    dc.entries = capacity;
    dc.associativity = capacity;

    for (std::uint64_t seq = 0; seq < total; ++seq) {
        coherence::LimitedEngine engine(units, 1, dc);
        std::map<std::uint64_t, std::optional<unsigned>> holder;
        std::map<std::uint64_t, bool> dirty;
        std::set<std::uint64_t> referenced;
        std::vector<std::uint64_t> lru; // MRU first
        std::uint64_t evictions = 0, invals = 0, writeBacks = 0;

        const auto touchCache = [&](std::uint64_t block) {
            for (auto it = lru.begin(); it != lru.end(); ++it) {
                if (*it == block) {
                    lru.erase(it);
                    lru.insert(lru.begin(), block);
                    return;
                }
            }
            if (lru.size() == capacity) {
                const std::uint64_t victim = lru.back();
                lru.pop_back();
                ++evictions;
                if (holder[victim].has_value())
                    ++invals;
                if (dirty[victim])
                    ++writeBacks;
                holder[victim].reset();
                dirty[victim] = false;
            }
            lru.insert(lru.begin(), block);
        };

        std::uint64_t code = seq;
        for (unsigned step = 0; step < length; ++step) {
            const Symbol sym =
                decode(static_cast<unsigned>(code % alphabet), units,
                       blocks);
            code /= alphabet;

            Event expected;
            auto &h = holder[sym.block];
            const bool seen = referenced.count(sym.block) > 0;
            if (sym.type == RefType::Read && h == sym.unit) {
                expected = Event::RdHit;
            } else if (sym.type == RefType::Write && h == sym.unit &&
                       dirty[sym.block]) {
                expected = Event::WhBlkDrty;
            } else {
                touchCache(sym.block);
                referenced.insert(sym.block);
                if (sym.type == RefType::Read) {
                    if (!seen)
                        expected = Event::RmFirstRef;
                    else if (dirty[sym.block])
                        expected = Event::RmBlkDrty;
                    else if (h.has_value())
                        expected = Event::RmBlkCln;
                    else
                        expected = Event::RmMemory;
                    h = sym.unit;
                    dirty[sym.block] = false;
                } else {
                    if (h == sym.unit) {
                        expected = Event::WhBlkClnExcl;
                    } else if (!seen) {
                        expected = Event::WmFirstRef;
                    } else if (dirty[sym.block]) {
                        expected = Event::WmBlkDrty;
                    } else if (h.has_value()) {
                        expected = Event::WmBlkCln;
                    } else {
                        expected = Event::WmMemory;
                    }
                    h = sym.unit;
                    dirty[sym.block] = true;
                }
            }
            const Event got = observe(engine, sym);
            ASSERT_EQ(got, expected)
                << "sequence " << seq << " step " << step << ": spec "
                << coherence::eventName(expected) << ", engine "
                << coherence::eventName(got);
        }
        const coherence::EngineResults &r = engine.results();
        ASSERT_EQ(r.dirCacheEvictions, evictions) << "sequence " << seq;
        ASSERT_EQ(r.dirCacheEvictionInvals, invals)
            << "sequence " << seq;
        ASSERT_EQ(r.dirCacheEvictionWriteBacks, writeBacks)
            << "sequence " << seq;
    }
}

} // namespace
