/**
 * @file
 * Exhaustive model checking of the coherence engines.
 *
 * A deliberately naive, independently written reference specification
 * of each state-change model is replayed against the production
 * engines over *every* reference sequence up to a bounded length
 * (2 units x read/write x 2 blocks = 8 symbols; all 8^6 = 262,144
 * sequences of length 6, plus sampled deeper sequences with 3 units).
 * Divergence in any event classification fails the test, so any
 * behavioural regression in the engines' fast paths is caught by
 * construction rather than by luck.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "coherence/dragon_engine.hh"
#include "coherence/inval_engine.hh"
#include "coherence/limited_engine.hh"
#include "gen/rng.hh"

namespace
{

using namespace dirsim;
using coherence::Event;
using trace::RefType;

/**
 * Reference specification of the multiple-clean/single-dirty model,
 * written in the most literal style possible (sets and maps, no
 * bit tricks).
 */
class SpecInval
{
  public:
    explicit SpecInval(unsigned units) : _units(units) {}

    Event
    access(unsigned unit, RefType type, std::uint64_t block)
    {
        auto &holders = _holders[block];
        auto &dirty = _dirty[block];
        const bool seen = _referenced.count(block) > 0;
        _referenced.insert(block);

        if (type == RefType::Read) {
            if (holders.count(unit))
                return Event::RdHit;
            Event event;
            if (!seen) {
                event = Event::RmFirstRef;
            } else if (dirty.has_value()) {
                event = Event::RmBlkDrty;
                dirty.reset(); // flushed; ex-owner keeps a clean copy
            } else if (!holders.empty()) {
                event = Event::RmBlkCln;
            } else {
                event = Event::RmMemory;
            }
            holders.insert(unit);
            return event;
        }

        // Write.
        Event event;
        if (holders.count(unit) && dirty == unit) {
            return Event::WhBlkDrty;
        } else if (holders.count(unit)) {
            event = holders.size() == 1 ? Event::WhBlkClnExcl
                                        : Event::WhBlkClnShared;
        } else if (!seen) {
            event = Event::WmFirstRef;
        } else if (dirty.has_value()) {
            event = Event::WmBlkDrty;
        } else if (!holders.empty()) {
            event = Event::WmBlkCln;
        } else {
            event = Event::WmMemory;
        }
        holders.clear();
        holders.insert(unit);
        dirty = unit;
        return event;
    }

  private:
    unsigned _units;
    std::map<std::uint64_t, std::set<unsigned>> _holders;
    std::map<std::uint64_t, std::optional<unsigned>> _dirty;
    std::set<std::uint64_t> _referenced;
};

/** Reference specification of the Dragon update model. */
class SpecDragon
{
  public:
    Event
    access(unsigned unit, RefType type, std::uint64_t block)
    {
        auto &holders = _holders[block];
        auto &owner = _owner[block];
        const bool seen = _referenced.count(block) > 0;
        _referenced.insert(block);

        if (type == RefType::Read) {
            if (holders.count(unit))
                return Event::RdHit;
            Event event;
            if (!seen)
                event = Event::RmFirstRef;
            else if (owner.has_value())
                event = Event::RmBlkDrty;
            else if (!holders.empty())
                event = Event::RmBlkCln;
            else
                event = Event::RmMemory;
            holders.insert(unit);
            return event;
        }

        Event event;
        if (holders.count(unit)) {
            event = holders.size() == 1 ? Event::WhLocal
                                        : Event::WhDistrib;
        } else if (!seen) {
            event = Event::WmFirstRef;
        } else if (owner.has_value()) {
            event = Event::WmBlkDrty;
        } else if (!holders.empty()) {
            event = Event::WmBlkCln;
        } else {
            event = Event::WmMemory;
        }
        holders.insert(unit);
        owner = unit;
        return event;
    }

  private:
    std::map<std::uint64_t, std::set<unsigned>> _holders;
    std::map<std::uint64_t, std::optional<unsigned>> _owner;
    std::set<std::uint64_t> _referenced;
};

/** Decode symbol s in [0, units*2*blocks) to (unit, type, block). */
struct Symbol
{
    unsigned unit;
    RefType type;
    std::uint64_t block;
};

Symbol
decode(unsigned s, unsigned units, unsigned blocks)
{
    Symbol sym;
    sym.unit = s % units;
    s /= units;
    sym.type = (s % 2) == 0 ? RefType::Read : RefType::Write;
    s /= 2;
    sym.block = s % blocks;
    return sym;
}

/** Capture the event an engine records for one access. */
template <typename Engine>
Event
observe(Engine &engine, const Symbol &sym)
{
    std::array<std::uint64_t, coherence::numEvents> before;
    for (std::size_t e = 0; e < coherence::numEvents; ++e)
        before[e] =
            engine.results().events.count(static_cast<Event>(e));
    engine.access(sym.unit, sym.type, sym.block);
    for (std::size_t e = 0; e < coherence::numEvents; ++e) {
        if (engine.results().events.count(static_cast<Event>(e)) !=
            before[e])
            return static_cast<Event>(e);
    }
    ADD_FAILURE() << "engine recorded no event";
    return Event::Instr;
}

TEST(ModelCheck, InvalEngineExhaustiveLength6)
{
    constexpr unsigned units = 2;
    constexpr unsigned blocks = 2;
    constexpr unsigned alphabet = units * 2 * blocks; // 8
    constexpr unsigned length = 6;
    std::uint64_t total = 1;
    for (unsigned i = 0; i < length; ++i)
        total *= alphabet;

    for (std::uint64_t seq = 0; seq < total; ++seq) {
        coherence::InvalEngineConfig cfg;
        cfg.nUnits = units;
        coherence::InvalEngine engine(cfg);
        SpecInval spec(units);
        std::uint64_t code = seq;
        for (unsigned step = 0; step < length; ++step) {
            const Symbol sym =
                decode(static_cast<unsigned>(code % alphabet), units,
                       blocks);
            code /= alphabet;
            const Event expected =
                spec.access(sym.unit, sym.type, sym.block);
            const Event got = observe(engine, sym);
            ASSERT_EQ(got, expected)
                << "sequence " << seq << " step " << step << ": spec "
                << coherence::eventName(expected) << ", engine "
                << coherence::eventName(got);
        }
    }
}

TEST(ModelCheck, DragonEngineExhaustiveLength6)
{
    constexpr unsigned units = 2;
    constexpr unsigned blocks = 2;
    constexpr unsigned alphabet = units * 2 * blocks;
    constexpr unsigned length = 6;
    std::uint64_t total = 1;
    for (unsigned i = 0; i < length; ++i)
        total *= alphabet;

    for (std::uint64_t seq = 0; seq < total; ++seq) {
        coherence::DragonEngine engine(units);
        SpecDragon spec;
        std::uint64_t code = seq;
        for (unsigned step = 0; step < length; ++step) {
            const Symbol sym =
                decode(static_cast<unsigned>(code % alphabet), units,
                       blocks);
            code /= alphabet;
            const Event expected =
                spec.access(sym.unit, sym.type, sym.block);
            const Event got = observe(engine, sym);
            ASSERT_EQ(got, expected)
                << "sequence " << seq << " step " << step;
        }
    }
}

TEST(ModelCheck, InvalEngineRandomDeepSequencesThreeUnits)
{
    constexpr unsigned units = 3;
    constexpr unsigned blocks = 3;
    gen::Rng rng(0xC0FFEE);
    for (int trial = 0; trial < 2'000; ++trial) {
        coherence::InvalEngineConfig cfg;
        cfg.nUnits = units;
        coherence::InvalEngine engine(cfg);
        SpecInval spec(units);
        for (int step = 0; step < 40; ++step) {
            Symbol sym;
            sym.unit = static_cast<unsigned>(rng.nextBelow(units));
            sym.type =
                rng.chance(0.4) ? RefType::Write : RefType::Read;
            sym.block = rng.nextBelow(blocks);
            const Event expected =
                spec.access(sym.unit, sym.type, sym.block);
            const Event got = observe(engine, sym);
            ASSERT_EQ(got, expected) << "trial " << trial << " step "
                                     << step;
        }
    }
}

TEST(ModelCheck, DragonEngineRandomDeepSequencesFourUnits)
{
    constexpr unsigned units = 4;
    constexpr unsigned blocks = 3;
    gen::Rng rng(0xBEEF);
    for (int trial = 0; trial < 2'000; ++trial) {
        coherence::DragonEngine engine(units);
        SpecDragon spec;
        for (int step = 0; step < 40; ++step) {
            Symbol sym;
            sym.unit = static_cast<unsigned>(rng.nextBelow(units));
            sym.type =
                rng.chance(0.4) ? RefType::Write : RefType::Read;
            sym.block = rng.nextBelow(blocks);
            const Event expected =
                spec.access(sym.unit, sym.type, sym.block);
            const Event got = observe(engine, sym);
            ASSERT_EQ(got, expected) << "trial " << trial << " step "
                                     << step;
        }
    }
}

/** Dir1NB reference spec: at most one copy exists. */
TEST(ModelCheck, Dir1NbExhaustiveLength6)
{
    constexpr unsigned units = 2;
    constexpr unsigned blocks = 2;
    constexpr unsigned alphabet = units * 2 * blocks;
    constexpr unsigned length = 6;
    std::uint64_t total = 1;
    for (unsigned i = 0; i < length; ++i)
        total *= alphabet;

    for (std::uint64_t seq = 0; seq < total; ++seq) {
        coherence::LimitedEngine engine(units, 1);
        // Literal single-copy spec.
        std::map<std::uint64_t, std::optional<unsigned>> holder;
        std::map<std::uint64_t, bool> dirty;
        std::set<std::uint64_t> referenced;

        std::uint64_t code = seq;
        for (unsigned step = 0; step < length; ++step) {
            const Symbol sym =
                decode(static_cast<unsigned>(code % alphabet), units,
                       blocks);
            code /= alphabet;

            Event expected;
            auto &h = holder[sym.block];
            const bool seen = referenced.count(sym.block) > 0;
            referenced.insert(sym.block);
            if (sym.type == RefType::Read) {
                if (h == sym.unit) {
                    expected = Event::RdHit;
                } else {
                    if (!seen)
                        expected = Event::RmFirstRef;
                    else if (dirty[sym.block])
                        expected = Event::RmBlkDrty;
                    else
                        expected = Event::RmBlkCln;
                    h = sym.unit;
                    dirty[sym.block] = false;
                }
            } else {
                if (h == sym.unit) {
                    expected = dirty[sym.block] ? Event::WhBlkDrty
                                                : Event::WhBlkClnExcl;
                } else if (!seen) {
                    expected = Event::WmFirstRef;
                } else {
                    expected = dirty[sym.block] ? Event::WmBlkDrty
                                                : Event::WmBlkCln;
                }
                h = sym.unit;
                dirty[sym.block] = true;
            }
            const Event got = observe(engine, sym);
            ASSERT_EQ(got, expected)
                << "sequence " << seq << " step " << step;
        }
    }
}

} // namespace
