/**
 * @file
 * Calibration tests: the synthetic workloads stand in for the paper's
 * ATUM traces, so their characteristics must stay inside bands around
 * the published Table 3 / Table 4 numbers.  These tests pin the
 * substitution documented in DESIGN.md; loosen a band only with a
 * corresponding DESIGN.md update.
 */

#include <gtest/gtest.h>

#include "analysis/evaluation.hh"
#include "analysis/exhibits.hh"
#include "gen/workloads.hh"

namespace
{

using namespace dirsim;
using namespace dirsim::analysis;
using coherence::Event;

/** Quarter-size standard workloads, evaluated once for the suite. */
const Evaluation &
standardEval()
{
    static const Evaluation e =
        evaluateWorkloads(gen::standardWorkloads());
    return e;
}

const std::vector<trace::TraceCharacteristics> &
standardChars()
{
    static const auto chars =
        characterizeWorkloads(gen::standardWorkloads());
    return chars;
}

double
evFrac(const coherence::EngineResults &r, Event e)
{
    return r.events.frac(e);
}

// ---------------------------------------------------------------------
// Table 3 bands.
// ---------------------------------------------------------------------

TEST(Table3, InstructionFractions)
{
    // Paper: pops 51.7 %, thor 45.2 %, pero 52.3 %.
    const auto &chars = standardChars();
    EXPECT_NEAR(static_cast<double>(chars[0].instr) / chars[0].refs,
                0.517, 0.03);
    EXPECT_NEAR(static_cast<double>(chars[1].instr) / chars[1].refs,
                0.452, 0.03);
    EXPECT_NEAR(static_cast<double>(chars[2].instr) / chars[2].refs,
                0.523, 0.03);
}

TEST(Table3, SystemReferenceShares)
{
    // Paper: pops 10.3 %, thor 15.4 %, pero 7.6 %.
    const auto &chars = standardChars();
    EXPECT_NEAR(static_cast<double>(chars[0].system) / chars[0].refs,
                0.103, 0.02);
    EXPECT_NEAR(static_cast<double>(chars[1].system) / chars[1].refs,
                0.154, 0.02);
    EXPECT_NEAR(static_cast<double>(chars[2].system) / chars[2].refs,
                0.076, 0.02);
}

TEST(Table3, ReadWriteRatios)
{
    // Paper: pops 4.8, thor 3.8, pero 3.1 — and the ordering.
    const auto &chars = standardChars();
    EXPECT_NEAR(chars[0].readWriteRatio(), 4.8, 1.0);
    EXPECT_NEAR(chars[1].readWriteRatio(), 3.8, 0.9);
    EXPECT_NEAR(chars[2].readWriteRatio(), 3.1, 0.8);
    EXPECT_GT(chars[0].readWriteRatio(), chars[1].readWriteRatio());
    EXPECT_GT(chars[1].readWriteRatio(), chars[2].readWriteRatio());
}

TEST(Table3, SpinReadShares)
{
    // Paper: roughly one third of pops/thor reads are lock spins;
    // pero's read ratio comes from the algorithm, not locks.
    const auto &chars = standardChars();
    EXPECT_NEAR(chars[0].lockTestReadFrac(), 0.33, 0.08);
    EXPECT_NEAR(chars[1].lockTestReadFrac(), 0.33, 0.08);
    EXPECT_LT(chars[2].lockTestReadFrac(), 0.02);
}

TEST(Table3, SharedReferencesSmallestInPero)
{
    const auto &chars = standardChars();
    const double pops_shared =
        static_cast<double>(chars[0].refsToSharedBlocks) /
        chars[0].refs;
    const double pero_shared =
        static_cast<double>(chars[2].refsToSharedBlocks) /
        chars[2].refs;
    EXPECT_LT(pero_shared, 0.5 * pops_shared);
}

// ---------------------------------------------------------------------
// Table 4 bands (trace average).
// ---------------------------------------------------------------------

TEST(Table4Bands, OverallMix)
{
    const auto &iv = standardEval().average.inval;
    // Paper: instr 49.72, read 39.82, write 10.46.
    EXPECT_NEAR(evFrac(iv, Event::Instr), 0.4972, 0.02);
    const double reads =
        static_cast<double>(iv.events.reads()) /
        iv.events.totalRefs();
    const double writes =
        static_cast<double>(iv.events.writes()) /
        iv.events.totalRefs();
    EXPECT_NEAR(reads, 0.3982, 0.025);
    EXPECT_NEAR(writes, 0.1046, 0.015);
}

TEST(Table4Bands, FirstReferenceMisses)
{
    // Paper: rm-first-ref 0.32 %, wm-first-ref 0.08 %.
    const auto &iv = standardEval().average.inval;
    EXPECT_NEAR(evFrac(iv, Event::RmFirstRef), 0.0032, 0.0015);
    EXPECT_NEAR(evFrac(iv, Event::WmFirstRef), 0.0008, 0.0006);
}

TEST(Table4Bands, Dir0bMissRates)
{
    const auto &iv = standardEval().average.inval;
    // Paper: rm 0.62 % (0.23 cln + 0.40 drty), wm 0.11 %.
    const double rm = static_cast<double>(iv.events.readMisses()) /
                      iv.events.totalRefs();
    EXPECT_NEAR(rm, 0.0062, 0.003);
    EXPECT_NEAR(evFrac(iv, Event::RmBlkCln), 0.0023, 0.0015);
    EXPECT_NEAR(evFrac(iv, Event::RmBlkDrty), 0.0040, 0.002);
    const double wm = static_cast<double>(iv.events.writeMisses()) /
                      iv.events.totalRefs();
    EXPECT_NEAR(wm, 0.0011, 0.0008);
}

TEST(Table4Bands, Dir1nbMissRates)
{
    const auto &d1 = standardEval().average.dir1nb;
    // Paper: rm 5.18 % — the single-copy restriction is an order of
    // magnitude worse than Dir0B.
    const double rm = static_cast<double>(d1.events.readMisses()) /
                      d1.events.totalRefs();
    EXPECT_NEAR(rm, 0.0518, 0.02);
    const auto &iv = standardEval().average.inval;
    EXPECT_GT(rm, 5.0 * static_cast<double>(iv.events.readMisses()) /
                      iv.events.totalRefs());
}

TEST(Table4Bands, Dir0bWriteHitsClean)
{
    const auto &iv = standardEval().average.inval;
    // Paper: wh-blk-cln 0.41 %.
    const double wh_cln =
        static_cast<double>(iv.events.writeHitsClean()) /
        iv.events.totalRefs();
    EXPECT_NEAR(wh_cln, 0.0041, 0.0025);
}

TEST(Table4Bands, DragonEvents)
{
    const auto &dg = standardEval().average.dragon;
    // Paper: rm 0.30 %, wh-distrib 1.74 %, wm 0.02 %.
    const double rm = static_cast<double>(dg.events.readMisses()) /
                      dg.events.totalRefs();
    EXPECT_NEAR(rm, 0.0030, 0.002);
    EXPECT_NEAR(evFrac(dg, Event::WhDistrib), 0.0174, 0.007);
    const double wm = static_cast<double>(dg.events.writeMisses()) /
                      dg.events.totalRefs();
    EXPECT_LT(wm, 0.002);
}

TEST(Table4Bands, Figure1AtMostOne)
{
    // Paper: over 85 % of writes to previously-clean blocks
    // invalidate at most one cache.
    const Figure1 fig = figure1(standardEval());
    EXPECT_GE(fig.fracAtMostOne, 0.82);
}

// ---------------------------------------------------------------------
// Headline cost bands (pipelined bus, Table 5 cumulative row).
// ---------------------------------------------------------------------

TEST(CostBands, PipelinedCumulative)
{
    const auto costs = schemeCosts(standardEval().average);
    // Published: 0.3210 / 0.1466 / 0.0491 / 0.0336.  Bands are
    // +-35 % — tight enough to pin factors, loose enough to tolerate
    // synthetic-trace drift.
    EXPECT_NEAR(costs[0].pipelined.total(), 0.3210, 0.112);
    EXPECT_NEAR(costs[1].pipelined.total(), 0.1466, 0.051);
    EXPECT_NEAR(costs[2].pipelined.total(), 0.0491, 0.017);
    EXPECT_NEAR(costs[3].pipelined.total(), 0.0336, 0.012);
}

TEST(CostBands, TransactionCoefficients)
{
    const auto costs = schemeCosts(standardEval().average);
    // Published q coefficients: Dir0B 0.0114, Dragon 0.0206; the key
    // shape is Dragon making substantially more transactions.
    EXPECT_NEAR(costs[2].pipelined.transactionsPerRef, 0.0114, 0.005);
    EXPECT_NEAR(costs[3].pipelined.transactionsPerRef, 0.0206, 0.008);
    EXPECT_GT(costs[3].pipelined.transactionsPerRef,
              costs[2].pipelined.transactionsPerRef);
}

TEST(CostBands, ScalingIsSizeInvariant)
{
    // Event frequencies barely move between quarter- and eighth-size
    // runs: the calibration does not depend on trace length.
    auto small = gen::standardWorkloads();
    for (auto &cfg : small)
        cfg.totalRefs /= 2;
    const Evaluation half = evaluateWorkloads(small);
    const auto full_costs = schemeCosts(standardEval().average);
    const auto half_costs = schemeCosts(half.average);
    for (std::size_t s = 0; s < full_costs.size(); ++s) {
        const double a = full_costs[s].pipelined.total();
        const double b = half_costs[s].pipelined.total();
        EXPECT_NEAR(a, b, 0.30 * std::max(a, b))
            << full_costs[s].name;
    }
}

} // namespace
