/**
 * @file
 * End-to-end integration tests: the full pipeline — synthetic
 * workload -> trace (optionally through serialisation) -> simulator ->
 * cost model — reproduces the paper's qualitative results.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/evaluation.hh"
#include "analysis/exhibits.hh"
#include "coherence/inval_engine.hh"
#include "coherence/limited_engine.hh"
#include "gen/workloads.hh"
#include "sim/cost_model.hh"
#include "sim/simulator.hh"
#include "trace/filter.hh"
#include "trace/io.hh"

namespace
{

using namespace dirsim;
using namespace dirsim::analysis;

std::vector<gen::WorkloadConfig>
mediumWorkloads()
{
    auto workloads = gen::standardWorkloads();
    for (auto &cfg : workloads)
        cfg.totalRefs = 250'000;
    return workloads;
}

class PaperShape : public ::testing::Test
{
  protected:
    static const Evaluation &
    eval()
    {
        static const Evaluation e =
            evaluateWorkloads(mediumWorkloads());
        return e;
    }

    static const std::vector<SchemeCost> &
    costs()
    {
        static const std::vector<SchemeCost> c =
            schemeCosts(eval().average);
        return c;
    }
};

TEST_F(PaperShape, Figure2Ordering)
{
    // Dir1NB >> WTI >> Dir0B > Dragon, on both bus models.
    const auto &c = costs();
    EXPECT_GT(c[0].pipelined.total(), c[1].pipelined.total());
    EXPECT_GT(c[1].pipelined.total(), c[2].pipelined.total());
    EXPECT_GT(c[2].pipelined.total(), c[3].pipelined.total());
    EXPECT_GT(c[0].nonPipelined.total(), c[1].nonPipelined.total());
    EXPECT_GT(c[1].nonPipelined.total(), c[2].nonPipelined.total());
    EXPECT_GT(c[2].nonPipelined.total(), c[3].nonPipelined.total());
}

TEST_F(PaperShape, Figure2Magnitudes)
{
    // The paper's published pipelined numbers: Dir1NB 0.3210,
    // WTI 0.1466, Dir0B 0.0491, Dragon 0.0336.  The synthetic traces
    // reproduce them within a factor-level band.
    EXPECT_NEAR(costs()[0].pipelined.total(), 0.3210, 0.12);
    EXPECT_NEAR(costs()[1].pipelined.total(), 0.1466, 0.03);
    EXPECT_NEAR(costs()[2].pipelined.total(), 0.0491, 0.015);
    EXPECT_NEAR(costs()[3].pipelined.total(), 0.0336, 0.012);
}

TEST_F(PaperShape, Figure2Ratios)
{
    // Who wins by roughly what factor.
    const double wti_over_dir0b =
        costs()[1].pipelined.total() / costs()[2].pipelined.total();
    EXPECT_GT(wti_over_dir0b, 2.0);
    EXPECT_LT(wti_over_dir0b, 5.0);
    const double dir0b_over_dragon =
        costs()[2].pipelined.total() / costs()[3].pipelined.total();
    // Paper: Dir0B uses close to 50% more cycles than Dragon.
    EXPECT_GT(dir0b_over_dragon, 1.2);
    EXPECT_LT(dir0b_over_dragon, 2.2);
    const double dir1nb_over_dir0b =
        costs()[0].pipelined.total() / costs()[2].pipelined.total();
    // Paper: over a factor of six.
    EXPECT_GT(dir1nb_over_dir0b, 4.0);
}

TEST_F(PaperShape, RelativePerformanceBusIndependent)
{
    // "The relative performance of the four schemes does not depend
    // strongly on the sophistication of the bus."
    const auto &c = costs();
    for (std::size_t a = 0; a < c.size(); ++a) {
        for (std::size_t b = a + 1; b < c.size(); ++b) {
            const double pipe_ratio =
                c[a].pipelined.total() / c[b].pipelined.total();
            const double np_ratio =
                c[a].nonPipelined.total() / c[b].nonPipelined.total();
            EXPECT_GT(pipe_ratio / np_ratio, 0.4);
            EXPECT_LT(pipe_ratio / np_ratio, 2.5);
        }
    }
}

TEST_F(PaperShape, Table4EventFrequencyStructure)
{
    const auto &avg = eval().average;
    const auto &iv = avg.inval.events;
    const auto &d1 = avg.dir1nb.events;
    const auto &dg = avg.dragon.events;

    // Dir1NB has far more read misses than Dir0B (read sharing).
    EXPECT_GT(d1.readMisses(), 4 * iv.readMisses());
    // Dragon misses least (no invalidations).
    EXPECT_LT(dg.readMisses(), iv.readMisses());
    // Write misses are rare everywhere: most writes follow a read.
    EXPECT_LT(iv.writeMisses(), iv.readMisses());
    // Dragon's key cost events are write hits to shared blocks.
    EXPECT_GT(dg.count(coherence::Event::WhDistrib),
              dg.readMisses() + dg.writeMisses());
}

TEST_F(PaperShape, ConsistencyMissesAreMeaningful)
{
    // Section 5: consistency-related misses are a substantial share
    // of the Dir0B miss rate (36 % in the paper).
    const auto &iv = eval().average.inval.events;
    const auto &dg = eval().average.dragon.events;
    const double dir0b_data_miss =
        static_cast<double>(iv.readMisses() + iv.writeMisses() +
                            iv.count(coherence::Event::RmFirstRef) +
                            iv.count(coherence::Event::WmFirstRef));
    const double native_miss =
        static_cast<double>(dg.readMisses() + dg.writeMisses() +
                            dg.count(coherence::Event::RmFirstRef) +
                            dg.count(coherence::Event::WmFirstRef));
    const double coherency_frac =
        (dir0b_data_miss - native_miss) / dir0b_data_miss;
    EXPECT_GT(coherency_frac, 0.15);
    EXPECT_LT(coherency_frac, 0.65);
}

TEST_F(PaperShape, Figure1MostInvalidationsHitAtMostOneCache)
{
    const Figure1 fig = figure1(eval());
    EXPECT_GE(fig.fracAtMostOne, 0.80);
}

TEST_F(PaperShape, Figure3PeroIsCheapest)
{
    // "The numbers for POPS and THOR are similar, while those for
    // PERO are much smaller."
    ASSERT_EQ(eval().traces.size(), 3u);
    const auto pops = schemeCosts(eval().traces[0]);
    const auto thor = schemeCosts(eval().traces[1]);
    const auto pero = schemeCosts(eval().traces[2]);
    // Compare the directory schemes (WTI is dominated by the
    // write-through policy, not by sharing).
    for (std::size_t s : {0u, 2u, 3u}) {
        EXPECT_LT(pero[s].pipelined.total(),
                  0.6 * pops[s].pipelined.total())
            << pero[s].name;
        EXPECT_LT(pero[s].pipelined.total(),
                  0.6 * thor[s].pipelined.total())
            << pero[s].name;
    }
}

TEST_F(PaperShape, Section52SpinLocksDominateDir1NB)
{
    EvalOptions opts;
    opts.dropLockTests = true;
    const Evaluation no_locks =
        evaluateWorkloads(mediumWorkloads(), opts);
    const auto with_costs = costs();
    const auto without_costs = schemeCosts(no_locks.average);
    // Paper: Dir1NB improves from 0.32 to 0.12 (a ~60 % drop);
    // Dir0B is essentially unchanged.
    const double d1_with = with_costs[0].pipelined.total();
    const double d1_without = without_costs[0].pipelined.total();
    EXPECT_LT(d1_without, 0.6 * d1_with);
    const double d0_with = with_costs[2].pipelined.total();
    const double d0_without = without_costs[2].pipelined.total();
    EXPECT_NEAR(d0_without, d0_with, 0.25 * d0_with);
}

TEST_F(PaperShape, Section51OverheadNarrowsDragonLead)
{
    const auto pipe = bus::standardBuses().pipelined;
    sim::CostOptions q0;
    sim::CostOptions q1;
    q1.overheadQ = 1.0;
    const double d0_q0 = sim::computeCost(sim::Scheme::Dir0B,
                                          eval().average.inval, pipe,
                                          q0)
                             .total();
    const double dr_q0 = sim::computeCost(sim::Scheme::Dragon,
                                          eval().average.dragon, pipe,
                                          q0)
                             .total();
    const double d0_q1 = sim::computeCost(sim::Scheme::Dir0B,
                                          eval().average.inval, pipe,
                                          q1)
                             .total();
    const double dr_q1 = sim::computeCost(sim::Scheme::Dragon,
                                          eval().average.dragon, pipe,
                                          q1)
                             .total();
    EXPECT_LT(d0_q1 / dr_q1, d0_q0 / dr_q0);
}

TEST_F(PaperShape, Section6SequentialInvalidationIsCheap)
{
    const Section6 sec = section6(eval());
    // Paper: 0.0491 -> 0.0499, i.e. well under 5 % extra.
    EXPECT_LT(sec.dirnnbSeq - sec.dir0b, 0.05 * sec.dir0b);
    // Dir1B with a 1-cycle broadcast matches Dir0B closely.
    EXPECT_NEAR(sec.dir1bBase + sec.dir1bCoef, sec.dir0b,
                0.02 * sec.dir0b);
}

TEST(IntegrationPipeline, SerialisedTraceGivesIdenticalResults)
{
    // workload -> binary file -> reload -> simulate must equal the
    // streaming result bit-for-bit.
    gen::WorkloadConfig cfg = gen::popsConfig();
    cfg.totalRefs = 60'000;

    const Evaluation direct = evaluateWorkloads({cfg});

    gen::WorkloadSource source(cfg);
    trace::MemoryTrace materialised(source.meta());
    materialised.fillFrom(source);
    std::stringstream buffer;
    trace::writeBinary(materialised, buffer);
    const trace::MemoryTrace loaded = trace::readBinary(buffer);

    sim::Simulator simulator;
    coherence::InvalEngineConfig icfg;
    icfg.nUnits = cfg.space.nProcesses;
    auto &inval = simulator.addEngine(
        std::make_unique<coherence::InvalEngine>(icfg));
    trace::MemoryTraceSource replay(loaded);
    simulator.run(replay);

    for (std::size_t e = 0; e < coherence::numEvents; ++e) {
        const auto event = static_cast<coherence::Event>(e);
        EXPECT_EQ(inval.results().events.count(event),
                  direct.average.inval.events.count(event))
            << coherence::eventName(event);
    }
}

TEST(IntegrationPipeline, LockFilterMatchesMetaAddresses)
{
    // Dropping lock tests by flag must never drop a read outside the
    // advertised lock-address set.
    gen::WorkloadConfig cfg = gen::thorConfig();
    cfg.totalRefs = 80'000;
    gen::WorkloadSource source(cfg);
    const auto lock_addrs = source.meta().lockAddrs;
    trace::TraceRecord rec;
    while (source.next(rec)) {
        if (rec.isLockTest()) {
            EXPECT_EQ(lock_addrs.count(rec.addr), 1u);
        }
    }
}

TEST(IntegrationPipeline, WtiAndDir0bShareEventFrequencies)
{
    // The paper's observation that event frequencies depend only on
    // the state-change model: the WTI column of Table 4 is the Dir0B
    // column.  Structurally true here (same engine), asserted to
    // protect the design invariant.
    const Evaluation e = evaluateWorkloads(
        {[] {
            auto cfg = gen::popsConfig();
            cfg.totalRefs = 50'000;
            return cfg;
        }()});
    const auto &wti = resultsFor(PaperScheme::WTI, e.average);
    const auto &d0 = resultsFor(PaperScheme::Dir0B, e.average);
    EXPECT_EQ(&wti, &d0);
}

} // namespace
