/**
 * @file
 * Tests for the coherence state engines: event classification,
 * invalidation fanout accounting, directory shadowing, finite caches,
 * and cross-engine equivalence properties.
 */

#include <gtest/gtest.h>

#include <memory>

#include "coherence/dragon_engine.hh"
#include "coherence/inval_engine.hh"
#include "coherence/limited_engine.hh"
#include "directory/coarse_vector.hh"
#include "directory/full_map.hh"
#include "directory/limited_pointer.hh"
#include "directory/two_bit.hh"
#include "gen/rng.hh"
#include "mem/set_assoc.hh"

namespace
{

using namespace dirsim::coherence;
using dirsim::mem::BlockId;
using dirsim::trace::RefType;

constexpr RefType R = RefType::Read;
constexpr RefType W = RefType::Write;
constexpr RefType I = RefType::Instr;

InvalEngine
makeInval(unsigned units = 4)
{
    InvalEngineConfig cfg;
    cfg.nUnits = units;
    return InvalEngine(cfg);
}

// ---------------------------------------------------------------------
// Event-count bookkeeping shared by all engines.
// ---------------------------------------------------------------------

TEST(EventCounts, NamesAreDistinct)
{
    std::set<std::string> names;
    for (std::size_t e = 0; e < numEvents; ++e)
        names.insert(eventName(static_cast<Event>(e)));
    EXPECT_EQ(names.size(), numEvents);
}

TEST(EventCounts, AggregatesSum)
{
    EventCounts counts;
    counts.record(Event::Instr);
    counts.record(Event::RdHit);
    counts.record(Event::RmBlkCln);
    counts.record(Event::RmFirstRef);
    counts.record(Event::WhBlkDrty);
    counts.record(Event::WmBlkDrty);
    counts.record(Event::WmFirstRef);
    EXPECT_EQ(counts.totalRefs(), 7u);
    EXPECT_EQ(counts.reads(), 3u);
    EXPECT_EQ(counts.writes(), 3u);
    EXPECT_EQ(counts.readMisses(), 1u);
    EXPECT_EQ(counts.writeMisses(), 1u);
    EXPECT_EQ(counts.writeHits(), 1u);
    EXPECT_DOUBLE_EQ(counts.frac(Event::RdHit), 1.0 / 7.0);
}

TEST(EventCounts, MergeAddsEverything)
{
    EventCounts a;
    EventCounts b;
    a.record(Event::RdHit);
    b.record(Event::RdHit);
    b.record(Event::Instr);
    a.merge(b);
    EXPECT_EQ(a.count(Event::RdHit), 2u);
    EXPECT_EQ(a.totalRefs(), 3u);
}

// ---------------------------------------------------------------------
// InvalEngine (Dir0B / WTI / DirnNB state model).
// ---------------------------------------------------------------------

TEST(Inval, InstructionsCauseNoState)
{
    InvalEngine eng = makeInval();
    eng.access(0, I, 100);
    EXPECT_EQ(eng.results().events.count(Event::Instr), 1u);
    EXPECT_EQ(eng.holders(100), 0u);
}

TEST(Inval, FirstReadThenHit)
{
    InvalEngine eng = makeInval();
    eng.access(0, R, 10);
    EXPECT_EQ(eng.results().events.count(Event::RmFirstRef), 1u);
    EXPECT_EQ(eng.holders(10), 0b0001u);
    eng.access(0, R, 10);
    EXPECT_EQ(eng.results().events.count(Event::RdHit), 1u);
}

TEST(Inval, ReadMissCleanElsewhere)
{
    InvalEngine eng = makeInval();
    eng.access(0, R, 10);
    eng.access(1, R, 10);
    EXPECT_EQ(eng.results().events.count(Event::RmBlkCln), 1u);
    EXPECT_EQ(eng.holders(10), 0b0011u);
    EXPECT_EQ(eng.dirtyOwner(10), -1);
}

TEST(Inval, ReadMissDirtyFlushesAndShares)
{
    InvalEngine eng = makeInval();
    eng.access(0, W, 10); // first ref, dirty in 0
    ASSERT_EQ(eng.dirtyOwner(10), 0);
    eng.access(1, R, 10);
    EXPECT_EQ(eng.results().events.count(Event::RmBlkDrty), 1u);
    // Ex-owner keeps a clean copy; requester added.
    EXPECT_EQ(eng.holders(10), 0b0011u);
    EXPECT_EQ(eng.dirtyOwner(10), -1);
}

TEST(Inval, WriteHitDirtyIsFree)
{
    InvalEngine eng = makeInval();
    eng.access(0, W, 10);
    eng.access(0, W, 10);
    EXPECT_EQ(eng.results().events.count(Event::WhBlkDrty), 1u);
    EXPECT_EQ(eng.holders(10), 0b0001u);
}

TEST(Inval, WriteHitCleanExclusive)
{
    InvalEngine eng = makeInval();
    eng.access(0, R, 10);
    eng.access(0, W, 10);
    EXPECT_EQ(eng.results().events.count(Event::WhBlkClnExcl), 1u);
    EXPECT_EQ(eng.results().whClnFanout.count(0), 1u);
    EXPECT_EQ(eng.dirtyOwner(10), 0);
}

TEST(Inval, WriteHitCleanSharedInvalidatesOthers)
{
    InvalEngine eng = makeInval();
    eng.access(0, R, 10);
    eng.access(1, R, 10);
    eng.access(2, R, 10);
    eng.access(1, W, 10);
    EXPECT_EQ(eng.results().events.count(Event::WhBlkClnShared), 1u);
    EXPECT_EQ(eng.results().whClnFanout.count(2), 1u);
    EXPECT_EQ(eng.holders(10), 0b0010u);
    EXPECT_EQ(eng.dirtyOwner(10), 1);
    // The invalidated caches now miss.
    eng.access(0, R, 10);
    EXPECT_EQ(eng.results().events.count(Event::RmBlkDrty), 1u);
}

TEST(Inval, WriteMissCleanInvalidatesAll)
{
    InvalEngine eng = makeInval();
    eng.access(0, R, 10);
    eng.access(1, R, 10);
    eng.access(2, W, 10);
    EXPECT_EQ(eng.results().events.count(Event::WmBlkCln), 1u);
    EXPECT_EQ(eng.results().wmClnFanout.count(2), 1u);
    EXPECT_EQ(eng.holders(10), 0b0100u);
}

TEST(Inval, WriteMissDirtyFlushesAndInvalidates)
{
    InvalEngine eng = makeInval();
    eng.access(0, W, 10);
    eng.access(1, W, 10);
    EXPECT_EQ(eng.results().events.count(Event::WmBlkDrty), 1u);
    EXPECT_EQ(eng.holders(10), 0b0010u);
    EXPECT_EQ(eng.dirtyOwner(10), 1);
}

TEST(Inval, DirtyImpliesSoleHolderInvariant)
{
    InvalEngine eng = makeInval();
    dirsim::gen::Rng rng(1);
    for (int i = 0; i < 20'000; ++i) {
        const unsigned unit = static_cast<unsigned>(rng.nextBelow(4));
        const BlockId block = rng.nextBelow(50);
        eng.access(unit, rng.chance(0.3) ? W : R, block);
        if (eng.dirtyOwner(block) >= 0) {
            ASSERT_EQ(eng.holders(block),
                      1ULL << eng.dirtyOwner(block));
        }
    }
}

TEST(Inval, HolderGrowth12Counts)
{
    InvalEngine eng = makeInval();
    eng.access(0, R, 10); // 0 -> 1 holders
    eng.access(1, R, 10); // 1 -> 2: counts
    eng.access(2, R, 10); // 2 -> 3: no
    EXPECT_EQ(eng.results().holderGrowth12, 1u);
    eng.access(3, W, 10); // reset to 1
    eng.access(0, R, 10); // 1 -> 2 again
    EXPECT_EQ(eng.results().holderGrowth12, 2u);
}

TEST(Inval, ResetClearsState)
{
    InvalEngine eng = makeInval();
    eng.access(0, W, 10);
    eng.reset();
    EXPECT_EQ(eng.results().events.totalRefs(), 0u);
    EXPECT_EQ(eng.holders(10), 0u);
    eng.access(0, R, 10);
    EXPECT_EQ(eng.results().events.count(Event::RmFirstRef), 1u);
}

TEST(Inval, RejectsBadUnitCounts)
{
    InvalEngineConfig cfg;
    cfg.nUnits = 0;
    EXPECT_THROW(InvalEngine{cfg}, std::invalid_argument);
    cfg.nUnits = 65;
    EXPECT_THROW(InvalEngine{cfg}, std::invalid_argument);
}

// ---------------------------------------------------------------------
// InvalEngine with a shadowed directory organisation.
// ---------------------------------------------------------------------

TEST(InvalDirectory, FullMapSendsExactMessages)
{
    dirsim::directory::FullMapFactory factory;
    InvalEngineConfig cfg;
    cfg.nUnits = 4;
    cfg.dirFactory = &factory;
    InvalEngine eng(cfg);
    eng.access(0, R, 10);
    eng.access(1, R, 10);
    eng.access(2, R, 10);
    eng.access(0, W, 10); // invalidate 1 and 2, directed
    EXPECT_EQ(eng.results().dirDirectedInvals, 2u);
    EXPECT_EQ(eng.results().dirBroadcasts, 0u);
    EXPECT_EQ(eng.results().dirOvershoot, 0u);
}

TEST(InvalDirectory, TwoBitBroadcastsWhenShared)
{
    dirsim::directory::TwoBitFactory factory;
    InvalEngineConfig cfg;
    cfg.nUnits = 4;
    cfg.dirFactory = &factory;
    InvalEngine eng(cfg);
    eng.access(0, R, 10);
    eng.access(0, W, 10); // clean-exclusive hit: no broadcast
    EXPECT_EQ(eng.results().dirBroadcasts, 0u);
    eng.access(1, R, 10);
    eng.access(2, R, 10);
    eng.access(1, W, 10); // clean-many: broadcast
    EXPECT_EQ(eng.results().dirBroadcasts, 1u);
}

TEST(InvalDirectory, LimitedPointerOverflowBroadcasts)
{
    dirsim::directory::LimitedPointerFactory factory(1, true);
    InvalEngineConfig cfg;
    cfg.nUnits = 4;
    cfg.dirFactory = &factory;
    InvalEngine eng(cfg);
    eng.access(0, R, 10);
    eng.access(1, R, 10); // overflow: broadcast bit set
    eng.access(2, W, 10);
    EXPECT_EQ(eng.results().dirBroadcasts, 1u);
    // After the write the single pointer tracks the owner again.
    eng.access(3, W, 10);
    EXPECT_EQ(eng.results().dirBroadcasts, 1u);
    EXPECT_EQ(eng.results().dirDirectedInvals, 1u);
}

TEST(InvalDirectory, CoarseVectorOvershootsButCovers)
{
    dirsim::directory::CoarseVectorFactory factory;
    InvalEngineConfig cfg;
    cfg.nUnits = 8;
    cfg.dirFactory = &factory;
    InvalEngine eng(cfg);
    // Holders {0, 3}: code denotes a superset of size 4.
    eng.access(0, R, 10);
    eng.access(3, R, 10);
    eng.access(0, W, 10);
    // Directed messages = |denoted \ {writer}| = 3 when digits 0 and 1
    // are "both"; exactly one holder (3) plus overshoot (1, 2).
    EXPECT_EQ(eng.results().dirBroadcasts, 0u);
    EXPECT_EQ(eng.results().dirDirectedInvals, 3u);
    EXPECT_EQ(eng.results().dirOvershoot, 2u);
}

TEST(InvalDirectory, RandomTrafficNeverTripsCoverageAssert)
{
    // The engine asserts that a shadowed directory's targets cover all
    // real holders; drive every organisation with random traffic.
    std::vector<std::unique_ptr<dirsim::directory::DirEntryFactory>>
        factories;
    factories.push_back(
        std::make_unique<dirsim::directory::FullMapFactory>());
    factories.push_back(
        std::make_unique<dirsim::directory::TwoBitFactory>());
    factories.push_back(
        std::make_unique<dirsim::directory::LimitedPointerFactory>(
            2, true));
    factories.push_back(
        std::make_unique<dirsim::directory::CoarseVectorFactory>());
    for (const auto &factory : factories) {
        InvalEngineConfig cfg;
        cfg.nUnits = 8;
        cfg.dirFactory = factory.get();
        InvalEngine eng(cfg);
        dirsim::gen::Rng rng(7);
        for (int i = 0; i < 30'000; ++i) {
            eng.access(static_cast<unsigned>(rng.nextBelow(8)),
                       rng.chance(0.3) ? W : R, rng.nextBelow(64));
        }
        EXPECT_GT(eng.results().dirDirectedInvals +
                      eng.results().dirBroadcasts,
                  0u);
    }
}

// ---------------------------------------------------------------------
// InvalEngine with finite caches.
// ---------------------------------------------------------------------

TEST(InvalFinite, EvictionProducesMemoryMisses)
{
    InvalEngineConfig cfg;
    cfg.nUnits = 2;
    cfg.cacheFactory = [] {
        // Tiny cache: 4 sets x 1 way of 16-byte blocks.
        return std::make_unique<dirsim::mem::SetAssocTagStore>(
            dirsim::mem::CacheGeometry{64, 16, 1});
    };
    InvalEngine eng(cfg);
    // Fill unit 0 with conflicting blocks (same set 0): 0, 4, 8.
    eng.access(0, R, 0);
    eng.access(0, R, 4); // evicts block 0
    EXPECT_EQ(eng.results().replacementEvictions, 1u);
    EXPECT_EQ(eng.holders(0), 0u);
    eng.access(0, R, 0); // referenced before, in no cache
    EXPECT_EQ(eng.results().events.count(Event::RmMemory), 1u);
}

TEST(InvalFinite, DirtyEvictionWritesBack)
{
    InvalEngineConfig cfg;
    cfg.nUnits = 2;
    cfg.cacheFactory = [] {
        return std::make_unique<dirsim::mem::SetAssocTagStore>(
            dirsim::mem::CacheGeometry{64, 16, 1});
    };
    InvalEngine eng(cfg);
    eng.access(0, W, 0);
    eng.access(0, R, 4); // evicts dirty block 0
    EXPECT_EQ(eng.results().replacementWriteBacks, 1u);
    EXPECT_EQ(eng.dirtyOwner(0), -1);
    // A later write miss to block 0 finds it in memory.
    eng.access(1, W, 0);
    EXPECT_EQ(eng.results().events.count(Event::WmMemory), 1u);
}

TEST(InvalFinite, HoldersMatchTagStores)
{
    InvalEngineConfig cfg;
    cfg.nUnits = 4;
    cfg.cacheFactory = [] {
        return std::make_unique<dirsim::mem::SetAssocTagStore>(
            dirsim::mem::CacheGeometry{256, 16, 2});
    };
    InvalEngine eng(cfg);
    dirsim::gen::Rng rng(3);
    for (int i = 0; i < 20'000; ++i) {
        eng.access(static_cast<unsigned>(rng.nextBelow(4)),
                   rng.chance(0.3) ? W : R, rng.nextBelow(128));
    }
    // Spot-check coherence of holders bits via miss classification:
    // a block reported held must hit.
    for (BlockId b = 0; b < 128; ++b) {
        for (unsigned u = 0; u < 4; ++u) {
            if (eng.holders(b) & (1ULL << u)) {
                const auto before =
                    eng.results().events.count(Event::RdHit);
                eng.access(u, R, b);
                EXPECT_EQ(eng.results().events.count(Event::RdHit),
                          before + 1);
            }
        }
    }
}

// ---------------------------------------------------------------------
// LimitedEngine (Dir1NB / DiriNB).
// ---------------------------------------------------------------------

TEST(Limited, RejectsBadParameters)
{
    EXPECT_THROW(LimitedEngine(0, 1), std::invalid_argument);
    EXPECT_THROW(LimitedEngine(65, 1), std::invalid_argument);
    EXPECT_THROW(LimitedEngine(4, 0), std::invalid_argument);
    // More than 8 pointers exceeds the inline fill queue (the paper's
    // no-broadcast sweep tops out at Dir8NB) ...
    EXPECT_THROW(LimitedEngine(16, 9), std::invalid_argument);
    // ... but a large count clamped down by a small unit count is
    // fine: Dir9NB on 8 units is just Dir8NB.
    EXPECT_NO_THROW(LimitedEngine(8, 9));
    EXPECT_NO_THROW(LimitedEngine(16, 8));
}

TEST(Limited, Dir1NbSingleCopySemantics)
{
    LimitedEngine eng(4, 1);
    eng.access(0, R, 10);
    EXPECT_EQ(eng.results().events.count(Event::RmFirstRef), 1u);
    eng.access(1, R, 10); // steals the only copy
    EXPECT_EQ(eng.results().events.count(Event::RmBlkCln), 1u);
    EXPECT_EQ(eng.results().displacementInvals, 1u);
    eng.access(0, R, 10); // bounced back
    EXPECT_EQ(eng.results().events.count(Event::RmBlkCln), 2u);
    EXPECT_EQ(eng.results().displacementInvals, 2u);
}

TEST(Limited, Dir1NbDirtyHandoff)
{
    LimitedEngine eng(4, 1);
    eng.access(0, W, 10);
    eng.access(1, R, 10);
    EXPECT_EQ(eng.results().events.count(Event::RmBlkDrty), 1u);
    // Ex-owner was invalidated as part of the hand-off, not as a
    // displacement.
    EXPECT_EQ(eng.results().displacementInvals, 0u);
    // Ex-owner must now miss.
    eng.access(0, R, 10);
    EXPECT_EQ(eng.results().events.count(Event::RmBlkCln), 1u);
}

TEST(Limited, Dir1NbWriteHitsAreExclusive)
{
    LimitedEngine eng(4, 1);
    eng.access(0, R, 10);
    eng.access(0, W, 10);
    EXPECT_EQ(eng.results().events.count(Event::WhBlkClnExcl), 1u);
    EXPECT_EQ(eng.results().events.count(Event::WhBlkClnShared), 0u);
}

TEST(Limited, Dir2NbKeepsTwoCopies)
{
    LimitedEngine eng(4, 2);
    eng.access(0, R, 10);
    eng.access(1, R, 10);
    EXPECT_EQ(eng.results().displacementInvals, 0u);
    // Both hit now.
    eng.access(0, R, 10);
    eng.access(1, R, 10);
    EXPECT_EQ(eng.results().events.count(Event::RdHit), 2u);
    // A third reader displaces the oldest (unit 0).
    eng.access(2, R, 10);
    EXPECT_EQ(eng.results().displacementInvals, 1u);
    eng.access(1, R, 10);
    eng.access(2, R, 10);
    EXPECT_EQ(eng.results().events.count(Event::RdHit), 4u);
    // Three clean misses so far: unit 1's initial fill, unit 2's
    // fill, and none yet for the displaced unit 0.
    EXPECT_EQ(eng.results().events.count(Event::RmBlkCln), 2u);
    eng.access(0, R, 10); // was displaced: miss
    EXPECT_EQ(eng.results().events.count(Event::RmBlkCln), 3u);
}

TEST(Limited, Dir2NbDirtyReadKeepsExOwner)
{
    LimitedEngine eng(4, 2);
    eng.access(0, W, 10);
    eng.access(1, R, 10);
    EXPECT_EQ(eng.results().events.count(Event::RmBlkDrty), 1u);
    // With two pointers the ex-owner keeps a clean copy.
    eng.access(0, R, 10);
    EXPECT_EQ(eng.results().events.count(Event::RdHit), 1u);
}

TEST(Limited, WriteSharedFanoutRecorded)
{
    LimitedEngine eng(4, 3);
    eng.access(0, R, 10);
    eng.access(1, R, 10);
    eng.access(2, R, 10);
    eng.access(0, W, 10);
    EXPECT_EQ(eng.results().events.count(Event::WhBlkClnShared), 1u);
    EXPECT_EQ(eng.results().whClnFanout.count(2), 1u);
}

TEST(Limited, PointerCountClampedToUnits)
{
    LimitedEngine eng(2, 8);
    EXPECT_EQ(eng.numPointers(), 2u);
}

// ---------------------------------------------------------------------
// DragonEngine (update protocol).
// ---------------------------------------------------------------------

TEST(Dragon, RejectsBadUnitCounts)
{
    EXPECT_THROW(DragonEngine(0), std::invalid_argument);
    EXPECT_THROW(DragonEngine(65), std::invalid_argument);
}

TEST(Dragon, NoInvalidationEver)
{
    DragonEngine eng(4);
    eng.access(0, R, 10);
    eng.access(1, R, 10);
    eng.access(2, W, 10);
    eng.access(3, W, 10);
    // Everyone who ever touched the block still hits.
    const auto hits_before = eng.results().events.count(Event::RdHit);
    eng.access(0, R, 10);
    eng.access(1, R, 10);
    eng.access(2, R, 10);
    eng.access(3, R, 10);
    EXPECT_EQ(eng.results().events.count(Event::RdHit),
              hits_before + 4);
}

TEST(Dragon, LocalVersusDistributedWriteHits)
{
    DragonEngine eng(4);
    eng.access(0, R, 10);
    eng.access(0, W, 10); // sole holder: local
    EXPECT_EQ(eng.results().events.count(Event::WhLocal), 1u);
    eng.access(1, R, 10);
    eng.access(0, W, 10); // shared: distributed update
    EXPECT_EQ(eng.results().events.count(Event::WhDistrib), 1u);
}

TEST(Dragon, DirtyMissSuppliedByOwner)
{
    DragonEngine eng(4);
    eng.access(0, R, 10);
    eng.access(0, W, 10); // owner 0, memory stale
    eng.access(1, R, 10);
    EXPECT_EQ(eng.results().events.count(Event::RmBlkDrty), 1u);
    // Memory stays stale; a third reader is also supplied by a cache.
    eng.access(2, R, 10);
    EXPECT_EQ(eng.results().events.count(Event::RmBlkDrty), 2u);
}

TEST(Dragon, WriteMissUpdatesOthers)
{
    DragonEngine eng(4);
    eng.access(0, R, 10);
    eng.access(1, W, 10);
    EXPECT_EQ(eng.results().events.count(Event::WmBlkCln), 1u);
    // Unit 0 keeps an (updated) copy.
    eng.access(0, R, 10);
    EXPECT_EQ(eng.results().events.count(Event::RdHit), 1u);
}

// ---------------------------------------------------------------------
// Cross-engine properties.
// ---------------------------------------------------------------------

struct RandomRef
{
    unsigned unit;
    RefType type;
    BlockId block;
};

std::vector<RandomRef>
randomTrace(unsigned units, std::size_t n, std::uint64_t seed,
            double write_frac = 0.25, double instr_frac = 0.3)
{
    dirsim::gen::Rng rng(seed);
    std::vector<RandomRef> refs;
    refs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        RandomRef ref;
        ref.unit = static_cast<unsigned>(rng.nextBelow(units));
        if (rng.chance(instr_frac))
            ref.type = I;
        else
            ref.type = rng.chance(write_frac) ? W : R;
        ref.block = rng.nextBelow(200);
        refs.push_back(ref);
    }
    return refs;
}

/** Every reference is classified into exactly one event. */
class ConservationTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ConservationTest, EventsSumToRefs)
{
    const unsigned units = GetParam();
    InvalEngineConfig icfg;
    icfg.nUnits = units;
    InvalEngine inval(icfg);
    LimitedEngine dir1(units, 1);
    DragonEngine dragon(units);

    const auto refs = randomTrace(units, 50'000, units * 31 + 1);
    for (const auto &ref : refs) {
        inval.access(ref.unit, ref.type, ref.block);
        dir1.access(ref.unit, ref.type, ref.block);
        dragon.access(ref.unit, ref.type, ref.block);
    }
    for (const EngineResults *r :
         {&inval.results(), &dir1.results(), &dragon.results()}) {
        EXPECT_EQ(r->events.totalRefs(), refs.size());
        std::uint64_t sum = 0;
        for (std::size_t e = 0; e < numEvents; ++e)
            sum += r->events.count(static_cast<Event>(e));
        EXPECT_EQ(sum, refs.size());
        // First-reference misses are identical across engines (they
        // depend only on the trace).
    }
    EXPECT_EQ(inval.results().events.count(Event::RmFirstRef),
              dragon.results().events.count(Event::RmFirstRef));
    EXPECT_EQ(inval.results().events.count(Event::RmFirstRef),
              dir1.results().events.count(Event::RmFirstRef));
    EXPECT_EQ(inval.results().events.count(Event::WmFirstRef),
              dragon.results().events.count(Event::WmFirstRef));
}

INSTANTIATE_TEST_SUITE_P(UnitCounts, ConservationTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 64u));

/**
 * DiriNB with i = number of units is the full-map no-broadcast scheme,
 * whose state dynamics coincide with the unbounded invalidation
 * engine: no displacement ever happens, so event streams must match
 * exactly.
 */
class LimitedEqualsInvalTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(LimitedEqualsInvalTest, FullPointerLimitedMatchesInval)
{
    const unsigned units = GetParam();
    InvalEngineConfig icfg;
    icfg.nUnits = units;
    InvalEngine inval(icfg);
    LimitedEngine limited(units, units);

    const auto refs = randomTrace(units, 60'000, units * 77 + 5);
    for (const auto &ref : refs) {
        inval.access(ref.unit, ref.type, ref.block);
        limited.access(ref.unit, ref.type, ref.block);
    }
    EXPECT_EQ(limited.results().displacementInvals, 0u);
    for (std::size_t e = 0; e < numEvents; ++e) {
        EXPECT_EQ(inval.results().events.count(static_cast<Event>(e)),
                  limited.results().events.count(static_cast<Event>(e)))
            << eventName(static_cast<Event>(e));
    }
    // Fanout histograms agree too.
    for (std::size_t k = 0; k <= units; ++k) {
        EXPECT_EQ(inval.results().whClnFanout.count(k),
                  limited.results().whClnFanout.count(k));
        EXPECT_EQ(inval.results().wmClnFanout.count(k),
                  limited.results().wmClnFanout.count(k));
    }
}

INSTANTIATE_TEST_SUITE_P(UnitCounts, LimitedEqualsInvalTest,
                         ::testing::Values(2u, 3u, 4u, 8u));

/** Miss counts are monotone in the pointer count: fewer pointers can
 *  only displace more copies and cause more misses. */
TEST(LimitedMonotonicity, MissesDecreaseWithMorePointers)
{
    const unsigned units = 8;
    const auto refs = randomTrace(units, 80'000, 321, 0.2);
    std::uint64_t prev_misses = ~0ULL;
    for (unsigned i : {1u, 2u, 4u, 8u}) {
        LimitedEngine eng(units, i);
        for (const auto &ref : refs)
            eng.access(ref.unit, ref.type, ref.block);
        const std::uint64_t misses = eng.results().events.readMisses() +
                                     eng.results().events.writeMisses();
        EXPECT_LE(misses, prev_misses) << "i = " << i;
        prev_misses = misses;
    }
}

/** Dragon never misses a block a cache has already touched. */
TEST(DragonProperty, HoldersAreMonotone)
{
    const unsigned units = 4;
    DragonEngine eng(units);
    const auto refs = randomTrace(units, 40'000, 99);
    // Track first-touch per (unit, block); after it, never a miss.
    std::set<std::pair<unsigned, BlockId>> touched;
    for (const auto &ref : refs) {
        if (ref.type == I) {
            eng.access(ref.unit, ref.type, ref.block);
            continue;
        }
        const auto key = std::make_pair(ref.unit, ref.block);
        const bool seen = touched.count(key) > 0;
        const std::uint64_t misses_before =
            eng.results().events.readMisses() +
            eng.results().events.writeMisses() +
            eng.results().events.count(Event::RmFirstRef) +
            eng.results().events.count(Event::WmFirstRef);
        eng.access(ref.unit, ref.type, ref.block);
        const std::uint64_t misses_after =
            eng.results().events.readMisses() +
            eng.results().events.writeMisses() +
            eng.results().events.count(Event::RmFirstRef) +
            eng.results().events.count(Event::WmFirstRef);
        if (seen) {
            ASSERT_EQ(misses_after, misses_before);
        }
        touched.insert(key);
    }
}

/** With one unit, no engine ever records a sharing-induced event. */
TEST(SingleUnit, NoCoherenceTraffic)
{
    InvalEngineConfig icfg;
    icfg.nUnits = 1;
    InvalEngine inval(icfg);
    LimitedEngine dir1(1, 1);
    DragonEngine dragon(1);
    const auto refs = randomTrace(1, 30'000, 11);
    for (const auto &ref : refs) {
        inval.access(0, ref.type, ref.block);
        dir1.access(0, ref.type, ref.block);
        dragon.access(0, ref.type, ref.block);
    }
    for (const EngineResults *r :
         {&inval.results(), &dir1.results(), &dragon.results()}) {
        EXPECT_EQ(r->events.count(Event::RmBlkCln), 0u);
        EXPECT_EQ(r->events.count(Event::RmBlkDrty), 0u);
        EXPECT_EQ(r->events.count(Event::WmBlkCln), 0u);
        EXPECT_EQ(r->events.count(Event::WmBlkDrty), 0u);
        EXPECT_EQ(r->events.count(Event::WhBlkClnShared), 0u);
        EXPECT_EQ(r->events.count(Event::WhDistrib), 0u);
    }
}

/** Fanout samples never exceed units - 1 (other caches). */
TEST(FanoutBounds, NeverExceedsOtherCacheCount)
{
    const unsigned units = 6;
    InvalEngineConfig icfg;
    icfg.nUnits = units;
    InvalEngine eng(icfg);
    const auto refs = randomTrace(units, 60'000, 55, 0.35);
    for (const auto &ref : refs)
        eng.access(ref.unit, ref.type, ref.block);
    EXPECT_LE(eng.results().whClnFanout.maxValue(), units - 1);
    EXPECT_LE(eng.results().wmClnFanout.maxValue(), units - 1);
    // Write-miss fanout is at least 1 by definition of WmBlkCln.
    EXPECT_EQ(eng.results().wmClnFanout.count(0), 0u);
}

} // namespace
