/**
 * @file
 * Golden equivalence suite for the flat-storage refactor.
 *
 * Every paper table and figure is a pure function of EngineResults, so
 * proving the hot-path container swap (PR 3: util::FlatMap/FlatSet and
 * the DirEntry arena) changed nothing reduces to proving EngineResults
 * is bit-identical for every scheme × workload point.  This suite
 * digests a canonical integer serialisation of each point's results
 * and compares against values recorded from the seed implementation
 * (std::unordered_map/set, unique_ptr-owned DirEntry) at the same
 * workload seeds.
 *
 * Regenerate the table (e.g. after an intentional model change) with:
 *
 *     DIRSIM_GOLDEN_PRINT=1 ./tests/golden_test
 *
 * and paste the printed rows over kGolden below.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "coherence/berkeley_engine.hh"
#include "coherence/dragon_engine.hh"
#include "coherence/inval_engine.hh"
#include "coherence/limited_engine.hh"
#include "coherence/wti_engine.hh"
#include "directory/coarse_vector.hh"
#include "directory/dir_cache.hh"
#include "directory/full_map.hh"
#include "directory/limited_pointer.hh"
#include "directory/two_bit.hh"
#include "gen/workload.hh"
#include "gen/workloads.hh"
#include "mem/set_assoc.hh"
#include "sim/simulator.hh"
#include "sim/sweep.hh"
#include "sim/trace_repo.hh"
#include "trace/prepared.hh"
#include "trace/store.hh"

namespace
{

using namespace dirsim;

/** FNV-1a over the canonical serialisation below. */
class Digest
{
  public:
    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            _h ^= (v >> (8 * i)) & 0xff;
            _h *= 0x100000001b3ULL;
        }
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        for (char c : s)
            u64(static_cast<unsigned char>(c));
    }

    void
    histogram(const stats::Histogram &h)
    {
        u64(h.totalSamples());
        u64(h.totalWeight());
        u64(h.maxValue());
        for (std::size_t v = 0; v <= h.maxValue(); ++v)
            u64(h.count(v));
    }

    std::uint64_t value() const { return _h; }

  private:
    std::uint64_t _h = 0xcbf29ce484222325ULL;
};

/** Canonical digest of everything EngineResults holds. */
std::uint64_t
digest(const coherence::EngineResults &r)
{
    Digest d;
    d.str(r.name);
    d.u64(r.events.totalRefs());
    for (std::size_t e = 0; e < coherence::numEvents; ++e)
        d.u64(r.events.count(static_cast<coherence::Event>(e)));
    d.histogram(r.whClnFanout);
    d.histogram(r.wmClnFanout);
    d.u64(r.holderGrowth12);
    d.u64(r.displacementInvals);
    d.u64(r.dirDirectedInvals);
    d.u64(r.dirBroadcasts);
    d.u64(r.dirOvershoot);
    d.u64(r.homeLocalTransactions);
    d.u64(r.homeRemoteTransactions);
    d.u64(r.replacementEvictions);
    d.u64(r.replacementWriteBacks);
    return d.value();
}

/**
 * The scheme axis: every engine variant the repo can run.  Makers
 * take an optional directory-cache configuration (null = the paper's
 * entry-per-block directory); engines without a directory to cache —
 * the snoopy WTI/Dragon/Berkeley models — ignore it.
 */
struct Scheme
{
    const char *label;
    std::unique_ptr<coherence::CoherenceEngine> (*make)(
        unsigned units, const directory::DirCacheConfig *dc);
    /** Does the engine model a directory this cache sits in front of? */
    bool dirCacheCapable;
};

directory::DirCacheConfig
dirCacheOrNone(const directory::DirCacheConfig *dc)
{
    return dc ? *dc : directory::DirCacheConfig{};
}

std::unique_ptr<coherence::CoherenceEngine>
makeInval(unsigned units, const directory::DirCacheConfig *dc)
{
    coherence::InvalEngineConfig cfg;
    cfg.nUnits = units;
    cfg.dirCache = dirCacheOrNone(dc);
    return std::make_unique<coherence::InvalEngine>(cfg);
}

template <typename Factory>
std::unique_ptr<coherence::CoherenceEngine>
makeInvalWithDir(unsigned units, const directory::DirCacheConfig *dc)
{
    static const Factory factory;
    coherence::InvalEngineConfig cfg;
    cfg.nUnits = units;
    cfg.dirFactory = &factory;
    cfg.dirCache = dirCacheOrNone(dc);
    return std::make_unique<coherence::InvalEngine>(cfg);
}

std::unique_ptr<coherence::CoherenceEngine>
makeInvalDir2B(unsigned units, const directory::DirCacheConfig *dc)
{
    static const directory::LimitedPointerFactory factory(2, true);
    coherence::InvalEngineConfig cfg;
    cfg.nUnits = units;
    cfg.dirFactory = &factory;
    cfg.dirCache = dirCacheOrNone(dc);
    return std::make_unique<coherence::InvalEngine>(cfg);
}

std::unique_ptr<coherence::CoherenceEngine>
makeInvalHome(unsigned units, coherence::HomePolicy policy,
              const directory::DirCacheConfig *dc)
{
    coherence::InvalEngineConfig cfg;
    cfg.nUnits = units;
    cfg.homePolicy = policy;
    cfg.dirCache = dirCacheOrNone(dc);
    return std::make_unique<coherence::InvalEngine>(cfg);
}

std::unique_ptr<coherence::CoherenceEngine>
makeInvalFinite(unsigned units, const directory::DirCacheConfig *dc)
{
    coherence::InvalEngineConfig cfg;
    cfg.nUnits = units;
    cfg.cacheFactory = [] {
        mem::CacheGeometry geometry;
        geometry.capacityBytes = 16 * 1024; // Small: forces evictions.
        geometry.blockBytes = 16;
        geometry.ways = 2;
        return std::make_unique<mem::SetAssocTagStore>(geometry);
    };
    cfg.dirCache = dirCacheOrNone(dc);
    return std::make_unique<coherence::InvalEngine>(cfg);
}

const Scheme kSchemes[] = {
    {"inval", makeInval, true},
    {"dir1nb",
     [](unsigned u, const directory::DirCacheConfig *dc)
         -> std::unique_ptr<coherence::CoherenceEngine> {
         return std::make_unique<coherence::LimitedEngine>(
             u, 1, dirCacheOrNone(dc));
     },
     true},
    {"dir2nb",
     [](unsigned u, const directory::DirCacheConfig *dc)
         -> std::unique_ptr<coherence::CoherenceEngine> {
         return std::make_unique<coherence::LimitedEngine>(
             u, 2, dirCacheOrNone(dc));
     },
     true},
    {"wti",
     [](unsigned u, const directory::DirCacheConfig *)
         -> std::unique_ptr<coherence::CoherenceEngine> {
         return std::make_unique<coherence::WtiEngine>(u, true);
     },
     false},
    {"wti-noalloc",
     [](unsigned u, const directory::DirCacheConfig *)
         -> std::unique_ptr<coherence::CoherenceEngine> {
         return std::make_unique<coherence::WtiEngine>(u, false);
     },
     false},
    {"dragon",
     [](unsigned u, const directory::DirCacheConfig *)
         -> std::unique_ptr<coherence::CoherenceEngine> {
         return std::make_unique<coherence::DragonEngine>(u);
     },
     false},
    {"berkeley",
     [](unsigned u, const directory::DirCacheConfig *)
         -> std::unique_ptr<coherence::CoherenceEngine> {
         return std::make_unique<coherence::BerkeleyEngine>(u);
     },
     false},
    {"inval+fullmap", makeInvalWithDir<directory::FullMapFactory>,
     true},
    {"inval+twobit", makeInvalWithDir<directory::TwoBitFactory>, true},
    {"inval+coarse", makeInvalWithDir<directory::CoarseVectorFactory>,
     true},
    {"inval+dir2b", makeInvalDir2B, true},
    {"inval+home-mod",
     [](unsigned u, const directory::DirCacheConfig *dc) {
         return makeInvalHome(u, coherence::HomePolicy::Modulo, dc);
     },
     true},
    {"inval+home-ft",
     [](unsigned u, const directory::DirCacheConfig *dc) {
         return makeInvalHome(u, coherence::HomePolicy::FirstTouch, dc);
     },
     true},
    {"inval+finite", makeInvalFinite, true},
};

constexpr std::size_t kNumSchemes =
    sizeof(kSchemes) / sizeof(kSchemes[0]);

/** One workload's digests, one per scheme, in kSchemes order. */
std::vector<std::uint64_t>
runWorkload(const gen::WorkloadConfig &cfg,
            const directory::DirCacheConfig *dc = nullptr)
{
    sim::Simulator simulator;
    for (const Scheme &scheme : kSchemes)
        simulator.addEngine(scheme.make(cfg.space.nProcesses, dc));
    gen::WorkloadSource source(cfg);
    simulator.run(source);

    std::vector<std::uint64_t> digests;
    for (std::size_t e = 0; e < simulator.numEngines(); ++e)
        digests.push_back(digest(simulator.engine(e).results()));
    return digests;
}

/**
 * Digests recorded from the seed implementation (node-based
 * std::unordered_map/set block tables, unique_ptr DirEntry) over the
 * quarter-size standard workloads.  kGolden[workload][scheme] in
 * standardWorkloads() × kSchemes order.
 */
const std::uint64_t kGolden[3][kNumSchemes] = {
    // pops
    {0xae0e843ecb260cb7ULL, 0x97edd7f4fd3b4863ULL, 0x6830083eb9d5e8cfULL, 0xb6442018df56820bULL, 0xac977d2f58481d6aULL, 0xf4c98169ab5e0ff8ULL, 0xb9f8543ae7e56205ULL, 0xa799fa74acd9f4d0ULL, 0xf47a85d4ce438e3ULL, 0xfceeeac846465fbdULL, 0x736e5681a0f861aaULL, 0x57013e6088943e95ULL, 0xeb2b34b1a3e4ef8dULL, 0xb37298eeb6417cd7ULL},
    // thor
    {0xb3bc4643f878782eULL, 0x2df7a9e3adc2a4bbULL, 0x62547051064a3c43ULL, 0x919faf64ac1ea99bULL, 0x2dd626f20917e2eeULL, 0x6b5793fd62ca325fULL, 0xaf06c1a08f419a42ULL, 0x777a0fabcd011e3bULL, 0x87dcf92d15181961ULL, 0xccc5c766b82f1fd2ULL, 0x1e51d3dbe9671c6eULL, 0x31195e0407cfe55ULL, 0xcbe7aba5fec94d3bULL, 0xeac1e4f54c7e9ac0ULL},
    // pero
    {0x8490315cc2c28de0ULL, 0x3a6576db60fb5c83ULL, 0x240d242b0726cc6fULL, 0x4ae94e4ec043eb4ULL, 0xf4560a28d0566508ULL, 0x4dba17cd7107b8f3ULL, 0x9dff3aa5bc5681e2ULL, 0x6ed35fdbc3d80342ULL, 0x5b2f697773492301ULL, 0x8ae18d9750f8ba02ULL, 0xb15d31fd9f5e7330ULL, 0x81004f7e170f8819ULL, 0x70b87af67e234bd9ULL, 0x3dc95d507ab7bd8dULL},
};

/** Same digests, but replaying the decode-once prepared stream. */
std::vector<std::uint64_t>
runWorkloadPrepared(const gen::WorkloadConfig &cfg,
                    const directory::DirCacheConfig *dc = nullptr)
{
    const std::shared_ptr<const trace::PreparedTrace> prepared =
        sim::TraceRepository::global().get(cfg);
    sim::Simulator simulator;
    for (const Scheme &scheme : kSchemes)
        simulator.addEngine(scheme.make(cfg.space.nProcesses, dc));
    simulator.run(*prepared);

    std::vector<std::uint64_t> digests;
    for (std::size_t e = 0; e < simulator.numEngines(); ++e)
        digests.push_back(digest(simulator.engine(e).results()));
    return digests;
}

TEST(GoldenEquivalence, EngineResultsUnchangedForEverySchemeWorkload)
{
    const std::vector<gen::WorkloadConfig> workloads =
        gen::standardWorkloads();
    ASSERT_EQ(workloads.size(), 3u);

    const bool print = std::getenv("DIRSIM_GOLDEN_PRINT") != nullptr;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const std::vector<std::uint64_t> digests =
            runWorkload(workloads[w]);
        ASSERT_EQ(digests.size(), kNumSchemes);
        if (print) {
            std::cout << "    // " << workloads[w].name << "\n    {";
            for (std::size_t s = 0; s < kNumSchemes; ++s)
                std::cout << (s ? ", " : "") << "0x" << std::hex
                          << digests[s] << std::dec << "ULL";
            std::cout << "},\n";
            continue;
        }
        for (std::size_t s = 0; s < kNumSchemes; ++s) {
            EXPECT_EQ(digests[s], kGolden[w][s])
                << "scheme '" << kSchemes[s].label << "' on workload '"
                << workloads[w].name
                << "' diverged from the seed implementation";
        }
    }
}

/**
 * The decode-once prepared path (PR 5) must reproduce the seed
 * digests bit-for-bit: same 14 schemes × 3 workloads, replayed from
 * the SoA columns of the process-wide trace repository instead of the
 * interleaved raw records.
 */
TEST(GoldenEquivalence, PreparedReplayMatchesGoldenDigests)
{
    const std::vector<gen::WorkloadConfig> workloads =
        gen::standardWorkloads();
    ASSERT_EQ(workloads.size(), 3u);

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const std::vector<std::uint64_t> digests =
            runWorkloadPrepared(workloads[w]);
        ASSERT_EQ(digests.size(), kNumSchemes);
        for (std::size_t s = 0; s < kNumSchemes; ++s) {
            EXPECT_EQ(digests[s], kGolden[w][s])
                << "scheme '" << kSchemes[s].label << "' on workload '"
                << workloads[w].name
                << "' diverged when replayed from the prepared trace";
        }
    }
}

/**
 * An *unbounded* directory cache (entries = 0) can never evict, so
 * adding it in front of any directory must be invisible: every scheme
 * × workload digest stays bit-identical to the seed table, on both
 * the raw-replay and prepared-replay paths.  This pins the tentpole's
 * integration points (touch placement, counter plumbing) against the
 * 42 golden design points before the finite-capacity behaviour is
 * exercised elsewhere.
 */
TEST(GoldenEquivalence, UnboundedDirCacheMatchesGoldenDigests)
{
    directory::DirCacheConfig dc;
    dc.enabled = true;
    dc.entries = 0; // unbounded: tracks every block, never evicts

    const std::vector<gen::WorkloadConfig> workloads =
        gen::standardWorkloads();
    ASSERT_EQ(workloads.size(), 3u);

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const std::vector<std::uint64_t> raw =
            runWorkload(workloads[w], &dc);
        const std::vector<std::uint64_t> prepared =
            runWorkloadPrepared(workloads[w], &dc);
        ASSERT_EQ(raw.size(), kNumSchemes);
        ASSERT_EQ(prepared.size(), kNumSchemes);
        for (std::size_t s = 0; s < kNumSchemes; ++s) {
            EXPECT_EQ(raw[s], kGolden[w][s])
                << "scheme '" << kSchemes[s].label << "' on workload '"
                << workloads[w].name
                << "' diverged under an unbounded directory cache (raw)";
            EXPECT_EQ(prepared[s], kGolden[w][s])
                << "scheme '" << kSchemes[s].label << "' on workload '"
                << workloads[w].name
                << "' diverged under an unbounded directory cache "
                   "(prepared)";
        }
    }
}

/**
 * The unbounded cache is invisible to results, but it must actually
 * be *running*: directory-capable schemes must record misses (first
 * touch of each block) and zero evictions/invalidations.
 */
TEST(GoldenEquivalence, UnboundedDirCacheCountersAreSane)
{
    directory::DirCacheConfig dc;
    dc.enabled = true;
    dc.entries = 0;

    const gen::WorkloadConfig cfg = gen::standardWorkloads()[0];
    sim::Simulator simulator;
    for (const Scheme &scheme : kSchemes)
        simulator.addEngine(scheme.make(cfg.space.nProcesses, &dc));
    gen::WorkloadSource source(cfg);
    simulator.run(source);

    for (std::size_t s = 0; s < kNumSchemes; ++s) {
        const coherence::EngineResults &r =
            simulator.engine(s).results();
        if (kSchemes[s].dirCacheCapable) {
            EXPECT_GT(r.dirCacheMisses, 0u)
                << kSchemes[s].label
                << ": cache enabled but never consulted";
        } else {
            EXPECT_EQ(r.dirCacheMisses, 0u) << kSchemes[s].label;
            EXPECT_EQ(r.dirCacheHits, 0u) << kSchemes[s].label;
        }
        EXPECT_EQ(r.dirCacheEvictions, 0u) << kSchemes[s].label;
        EXPECT_EQ(r.dirCacheEvictionInvals, 0u) << kSchemes[s].label;
        EXPECT_EQ(r.dirCacheEvictionWriteBacks, 0u)
            << kSchemes[s].label;
    }
}

/**
 * The same 42 points fanned across a SweepRunner with 4 workers, one
 * point per (workload, scheme) cell — raw sources for even scheme
 * indices, the shared prepared trace for odd ones — must still land
 * on the golden digests in submission order.
 */
TEST(GoldenEquivalence, UnboundedDirCacheParallelSweepMatchesGolden)
{
    directory::DirCacheConfig dc;
    dc.enabled = true;
    dc.entries = 0;

    const std::vector<gen::WorkloadConfig> workloads =
        gen::standardWorkloads();
    ASSERT_EQ(workloads.size(), 3u);

    sim::SweepRunner runner(4);
    for (const gen::WorkloadConfig &cfg : workloads) {
        const std::shared_ptr<const trace::PreparedTrace> prepared =
            sim::TraceRepository::global().get(cfg);
        for (std::size_t s = 0; s < kNumSchemes; ++s) {
            sim::SweepPoint point;
            point.name = std::string(cfg.name) + "/" +
                         kSchemes[s].label;
            point.engines = [s, units = cfg.space.nProcesses, &dc] {
                std::vector<
                    std::unique_ptr<coherence::CoherenceEngine>>
                    engines;
                engines.push_back(kSchemes[s].make(units, &dc));
                return engines;
            };
            if (s % 2 == 0)
                point.source = [cfg] {
                    return std::make_unique<gen::WorkloadSource>(cfg);
                };
            else
                point.prepared = prepared;
            runner.add(std::move(point));
        }
    }

    const std::vector<sim::SweepPointResult> results = runner.run();
    ASSERT_EQ(results.size(), workloads.size() * kNumSchemes);
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        for (std::size_t s = 0; s < kNumSchemes; ++s) {
            const sim::SweepPointResult &res =
                results[w * kNumSchemes + s];
            ASSERT_EQ(res.engines.size(), 1u);
            EXPECT_EQ(digest(res.engines[0]), kGolden[w][s])
                << "point '" << res.name
                << "' diverged under an unbounded directory cache in "
                   "a parallel sweep";
        }
    }
}

/** A scratch disk-cache directory, removed on destruction. */
struct CacheDirGuard
{
    explicit CacheDirGuard(const std::string &stem)
        : path(testing::TempDir() + "dirsim-golden-" + stem + "-" +
               std::to_string(::getpid()))
    {
        std::filesystem::remove_all(path);
    }
    ~CacheDirGuard() { std::filesystem::remove_all(path); }
    std::string path;
};

/**
 * The out-of-core streamed path must also land on the seed digests:
 * every scheme × workload, replayed from windowed spans of a spilled
 * store file instead of in-memory columns.  The small chunk size
 * forces many span boundaries per workload — this is the proof that
 * boundaries are invisible to every engine variant.
 */
TEST(GoldenEquivalence, StreamedReplayMatchesGoldenDigests)
{
    CacheDirGuard dir("serial");
    sim::TraceRepository repo(1);
    sim::DiskCacheConfig disk;
    disk.dir = dir.path;
    disk.chunkRefs = 64 * 1024;
    repo.setDiskCache(disk);

    const std::vector<gen::WorkloadConfig> workloads =
        gen::standardWorkloads();
    ASSERT_EQ(workloads.size(), 3u);

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const std::shared_ptr<const trace::StoredTrace> stored =
            repo.getStored(workloads[w]);
        ASSERT_GT(stored->numChunks(), 1u);
        sim::Simulator simulator;
        for (const Scheme &scheme : kSchemes)
            simulator.addEngine(
                scheme.make(workloads[w].space.nProcesses, nullptr));
        const auto spans = stored->spanCursor();
        simulator.run(*spans);
        for (std::size_t s = 0; s < kNumSchemes; ++s) {
            EXPECT_EQ(digest(simulator.engine(s).results()),
                      kGolden[w][s])
                << "scheme '" << kSchemes[s].label << "' on workload '"
                << workloads[w].name
                << "' diverged when streamed from the trace store";
        }
    }
    // The whole matrix was served without a single re-generate after
    // the three cold spills.
    EXPECT_EQ(repo.stats().builds, 3u);
}

/**
 * The same 42 points through a 4-worker SweepRunner, every point
 * replaying windowed spans of the shared store files (each job gets
 * its own cursor over the same immutable StoredTrace), must still
 * land on the golden digests in submission order.
 */
TEST(GoldenEquivalence, StreamedParallelSweepMatchesGolden)
{
    CacheDirGuard dir("sweep");
    sim::TraceRepository repo(1);
    sim::DiskCacheConfig disk;
    disk.dir = dir.path;
    disk.chunkRefs = 64 * 1024;
    repo.setDiskCache(disk);

    const std::vector<gen::WorkloadConfig> workloads =
        gen::standardWorkloads();
    ASSERT_EQ(workloads.size(), 3u);

    sim::SweepRunner runner(4);
    for (const gen::WorkloadConfig &cfg : workloads) {
        const std::shared_ptr<const trace::StoredTrace> stored =
            repo.getStored(cfg);
        for (std::size_t s = 0; s < kNumSchemes; ++s) {
            sim::SweepPoint point;
            point.name = std::string(cfg.name) + "/" +
                         kSchemes[s].label;
            point.engines = [s, units = cfg.space.nProcesses] {
                std::vector<
                    std::unique_ptr<coherence::CoherenceEngine>>
                    engines;
                engines.push_back(kSchemes[s].make(units, nullptr));
                return engines;
            };
            point.spans = [stored] { return stored->spanCursor(); };
            runner.add(std::move(point));
        }
    }

    const std::vector<sim::SweepPointResult> results = runner.run();
    ASSERT_EQ(results.size(), workloads.size() * kNumSchemes);
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        for (std::size_t s = 0; s < kNumSchemes; ++s) {
            const sim::SweepPointResult &res =
                results[w * kNumSchemes + s];
            ASSERT_EQ(res.engines.size(), 1u);
            EXPECT_EQ(digest(res.engines[0]), kGolden[w][s])
                << "point '" << res.name
                << "' diverged when streamed through a parallel "
                   "sweep";
        }
    }
}

} // namespace
