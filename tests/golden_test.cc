/**
 * @file
 * Golden equivalence suite for the flat-storage refactor.
 *
 * Every paper table and figure is a pure function of EngineResults, so
 * proving the hot-path container swap (PR 3: util::FlatMap/FlatSet and
 * the DirEntry arena) changed nothing reduces to proving EngineResults
 * is bit-identical for every scheme × workload point.  This suite
 * digests a canonical integer serialisation of each point's results
 * and compares against values recorded from the seed implementation
 * (std::unordered_map/set, unique_ptr-owned DirEntry) at the same
 * workload seeds.
 *
 * Regenerate the table (e.g. after an intentional model change) with:
 *
 *     DIRSIM_GOLDEN_PRINT=1 ./tests/golden_test
 *
 * and paste the printed rows over kGolden below.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "coherence/berkeley_engine.hh"
#include "coherence/dragon_engine.hh"
#include "coherence/inval_engine.hh"
#include "coherence/limited_engine.hh"
#include "coherence/wti_engine.hh"
#include "directory/coarse_vector.hh"
#include "directory/full_map.hh"
#include "directory/limited_pointer.hh"
#include "directory/two_bit.hh"
#include "gen/workload.hh"
#include "gen/workloads.hh"
#include "mem/set_assoc.hh"
#include "sim/simulator.hh"
#include "sim/trace_repo.hh"
#include "trace/prepared.hh"

namespace
{

using namespace dirsim;

/** FNV-1a over the canonical serialisation below. */
class Digest
{
  public:
    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            _h ^= (v >> (8 * i)) & 0xff;
            _h *= 0x100000001b3ULL;
        }
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        for (char c : s)
            u64(static_cast<unsigned char>(c));
    }

    void
    histogram(const stats::Histogram &h)
    {
        u64(h.totalSamples());
        u64(h.totalWeight());
        u64(h.maxValue());
        for (std::size_t v = 0; v <= h.maxValue(); ++v)
            u64(h.count(v));
    }

    std::uint64_t value() const { return _h; }

  private:
    std::uint64_t _h = 0xcbf29ce484222325ULL;
};

/** Canonical digest of everything EngineResults holds. */
std::uint64_t
digest(const coherence::EngineResults &r)
{
    Digest d;
    d.str(r.name);
    d.u64(r.events.totalRefs());
    for (std::size_t e = 0; e < coherence::numEvents; ++e)
        d.u64(r.events.count(static_cast<coherence::Event>(e)));
    d.histogram(r.whClnFanout);
    d.histogram(r.wmClnFanout);
    d.u64(r.holderGrowth12);
    d.u64(r.displacementInvals);
    d.u64(r.dirDirectedInvals);
    d.u64(r.dirBroadcasts);
    d.u64(r.dirOvershoot);
    d.u64(r.homeLocalTransactions);
    d.u64(r.homeRemoteTransactions);
    d.u64(r.replacementEvictions);
    d.u64(r.replacementWriteBacks);
    return d.value();
}

/** The scheme axis: every engine variant the repo can run. */
struct Scheme
{
    const char *label;
    std::unique_ptr<coherence::CoherenceEngine> (*make)(unsigned units);
};

std::unique_ptr<coherence::CoherenceEngine>
makeInval(unsigned units)
{
    coherence::InvalEngineConfig cfg;
    cfg.nUnits = units;
    return std::make_unique<coherence::InvalEngine>(cfg);
}

template <typename Factory>
std::unique_ptr<coherence::CoherenceEngine>
makeInvalWithDir(unsigned units)
{
    static const Factory factory;
    coherence::InvalEngineConfig cfg;
    cfg.nUnits = units;
    cfg.dirFactory = &factory;
    return std::make_unique<coherence::InvalEngine>(cfg);
}

std::unique_ptr<coherence::CoherenceEngine>
makeInvalDir2B(unsigned units)
{
    static const directory::LimitedPointerFactory factory(2, true);
    coherence::InvalEngineConfig cfg;
    cfg.nUnits = units;
    cfg.dirFactory = &factory;
    return std::make_unique<coherence::InvalEngine>(cfg);
}

std::unique_ptr<coherence::CoherenceEngine>
makeInvalHome(unsigned units, coherence::HomePolicy policy)
{
    coherence::InvalEngineConfig cfg;
    cfg.nUnits = units;
    cfg.homePolicy = policy;
    return std::make_unique<coherence::InvalEngine>(cfg);
}

std::unique_ptr<coherence::CoherenceEngine>
makeInvalFinite(unsigned units)
{
    coherence::InvalEngineConfig cfg;
    cfg.nUnits = units;
    cfg.cacheFactory = [] {
        mem::CacheGeometry geometry;
        geometry.capacityBytes = 16 * 1024; // Small: forces evictions.
        geometry.blockBytes = 16;
        geometry.ways = 2;
        return std::make_unique<mem::SetAssocTagStore>(geometry);
    };
    return std::make_unique<coherence::InvalEngine>(cfg);
}

const Scheme kSchemes[] = {
    {"inval", makeInval},
    {"dir1nb",
     [](unsigned u) -> std::unique_ptr<coherence::CoherenceEngine> {
         return std::make_unique<coherence::LimitedEngine>(u, 1);
     }},
    {"dir2nb",
     [](unsigned u) -> std::unique_ptr<coherence::CoherenceEngine> {
         return std::make_unique<coherence::LimitedEngine>(u, 2);
     }},
    {"wti",
     [](unsigned u) -> std::unique_ptr<coherence::CoherenceEngine> {
         return std::make_unique<coherence::WtiEngine>(u, true);
     }},
    {"wti-noalloc",
     [](unsigned u) -> std::unique_ptr<coherence::CoherenceEngine> {
         return std::make_unique<coherence::WtiEngine>(u, false);
     }},
    {"dragon",
     [](unsigned u) -> std::unique_ptr<coherence::CoherenceEngine> {
         return std::make_unique<coherence::DragonEngine>(u);
     }},
    {"berkeley",
     [](unsigned u) -> std::unique_ptr<coherence::CoherenceEngine> {
         return std::make_unique<coherence::BerkeleyEngine>(u);
     }},
    {"inval+fullmap", makeInvalWithDir<directory::FullMapFactory>},
    {"inval+twobit", makeInvalWithDir<directory::TwoBitFactory>},
    {"inval+coarse", makeInvalWithDir<directory::CoarseVectorFactory>},
    {"inval+dir2b", makeInvalDir2B},
    {"inval+home-mod",
     [](unsigned u) {
         return makeInvalHome(u, coherence::HomePolicy::Modulo);
     }},
    {"inval+home-ft",
     [](unsigned u) {
         return makeInvalHome(u, coherence::HomePolicy::FirstTouch);
     }},
    {"inval+finite", makeInvalFinite},
};

constexpr std::size_t kNumSchemes =
    sizeof(kSchemes) / sizeof(kSchemes[0]);

/** One workload's digests, one per scheme, in kSchemes order. */
std::vector<std::uint64_t>
runWorkload(const gen::WorkloadConfig &cfg)
{
    sim::Simulator simulator;
    for (const Scheme &scheme : kSchemes)
        simulator.addEngine(scheme.make(cfg.space.nProcesses));
    gen::WorkloadSource source(cfg);
    simulator.run(source);

    std::vector<std::uint64_t> digests;
    for (std::size_t e = 0; e < simulator.numEngines(); ++e)
        digests.push_back(digest(simulator.engine(e).results()));
    return digests;
}

/**
 * Digests recorded from the seed implementation (node-based
 * std::unordered_map/set block tables, unique_ptr DirEntry) over the
 * quarter-size standard workloads.  kGolden[workload][scheme] in
 * standardWorkloads() × kSchemes order.
 */
const std::uint64_t kGolden[3][kNumSchemes] = {
    // pops
    {0xae0e843ecb260cb7ULL, 0x97edd7f4fd3b4863ULL, 0x6830083eb9d5e8cfULL, 0xb6442018df56820bULL, 0xac977d2f58481d6aULL, 0xf4c98169ab5e0ff8ULL, 0xb9f8543ae7e56205ULL, 0xa799fa74acd9f4d0ULL, 0xf47a85d4ce438e3ULL, 0xfceeeac846465fbdULL, 0x736e5681a0f861aaULL, 0x57013e6088943e95ULL, 0xeb2b34b1a3e4ef8dULL, 0xb37298eeb6417cd7ULL},
    // thor
    {0xb3bc4643f878782eULL, 0x2df7a9e3adc2a4bbULL, 0x62547051064a3c43ULL, 0x919faf64ac1ea99bULL, 0x2dd626f20917e2eeULL, 0x6b5793fd62ca325fULL, 0xaf06c1a08f419a42ULL, 0x777a0fabcd011e3bULL, 0x87dcf92d15181961ULL, 0xccc5c766b82f1fd2ULL, 0x1e51d3dbe9671c6eULL, 0x31195e0407cfe55ULL, 0xcbe7aba5fec94d3bULL, 0xeac1e4f54c7e9ac0ULL},
    // pero
    {0x8490315cc2c28de0ULL, 0x3a6576db60fb5c83ULL, 0x240d242b0726cc6fULL, 0x4ae94e4ec043eb4ULL, 0xf4560a28d0566508ULL, 0x4dba17cd7107b8f3ULL, 0x9dff3aa5bc5681e2ULL, 0x6ed35fdbc3d80342ULL, 0x5b2f697773492301ULL, 0x8ae18d9750f8ba02ULL, 0xb15d31fd9f5e7330ULL, 0x81004f7e170f8819ULL, 0x70b87af67e234bd9ULL, 0x3dc95d507ab7bd8dULL},
};

/** Same digests, but replaying the decode-once prepared stream. */
std::vector<std::uint64_t>
runWorkloadPrepared(const gen::WorkloadConfig &cfg)
{
    const std::shared_ptr<const trace::PreparedTrace> prepared =
        sim::TraceRepository::global().get(cfg);
    sim::Simulator simulator;
    for (const Scheme &scheme : kSchemes)
        simulator.addEngine(scheme.make(cfg.space.nProcesses));
    simulator.run(*prepared);

    std::vector<std::uint64_t> digests;
    for (std::size_t e = 0; e < simulator.numEngines(); ++e)
        digests.push_back(digest(simulator.engine(e).results()));
    return digests;
}

TEST(GoldenEquivalence, EngineResultsUnchangedForEverySchemeWorkload)
{
    const std::vector<gen::WorkloadConfig> workloads =
        gen::standardWorkloads();
    ASSERT_EQ(workloads.size(), 3u);

    const bool print = std::getenv("DIRSIM_GOLDEN_PRINT") != nullptr;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const std::vector<std::uint64_t> digests =
            runWorkload(workloads[w]);
        ASSERT_EQ(digests.size(), kNumSchemes);
        if (print) {
            std::cout << "    // " << workloads[w].name << "\n    {";
            for (std::size_t s = 0; s < kNumSchemes; ++s)
                std::cout << (s ? ", " : "") << "0x" << std::hex
                          << digests[s] << std::dec << "ULL";
            std::cout << "},\n";
            continue;
        }
        for (std::size_t s = 0; s < kNumSchemes; ++s) {
            EXPECT_EQ(digests[s], kGolden[w][s])
                << "scheme '" << kSchemes[s].label << "' on workload '"
                << workloads[w].name
                << "' diverged from the seed implementation";
        }
    }
}

/**
 * The decode-once prepared path (PR 5) must reproduce the seed
 * digests bit-for-bit: same 14 schemes × 3 workloads, replayed from
 * the SoA columns of the process-wide trace repository instead of the
 * interleaved raw records.
 */
TEST(GoldenEquivalence, PreparedReplayMatchesGoldenDigests)
{
    const std::vector<gen::WorkloadConfig> workloads =
        gen::standardWorkloads();
    ASSERT_EQ(workloads.size(), 3u);

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const std::vector<std::uint64_t> digests =
            runWorkloadPrepared(workloads[w]);
        ASSERT_EQ(digests.size(), kNumSchemes);
        for (std::size_t s = 0; s < kNumSchemes; ++s) {
            EXPECT_EQ(digests[s], kGolden[w][s])
                << "scheme '" << kSchemes[s].label << "' on workload '"
                << workloads[w].name
                << "' diverged when replayed from the prepared trace";
        }
    }
}

} // namespace
