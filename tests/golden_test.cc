/**
 * @file
 * Golden equivalence suite for the flat-storage refactor.
 *
 * Every paper table and figure is a pure function of EngineResults, so
 * proving the hot-path container swap (PR 3: util::FlatMap/FlatSet and
 * the DirEntry arena) changed nothing reduces to proving EngineResults
 * is bit-identical for every scheme × workload point.  This suite
 * digests a canonical integer serialisation of each point's results
 * and compares against values recorded from the seed implementation
 * (std::unordered_map/set, unique_ptr-owned DirEntry) at the same
 * workload seeds.
 *
 * Regenerate the table (e.g. after an intentional model change) with:
 *
 *     DIRSIM_GOLDEN_PRINT=1 ./tests/golden_test
 *
 * and paste the printed rows over kGolden in golden_data.hh.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "gen/workload.hh"
#include "gen/workloads.hh"
#include "sim/simulator.hh"
#include "sim/sweep.hh"
#include "sim/trace_repo.hh"
#include "trace/prepared.hh"
#include "trace/store.hh"

#include "golden_data.hh"

namespace
{

using namespace dirsim;
using golden::CacheDirGuard;
using golden::digest;
using golden::kGolden;
using golden::kNumSchemes;
using golden::kSchemes;
using golden::Scheme;

/** One workload's digests, one per scheme, in kSchemes order. */
std::vector<std::uint64_t>
runWorkload(const gen::WorkloadConfig &cfg,
            const directory::DirCacheConfig *dc = nullptr)
{
    sim::Simulator simulator;
    for (const Scheme &scheme : kSchemes)
        simulator.addEngine(scheme.make(cfg.space.nProcesses, dc));
    gen::WorkloadSource source(cfg);
    simulator.run(source);

    std::vector<std::uint64_t> digests;
    for (std::size_t e = 0; e < simulator.numEngines(); ++e)
        digests.push_back(digest(simulator.engine(e).results()));
    return digests;
}

/** Same digests, but replaying the decode-once prepared stream. */
std::vector<std::uint64_t>
runWorkloadPrepared(const gen::WorkloadConfig &cfg,
                    const directory::DirCacheConfig *dc = nullptr)
{
    const std::shared_ptr<const trace::PreparedTrace> prepared =
        sim::TraceRepository::global().get(cfg);
    sim::Simulator simulator;
    for (const Scheme &scheme : kSchemes)
        simulator.addEngine(scheme.make(cfg.space.nProcesses, dc));
    simulator.run(*prepared);

    std::vector<std::uint64_t> digests;
    for (std::size_t e = 0; e < simulator.numEngines(); ++e)
        digests.push_back(digest(simulator.engine(e).results()));
    return digests;
}

TEST(GoldenEquivalence, EngineResultsUnchangedForEverySchemeWorkload)
{
    const std::vector<gen::WorkloadConfig> workloads =
        gen::standardWorkloads();
    ASSERT_EQ(workloads.size(), 3u);

    const bool print = std::getenv("DIRSIM_GOLDEN_PRINT") != nullptr;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const std::vector<std::uint64_t> digests =
            runWorkload(workloads[w]);
        ASSERT_EQ(digests.size(), kNumSchemes);
        if (print) {
            std::cout << "    // " << workloads[w].name << "\n    {";
            for (std::size_t s = 0; s < kNumSchemes; ++s)
                std::cout << (s ? ", " : "") << "0x" << std::hex
                          << digests[s] << std::dec << "ULL";
            std::cout << "},\n";
            continue;
        }
        for (std::size_t s = 0; s < kNumSchemes; ++s) {
            EXPECT_EQ(digests[s], kGolden[w][s])
                << "scheme '" << kSchemes[s].label << "' on workload '"
                << workloads[w].name
                << "' diverged from the seed implementation";
        }
    }
}

/**
 * The decode-once prepared path (PR 5) must reproduce the seed
 * digests bit-for-bit: same 14 schemes × 3 workloads, replayed from
 * the SoA columns of the process-wide trace repository instead of the
 * interleaved raw records.
 */
TEST(GoldenEquivalence, PreparedReplayMatchesGoldenDigests)
{
    const std::vector<gen::WorkloadConfig> workloads =
        gen::standardWorkloads();
    ASSERT_EQ(workloads.size(), 3u);

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const std::vector<std::uint64_t> digests =
            runWorkloadPrepared(workloads[w]);
        ASSERT_EQ(digests.size(), kNumSchemes);
        for (std::size_t s = 0; s < kNumSchemes; ++s) {
            EXPECT_EQ(digests[s], kGolden[w][s])
                << "scheme '" << kSchemes[s].label << "' on workload '"
                << workloads[w].name
                << "' diverged when replayed from the prepared trace";
        }
    }
}

/**
 * An *unbounded* directory cache (entries = 0) can never evict, so
 * adding it in front of any directory must be invisible: every scheme
 * × workload digest stays bit-identical to the seed table, on both
 * the raw-replay and prepared-replay paths.  This pins the tentpole's
 * integration points (touch placement, counter plumbing) against the
 * 42 golden design points before the finite-capacity behaviour is
 * exercised elsewhere.
 */
TEST(GoldenEquivalence, UnboundedDirCacheMatchesGoldenDigests)
{
    directory::DirCacheConfig dc;
    dc.enabled = true;
    dc.entries = 0; // unbounded: tracks every block, never evicts

    const std::vector<gen::WorkloadConfig> workloads =
        gen::standardWorkloads();
    ASSERT_EQ(workloads.size(), 3u);

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const std::vector<std::uint64_t> raw =
            runWorkload(workloads[w], &dc);
        const std::vector<std::uint64_t> prepared =
            runWorkloadPrepared(workloads[w], &dc);
        ASSERT_EQ(raw.size(), kNumSchemes);
        ASSERT_EQ(prepared.size(), kNumSchemes);
        for (std::size_t s = 0; s < kNumSchemes; ++s) {
            EXPECT_EQ(raw[s], kGolden[w][s])
                << "scheme '" << kSchemes[s].label << "' on workload '"
                << workloads[w].name
                << "' diverged under an unbounded directory cache (raw)";
            EXPECT_EQ(prepared[s], kGolden[w][s])
                << "scheme '" << kSchemes[s].label << "' on workload '"
                << workloads[w].name
                << "' diverged under an unbounded directory cache "
                   "(prepared)";
        }
    }
}

/**
 * The unbounded cache is invisible to results, but it must actually
 * be *running*: directory-capable schemes must record misses (first
 * touch of each block) and zero evictions/invalidations.
 */
TEST(GoldenEquivalence, UnboundedDirCacheCountersAreSane)
{
    directory::DirCacheConfig dc;
    dc.enabled = true;
    dc.entries = 0;

    const gen::WorkloadConfig cfg = gen::standardWorkloads()[0];
    sim::Simulator simulator;
    for (const Scheme &scheme : kSchemes)
        simulator.addEngine(scheme.make(cfg.space.nProcesses, &dc));
    gen::WorkloadSource source(cfg);
    simulator.run(source);

    for (std::size_t s = 0; s < kNumSchemes; ++s) {
        const coherence::EngineResults &r =
            simulator.engine(s).results();
        if (kSchemes[s].dirCacheCapable) {
            EXPECT_GT(r.dirCacheMisses, 0u)
                << kSchemes[s].label
                << ": cache enabled but never consulted";
        } else {
            EXPECT_EQ(r.dirCacheMisses, 0u) << kSchemes[s].label;
            EXPECT_EQ(r.dirCacheHits, 0u) << kSchemes[s].label;
        }
        EXPECT_EQ(r.dirCacheEvictions, 0u) << kSchemes[s].label;
        EXPECT_EQ(r.dirCacheEvictionInvals, 0u) << kSchemes[s].label;
        EXPECT_EQ(r.dirCacheEvictionWriteBacks, 0u)
            << kSchemes[s].label;
    }
}

/**
 * The same 42 points fanned across a SweepRunner with 4 workers, one
 * point per (workload, scheme) cell — raw sources for even scheme
 * indices, the shared prepared trace for odd ones — must still land
 * on the golden digests in submission order.
 */
TEST(GoldenEquivalence, UnboundedDirCacheParallelSweepMatchesGolden)
{
    directory::DirCacheConfig dc;
    dc.enabled = true;
    dc.entries = 0;

    const std::vector<gen::WorkloadConfig> workloads =
        gen::standardWorkloads();
    ASSERT_EQ(workloads.size(), 3u);

    sim::SweepRunner runner(4);
    for (const gen::WorkloadConfig &cfg : workloads) {
        const std::shared_ptr<const trace::PreparedTrace> prepared =
            sim::TraceRepository::global().get(cfg);
        for (std::size_t s = 0; s < kNumSchemes; ++s) {
            sim::SweepPoint point;
            point.name = std::string(cfg.name) + "/" +
                         kSchemes[s].label;
            point.engines = [s, units = cfg.space.nProcesses, &dc] {
                std::vector<
                    std::unique_ptr<coherence::CoherenceEngine>>
                    engines;
                engines.push_back(kSchemes[s].make(units, &dc));
                return engines;
            };
            if (s % 2 == 0)
                point.source = [cfg] {
                    return std::make_unique<gen::WorkloadSource>(cfg);
                };
            else
                point.prepared = prepared;
            runner.add(std::move(point));
        }
    }

    const std::vector<sim::SweepPointResult> results = runner.run();
    ASSERT_EQ(results.size(), workloads.size() * kNumSchemes);
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        for (std::size_t s = 0; s < kNumSchemes; ++s) {
            const sim::SweepPointResult &res =
                results[w * kNumSchemes + s];
            ASSERT_EQ(res.engines.size(), 1u);
            EXPECT_EQ(digest(res.engines[0]), kGolden[w][s])
                << "point '" << res.name
                << "' diverged under an unbounded directory cache in "
                   "a parallel sweep";
        }
    }
}

/**
 * The out-of-core streamed path must also land on the seed digests:
 * every scheme × workload, replayed from windowed spans of a spilled
 * store file instead of in-memory columns.  The small chunk size
 * forces many span boundaries per workload — this is the proof that
 * boundaries are invisible to every engine variant.
 */
TEST(GoldenEquivalence, StreamedReplayMatchesGoldenDigests)
{
    CacheDirGuard dir("serial");
    sim::TraceRepository repo(1);
    sim::DiskCacheConfig disk;
    disk.dir = dir.path;
    disk.chunkRefs = 64 * 1024;
    repo.setDiskCache(disk);

    const std::vector<gen::WorkloadConfig> workloads =
        gen::standardWorkloads();
    ASSERT_EQ(workloads.size(), 3u);

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const std::shared_ptr<const trace::StoredTrace> stored =
            repo.getStored(workloads[w]);
        ASSERT_GT(stored->numChunks(), 1u);
        sim::Simulator simulator;
        for (const Scheme &scheme : kSchemes)
            simulator.addEngine(
                scheme.make(workloads[w].space.nProcesses, nullptr));
        const auto spans = stored->spanCursor();
        simulator.run(*spans);
        for (std::size_t s = 0; s < kNumSchemes; ++s) {
            EXPECT_EQ(digest(simulator.engine(s).results()),
                      kGolden[w][s])
                << "scheme '" << kSchemes[s].label << "' on workload '"
                << workloads[w].name
                << "' diverged when streamed from the trace store";
        }
    }
    // The whole matrix was served without a single re-generate after
    // the three cold spills.
    EXPECT_EQ(repo.stats().builds, 3u);
}

/**
 * The same 42 points through a 4-worker SweepRunner, every point
 * replaying windowed spans of the shared store files (each job gets
 * its own cursor over the same immutable StoredTrace), must still
 * land on the golden digests in submission order.
 */
TEST(GoldenEquivalence, StreamedParallelSweepMatchesGolden)
{
    CacheDirGuard dir("sweep");
    sim::TraceRepository repo(1);
    sim::DiskCacheConfig disk;
    disk.dir = dir.path;
    disk.chunkRefs = 64 * 1024;
    repo.setDiskCache(disk);

    const std::vector<gen::WorkloadConfig> workloads =
        gen::standardWorkloads();
    ASSERT_EQ(workloads.size(), 3u);

    sim::SweepRunner runner(4);
    for (const gen::WorkloadConfig &cfg : workloads) {
        const std::shared_ptr<const trace::StoredTrace> stored =
            repo.getStored(cfg);
        for (std::size_t s = 0; s < kNumSchemes; ++s) {
            sim::SweepPoint point;
            point.name = std::string(cfg.name) + "/" +
                         kSchemes[s].label;
            point.engines = [s, units = cfg.space.nProcesses] {
                std::vector<
                    std::unique_ptr<coherence::CoherenceEngine>>
                    engines;
                engines.push_back(kSchemes[s].make(units, nullptr));
                return engines;
            };
            point.spans = [stored] { return stored->spanCursor(); };
            runner.add(std::move(point));
        }
    }

    const std::vector<sim::SweepPointResult> results = runner.run();
    ASSERT_EQ(results.size(), workloads.size() * kNumSchemes);
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        for (std::size_t s = 0; s < kNumSchemes; ++s) {
            const sim::SweepPointResult &res =
                results[w * kNumSchemes + s];
            ASSERT_EQ(res.engines.size(), 1u);
            EXPECT_EQ(digest(res.engines[0]), kGolden[w][s])
                << "point '" << res.name
                << "' diverged when streamed through a parallel "
                   "sweep";
        }
    }
}

} // namespace
