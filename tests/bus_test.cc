/**
 * @file
 * Tests for the bus cost models against the paper's Tables 1 and 2.
 */

#include <gtest/gtest.h>

#include "bus/bus_model.hh"

namespace
{

using namespace dirsim::bus;

TEST(BusPrimitivesTest, DefaultsMatchTable1)
{
    const BusPrimitives prim;
    EXPECT_EQ(prim.transferWord, 1u);
    EXPECT_EQ(prim.sendAddress, 1u);
    EXPECT_EQ(prim.invalidate, 1u);
    EXPECT_EQ(prim.waitDirectory, 2u);
    EXPECT_EQ(prim.waitMemory, 2u);
    EXPECT_EQ(prim.waitCache, 1u);
    EXPECT_EQ(prim.wordsPerBlock, 4u);
}

TEST(PipelinedBusTest, MatchesTable2)
{
    const BusCosts costs = pipelinedBus();
    EXPECT_EQ(costs.name, "pipelined");
    // 1 address + 4 data words; the bus is released during the access.
    EXPECT_EQ(costs.memoryAccess, 5u);
    EXPECT_EQ(costs.cacheAccess, 5u);
    // Address rides with the first data word.
    EXPECT_EQ(costs.writeBack, 4u);
    EXPECT_EQ(costs.writeWord, 1u);
    EXPECT_EQ(costs.directoryCheck, 1u);
    EXPECT_EQ(costs.invalidate, 1u);
    EXPECT_EQ(costs.requestAddress, 1u);
    EXPECT_TRUE(costs.directoryOverlapsMemory);
}

TEST(NonPipelinedBusTest, MatchesTable2)
{
    const BusCosts costs = nonPipelinedBus();
    EXPECT_EQ(costs.name, "non-pipelined");
    // 1 address + 2 memory-wait + 4 data.
    EXPECT_EQ(costs.memoryAccess, 7u);
    // Cache wait is only 1 cycle.
    EXPECT_EQ(costs.cacheAccess, 6u);
    EXPECT_EQ(costs.writeBack, 4u);
    // 1 address + 1 data word.
    EXPECT_EQ(costs.writeWord, 2u);
    // 1 address + 2 directory-wait.
    EXPECT_EQ(costs.directoryCheck, 3u);
    EXPECT_EQ(costs.invalidate, 1u);
}

TEST(BusModelsTest, StandardBusesOrdering)
{
    const BusModels buses = standardBuses();
    // Every operation is at least as expensive on the non-pipelined
    // bus.
    EXPECT_GE(buses.nonPipelined.memoryAccess,
              buses.pipelined.memoryAccess);
    EXPECT_GE(buses.nonPipelined.cacheAccess,
              buses.pipelined.cacheAccess);
    EXPECT_GE(buses.nonPipelined.writeWord, buses.pipelined.writeWord);
    EXPECT_GE(buses.nonPipelined.directoryCheck,
              buses.pipelined.directoryCheck);
}

TEST(BusModelsTest, CustomPrimitivesPropagate)
{
    BusPrimitives prim;
    prim.wordsPerBlock = 8; // 32-byte blocks
    prim.waitMemory = 4;
    const BusCosts pipe = pipelinedBus(prim);
    EXPECT_EQ(pipe.memoryAccess, 9u);
    EXPECT_EQ(pipe.writeBack, 8u);
    const BusCosts np = nonPipelinedBus(prim);
    EXPECT_EQ(np.memoryAccess, 1u + 4u + 8u);
}

TEST(BusModelsTest, WiderBusShrinksTransfers)
{
    // A hypothetical 2-words-per-cycle bus modelled by halving the
    // per-word transfer count.
    BusPrimitives prim;
    prim.wordsPerBlock = 2;
    EXPECT_LT(pipelinedBus(prim).memoryAccess,
              pipelinedBus().memoryAccess);
}

} // namespace

#include "bus/network.hh"

namespace
{

using dirsim::bus::NetworkParams;
using dirsim::bus::networkBroadcastCost;
using dirsim::bus::networkCosts;
using dirsim::bus::networkHops;

TEST(Network, HopCountIsLogarithmic)
{
    NetworkParams params;
    params.nNodes = 1;
    EXPECT_EQ(networkHops(params), 1u);
    params.nNodes = 2;
    EXPECT_EQ(networkHops(params), 1u);
    params.nNodes = 4;
    EXPECT_EQ(networkHops(params), 2u);
    params.nNodes = 16;
    EXPECT_EQ(networkHops(params), 4u);
    params.nNodes = 64;
    EXPECT_EQ(networkHops(params), 6u);
    params.nNodes = 5; // non-power-of-two rounds up
    EXPECT_EQ(networkHops(params), 3u);
}

TEST(Network, DirectedCostsScaleWithDiameter)
{
    NetworkParams small;
    small.nNodes = 4;
    NetworkParams large;
    large.nNodes = 64;
    const auto small_costs = networkCosts(small);
    const auto large_costs = networkCosts(large);
    EXPECT_LT(small_costs.invalidate, large_costs.invalidate);
    EXPECT_LT(small_costs.memoryAccess, large_costs.memoryAccess);
    // A block transfer is a header plus pipelined words.
    EXPECT_EQ(small_costs.memoryAccess,
              networkHops(small) + small.wordsPerBlock);
}

TEST(Network, BroadcastBlowsUpWithoutHardwareSupport)
{
    NetworkParams params;
    params.nNodes = 64;
    const double emulated = networkBroadcastCost(params);
    EXPECT_DOUBLE_EQ(emulated, 63.0 * networkHops(params));
    params.hardwareBroadcast = true;
    EXPECT_DOUBLE_EQ(networkBroadcastCost(params),
                     networkHops(params));
    // The gap is the paper's scaling argument in one number.
    EXPECT_GT(emulated / networkBroadcastCost(params), 30.0);
}

TEST(Network, CyclesPerHopScalesLinearly)
{
    NetworkParams one;
    one.nNodes = 16;
    NetworkParams two = one;
    two.cyclesPerHop = 2;
    EXPECT_EQ(networkCosts(two).invalidate,
              2 * networkCosts(one).invalidate);
    EXPECT_DOUBLE_EQ(networkBroadcastCost(two),
                     2.0 * networkBroadcastCost(one));
}

} // namespace
