/**
 * @file
 * Tests for the analysis layer: evaluation runners and exhibit
 * builders.  Uses small workloads so the whole suite stays fast.
 */

#include <gtest/gtest.h>

#include "analysis/evaluation.hh"
#include "analysis/exhibits.hh"
#include "analysis/extensions.hh"
#include "directory/full_map.hh"
#include "directory/two_bit.hh"

namespace
{

using namespace dirsim;
using namespace dirsim::analysis;

std::vector<gen::WorkloadConfig>
smallWorkloads()
{
    auto workloads = gen::standardWorkloads();
    for (auto &cfg : workloads)
        cfg.totalRefs = 120'000;
    return workloads;
}

class AnalysisTest : public ::testing::Test
{
  protected:
    static const Evaluation &
    eval()
    {
        static const Evaluation e = evaluateWorkloads(smallWorkloads());
        return e;
    }
};

TEST_F(AnalysisTest, EvaluationStructure)
{
    EXPECT_EQ(eval().traces.size(), 3u);
    EXPECT_EQ(eval().traces[0].trace, "pops");
    EXPECT_EQ(eval().traces[2].trace, "pero");
    // The average merges all records.
    std::uint64_t sum = 0;
    for (const auto &te : eval().traces)
        sum += te.inval.events.totalRefs();
    EXPECT_EQ(eval().average.inval.events.totalRefs(), sum);
    EXPECT_EQ(sum, 3u * 120'000u);
}

TEST_F(AnalysisTest, EnginesSawTheSameTrace)
{
    for (const auto &te : eval().traces) {
        EXPECT_EQ(te.inval.events.totalRefs(),
                  te.dir1nb.events.totalRefs());
        EXPECT_EQ(te.inval.events.totalRefs(),
                  te.dragon.events.totalRefs());
        EXPECT_EQ(te.inval.events.count(coherence::Event::Instr),
                  te.dragon.events.count(coherence::Event::Instr));
    }
}

TEST_F(AnalysisTest, SchemeCostsCoverAllFourSchemes)
{
    const auto costs = schemeCosts(eval().average);
    ASSERT_EQ(costs.size(), 4u);
    EXPECT_EQ(costs[0].name, "Dir1NB");
    EXPECT_EQ(costs[1].name, "WTI");
    EXPECT_EQ(costs[2].name, "Dir0B");
    EXPECT_EQ(costs[3].name, "Dragon");
    for (const auto &sc : costs) {
        EXPECT_GT(sc.pipelined.total(), 0.0) << sc.name;
        EXPECT_GE(sc.nonPipelined.total(), sc.pipelined.total())
            << sc.name;
    }
}

TEST_F(AnalysisTest, TablesRender)
{
    EXPECT_GT(table1().rows(), 4u);
    EXPECT_GT(table2().rows(), 4u);
    const auto chars = characterizeWorkloads(smallWorkloads());
    EXPECT_EQ(table3(chars).rows(), 3u);
    const auto t4 = table4(eval());
    EXPECT_GT(t4.rows(), 14u);
    EXPECT_NE(t4.toString().find("rm-blk-cln"), std::string::npos);
    EXPECT_GT(table5(eval()).rows(), 6u);
    EXPECT_GT(figure2(eval()).rows(), 3u);
    EXPECT_EQ(figure3(eval()).rows(), 3u);
    EXPECT_GT(figure4(eval()).rows(), 5u);
    EXPECT_EQ(figure5(eval()).rows(), 4u);
}

TEST_F(AnalysisTest, Figure1FractionsAreSane)
{
    const Figure1 fig = figure1(eval());
    EXPECT_GT(fig.fanout.totalSamples(), 0u);
    EXPECT_GE(fig.fracAtMostOne, 0.0);
    EXPECT_LE(fig.fracAtMostOne, 1.0);
    EXPECT_LE(fig.fanout.maxValue(), 3u); // at most nUnits-1 = 3
    EXPECT_GT(renderFigure1(fig, 5).rows(), 4u);
}

TEST_F(AnalysisTest, Section51TableHasQColumns)
{
    const auto table = section51(eval(), {0.0, 1.0, 2.0});
    EXPECT_EQ(table.rows(), 4u);
    EXPECT_NE(table.toString().find("q=1"), std::string::npos);
}

TEST_F(AnalysisTest, Section6Consistency)
{
    const Section6 sec = section6(eval(), 8.0);
    // Sequential invalidation can only add cycles over broadcast.
    EXPECT_GE(sec.dirnnbSeq, sec.dir0b);
    // ... but not many (the paper's point: most invalidations hit one
    // cache).
    EXPECT_LT(sec.dirnnbSeq - sec.dir0b, 0.15 * sec.dir0b);
    // Berkeley drops the directory-check cycles.
    EXPECT_LT(sec.berkeley, sec.dir0b);
    // Dir1B slope equals the frequency of fanout >= 2 invalidation
    // events; it must be small and positive.
    EXPECT_GT(sec.dir1bCoef, 0.0);
    EXPECT_LT(sec.dir1bCoef, 0.005);
    // More pointers means fewer broadcasts: DiriB totals decrease in i
    // for a fixed broadcast cost > 1.
    for (std::size_t k = 1; k < sec.diribTotals.size(); ++k) {
        EXPECT_LE(sec.diribTotals[k].second,
                  sec.diribTotals[k - 1].second + 1e-12);
    }
    EXPECT_GT(renderSection6(sec, 8.0).rows(), 6u);
}

TEST_F(AnalysisTest, LimitedSweepMonotone)
{
    const std::vector<unsigned> is = {1, 2, 4};
    const auto sweep = limitedSweep(smallWorkloads(), is);
    ASSERT_EQ(sweep.size(), 3u);
    // Misses fall as pointers grow.
    for (std::size_t k = 1; k < sweep.size(); ++k) {
        EXPECT_LE(sweep[k].events.readMisses(),
                  sweep[k - 1].events.readMisses());
        EXPECT_LE(sweep[k].displacementInvals,
                  sweep[k - 1].displacementInvals);
    }
    EXPECT_EQ(limitedSweepTable(sweep, is).rows(), 3u);
}

TEST_F(AnalysisTest, DropLockTestsOptionShrinksTrace)
{
    EvalOptions opts;
    opts.dropLockTests = true;
    const Evaluation filtered =
        evaluateWorkloads(smallWorkloads(), opts);
    EXPECT_LT(filtered.average.inval.events.totalRefs(),
              eval().average.inval.events.totalRefs());
    const auto table = section52(eval(), filtered);
    EXPECT_EQ(table.rows(), 4u);
}

TEST_F(AnalysisTest, InvalWithDirectoryReportsMessages)
{
    directory::FullMapFactory full;
    const auto r = invalWithDirectory(smallWorkloads(), full);
    EXPECT_GT(r.dirDirectedInvals, 0u);
    EXPECT_EQ(r.dirBroadcasts, 0u);
    EXPECT_EQ(r.dirOvershoot, 0u);

    directory::TwoBitFactory two_bit;
    const auto r2 = invalWithDirectory(smallWorkloads(), two_bit);
    EXPECT_GT(r2.dirBroadcasts, 0u);
}

TEST_F(AnalysisTest, FiniteCachesIncreaseMisses)
{
    mem::CacheGeometry tiny;
    tiny.capacityBytes = 4 * 1024;
    tiny.blockBytes = 16;
    tiny.ways = 4;
    const auto finite =
        invalWithFiniteCaches(smallWorkloads(), tiny);
    EXPECT_GT(finite.replacementEvictions, 0u);
    EXPECT_GT(finite.events.readMisses() +
                  finite.events.count(coherence::Event::RmMemory),
              eval().average.inval.events.readMisses());
}

TEST(Extensions, ScalingStudyShapes)
{
    const auto points = scalingStudy({2, 4, 8}, 30'000);
    ASSERT_EQ(points.size(), 3u);
    for (const auto &pt : points) {
        EXPECT_GT(pt.dir0bCycles, 0.0);
        EXPECT_GE(pt.dirnnbCycles, pt.dir0bCycles);
        EXPECT_GT(pt.dir1nbCycles, pt.dir0bCycles);
        EXPECT_GE(pt.fracAtMostOne, 0.0);
        EXPECT_LE(pt.fracAtMostOne, 1.0);
    }
    EXPECT_EQ(renderScaling(points).rows(), 3u);
}

TEST(Extensions, FiniteCacheStudyIncludesInfiniteBaseline)
{
    const auto points = finiteCacheStudy({16 * 1024, 256 * 1024});
    ASSERT_EQ(points.size(), 3u);
    EXPECT_EQ(points[0].capacityBytes, 0u);
    EXPECT_DOUBLE_EQ(points[0].replacementWbFrac, 0.0);
    // Smaller caches cost at least as much as the infinite baseline.
    EXPECT_GE(points[1].dir0bCycles, points[0].dir0bCycles);
    EXPECT_GE(points[1].dir0bCycles, points[2].dir0bCycles);
    EXPECT_EQ(renderFiniteCache(points).rows(), 3u);
}

TEST(Extensions, SharingDomainsAgreeClosely)
{
    // The paper: "the numbers were not significantly different".
    // That holds for the invalidation protocols.  For Dragon the
    // processor domain is systematically costlier: with infinite
    // caches a migrated process's blocks stay resident in the old
    // CPU's cache forever, and an update protocol pays a distributed
    // write on them from then on — so the band is wider.
    const auto cmp = sharingDomainStudy(0.02);
    const auto by_proc = schemeCosts(cmp.byProcess.average);
    const auto by_cpu = schemeCosts(cmp.byProcessor.average);
    for (std::size_t s = 0; s < by_proc.size(); ++s) {
        const double a = by_proc[s].pipelined.total();
        const double b = by_cpu[s].pipelined.total();
        const double band =
            by_proc[s].name == "Dragon" ? 0.55 : 0.25;
        EXPECT_NEAR(a, b, band * std::max(a, b))
            << by_proc[s].name;
    }
    EXPECT_EQ(renderSharingDomain(cmp).rows(), 3u);
}

TEST(Extensions, DirectoryMessageStudyOrdering)
{
    const auto rows = directoryMessageStudy();
    ASSERT_GE(rows.size(), 5u);
    // Full map never broadcasts and never overshoots.
    EXPECT_DOUBLE_EQ(rows[0].broadcastFrac, 0.0);
    EXPECT_DOUBLE_EQ(rows[0].overshootPerEvent, 0.0);
    // The two-bit scheme broadcasts for most shared invalidations.
    EXPECT_GT(rows[1].broadcastFrac, 0.0);
    // Dir2B broadcasts no more often than Dir1B.
    EXPECT_LE(rows[3].broadcastFrac, rows[2].broadcastFrac);
    // The coarse vector never broadcasts but overshoots sometimes.
    EXPECT_DOUBLE_EQ(rows[4].broadcastFrac, 0.0);
    EXPECT_GE(rows[4].overshootPerEvent, 0.0);
    EXPECT_EQ(renderDirectoryMessages(rows).rows(), rows.size());
}

} // namespace

namespace
{

using namespace dirsim;
using namespace dirsim::analysis;

TEST(Extensions, NetworkStudyShowsScalingAsymmetry)
{
    const auto points = networkStudy({4, 16}, 25'000);
    ASSERT_EQ(points.size(), 2u);
    for (const auto &pt : points) {
        // Directed full-map is never worse than broadcast emulation.
        EXPECT_LE(pt.dirnnbDirected, pt.dir0bBroadcast + 1e-12);
        // More pointers never hurt.
        EXPECT_LE(pt.dir4b, pt.dir1b + 1e-12);
        // Snoopy write-through is the worst at every size.
        EXPECT_GT(pt.wtiBroadcast, pt.dir0bBroadcast);
    }
    // The broadcast-reliant schemes degrade faster with machine size
    // than the directed full map: the paper's scaling thesis.
    const double directed_growth =
        points[1].dirnnbDirected / points[0].dirnnbDirected;
    const double broadcast_growth =
        points[1].dir0bBroadcast / points[0].dir0bBroadcast;
    const double wti_growth =
        points[1].wtiBroadcast / points[0].wtiBroadcast;
    EXPECT_GT(broadcast_growth, directed_growth);
    EXPECT_GT(wti_growth, directed_growth);
    EXPECT_EQ(renderNetwork(points).rows(), 2u);
}

TEST(Extensions, BerkeleyResultsServeMoreMissesFromCaches)
{
    auto workloads = gen::standardWorkloads();
    for (auto &cfg : workloads)
        cfg.totalRefs = 100'000;
    const auto own = berkeleyResults(workloads);
    const auto eval = evaluateWorkloads(workloads);
    const auto &iv = eval.average.inval;
    // Aggregates agree...
    EXPECT_EQ(own.events.readMisses(), iv.events.readMisses());
    EXPECT_EQ(own.events.writeMisses(), iv.events.writeMisses());
    // ...but ownership persistence shifts misses from memory (clean)
    // to cache-to-cache (dirty).
    EXPECT_GE(own.events.count(coherence::Event::RmBlkDrty),
              iv.events.count(coherence::Event::RmBlkDrty));
}

} // namespace

#include "analysis/system_perf.hh"
#include "coherence/inval_engine.hh"

namespace
{

using dirsim::analysis::MachineParams;
using dirsim::analysis::SystemEstimate;
using dirsim::analysis::systemEstimate;

dirsim::sim::CostBreakdown
costOf(double cycles_per_ref, const std::string &name)
{
    dirsim::sim::CostBreakdown cost;
    cost.scheme = name;
    cost.memAccess = cycles_per_ref;
    return cost;
}

TEST(SystemPerf, ReproducesPaperClosingArithmetic)
{
    // "0.03 bus cycles per reference ... a 10-MIPS processor will
    // require a bus cycle every 1500ns, and a bus with a cycle time
    // of 100ns will only yield a maximum performance of 15 effective
    // processors."
    // The paper rounds 0.03 cycles/ref to "a bus cycle every 30
    // references"; feeding exactly 1/30 reproduces its arithmetic.
    const SystemEstimate est =
        systemEstimate(costOf(1.0 / 30.0, "best"), MachineParams{});
    EXPECT_NEAR(est.nsPerBusCycleDemand, 1500.0, 1.0);
    EXPECT_NEAR(est.maxEffectiveProcessors, 15.0, 0.1);
}

TEST(SystemPerf, UtilizationIsLinearInProcessors)
{
    const SystemEstimate est =
        systemEstimate(costOf(0.05, "x"), MachineParams{});
    EXPECT_NEAR(est.utilizationAt(10), 10.0 * est.utilizationAt(1),
                1e-12);
}

TEST(SystemPerf, EffectiveProcessorsSaturateAtCeiling)
{
    const SystemEstimate est =
        systemEstimate(costOf(0.03, "x"), MachineParams{});
    // Monotone increasing...
    double prev = 0.0;
    for (unsigned n : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 256u}) {
        const double eff = est.effectiveProcessorsAt(n);
        EXPECT_GT(eff, prev);
        prev = eff;
    }
    // ...never above the physical count nor the hard ceiling.
    EXPECT_LE(est.effectiveProcessorsAt(4), 4.0 + 1e-12);
    EXPECT_LE(est.effectiveProcessorsAt(1024),
              est.maxEffectiveProcessors + 1.0);
    // And close to the ceiling with many processors.
    EXPECT_GT(est.effectiveProcessorsAt(1024),
              0.8 * est.maxEffectiveProcessors);
}

TEST(SystemPerf, CheaperProtocolSupportsMoreProcessors)
{
    const SystemEstimate cheap =
        systemEstimate(costOf(0.03, "dragon"), MachineParams{});
    const SystemEstimate costly =
        systemEstimate(costOf(0.15, "wti"), MachineParams{});
    EXPECT_GT(cheap.maxEffectiveProcessors,
              costly.maxEffectiveProcessors);
    EXPECT_GT(cheap.effectiveProcessorsAt(16),
              costly.effectiveProcessorsAt(16));
}

TEST(SystemPerf, FasterBusRaisesCeiling)
{
    MachineParams fast;
    fast.busCycleNs = 50.0;
    const SystemEstimate base =
        systemEstimate(costOf(0.05, "x"), MachineParams{});
    const SystemEstimate faster =
        systemEstimate(costOf(0.05, "x"), fast);
    EXPECT_NEAR(faster.maxEffectiveProcessors,
                2.0 * base.maxEffectiveProcessors, 1e-9);
}

TEST(SystemPerf, ZeroCostMeansUnbounded)
{
    const SystemEstimate est =
        systemEstimate(costOf(0.0, "free"), MachineParams{});
    EXPECT_DOUBLE_EQ(est.maxEffectiveProcessors, 0.0); // undefined
    EXPECT_DOUBLE_EQ(est.effectiveProcessorsAt(16), 16.0);
}

TEST(SystemPerf, RenderIncludesAllSchemes)
{
    std::vector<SystemEstimate> estimates = {
        systemEstimate(costOf(0.03, "a"), MachineParams{}),
        systemEstimate(costOf(0.15, "b"), MachineParams{})};
    const auto table =
        dirsim::analysis::renderSystemLimits(estimates, {4, 16});
    EXPECT_EQ(table.rows(), 2u);
    EXPECT_NE(table.toString().find("eff@16"), std::string::npos);
}

} // namespace

namespace
{

TEST(Extensions, HomeLocalityFavoursFirstTouch)
{
    using namespace dirsim;
    using namespace dirsim::analysis;
    const auto points = homeLocalityStudy({4, 8}, 25'000);
    ASSERT_EQ(points.size(), 2u);
    for (const auto &pt : points) {
        // First-touch keeps private-data fetches local, interleaving
        // scatters them: first-touch must win clearly.
        EXPECT_GT(pt.firstTouchLocalFrac, pt.moduloLocalFrac);
        EXPECT_LT(pt.firstTouchRemotePerRef, pt.moduloRemotePerRef);
        // Interleaved locality is roughly 1/n.
        EXPECT_NEAR(pt.moduloLocalFrac, 1.0 / pt.nCpus,
                    0.5 / pt.nCpus);
    }
    EXPECT_EQ(renderHomeLocality(points).rows(), 2u);
}

TEST(Extensions, HomePolicyNoneTracksNothing)
{
    using namespace dirsim;
    coherence::InvalEngineConfig cfg;
    cfg.nUnits = 4;
    coherence::InvalEngine engine(cfg);
    engine.access(0, trace::RefType::Write, 1);
    engine.access(1, trace::RefType::Read, 1);
    EXPECT_EQ(engine.results().homeLocalTransactions, 0u);
    EXPECT_EQ(engine.results().homeRemoteTransactions, 0u);
}

TEST(Extensions, FirstTouchHomeIsFirstToucher)
{
    using namespace dirsim;
    coherence::InvalEngineConfig cfg;
    cfg.nUnits = 4;
    cfg.homePolicy = coherence::HomePolicy::FirstTouch;
    coherence::InvalEngine engine(cfg);
    engine.access(2, trace::RefType::Read, 7);  // home := 2, local
    engine.access(3, trace::RefType::Write, 7); // remote
    engine.access(2, trace::RefType::Read, 7);  // miss again: local
    EXPECT_EQ(engine.results().homeLocalTransactions, 2u);
    EXPECT_EQ(engine.results().homeRemoteTransactions, 1u);
}

TEST(Extensions, ModuloHomeFollowsBlockId)
{
    using namespace dirsim;
    coherence::InvalEngineConfig cfg;
    cfg.nUnits = 4;
    cfg.homePolicy = coherence::HomePolicy::Modulo;
    coherence::InvalEngine engine(cfg);
    engine.access(1, trace::RefType::Read, 5); // home = 5 % 4 = 1
    EXPECT_EQ(engine.results().homeLocalTransactions, 1u);
    engine.access(2, trace::RefType::Read, 6); // home = 2: local
    EXPECT_EQ(engine.results().homeLocalTransactions, 2u);
    engine.access(0, trace::RefType::Read, 7); // home = 3: remote
    EXPECT_EQ(engine.results().homeRemoteTransactions, 1u);
}

} // namespace

#include "analysis/analytical.hh"

namespace
{

using dirsim::analysis::AnalyticalParams;
using dirsim::analysis::analyticalPredict;

TEST(Analytical, DegenerateInputsPredictNothing)
{
    AnalyticalParams params;
    params.sharedRefFrac = 0.0;
    params.writeFrac = 0.2;
    EXPECT_DOUBLE_EQ(analyticalPredict(params).invalEventsPerRef, 0.0);
    params.sharedRefFrac = 0.1;
    params.writeFrac = 0.0;
    EXPECT_DOUBLE_EQ(analyticalPredict(params).invalEventsPerRef, 0.0);
    params.writeFrac = 0.2;
    params.nProcessors = 1;
    EXPECT_DOUBLE_EQ(analyticalPredict(params).meanFanout, 0.0);
}

TEST(Analytical, WriteHeavySharingShrinksFanout)
{
    // More writes per read window means fewer accumulated readers.
    AnalyticalParams light;
    light.sharedRefFrac = 0.05;
    light.writeFrac = 0.05;
    light.nProcessors = 8;
    AnalyticalParams heavy = light;
    heavy.writeFrac = 0.5;
    EXPECT_GT(analyticalPredict(light).meanFanout,
              analyticalPredict(heavy).meanFanout);
    EXPECT_LT(analyticalPredict(light).fracAtMostOne,
              analyticalPredict(heavy).fracAtMostOne);
}

TEST(Analytical, FanoutBoundedByRemoteProcessors)
{
    AnalyticalParams params;
    params.sharedRefFrac = 0.2;
    params.writeFrac = 0.001; // long read windows: everyone reads
    params.nProcessors = 4;
    const auto pred = analyticalPredict(params);
    EXPECT_LE(pred.meanFanout, 3.0 + 1e-12);
    EXPECT_GT(pred.meanFanout, 2.5);
    // Probabilities stay probabilities.
    EXPECT_GE(pred.fracAtMostOne, 0.0);
    EXPECT_LE(pred.fracAtMostOne, 1.0);
}

TEST(Analytical, InvalRateScalesWithSharingAndWrites)
{
    AnalyticalParams params;
    params.sharedRefFrac = 0.1;
    params.writeFrac = 0.2;
    params.nProcessors = 4;
    const double base = analyticalPredict(params).invalEventsPerRef;
    params.sharedRefFrac = 0.2;
    EXPECT_NEAR(analyticalPredict(params).invalEventsPerRef, 2 * base,
                1e-12);
}

TEST(Analytical, StudyShowsUniformityGap)
{
    using namespace dirsim;
    auto workloads = gen::standardWorkloads();
    for (auto &cfg : workloads)
        cfg.totalRefs = 150'000;
    const auto rows = analysis::analyticalStudy(workloads);
    ASSERT_EQ(rows.size(), 3u);
    for (const auto &row : rows) {
        EXPECT_GT(row.fitted.sharedRefFrac, 0.0) << row.trace;
        EXPECT_GT(row.simInvalEventsPerRef, 0.0) << row.trace;
    }
    // The methodology point: the uniform model misses the
    // lock-structured workloads by more than the unstructured one.
    auto rel_err = [](const analysis::AnalyticalComparison &row) {
        return std::abs(row.predicted.invalEventsPerRef -
                        row.simInvalEventsPerRef) /
               row.simInvalEventsPerRef;
    };
    const double pops_err = rel_err(rows[0]);
    const double pero_err = rel_err(rows[2]);
    EXPECT_GT(pops_err, pero_err);
    EXPECT_EQ(analysis::renderAnalytical(rows).rows(), 3u);
}

} // namespace
