/**
 * @file
 * Death and edge tests of the strict CLI number parsers.
 *
 * Every exhibit binary funnels numeric flags through cli::parse*;
 * each rejection path must exit with status 2 and a message naming
 * the flag, and each acceptance path must return the exact value.
 */

#include <gtest/gtest.h>

#include "cli/parse.hh"

namespace
{

using namespace dirsim;

TEST(ParseUnsigned, AcceptsDigits)
{
    EXPECT_EQ(cli::parseUnsigned("0", "n"), 0u);
    EXPECT_EQ(cli::parseUnsigned("42", "n"), 42u);
    EXPECT_EQ(cli::parseUnsigned("4294967295", "n"), 4294967295u);
}

TEST(ParseUnsignedDeathTest, RejectsGarbage)
{
    EXPECT_EXIT(cli::parseUnsigned("", "--refs"),
                ::testing::ExitedWithCode(2), "invalid --refs");
    EXPECT_EXIT(cli::parseUnsigned(nullptr, "--refs"),
                ::testing::ExitedWithCode(2), "invalid --refs");
    EXPECT_EXIT(cli::parseUnsigned("12x", "--refs"),
                ::testing::ExitedWithCode(2), "invalid --refs");
    EXPECT_EXIT(cli::parseUnsigned("-3", "--refs"),
                ::testing::ExitedWithCode(2), "invalid --refs");
    EXPECT_EXIT(cli::parseUnsigned("4294967296", "--refs"),
                ::testing::ExitedWithCode(2), "invalid --refs");
}

TEST(ParseUnsignedDeathTest, RangeEnforced)
{
    EXPECT_EQ(cli::parseUnsignedInRange("5", "n", 1, 10), 5u);
    EXPECT_EXIT(cli::parseUnsignedInRange("11", "--reps", 1, 10),
                ::testing::ExitedWithCode(2), "--reps must be in");
}

TEST(ParseDouble, AcceptsFiniteDecimals)
{
    EXPECT_DOUBLE_EQ(cli::parseDouble("1.5", "r"), 1.5);
    EXPECT_DOUBLE_EQ(cli::parseDouble("0", "r"), 0.0);
    EXPECT_DOUBLE_EQ(cli::parseDouble("-2.25", "r"), -2.25);
    EXPECT_DOUBLE_EQ(cli::parseDouble("1e6", "r"), 1e6);
    EXPECT_DOUBLE_EQ(cli::parseDouble(".5", "r"), 0.5);
}

TEST(ParseDoubleDeathTest, RejectsEmptyAndTrailing)
{
    EXPECT_EXIT(cli::parseDouble("", "--floor"),
                ::testing::ExitedWithCode(2), "invalid --floor");
    EXPECT_EXIT(cli::parseDouble(nullptr, "--floor"),
                ::testing::ExitedWithCode(2), "invalid --floor");
    EXPECT_EXIT(cli::parseDouble("1.5x", "--floor"),
                ::testing::ExitedWithCode(2), "invalid --floor");
    EXPECT_EXIT(cli::parseDouble("1.5 ", "--floor"),
                ::testing::ExitedWithCode(2), "invalid --floor");
    EXPECT_EXIT(cli::parseDouble("-", "--floor"),
                ::testing::ExitedWithCode(2), "invalid --floor");
}

TEST(ParseDoubleDeathTest, RejectsNonFiniteAndOverflow)
{
    EXPECT_EXIT(cli::parseDouble("nan", "--floor"),
                ::testing::ExitedWithCode(2), "invalid --floor");
    EXPECT_EXIT(cli::parseDouble("inf", "--floor"),
                ::testing::ExitedWithCode(2), "invalid --floor");
    EXPECT_EXIT(cli::parseDouble("-inf", "--floor"),
                ::testing::ExitedWithCode(2), "invalid --floor");
    EXPECT_EXIT(cli::parseDouble("1e999", "--floor"),
                ::testing::ExitedWithCode(2), "invalid --floor");
}

/**
 * The out-of-core trace knobs (--trace-cache-budget in MiB,
 * --stream-chunk-refs) parse through the strict helpers with the
 * exact ranges the binaries pass; pin the boundaries and the
 * rejection of the classic fat-finger inputs.
 */
TEST(TraceCacheKnobs, BudgetBoundariesRoundTrip)
{
    EXPECT_EQ(cli::parseUnsignedInRange("1", "--trace-cache-budget",
                                        1, 16u * 1024 * 1024),
              1u);
    EXPECT_EQ(cli::parseUnsignedInRange("4096", "--trace-cache-budget",
                                        1, 16u * 1024 * 1024),
              4096u);
    EXPECT_EQ(cli::parseUnsignedInRange("16777216",
                                        "--trace-cache-budget", 1,
                                        16u * 1024 * 1024),
              16777216u);
}

TEST(TraceCacheKnobsDeathTest, BudgetRejectsZeroNegativeAndUnits)
{
    EXPECT_EXIT(cli::parseUnsignedInRange("0", "--trace-cache-budget",
                                          1, 16u * 1024 * 1024),
                ::testing::ExitedWithCode(2),
                "--trace-cache-budget must be in");
    EXPECT_EXIT(cli::parseUnsignedInRange("16777217",
                                          "--trace-cache-budget", 1,
                                          16u * 1024 * 1024),
                ::testing::ExitedWithCode(2),
                "--trace-cache-budget must be in");
    EXPECT_EXIT(cli::parseUnsignedInRange("-1", "--trace-cache-budget",
                                          1, 16u * 1024 * 1024),
                ::testing::ExitedWithCode(2),
                "invalid --trace-cache-budget");
    // "4G" style unit suffixes are not accepted — MiB only.
    EXPECT_EXIT(cli::parseUnsignedInRange("4G", "--trace-cache-budget",
                                          1, 16u * 1024 * 1024),
                ::testing::ExitedWithCode(2),
                "invalid --trace-cache-budget");
}

TEST(TraceCacheKnobs, ChunkRefsBoundariesRoundTrip)
{
    EXPECT_EQ(cli::parseUnsignedInRange("1", "--stream-chunk-refs", 1,
                                        1u << 31),
              1u);
    EXPECT_EQ(cli::parseUnsignedInRange("1048576",
                                        "--stream-chunk-refs", 1,
                                        1u << 31),
              1048576u);
    EXPECT_EQ(cli::parseUnsignedInRange("2147483648",
                                        "--stream-chunk-refs", 1,
                                        1u << 31),
              2147483648u);
}

TEST(TraceCacheKnobsDeathTest, ChunkRefsRejectsZeroAndOverflow)
{
    EXPECT_EXIT(cli::parseUnsignedInRange("0", "--stream-chunk-refs",
                                          1, 1u << 31),
                ::testing::ExitedWithCode(2),
                "--stream-chunk-refs must be in");
    EXPECT_EXIT(cli::parseUnsignedInRange("2147483649",
                                          "--stream-chunk-refs", 1,
                                          1u << 31),
                ::testing::ExitedWithCode(2),
                "--stream-chunk-refs must be in");
    // 2^32 overflows parseUnsigned itself, not just the range check.
    EXPECT_EXIT(cli::parseUnsignedInRange("4294967296",
                                          "--stream-chunk-refs", 1,
                                          1u << 31),
                ::testing::ExitedWithCode(2),
                "invalid --stream-chunk-refs");
    EXPECT_EXIT(cli::parseUnsignedInRange("1e6", "--stream-chunk-refs",
                                          1, 1u << 31),
                ::testing::ExitedWithCode(2),
                "invalid --stream-chunk-refs");
}

TEST(ParseDoubleDeathTest, RangeEnforced)
{
    EXPECT_DOUBLE_EQ(
        cli::parseDoubleInRange("0.5", "r", 0.0, 1.0), 0.5);
    EXPECT_EXIT(cli::parseDoubleInRange("-0.1", "--floor", 0.0, 1e18),
                ::testing::ExitedWithCode(2), "--floor must be in");
    EXPECT_EXIT(cli::parseDoubleInRange("2", "--floor", 0.0, 1.0),
                ::testing::ExitedWithCode(2), "--floor must be in");
}

/*
 * --gen-chunk-refs (reproduce_paper and bench_hotpath) parses through
 * the same strict helper and range as --stream-chunk-refs: boundaries
 * round-trip, everything outside exits 2 with the flag named.
 */
TEST(DirectGenKnobs, GenChunkRefsBoundariesRoundTrip)
{
    EXPECT_EQ(cli::parseUnsignedInRange("1", "--gen-chunk-refs", 1,
                                        1u << 31),
              1u);
    EXPECT_EQ(cli::parseUnsignedInRange("65536", "--gen-chunk-refs", 1,
                                        1u << 31),
              65536u);
    EXPECT_EQ(cli::parseUnsignedInRange("2147483648",
                                        "--gen-chunk-refs", 1,
                                        1u << 31),
              2147483648u);
}

TEST(DirectGenKnobsDeathTest, GenChunkRefsRejectsBadInput)
{
    EXPECT_EXIT(cli::parseUnsignedInRange("0", "--gen-chunk-refs", 1,
                                          1u << 31),
                ::testing::ExitedWithCode(2),
                "--gen-chunk-refs must be in");
    EXPECT_EXIT(cli::parseUnsignedInRange("2147483649",
                                          "--gen-chunk-refs", 1,
                                          1u << 31),
                ::testing::ExitedWithCode(2),
                "--gen-chunk-refs must be in");
    EXPECT_EXIT(cli::parseUnsignedInRange("-1", "--gen-chunk-refs", 1,
                                          1u << 31),
                ::testing::ExitedWithCode(2),
                "invalid --gen-chunk-refs");
    EXPECT_EXIT(cli::parseUnsignedInRange("64K", "--gen-chunk-refs", 1,
                                          1u << 31),
                ::testing::ExitedWithCode(2),
                "invalid --gen-chunk-refs");
}

} // namespace
