/**
 * @file
 * Tests for the decode-once prepared-trace pipeline (PR 5): the SoA
 * decode itself, its width validation, the parallel chunk builder's
 * determinism, and the memoizing sim::TraceRepository.
 *
 * The companion suites cover the replay side: golden_test.cc pins the
 * prepared path to the seed digests for every scheme × workload, and
 * timing_test.cc holds the prepared timed-bus replay identical to the
 * raw demux path.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "coherence/inval_engine.hh"
#include "gen/workload.hh"
#include "gen/workloads.hh"
#include "sim/simulator.hh"
#include "sim/trace_repo.hh"
#include "trace/prepared.hh"
#include "trace/trace.hh"

namespace
{

using namespace dirsim;

trace::TraceRecord
rec(std::uint8_t cpu, std::uint16_t pid, trace::RefType type,
    std::uint64_t addr, std::uint8_t flags = trace::FlagNone)
{
    trace::TraceRecord r;
    r.cpu = cpu;
    r.pid = pid;
    r.type = type;
    r.addr = addr;
    r.flags = flags;
    return r;
}

gen::WorkloadConfig
smallWorkload()
{
    auto cfg = gen::standardWorkloads()[0];
    cfg.totalRefs = 30'000;
    return cfg;
}

TEST(PreparedTraceTest, DecodeMatchesManualExpectation)
{
    trace::MemoryTrace raw;
    raw.meta().name = "manual";
    // pid 7 first, then pid 3: first-seen order numbers 7 -> unit 0,
    // 3 -> unit 1, exactly as sim::UnitMapper would.
    raw.append(rec(0, 7, trace::RefType::Instr, 0x1000));
    raw.append(rec(0, 7, trace::RefType::Read, 0x100));
    raw.append(rec(1, 3, trace::RefType::Write, 0x234,
                   trace::FlagSystem));
    raw.append(rec(0, 7, trace::RefType::Instr, 0x1010));
    raw.append(rec(1, 3, trace::RefType::Read, 0x100));

    const trace::PreparedTrace prepared =
        trace::PreparedTrace::build(raw);

    EXPECT_EQ(prepared.name(), "manual");
    EXPECT_EQ(prepared.totalRefs(), 5u);
    EXPECT_EQ(prepared.instrRefs(), 2u);
    ASSERT_EQ(prepared.dataRefs(), 3u);
    EXPECT_EQ(prepared.numUnits(), 2u);
    EXPECT_EQ(prepared.numCpus(), 2u);
    EXPECT_FALSE(prepared.hasTimedStreams());

    // Data columns keep the interleaved order with instrs stripped;
    // blocks are the 16-byte-block indices of the addresses.
    const std::uint32_t *block = prepared.blockData();
    const std::uint8_t *unit = prepared.unitData();
    const std::uint8_t *tf = prepared.typeFlagsData();
    EXPECT_EQ(block[0], 0x100u >> 4);
    EXPECT_EQ(unit[0], 0u);
    EXPECT_EQ(trace::packedRefType(tf[0]), trace::RefType::Read);
    EXPECT_EQ(block[1], 0x234u >> 4);
    EXPECT_EQ(unit[1], 1u);
    EXPECT_EQ(trace::packedRefType(tf[1]), trace::RefType::Write);
    EXPECT_EQ(trace::packedFlags(tf[1]), trace::FlagSystem);
    EXPECT_EQ(block[2], 0x100u >> 4);
    EXPECT_EQ(unit[2], 1u);

    EXPECT_GT(prepared.byteSize(), 0u);
}

TEST(PreparedTraceTest, ProcessorDomainUsesCpuIds)
{
    trace::MemoryTrace raw;
    raw.append(rec(2, 7, trace::RefType::Read, 0x100));
    raw.append(rec(5, 7, trace::RefType::Read, 0x200));

    trace::PrepareOptions opts;
    opts.domain = sim::SharingDomain::Processor;
    const trace::PreparedTrace prepared =
        trace::PreparedTrace::build(raw, opts);
    // Two CPUs sharing one pid: the Processor domain sees two units.
    EXPECT_EQ(prepared.numUnits(), 2u);
    EXPECT_EQ(prepared.unitData()[0], 0u);
    EXPECT_EQ(prepared.unitData()[1], 1u);
}

TEST(PreparedTraceTest, DropLockTestsFiltersBeforeNumbering)
{
    trace::MemoryTrace raw;
    // The only reference from pid 9 is a lock test; once filtered,
    // pid 4 must take unit 0 — the numbering runs over the filtered
    // stream, as the raw ReplaySource path does.
    raw.append(rec(0, 9, trace::RefType::Read, 0x100,
                   trace::FlagLockTest));
    raw.append(rec(0, 4, trace::RefType::Read, 0x200));
    raw.append(rec(0, 9, trace::RefType::Instr, 0x1000,
                   trace::FlagLockTest));

    trace::PrepareOptions opts;
    opts.dropLockTests = true;
    const trace::PreparedTrace prepared =
        trace::PreparedTrace::build(raw, opts);
    EXPECT_EQ(prepared.totalRefs(), 1u);
    EXPECT_EQ(prepared.instrRefs(), 0u);
    ASSERT_EQ(prepared.dataRefs(), 1u);
    EXPECT_EQ(prepared.numUnits(), 1u);
    EXPECT_EQ(prepared.unitData()[0], 0u);
    EXPECT_EQ(prepared.blockData()[0], 0x200u >> 4);
}

TEST(PreparedTraceTest, RejectsTracesExceedingColumnWidths)
{
    // 257 distinct processes overflow the 8-bit unit column.
    trace::MemoryTrace units;
    for (unsigned pid = 0; pid < 257; ++pid)
        units.append(rec(0, static_cast<std::uint16_t>(pid),
                         trace::RefType::Read, 0x100));
    EXPECT_THROW(trace::PreparedTrace::build(units),
                 std::invalid_argument);

    // A block index past 32 bits overflows the block column.
    trace::MemoryTrace blocks;
    blocks.append(rec(0, 0, trace::RefType::Read,
                      std::uint64_t{1} << 40));
    EXPECT_THROW(trace::PreparedTrace::build(blocks),
                 std::invalid_argument);
    // The same address is fine with a block size that shifts it back
    // under the limit... at 256-byte blocks 2^40 >> 8 = 2^32 is still
    // one past the last representable index, so it must still throw.
    trace::PrepareOptions opts;
    opts.blockBytes = 256;
    EXPECT_THROW(trace::PreparedTrace::build(blocks, opts),
                 std::invalid_argument);
}

TEST(PreparedTraceTest, TimedStreamsSplitPerCpu)
{
    trace::MemoryTrace raw;
    raw.append(rec(1, 0, trace::RefType::Instr, 0x1000));
    raw.append(rec(1, 0, trace::RefType::Read, 0x100));
    raw.append(rec(0, 1, trace::RefType::Write, 0x200));

    trace::PrepareOptions opts;
    opts.timedStreams = true;
    const trace::PreparedTrace prepared =
        trace::PreparedTrace::build(raw, opts);
    ASSERT_TRUE(prepared.hasTimedStreams());
    const auto &streams = prepared.cpuStreams();
    // Dense first-seen CPU order: cpu 1 -> stream 0, cpu 0 -> stream 1.
    ASSERT_EQ(streams.size(), 2u);
    // Unlike the data columns, timed streams keep instruction
    // fetches: the bus model charges CPU cycles per reference.
    ASSERT_EQ(streams[0].size(), 2u);
    EXPECT_EQ(trace::packedRefType(streams[0].typeFlags[0]),
              trace::RefType::Instr);
    EXPECT_EQ(trace::packedRefType(streams[0].typeFlags[1]),
              trace::RefType::Read);
    ASSERT_EQ(streams[1].size(), 1u);
    EXPECT_EQ(streams[1].block[0], 0x200u >> 4);
}

/**
 * The two-phase builder must produce byte-identical columns whatever
 * order (or thread) decodes the chunks — the planning scan froze
 * every write offset, so the merge is deterministic by construction.
 */
TEST(PreparedTraceBuilderTest, ChunkedDecodeMatchesSerialBuild)
{
    auto cfg = smallWorkload();
    cfg.totalRefs = 200'000; // > 3 chunks of 64K raw records.
    const trace::MemoryTrace raw = gen::generateTrace(cfg);

    trace::PrepareOptions opts;
    opts.timedStreams = true;
    const trace::PreparedTrace serial =
        trace::PreparedTrace::build(raw, opts);

    trace::PreparedTraceBuilder builder(raw, opts);
    ASSERT_GT(builder.numChunks(), 1u);
    std::vector<std::thread> workers;
    // Decode chunks from both ends concurrently.
    workers.emplace_back([&builder] {
        for (std::size_t c = 0; c < builder.numChunks(); c += 2)
            builder.decodeChunk(c);
    });
    workers.emplace_back([&builder] {
        for (std::size_t c = 1; c < builder.numChunks(); c += 2)
            builder.decodeChunk(c);
    });
    for (std::thread &worker : workers)
        worker.join();
    const trace::PreparedTrace chunked = builder.finish();

    ASSERT_EQ(chunked.dataRefs(), serial.dataRefs());
    EXPECT_EQ(chunked.instrRefs(), serial.instrRefs());
    EXPECT_EQ(chunked.numUnits(), serial.numUnits());
    EXPECT_EQ(chunked.numCpus(), serial.numCpus());
    for (std::size_t i = 0; i < serial.dataRefs(); ++i) {
        ASSERT_EQ(chunked.blockData()[i], serial.blockData()[i]) << i;
        ASSERT_EQ(chunked.unitData()[i], serial.unitData()[i]) << i;
        ASSERT_EQ(chunked.typeFlagsData()[i],
                  serial.typeFlagsData()[i])
            << i;
    }
    ASSERT_EQ(chunked.cpuStreams().size(), serial.cpuStreams().size());
    for (std::size_t c = 0; c < serial.cpuStreams().size(); ++c) {
        EXPECT_EQ(chunked.cpuStreams()[c].block,
                  serial.cpuStreams()[c].block);
        EXPECT_EQ(chunked.cpuStreams()[c].unit,
                  serial.cpuStreams()[c].unit);
        EXPECT_EQ(chunked.cpuStreams()[c].typeFlags,
                  serial.cpuStreams()[c].typeFlags);
    }
}

TEST(PreparedTraceBuilderTest, FinishGuardsMisuse)
{
    const trace::MemoryTrace raw = gen::generateTrace(smallWorkload());
    trace::PreparedTraceBuilder undecoded(raw);
    EXPECT_THROW(undecoded.finish(), std::logic_error);

    trace::PreparedTraceBuilder builder(raw);
    for (std::size_t c = 0; c < builder.numChunks(); ++c)
        builder.decodeChunk(c);
    builder.finish();
    EXPECT_THROW(builder.finish(), std::logic_error);
}

/** Simulator::run(prepared) equals the raw streaming run. */
TEST(PreparedTraceTest, SimulatorReplayMatchesRawRun)
{
    const auto cfg = smallWorkload();
    const trace::MemoryTrace raw = gen::generateTrace(cfg);

    const auto makeEngine = [&cfg] {
        coherence::InvalEngineConfig ecfg;
        ecfg.nUnits = cfg.space.nProcesses;
        return std::make_unique<coherence::InvalEngine>(ecfg);
    };
    sim::Simulator rawSim;
    coherence::CoherenceEngine &rawEngine =
        rawSim.addEngine(makeEngine());
    trace::MemoryTraceSource source(raw);
    const std::uint64_t rawRefs = rawSim.run(source);

    sim::Simulator prepSim;
    coherence::CoherenceEngine &prepEngine =
        prepSim.addEngine(makeEngine());
    const std::uint64_t prepRefs =
        prepSim.run(trace::PreparedTrace::build(raw));

    EXPECT_EQ(rawRefs, prepRefs);
    EXPECT_TRUE(rawEngine.results() == prepEngine.results());
}

// --- TraceRepository -------------------------------------------------

TEST(TraceRepositoryTest, ConcurrentSameConfigBuildsExactlyOnce)
{
    sim::TraceRepository repo(2);
    const auto cfg = smallWorkload();

    std::vector<std::shared_ptr<const trace::PreparedTrace>> results(
        8);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < results.size(); ++t)
        threads.emplace_back([&repo, &results, &cfg, t] {
            results[t] = repo.get(cfg);
        });
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_EQ(repo.buildCount(), 1u);
    EXPECT_EQ(repo.size(), 1u);
    for (const auto &result : results) {
        ASSERT_NE(result, nullptr);
        // One shared immutable object, not eight copies.
        EXPECT_EQ(result.get(), results[0].get());
    }
    EXPECT_EQ(results[0]->totalRefs(), cfg.totalRefs);

    // A later hit still does not rebuild; clear() drops the entry
    // without invalidating outstanding pointers.
    repo.get(cfg);
    EXPECT_EQ(repo.buildCount(), 1u);
    repo.clear();
    EXPECT_EQ(repo.size(), 0u);
    EXPECT_EQ(results[0]->totalRefs(), cfg.totalRefs);
    repo.get(cfg);
    EXPECT_EQ(repo.buildCount(), 2u);
}

TEST(TraceRepositoryTest, DistinctConfigsGetDistinctEntries)
{
    sim::TraceRepository repo(1);
    auto cfg = smallWorkload();
    const auto a = repo.get(cfg);
    cfg.seed ^= 1;
    const auto b = repo.get(cfg);
    EXPECT_EQ(repo.buildCount(), 2u);
    EXPECT_NE(a.get(), b.get());

    // Same workload, different decode parameters: also distinct.
    trace::PrepareOptions opts;
    opts.dropLockTests = true;
    repo.get(cfg, opts);
    EXPECT_EQ(repo.buildCount(), 3u);
}

TEST(TraceRepositoryTest, CacheKeyCoversEveryParameter)
{
    const auto base = smallWorkload();
    const trace::PrepareOptions opts;
    const std::string key = sim::TraceRepository::cacheKey(base, opts);

    auto seed = base;
    seed.seed ^= 1;
    EXPECT_NE(sim::TraceRepository::cacheKey(seed, opts), key);

    auto refs = base;
    refs.totalRefs += 1;
    EXPECT_NE(sim::TraceRepository::cacheKey(refs, opts), key);

    auto quantum = base;
    quantum.quantumRefs += 1;
    EXPECT_NE(sim::TraceRepository::cacheKey(quantum, opts), key);

    auto migration = base;
    migration.migrationRate += 0.125;
    EXPECT_NE(sim::TraceRepository::cacheKey(migration, opts), key);

    auto space = base;
    space.space.nProcesses += 1;
    EXPECT_NE(sim::TraceRepository::cacheKey(space, opts), key);

    auto behavior = base;
    behavior.behavior.pInstr += 0.0625;
    EXPECT_NE(sim::TraceRepository::cacheKey(behavior, opts), key);

    trace::PrepareOptions block;
    block.blockBytes = 64;
    EXPECT_NE(sim::TraceRepository::cacheKey(base, block), key);

    trace::PrepareOptions domain;
    domain.domain = sim::SharingDomain::Processor;
    EXPECT_NE(sim::TraceRepository::cacheKey(base, domain), key);

    trace::PrepareOptions timed;
    timed.timedStreams = true;
    EXPECT_NE(sim::TraceRepository::cacheKey(base, timed), key);

    // And the key is a pure function of its inputs.
    EXPECT_EQ(sim::TraceRepository::cacheKey(base, opts), key);
}

TEST(TraceRepositoryTest, BuildFailuresPropagateAndAreNotCached)
{
    sim::TraceRepository repo(1);
    // 300 processes overflow the prepared 8-bit unit column, so the
    // build itself throws.  A one-reference quantum churns through
    // enough of them for the planning scan to see more than 256.
    auto cfg = smallWorkload();
    cfg.totalRefs = 5'000;
    cfg.space.nProcesses = 300;
    cfg.quantumRefs = 1;
    EXPECT_THROW(repo.get(cfg), std::invalid_argument);
    EXPECT_EQ(repo.size(), 0u);
    // Not cached: a retry attempts a fresh build.
    EXPECT_THROW(repo.get(cfg), std::invalid_argument);
    EXPECT_EQ(repo.buildCount(), 2u);
}

} // namespace
