/**
 * @file
 * Tests for the timed bus subsystem.
 *
 * The load-bearing property: with one CPU the bus is free at every
 * request, so the timed simulator's total bus-busy cycles equal the
 * static cost model's total *exactly* — integer cycle for integer
 * cycle — for every scheme × workload × bus organisation.  On top of
 * that: the cycles-equal-static invariant holds for any CPU count
 * (per-reference charges sum to the aggregate), runs are
 * deterministic, timed sweeps are bit-identical across worker counts,
 * utilization grows with CPU count, and the arbitration disciplines
 * behave per their contracts (including fixed-priority starvation).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bus/bus_model.hh"
#include "coherence/berkeley_engine.hh"
#include "coherence/dragon_engine.hh"
#include "coherence/inval_engine.hh"
#include "coherence/limited_engine.hh"
#include "gen/workload.hh"
#include "gen/workloads.hh"
#include "sim/cost_model.hh"
#include "sim/simulator.hh"
#include "timing/arbiter.hh"
#include "timing/event_queue.hh"
#include "timing/sweep.hh"
#include "timing/timed_bus.hh"
#include "timing/transactions.hh"
#include "trace/prepared.hh"

namespace
{

using namespace dirsim;

const std::vector<sim::Scheme> allSchemes = {
    sim::Scheme::Dir1NB,    sim::Scheme::DirINB,
    sim::Scheme::Dir0B,     sim::Scheme::DirNNBSeq,
    sim::Scheme::DirIB,     sim::Scheme::WTI,
    sim::Scheme::Dragon,    sim::Scheme::Berkeley,
    sim::Scheme::YenFu,     sim::Scheme::BerkeleyOwn,
    sim::Scheme::MESI,
};

/**
 * The engine each scheme is costed from: the engineKindFor() mapping,
 * with BerkeleyOwn on the real ownership engine the way the Section 5
 * exhibit (bench_sec5_berkeley) pairs them.
 */
std::unique_ptr<coherence::CoherenceEngine>
engineFor(sim::Scheme scheme, unsigned units, unsigned nPointers)
{
    if (scheme == sim::Scheme::BerkeleyOwn)
        return std::make_unique<coherence::BerkeleyEngine>(units);
    switch (sim::engineKindFor(scheme)) {
      case sim::EngineKind::Limited:
        return std::make_unique<coherence::LimitedEngine>(
            units, scheme == sim::Scheme::Dir1NB ? 1 : nPointers);
      case sim::EngineKind::Dragon:
        return std::make_unique<coherence::DragonEngine>(units);
      case sim::EngineKind::Berkeley:
        return std::make_unique<coherence::BerkeleyEngine>(units);
      case sim::EngineKind::Inval:
      default: {
        coherence::InvalEngineConfig cfg;
        cfg.nUnits = units;
        return std::make_unique<coherence::InvalEngine>(cfg);
      }
    }
}

/** Cost options exercising pointers, broadcast and q-overhead. */
sim::CostOptions
testOpts()
{
    sim::CostOptions opts;
    opts.nPointers = 2;
    opts.broadcastCost = 4.0;
    opts.overheadQ = 1.0;
    return opts;
}

/**
 * Small standard workloads squeezed onto one CPU.  A short quantum
 * keeps all four processes interleaving (and therefore sharing) even
 * though a single processor issues every reference.
 */
std::vector<gen::WorkloadConfig>
oneCpuWorkloads()
{
    auto cfgs = gen::standardWorkloads();
    for (auto &cfg : cfgs) {
        cfg.totalRefs = 30'000;
        cfg.space.nCpus = 1;
        cfg.quantumRefs = 500;
    }
    return cfgs;
}

timing::TimedBusConfig
timedConfig(sim::Scheme scheme, const timing::TimedBusModel &bus,
            timing::Discipline d = timing::Discipline::FCFS)
{
    timing::TimedBusConfig cfg;
    cfg.scheme = scheme;
    cfg.costOpts = testOpts();
    cfg.bus = bus;
    cfg.discipline = d;
    return cfg;
}

timing::TimedRun
runTimed(const timing::TimedBusConfig &cfg,
         const gen::WorkloadConfig &workload)
{
    timing::TimedBusSim sim(
        cfg, engineFor(cfg.scheme, workload.space.nProcesses,
                       cfg.costOpts.nPointers));
    gen::WorkloadSource source(workload);
    return sim.run(source);
}

// --- Event queue -----------------------------------------------------

TEST(EventQueueTest, OrdersByTimeKindCpuThenSchedule)
{
    timing::EventQueue eq;
    eq.push(5, timing::EventKind::CpuReady, 0);
    eq.push(3, timing::EventKind::CpuReady, 1);
    eq.push(3, timing::EventKind::CpuReady, 0);
    eq.push(3, timing::EventKind::BusComplete, 2);
    ASSERT_EQ(eq.size(), 4u);
    EXPECT_EQ(eq.nextTime(), 3u);

    // Completions precede CPU wake-ups at the same cycle; CpuReady
    // ties break by cpu index, not push order.
    timing::Event ev = eq.pop();
    EXPECT_EQ(ev.kind, timing::EventKind::BusComplete);
    EXPECT_EQ(ev.cpu, 2u);
    ev = eq.pop();
    EXPECT_EQ(ev.cpu, 0u);
    ev = eq.pop();
    EXPECT_EQ(ev.cpu, 1u);
    ev = eq.pop();
    EXPECT_EQ(ev.time, 5u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueueTest, IdenticalKeysPopInScheduleOrder)
{
    timing::EventQueue eq;
    eq.push(7, timing::EventKind::CpuReady, 3);
    eq.push(7, timing::EventKind::CpuReady, 3);
    const timing::Event first = eq.pop();
    const timing::Event second = eq.pop();
    EXPECT_LT(first.seq, second.seq);
}

// --- Arbiters --------------------------------------------------------

timing::BusRequest
req(unsigned cpu, std::uint64_t arrival, std::uint64_t seq)
{
    timing::BusRequest r;
    r.cpu = cpu;
    r.arrival = arrival;
    r.seq = seq;
    r.busCycles = 1;
    return r;
}

TEST(ArbiterTest, FcfsGrantsOldestThenIssueOrder)
{
    const auto arb =
        timing::BusArbiter::make(timing::Discipline::FCFS, 4);
    EXPECT_EQ(arb->discipline(), timing::Discipline::FCFS);
    const std::vector<timing::BusRequest> waiting = {
        req(2, 5, 10), req(0, 3, 11), req(1, 3, 9)};
    // Earliest arrival is cycle 3; the tie breaks on issue order.
    EXPECT_EQ(arb->pick(waiting), 2u);
}

TEST(ArbiterTest, RoundRobinRotatesAfterLastGrantee)
{
    const auto arb =
        timing::BusArbiter::make(timing::Discipline::RoundRobin, 4);
    // Initial state: priority starts at cpu 0.
    std::vector<timing::BusRequest> waiting = {req(2, 0, 0),
                                               req(0, 0, 1)};
    EXPECT_EQ(arb->pick(waiting), 1u); // cpu 0
    arb->granted(0);
    // Priority now starts at cpu 1, so cpu 2 beats cpu 0.
    EXPECT_EQ(arb->pick(waiting), 0u); // cpu 2
    arb->granted(2);
    // Priority starts at cpu 3 and wraps: cpu 0 beats cpu 2.
    EXPECT_EQ(arb->pick(waiting), 1u);
    // reset() restores the initial rotation.
    arb->reset();
    EXPECT_EQ(arb->pick(waiting), 1u); // cpu 0 again
}

TEST(ArbiterTest, FixedPriorityGrantsLowestCpu)
{
    const auto arb = timing::BusArbiter::make(
        timing::Discipline::FixedPriority, 4);
    const std::vector<timing::BusRequest> waiting = {
        req(3, 0, 0), req(1, 7, 1), req(2, 2, 2)};
    // Arrival times are ignored entirely.
    EXPECT_EQ(arb->pick(waiting), 1u);
}

TEST(ArbiterTest, NamesRoundTripAndGarbageThrows)
{
    for (const auto d :
         {timing::Discipline::FCFS, timing::Discipline::RoundRobin,
          timing::Discipline::FixedPriority})
        EXPECT_EQ(timing::parseDiscipline(timing::disciplineName(d)),
                  d);
    EXPECT_THROW(timing::parseDiscipline("lifo"),
                 std::invalid_argument);
    EXPECT_THROW(timing::BusArbiter::make(timing::Discipline::FCFS, 0),
                 std::invalid_argument);
}

// --- Transaction model validation ------------------------------------

TEST(TransactionModelTest, RejectsNonIntegerCycleOptions)
{
    const auto bus = bus::standardBuses().pipelined;
    sim::CostOptions opts;
    opts.broadcastCost = 2.5;
    EXPECT_THROW(
        timing::TransactionModel(sim::Scheme::DirIB, bus, opts),
        std::invalid_argument);
    opts.broadcastCost = 4.0;
    opts.overheadQ = 0.1;
    EXPECT_THROW(
        timing::TransactionModel(sim::Scheme::Dir0B, bus, opts),
        std::invalid_argument);
    opts.overheadQ = -1.0;
    EXPECT_THROW(
        timing::TransactionModel(sim::Scheme::Dir0B, bus, opts),
        std::invalid_argument);
}

// --- Zero-contention equivalence (the anchor) ------------------------

/**
 * One CPU, every scheme, every bus organisation, all three standard
 * workloads: the timed run must degenerate to the static cost model —
 * identical engine statistics, exactly equal integer bus cycles, and
 * a per-reference cost matching computeCost().total() to fp noise.
 */
TEST(ZeroContentionTest, TimedRunEqualsStaticCostModel)
{
    const auto opts = testOpts();
    const std::vector<timing::TimedBusModel> buses = {
        timing::timedPipelinedBus(), timing::timedNonPipelinedBus()};

    for (const auto &workload : oneCpuWorkloads()) {
        for (const sim::Scheme scheme : allSchemes) {
            // Untimed reference run of the same stream.
            sim::Simulator untimed;
            auto &engine = untimed.addEngine(engineFor(
                scheme, workload.space.nProcesses, opts.nPointers));
            gen::WorkloadSource source(workload);
            untimed.run(source);

            for (const auto &bus : buses) {
                const timing::TimedRun run =
                    runTimed(timedConfig(scheme, bus), workload);
                const std::string label = run.scheme + " / " +
                                          run.bus + " / " +
                                          workload.name;

                ASSERT_EQ(run.nCpus, 1u) << label;
                EXPECT_EQ(run.refs, workload.totalRefs) << label;

                // Same interleaving -> identical engine statistics.
                EXPECT_TRUE(run.engine == engine.results()) << label;

                // The integer-exact equivalence.
                EXPECT_EQ(run.busBusyCycles,
                          timing::staticBusCycles(scheme, run.engine,
                                                  bus.costs, opts))
                    << label;

                // And the continuous model agrees per reference.
                const double static_total =
                    sim::computeCost(scheme, run.engine, bus.costs,
                                     opts)
                        .total();
                EXPECT_NEAR(run.busCyclesPerRef(), static_total, 1e-9)
                    << label;

                // A lone CPU never queues.
                EXPECT_EQ(run.queueDelay.maxValue(), 0u) << label;
                EXPECT_EQ(run.meanQueueDelay(), 0.0) << label;
                EXPECT_EQ(run.p95QueueDelay(), 0.0) << label;
                EXPECT_EQ(run.queueDelay.totalSamples(),
                          run.transactions)
                    << label;
            }
        }
    }
}

// --- Contended runs --------------------------------------------------

gen::WorkloadConfig
fourCpuWorkload()
{
    auto cfg = gen::standardWorkloads()[0];
    cfg.totalRefs = 30'000;
    return cfg;
}

/**
 * Bus-busy cycles equal the static aggregate of *this run's* engine
 * statistics at any CPU count — per-reference charges sum to the
 * whole-run total no matter how the streams interleave.
 */
TEST(ContentionTest, BusCyclesMatchStaticAggregateAtAnyCpuCount)
{
    const auto workload = fourCpuWorkload();
    const auto opts = testOpts();
    const std::vector<timing::TimedBusModel> buses = {
        timing::timedPipelinedBus(), timing::timedNonPipelinedBus()};

    for (const sim::Scheme scheme : allSchemes) {
        for (const auto &bus : buses) {
            const timing::TimedRun run =
                runTimed(timedConfig(scheme, bus), workload);
            const std::string label = run.scheme + " / " + run.bus;

            EXPECT_EQ(run.nCpus, 4u) << label;
            EXPECT_EQ(run.busBusyCycles,
                      timing::staticBusCycles(scheme, run.engine,
                                              bus.costs, opts))
                << label;

            // Structural sanity.
            EXPECT_GE(run.makespan, run.busBusyCycles) << label;
            EXPECT_LE(run.busUtilization(), 1.0 + 1e-12) << label;
            EXPECT_EQ(run.queueDelay.totalSamples(), run.transactions)
                << label;
            std::uint64_t refs = 0, txns = 0;
            for (const auto &cpu : run.cpus) {
                refs += cpu.refs;
                txns += cpu.transactions;
            }
            EXPECT_EQ(refs, run.refs) << label;
            EXPECT_EQ(txns, run.transactions) << label;
        }
    }
}

TEST(ContentionTest, RunsAreDeterministic)
{
    const auto workload = fourCpuWorkload();
    const auto cfg = timedConfig(sim::Scheme::Dir0B,
                                 timing::timedPipelinedBus(),
                                 timing::Discipline::RoundRobin);
    const timing::TimedRun a = runTimed(cfg, workload);
    const timing::TimedRun b = runTimed(cfg, workload);
    EXPECT_TRUE(a.identicalTo(b));
}

TEST(ContentionTest, UtilizationGrowsWithCpuCount)
{
    std::vector<double> utilization;
    for (const unsigned n : {2u, 4u, 8u}) {
        const gen::WorkloadConfig workload =
            gen::scaledConfig(n, 10'000 * n);
        const timing::TimedRun run = runTimed(
            timedConfig(sim::Scheme::Dir0B,
                        timing::timedPipelinedBus()),
            workload);
        EXPECT_EQ(run.nCpus, n);
        utilization.push_back(run.busUtilization());
    }
    EXPECT_GT(utilization[0], 0.0);
    EXPECT_GT(utilization[1], utilization[0]);
    EXPECT_GE(utilization[2], utilization[1]);
}

/**
 * Under load, fixed priority starves the high-index CPUs while FCFS
 * spreads the delay; the per-CPU stall distributions must differ
 * measurably.  WTI at eight CPUs keeps the bus saturated.
 */
TEST(ContentionTest, DisciplinesShapeStallDistributions)
{
    const gen::WorkloadConfig workload = gen::scaledConfig(8, 60'000);

    const timing::TimedRun fcfs = runTimed(
        timedConfig(sim::Scheme::WTI, timing::timedPipelinedBus(),
                    timing::Discipline::FCFS),
        workload);
    const timing::TimedRun fixed = runTimed(
        timedConfig(sim::Scheme::WTI, timing::timedPipelinedBus(),
                    timing::Discipline::FixedPriority),
        workload);
    const timing::TimedRun rr = runTimed(
        timedConfig(sim::Scheme::WTI, timing::timedPipelinedBus(),
                    timing::Discipline::RoundRobin),
        workload);

    ASSERT_EQ(fcfs.nCpus, 8u);
    ASSERT_EQ(fixed.nCpus, 8u);

    // Fixed priority: the lowest-index CPU stalls least, the highest
    // most — the starvation the arbiter contract promises.
    EXPECT_GT(fixed.cpus.back().stallCycles,
              fixed.cpus.front().stallCycles);
    EXPECT_GT(fixed.cpus.back().stallFraction(),
              fcfs.cpus.back().stallFraction());

    // The disciplines are not relabelings of each other: per-CPU
    // stall patterns diverge.
    EXPECT_FALSE(fcfs.cpus == fixed.cpus);
    EXPECT_FALSE(fcfs.cpus == rr.cpus);
}

// --- Timed sweeps ----------------------------------------------------

std::vector<timing::TimedSweepPoint>
sweepPoints()
{
    std::vector<timing::TimedSweepPoint> points;
    for (const sim::Scheme scheme :
         {sim::Scheme::Dir0B, sim::Scheme::DirINB,
          sim::Scheme::Dragon}) {
        for (const auto d : {timing::Discipline::FCFS,
                             timing::Discipline::RoundRobin}) {
            timing::TimedSweepPoint point;
            point.config = timedConfig(
                scheme, timing::timedPipelinedBus(), d);
            point.name = sim::schemeName(scheme, 2) + "/" +
                         timing::disciplineName(d);
            point.engine = [scheme] {
                return engineFor(scheme, 4, 2);
            };
            point.source = [] {
                return std::make_unique<gen::WorkloadSource>(
                    fourCpuWorkload());
            };
            points.push_back(std::move(point));
        }
    }
    return points;
}

TEST(TimedSweepTest, ParallelSweepBitIdenticalToSerial)
{
    const auto serial = timing::runTimedSweep(sweepPoints(), 1);
    const auto parallel = timing::runTimedSweep(sweepPoints(), 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        // Submission-ordered, labelled, and bit-identical.
        EXPECT_EQ(serial[i].name, parallel[i].name);
        EXPECT_TRUE(serial[i].identicalTo(parallel[i]))
            << serial[i].name;
    }
}

TEST(TimedSweepTest, PropagatesJobFailure)
{
    auto points = sweepPoints();
    // Too few engine units for the workload's four processes.
    points[0].engine = [] {
        return engineFor(sim::Scheme::Dir0B, 2, 2);
    };
    EXPECT_THROW(timing::runTimedSweep(points, 2),
                 std::runtime_error);
}

TEST(TimedSweepTest, RejectsPointWithoutFactories)
{
    std::vector<timing::TimedSweepPoint> points(1);
    EXPECT_THROW(timing::runTimedSweep(points, 1),
                 std::invalid_argument);
}

// --- Decode-once prepared replay -------------------------------------

/** @p workload prepared with timed per-CPU streams for @p cfg. */
std::shared_ptr<const trace::PreparedTrace>
prepareTimed(const gen::WorkloadConfig &workload,
             const timing::TimedBusConfig &cfg)
{
    const trace::MemoryTrace trace = gen::generateTrace(workload);
    trace::PrepareOptions prep;
    prep.blockBytes = cfg.sim.blockBytes;
    prep.domain = cfg.sim.domain;
    prep.timedStreams = true;
    return std::make_shared<const trace::PreparedTrace>(
        trace::PreparedTrace::build(trace, prep));
}

/**
 * Replaying the prepared per-CPU streams must reproduce the raw
 * demux-per-run path field for field: same makespan, same bus cycles,
 * same per-CPU stats, same engine results.
 */
TEST(ContentionTest, PreparedReplayIdenticalToRaw)
{
    const auto workload = fourCpuWorkload();
    for (const sim::Scheme scheme :
         {sim::Scheme::Dir0B, sim::Scheme::Dragon,
          sim::Scheme::BerkeleyOwn}) {
        const auto cfg =
            timedConfig(scheme, timing::timedPipelinedBus());
        const timing::TimedRun raw = runTimed(cfg, workload);

        timing::TimedBusSim sim(
            cfg, engineFor(scheme, workload.space.nProcesses,
                           cfg.costOpts.nPointers));
        const timing::TimedRun prepared =
            sim.run(*prepareTimed(workload, cfg));
        EXPECT_TRUE(raw.identicalTo(prepared))
            << sim::schemeName(scheme, cfg.costOpts.nPointers);
    }
}

/** Prepared sweep points equal their source-factory twins. */
TEST(TimedSweepTest, PreparedPointsBitIdenticalToSourcePoints)
{
    const auto fromSource = timing::runTimedSweep(sweepPoints(), 1);

    auto points = sweepPoints();
    const auto prepared =
        prepareTimed(fourCpuWorkload(), points[0].config);
    for (auto &point : points) {
        point.source = nullptr;
        point.prepared = prepared;
    }
    const auto fromPrepared = timing::runTimedSweep(points, 2);

    ASSERT_EQ(fromSource.size(), fromPrepared.size());
    for (std::size_t i = 0; i < fromSource.size(); ++i)
        EXPECT_TRUE(fromSource[i].identicalTo(fromPrepared[i]))
            << fromSource[i].name;
}

TEST(ContentionTest, PreparedRunRejectsMismatchedDecode)
{
    const auto workload = fourCpuWorkload();
    const auto cfg =
        timedConfig(sim::Scheme::Dir0B, timing::timedPipelinedBus());

    // Decoded without timed streams: no per-CPU columns to replay.
    const trace::MemoryTrace trace = gen::generateTrace(workload);
    const auto untimed = trace::PreparedTrace::build(trace);
    timing::TimedBusSim sim(
        cfg, engineFor(sim::Scheme::Dir0B,
                       workload.space.nProcesses, 2));
    EXPECT_THROW(sim.run(untimed), std::invalid_argument);

    // Decoded for a different block size than the timed config.
    auto wrongCfg = cfg;
    wrongCfg.sim.blockBytes = 64;
    const auto wrongBlock = prepareTimed(workload, wrongCfg);
    EXPECT_THROW(sim.run(*wrongBlock), std::invalid_argument);
}

} // namespace
