/**
 * @file
 * Tests for the finite sparse directory cache.
 *
 * Three layers: the DirectoryCache container itself (geometry
 * validation, true-LRU replacement, set-index mixing, the unbounded
 * mode), its integration into the inval/limited engines (an
 * unevictable cache is invisible; a finite one evicts coherently and
 * keeps the conservation counters consistent), and the cost plumbing
 * (timed bus-busy cycles still equal the static aggregate when
 * eviction traffic is present, serial == parallel sweeps).
 */

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "coherence/inval_engine.hh"
#include "coherence/limited_engine.hh"
#include "directory/dir_cache.hh"
#include "gen/workload.hh"
#include "gen/workloads.hh"
#include "sim/cost_model.hh"
#include "sim/simulator.hh"
#include "sim/sweep.hh"
#include "sim/trace_repo.hh"
#include "timing/timed_bus.hh"
#include "timing/transactions.hh"

namespace
{

using namespace dirsim;
using directory::DirCacheConfig;
using directory::DirCacheTouch;
using directory::DirectoryCache;

DirCacheConfig
finiteConfig(std::uint64_t entries, unsigned assoc, bool mix = false)
{
    DirCacheConfig cfg;
    cfg.enabled = true;
    cfg.entries = entries;
    cfg.associativity = assoc;
    cfg.mixSetIndex = mix;
    return cfg;
}

// --- The container ---------------------------------------------------

TEST(DirCache, GeometryValidation)
{
    // Entries not a multiple of associativity.
    EXPECT_THROW(DirectoryCache(finiteConfig(10, 4)),
                 std::invalid_argument);
    // entries/associativity not a power of two.
    EXPECT_THROW(DirectoryCache(finiteConfig(12, 4)),
                 std::invalid_argument);
    // Zero ways.
    EXPECT_THROW(DirectoryCache(finiteConfig(8, 0)),
                 std::invalid_argument);
    // Valid shapes construct.
    EXPECT_EQ(DirectoryCache(finiteConfig(8, 4)).numSets(), 2u);
    EXPECT_EQ(DirectoryCache(finiteConfig(4, 4)).numSets(), 1u);
    EXPECT_EQ(DirectoryCache(finiteConfig(64, 2)).numSets(), 32u);
}

TEST(DirCache, TrueLruWithinOneSet)
{
    // 4 entries, 4 ways: one set, fully associative, fixed index.
    DirectoryCache cache(finiteConfig(4, 4));

    for (mem::BlockId b = 0; b < 4; ++b) {
        const DirCacheTouch t = cache.touch(b);
        EXPECT_FALSE(t.hit);
        EXPECT_FALSE(t.evicted);
    }
    EXPECT_EQ(cache.size(), 4u);
    EXPECT_EQ(cache.misses(), 4u);

    // Refresh block 0: block 1 becomes LRU.
    EXPECT_TRUE(cache.touch(0).hit);
    DirCacheTouch t = cache.touch(4);
    EXPECT_FALSE(t.hit);
    ASSERT_TRUE(t.evicted);
    EXPECT_EQ(t.victim, 1u);
    EXPECT_FALSE(cache.contains(1));
    EXPECT_TRUE(cache.contains(0));

    // Next victim is block 2, the new LRU.
    t = cache.touch(5);
    ASSERT_TRUE(t.evicted);
    EXPECT_EQ(t.victim, 2u);

    EXPECT_EQ(cache.evictions(), 2u);
    EXPECT_EQ(cache.size(), 4u); // replacement keeps occupancy
}

TEST(DirCache, SetReplacementsSumToEvictions)
{
    DirectoryCache cache(finiteConfig(8, 2)); // 4 sets x 2 ways
    for (mem::BlockId b = 0; b < 200; ++b)
        cache.touch(b);
    std::uint64_t total = 0;
    ASSERT_EQ(cache.setReplacements().size(), 4u);
    for (const std::uint64_t n : cache.setReplacements())
        total += n;
    EXPECT_EQ(total, cache.evictions());
    EXPECT_GT(cache.evictions(), 0u);
    EXPECT_EQ(cache.hits() + cache.misses(), 200u);
}

TEST(DirCache, MixedIndexSpreadsStridedBlocks)
{
    // 64 sets x 4 ways = 256 entries.  Blocks at stride 64 alias onto
    // one set under the fixed low-bits index (capacity 4 before
    // thrashing); mix64 spreads them so the 128-block footprint fits.
    const unsigned footprint = 128;
    DirectoryCache plain(finiteConfig(256, 4, false));
    DirectoryCache mixed(finiteConfig(256, 4, true));
    for (unsigned i = 0; i < footprint; ++i) {
        plain.touch(static_cast<mem::BlockId>(i) * 64);
        mixed.touch(static_cast<mem::BlockId>(i) * 64);
    }
    EXPECT_EQ(plain.evictions(), footprint - 4); // collapsed
    // mix64 is deterministic; the strided footprint lands across sets
    // and most of it stays resident.
    EXPECT_LT(mixed.evictions(), 16u);
    EXPECT_GT(mixed.size(), 100u);
}

TEST(DirCache, UnboundedNeverEvicts)
{
    DirCacheConfig cfg;
    cfg.enabled = true;
    cfg.entries = 0;
    DirectoryCache cache(cfg);
    EXPECT_TRUE(cache.unbounded());
    EXPECT_EQ(cache.numSets(), 0u);

    for (mem::BlockId b = 0; b < 10'000; ++b)
        EXPECT_FALSE(cache.touch(b).evicted);
    EXPECT_EQ(cache.size(), 10'000u);
    EXPECT_EQ(cache.misses(), 10'000u);
    EXPECT_TRUE(cache.touch(42).hit);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_TRUE(cache.setReplacements().empty());
}

TEST(DirCache, ClearResetsStateAndCounters)
{
    DirectoryCache cache(finiteConfig(4, 2));
    for (mem::BlockId b = 0; b < 50; ++b)
        cache.touch(b);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_EQ(cache.evictions(), 0u);
    for (const std::uint64_t n : cache.setReplacements())
        EXPECT_EQ(n, 0u);
    EXPECT_FALSE(cache.contains(0));
    EXPECT_FALSE(cache.touch(0).hit);
}

// --- Engine integration ----------------------------------------------

gen::WorkloadConfig
smallWorkload()
{
    auto cfg = gen::standardWorkloads()[0]; // pops
    cfg.totalRefs = 40'000;
    return cfg;
}

std::unique_ptr<coherence::CoherenceEngine>
invalWith(unsigned units, const DirCacheConfig &dc)
{
    coherence::InvalEngineConfig cfg;
    cfg.nUnits = units;
    cfg.dirCache = dc;
    return std::make_unique<coherence::InvalEngine>(cfg);
}

/**
 * A fully-associative cache at least as large as the touched block
 * footprint can never evict, so the engine must produce results
 * bit-identical (operator==) to the cache-less engine — for both the
 * inval and limited engines.
 */
TEST(DirCacheEngine, LargeEnoughCacheIsInvisible)
{
    const auto workload = smallWorkload();
    const unsigned units = workload.space.nProcesses;
    // 4096 entries, 1 set: fully associative, > any footprint here.
    const DirCacheConfig roomy = finiteConfig(4096, 4096);

    sim::Simulator simulator;
    auto &plainInval = simulator.addEngine(invalWith(units, {}));
    auto &cachedInval = simulator.addEngine(invalWith(units, roomy));
    auto &plainLim = simulator.addEngine(
        std::make_unique<coherence::LimitedEngine>(units, 2));
    auto &cachedLim = simulator.addEngine(
        std::make_unique<coherence::LimitedEngine>(units, 2, roomy));
    gen::WorkloadSource source(workload);
    simulator.run(source);

    // Identical up to the cache's own hit/miss bookkeeping (which
    // the cache-less engines leave at zero).
    using ResultPair = std::pair<const coherence::EngineResults &,
                                 const coherence::EngineResults &>;
    for (const auto &[cachedR, plainR] :
         {ResultPair(cachedInval.results(), plainInval.results()),
          ResultPair(cachedLim.results(), plainLim.results())}) {
        coherence::EngineResults scrubbed = cachedR;
        EXPECT_EQ(scrubbed.dirCacheEvictions, 0u) << scrubbed.name;
        EXPECT_EQ(scrubbed.dirCacheEvictionInvals, 0u)
            << scrubbed.name;
        EXPECT_EQ(scrubbed.dirCacheEvictionWriteBacks, 0u)
            << scrubbed.name;
        EXPECT_GT(scrubbed.dirCacheMisses, 0u) << scrubbed.name;
        scrubbed.dirCacheHits = 0;
        scrubbed.dirCacheMisses = 0;
        EXPECT_TRUE(scrubbed == plainR) << scrubbed.name;
    }

    const auto *cache =
        static_cast<const coherence::InvalEngine &>(cachedInval)
            .dirCache();
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(cache->evictions(), 0u);
    EXPECT_GT(cache->misses(), 0u);
    EXPECT_LE(cache->size(), 4096u);
}

/**
 * A small cache must evict, and its counters must be mutually
 * consistent: results mirror the cache's own statistics, per-set
 * replacements sum to evictions, and the eviction-invalidation count
 * is bounded by evictions × sharers-per-entry.
 */
TEST(DirCacheEngine, SmallCacheEvictsCoherently)
{
    const auto workload = smallWorkload();
    const unsigned units = workload.space.nProcesses;
    const DirCacheConfig tiny = finiteConfig(64, 4, true);

    sim::Simulator simulator;
    auto &inval = simulator.addEngine(invalWith(units, tiny));
    auto &limited = simulator.addEngine(
        std::make_unique<coherence::LimitedEngine>(units, 2, tiny));
    gen::WorkloadSource source(workload);
    simulator.run(source);

    for (const coherence::CoherenceEngine *engine :
         {static_cast<const coherence::CoherenceEngine *>(&inval),
          static_cast<const coherence::CoherenceEngine *>(&limited)}) {
        const coherence::EngineResults &r = engine->results();
        EXPECT_GT(r.dirCacheEvictions, 0u) << r.name;
        EXPECT_GT(r.dirCacheMisses, 0u) << r.name;
        // An eviction invalidates at most every unit and at most the
        // limited engine's pointer bound per entry.
        EXPECT_LE(r.dirCacheEvictionInvals, r.dirCacheEvictions * units)
            << r.name;
        EXPECT_LE(r.dirCacheEvictionWriteBacks, r.dirCacheEvictions)
            << r.name;
    }

    const auto *cache =
        static_cast<const coherence::InvalEngine &>(inval).dirCache();
    ASSERT_NE(cache, nullptr);
    const coherence::EngineResults &r = inval.results();
    EXPECT_EQ(cache->hits(), r.dirCacheHits);
    EXPECT_EQ(cache->misses(), r.dirCacheMisses);
    EXPECT_EQ(cache->evictions(), r.dirCacheEvictions);
    std::uint64_t perSet = 0;
    for (const std::uint64_t n : cache->setReplacements())
        perSet += n;
    EXPECT_EQ(perSet, cache->evictions());
    // Finite residency respected.
    EXPECT_LE(cache->size(), 64u);
}

/** reset() must clear dir-cache state so reruns are bit-identical. */
TEST(DirCacheEngine, ResetMakesRunsRepeatable)
{
    const auto workload = smallWorkload();
    const DirCacheConfig tiny = finiteConfig(64, 4, true);

    sim::Simulator simulator;
    auto &engine =
        simulator.addEngine(invalWith(workload.space.nProcesses, tiny));
    gen::WorkloadSource first(workload);
    simulator.run(first);
    const coherence::EngineResults once = engine.results();
    ASSERT_GT(once.dirCacheEvictions, 0u);

    engine.reset();
    gen::WorkloadSource second(workload);
    simulator.run(second);
    EXPECT_TRUE(engine.results() == once);
}

/**
 * The raw and prepared replay paths must agree with a finite
 * directory cache in the loop (the touch sits on the shared
 * handleRead/handleWrite path, but this pins the batch dispatch too).
 */
TEST(DirCacheEngine, PreparedReplayMatchesRaw)
{
    const auto workload = smallWorkload();
    const unsigned units = workload.space.nProcesses;
    const DirCacheConfig tiny = finiteConfig(64, 4, true);

    sim::Simulator raw;
    auto &rawEngine = raw.addEngine(invalWith(units, tiny));
    gen::WorkloadSource source(workload);
    raw.run(source);

    const std::shared_ptr<const trace::PreparedTrace> prepared =
        sim::TraceRepository::global().get(workload);
    sim::Simulator replay;
    auto &preparedEngine = replay.addEngine(invalWith(units, tiny));
    replay.run(*prepared);

    EXPECT_TRUE(preparedEngine.results() == rawEngine.results());
    EXPECT_GT(preparedEngine.results().dirCacheEvictions, 0u);
}

// --- Cost and timing plumbing ----------------------------------------

/**
 * Eviction traffic rides the invalidate/write-back terms: enabling a
 * small cache must strictly increase the static per-reference cost of
 * a directory scheme, and the timed simulator's bus-busy cycles must
 * still equal the static integer aggregate with the new terms in
 * play — the three cost sites stay in lock-step.
 */
TEST(DirCacheCost, TimedCyclesMatchStaticWithEvictions)
{
    auto workload = smallWorkload();
    workload.totalRefs = 30'000;
    const unsigned units = workload.space.nProcesses;
    const DirCacheConfig tiny = finiteConfig(64, 4, true);
    const sim::Scheme scheme = sim::Scheme::DirNNBSeq;
    const sim::CostOptions opts;

    // Static cost with and without the cache.
    sim::Simulator simulator;
    auto &plain = simulator.addEngine(invalWith(units, {}));
    auto &cached = simulator.addEngine(invalWith(units, tiny));
    gen::WorkloadSource source(workload);
    simulator.run(source);
    ASSERT_GT(cached.results().dirCacheEvictionInvals, 0u);

    const bus::BusCosts costs = bus::pipelinedBus();
    EXPECT_GT(
        sim::computeCost(scheme, cached.results(), costs, opts).total(),
        sim::computeCost(scheme, plain.results(), costs, opts).total());

    // Timed == static, integer-exactly, with eviction traffic.
    for (const auto &bus : {timing::timedPipelinedBus(),
                            timing::timedNonPipelinedBus()}) {
        timing::TimedBusConfig cfg;
        cfg.scheme = scheme;
        cfg.costOpts = opts;
        cfg.bus = bus;
        timing::TimedBusSim timed(cfg, invalWith(units, tiny));
        gen::WorkloadSource stream(workload);
        const timing::TimedRun run = timed.run(stream);

        // The timed interleaving differs from the untimed trace
        // order, so only the aggregate property is comparable: the
        // bus-busy cycles of *this run's* statistics must equal the
        // static integer model with the eviction terms included.
        ASSERT_GT(run.engine.dirCacheEvictionInvals, 0u);
        EXPECT_EQ(run.busBusyCycles,
                  timing::staticBusCycles(scheme, run.engine,
                                          bus.costs, opts));
    }
}

/** Parallel sweeps with finite dir caches stay bit-identical to
 *  serial runs (and give TSan real shared-state to chew on). */
TEST(DirCacheSweep, ParallelMatchesSerial)
{
    const DirCacheConfig tiny = finiteConfig(64, 4, true);
    std::vector<gen::WorkloadConfig> workloads =
        gen::standardWorkloads();
    for (auto &cfg : workloads)
        cfg.totalRefs = 20'000;

    // Serial reference results.
    std::vector<coherence::EngineResults> serial;
    for (const auto &cfg : workloads) {
        sim::Simulator simulator;
        auto &engine =
            simulator.addEngine(invalWith(cfg.space.nProcesses, tiny));
        gen::WorkloadSource source(cfg);
        simulator.run(source);
        serial.push_back(engine.results());
    }

    sim::SweepRunner runner(4);
    for (const auto &cfg : workloads) {
        sim::SweepPoint point;
        point.name = cfg.name;
        point.engines = [units = cfg.space.nProcesses, &tiny] {
            std::vector<std::unique_ptr<coherence::CoherenceEngine>>
                engines;
            engines.push_back(invalWith(units, tiny));
            return engines;
        };
        point.source = [cfg] {
            return std::make_unique<gen::WorkloadSource>(cfg);
        };
        runner.add(std::move(point));
    }
    const std::vector<sim::SweepPointResult> results = runner.run();

    ASSERT_EQ(results.size(), workloads.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        ASSERT_EQ(results[i].engines.size(), 1u);
        EXPECT_TRUE(results[i].engines[0] == serial[i])
            << results[i].name;
        EXPECT_GT(results[i].engines[0].dirCacheEvictions, 0u);
    }
}

} // namespace
