/**
 * @file
 * Tests for the directory-entry organisations and the storage
 * calculator (Sections 2 and 6 of the paper).
 */

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "directory/coarse_vector.hh"
#include "directory/full_map.hh"
#include "directory/limited_pointer.hh"
#include "directory/storage.hh"
#include "directory/two_bit.hh"
#include "gen/rng.hh"

namespace
{

using namespace dirsim::directory;

TEST(FullMap, TracksSharersExactly)
{
    FullMapEntry entry(4);
    entry.addSharer(0);
    entry.addSharer(2);
    EXPECT_EQ(entry.presence(), 0b0101u);
    EXPECT_FALSE(entry.dirty());

    const InvalTargets targets = entry.invalTargets(2, true);
    EXPECT_FALSE(targets.broadcast);
    EXPECT_EQ(targets.mask, 0b0001u);
    EXPECT_EQ(targets.count(), 1u);
}

TEST(FullMap, MakeOwnerResetsToWriter)
{
    FullMapEntry entry(4);
    entry.addSharer(0);
    entry.addSharer(1);
    entry.makeOwner(3);
    EXPECT_EQ(entry.presence(), 0b1000u);
    EXPECT_TRUE(entry.dirty());
    entry.cleanse();
    EXPECT_FALSE(entry.dirty());
    EXPECT_EQ(entry.presence(), 0b1000u);
}

TEST(FullMap, RemoveLastSharerClearsDirty)
{
    FullMapEntry entry(4);
    entry.makeOwner(1);
    entry.removeSharer(1);
    EXPECT_FALSE(entry.dirty());
    EXPECT_EQ(entry.presence(), 0u);
}

TEST(FullMap, NeverBroadcasts)
{
    FullMapEntry entry(8);
    for (unsigned u = 0; u < 8; ++u)
        entry.addSharer(u);
    EXPECT_FALSE(entry.invalTargets(0, true).broadcast);
    EXPECT_EQ(entry.invalTargets(0, true).count(), 7u);
}

TEST(LimitedPointer, RejectsZeroPointers)
{
    EXPECT_THROW(LimitedPointerEntry(4, 0, true),
                 std::invalid_argument);
}

TEST(LimitedPointer, DirectedWithinCapacity)
{
    LimitedPointerEntry entry(8, 2, true);
    entry.addSharer(3);
    entry.addSharer(5);
    EXPECT_FALSE(entry.broadcastSet());
    const InvalTargets targets = entry.invalTargets(3, true);
    EXPECT_FALSE(targets.broadcast);
    EXPECT_EQ(targets.mask, 1ULL << 5);
}

TEST(LimitedPointer, OverflowSetsBroadcastBit)
{
    LimitedPointerEntry entry(8, 2, true);
    entry.addSharer(0);
    entry.addSharer(1);
    EXPECT_TRUE(entry.wouldOverflow(2));
    entry.addSharer(2);
    EXPECT_TRUE(entry.broadcastSet());
    EXPECT_TRUE(entry.invalTargets(0, true).broadcast);
}

TEST(LimitedPointer, WriteResetsBroadcastBit)
{
    LimitedPointerEntry entry(8, 1, true);
    entry.addSharer(0);
    entry.addSharer(1); // overflow
    ASSERT_TRUE(entry.broadcastSet());
    entry.makeOwner(2);
    EXPECT_FALSE(entry.broadcastSet());
    EXPECT_TRUE(entry.dirty());
    const InvalTargets targets = entry.invalTargets(3, false);
    EXPECT_FALSE(targets.broadcast);
    EXPECT_EQ(targets.mask, 1ULL << 2);
}

TEST(LimitedPointer, DuplicateAddIsIdempotent)
{
    LimitedPointerEntry entry(8, 2, true);
    entry.addSharer(4);
    entry.addSharer(4);
    EXPECT_FALSE(entry.wouldOverflow(4));
    EXPECT_EQ(entry.pointers().size(), 1u);
}

TEST(LimitedPointer, NoBroadcastModeThrowsOnOverflow)
{
    LimitedPointerEntry entry(8, 1, false);
    entry.addSharer(0);
    EXPECT_TRUE(entry.wouldOverflow(1));
    EXPECT_THROW(entry.addSharer(1), std::logic_error);
    // After the caller evicts the existing copy, the add succeeds.
    entry.removeSharer(0);
    EXPECT_NO_THROW(entry.addSharer(1));
}

TEST(LimitedPointer, RemoveSharerFreesPointer)
{
    LimitedPointerEntry entry(8, 2, true);
    entry.addSharer(0);
    entry.addSharer(1);
    entry.removeSharer(0);
    EXPECT_FALSE(entry.wouldOverflow(2));
    entry.addSharer(2);
    EXPECT_FALSE(entry.broadcastSet());
}

TEST(TwoBit, StateMachineBasics)
{
    TwoBitEntry entry(4);
    EXPECT_EQ(entry.state(), TwoBitState::NotCached);
    entry.addSharer(0);
    EXPECT_EQ(entry.state(), TwoBitState::CleanExclusive);
    entry.addSharer(1);
    EXPECT_EQ(entry.state(), TwoBitState::CleanMany);
    entry.makeOwner(1);
    EXPECT_EQ(entry.state(), TwoBitState::DirtyOne);
    EXPECT_TRUE(entry.dirty());
    entry.cleanse();
    EXPECT_EQ(entry.state(), TwoBitState::CleanExclusive);
}

TEST(TwoBit, CleanExclusiveSuppressesBroadcastOnHit)
{
    TwoBitEntry entry(4);
    entry.addSharer(2);
    // Write hit by the sole holder: no broadcast needed.
    EXPECT_FALSE(entry.invalTargets(2, true).broadcast);
    // Write miss by another cache: the single copy must be found by
    // broadcast (no identity is stored).
    EXPECT_TRUE(entry.invalTargets(1, false).broadcast);
}

TEST(TwoBit, CleanManyAlwaysBroadcasts)
{
    TwoBitEntry entry(4);
    entry.addSharer(0);
    entry.addSharer(1);
    EXPECT_TRUE(entry.invalTargets(0, true).broadcast);
}

TEST(TwoBit, DirtyFillMovesToCleanMany)
{
    TwoBitEntry entry(4);
    entry.makeOwner(0);
    // Read miss by cache 1: flush then fill; ex-owner keeps a copy.
    entry.cleanse();
    entry.addSharer(1);
    EXPECT_EQ(entry.state(), TwoBitState::CleanMany);
}

TEST(TwoBit, RemovalFromExclusiveStates)
{
    TwoBitEntry entry(4);
    entry.addSharer(0);
    entry.removeSharer(0);
    EXPECT_EQ(entry.state(), TwoBitState::NotCached);
    entry.makeOwner(2);
    entry.removeSharer(2);
    EXPECT_EQ(entry.state(), TwoBitState::NotCached);
}

TEST(CoarseVector, RequiresPow2Units)
{
    EXPECT_THROW(CoarseVectorEntry(3), std::invalid_argument);
    EXPECT_THROW(CoarseVectorEntry(0), std::invalid_argument);
    EXPECT_THROW(CoarseVectorEntry(128), std::invalid_argument);
    EXPECT_NO_THROW(CoarseVectorEntry(64));
    EXPECT_NO_THROW(CoarseVectorEntry(1));
}

TEST(CoarseVector, SingleSharerIsExact)
{
    CoarseVectorEntry entry(8);
    entry.addSharer(5);
    EXPECT_EQ(entry.denotedMask(), 1ULL << 5);
    EXPECT_EQ(entry.bothDigits(), 0u);
}

TEST(CoarseVector, TwoSharersMergeDigits)
{
    CoarseVectorEntry entry(8);
    entry.addSharer(0b000);
    entry.addSharer(0b001);
    // One "both" digit: denotes exactly {0, 1}.
    EXPECT_EQ(entry.bothDigits(), 1u);
    EXPECT_EQ(entry.denotedMask(), 0b011u);

    entry.addSharer(0b100);
    // Digits 0 and 2 are now both: denotes {0,1,4,5}.
    EXPECT_EQ(entry.bothDigits(), 2u);
    EXPECT_EQ(entry.denotedMask(), 0b00110011u);
}

TEST(CoarseVector, SupersetProperty)
{
    // Property: after any add sequence the denoted mask contains every
    // added sharer.
    dirsim::gen::Rng rng(99);
    for (int trial = 0; trial < 200; ++trial) {
        CoarseVectorEntry entry(16);
        std::uint64_t actual = 0;
        const int adds = 1 + static_cast<int>(rng.nextBelow(8));
        for (int a = 0; a < adds; ++a) {
            const unsigned unit =
                static_cast<unsigned>(rng.nextBelow(16));
            entry.addSharer(unit);
            actual |= 1ULL << unit;
        }
        EXPECT_EQ(entry.denotedMask() & actual, actual)
            << "trial " << trial;
    }
}

TEST(CoarseVector, MakeOwnerResetsToExact)
{
    CoarseVectorEntry entry(8);
    entry.addSharer(1);
    entry.addSharer(6);
    entry.makeOwner(3);
    EXPECT_EQ(entry.denotedMask(), 1ULL << 3);
    EXPECT_TRUE(entry.dirty());
}

TEST(CoarseVector, InvalTargetsExcludeWriter)
{
    CoarseVectorEntry entry(8);
    entry.addSharer(0);
    entry.addSharer(1);
    const InvalTargets targets = entry.invalTargets(0, true);
    EXPECT_FALSE(targets.broadcast);
    EXPECT_EQ(targets.mask, 0b010u);
}

TEST(CoarseVector, SingleUnitSystem)
{
    CoarseVectorEntry entry(1);
    entry.addSharer(0);
    EXPECT_EQ(entry.denotedMask(), 1u);
    EXPECT_EQ(entry.invalTargets(0, true).mask, 0u);
}

TEST(Storage, KnownFormulas)
{
    StorageParams params;
    params.nCaches = 16;
    EXPECT_DOUBLE_EQ(
        bitsPerMemoryBlock(Organization::FullMap, params), 17.0);
    EXPECT_DOUBLE_EQ(
        bitsPerMemoryBlock(Organization::TwoBit, params), 2.0);
    params.nPointers = 2;
    EXPECT_DOUBLE_EQ(
        bitsPerMemoryBlock(Organization::LimitedPointer, params),
        2.0 * 4 + 2);
    EXPECT_DOUBLE_EQ(
        bitsPerMemoryBlock(Organization::LimitedPointerNB, params),
        2.0 * 4 + 1);
    // Coarse vector: 2*log2(n) + valid + dirty.
    EXPECT_DOUBLE_EQ(
        bitsPerMemoryBlock(Organization::CoarseVector, params), 10.0);
}

TEST(Storage, FullMapGrowsLinearly)
{
    StorageParams params;
    params.nCaches = 4;
    const double at4 =
        bitsPerMemoryBlock(Organization::FullMap, params);
    params.nCaches = 64;
    const double at64 =
        bitsPerMemoryBlock(Organization::FullMap, params);
    EXPECT_DOUBLE_EQ(at64 - at4, 60.0);
}

TEST(Storage, CoarseVectorGrowsLogarithmically)
{
    StorageParams params;
    params.nCaches = 4;
    const double at4 =
        bitsPerMemoryBlock(Organization::CoarseVector, params);
    params.nCaches = 64;
    const double at64 =
        bitsPerMemoryBlock(Organization::CoarseVector, params);
    EXPECT_DOUBLE_EQ(at4, 6.0);
    EXPECT_DOUBLE_EQ(at64, 14.0);
    // At 64 caches the coarse vector is far cheaper than the full map.
    EXPECT_LT(at64, bitsPerMemoryBlock(Organization::FullMap, params));
}

TEST(Storage, TangScalesWithCacheToMemoryRatio)
{
    StorageParams params;
    params.nCaches = 4;
    const double base =
        bitsPerMemoryBlock(Organization::Tang, params);
    params.cacheBlocksPerCache *= 2;
    EXPECT_DOUBLE_EQ(bitsPerMemoryBlock(Organization::Tang, params),
                     2.0 * base);
}

TEST(Storage, TableCoversAllSchemesAndCounts)
{
    const std::vector<unsigned> counts = {4, 16, 64};
    const auto rows = storageTable(counts, StorageParams{});
    EXPECT_GE(rows.size(), 7u);
    for (const auto &row : rows) {
        EXPECT_EQ(row.bitsPerBlock.size(), counts.size());
        for (double bits : row.bitsPerBlock)
            EXPECT_GT(bits, 0.0);
    }
}

TEST(Storage, Names)
{
    EXPECT_EQ(organizationName(Organization::LimitedPointer, 3),
              "Dir3B");
    EXPECT_EQ(organizationName(Organization::LimitedPointerNB, 2),
              "Dir2NB");
    EXPECT_EQ(organizationName(Organization::TwoBit, 0),
              "Two-bit (Dir0B)");
}

/** Factories produce independent blank entries. */
TEST(Factories, ProduceIndependentEntries)
{
    FullMapFactory full;
    auto a = full.make(4);
    auto b = full.make(4);
    a->addSharer(1);
    EXPECT_EQ(b->invalTargets(0, false).count(), 0u);

    LimitedPointerFactory lp(2, true);
    auto c = lp.make(8);
    c->addSharer(1);
    c->addSharer(2);
    c->addSharer(3);
    EXPECT_TRUE(c->invalTargets(0, false).broadcast);

    TwoBitFactory tb;
    auto d = tb.make(4);
    d->addSharer(0);
    EXPECT_FALSE(d->invalTargets(0, true).broadcast);

    CoarseVectorFactory cv;
    auto e = cv.make(16);
    e->addSharer(7);
    EXPECT_EQ(e->invalTargets(7, true).count(), 0u);
}

} // namespace
