/**
 * @file
 * Differential tests for the SIMD batch kernels (util/simd.hh).
 *
 * Every optimised backend (AVX2, NEON, SWAR) must agree byte-for-byte
 * with the deliberately-dumb scalar reference kernels over
 * adversarial inputs: all 256 byte values, all-lock and alternating
 * patterns, random fills, every tail length around the vector widths,
 * and unaligned source/destination windows.  The same binary compiled
 * with -DDIRSIM_SIMD_SCALAR runs the identical suite against the SWAR
 * fallback, which CI exercises under the sanitizers.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <random>
#include <vector>

#include "trace/record.hh"
#include "util/simd.hh"

namespace
{

using namespace dirsim;

/** The packed encoding of "any lock flag", as the engines pass it. */
const std::uint8_t kLockMask = trace::packTypeFlags(
    trace::RefType::Instr,
    trace::FlagLockTest | trace::FlagLockWrite);

void
expectDecodeMatchesScalar(const std::vector<std::uint8_t> &packed)
{
    std::vector<std::uint8_t> expect(packed.size() + 1, 0xa5);
    std::vector<std::uint8_t> actual(packed.size() + 1, 0xa5);
    util::decodeTypesScalar(packed.data(), expect.data(),
                            packed.size());
    util::decodeTypes(packed.data(), actual.data(), packed.size());
    ASSERT_EQ(actual, expect);
    // Neither kernel may write past n.
    EXPECT_EQ(actual.back(), 0xa5);

    const util::LaneCounts fast =
        util::classifyCounts(packed.data(), packed.size(), kLockMask);
    const util::LaneCounts slow = util::classifyCountsScalar(
        packed.data(), packed.size(), kLockMask);
    EXPECT_EQ(fast, slow);
}

TEST(SimdKernels, AllByteValues)
{
    std::vector<std::uint8_t> packed(256);
    for (std::size_t i = 0; i < packed.size(); ++i)
        packed[i] = static_cast<std::uint8_t>(i);
    expectDecodeMatchesScalar(packed);
}

TEST(SimdKernels, AllLockPattern)
{
    const std::vector<std::uint8_t> packed(
        300, trace::packTypeFlags(trace::RefType::Read,
                                  trace::FlagLockTest));
    expectDecodeMatchesScalar(packed);
}

TEST(SimdKernels, AlternatingReadWrite)
{
    std::vector<std::uint8_t> packed(257);
    for (std::size_t i = 0; i < packed.size(); ++i)
        packed[i] = trace::packTypeFlags(i % 2 ? trace::RefType::Read
                                               : trace::RefType::Write,
                                         i % 4 ? 0 : trace::FlagSystem);
    expectDecodeMatchesScalar(packed);
}

/** Every length from empty through past the widest vector stride. */
TEST(SimdKernels, TailLengths)
{
    std::mt19937 rng(0x51D);
    for (std::size_t n = 0; n <= 130; ++n) {
        std::vector<std::uint8_t> packed(n);
        for (auto &b : packed)
            b = static_cast<std::uint8_t>(rng());
        expectDecodeMatchesScalar(packed);
    }
}

TEST(SimdKernels, RandomLarge)
{
    std::mt19937 rng(0xD15C);
    std::vector<std::uint8_t> packed(3 * util::kClassifyStripRefs + 5);
    for (auto &b : packed)
        b = static_cast<std::uint8_t>(rng());
    expectDecodeMatchesScalar(packed);
}

/** Kernels accept arbitrarily misaligned windows. */
TEST(SimdKernels, UnalignedWindows)
{
    std::mt19937 rng(0xA11);
    std::vector<std::uint8_t> buf(512);
    for (auto &b : buf)
        b = static_cast<std::uint8_t>(rng());
    for (std::size_t off = 0; off < 9; ++off) {
        std::vector<std::uint8_t> window(buf.begin() + off,
                                         buf.begin() + off + 200);
        expectDecodeMatchesScalar(window);
    }
}

TEST(SimdKernels, AlignedVectorIsCacheLineAligned)
{
    util::AlignedVector<std::uint8_t> v(100);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) %
                  util::kCacheLineBytes,
              0u);
    util::AlignedVector<std::uint32_t> w(3);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w.data()) %
                  util::kCacheLineBytes,
              0u);
}

TEST(SimdKernels, BackendNameIsKnown)
{
    const std::string name = util::simdBackendName();
    EXPECT_TRUE(name == "avx2" || name == "neon" || name == "scalar");
}

} // namespace
