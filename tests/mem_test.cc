/**
 * @file
 * Unit and property tests for the cache tag stores.
 */

#include <gtest/gtest.h>

#include <list>
#include <stdexcept>
#include <unordered_map>

#include "gen/rng.hh"
#include "mem/block.hh"
#include "mem/infinite.hh"
#include "mem/set_assoc.hh"

namespace
{

using namespace dirsim::mem;

TEST(BlockUtils, IsPow2)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(16));
    EXPECT_TRUE(isPow2(1ULL << 40));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(3));
    EXPECT_FALSE(isPow2(24));
}

TEST(BlockUtils, Log2Exact)
{
    EXPECT_EQ(log2Exact(1), 0u);
    EXPECT_EQ(log2Exact(2), 1u);
    EXPECT_EQ(log2Exact(64), 6u);
    EXPECT_EQ(log2Exact(1ULL << 20), 20u);
    EXPECT_EQ(log2Exact(1ULL << 62), 62u);
    EXPECT_EQ(log2Exact(1ULL << 63), 63u);
}

TEST(BlockUtils, BlockIdAndBase)
{
    EXPECT_EQ(blockId(0x0, 16), 0u);
    EXPECT_EQ(blockId(0xf, 16), 0u);
    EXPECT_EQ(blockId(0x10, 16), 1u);
    EXPECT_EQ(blockBase(3, 16), 0x30u);
}

TEST(InfiniteStore, MissThenHit)
{
    InfiniteTagStore store;
    const TouchResult first = store.touch(42);
    EXPECT_FALSE(first.hit);
    EXPECT_FALSE(first.evicted);
    const TouchResult second = store.touch(42);
    EXPECT_TRUE(second.hit);
    EXPECT_EQ(store.size(), 1u);
}

TEST(InfiniteStore, NeverEvicts)
{
    InfiniteTagStore store;
    for (BlockId b = 0; b < 10'000; ++b)
        EXPECT_FALSE(store.touch(b).evicted);
    EXPECT_EQ(store.size(), 10'000u);
}

TEST(InfiniteStore, InvalidateRemoves)
{
    InfiniteTagStore store;
    store.touch(7);
    EXPECT_TRUE(store.contains(7));
    store.invalidate(7);
    EXPECT_FALSE(store.contains(7));
    EXPECT_FALSE(store.touch(7).hit);
}

TEST(InfiniteStore, ClearEmpties)
{
    InfiniteTagStore store;
    store.touch(1);
    store.touch(2);
    store.clear();
    EXPECT_EQ(store.size(), 0u);
    EXPECT_FALSE(store.contains(1));
}

TEST(SetAssoc, GeometryValidation)
{
    CacheGeometry bad;
    bad.capacityBytes = 48; // 48/(16*4) = 0 sets
    EXPECT_THROW(SetAssocTagStore{bad}, std::invalid_argument);

    CacheGeometry non_pow2;
    non_pow2.capacityBytes = 192; // 3 sets
    non_pow2.ways = 4;
    EXPECT_THROW(SetAssocTagStore{non_pow2}, std::invalid_argument);

    CacheGeometry zero_ways;
    zero_ways.ways = 0;
    EXPECT_THROW(SetAssocTagStore{zero_ways}, std::invalid_argument);
}

TEST(SetAssoc, NumSetsComputation)
{
    CacheGeometry geom;
    geom.capacityBytes = 64 * 1024;
    geom.blockBytes = 16;
    geom.ways = 4;
    EXPECT_EQ(geom.numSets(), 1024u);
}

TEST(SetAssoc, HitAfterFill)
{
    SetAssocTagStore store(CacheGeometry{1024, 16, 2});
    EXPECT_FALSE(store.touch(5).hit);
    EXPECT_TRUE(store.touch(5).hit);
    EXPECT_TRUE(store.contains(5));
    EXPECT_EQ(store.size(), 1u);
}

TEST(SetAssoc, LruEviction)
{
    // 2 ways, 16 sets: blocks 0, 16, 32 map to set 0.
    SetAssocTagStore store(CacheGeometry{512, 16, 2});
    ASSERT_EQ(store.geometry().numSets(), 16u);
    store.touch(0);
    store.touch(16);
    const TouchResult r = store.touch(32);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.evictedBlock, 0u); // least recently used
    EXPECT_FALSE(store.contains(0));
    EXPECT_TRUE(store.contains(16));
    EXPECT_TRUE(store.contains(32));
}

TEST(SetAssoc, TouchRefreshesLru)
{
    SetAssocTagStore store(CacheGeometry{512, 16, 2});
    store.touch(0);
    store.touch(16);
    store.touch(0); // 16 becomes LRU
    const TouchResult r = store.touch(32);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.evictedBlock, 16u);
}

TEST(SetAssoc, InvalidateFreesWay)
{
    SetAssocTagStore store(CacheGeometry{512, 16, 2});
    store.touch(0);
    store.touch(16);
    store.invalidate(0);
    EXPECT_EQ(store.size(), 1u);
    // Room again: no eviction on the next fill in set 0.
    EXPECT_FALSE(store.touch(32).evicted);
    EXPECT_TRUE(store.contains(16));
}

TEST(SetAssoc, InvalidateMissingIsNoop)
{
    SetAssocTagStore store(CacheGeometry{512, 16, 2});
    store.touch(0);
    store.invalidate(999);
    EXPECT_EQ(store.size(), 1u);
}

TEST(SetAssoc, DifferentSetsDontConflict)
{
    SetAssocTagStore store(CacheGeometry{512, 16, 2});
    for (BlockId b = 0; b < 16; ++b)
        EXPECT_FALSE(store.touch(b).evicted);
    EXPECT_EQ(store.size(), 16u);
}

TEST(SetAssoc, ClearEmpties)
{
    SetAssocTagStore store(CacheGeometry{512, 16, 2});
    store.touch(1);
    store.touch(2);
    store.clear();
    EXPECT_EQ(store.size(), 0u);
    EXPECT_FALSE(store.contains(1));
}

TEST(SetAssoc, DirectMappedConflicts)
{
    SetAssocTagStore store(CacheGeometry{256, 16, 1});
    ASSERT_EQ(store.geometry().numSets(), 16u);
    store.touch(3);
    const TouchResult r = store.touch(19); // same set, 1 way
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.evictedBlock, 3u);
}

TEST(SetAssoc, MixedSetIndexSpreadsStridedFootprint)
{
    // 64 sets x 4 ways.  Dense block ids at stride 64 alias onto set
    // 0 under the fixed low-bits index, so a 256-block strided
    // footprint keeps at most 4 blocks resident; the mix64 index
    // spreads the same footprint across sets.
    CacheGeometry fixed{64 * 4 * 16, 16, 4};
    ASSERT_EQ(fixed.numSets(), 64u);
    CacheGeometry mixed = fixed;
    mixed.mixSetIndex = true;

    SetAssocTagStore plain(fixed);
    SetAssocTagStore spread(mixed);
    constexpr unsigned footprint = 256;
    for (unsigned i = 0; i < footprint; ++i) {
        plain.touch(static_cast<BlockId>(i) * 64);
        spread.touch(static_cast<BlockId>(i) * 64);
    }
    EXPECT_EQ(plain.size(), 4u); // collapsed onto one set
    // mix64 is deterministic, so this bound is stable: most of the
    // 256-entry capacity stays resident.
    EXPECT_GT(spread.size(), 128u);
}

/**
 * Property: SetAssocTagStore agrees with a simple reference model (a
 * per-set std::list maintained in LRU order) over a long random
 * operation sequence.
 */
class SetAssocPropertyTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(SetAssocPropertyTest, MatchesReferenceModel)
{
    const auto [ways, sets] = GetParam();
    CacheGeometry geom;
    geom.blockBytes = 16;
    geom.ways = ways;
    geom.capacityBytes =
        static_cast<std::uint64_t>(sets) * ways * geom.blockBytes;
    SetAssocTagStore store(geom);

    // Reference: per-set MRU-first list.
    std::unordered_map<std::uint64_t, std::list<BlockId>> model;
    dirsim::gen::Rng rng(ways * 1000 + sets);

    for (int op = 0; op < 20'000; ++op) {
        const BlockId block = rng.nextBelow(sets * ways * 3);
        const std::uint64_t set = block & (sets - 1);
        auto &lru = model[set];
        if (rng.chance(0.1)) {
            // Invalidate.
            store.invalidate(block);
            lru.remove(block);
            EXPECT_FALSE(store.contains(block));
            continue;
        }
        const TouchResult got = store.touch(block);
        auto it = std::find(lru.begin(), lru.end(), block);
        if (it != lru.end()) {
            EXPECT_TRUE(got.hit) << "op " << op;
            lru.erase(it);
            lru.push_front(block);
        } else {
            EXPECT_FALSE(got.hit) << "op " << op;
            if (lru.size() == ways) {
                EXPECT_TRUE(got.evicted);
                EXPECT_EQ(got.evictedBlock, lru.back()) << "op " << op;
                lru.pop_back();
            } else {
                EXPECT_FALSE(got.evicted);
            }
            lru.push_front(block);
        }
    }

    // Final state agrees.
    std::uint64_t model_size = 0;
    for (const auto &[set, lru] : model) {
        model_size += lru.size();
        for (BlockId b : lru)
            EXPECT_TRUE(store.contains(b));
    }
    EXPECT_EQ(store.size(), model_size);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SetAssocPropertyTest,
    ::testing::Values(std::make_tuple(1u, 16u), std::make_tuple(2u, 8u),
                      std::make_tuple(4u, 16u),
                      std::make_tuple(8u, 4u),
                      std::make_tuple(4u, 128u)));

} // namespace
