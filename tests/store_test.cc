/**
 * @file
 * Tests for the out-of-core stored-trace format (trace/store.hh):
 * write → read round trips, the windowed span/CPU cursors, corruption
 * and version rejection, and bit-identical streamed replay.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "coherence/inval_engine.hh"
#include "gen/workload.hh"
#include "gen/workloads.hh"
#include "sim/simulator.hh"
#include "timing/timed_bus.hh"
#include "trace/prepared.hh"
#include "trace/store.hh"
#include "trace/trace.hh"
#include "util/simd.hh"

namespace
{

using namespace dirsim;

gen::WorkloadConfig
smallWorkload()
{
    auto cfg = gen::standardWorkloads()[0];
    cfg.totalRefs = 30'000;
    return cfg;
}

/** A per-test scratch path under the gtest temp dir. */
std::string
scratchPath(const std::string &stem)
{
    return testing::TempDir() + "dirsim-store-" + stem + ".dspt";
}

struct PathGuard
{
    std::string path;
    ~PathGuard() { ::remove(path.c_str()); }
};

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
    return bytes;
}

void
spit(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
}

void
expectColumnsEqual(const trace::PreparedTrace &a,
                   const trace::PreparedTrace &b)
{
    EXPECT_EQ(a.name(), b.name());
    EXPECT_TRUE(a.options() == b.options());
    EXPECT_EQ(a.instrRefs(), b.instrRefs());
    ASSERT_EQ(a.dataRefs(), b.dataRefs());
    EXPECT_EQ(a.numUnits(), b.numUnits());
    EXPECT_EQ(a.numCpus(), b.numCpus());
    for (std::size_t i = 0; i < a.dataRefs(); ++i) {
        ASSERT_EQ(a.blockData()[i], b.blockData()[i]) << "ref " << i;
        ASSERT_EQ(a.unitData()[i], b.unitData()[i]) << "ref " << i;
        ASSERT_EQ(a.typeFlagsData()[i], b.typeFlagsData()[i])
            << "ref " << i;
    }
    ASSERT_EQ(a.cpuStreams().size(), b.cpuStreams().size());
    for (std::size_t c = 0; c < a.cpuStreams().size(); ++c) {
        EXPECT_EQ(a.cpuStreams()[c].block, b.cpuStreams()[c].block);
        EXPECT_EQ(a.cpuStreams()[c].unit, b.cpuStreams()[c].unit);
        EXPECT_EQ(a.cpuStreams()[c].typeFlags,
                  b.cpuStreams()[c].typeFlags);
    }
}

TEST(StoredTraceTest, WriteStoredRoundTripsEverything)
{
    const auto cfg = smallWorkload();
    trace::PrepareOptions opts;
    opts.timedStreams = true;
    const trace::PreparedTrace prepared =
        trace::PreparedTrace::build(gen::generateTrace(cfg), opts);

    PathGuard file{scratchPath("roundtrip")};
    trace::StoreWriteOptions wopts;
    wopts.chunkRefs = 4096; // several chunks per column
    wopts.configFingerprint = 0xfeedfacecafef00dULL;
    const trace::StoredTraceInfo info =
        trace::writeStored(prepared, file.path, wopts);
    EXPECT_EQ(info.instrRefs, prepared.instrRefs());
    EXPECT_EQ(info.dataRefs, prepared.dataRefs());
    EXPECT_GT(info.fileBytes, 0u);

    const auto stored = trace::StoredTrace::open(file.path);
    EXPECT_EQ(stored->name(), prepared.name());
    EXPECT_TRUE(stored->options() == opts);
    EXPECT_EQ(stored->instrRefs(), prepared.instrRefs());
    EXPECT_EQ(stored->dataRefs(), prepared.dataRefs());
    EXPECT_EQ(stored->numUnits(), prepared.numUnits());
    EXPECT_EQ(stored->numCpus(), prepared.numCpus());
    EXPECT_TRUE(stored->hasTimedStreams());
    EXPECT_EQ(stored->chunkRefs(), wopts.chunkRefs);
    EXPECT_GT(stored->numChunks(), 1u);
    EXPECT_EQ(stored->configFingerprint(), wopts.configFingerprint);
    EXPECT_EQ(stored->fileBytes(), info.fileBytes);

    expectColumnsEqual(stored->loadAll(), prepared);
}

TEST(StoredTraceTest, SpanConcatenationEqualsColumns)
{
    const auto cfg = smallWorkload();
    const trace::PreparedTrace prepared =
        trace::PreparedTrace::build(gen::generateTrace(cfg));

    PathGuard file{scratchPath("spans")};
    trace::StoreWriteOptions wopts;
    wopts.chunkRefs = 1000;
    trace::writeStored(prepared, file.path, wopts);
    const auto stored = trace::StoredTrace::open(file.path);

    const auto checkOnePass = [&](trace::PreparedSpanSource &spans) {
        std::size_t at = 0;
        std::size_t nSpans = 0;
        trace::PreparedSpan span;
        while (spans.nextSpan(span)) {
            ++nSpans;
            ASSERT_LE(at + span.n, prepared.dataRefs());
            for (std::size_t i = 0; i < span.n; ++i) {
                ASSERT_EQ(span.block[i], prepared.blockData()[at + i]);
                ASSERT_EQ(span.unit[i], prepared.unitData()[at + i]);
                ASSERT_EQ(span.typeFlags[i],
                          prepared.typeFlagsData()[at + i]);
            }
            at += span.n;
        }
        EXPECT_EQ(at, prepared.dataRefs());
        EXPECT_EQ(nSpans, stored->numChunks());
    };

    const auto spans = stored->spanCursor();
    checkOnePass(*spans);
    // rewind() restarts the sequence from the first chunk.
    spans->rewind();
    checkOnePass(*spans);
}

/**
 * The SIMD alignment contract: in-memory columns and every streamed
 * span must start on a cache line, so vector loads over the prepared
 * columns never split lines.  Chunk payload offsets are 64-aligned in
 * the file and the reader's mmap/pread windows preserve that.
 */
TEST(StoredTraceTest, ColumnsAndSpansAreCacheLineAligned)
{
    const auto aligned = [](const void *p) {
        return reinterpret_cast<std::uintptr_t>(p) %
                   util::kCacheLineBytes ==
               0;
    };

    const auto cfg = smallWorkload();
    const trace::PreparedTrace prepared =
        trace::PreparedTrace::build(gen::generateTrace(cfg));
    EXPECT_TRUE(aligned(prepared.blockData()));
    EXPECT_TRUE(aligned(prepared.unitData()));
    EXPECT_TRUE(aligned(prepared.typeFlagsData()));

    PathGuard file{scratchPath("aligned")};
    trace::StoreWriteOptions wopts;
    wopts.chunkRefs = 4096;
    trace::writeStored(prepared, file.path, wopts);
    const auto stored = trace::StoredTrace::open(file.path);
    ASSERT_GT(stored->numChunks(), 1u);

    const auto spans = stored->spanCursor();
    trace::PreparedSpan span;
    std::size_t nSpans = 0;
    while (spans->nextSpan(span)) {
        ++nSpans;
        EXPECT_TRUE(aligned(span.block));
    }
    EXPECT_EQ(nSpans, stored->numChunks());
}

TEST(StoredTraceTest, SpillFromSourceMatchesInMemoryDecode)
{
    // spillFromSource streams generate → decode → disk in O(chunk)
    // memory; the columns it lays down must be bit-identical to the
    // materialise-then-decode path.
    const auto cfg = smallWorkload();
    trace::PrepareOptions opts;
    opts.timedStreams = true;
    const trace::PreparedTrace viaMemory =
        trace::PreparedTrace::build(gen::generateTrace(cfg), opts);

    PathGuard file{scratchPath("spill")};
    gen::WorkloadSource source(cfg);
    trace::StoreWriteOptions wopts;
    wopts.chunkRefs = 2048;
    const trace::StoredTraceInfo info = trace::spillFromSource(
        source, viaMemory.name(), opts, file.path, wopts);
    EXPECT_EQ(info.dataRefs, viaMemory.dataRefs());
    EXPECT_EQ(info.instrRefs, viaMemory.instrRefs());

    const auto stored = trace::StoredTrace::open(file.path);
    expectColumnsEqual(stored->loadAll(), viaMemory);
}

TEST(StoredTraceTest, StreamedSimulatorRunMatchesInMemoryRun)
{
    const auto cfg = smallWorkload();
    const trace::PreparedTrace prepared =
        trace::PreparedTrace::build(gen::generateTrace(cfg));

    PathGuard file{scratchPath("simrun")};
    trace::StoreWriteOptions wopts;
    wopts.chunkRefs = 777; // odd size: spans straddle chunk edges
    trace::writeStored(prepared, file.path, wopts);
    const auto stored = trace::StoredTrace::open(file.path);

    const auto makeEngine = [&cfg] {
        coherence::InvalEngineConfig ecfg;
        ecfg.nUnits = cfg.space.nProcesses;
        return std::make_unique<coherence::InvalEngine>(ecfg);
    };
    sim::Simulator memSim;
    coherence::CoherenceEngine &memEngine =
        memSim.addEngine(makeEngine());
    const std::uint64_t memRefs = memSim.run(prepared);

    sim::Simulator fileSim;
    coherence::CoherenceEngine &fileEngine =
        fileSim.addEngine(makeEngine());
    const auto spans = stored->spanCursor();
    const std::uint64_t fileRefs = fileSim.run(*spans);

    EXPECT_EQ(memRefs, fileRefs);
    EXPECT_TRUE(memEngine.results() == fileEngine.results());
}

TEST(StoredTraceTest, TimedReplayMatchesPreparedReplay)
{
    const auto cfg = smallWorkload();
    trace::PrepareOptions opts;
    opts.timedStreams = true;
    const trace::PreparedTrace prepared =
        trace::PreparedTrace::build(gen::generateTrace(cfg), opts);

    PathGuard file{scratchPath("timed")};
    trace::StoreWriteOptions wopts;
    wopts.chunkRefs = 1500;
    trace::writeStored(prepared, file.path, wopts);
    const auto stored = trace::StoredTrace::open(file.path);

    timing::TimedBusConfig tcfg;
    const auto makeEngine = [&cfg] {
        coherence::InvalEngineConfig ecfg;
        ecfg.nUnits = cfg.space.nProcesses;
        return std::make_unique<coherence::InvalEngine>(ecfg);
    };
    timing::TimedBusSim memSim(tcfg, makeEngine());
    const timing::TimedRun memRun = memSim.run(prepared);
    timing::TimedBusSim fileSim(tcfg, makeEngine());
    const timing::TimedRun fileRun = fileSim.run(*stored);
    EXPECT_TRUE(memRun.identicalTo(fileRun));
}

TEST(StoredTraceTest, PreadModeMatchesMmap)
{
    const auto cfg = smallWorkload();
    const trace::PreparedTrace prepared =
        trace::PreparedTrace::build(gen::generateTrace(cfg));

    PathGuard file{scratchPath("pread")};
    trace::StoreWriteOptions wopts;
    wopts.chunkRefs = 3000;
    trace::writeStored(prepared, file.path, wopts);

    trace::StoredTraceOptions mmapOpts;
    mmapOpts.mode = trace::StoreReadMode::Mmap;
    trace::StoredTraceOptions preadOpts;
    preadOpts.mode = trace::StoreReadMode::Pread;
    const auto viaMmap = trace::StoredTrace::open(file.path, mmapOpts);
    const auto viaPread =
        trace::StoredTrace::open(file.path, preadOpts);
    expectColumnsEqual(viaMmap->loadAll(), prepared);
    expectColumnsEqual(viaPread->loadAll(), prepared);
}

TEST(StoredTraceTest, EmptyTraceRoundTrips)
{
    trace::MemoryTrace raw;
    raw.meta().name = "empty";
    const trace::PreparedTrace prepared =
        trace::PreparedTrace::build(raw);

    PathGuard file{scratchPath("empty")};
    trace::writeStored(prepared, file.path);
    const auto stored = trace::StoredTrace::open(file.path);
    EXPECT_EQ(stored->totalRefs(), 0u);

    // An empty stream still yields exactly one (empty) span — the
    // same contract PreparedTraceSpans keeps.
    const auto spans = stored->spanCursor();
    trace::PreparedSpan span;
    ASSERT_TRUE(spans->nextSpan(span));
    EXPECT_EQ(span.n, 0u);
    EXPECT_FALSE(spans->nextSpan(span));

    expectColumnsEqual(stored->loadAll(), prepared);
}

/**
 * Flip every byte of a small store file, one at a time: each flip
 * must either be rejected (open or cursor read throws) or leave the
 * replayed columns bit-identical (flips in alignment padding are
 * harmless by construction).  A flip that silently *changes* the
 * replay is the one outcome the digests exist to prevent.
 */
TEST(StoredTraceTest, EveryByteFlipIsRejectedOrHarmless)
{
    auto cfg = smallWorkload();
    cfg.totalRefs = 1'200; // keeps the file (and this loop) small
    const trace::PreparedTrace prepared =
        trace::PreparedTrace::build(gen::generateTrace(cfg));

    PathGuard file{scratchPath("flip")};
    trace::StoreWriteOptions wopts;
    wopts.chunkRefs = 128;
    trace::writeStored(prepared, file.path, wopts);
    const std::string golden = slurp(file.path);
    ASSERT_GT(golden.size(), 0u);

    PathGuard copy{scratchPath("flip-copy")};
    std::size_t rejected = 0;
    for (std::size_t pos = 0; pos < golden.size(); ++pos) {
        std::string bytes = golden;
        bytes[pos] = static_cast<char>(bytes[pos] ^ 0x40);
        spit(copy.path, bytes);
        try {
            const auto stored = trace::StoredTrace::open(copy.path);
            const trace::PreparedTrace replayed = stored->loadAll();
            expectColumnsEqual(replayed, prepared);
        } catch (const std::runtime_error &) {
            ++rejected; // detection is the expected outcome
        }
    }
    // The overwhelming majority of bytes are digest-covered; only
    // alignment padding may pass unrejected.
    EXPECT_GT(rejected, golden.size() / 2);
}

TEST(StoredTraceTest, RejectsVersionMismatchDistinctly)
{
    const trace::PreparedTrace prepared = trace::PreparedTrace::build(
        gen::generateTrace(smallWorkload()));
    PathGuard file{scratchPath("version")};
    trace::writeStored(prepared, file.path);

    std::string bytes = slurp(file.path);
    bytes[8] = 99; // u32 version field follows the 8-byte magic
    spit(file.path, bytes);
    try {
        trace::StoredTrace::open(file.path);
        FAIL() << "future format version accepted";
    } catch (const std::runtime_error &err) {
        EXPECT_NE(std::string(err.what()).find("format version"),
                  std::string::npos)
            << err.what();
    }
}

TEST(StoredTraceTest, RejectsTruncationAndBadMagic)
{
    const trace::PreparedTrace prepared = trace::PreparedTrace::build(
        gen::generateTrace(smallWorkload()));
    PathGuard file{scratchPath("trunc")};
    trace::writeStored(prepared, file.path);

    const std::string golden = slurp(file.path);
    spit(file.path, golden.substr(0, golden.size() - 5));
    EXPECT_THROW(trace::StoredTrace::open(file.path),
                 std::runtime_error);

    spit(file.path, "NOTASTORE");
    EXPECT_THROW(trace::StoredTrace::open(file.path),
                 std::runtime_error);

    spit(file.path, golden + "extra");
    EXPECT_THROW(trace::StoredTrace::open(file.path),
                 std::runtime_error);
}

TEST(StoredTraceTest, WriterMisuseAndAbandonment)
{
    const std::string path = scratchPath("misuse");
    {
        trace::PreparedTraceWriter writer(path, "misuse", {});
        writer.appendData(1, 0, 0);
        writer.setUnits(1, 1);
        writer.finish();
        EXPECT_THROW(writer.finish(), std::logic_error);
    }
    // finish() completed, so the file persists and opens.
    EXPECT_NO_THROW(trace::StoredTrace::open(path));
    ::remove(path.c_str());

    {
        trace::PreparedTraceWriter writer(path, "abandoned", {});
        writer.appendData(1, 0, 0);
        // No finish(): the destructor must abandon the file.
    }
    EXPECT_FALSE(std::filesystem::exists(path));

    trace::StoreWriteOptions zero;
    zero.chunkRefs = 0;
    EXPECT_THROW(
        trace::PreparedTraceWriter(path, "zero", {}, zero),
        std::invalid_argument);

    trace::PreparedTraceWriter untimed(path, "untimed", {});
    EXPECT_THROW(untimed.appendCpu(0, 1, 0, 0), std::logic_error);
    EXPECT_THROW(untimed.setUnits(300, 1), std::invalid_argument);
}

TEST(StoredTraceTest, CpuCursorRequiresTimedStreams)
{
    const trace::PreparedTrace prepared = trace::PreparedTrace::build(
        gen::generateTrace(smallWorkload()));
    PathGuard file{scratchPath("untimed-cursor")};
    trace::writeStored(prepared, file.path);
    const auto stored = trace::StoredTrace::open(file.path);
    EXPECT_FALSE(stored->hasTimedStreams());
    EXPECT_THROW(stored->cpuCursor(0), std::logic_error);
}

} // namespace
