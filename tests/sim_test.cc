/**
 * @file
 * Tests for the simulation driver and the protocol cost models.
 *
 * The PaperTable4 suite is the repository's central validation: it
 * rebuilds the paper's published event frequencies (Table 4) as an
 * EngineResults and checks that the cost models reproduce the
 * published cumulative bus-cycle numbers (Table 5) and the Section 5.1
 * transaction coefficients.
 */

#include <gtest/gtest.h>

#include <memory>

#include "bus/bus_model.hh"
#include "coherence/dragon_engine.hh"
#include "coherence/inval_engine.hh"
#include "coherence/limited_engine.hh"
#include "gen/workloads.hh"
#include "sim/cost_model.hh"
#include "sim/simulator.hh"
#include "trace/trace.hh"

namespace
{

using namespace dirsim;
using coherence::EngineResults;
using coherence::Event;
using sim::CostBreakdown;
using sim::CostOptions;
using sim::Scheme;

// ---------------------------------------------------------------------
// Simulator driver.
// ---------------------------------------------------------------------

trace::MemoryTrace
tinyTrace()
{
    trace::MemoryTrace trace;
    auto add = [&](std::uint8_t cpu, std::uint16_t pid,
                   trace::RefType type, std::uint64_t addr) {
        trace::TraceRecord rec;
        rec.cpu = cpu;
        rec.pid = pid;
        rec.type = type;
        rec.addr = addr;
        trace.append(rec);
    };
    add(0, 10, trace::RefType::Read, 0x100);
    add(1, 20, trace::RefType::Read, 0x100);
    add(0, 10, trace::RefType::Write, 0x100);
    add(1, 20, trace::RefType::Instr, 0x200);
    return trace;
}

TEST(Simulator, RunsAllEnginesOverEveryRecord)
{
    sim::Simulator simulator;
    coherence::InvalEngineConfig cfg;
    cfg.nUnits = 4;
    auto &a = simulator.addEngine(
        std::make_unique<coherence::InvalEngine>(cfg));
    auto &b = simulator.addEngine(
        std::make_unique<coherence::DragonEngine>(4));

    trace::MemoryTrace trace = tinyTrace();
    trace::MemoryTraceSource source(trace);
    EXPECT_EQ(simulator.run(source), 4u);
    EXPECT_EQ(a.results().events.totalRefs(), 4u);
    EXPECT_EQ(b.results().events.totalRefs(), 4u);
    EXPECT_EQ(simulator.numEngines(), 2u);
}

TEST(Simulator, ProcessDomainMapsPids)
{
    sim::SimConfig cfg;
    cfg.domain = sim::SharingDomain::Process;
    sim::Simulator simulator(cfg);
    coherence::InvalEngineConfig ecfg;
    ecfg.nUnits = 2;
    auto &eng = simulator.addEngine(
        std::make_unique<coherence::InvalEngine>(ecfg));

    trace::MemoryTrace trace = tinyTrace();
    trace::MemoryTraceSource source(trace);
    simulator.run(source);
    EXPECT_EQ(simulator.unitsSeen(), 2u);
    // pid 20's read of 0x100 sees pid 10's clean copy.
    EXPECT_EQ(eng.results().events.count(Event::RmBlkCln), 1u);
}

TEST(Simulator, ProcessorDomainMapsCpus)
{
    // Two pids on the same CPU collapse into one unit.
    sim::SimConfig cfg;
    cfg.domain = sim::SharingDomain::Processor;
    sim::Simulator simulator(cfg);
    coherence::InvalEngineConfig ecfg;
    ecfg.nUnits = 2;
    simulator.addEngine(
        std::make_unique<coherence::InvalEngine>(ecfg));

    trace::MemoryTrace trace;
    trace::TraceRecord rec;
    rec.cpu = 3;
    rec.pid = 1;
    rec.type = trace::RefType::Read;
    rec.addr = 0x10;
    trace.append(rec);
    rec.pid = 2; // different process, same CPU
    rec.addr = 0x10;
    trace.append(rec);
    trace::MemoryTraceSource source(trace);
    simulator.run(source);
    EXPECT_EQ(simulator.unitsSeen(), 1u);
}

TEST(Simulator, ThrowsWhenUnitsExceedEngineCapacity)
{
    sim::Simulator simulator;
    coherence::InvalEngineConfig ecfg;
    ecfg.nUnits = 1;
    simulator.addEngine(
        std::make_unique<coherence::InvalEngine>(ecfg));
    trace::MemoryTrace trace = tinyTrace(); // two pids
    trace::MemoryTraceSource source(trace);
    EXPECT_THROW(simulator.run(source), std::runtime_error);
}

TEST(Simulator, BlockSizeGroupsAddresses)
{
    sim::SimConfig cfg;
    cfg.blockBytes = 256;
    sim::Simulator simulator(cfg);
    coherence::InvalEngineConfig ecfg;
    ecfg.nUnits = 2;
    auto &eng = simulator.addEngine(
        std::make_unique<coherence::InvalEngine>(ecfg));
    trace::MemoryTrace trace = tinyTrace();
    {
        trace::TraceRecord rec;
        rec.cpu = 1;
        rec.pid = 20;
        rec.type = trace::RefType::Read;
        rec.addr = 0x1ff; // same 256-byte block as 0x100
        trace.append(rec);
    }
    trace::MemoryTraceSource source(trace);
    simulator.run(source);
    // The final read hits: 0x1ff is in the dirty block 0x100 owned by
    // unit... pid 10 wrote it, so pid 20 read-misses dirty.
    EXPECT_EQ(eng.results().events.count(Event::RmBlkDrty), 1u);
}

// ---------------------------------------------------------------------
// Cost-model validation against the paper's published numbers.
// ---------------------------------------------------------------------

/**
 * Rebuild the paper's Table 4 average event frequencies (in percent of
 * references) as EngineResults over a synthetic 1M-reference run.
 */
class PaperTable4 : public ::testing::Test
{
  protected:
    static constexpr std::uint64_t refs = 1'000'000;

    static std::uint64_t
    pct(double percent)
    {
        return static_cast<std::uint64_t>(percent * 10'000.0 + 0.5);
    }

    static void
    fill(coherence::EventCounts &ev,
         std::initializer_list<std::pair<Event, double>> entries)
    {
        std::uint64_t used = 0;
        for (const auto &[event, percent] : entries) {
            const std::uint64_t n = pct(percent);
            for (std::uint64_t i = 0; i < n; ++i)
                ev.record(event);
            used += n;
        }
        // Pad with instructions so totals come out to `refs`.
        while (ev.totalRefs() < refs)
            ev.record(Event::Instr);
        ASSERT_LE(used, refs);
    }

    /** Dir1NB column of Table 4. */
    EngineResults
    dir1nb() const
    {
        EngineResults r;
        r.name = "dir1nb-paper";
        coherence::EventCounts &ev = r.events;
        fill(ev, {{Event::RdHit, 34.32},
                  {Event::RmBlkCln, 4.78},
                  {Event::RmBlkDrty, 0.40},
                  {Event::RmFirstRef, 0.32},
                  {Event::WhBlkClnExcl, 10.19},
                  {Event::WmBlkCln, 0.08},
                  {Event::WmBlkDrty, 0.09},
                  {Event::WmFirstRef, 0.08}});
        // Every rm-blk-cln displaces the single existing copy; every
        // wm-blk-cln invalidates exactly one copy.
        r.displacementInvals = pct(4.78);
        r.wmClnFanout.sample(1, pct(0.08));
        return r;
    }

    /** Dir0B / WTI column of Table 4. */
    EngineResults
    dir0b() const
    {
        EngineResults r;
        r.name = "inval-paper";
        coherence::EventCounts &ev = r.events;
        fill(ev, {{Event::RdHit, 38.88},
                  {Event::RmBlkCln, 0.23},
                  {Event::RmBlkDrty, 0.40},
                  {Event::RmFirstRef, 0.32},
                  // wh-blk-cln = 0.41; the paper does not publish
                  // the exclusive/shared split.  This split keeps the
                  // >85 % of Figure 1 (most writes see <= 1 other
                  // copy).
                  {Event::WhBlkClnExcl, 0.11},
                  {Event::WhBlkClnShared, 0.30},
                  {Event::WhBlkDrty, 9.84},
                  {Event::WmBlkCln, 0.02},
                  {Event::WmBlkDrty, 0.09},
                  {Event::WmFirstRef, 0.08}});
        r.whClnFanout.sample(0, pct(0.11));
        r.whClnFanout.sample(1, pct(0.26));
        r.whClnFanout.sample(2, pct(0.03));
        r.whClnFanout.sample(3, pct(0.01));
        r.wmClnFanout.sample(1, pct(0.02));
        return r;
    }

    /** Dragon column of Table 4. */
    EngineResults
    dragon() const
    {
        EngineResults r;
        r.name = "dragon-paper";
        coherence::EventCounts &ev = r.events;
        fill(ev, {{Event::RdHit, 39.20},
                  {Event::RmBlkCln, 0.14},
                  {Event::RmBlkDrty, 0.17},
                  {Event::RmFirstRef, 0.32},
                  {Event::WhDistrib, 1.74},
                  {Event::WhLocal, 8.62},
                  {Event::WmBlkCln, 0.01},
                  {Event::WmBlkDrty, 0.01},
                  {Event::WmFirstRef, 0.08}});
        return r;
    }
};

TEST_F(PaperTable4, Dir1NbCumulativeMatchesTable5)
{
    const CostBreakdown cost =
        sim::computeCost(Scheme::Dir1NB, dir1nb(),
                         bus::standardBuses().pipelined);
    // Published: 0.3210 bus cycles per reference.
    EXPECT_NEAR(cost.total(), 0.3210, 0.005);
    // Write hits are free in Dir1NB.
    EXPECT_DOUBLE_EQ(cost.dirCheck, 0.0);
    EXPECT_DOUBLE_EQ(cost.writeWord, 0.0);
}

TEST_F(PaperTable4, WtiCumulativeMatchesTable5)
{
    const CostBreakdown cost = sim::computeCost(
        Scheme::WTI, dir0b(), bus::standardBuses().pipelined);
    // Published: 0.1466.
    EXPECT_NEAR(cost.total(), 0.1466, 0.007);
    // Write-through traffic dominates (Figure 4).
    EXPECT_GT(cost.writeWord / cost.total(), 0.6);
}

TEST_F(PaperTable4, Dir0bCumulativeMatchesTable5)
{
    const CostBreakdown cost = sim::computeCost(
        Scheme::Dir0B, dir0b(), bus::standardBuses().pipelined);
    // Published: 0.0491.  Table 4's frequencies are rounded to two
    // decimals and the paper does not publish the exclusive/shared
    // write-hit split, so the reconstruction carries ~10 % slack.
    EXPECT_NEAR(cost.total(), 0.0491, 0.0048);
    // Published dir-access row: 0.0041.
    EXPECT_NEAR(cost.dirCheck, 0.0041, 0.0004);
}

TEST_F(PaperTable4, DragonCumulativeMatchesTable5)
{
    const CostBreakdown cost = sim::computeCost(
        Scheme::Dragon, dragon(), bus::standardBuses().pipelined);
    // Published: 0.0336.
    EXPECT_NEAR(cost.total(), 0.0336, 0.002);
    // Figure 4: Dragon splits cycles roughly evenly between loading
    // caches and write updates.
    EXPECT_NEAR(cost.writeWord / cost.total(), 0.5, 0.1);
}

TEST_F(PaperTable4, Section51TransactionCoefficients)
{
    const auto pipe = bus::standardBuses().pipelined;
    const CostBreakdown d0 =
        sim::computeCost(Scheme::Dir0B, dir0b(), pipe);
    const CostBreakdown dr =
        sim::computeCost(Scheme::Dragon, dragon(), pipe);
    // Published: Dir0B 0.0491 + 0.0114 q; Dragon 0.0336 + 0.0206 q.
    EXPECT_NEAR(d0.transactionsPerRef, 0.0114, 0.0005);
    EXPECT_NEAR(dr.transactionsPerRef, 0.0206, 0.0005);
    // "With q = 1 Dir0B needs only 12% more bus cycles than Dragon,
    // as compared with 46% in Figure 2."
    const double gap0 = d0.total() / dr.total() - 1.0;
    CostOptions q1;
    q1.overheadQ = 1.0;
    const double gap1 =
        sim::computeCost(Scheme::Dir0B, dir0b(), pipe, q1).total() /
            sim::computeCost(Scheme::Dragon, dragon(), pipe, q1)
                .total() -
        1.0;
    // Published: the gap shrinks from 46 % to 12 % at q = 1.  The
    // reconstruction preserves the shape: a large gap collapses to a
    // small one because Dragon makes ~1.8x more transactions.
    EXPECT_GT(gap0, 0.25);
    EXPECT_LT(gap1, gap0 / 2.0);
    EXPECT_LT(gap1, 0.15);
}

TEST_F(PaperTable4, Section6SequentialInvalidates)
{
    const auto pipe = bus::standardBuses().pipelined;
    const double broadcast =
        sim::computeCost(Scheme::Dir0B, dir0b(), pipe).total();
    const double sequential =
        sim::computeCost(Scheme::DirNNBSeq, dir0b(), pipe).total();
    // Published: 0.0491 -> 0.0499 (a very small increase).
    EXPECT_GE(sequential, broadcast - 0.0005);
    EXPECT_NEAR(sequential - broadcast, 0.0008, 0.002);
}

TEST_F(PaperTable4, Section6Dir1BLinearModel)
{
    const auto pipe = bus::standardBuses().pipelined;
    CostOptions opts;
    opts.nPointers = 1;
    opts.broadcastCost = 0.0;
    const double base =
        sim::computeCost(Scheme::DirIB, dir0b(), pipe, opts).total();
    opts.broadcastCost = 1.0;
    const double slope =
        sim::computeCost(Scheme::DirIB, dir0b(), pipe, opts).total() -
        base;
    // Published: 0.0485 + 0.0006 b (same reconstruction slack as the
    // Dir0B cumulative).
    EXPECT_NEAR(base, 0.0485, 0.0048);
    EXPECT_NEAR(slope, 0.0006, 0.0004);
}

TEST_F(PaperTable4, BerkeleyDropsDirectoryCost)
{
    const auto pipe = bus::standardBuses().pipelined;
    const CostBreakdown d0 =
        sim::computeCost(Scheme::Dir0B, dir0b(), pipe);
    const CostBreakdown bk =
        sim::computeCost(Scheme::Berkeley, dir0b(), pipe);
    EXPECT_DOUBLE_EQ(bk.dirCheck, 0.0);
    EXPECT_NEAR(d0.total() - bk.total(), d0.dirCheck, 1e-12);
}

TEST_F(PaperTable4, Figure5PerTransactionShape)
{
    const auto pipe = bus::standardBuses().pipelined;
    const double d1 = sim::computeCost(Scheme::Dir1NB, dir1nb(), pipe)
                          .perTransaction();
    const double wti =
        sim::computeCost(Scheme::WTI, dir0b(), pipe).perTransaction();
    const double d0 = sim::computeCost(Scheme::Dir0B, dir0b(), pipe)
                          .perTransaction();
    const double dr = sim::computeCost(Scheme::Dragon, dragon(), pipe)
                          .perTransaction();
    // Figure 5: Dir1NB has the longest transactions, WTI the
    // shortest; Dragon transactions are much shorter than Dir0B's.
    EXPECT_GT(d1, d0);
    EXPECT_GT(d0, dr);
    EXPECT_GT(dr, wti);
    EXPECT_NEAR(d1, 6.0, 0.2);
}

// ---------------------------------------------------------------------
// Cost-model unit behaviour on hand-built inputs.
// ---------------------------------------------------------------------

TEST(CostModel, EmptyResultsCostNothing)
{
    EngineResults empty;
    for (Scheme scheme :
         {Scheme::Dir1NB, Scheme::Dir0B, Scheme::WTI, Scheme::Dragon,
          Scheme::DirNNBSeq, Scheme::DirIB, Scheme::Berkeley,
          Scheme::YenFu}) {
        const CostBreakdown cost = sim::computeCost(
            scheme, empty, bus::standardBuses().pipelined);
        EXPECT_DOUBLE_EQ(cost.total(), 0.0)
            << sim::schemeName(scheme);
        EXPECT_DOUBLE_EQ(cost.perTransaction(), 0.0);
    }
}

TEST(CostModel, FirstReferencesAreNeverCharged)
{
    EngineResults r;
    for (int i = 0; i < 100; ++i)
        r.events.record(Event::RmFirstRef);
    for (int i = 0; i < 50; ++i)
        r.events.record(Event::WmFirstRef);
    for (Scheme scheme :
         {Scheme::Dir1NB, Scheme::Dir0B, Scheme::Dragon}) {
        EXPECT_DOUBLE_EQ(
            sim::computeCost(scheme, r,
                             bus::standardBuses().pipelined)
                .total(),
            0.0)
            << sim::schemeName(scheme);
    }
    // WTI still pays the write-through for the first-reference writes.
    const CostBreakdown wti = sim::computeCost(
        Scheme::WTI, r, bus::standardBuses().pipelined);
    EXPECT_DOUBLE_EQ(wti.memAccess, 0.0);
    EXPECT_GT(wti.writeWord, 0.0);
}

TEST(CostModel, SingleReadMissCosts)
{
    EngineResults r;
    r.events.record(Event::RmBlkCln);
    const auto buses = bus::standardBuses();
    // Dir0B: one memory access over one reference.
    EXPECT_DOUBLE_EQ(
        sim::computeCost(Scheme::Dir0B, r, buses.pipelined).total(),
        5.0);
    EXPECT_DOUBLE_EQ(
        sim::computeCost(Scheme::Dir0B, r, buses.nonPipelined).total(),
        7.0);
    // Dragon identical for a clean miss.
    EXPECT_DOUBLE_EQ(
        sim::computeCost(Scheme::Dragon, r, buses.pipelined).total(),
        5.0);
}

TEST(CostModel, DirtyMissChargesFlush)
{
    EngineResults r;
    r.events.record(Event::RmBlkDrty);
    const auto pipe = bus::standardBuses().pipelined;
    // Dir0B: directory check (1) + write-back (4).
    EXPECT_DOUBLE_EQ(
        sim::computeCost(Scheme::Dir0B, r, pipe).total(), 5.0);
    // Dragon: cache-to-cache supply (5).
    const CostBreakdown dragon =
        sim::computeCost(Scheme::Dragon, r, pipe);
    EXPECT_DOUBLE_EQ(dragon.total(), 5.0);
    EXPECT_DOUBLE_EQ(dragon.cacheAccess, 5.0);
    // Dir1NB: request (1) + invalidate (1) + write-back (4).
    EXPECT_DOUBLE_EQ(
        sim::computeCost(Scheme::Dir1NB, r, pipe).total(), 6.0);
}

TEST(CostModel, Dir1NbCleanMissWithDisplacement)
{
    EngineResults r;
    r.events.record(Event::RmBlkCln);
    r.displacementInvals = 1;
    const auto pipe = bus::standardBuses().pipelined;
    // Memory access (5) + displacement invalidate (1).
    EXPECT_DOUBLE_EQ(
        sim::computeCost(Scheme::Dir1NB, r, pipe).total(), 6.0);
}

TEST(CostModel, WriteHitCleanCosts)
{
    EngineResults r;
    r.events.record(Event::WhBlkClnShared);
    r.whClnFanout.sample(3);
    const auto pipe = bus::standardBuses().pipelined;
    // Dir0B: dir check + single broadcast invalidate.
    EXPECT_DOUBLE_EQ(
        sim::computeCost(Scheme::Dir0B, r, pipe).total(), 2.0);
    // Sequential: dir check + 3 directed invalidates.
    EXPECT_DOUBLE_EQ(
        sim::computeCost(Scheme::DirNNBSeq, r, pipe).total(), 4.0);
    // Dir2B with broadcast cost 10: fanout 3 > 2 pointers -> 1 + 10.
    CostOptions opts;
    opts.nPointers = 2;
    opts.broadcastCost = 10.0;
    EXPECT_DOUBLE_EQ(
        sim::computeCost(Scheme::DirIB, r, pipe, opts).total(), 11.0);
    // Dir4B: fanout 3 <= 4 -> directed.
    opts.nPointers = 4;
    EXPECT_DOUBLE_EQ(
        sim::computeCost(Scheme::DirIB, r, pipe, opts).total(), 4.0);
}

TEST(CostModel, YenFuTradesChecksForUpdates)
{
    EngineResults r;
    r.events.record(Event::WhBlkClnExcl);
    r.whClnFanout.sample(0);
    r.holderGrowth12 = 0;
    const auto pipe = bus::standardBuses().pipelined;
    // Exclusive clean write hit is free under Yen-Fu...
    EXPECT_DOUBLE_EQ(
        sim::computeCost(Scheme::YenFu, r, pipe).total(), 0.0);
    // ...but each 1->2 holder growth costs a bus word.
    r.holderGrowth12 = 1;
    EXPECT_DOUBLE_EQ(
        sim::computeCost(Scheme::YenFu, r, pipe).total(), 1.0);
}

TEST(CostModel, OverheadQScalesWithTransactions)
{
    EngineResults r;
    r.events.record(Event::RmBlkCln);
    r.events.record(Event::RmBlkCln);
    const auto pipe = bus::standardBuses().pipelined;
    CostOptions opts;
    opts.overheadQ = 3.0;
    const CostBreakdown cost =
        sim::computeCost(Scheme::Dir0B, r, pipe, opts);
    EXPECT_DOUBLE_EQ(cost.transactionsPerRef, 1.0);
    EXPECT_DOUBLE_EQ(cost.overhead, 3.0);
    EXPECT_DOUBLE_EQ(cost.total(), 5.0 + 3.0);
}

TEST(CostModel, ReplacementWriteBacksCharged)
{
    EngineResults r;
    r.events.record(Event::RdHit);
    r.replacementWriteBacks = 1;
    const auto pipe = bus::standardBuses().pipelined;
    EXPECT_DOUBLE_EQ(
        sim::computeCost(Scheme::Dir0B, r, pipe).writeBack, 4.0);
}

TEST(CostModel, SchemeNames)
{
    EXPECT_EQ(sim::schemeName(Scheme::Dir1NB), "Dir1NB");
    EXPECT_EQ(sim::schemeName(Scheme::DirINB, 4), "Dir4NB");
    EXPECT_EQ(sim::schemeName(Scheme::DirIB, 2), "Dir2B");
    EXPECT_EQ(sim::schemeName(Scheme::Dir0B), "Dir0B");
    EXPECT_EQ(sim::schemeName(Scheme::DirNNBSeq), "DirnNB");
}

TEST(CostModel, EngineKinds)
{
    EXPECT_EQ(sim::engineKindFor(Scheme::Dir1NB),
              sim::EngineKind::Limited);
    EXPECT_EQ(sim::engineKindFor(Scheme::DirINB),
              sim::EngineKind::Limited);
    EXPECT_EQ(sim::engineKindFor(Scheme::Dragon),
              sim::EngineKind::Dragon);
    for (Scheme s : {Scheme::Dir0B, Scheme::WTI, Scheme::DirNNBSeq,
                     Scheme::DirIB, Scheme::Berkeley, Scheme::YenFu})
        EXPECT_EQ(sim::engineKindFor(s), sim::EngineKind::Inval);
}

TEST(CostModel, DirIBWithHugeBroadcastCostConvergesToSequential)
{
    // When no event exceeds i pointers, DirIB == DirnNB regardless of
    // the broadcast cost.
    EngineResults r;
    r.events.record(Event::WhBlkClnShared);
    r.whClnFanout.sample(2);
    const auto pipe = bus::standardBuses().pipelined;
    CostOptions opts;
    opts.nPointers = 4;
    opts.broadcastCost = 1e6;
    EXPECT_DOUBLE_EQ(
        sim::computeCost(Scheme::DirIB, r, pipe, opts).total(),
        sim::computeCost(Scheme::DirNNBSeq, r, pipe).total());
}

} // namespace

namespace
{

using dirsim::gen::Rng;

/**
 * Property suite over randomly generated EngineResults: structural
 * invariants every cost model must satisfy.
 */
class CostModelProperties : public ::testing::TestWithParam<int>
{
  protected:
    static EngineResults
    randomResults(std::uint64_t seed)
    {
        Rng rng(seed);
        EngineResults r;
        auto record_many = [&](Event e, std::uint64_t max) {
            const std::uint64_t n = rng.nextBelow(max + 1);
            for (std::uint64_t i = 0; i < n; ++i)
                r.events.record(e);
            return n;
        };
        record_many(Event::Instr, 5000);
        record_many(Event::RdHit, 4000);
        record_many(Event::RmBlkCln, 60);
        const auto rm_drty = record_many(Event::RmBlkDrty, 60);
        record_many(Event::RmFirstRef, 40);
        record_many(Event::WhBlkDrty, 900);
        const auto wh_excl = record_many(Event::WhBlkClnExcl, 40);
        const auto wh_shared = record_many(Event::WhBlkClnShared, 40);
        const auto wm_cln = record_many(Event::WmBlkCln, 20);
        record_many(Event::WmBlkDrty, 20);
        record_many(Event::WmFirstRef, 10);
        (void)rm_drty;
        r.whClnFanout.sample(0, wh_excl);
        for (std::uint64_t i = 0; i < wh_shared; ++i)
            r.whClnFanout.sample(1 + rng.nextBelow(3));
        for (std::uint64_t i = 0; i < wm_cln; ++i)
            r.wmClnFanout.sample(1 + rng.nextBelow(3));
        r.displacementInvals = rng.nextBelow(50);
        r.holderGrowth12 = rng.nextBelow(50);
        return r;
    }

    static const std::vector<Scheme> &
    allSchemes()
    {
        static const std::vector<Scheme> schemes = {
            Scheme::Dir1NB,   Scheme::DirINB, Scheme::Dir0B,
            Scheme::DirNNBSeq, Scheme::DirIB,  Scheme::WTI,
            Scheme::Dragon,   Scheme::Berkeley, Scheme::YenFu,
            Scheme::BerkeleyOwn, Scheme::MESI};
        return schemes;
    }
};

TEST_P(CostModelProperties, TotalsEqualCategorySums)
{
    const EngineResults r = randomResults(GetParam());
    const auto buses = bus::standardBuses();
    for (Scheme scheme : allSchemes()) {
        for (const auto *costs : {&buses.pipelined,
                                  &buses.nonPipelined}) {
            const CostBreakdown c =
                sim::computeCost(scheme, r, *costs);
            EXPECT_NEAR(c.total(),
                        c.memAccess + c.cacheAccess + c.writeBack +
                            c.writeWord + c.dirCheck + c.invalidate +
                            c.overhead,
                        1e-12)
                << c.scheme << " on " << c.bus;
        }
    }
}

TEST_P(CostModelProperties, CostsAndTransactionsNonNegative)
{
    const EngineResults r = randomResults(GetParam() + 100);
    for (Scheme scheme : allSchemes()) {
        const CostBreakdown c = sim::computeCost(
            scheme, r, bus::standardBuses().pipelined);
        EXPECT_GE(c.total(), 0.0) << c.scheme;
        EXPECT_GE(c.transactionsPerRef, 0.0) << c.scheme;
        EXPECT_GE(c.memAccess, 0.0);
        EXPECT_GE(c.invalidate, 0.0);
    }
}

TEST_P(CostModelProperties, OverheadIsAffineInQ)
{
    const EngineResults r = randomResults(GetParam() + 200);
    for (Scheme scheme : allSchemes()) {
        CostOptions q0;
        CostOptions q2;
        q2.overheadQ = 2.0;
        CostOptions q5;
        q5.overheadQ = 5.0;
        const auto pipe = bus::standardBuses().pipelined;
        const double c0 =
            sim::computeCost(scheme, r, pipe, q0).total();
        const double c2 =
            sim::computeCost(scheme, r, pipe, q2).total();
        const double c5 =
            sim::computeCost(scheme, r, pipe, q5).total();
        // Affine: the slope between any two points matches.
        EXPECT_NEAR((c2 - c0) / 2.0, (c5 - c0) / 5.0, 1e-12)
            << sim::schemeName(scheme);
    }
}

TEST_P(CostModelProperties, DirIBIsAffineInBroadcastCost)
{
    const EngineResults r = randomResults(GetParam() + 300);
    const auto pipe = bus::standardBuses().pipelined;
    for (unsigned i : {1u, 2u, 3u}) {
        CostOptions opts;
        opts.nPointers = i;
        opts.broadcastCost = 0.0;
        const double b0 =
            sim::computeCost(Scheme::DirIB, r, pipe, opts).total();
        opts.broadcastCost = 4.0;
        const double b4 =
            sim::computeCost(Scheme::DirIB, r, pipe, opts).total();
        opts.broadcastCost = 10.0;
        const double b10 =
            sim::computeCost(Scheme::DirIB, r, pipe, opts).total();
        EXPECT_NEAR((b4 - b0) / 4.0, (b10 - b0) / 10.0, 1e-12)
            << "i=" << i;
    }
}

TEST_P(CostModelProperties, MorePointersNeverCostMore)
{
    const EngineResults r = randomResults(GetParam() + 400);
    const auto pipe = bus::standardBuses().pipelined;
    double prev = 1e9;
    for (unsigned i : {1u, 2u, 3u, 4u, 8u}) {
        CostOptions opts;
        opts.nPointers = i;
        opts.broadcastCost = 6.0;
        const double total =
            sim::computeCost(Scheme::DirIB, r, pipe, opts).total();
        EXPECT_LE(total, prev + 1e-12) << "i=" << i;
        prev = total;
    }
}

TEST_P(CostModelProperties, MergedResultsGiveWeightedAverageCost)
{
    // Costing the merge of two runs equals the reference-weighted
    // average of costing them separately (all charges are linear in
    // event frequencies).
    const EngineResults a = randomResults(GetParam() + 500);
    const EngineResults b = randomResults(GetParam() + 600);
    EngineResults merged = a;
    merged.merge(b);
    const auto pipe = bus::standardBuses().pipelined;
    for (Scheme scheme : allSchemes()) {
        const double ca =
            sim::computeCost(scheme, a, pipe).total();
        const double cb =
            sim::computeCost(scheme, b, pipe).total();
        const double cm =
            sim::computeCost(scheme, merged, pipe).total();
        const double wa =
            static_cast<double>(a.events.totalRefs());
        const double wb =
            static_cast<double>(b.events.totalRefs());
        if (wa + wb == 0.0)
            continue;
        EXPECT_NEAR(cm, (ca * wa + cb * wb) / (wa + wb), 1e-9)
            << sim::schemeName(scheme);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostModelProperties,
                         ::testing::Range(1, 9));

} // namespace
