/**
 * @file
 * Differential suite for the single-pass direct generate→prepare
 * pipeline (gen/direct_prepare.hh).
 *
 * The pipeline's whole contract is bit-identity: whatever chunk size,
 * pipelining mode, filter, sharing domain, or output sink, the
 * columns (and the store-file bytes) must match the legacy
 * generateTrace + two-phase PreparedTraceBuilder path exactly.  Every
 * test here builds both sides from the same WorkloadConfig and
 * compares column-for-column (or byte-for-byte for spilled files).
 */

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gen/direct_prepare.hh"
#include "gen/workload.hh"
#include "gen/workloads.hh"
#include "sim/trace_repo.hh"
#include "trace/prepared.hh"
#include "trace/store.hh"

namespace
{

using namespace dirsim;

/** The three standard workloads shrunk for test runtime. */
std::vector<gen::WorkloadConfig>
smallWorkloads(std::uint64_t refs = 40000)
{
    auto cfgs = gen::standardWorkloads(false);
    for (auto &cfg : cfgs)
        cfg.totalRefs = refs;
    return cfgs;
}

/** Legacy reference: materialise a MemoryTrace, two-phase decode. */
trace::PreparedTrace
legacyPrepared(const gen::WorkloadConfig &cfg,
               const trace::PrepareOptions &opts)
{
    return trace::PreparedTrace::build(gen::generateTrace(cfg), opts);
}

void
expectSameColumns(const trace::PreparedTrace &direct,
                  const trace::PreparedTrace &legacy)
{
    ASSERT_EQ(direct.dataRefs(), legacy.dataRefs());
    EXPECT_EQ(direct.instrRefs(), legacy.instrRefs());
    EXPECT_EQ(direct.numUnits(), legacy.numUnits());
    EXPECT_EQ(direct.numCpus(), legacy.numCpus());
    const std::size_t n = legacy.dataRefs();
    if (n == 0)
        return;
    EXPECT_EQ(std::memcmp(direct.blockData(), legacy.blockData(),
                          n * sizeof(std::uint32_t)),
              0);
    EXPECT_EQ(std::memcmp(direct.unitData(), legacy.unitData(), n), 0);
    EXPECT_EQ(std::memcmp(direct.typeFlagsData(),
                          legacy.typeFlagsData(), n),
              0);
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

/** Unique scratch path under the build dir's test temp. */
std::string
tmpPath(const std::string &stem)
{
    const auto dir =
        std::filesystem::temp_directory_path() / "dirsim_direct_gen";
    std::filesystem::create_directories(dir);
    return (dir / stem).string();
}

TEST(DirectGen, MatchesLegacyForEveryStandardWorkload)
{
    for (const auto &cfg : smallWorkloads()) {
        SCOPED_TRACE(cfg.name);
        const trace::PrepareOptions opts;
        expectSameColumns(gen::generatePrepared(cfg, opts),
                          legacyPrepared(cfg, opts));
    }
}

TEST(DirectGen, ChunkSizeAndPipeliningAreInvisible)
{
    const auto cfg = smallWorkloads()[0];
    const trace::PrepareOptions opts;
    const auto legacy = legacyPrepared(cfg, opts);
    // Degenerate (1), odd (4097, no alignment with any internal
    // boundary), and the default production size.
    for (const std::uint64_t chunk :
         {std::uint64_t(1), std::uint64_t(4097),
          std::uint64_t(64 * 1024)}) {
        for (const bool pipeline : {false, true}) {
            SCOPED_TRACE("chunk=" + std::to_string(chunk) +
                         " pipeline=" + std::to_string(pipeline));
            gen::DirectGenConfig dg;
            dg.chunkRefs = chunk;
            dg.pipeline = pipeline;
            expectSameColumns(gen::generatePrepared(cfg, opts, dg),
                              legacy);
        }
    }
}

TEST(DirectGen, FilterAndSharingDomainMatchLegacy)
{
    const auto cfg = smallWorkloads()[1];
    for (const bool drop : {false, true}) {
        for (const auto domain :
             {sim::SharingDomain::Process,
              sim::SharingDomain::Processor}) {
            SCOPED_TRACE("drop=" + std::to_string(drop) +
                         " domain=" +
                         std::to_string(static_cast<int>(domain)));
            trace::PrepareOptions opts;
            opts.dropLockTests = drop;
            opts.domain = domain;
            expectSameColumns(gen::generatePrepared(cfg, opts),
                              legacyPrepared(cfg, opts));
        }
    }
}

TEST(DirectGen, TimedStreamsFallsBackToTwoPhase)
{
    const auto cfg = smallWorkloads(20000)[0];
    trace::PrepareOptions opts;
    opts.timedStreams = true;
    const auto direct = gen::generatePrepared(cfg, opts);
    const auto legacy = legacyPrepared(cfg, opts);
    expectSameColumns(direct, legacy);
    ASSERT_TRUE(direct.hasTimedStreams());
    ASSERT_EQ(direct.cpuStreams().size(), legacy.cpuStreams().size());
    for (std::size_t c = 0; c < legacy.cpuStreams().size(); ++c) {
        const auto &d = direct.cpuStreams()[c];
        const auto &l = legacy.cpuStreams()[c];
        ASSERT_EQ(d.block.size(), l.block.size());
        EXPECT_EQ(std::memcmp(d.block.data(), l.block.data(),
                              l.block.size() * sizeof(std::uint32_t)),
                  0);
    }
}

TEST(DirectGen, SpillIsByteIdenticalToSpillFromSource)
{
    const auto cfg = smallWorkloads(30000)[2];
    const trace::PrepareOptions opts;
    // Store chunks deliberately misaligned with the pipeline's
    // generation chunks so writer-side re-chunking is exercised.
    trace::StoreWriteOptions store;
    store.chunkRefs = 1000;

    const std::string refPath = tmpPath("spill_ref.dst");
    gen::WorkloadSource source(cfg);
    const auto refInfo = trace::spillFromSource(source, cfg.name, opts,
                                                refPath, store);

    for (const bool pipeline : {false, true}) {
        SCOPED_TRACE("pipeline=" + std::to_string(pipeline));
        gen::DirectGenConfig dg;
        dg.chunkRefs = 4097;
        dg.pipeline = pipeline;
        const std::string path = tmpPath(
            "spill_direct_" + std::to_string(pipeline) + ".dst");
        const auto info =
            gen::spillPrepared(cfg, opts, path, store, dg);
        EXPECT_EQ(info.instrRefs, refInfo.instrRefs);
        EXPECT_EQ(info.dataRefs, refInfo.dataRefs);
        EXPECT_EQ(info.nUnits, refInfo.nUnits);
        EXPECT_EQ(info.nCpus, refInfo.nCpus);
        EXPECT_EQ(info.fileBytes, refInfo.fileBytes);
        EXPECT_EQ(slurp(path), slurp(refPath)) << "file bytes differ";
        std::filesystem::remove(path);
    }
    std::filesystem::remove(refPath);
}

TEST(DirectGen, RepositoryRoutesThroughDirectByDefault)
{
    sim::TraceRepository repo(1);
    EXPECT_TRUE(repo.directGenEnabled());

    const auto cfg = smallWorkloads(20000)[0];
    const auto viaDirect = repo.get(cfg);

    sim::TraceRepository legacyRepo(1);
    legacyRepo.setDirectGen(false);
    EXPECT_FALSE(legacyRepo.directGenEnabled());
    const auto viaLegacy = legacyRepo.get(cfg);

    expectSameColumns(*viaDirect, *viaLegacy);
}

TEST(DirectGen, RepositoryChunkOverrideStaysIdentical)
{
    sim::TraceRepository repo(1);
    repo.setDirectGenChunkRefs(777);
    const auto cfg = smallWorkloads(20000)[1];
    expectSameColumns(*repo.get(cfg), legacyPrepared(cfg, {}));
}

TEST(DirectGen, TooManySharingUnitsThrowsLikeLegacy)
{
    auto cfg = smallWorkloads(40000)[0];
    cfg.space.nProcesses = 300; // > the 8-bit unit column's 256.
    cfg.quantumRefs = 16; // Rotate all 300 through the CPUs quickly.
    const trace::PrepareOptions opts; // Process domain.
    EXPECT_THROW(legacyPrepared(cfg, opts), std::invalid_argument);
    for (const bool pipeline : {false, true}) {
        gen::DirectGenConfig dg;
        dg.pipeline = pipeline;
        EXPECT_THROW(gen::generatePrepared(cfg, opts, dg),
                     std::invalid_argument);
    }
}

} // namespace
