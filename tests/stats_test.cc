/**
 * @file
 * Unit tests for the statistics substrate.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/counter.hh"
#include "stats/csv.hh"
#include "stats/distribution.hh"
#include "stats/histogram.hh"
#include "stats/table.hh"

namespace
{

using dirsim::stats::Counter;
using dirsim::stats::CsvWriter;
using dirsim::stats::Distribution;
using dirsim::stats::Histogram;
using dirsim::stats::TextTable;

TEST(Counter, StartsAtZero)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    EXPECT_DOUBLE_EQ(c.frac(100), 0.0);
}

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    ++c;
    ++c;
    c.add(3);
    EXPECT_EQ(c.value(), 5u);
}

TEST(Counter, FracAgainstTotal)
{
    Counter c;
    c.add(25);
    EXPECT_DOUBLE_EQ(c.frac(100), 0.25);
}

TEST(Counter, FracZeroTotalIsZero)
{
    Counter c;
    c.add(7);
    EXPECT_DOUBLE_EQ(c.frac(0), 0.0);
}

TEST(Counter, MergeAndReset)
{
    Counter a;
    Counter b;
    a.add(2);
    b.add(3);
    a.merge(b);
    EXPECT_EQ(a.value(), 5u);
    a.reset();
    EXPECT_EQ(a.value(), 0u);
}

TEST(Histogram, EmptyHistogram)
{
    Histogram h;
    EXPECT_EQ(h.totalSamples(), 0u);
    EXPECT_EQ(h.maxValue(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.frac(0), 0.0);
    EXPECT_DOUBLE_EQ(h.fracAtMost(5), 0.0);
}

TEST(Histogram, BasicSampling)
{
    Histogram h;
    h.sample(0);
    h.sample(1);
    h.sample(1);
    h.sample(3);
    EXPECT_EQ(h.totalSamples(), 4u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(2), 0u);
    EXPECT_EQ(h.maxValue(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 1.25);
}

TEST(Histogram, WeightedSampling)
{
    Histogram h;
    h.sample(2, 10);
    EXPECT_EQ(h.totalSamples(), 10u);
    EXPECT_EQ(h.totalWeight(), 20u);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(Histogram, FracAtMost)
{
    Histogram h;
    h.sample(0, 5);
    h.sample(1, 3);
    h.sample(4, 2);
    EXPECT_DOUBLE_EQ(h.fracAtMost(0), 0.5);
    EXPECT_DOUBLE_EQ(h.fracAtMost(1), 0.8);
    EXPECT_DOUBLE_EQ(h.fracAtMost(3), 0.8);
    EXPECT_DOUBLE_EQ(h.fracAtMost(4), 1.0);
    EXPECT_DOUBLE_EQ(h.fracAtMost(100), 1.0);
}

TEST(Histogram, ExcessOver)
{
    Histogram h;
    h.sample(1, 4); // no excess over 1
    h.sample(3, 2); // 2 each
    h.sample(5, 1); // 4
    EXPECT_EQ(h.excessOver(1), 2u * 2u + 4u);
    EXPECT_EQ(h.excessOver(0), 4u + 3u * 2u + 5u);
    EXPECT_EQ(h.excessOver(5), 0u);
}

TEST(Histogram, PercentileEdgeCases)
{
    Histogram h;
    // Empty: every percentile is 0.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 0.0);

    // Single sample: every percentile is that sample.
    h.sample(7);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 7.0);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 7.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 7.0);
}

TEST(Histogram, PercentileNearestRank)
{
    Histogram h;
    for (std::size_t v = 1; v <= 10; ++v)
        h.sample(v);
    // p = 0 clamps the rank to 1, i.e. the minimum sample.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
    // Nearest rank: ceil(0.95 * 10) = 10th sample.
    EXPECT_DOUBLE_EQ(h.percentile(95.0), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 5.0);
    EXPECT_DOUBLE_EQ(h.percentile(51.0), 6.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 10.0);

    // Weighted buckets count as repeated samples.
    Histogram skew;
    skew.sample(0, 99);
    skew.sample(50, 1);
    EXPECT_DOUBLE_EQ(skew.percentile(95.0), 0.0);
    EXPECT_DOUBLE_EQ(skew.percentile(100.0), 50.0);
}

TEST(Histogram, Merge)
{
    Histogram a;
    Histogram b;
    a.sample(1, 2);
    b.sample(1, 3);
    b.sample(4, 1);
    a.merge(b);
    EXPECT_EQ(a.count(1), 5u);
    EXPECT_EQ(a.count(4), 1u);
    EXPECT_EQ(a.totalSamples(), 6u);
    EXPECT_EQ(a.totalWeight(), 5u + 4u);
}

TEST(Histogram, ResetClearsEverything)
{
    Histogram h;
    h.sample(7, 3);
    h.reset();
    EXPECT_EQ(h.totalSamples(), 0u);
    EXPECT_EQ(h.count(7), 0u);
}

TEST(Histogram, ToStringListsBuckets)
{
    Histogram h;
    h.sample(0);
    h.sample(2);
    const std::string s = h.toString();
    EXPECT_NE(s.find("0: 1"), std::string::npos);
    EXPECT_NE(s.find("2: 1"), std::string::npos);
}

TEST(Distribution, Empty)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
    // min/max of an empty distribution report 0, not garbage.
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
    EXPECT_DOUBLE_EQ(d.max(), 0.0);
    EXPECT_DOUBLE_EQ(d.variance(), 0.0);
}

TEST(Distribution, SingleSample)
{
    Distribution d;
    d.sample(42.5);
    EXPECT_EQ(d.count(), 1u);
    EXPECT_DOUBLE_EQ(d.min(), 42.5);
    EXPECT_DOUBLE_EQ(d.max(), 42.5);
    EXPECT_DOUBLE_EQ(d.mean(), 42.5);
    EXPECT_DOUBLE_EQ(d.variance(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
}

TEST(Distribution, MinMaxMean)
{
    Distribution d;
    d.sample(1.0);
    d.sample(2.0);
    d.sample(6.0);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 6.0);
    EXPECT_DOUBLE_EQ(d.mean(), 3.0);
}

TEST(Distribution, VarianceMatchesDefinition)
{
    Distribution d;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    EXPECT_NEAR(d.variance(), 4.0, 1e-12);
    EXPECT_NEAR(d.stddev(), 2.0, 1e-12);
}

TEST(Distribution, ResetClears)
{
    Distribution d;
    d.sample(10.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.max(), 0.0);
}

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t("Title", {"A", "B"});
    t.addRow({"x", "1"});
    t.addRow({"y", "2"});
    const std::string s = t.toString();
    EXPECT_NE(s.find("Title"), std::string::npos);
    EXPECT_NE(s.find('A'), std::string::npos);
    EXPECT_NE(s.find('x'), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, PadsShortRows)
{
    TextTable t("T", {"A", "B", "C"});
    t.addRow({"only"});
    EXPECT_NO_THROW(t.toString());
}

TEST(TextTable, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(0.03355, 4), "0.0336");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
    EXPECT_EQ(TextTable::pct(0.8532, 1), "85.3");
}

TEST(Csv, EscapesSpecials)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesRows)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.writeRow({"a", "b,c"});
    csv.writeRow({"1", "2"});
    EXPECT_EQ(os.str(), "a,\"b,c\"\n1,2\n");
}

} // namespace

namespace
{

TEST(TextTable, CsvRendering)
{
    TextTable t("My, Title", {"A", "B"});
    t.addRow({"x,y", "1"});
    t.addSeparator();
    t.addRow({"z", "2"});
    const std::string csv = t.toCsv();
    EXPECT_EQ(csv, "# My, Title\nA,B\n\"x,y\",1\nz,2\n");
}

TEST(TextTable, CsvSkipsSeparators)
{
    TextTable t("T", {"A"});
    t.addSeparator();
    t.addRow({"v"});
    const std::string csv = t.toCsv();
    EXPECT_EQ(csv, "# T\nA\nv\n");
}

} // namespace
