/**
 * @file
 * Fused multi-scheme replay: differential equivalence suite.
 *
 * FusedReplay interleaves every engine over cache-sized strips of the
 * prepared columns.  The claim that strip interleaving is invisible
 * to the coherence models is load-bearing for the whole sweep path,
 * so this suite pins it from every angle against the seed golden
 * digests (golden_data.hh): sequential whole-span replay (the
 * --no-fused hatch), adversarial strip sizes, fused groups through a
 * parallel SweepRunner, and fused groups over streamed store spans.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "coherence/multi_limited_engine.hh"
#include "gen/workload.hh"
#include "gen/workloads.hh"
#include "sim/fused_replay.hh"
#include "sim/simulator.hh"
#include "sim/sweep.hh"
#include "sim/trace_repo.hh"
#include "trace/prepared.hh"
#include "trace/store.hh"
#include "trace/trace.hh"

#include "golden_data.hh"

namespace
{

using namespace dirsim;
using golden::CacheDirGuard;
using golden::digest;
using golden::kGolden;
using golden::kNumSchemes;
using golden::kSchemes;

/** All 14 schemes over one prepared workload at a given strip size. */
std::vector<std::uint64_t>
runPreparedWithStrip(const gen::WorkloadConfig &cfg,
                     std::size_t stripRefs)
{
    const std::shared_ptr<const trace::PreparedTrace> prepared =
        sim::TraceRepository::global().get(cfg);
    sim::SimConfig sc;
    sc.replayStripRefs = stripRefs;
    sim::Simulator simulator(sc);
    for (const golden::Scheme &scheme : kSchemes)
        simulator.addEngine(
            scheme.make(cfg.space.nProcesses, nullptr));
    simulator.run(*prepared);

    std::vector<std::uint64_t> digests;
    for (std::size_t e = 0; e < simulator.numEngines(); ++e)
        digests.push_back(digest(simulator.engine(e).results()));
    return digests;
}

/**
 * The --no-fused escape hatch (replayStripRefs = 0: each span handed
 * to each engine whole, the pre-fusion shape) must land on the same
 * seed digests as the default fused path for every scheme × workload.
 */
TEST(FusedReplayEquivalence, SequentialWholeSpanMatchesGolden)
{
    const std::vector<gen::WorkloadConfig> workloads =
        gen::standardWorkloads();
    ASSERT_EQ(workloads.size(), 3u);
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const std::vector<std::uint64_t> digests =
            runPreparedWithStrip(workloads[w], 0);
        ASSERT_EQ(digests.size(), kNumSchemes);
        for (std::size_t s = 0; s < kNumSchemes; ++s) {
            EXPECT_EQ(digests[s], kGolden[w][s])
                << "scheme '" << kSchemes[s].label << "' on workload '"
                << workloads[w].name
                << "' diverged under sequential whole-span replay";
        }
    }
}

/**
 * Strip size must never be observable: one-reference strips (maximum
 * engine interleaving), a prime size that never divides the span, and
 * a size far below the default all reproduce the seed digests.
 */
TEST(FusedReplayEquivalence, AdversarialStripSizesMatchGolden)
{
    const gen::WorkloadConfig cfg = gen::standardWorkloads()[0];
    for (const std::size_t strip : {std::size_t(1), std::size_t(7),
                                    std::size_t(1000)}) {
        const std::vector<std::uint64_t> digests =
            runPreparedWithStrip(cfg, strip);
        ASSERT_EQ(digests.size(), kNumSchemes);
        for (std::size_t s = 0; s < kNumSchemes; ++s) {
            EXPECT_EQ(digests[s], kGolden[0][s])
                << "scheme '" << kSchemes[s].label << "' diverged at "
                << strip << "-ref strips";
        }
    }
}

/**
 * The scheme axis fused through a 4-worker SweepRunner: each
 * workload's 14 points share a fuseKey, so the runner collapses them
 * into one fused column pass per workload — and every point still
 * lands on its golden digest, in submission order.
 */
TEST(FusedReplayEquivalence, FusedParallelSweepMatchesGolden)
{
    const std::vector<gen::WorkloadConfig> workloads =
        gen::standardWorkloads();
    ASSERT_EQ(workloads.size(), 3u);

    sim::SweepRunner runner(4);
    for (const gen::WorkloadConfig &cfg : workloads) {
        const std::shared_ptr<const trace::PreparedTrace> prepared =
            sim::TraceRepository::global().get(cfg);
        for (std::size_t s = 0; s < kNumSchemes; ++s) {
            sim::SweepPoint point;
            point.name =
                std::string(cfg.name) + "/" + kSchemes[s].label;
            point.fuseKey = "fused/" + std::string(cfg.name);
            point.engines = [s, units = cfg.space.nProcesses] {
                std::vector<
                    std::unique_ptr<coherence::CoherenceEngine>>
                    engines;
                engines.push_back(kSchemes[s].make(units, nullptr));
                return engines;
            };
            point.prepared = prepared;
            runner.add(std::move(point));
        }
    }

    // One fused group per workload, not 42 standalone points.
    const std::vector<std::size_t> groups =
        runner.plannedGroupSizes();
    ASSERT_EQ(groups.size(), workloads.size());
    for (const std::size_t size : groups)
        EXPECT_EQ(size, kNumSchemes);

    const std::vector<sim::SweepPointResult> results = runner.run();
    ASSERT_EQ(results.size(), workloads.size() * kNumSchemes);
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        for (std::size_t s = 0; s < kNumSchemes; ++s) {
            const sim::SweepPointResult &res =
                results[w * kNumSchemes + s];
            ASSERT_EQ(res.engines.size(), 1u);
            EXPECT_EQ(digest(res.engines[0]), kGolden[w][s])
                << "point '" << res.name
                << "' diverged in a fused parallel sweep";
        }
    }
}

/**
 * Fused groups over the out-of-core path: every workload's 14 points
 * fuse into one pass over windowed spans of a spilled store file
 * (small chunks force many span boundaries inside every strip walk).
 */
TEST(FusedReplayEquivalence, FusedStreamedSweepMatchesGolden)
{
    CacheDirGuard dir("fused");
    sim::TraceRepository repo(1);
    sim::DiskCacheConfig disk;
    disk.dir = dir.path;
    disk.chunkRefs = 64 * 1024;
    repo.setDiskCache(disk);

    const std::vector<gen::WorkloadConfig> workloads =
        gen::standardWorkloads();
    ASSERT_EQ(workloads.size(), 3u);

    sim::SweepRunner runner(4);
    for (const gen::WorkloadConfig &cfg : workloads) {
        const std::shared_ptr<const trace::StoredTrace> stored =
            repo.getStored(cfg);
        ASSERT_GT(stored->numChunks(), 1u);
        for (std::size_t s = 0; s < kNumSchemes; ++s) {
            sim::SweepPoint point;
            point.name =
                std::string(cfg.name) + "/" + kSchemes[s].label;
            point.fuseKey = "stream/" + std::string(cfg.name);
            point.engines = [s, units = cfg.space.nProcesses] {
                std::vector<
                    std::unique_ptr<coherence::CoherenceEngine>>
                    engines;
                engines.push_back(kSchemes[s].make(units, nullptr));
                return engines;
            };
            point.spans = [stored] { return stored->spanCursor(); };
            runner.add(std::move(point));
        }
    }

    const std::vector<std::size_t> groups =
        runner.plannedGroupSizes();
    ASSERT_EQ(groups.size(), workloads.size());
    for (const std::size_t size : groups)
        EXPECT_EQ(size, kNumSchemes);

    const std::vector<sim::SweepPointResult> results = runner.run();
    ASSERT_EQ(results.size(), workloads.size() * kNumSchemes);
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        for (std::size_t s = 0; s < kNumSchemes; ++s) {
            const sim::SweepPointResult &res =
                results[w * kNumSchemes + s];
            ASSERT_EQ(res.engines.size(), 1u);
            EXPECT_EQ(digest(res.engines[0]), kGolden[w][s])
                << "point '" << res.name
                << "' diverged in a fused streamed sweep";
        }
    }
    EXPECT_EQ(repo.stats().builds, 3u);
}

/**
 * The multi-configuration collapse against the seed: one
 * MultiLimitedEngine with lanes {1, 2} replayed through the default
 * fused path lands on the dir1nb and dir2nb golden digests — name
 * included — for every standard workload.  The digests were recorded
 * from independent node-based engines, so this pins the shared-table
 * lanes to the seed semantics bit for bit.
 */
TEST(FusedReplayEquivalence, MultiConfigLanesMatchGolden)
{
    const std::vector<gen::WorkloadConfig> workloads =
        gen::standardWorkloads();
    ASSERT_EQ(workloads.size(), 3u);
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const std::shared_ptr<const trace::PreparedTrace> prepared =
            sim::TraceRepository::global().get(workloads[w]);
        sim::Simulator simulator{sim::SimConfig{}};
        simulator.addEngine(
            std::make_unique<coherence::MultiLimitedEngine>(
                workloads[w].space.nProcesses,
                std::vector<unsigned>{1, 2}));
        simulator.run(*prepared);
        const auto &multi =
            static_cast<const coherence::MultiLimitedEngine &>(
                simulator.engine(0));
        ASSERT_EQ(multi.numLanes(), 2u);
        EXPECT_EQ(digest(multi.laneResults(0)), kGolden[w][1])
            << "lane dir1nb diverged on workload '"
            << workloads[w].name << "'";
        EXPECT_EQ(digest(multi.laneResults(1)), kGolden[w][2])
            << "lane dir2nb diverged on workload '"
            << workloads[w].name << "'";
    }
}

/** Points with distinct fuse keys (or none) stay standalone. */
TEST(FusedReplay, DistinctKeysDoNotFuse)
{
    const gen::WorkloadConfig cfg = gen::standardWorkloads()[0];
    const std::shared_ptr<const trace::PreparedTrace> prepared =
        sim::TraceRepository::global().get(cfg);
    sim::SweepRunner runner(2);
    for (const char *key : {"a", "b", ""}) {
        sim::SweepPoint point;
        point.name = key;
        point.fuseKey = key;
        point.engines = [units = cfg.space.nProcesses] {
            std::vector<std::unique_ptr<coherence::CoherenceEngine>>
                engines;
            engines.push_back(kSchemes[0].make(units, nullptr));
            return engines;
        };
        point.prepared = prepared;
        runner.add(std::move(point));
    }
    const std::vector<std::size_t> groups =
        runner.plannedGroupSizes();
    ASSERT_EQ(groups.size(), 3u);
    for (const std::size_t size : groups)
        EXPECT_EQ(size, 1u);
}

/** An empty prepared stream fused across engines is a clean no-op. */
TEST(FusedReplay, EmptyStream)
{
    trace::MemoryTrace empty;
    trace::PrepareOptions prep;
    const trace::PreparedTrace prepared =
        trace::PreparedTrace::build(empty, prep);
    ASSERT_EQ(prepared.dataRefs(), 0u);

    coherence::InvalEngineConfig cfg;
    cfg.nUnits = 4;
    coherence::InvalEngine a(cfg), b(cfg);
    trace::PreparedTraceSpans spans(prepared);
    sim::FusedReplayOptions opts;
    opts.timeEngines = true;
    const sim::FusedReplayRun run =
        sim::FusedReplay(opts).run(spans, {&a, &b});
    EXPECT_EQ(run.totalRefs(), 0u);
    ASSERT_EQ(run.engineSeconds.size(), 2u);
}

} // namespace
