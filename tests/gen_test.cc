/**
 * @file
 * Unit tests for the synthetic workload generator: RNG, address
 * space, locks, process engine and the scheduler-driven source.
 */

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "gen/address_space.hh"
#include "gen/lock_set.hh"
#include "gen/rng.hh"
#include "gen/workload.hh"
#include "gen/workloads.hh"

namespace
{

using namespace dirsim::gen;
using dirsim::trace::TraceRecord;

TEST(Rng, DeterministicForSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    bool differed = false;
    for (int i = 0; i < 10 && !differed; ++i)
        differed = a.nextU64() != b.nextU64();
    EXPECT_TRUE(differed);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(13), 13u);
}

// The fixed-point samplers exist so the cold generate path can skip
// per-draw double arithmetic; their whole contract is draw-for-draw
// bit-identity with the Rng methods they replace.

TEST(FixedChance, MatchesRngChanceDrawForDraw)
{
    // Mid-range, tiny, near-one, and both no-draw edges.
    for (const double p : {0.0, 1e-9, 0.02, 0.31, 0.5, 0.997, 1.0}) {
        const FixedChance fast(p);
        Rng a(123);
        Rng b(123);
        for (int i = 0; i < 20000; ++i)
            ASSERT_EQ(fast(a), b.chance(p))
                << "p=" << p << " draw " << i;
        // Same decision AND same draw consumption: the streams must
        // still be in lockstep afterwards.
        EXPECT_EQ(a.nextU64(), b.nextU64()) << "p=" << p;
    }
}

TEST(FixedChance, EdgeProbabilitiesConsumeNoDraw)
{
    EXPECT_FALSE(FixedChance(0.0).draws());
    EXPECT_FALSE(FixedChance(-3.0).draws());
    EXPECT_FALSE(FixedChance(1.0).draws());
    EXPECT_FALSE(FixedChance(2.0).draws());
    EXPECT_TRUE(FixedChance(0.5).draws());
}

TEST(FixedWeighted, MatchesPickWeightedDrawForDraw)
{
    // The process engines' real 5-category shape.
    const FixedWeighted fw({0.6, 0.2, 0.1, 0.06, 0.04});
    Rng a(77);
    Rng b(77);
    for (int i = 0; i < 20000; ++i)
        ASSERT_EQ(fw(a), b.pickWeighted({0.6, 0.2, 0.1, 0.06, 0.04}))
            << "draw " << i;
    EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(FixedWeighted, EveryMantissaMatchesTheDoubleReference)
{
    // The binary-searched cuts claim exact equality with the double
    // arithmetic for EVERY 53-bit mantissa; sweep the extremes plus a
    // large random sample (a dense uniform probe of the step
    // boundaries' neighbourhoods).
    const double w[] = {0.25, 0.5, 0.25};
    const FixedWeighted fw({0.25, 0.5, 0.25});
    const std::uint64_t top = 1ULL << 53;
    EXPECT_EQ(fw.pickFromDraw(0),
              FixedWeighted::referencePick(0, w, 3));
    EXPECT_EQ(fw.pickFromDraw(top - 1),
              FixedWeighted::referencePick(top - 1, w, 3));
    Rng rng(99);
    for (int i = 0; i < 200000; ++i) {
        const std::uint64_t u = rng.nextU64() >> 11;
        ASSERT_EQ(fw.pickFromDraw(u),
                  FixedWeighted::referencePick(u, w, 3))
            << "u=" << u;
    }
}

TEST(FixedWeighted, ZeroWeightCategoriesMatchReference)
{
    // Zero-weight head and tail exercise the fallthrough paths.
    const double w[] = {0.0, 1.0, 0.0};
    const FixedWeighted fw({0.0, 1.0, 0.0});
    Rng rng(5);
    for (int i = 0; i < 50000; ++i) {
        const std::uint64_t u = rng.nextU64() >> 11;
        ASSERT_EQ(fw.pickFromDraw(u),
                  FixedWeighted::referencePick(u, w, 3));
    }
}

TEST(Rng, NextBelowCoversRange)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextBelow(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextInRangeInclusive)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i) {
        const std::uint64_t v = rng.nextInRange(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(3);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(5);
    int hits = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, PickWeightedRespectsWeights)
{
    Rng rng(13);
    std::map<std::size_t, int> counts;
    const int trials = 30000;
    for (int i = 0; i < trials; ++i)
        ++counts[rng.pickWeighted({1.0, 3.0, 0.0})];
    EXPECT_NEAR(counts[0] / static_cast<double>(trials), 0.25, 0.02);
    EXPECT_NEAR(counts[1] / static_cast<double>(trials), 0.75, 0.02);
    EXPECT_EQ(counts[2], 0);
}

TEST(Rng, BurstLengthBounds)
{
    Rng rng(17);
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t len = rng.burstLength(0.9, 5);
        EXPECT_GE(len, 1u);
        EXPECT_LE(len, 5u);
    }
    // p = 0 always gives length 1.
    EXPECT_EQ(rng.burstLength(0.0, 5), 1u);
}

class AddressSpaceTest : public ::testing::Test
{
  protected:
    AddressSpaceConfig cfg;
    Rng rng{123};
};

TEST_F(AddressSpaceTest, RegionsAreDisjoint)
{
    const AddressSpace space(cfg);
    Rng r(1);
    // Sample many addresses from each region and verify no block
    // collides across regions.
    std::unordered_map<std::uint64_t, int> region_of_block;
    auto check = [&](std::uint64_t addr, int region) {
        const std::uint64_t block = addr / cfg.blockBytes;
        auto [it, inserted] = region_of_block.emplace(block, region);
        EXPECT_TRUE(inserted || it->second == region)
            << "block 0x" << std::hex << block
            << " shared between regions " << std::dec << it->second
            << " and " << region;
    };
    for (int i = 0; i < 2000; ++i) {
        check(space.privateAddr(0, r), 0);
        check(space.privateAddr(3, r), 1);
        check(space.sharedReadAddr(r), 2);
        check(space.sharedWriteAddr(r), 3);
        check(space.lockAddr(static_cast<std::uint32_t>(i % 4)), 4);
        check(space.protectedAddr(i % 4, r), 5);
        check(space.osSharedAddr(r), 6);
        check(space.osPerCpuAddr(0, r), 7);
        check(space.osPerCpuAddr(1, r), 8);
        check(space.migratoryAddr(i % 8, 0), 9);
    }
}

TEST_F(AddressSpaceTest, LockWordsInOwnBlocksByDefault)
{
    const AddressSpace space(cfg);
    std::set<std::uint64_t> blocks;
    for (std::uint32_t l = 0; l < 8; ++l)
        blocks.insert(space.lockAddr(l) / cfg.blockBytes);
    EXPECT_EQ(blocks.size(), 8u);
}

TEST_F(AddressSpaceTest, FalseSharingPacksTwoLocksPerBlock)
{
    cfg.falseSharingLocks = true;
    const AddressSpace space(cfg);
    EXPECT_EQ(space.lockAddr(0) / cfg.blockBytes,
              space.lockAddr(1) / cfg.blockBytes);
    EXPECT_NE(space.lockAddr(0), space.lockAddr(1));
    EXPECT_NE(space.lockAddr(0) / cfg.blockBytes,
              space.lockAddr(2) / cfg.blockBytes);
}

TEST_F(AddressSpaceTest, OwnSlotsPartitionByProducer)
{
    const AddressSpace space(cfg);
    Rng r(2);
    std::set<std::uint64_t> pid0;
    std::set<std::uint64_t> pid1;
    for (int i = 0; i < 500; ++i) {
        pid0.insert(space.sharedWriteOwnAddr(0, r));
        pid1.insert(space.sharedWriteOwnAddr(1, r));
    }
    for (std::uint64_t addr : pid0)
        EXPECT_EQ(pid1.count(addr), 0u);
}

TEST_F(AddressSpaceTest, PrivateRegionsPerProcessDisjoint)
{
    const AddressSpace space(cfg);
    Rng r(3);
    std::set<std::uint64_t> blocks0;
    for (int i = 0; i < 1000; ++i)
        blocks0.insert(space.privateAddr(0, r) / cfg.blockBytes);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(blocks0.count(space.privateAddr(1, r) /
                                cfg.blockBytes),
                  0u);
    }
}

TEST(LockSetTest, AcquireReleaseCycle)
{
    LockSet locks;
    locks.add(0x1000);
    EXPECT_FALSE(locks[0].held);
    locks.acquire(0, 3);
    EXPECT_TRUE(locks[0].held);
    EXPECT_EQ(locks[0].owner, 3);
    EXPECT_EQ(locks[0].acquisitions, 1u);
    locks.release(0);
    EXPECT_FALSE(locks[0].held);
    locks.acquire(0, 1);
    EXPECT_EQ(locks.totalAcquisitions(), 2u);
}

class WorkloadTest : public ::testing::Test
{
  protected:
    WorkloadConfig
    smallConfig()
    {
        WorkloadConfig cfg = popsConfig();
        cfg.totalRefs = 50'000;
        return cfg;
    }
};

TEST_F(WorkloadTest, ProducesExactlyTotalRefs)
{
    WorkloadSource source(smallConfig());
    TraceRecord rec;
    std::size_t count = 0;
    while (source.next(rec))
        ++count;
    EXPECT_EQ(count, 50'000u);
    EXPECT_FALSE(source.next(rec));
}

TEST_F(WorkloadTest, DeterministicForSameSeed)
{
    const WorkloadConfig cfg = smallConfig();
    WorkloadSource a(cfg);
    WorkloadSource b(cfg);
    TraceRecord ra;
    TraceRecord rb;
    while (a.next(ra)) {
        ASSERT_TRUE(b.next(rb));
        ASSERT_EQ(ra, rb);
    }
    EXPECT_FALSE(b.next(rb));
}

TEST_F(WorkloadTest, RewindReproducesStream)
{
    WorkloadSource source(smallConfig());
    std::vector<TraceRecord> first;
    TraceRecord rec;
    while (source.next(rec))
        first.push_back(rec);
    source.rewind();
    std::size_t i = 0;
    while (source.next(rec)) {
        ASSERT_LT(i, first.size());
        ASSERT_EQ(rec, first[i]);
        ++i;
    }
    EXPECT_EQ(i, first.size());
}

TEST_F(WorkloadTest, CpusRoundRobin)
{
    WorkloadConfig cfg = smallConfig();
    WorkloadSource source(cfg);
    TraceRecord rec;
    for (unsigned i = 0; i < 64; ++i) {
        ASSERT_TRUE(source.next(rec));
        EXPECT_EQ(rec.cpu, i % cfg.space.nCpus);
    }
}

TEST_F(WorkloadTest, PidsWithinProcessCount)
{
    WorkloadConfig cfg = smallConfig();
    WorkloadSource source(cfg);
    TraceRecord rec;
    while (source.next(rec))
        EXPECT_LT(rec.pid, cfg.space.nProcesses);
}

TEST_F(WorkloadTest, PinnedProcessesWithoutMigration)
{
    WorkloadConfig cfg = smallConfig();
    cfg.migrationRate = 0.0;
    WorkloadSource source(cfg);
    TraceRecord rec;
    std::map<unsigned, std::set<unsigned>> cpus_of_pid;
    while (source.next(rec))
        cpus_of_pid[rec.pid].insert(rec.cpu);
    for (const auto &[pid, cpus] : cpus_of_pid)
        EXPECT_EQ(cpus.size(), 1u) << "pid " << pid << " migrated";
}

TEST_F(WorkloadTest, MigrationMovesProcesses)
{
    WorkloadConfig cfg = smallConfig();
    cfg.totalRefs = 400'000;
    cfg.migrationRate = 0.5;
    cfg.quantumRefs = 10'000;
    WorkloadSource source(cfg);
    TraceRecord rec;
    std::map<unsigned, std::set<unsigned>> cpus_of_pid;
    while (source.next(rec))
        cpus_of_pid[rec.pid].insert(rec.cpu);
    std::size_t migrated = 0;
    for (const auto &[pid, cpus] : cpus_of_pid)
        migrated += cpus.size() > 1 ? 1 : 0;
    EXPECT_GT(migrated, 0u);
}

TEST_F(WorkloadTest, TimeSlicingWhenProcessesExceedCpus)
{
    WorkloadConfig cfg = smallConfig();
    cfg.space.nProcesses = 6;
    cfg.space.nCpus = 4;
    cfg.totalRefs = 600'000;
    cfg.quantumRefs = 20'000;
    WorkloadSource source(cfg);
    TraceRecord rec;
    std::set<unsigned> pids;
    while (source.next(rec))
        pids.insert(rec.pid);
    EXPECT_EQ(pids.size(), 6u) << "every process must get CPU time";
}

TEST_F(WorkloadTest, ManyProcessFifoOrderMatchesReferenceModel)
{
    // Regression for the ready-queue container change (vector →
    // deque): with processes outnumbering CPUs the queue is never
    // empty, the migration path never fires, and every pid the
    // source emits is predicted exactly by an independent model of
    // the FIFO time-slicer.  96 processes on 4 CPUs also makes any
    // accidental O(n) front-erase painfully visible in test runtime.
    WorkloadConfig cfg = smallConfig();
    cfg.space.nProcesses = 96;
    cfg.space.nCpus = 4;
    cfg.totalRefs = 200'000;
    cfg.quantumRefs = 37; // Odd, so expiries stagger across CPUs.

    std::vector<std::size_t> procOnCpu;
    std::deque<std::size_t> ready;
    for (unsigned c = 0; c < cfg.space.nCpus; ++c)
        procOnCpu.push_back(c);
    for (std::size_t p = cfg.space.nCpus; p < cfg.space.nProcesses;
         ++p)
        ready.push_back(p);
    std::vector<std::uint64_t> quantum(cfg.space.nCpus,
                                       cfg.quantumRefs);

    WorkloadSource source(cfg);
    TraceRecord rec;
    unsigned cpu = 0;
    while (source.next(rec)) {
        ASSERT_EQ(rec.cpu, cpu);
        ASSERT_EQ(rec.pid, procOnCpu[cpu]);
        if (--quantum[cpu] == 0) {
            quantum[cpu] = cfg.quantumRefs;
            ready.push_back(procOnCpu[cpu]);
            procOnCpu[cpu] = ready.front();
            ready.pop_front();
        }
        cpu = (cpu + 1) % cfg.space.nCpus;
    }
}

TEST_F(WorkloadTest, MetaListsAllLockAddresses)
{
    WorkloadConfig cfg = smallConfig();
    WorkloadSource source(cfg);
    EXPECT_EQ(source.meta().lockAddrs.size(), cfg.space.nLocks);
    EXPECT_EQ(source.meta().nCpus, cfg.space.nCpus);
    EXPECT_EQ(source.meta().name, cfg.name);
}

TEST_F(WorkloadTest, LockTestReadsTargetLockWords)
{
    WorkloadConfig cfg = smallConfig();
    WorkloadSource source(cfg);
    const auto lock_addrs = source.meta().lockAddrs;
    TraceRecord rec;
    std::size_t lock_tests = 0;
    while (source.next(rec)) {
        if (rec.isLockTest()) {
            EXPECT_TRUE(rec.isRead());
            EXPECT_EQ(lock_addrs.count(rec.addr), 1u);
            ++lock_tests;
        }
        if (rec.isLockWrite()) {
            EXPECT_TRUE(rec.isWrite());
            EXPECT_EQ(lock_addrs.count(rec.addr), 1u);
        }
    }
    EXPECT_GT(lock_tests, 0u);
}

TEST_F(WorkloadTest, LockWritesAlternateAcquireRelease)
{
    // Per lock address, writes must alternate: acquire (after a test
    // read observing free), then release by the same process.
    WorkloadConfig cfg = smallConfig();
    cfg.totalRefs = 200'000;
    WorkloadSource source(cfg);
    TraceRecord rec;
    std::unordered_map<std::uint64_t, int> holder; // -1 = free
    while (source.next(rec)) {
        if (!rec.isLockWrite())
            continue;
        auto [it, inserted] = holder.emplace(rec.addr, -1);
        if (it->second == -1) {
            it->second = rec.pid; // acquire
        } else {
            EXPECT_EQ(it->second, rec.pid)
                << "lock released by a non-owner";
            it->second = -1; // release
        }
    }
}

TEST_F(WorkloadTest, SystemRefsRoughlyMatchConfig)
{
    WorkloadConfig cfg = smallConfig();
    cfg.totalRefs = 200'000;
    WorkloadSource source(cfg);
    TraceRecord rec;
    std::size_t system = 0;
    std::size_t total = 0;
    while (source.next(rec)) {
        ++total;
        system += rec.isSystem() ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(system) / total,
                cfg.behavior.pSystem, 0.02);
}

TEST_F(WorkloadTest, GenerateTraceMatchesStreaming)
{
    WorkloadConfig cfg = smallConfig();
    cfg.totalRefs = 20'000;
    const auto trace = generateTrace(cfg);
    EXPECT_EQ(trace.size(), cfg.totalRefs);
    WorkloadSource source(cfg);
    TraceRecord rec;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        ASSERT_TRUE(source.next(rec));
        ASSERT_EQ(rec, trace[i]);
    }
}

TEST(WorkloadPresets, DistinctSeedsAndNames)
{
    const auto workloads = standardWorkloads();
    ASSERT_EQ(workloads.size(), 3u);
    std::set<std::string> names;
    std::set<std::uint64_t> seeds;
    for (const auto &cfg : workloads) {
        names.insert(cfg.name);
        seeds.insert(cfg.seed);
    }
    EXPECT_EQ(names.size(), 3u);
    EXPECT_EQ(seeds.size(), 3u);
}

TEST(WorkloadPresets, FullSizeMatchesPaperRefCounts)
{
    EXPECT_EQ(popsConfig(true).totalRefs, 3'142'000u);
    EXPECT_EQ(thorConfig(true).totalRefs, 3'222'000u);
    EXPECT_EQ(peroConfig(true).totalRefs, 3'508'000u);
}

TEST(WorkloadPresets, ScaledConfigGrowsSharedState)
{
    const auto small = scaledConfig(4, 100'000);
    const auto large = scaledConfig(32, 100'000);
    EXPECT_EQ(large.space.nCpus, 32u);
    EXPECT_GT(large.space.sharedReadBlocks,
              small.space.sharedReadBlocks);
    EXPECT_GT(large.space.migratoryObjects,
              small.space.migratoryObjects);
}

TEST(WorkloadPresets, ScaledConfigRunsAtManyCpuCounts)
{
    for (unsigned n : {1u, 2u, 8u, 16u}) {
        WorkloadConfig cfg = scaledConfig(n, 5'000);
        WorkloadSource source(cfg);
        TraceRecord rec;
        std::size_t count = 0;
        while (source.next(rec)) {
            EXPECT_LT(rec.cpu, n);
            ++count;
        }
        EXPECT_EQ(count, 5'000u);
    }
}

} // namespace

namespace
{

using dirsim::trace::RefType;

/** Direct ProcessEngine behaviour tests. */
class ProcessEngineTest : public ::testing::Test
{
  protected:
    ProcessEngineTest()
        : space(makeSpaceConfig()), rng(42)
    {
        for (std::uint32_t l = 0; l < 4; ++l)
            shared.locks.add(space.lockAddr(l));
        shared.migratoryOwner.assign(16, 0xffff);
    }

    static AddressSpaceConfig
    makeSpaceConfig()
    {
        AddressSpaceConfig cfg;
        cfg.nLocks = 4;
        cfg.migratoryObjects = 16;
        return cfg;
    }

    AddressSpace space;
    SharedState shared;
    Rng rng;
    BehaviorConfig behavior;
};

TEST_F(ProcessEngineTest, EmitsTaggedRecords)
{
    BehaviorSamplers samplers(behavior);
    ProcessEngine proc(3, behavior, samplers, space, shared, rng);
    for (int i = 0; i < 2000; ++i) {
        const auto rec = proc.step(1);
        EXPECT_EQ(rec.pid, 3);
        EXPECT_EQ(rec.cpu, 1);
    }
}

TEST_F(ProcessEngineTest, InstructionFractionTracksConfig)
{
    behavior.pInstr = 0.7;
    behavior.pSystem = 0.0;
    behavior.wLockAttempt = 0.0; // no spin loops to skew the mix
    BehaviorSamplers samplers(behavior);
    ProcessEngine proc(0, behavior, samplers, space, shared, rng);
    int instr = 0;
    const int steps = 30'000;
    for (int i = 0; i < steps; ++i)
        instr += proc.step(0).isInstr() ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(instr) / steps, 0.7, 0.03);
}

TEST_F(ProcessEngineTest, MigratoryReadsAreFollowedByWrites)
{
    // Force migratory-only data behaviour and verify the
    // read-modify-write pattern: every migratory block read is
    // followed by at least one write to the same block.
    behavior.pInstr = 0.0;
    behavior.pSystem = 0.0;
    behavior.wPrivate = 0.0;
    behavior.wSharedRead = 0.0;
    behavior.wSharedWrite = 0.0;
    behavior.wMigratory = 1.0;
    behavior.wLockAttempt = 0.0;
    BehaviorSamplers samplers(behavior);
    ProcessEngine proc(0, behavior, samplers, space, shared, rng);
    std::uint64_t last_read_block = 0;
    bool awaiting_write = false;
    int writes_seen = 0;
    for (int i = 0; i < 4000; ++i) {
        const auto rec = proc.step(0);
        if (rec.isRead()) {
            last_read_block = rec.addr / 16;
            awaiting_write = true;
        } else if (awaiting_write && rec.isWrite()) {
            // The write burst targets the read block (or the
            // object's second block).
            const std::uint64_t wb = rec.addr / 16;
            EXPECT_LE(wb - last_read_block, 1u);
            ++writes_seen;
            awaiting_write = false;
        }
    }
    EXPECT_GT(writes_seen, 100);
}

TEST_F(ProcessEngineTest, SpinningHoldsUntilLockFrees)
{
    behavior.pInstr = 0.0;
    behavior.pSystem = 0.0;
    behavior.wPrivate = 0.0;
    behavior.wSharedRead = 0.0;
    behavior.wSharedWrite = 0.0;
    behavior.wMigratory = 0.0;
    behavior.wLockAttempt = 1.0;
    behavior.pSpinInstr = 0.0;
    behavior.nHotLocks = 1;
    behavior.hotLockFrac = 1.0;

    // Hold lock 0 on behalf of a phantom process.
    shared.locks.acquire(0, 99);

    BehaviorSamplers samplers(behavior);
    ProcessEngine proc(0, behavior, samplers, space, shared, rng);
    // First step initiates the attempt; afterwards the process spins.
    for (int i = 0; i < 50; ++i) {
        const auto rec = proc.step(0);
        EXPECT_TRUE(rec.isRead());
        EXPECT_TRUE(rec.isLockTest());
        EXPECT_EQ(rec.addr, shared.locks[0].addr);
    }
    EXPECT_TRUE(proc.spinning());

    // Release: the spinner observes free, then test-and-sets.
    shared.locks.release(0);
    const auto observe = proc.step(0);
    EXPECT_TRUE(observe.isLockTest());
    const auto tset = proc.step(0);
    EXPECT_TRUE(tset.isWrite());
    EXPECT_TRUE(tset.isLockWrite());
    EXPECT_TRUE(shared.locks[0].held);
    EXPECT_EQ(shared.locks[0].owner, 0);
    EXPECT_FALSE(proc.spinning());
}

TEST_F(ProcessEngineTest, CriticalSectionEndsWithRelease)
{
    behavior.pInstr = 0.0;
    behavior.pSystem = 0.0;
    behavior.wLockAttempt = 1.0;
    behavior.wPrivate = 0.0;
    behavior.wSharedRead = 0.0;
    behavior.wSharedWrite = 0.0;
    behavior.wMigratory = 0.0;
    behavior.nHotLocks = 1;
    behavior.hotLockFrac = 1.0;
    behavior.critMin = 5;
    behavior.critMax = 5;
    BehaviorSamplers samplers(behavior);
    ProcessEngine proc(0, behavior, samplers, space, shared, rng);

    // Acquire: test read then test-and-set write.
    EXPECT_TRUE(proc.step(0).isLockTest());
    EXPECT_TRUE(proc.step(0).isLockWrite());
    ASSERT_TRUE(shared.locks[0].held);
    // Five critical-section references, then the release write.
    for (int i = 0; i < 5; ++i) {
        const auto rec = proc.step(0);
        EXPECT_FALSE(rec.isLockWrite());
    }
    const auto release = proc.step(0);
    EXPECT_TRUE(release.isLockWrite());
    EXPECT_FALSE(shared.locks[0].held);
}

TEST_F(ProcessEngineTest, RacingSpinnersNeverDoubleAcquire)
{
    behavior.pInstr = 0.0;
    behavior.pSystem = 0.0;
    behavior.wLockAttempt = 1.0;
    behavior.wPrivate = 0.0;
    behavior.wSharedRead = 0.0;
    behavior.wSharedWrite = 0.0;
    behavior.wMigratory = 0.0;
    behavior.pSpinInstr = 0.0;
    behavior.nHotLocks = 1;
    behavior.hotLockFrac = 1.0;
    behavior.critMin = 3;
    behavior.critMax = 9;
    BehaviorSamplers samplers(behavior);
    ProcessEngine a(0, behavior, samplers, space, shared, rng);
    ProcessEngine b(1, behavior, samplers, space, shared, rng);
    for (int i = 0; i < 20'000; ++i) {
        a.step(0);
        b.step(1);
        // The LockSet asserts on double acquire/release internally;
        // also check owner consistency from outside.
        if (shared.locks[0].held) {
            EXPECT_LT(shared.locks[0].owner, 2);
        }
    }
    EXPECT_GT(shared.locks.totalAcquisitions(), 100u);
}

} // namespace
