/**
 * @file
 * Multi-configuration collapse: randomized differential suite.
 *
 * MultiLimitedEngine claims each of its lanes is bit-identical to an
 * independent LimitedEngine at that pointer count — over any stream,
 * at any strip size, through every replay path.  This suite holds it
 * to that with full EngineResults equality (every counter and
 * histogram, not just a digest) on randomized workloads the golden
 * tables have never seen: co-resident multi + independent engines at
 * adversarial strip sizes, collapsed fused groups through a 4-worker
 * SweepRunner, collapsed groups over streamed store spans, and the
 * analysis layer's multiConfig on/off and finite-dir-cache fallback
 * paths.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/evaluation.hh"
#include "coherence/inval_engine.hh"
#include "coherence/limited_engine.hh"
#include "coherence/multi_limited_engine.hh"
#include "directory/dir_cache.hh"
#include "gen/workload.hh"
#include "gen/workloads.hh"
#include "sim/simulator.hh"
#include "sim/sweep.hh"
#include "sim/trace_repo.hh"
#include "trace/prepared.hh"
#include "trace/store.hh"
#include "trace/trace.hh"

#include "golden_data.hh"

namespace
{

using namespace dirsim;
using golden::CacheDirGuard;

const std::vector<unsigned> kLanes = {1, 2, 4, 8};

/**
 * Three randomized workloads off the golden grid: preset behaviours
 * reseeded and rescaled, plus a generic 8-CPU scaled one, so the
 * differential covers unit counts and sharing mixes the recorded
 * digests never touch.
 */
std::vector<gen::WorkloadConfig>
randomWorkloads()
{
    std::vector<gen::WorkloadConfig> cfgs;
    gen::WorkloadConfig pops = gen::popsConfig();
    pops.name = "rnd-pops";
    pops.totalRefs = 120'000;
    pops.seed = 0xA11CE5EEDULL;
    cfgs.push_back(pops);
    gen::WorkloadConfig thor = gen::thorConfig();
    thor.name = "rnd-thor";
    thor.totalRefs = 90'000;
    thor.seed = 0xB0BACAFEULL;
    cfgs.push_back(thor);
    gen::WorkloadConfig wide = gen::scaledConfig(8, 100'000);
    wide.name = "rnd-wide8";
    wide.seed = 0xD15C0B47ULL;
    cfgs.push_back(wide);
    return cfgs;
}

std::shared_ptr<const trace::PreparedTrace>
prepare(const gen::WorkloadConfig &cfg)
{
    return std::make_shared<const trace::PreparedTrace>(
        trace::PreparedTrace::build(gen::generateTrace(cfg),
                                    trace::PrepareOptions{}));
}

/** Independent LimitedEngine baseline for one workload, per lane. */
std::vector<coherence::EngineResults>
independentBaseline(const gen::WorkloadConfig &cfg,
                    const trace::PreparedTrace &prepared)
{
    sim::Simulator simulator{sim::SimConfig{}};
    for (const unsigned p : kLanes)
        simulator.addEngine(std::make_unique<coherence::LimitedEngine>(
            cfg.space.nProcesses, p));
    simulator.run(prepared);
    std::vector<coherence::EngineResults> results;
    for (std::size_t e = 0; e < simulator.numEngines(); ++e)
        results.push_back(simulator.engine(e).results());
    return results;
}

/**
 * Multi + independents co-resident in one simulator at strip sizes 1
 * (maximum interleaving), 7 (never divides a span) and 64K (the
 * default): every lane's EngineResults must equal its independent
 * twin's, field for field.
 */
TEST(MultiConfigDifferential, RandomWorkloadsAcrossStripSizes)
{
    for (const gen::WorkloadConfig &cfg : randomWorkloads()) {
        const auto prepared = prepare(cfg);
        for (const std::size_t strip :
             {std::size_t(1), std::size_t(7), std::size_t(64 * 1024)}) {
            sim::SimConfig sc;
            sc.replayStripRefs = strip;
            sim::Simulator simulator(sc);
            simulator.addEngine(
                std::make_unique<coherence::MultiLimitedEngine>(
                    cfg.space.nProcesses, kLanes));
            for (const unsigned p : kLanes)
                simulator.addEngine(
                    std::make_unique<coherence::LimitedEngine>(
                        cfg.space.nProcesses, p));
            simulator.run(*prepared);
            const auto &multi =
                static_cast<const coherence::MultiLimitedEngine &>(
                    simulator.engine(0));
            ASSERT_EQ(multi.numLanes(), kLanes.size());
            for (std::size_t l = 0; l < kLanes.size(); ++l) {
                EXPECT_TRUE(multi.laneResults(l) ==
                            simulator.engine(1 + l).results())
                    << "workload '" << cfg.name << "' strip " << strip
                    << " lane dir" << kLanes[l] << "nb diverged";
            }
        }
    }
}

/**
 * Collapsed fused groups through a 4-worker SweepRunner: each
 * workload's DiriNB points (multiPointers hints, shared fuseKey, plus
 * an unhinted inval rider in the same group) collapse to one shared
 * table — plannedMultiLanes() says so — and every point's result
 * equals its independent serial baseline.
 */
TEST(MultiConfigDifferential, FusedParallelSweepCollapses)
{
    const std::vector<gen::WorkloadConfig> cfgs = randomWorkloads();
    std::vector<std::vector<coherence::EngineResults>> baselines;
    sim::SweepRunner runner(4);
    for (const gen::WorkloadConfig &cfg : cfgs) {
        const auto prepared = prepare(cfg);
        baselines.push_back(independentBaseline(cfg, *prepared));
        const unsigned units = cfg.space.nProcesses;
        for (const unsigned p : kLanes) {
            sim::SweepPoint point;
            point.name = cfg.name + "/dir" + std::to_string(p) + "nb";
            point.fuseKey = "multi/" + cfg.name;
            point.multiPointers = p;
            point.multiUnits = units;
            point.engines = [units, p] {
                std::vector<
                    std::unique_ptr<coherence::CoherenceEngine>>
                    engines;
                engines.push_back(
                    std::make_unique<coherence::LimitedEngine>(units,
                                                               p));
                return engines;
            };
            point.prepared = prepared;
            runner.add(std::move(point));
        }
        // An unhinted rider in the same fused group: the collapse
        // must leave it on its own engine.
        sim::SweepPoint rider;
        rider.name = cfg.name + "/inval";
        rider.fuseKey = "multi/" + cfg.name;
        rider.engines = [units] {
            std::vector<std::unique_ptr<coherence::CoherenceEngine>>
                engines;
            coherence::InvalEngineConfig ic;
            ic.nUnits = units;
            engines.push_back(
                std::make_unique<coherence::InvalEngine>(ic));
            return engines;
        };
        rider.prepared = prepared;
        runner.add(std::move(rider));
    }

    const std::vector<std::size_t> groups = runner.plannedGroupSizes();
    ASSERT_EQ(groups.size(), cfgs.size());
    for (const std::size_t size : groups)
        EXPECT_EQ(size, kLanes.size() + 1);
    const std::vector<std::size_t> lanes = runner.plannedMultiLanes();
    ASSERT_EQ(lanes.size(), cfgs.size());
    for (const std::size_t n : lanes)
        EXPECT_EQ(n, kLanes.size());

    const std::vector<sim::SweepPointResult> results = runner.run();
    ASSERT_EQ(results.size(), cfgs.size() * (kLanes.size() + 1));
    for (std::size_t w = 0; w < cfgs.size(); ++w) {
        for (std::size_t l = 0; l < kLanes.size(); ++l) {
            const sim::SweepPointResult &res =
                results[w * (kLanes.size() + 1) + l];
            ASSERT_EQ(res.engines.size(), 1u) << res.name;
            EXPECT_TRUE(res.engines[0] == baselines[w][l])
                << "point '" << res.name
                << "' diverged through the collapsed fused sweep";
        }
        const sim::SweepPointResult &inval =
            results[w * (kLanes.size() + 1) + kLanes.size()];
        ASSERT_EQ(inval.engines.size(), 1u) << inval.name;
        EXPECT_EQ(inval.engines[0].name, "inval");
    }
}

/**
 * Collapsed groups over the out-of-core path: small chunks force many
 * span boundaries inside every strip walk of the shared table, and
 * each lane still equals its independent in-memory baseline.
 */
TEST(MultiConfigDifferential, StreamedStoreSpansMatch)
{
    CacheDirGuard dir("multicfg");
    sim::TraceRepository repo(1);
    sim::DiskCacheConfig disk;
    disk.dir = dir.path;
    disk.chunkRefs = 8 * 1024;
    repo.setDiskCache(disk);

    const std::vector<gen::WorkloadConfig> cfgs = randomWorkloads();
    std::vector<std::vector<coherence::EngineResults>> baselines;
    sim::SweepRunner runner(4);
    for (const gen::WorkloadConfig &cfg : cfgs) {
        baselines.push_back(
            independentBaseline(cfg, *repo.get(cfg)));
        const std::shared_ptr<const trace::StoredTrace> stored =
            repo.getStored(cfg);
        ASSERT_GT(stored->numChunks(), 1u);
        const unsigned units = cfg.space.nProcesses;
        for (const unsigned p : kLanes) {
            sim::SweepPoint point;
            point.name = cfg.name + "/dir" + std::to_string(p) + "nb";
            point.fuseKey = "stream/" + cfg.name;
            point.multiPointers = p;
            point.multiUnits = units;
            point.engines = [units, p] {
                std::vector<
                    std::unique_ptr<coherence::CoherenceEngine>>
                    engines;
                engines.push_back(
                    std::make_unique<coherence::LimitedEngine>(units,
                                                               p));
                return engines;
            };
            point.spans = [stored] { return stored->spanCursor(); };
            runner.add(std::move(point));
        }
    }

    const std::vector<std::size_t> lanes = runner.plannedMultiLanes();
    ASSERT_EQ(lanes.size(), cfgs.size());
    for (const std::size_t n : lanes)
        EXPECT_EQ(n, kLanes.size());

    const std::vector<sim::SweepPointResult> results = runner.run();
    ASSERT_EQ(results.size(), cfgs.size() * kLanes.size());
    for (std::size_t w = 0; w < cfgs.size(); ++w) {
        for (std::size_t l = 0; l < kLanes.size(); ++l) {
            const sim::SweepPointResult &res =
                results[w * kLanes.size() + l];
            ASSERT_EQ(res.engines.size(), 1u) << res.name;
            EXPECT_TRUE(res.engines[0] == baselines[w][l])
                << "point '" << res.name
                << "' diverged over streamed store spans";
        }
    }
}

/**
 * The analysis layer's A/B hatch: limitedSweep with multiConfig on
 * (the default, collapsed) equals multiConfig off (independent
 * engines), serial and through a 4-job parallel sweep.
 */
TEST(MultiConfigDifferential, AnalysisMultiConfigOnOffIdentical)
{
    std::vector<gen::WorkloadConfig> cfgs = {randomWorkloads()[0]};

    analysis::EvalOptions off;
    off.multiConfig = false;
    const auto independent =
        analysis::limitedSweep(cfgs, kLanes, off);

    analysis::EvalOptions on;
    on.multiConfig = true;
    const auto collapsed = analysis::limitedSweep(cfgs, kLanes, on);

    analysis::EvalOptions parallel;
    parallel.multiConfig = true;
    parallel.jobs = 4;
    const auto collapsedParallel =
        analysis::limitedSweep(cfgs, kLanes, parallel);

    ASSERT_EQ(independent.size(), kLanes.size());
    ASSERT_EQ(collapsed.size(), kLanes.size());
    ASSERT_EQ(collapsedParallel.size(), kLanes.size());
    for (std::size_t l = 0; l < kLanes.size(); ++l) {
        EXPECT_TRUE(collapsed[l] == independent[l])
            << "serial collapse diverged at dir" << kLanes[l] << "nb";
        EXPECT_TRUE(collapsedParallel[l] == independent[l])
            << "parallel collapse diverged at dir" << kLanes[l]
            << "nb";
    }
}

/**
 * Finite directory caches force the fallback (eviction state is
 * per-configuration): with a DirCacheConfig set, multiConfig on and
 * off must be identical because the collapse never engages.
 */
TEST(MultiConfigDifferential, DirCacheFallsBackIdentically)
{
    std::vector<gen::WorkloadConfig> cfgs = {randomWorkloads()[1]};
    directory::DirCacheConfig dc;
    dc.enabled = true;
    dc.entries = 256;
    dc.associativity = 4;

    analysis::EvalOptions on;
    on.multiConfig = true;
    on.dirCache = dc;
    analysis::EvalOptions off;
    off.multiConfig = false;
    off.dirCache = dc;

    const auto a = analysis::limitedSweep(cfgs, kLanes, on);
    const auto b = analysis::limitedSweep(cfgs, kLanes, off);
    ASSERT_EQ(a.size(), kLanes.size());
    for (std::size_t l = 0; l < kLanes.size(); ++l) {
        EXPECT_TRUE(a[l] == b[l])
            << "dir-cache fallback diverged at dir" << kLanes[l]
            << "nb";
        EXPECT_GT(a[l].dirCacheEvictions + a[l].events.totalRefs(),
                  0u);
    }
}

} // namespace
