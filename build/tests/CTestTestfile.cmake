# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/bus_test[1]_include.cmake")
include("/root/repo/build/tests/directory_test[1]_include.cmake")
include("/root/repo/build/tests/coherence_test[1]_include.cmake")
include("/root/repo/build/tests/protocols_test[1]_include.cmake")
include("/root/repo/build/tests/modelcheck_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/calibration_test[1]_include.cmake")
