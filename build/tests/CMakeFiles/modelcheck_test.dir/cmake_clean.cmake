file(REMOVE_RECURSE
  "CMakeFiles/modelcheck_test.dir/modelcheck_test.cc.o"
  "CMakeFiles/modelcheck_test.dir/modelcheck_test.cc.o.d"
  "modelcheck_test"
  "modelcheck_test.pdb"
  "modelcheck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modelcheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
