# Empty dependencies file for bench_table2_bus_costs.
# This may be replaced when dependencies are built.
