file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_per_transaction.dir/bench_fig5_per_transaction.cc.o"
  "CMakeFiles/bench_fig5_per_transaction.dir/bench_fig5_per_transaction.cc.o.d"
  "bench_fig5_per_transaction"
  "bench_fig5_per_transaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_per_transaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
