# Empty compiler generated dependencies file for bench_fig4_breakdown_fractions.
# This may be replaced when dependencies are built.
