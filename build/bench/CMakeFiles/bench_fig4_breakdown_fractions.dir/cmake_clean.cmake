file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_breakdown_fractions.dir/bench_fig4_breakdown_fractions.cc.o"
  "CMakeFiles/bench_fig4_breakdown_fractions.dir/bench_fig4_breakdown_fractions.cc.o.d"
  "bench_fig4_breakdown_fractions"
  "bench_fig4_breakdown_fractions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_breakdown_fractions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
