# Empty compiler generated dependencies file for bench_fig1_inval_histogram.
# This may be replaced when dependencies are built.
