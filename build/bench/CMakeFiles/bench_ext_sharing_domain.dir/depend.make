# Empty dependencies file for bench_ext_sharing_domain.
# This may be replaced when dependencies are built.
