file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_sharing_domain.dir/bench_ext_sharing_domain.cc.o"
  "CMakeFiles/bench_ext_sharing_domain.dir/bench_ext_sharing_domain.cc.o.d"
  "bench_ext_sharing_domain"
  "bench_ext_sharing_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_sharing_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
