# Empty dependencies file for bench_table4_events.
# This may be replaced when dependencies are built.
