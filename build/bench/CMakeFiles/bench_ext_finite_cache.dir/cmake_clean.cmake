file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_finite_cache.dir/bench_ext_finite_cache.cc.o"
  "CMakeFiles/bench_ext_finite_cache.dir/bench_ext_finite_cache.cc.o.d"
  "bench_ext_finite_cache"
  "bench_ext_finite_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_finite_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
