# Empty dependencies file for bench_ext_finite_cache.
# This may be replaced when dependencies are built.
