# Empty dependencies file for bench_sec5_system_limit.
# This may be replaced when dependencies are built.
