file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_system_limit.dir/bench_sec5_system_limit.cc.o"
  "CMakeFiles/bench_sec5_system_limit.dir/bench_sec5_system_limit.cc.o.d"
  "bench_sec5_system_limit"
  "bench_sec5_system_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_system_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
