file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_network.dir/bench_ext_network.cc.o"
  "CMakeFiles/bench_ext_network.dir/bench_ext_network.cc.o.d"
  "bench_ext_network"
  "bench_ext_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
