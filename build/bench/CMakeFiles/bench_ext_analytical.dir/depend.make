# Empty dependencies file for bench_ext_analytical.
# This may be replaced when dependencies are built.
