file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_analytical.dir/bench_ext_analytical.cc.o"
  "CMakeFiles/bench_ext_analytical.dir/bench_ext_analytical.cc.o.d"
  "bench_ext_analytical"
  "bench_ext_analytical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_analytical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
