# Empty compiler generated dependencies file for bench_ext_home_locality.
# This may be replaced when dependencies are built.
