file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_home_locality.dir/bench_ext_home_locality.cc.o"
  "CMakeFiles/bench_ext_home_locality.dir/bench_ext_home_locality.cc.o.d"
  "bench_ext_home_locality"
  "bench_ext_home_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_home_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
