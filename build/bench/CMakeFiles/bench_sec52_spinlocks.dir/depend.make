# Empty dependencies file for bench_sec52_spinlocks.
# This may be replaced when dependencies are built.
