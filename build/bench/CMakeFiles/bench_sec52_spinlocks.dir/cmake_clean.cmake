file(REMOVE_RECURSE
  "CMakeFiles/bench_sec52_spinlocks.dir/bench_sec52_spinlocks.cc.o"
  "CMakeFiles/bench_sec52_spinlocks.dir/bench_sec52_spinlocks.cc.o.d"
  "bench_sec52_spinlocks"
  "bench_sec52_spinlocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec52_spinlocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
