# Empty compiler generated dependencies file for bench_fig2_bus_cycles.
# This may be replaced when dependencies are built.
