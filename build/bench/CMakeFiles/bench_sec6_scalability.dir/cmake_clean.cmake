file(REMOVE_RECURSE
  "CMakeFiles/bench_sec6_scalability.dir/bench_sec6_scalability.cc.o"
  "CMakeFiles/bench_sec6_scalability.dir/bench_sec6_scalability.cc.o.d"
  "bench_sec6_scalability"
  "bench_sec6_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
