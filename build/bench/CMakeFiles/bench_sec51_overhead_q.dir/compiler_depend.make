# Empty compiler generated dependencies file for bench_sec51_overhead_q.
# This may be replaced when dependencies are built.
