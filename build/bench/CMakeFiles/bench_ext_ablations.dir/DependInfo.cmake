
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ext_ablations.cc" "bench/CMakeFiles/bench_ext_ablations.dir/bench_ext_ablations.cc.o" "gcc" "bench/CMakeFiles/bench_ext_ablations.dir/bench_ext_ablations.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/dirsim_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dirsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/dirsim_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/directory/CMakeFiles/dirsim_directory.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/dirsim_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dirsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/dirsim_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dirsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dirsim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
