file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_berkeley.dir/bench_sec5_berkeley.cc.o"
  "CMakeFiles/bench_sec5_berkeley.dir/bench_sec5_berkeley.cc.o.d"
  "bench_sec5_berkeley"
  "bench_sec5_berkeley.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_berkeley.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
