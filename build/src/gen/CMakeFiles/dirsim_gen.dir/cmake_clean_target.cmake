file(REMOVE_RECURSE
  "libdirsim_gen.a"
)
