# Empty compiler generated dependencies file for dirsim_gen.
# This may be replaced when dependencies are built.
