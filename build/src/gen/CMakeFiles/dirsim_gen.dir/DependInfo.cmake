
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/address_space.cc" "src/gen/CMakeFiles/dirsim_gen.dir/address_space.cc.o" "gcc" "src/gen/CMakeFiles/dirsim_gen.dir/address_space.cc.o.d"
  "/root/repo/src/gen/lock_set.cc" "src/gen/CMakeFiles/dirsim_gen.dir/lock_set.cc.o" "gcc" "src/gen/CMakeFiles/dirsim_gen.dir/lock_set.cc.o.d"
  "/root/repo/src/gen/process.cc" "src/gen/CMakeFiles/dirsim_gen.dir/process.cc.o" "gcc" "src/gen/CMakeFiles/dirsim_gen.dir/process.cc.o.d"
  "/root/repo/src/gen/rng.cc" "src/gen/CMakeFiles/dirsim_gen.dir/rng.cc.o" "gcc" "src/gen/CMakeFiles/dirsim_gen.dir/rng.cc.o.d"
  "/root/repo/src/gen/workload.cc" "src/gen/CMakeFiles/dirsim_gen.dir/workload.cc.o" "gcc" "src/gen/CMakeFiles/dirsim_gen.dir/workload.cc.o.d"
  "/root/repo/src/gen/workloads.cc" "src/gen/CMakeFiles/dirsim_gen.dir/workloads.cc.o" "gcc" "src/gen/CMakeFiles/dirsim_gen.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/dirsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dirsim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
