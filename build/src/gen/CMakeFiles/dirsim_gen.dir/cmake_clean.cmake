file(REMOVE_RECURSE
  "CMakeFiles/dirsim_gen.dir/address_space.cc.o"
  "CMakeFiles/dirsim_gen.dir/address_space.cc.o.d"
  "CMakeFiles/dirsim_gen.dir/lock_set.cc.o"
  "CMakeFiles/dirsim_gen.dir/lock_set.cc.o.d"
  "CMakeFiles/dirsim_gen.dir/process.cc.o"
  "CMakeFiles/dirsim_gen.dir/process.cc.o.d"
  "CMakeFiles/dirsim_gen.dir/rng.cc.o"
  "CMakeFiles/dirsim_gen.dir/rng.cc.o.d"
  "CMakeFiles/dirsim_gen.dir/workload.cc.o"
  "CMakeFiles/dirsim_gen.dir/workload.cc.o.d"
  "CMakeFiles/dirsim_gen.dir/workloads.cc.o"
  "CMakeFiles/dirsim_gen.dir/workloads.cc.o.d"
  "libdirsim_gen.a"
  "libdirsim_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dirsim_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
