
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cost_model.cc" "src/sim/CMakeFiles/dirsim_sim.dir/cost_model.cc.o" "gcc" "src/sim/CMakeFiles/dirsim_sim.dir/cost_model.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/sim/CMakeFiles/dirsim_sim.dir/simulator.cc.o" "gcc" "src/sim/CMakeFiles/dirsim_sim.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coherence/CMakeFiles/dirsim_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/dirsim_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dirsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/directory/CMakeFiles/dirsim_directory.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dirsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dirsim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
