# Empty dependencies file for dirsim_stats.
# This may be replaced when dependencies are built.
