file(REMOVE_RECURSE
  "CMakeFiles/dirsim_stats.dir/csv.cc.o"
  "CMakeFiles/dirsim_stats.dir/csv.cc.o.d"
  "CMakeFiles/dirsim_stats.dir/distribution.cc.o"
  "CMakeFiles/dirsim_stats.dir/distribution.cc.o.d"
  "CMakeFiles/dirsim_stats.dir/histogram.cc.o"
  "CMakeFiles/dirsim_stats.dir/histogram.cc.o.d"
  "CMakeFiles/dirsim_stats.dir/table.cc.o"
  "CMakeFiles/dirsim_stats.dir/table.cc.o.d"
  "libdirsim_stats.a"
  "libdirsim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dirsim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
