file(REMOVE_RECURSE
  "libdirsim_stats.a"
)
