
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/analytical.cc" "src/analysis/CMakeFiles/dirsim_analysis.dir/analytical.cc.o" "gcc" "src/analysis/CMakeFiles/dirsim_analysis.dir/analytical.cc.o.d"
  "/root/repo/src/analysis/evaluation.cc" "src/analysis/CMakeFiles/dirsim_analysis.dir/evaluation.cc.o" "gcc" "src/analysis/CMakeFiles/dirsim_analysis.dir/evaluation.cc.o.d"
  "/root/repo/src/analysis/exhibits.cc" "src/analysis/CMakeFiles/dirsim_analysis.dir/exhibits.cc.o" "gcc" "src/analysis/CMakeFiles/dirsim_analysis.dir/exhibits.cc.o.d"
  "/root/repo/src/analysis/extensions.cc" "src/analysis/CMakeFiles/dirsim_analysis.dir/extensions.cc.o" "gcc" "src/analysis/CMakeFiles/dirsim_analysis.dir/extensions.cc.o.d"
  "/root/repo/src/analysis/system_perf.cc" "src/analysis/CMakeFiles/dirsim_analysis.dir/system_perf.cc.o" "gcc" "src/analysis/CMakeFiles/dirsim_analysis.dir/system_perf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dirsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/dirsim_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/directory/CMakeFiles/dirsim_directory.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/dirsim_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dirsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/dirsim_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dirsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dirsim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
