# Empty dependencies file for dirsim_analysis.
# This may be replaced when dependencies are built.
