file(REMOVE_RECURSE
  "libdirsim_analysis.a"
)
