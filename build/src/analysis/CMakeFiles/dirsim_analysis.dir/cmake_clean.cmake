file(REMOVE_RECURSE
  "CMakeFiles/dirsim_analysis.dir/analytical.cc.o"
  "CMakeFiles/dirsim_analysis.dir/analytical.cc.o.d"
  "CMakeFiles/dirsim_analysis.dir/evaluation.cc.o"
  "CMakeFiles/dirsim_analysis.dir/evaluation.cc.o.d"
  "CMakeFiles/dirsim_analysis.dir/exhibits.cc.o"
  "CMakeFiles/dirsim_analysis.dir/exhibits.cc.o.d"
  "CMakeFiles/dirsim_analysis.dir/extensions.cc.o"
  "CMakeFiles/dirsim_analysis.dir/extensions.cc.o.d"
  "CMakeFiles/dirsim_analysis.dir/system_perf.cc.o"
  "CMakeFiles/dirsim_analysis.dir/system_perf.cc.o.d"
  "libdirsim_analysis.a"
  "libdirsim_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dirsim_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
