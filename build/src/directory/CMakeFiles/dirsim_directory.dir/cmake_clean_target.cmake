file(REMOVE_RECURSE
  "libdirsim_directory.a"
)
