
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/directory/coarse_vector.cc" "src/directory/CMakeFiles/dirsim_directory.dir/coarse_vector.cc.o" "gcc" "src/directory/CMakeFiles/dirsim_directory.dir/coarse_vector.cc.o.d"
  "/root/repo/src/directory/full_map.cc" "src/directory/CMakeFiles/dirsim_directory.dir/full_map.cc.o" "gcc" "src/directory/CMakeFiles/dirsim_directory.dir/full_map.cc.o.d"
  "/root/repo/src/directory/limited_pointer.cc" "src/directory/CMakeFiles/dirsim_directory.dir/limited_pointer.cc.o" "gcc" "src/directory/CMakeFiles/dirsim_directory.dir/limited_pointer.cc.o.d"
  "/root/repo/src/directory/storage.cc" "src/directory/CMakeFiles/dirsim_directory.dir/storage.cc.o" "gcc" "src/directory/CMakeFiles/dirsim_directory.dir/storage.cc.o.d"
  "/root/repo/src/directory/two_bit.cc" "src/directory/CMakeFiles/dirsim_directory.dir/two_bit.cc.o" "gcc" "src/directory/CMakeFiles/dirsim_directory.dir/two_bit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/dirsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dirsim_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
