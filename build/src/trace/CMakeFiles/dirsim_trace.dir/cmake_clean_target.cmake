file(REMOVE_RECURSE
  "libdirsim_trace.a"
)
