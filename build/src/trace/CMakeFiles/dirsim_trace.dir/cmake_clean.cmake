file(REMOVE_RECURSE
  "CMakeFiles/dirsim_trace.dir/characterize.cc.o"
  "CMakeFiles/dirsim_trace.dir/characterize.cc.o.d"
  "CMakeFiles/dirsim_trace.dir/filter.cc.o"
  "CMakeFiles/dirsim_trace.dir/filter.cc.o.d"
  "CMakeFiles/dirsim_trace.dir/io.cc.o"
  "CMakeFiles/dirsim_trace.dir/io.cc.o.d"
  "CMakeFiles/dirsim_trace.dir/trace.cc.o"
  "CMakeFiles/dirsim_trace.dir/trace.cc.o.d"
  "libdirsim_trace.a"
  "libdirsim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dirsim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
