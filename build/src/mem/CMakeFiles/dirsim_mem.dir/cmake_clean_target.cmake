file(REMOVE_RECURSE
  "libdirsim_mem.a"
)
