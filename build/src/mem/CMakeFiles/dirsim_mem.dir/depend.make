# Empty dependencies file for dirsim_mem.
# This may be replaced when dependencies are built.
