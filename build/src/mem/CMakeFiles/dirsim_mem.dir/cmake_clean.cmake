file(REMOVE_RECURSE
  "CMakeFiles/dirsim_mem.dir/set_assoc.cc.o"
  "CMakeFiles/dirsim_mem.dir/set_assoc.cc.o.d"
  "libdirsim_mem.a"
  "libdirsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dirsim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
