file(REMOVE_RECURSE
  "CMakeFiles/dirsim_coherence.dir/berkeley_engine.cc.o"
  "CMakeFiles/dirsim_coherence.dir/berkeley_engine.cc.o.d"
  "CMakeFiles/dirsim_coherence.dir/dragon_engine.cc.o"
  "CMakeFiles/dirsim_coherence.dir/dragon_engine.cc.o.d"
  "CMakeFiles/dirsim_coherence.dir/events.cc.o"
  "CMakeFiles/dirsim_coherence.dir/events.cc.o.d"
  "CMakeFiles/dirsim_coherence.dir/inval_engine.cc.o"
  "CMakeFiles/dirsim_coherence.dir/inval_engine.cc.o.d"
  "CMakeFiles/dirsim_coherence.dir/limited_engine.cc.o"
  "CMakeFiles/dirsim_coherence.dir/limited_engine.cc.o.d"
  "CMakeFiles/dirsim_coherence.dir/results.cc.o"
  "CMakeFiles/dirsim_coherence.dir/results.cc.o.d"
  "CMakeFiles/dirsim_coherence.dir/wti_engine.cc.o"
  "CMakeFiles/dirsim_coherence.dir/wti_engine.cc.o.d"
  "libdirsim_coherence.a"
  "libdirsim_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dirsim_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
