
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coherence/berkeley_engine.cc" "src/coherence/CMakeFiles/dirsim_coherence.dir/berkeley_engine.cc.o" "gcc" "src/coherence/CMakeFiles/dirsim_coherence.dir/berkeley_engine.cc.o.d"
  "/root/repo/src/coherence/dragon_engine.cc" "src/coherence/CMakeFiles/dirsim_coherence.dir/dragon_engine.cc.o" "gcc" "src/coherence/CMakeFiles/dirsim_coherence.dir/dragon_engine.cc.o.d"
  "/root/repo/src/coherence/events.cc" "src/coherence/CMakeFiles/dirsim_coherence.dir/events.cc.o" "gcc" "src/coherence/CMakeFiles/dirsim_coherence.dir/events.cc.o.d"
  "/root/repo/src/coherence/inval_engine.cc" "src/coherence/CMakeFiles/dirsim_coherence.dir/inval_engine.cc.o" "gcc" "src/coherence/CMakeFiles/dirsim_coherence.dir/inval_engine.cc.o.d"
  "/root/repo/src/coherence/limited_engine.cc" "src/coherence/CMakeFiles/dirsim_coherence.dir/limited_engine.cc.o" "gcc" "src/coherence/CMakeFiles/dirsim_coherence.dir/limited_engine.cc.o.d"
  "/root/repo/src/coherence/results.cc" "src/coherence/CMakeFiles/dirsim_coherence.dir/results.cc.o" "gcc" "src/coherence/CMakeFiles/dirsim_coherence.dir/results.cc.o.d"
  "/root/repo/src/coherence/wti_engine.cc" "src/coherence/CMakeFiles/dirsim_coherence.dir/wti_engine.cc.o" "gcc" "src/coherence/CMakeFiles/dirsim_coherence.dir/wti_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/dirsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dirsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dirsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/directory/CMakeFiles/dirsim_directory.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
