file(REMOVE_RECURSE
  "libdirsim_coherence.a"
)
