# Empty dependencies file for dirsim_coherence.
# This may be replaced when dependencies are built.
