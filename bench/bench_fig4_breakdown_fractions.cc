/**
 * @file
 * Reproduces Figure 4: the Table 5 breakdown normalised to each
 * scheme's total — e.g. WTI dominated by write-throughs, Dragon
 * splitting roughly evenly between cache loading and write updates,
 * and Dir0B's directory-access share being small (the paper's
 * argument that the directory is not a bottleneck).
 */

#include "bench_common.hh"

namespace
{

using namespace dirsim;

void
BM_BreakdownFractions(benchmark::State &state)
{
    const auto &eval = bench::standardEval();
    for (auto _ : state) {
        const auto table = analysis::figure4(eval);
        benchmark::DoNotOptimize(table.rows());
    }
}
BENCHMARK(BM_BreakdownFractions);

} // namespace

int
main(int argc, char **argv)
{
    return dirsim::bench::runBench(
        argc, argv,
        dirsim::analysis::figure4(dirsim::bench::standardEval())
            .toString());
}
