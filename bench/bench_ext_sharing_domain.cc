/**
 * @file
 * Extension C: process- versus processor-based sharing — the check
 * Section 4.4 reports qualitatively ("the numbers were not
 * significantly different") made quantitative, with process migration
 * enabled so the two domains can actually diverge.
 */

#include "bench_common.hh"

#include "analysis/extensions.hh"

namespace
{

using namespace dirsim;

void
BM_BothDomains(benchmark::State &state)
{
    for (auto _ : state) {
        const auto cmp = analysis::sharingDomainStudy(0.02);
        benchmark::DoNotOptimize(
            cmp.byProcessor.average.inval.events.totalRefs());
    }
}
BENCHMARK(BM_BothDomains);

} // namespace

int
main(int argc, char **argv)
{
    const auto cmp = dirsim::analysis::sharingDomainStudy(0.02);
    return dirsim::bench::runBench(
        argc, argv,
        dirsim::analysis::renderSharingDomain(cmp).toString());
}
