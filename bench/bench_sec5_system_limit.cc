/**
 * @file
 * Reproduces the Section 5 closing estimate: how many effective
 * processors a single shared bus supports under each protocol.  The
 * paper's arithmetic — ~0.03 bus cycles per reference, 10-MIPS
 * processors, a 100ns bus — yields "a maximum performance of 15
 * effective processors", the number that motivates moving to
 * directory schemes on scalable interconnects.  The queueing column
 * shows how contention erodes throughput before the hard ceiling.
 */

#include "bench_common.hh"

#include "analysis/system_perf.hh"

namespace
{

using namespace dirsim;

std::string
exhibit()
{
    std::vector<analysis::SystemEstimate> estimates;
    for (const auto &sc :
         analysis::schemeCosts(bench::standardEval().average)) {
        estimates.push_back(analysis::systemEstimate(
            sc.pipelined, analysis::MachineParams{}));
    }
    return analysis::renderSystemLimits(estimates, {4, 8, 16, 32})
        .toString();
}

void
BM_SystemEstimates(benchmark::State &state)
{
    const auto costs =
        analysis::schemeCosts(bench::standardEval().average);
    for (auto _ : state) {
        double acc = 0.0;
        for (const auto &sc : costs) {
            const auto est = analysis::systemEstimate(
                sc.pipelined, analysis::MachineParams{});
            acc += est.effectiveProcessorsAt(16);
        }
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_SystemEstimates);

} // namespace

int
main(int argc, char **argv)
{
    return dirsim::bench::runBench(argc, argv, exhibit());
}
