/**
 * @file
 * Out-of-core streaming replay exhibit: RSS ceiling and throughput
 * of the stored-trace path versus full in-memory materialisation.
 *
 * The windowed StoredTrace replay claims O(chunk) resident memory
 * however long the trace is; this harness makes the claim a measured
 * number.  It spills one workload straight from the generator to a
 * store file (never materialising it), replays the file through an
 * invalidate engine at several chunk sizes, and only then builds the
 * same trace fully in memory and replays that.  Because getrusage's
 * peak RSS is a process-lifetime high-water mark, the streamed phase
 * MUST run first — the materialised phase then raises the peak by
 * however much the full SoA costs, and the delta ratio is the
 * headline number.  The engine results of both paths are compared
 * and the bench fails on any divergence, so the exhibit doubles as
 * an end-to-end correctness check.
 *
 * Flags:
 *   --refs N       trace length (default 4,000,000)
 *   --reps N       repetitions per chunk size, best-of (default 2)
 *   --out PATH     JSON output path (default BENCH_stream_replay.json)
 *   --rss-floor R  fail (exit 1) if the materialised-over-streamed
 *                  RSS ratio falls below R (default 0 = report only)
 *   --smoke        small quick run for CI (256k refs, 1 rep)
 */

#include <sys/resource.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "cli/parse.hh"
#include "coherence/engine.hh"
#include "coherence/inval_engine.hh"
#include "gen/workload.hh"
#include "gen/workloads.hh"
#include "sim/simulator.hh"
#include "trace/prepared.hh"
#include "trace/store.hh"

#include "bench_common.hh"

namespace
{

using namespace dirsim;

struct Options
{
    std::uint64_t refs = 4'000'000;
    unsigned reps = 2;
    std::string out = "BENCH_stream_replay.json";
    double rssFloor = 0.0;
    bool smoke = false;
};

struct ChunkPoint
{
    std::uint64_t chunkRefs = 0;
    std::uint64_t refs = 0;
    double seconds = 0.0;
    double refsPerSec = 0.0;
    std::uint64_t fileBytes = 0;
};

Options
parseOptions(int argc, char **argv)
{
    Options opts;
    for (int a = 1; a < argc; ++a) {
        const auto want = [&](const char *flag) -> const char * {
            if (a + 1 >= argc) {
                std::cerr << "error: " << flag
                          << " requires a value\n";
                std::exit(2);
            }
            return argv[++a];
        };
        if (std::strcmp(argv[a], "--refs") == 0) {
            opts.refs = cli::parseUnsigned(want("--refs"), "--refs");
        } else if (std::strcmp(argv[a], "--reps") == 0) {
            opts.reps = cli::parseUnsignedInRange(
                want("--reps"), "--reps", 1, 100);
        } else if (std::strcmp(argv[a], "--out") == 0) {
            opts.out = want("--out");
        } else if (std::strcmp(argv[a], "--rss-floor") == 0) {
            opts.rssFloor = cli::parseDoubleInRange(
                want("--rss-floor"), "--rss-floor", 0.0,
                std::numeric_limits<double>::max());
        } else if (std::strcmp(argv[a], "--smoke") == 0) {
            opts.smoke = true;
        } else {
            std::cerr << "error: unknown flag '" << argv[a] << "'\n"
                      << "usage: bench_stream_replay [--refs N] "
                         "[--reps N] [--out PATH] [--rss-floor R] "
                         "[--smoke]\n";
            std::exit(2);
        }
    }
    if (opts.smoke) {
        opts.refs = 256 * 1024;
        opts.reps = 1;
    }
    return opts;
}

long
peakRssKb()
{
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    return ru.ru_maxrss; // KiB on Linux.
}

std::unique_ptr<coherence::CoherenceEngine>
makeEngine(unsigned units)
{
    coherence::InvalEngineConfig cfg;
    cfg.nUnits = units;
    return std::make_unique<coherence::InvalEngine>(cfg);
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);

    gen::WorkloadConfig workload = gen::popsConfig();
    workload.totalRefs = opts.refs;
    const unsigned units = workload.space.nProcesses;

    // Chunk sizes to sweep; the largest bounds the streamed window,
    // so keep it well under refs or the RSS ratio collapses to 1.
    std::vector<std::uint64_t> chunkSizes;
    if (opts.smoke)
        chunkSizes = {4 * 1024, 16 * 1024};
    else
        chunkSizes = {16 * 1024, 64 * 1024, 256 * 1024};

    std::cout << "bench_stream_replay: workload=" << workload.name
              << " refs=" << opts.refs << " reps=" << opts.reps
              << (opts.smoke ? " (smoke)" : "") << "\n";

    const std::string storePath =
        (std::filesystem::temp_directory_path() /
         ("dirsim-bench-stream-" + std::to_string(::getpid()) +
          ".dspt"))
            .string();

    const long baselineKb = peakRssKb();

    // Streamed phase FIRST (peak RSS is a lifetime high-water mark).
    // Spill straight from the generator — the full trace never exists
    // in memory at any point of this phase.
    std::vector<ChunkPoint> points;
    coherence::EngineResults streamedResults;
    bool haveStreamed = false;
    for (const std::uint64_t chunk : chunkSizes) {
        gen::WorkloadSource source(workload);
        trace::StoreWriteOptions wopts;
        wopts.chunkRefs = chunk;
        trace::spillFromSource(source, workload.name, {}, storePath,
                               wopts);
        const auto stored = trace::StoredTrace::open(storePath);

        ChunkPoint pt;
        pt.chunkRefs = chunk;
        pt.fileBytes = std::filesystem::file_size(storePath);
        for (unsigned rep = 0; rep < opts.reps; ++rep) {
            sim::Simulator sim;
            coherence::CoherenceEngine &engine =
                sim.addEngine(makeEngine(units));
            const auto spans = stored->spanCursor();
            bench::WallTimer timer;
            const std::uint64_t refs = sim.run(*spans);
            const double s = timer.seconds();
            if (rep == 0 || s < pt.seconds) {
                pt.seconds = s;
                pt.refs = refs;
            }
            if (!haveStreamed) {
                streamedResults = engine.results();
                haveStreamed = true;
            } else if (!(engine.results() == streamedResults)) {
                std::cerr << "FAIL: streamed replay diverged "
                             "across chunk sizes\n";
                std::filesystem::remove(storePath);
                return 1;
            }
        }
        pt.refsPerSec =
            pt.seconds > 0.0
                ? static_cast<double>(pt.refs) / pt.seconds
                : 0.0;
        points.push_back(pt);
        std::cout << bench::throughputLine(
                         "streamed chunk=" +
                             std::to_string(chunk),
                         pt.refs, pt.seconds)
                  << " (" << pt.fileBytes / 1024 << " KiB file)\n";
    }
    std::filesystem::remove(storePath);
    const long streamedKb = peakRssKb();

    // Materialised phase: the classic generate → decode → replay
    // pipeline holding everything in memory at once.
    ChunkPoint mat;
    coherence::EngineResults materialResults;
    {
        const trace::MemoryTrace trace = gen::generateTrace(workload);
        const trace::PreparedTrace prepared =
            trace::PreparedTrace::build(trace);
        for (unsigned rep = 0; rep < opts.reps; ++rep) {
            sim::Simulator sim;
            coherence::CoherenceEngine &engine =
                sim.addEngine(makeEngine(units));
            bench::WallTimer timer;
            const std::uint64_t refs = sim.run(prepared);
            const double s = timer.seconds();
            if (rep == 0 || s < mat.seconds) {
                mat.seconds = s;
                mat.refs = refs;
            }
            materialResults = engine.results();
        }
        mat.refsPerSec =
            mat.seconds > 0.0
                ? static_cast<double>(mat.refs) / mat.seconds
                : 0.0;
    }
    const long materialKb = peakRssKb();
    std::cout << bench::throughputLine("materialised", mat.refs,
                                       mat.seconds)
              << "\n";

    if (!haveStreamed || !(streamedResults == materialResults)) {
        std::cerr << "FAIL: streamed and materialised replays "
                     "disagree\n";
        return 1;
    }
    std::cout << "  engine results bit-identical streamed vs "
                 "materialised\n";

    const long streamedDelta =
        streamedKb > baselineKb ? streamedKb - baselineKb : 1;
    const long materialDelta =
        materialKb > baselineKb ? materialKb - baselineKb : 1;
    const double rssRatio = static_cast<double>(materialDelta) /
                            static_cast<double>(streamedDelta);
    std::cout << "  RSS: baseline " << baselineKb << " KiB, streamed "
              << "+" << streamedDelta << " KiB, materialised +"
              << materialDelta << " KiB, ratio " << rssRatio
              << "x\n";

    std::ofstream os(opts.out);
    if (!os) {
        std::cerr << "error: cannot write '" << opts.out << "'\n";
        return 1;
    }
    os << "{\n";
    os << "  \"bench\": \"stream-replay\",\n";
    os << "  \"workload\": \"" << workload.name << "\",\n";
    os << "  \"refs\": " << opts.refs << ",\n";
    os << "  \"reps\": " << opts.reps << ",\n";
    os << "  \"smoke\": " << (opts.smoke ? "true" : "false") << ",\n";
    os << "  \"baseline_rss_kb\": " << baselineKb << ",\n";
    os << "  \"streamed_rss_delta_kb\": " << streamedDelta << ",\n";
    os << "  \"materialized_rss_delta_kb\": " << materialDelta
       << ",\n";
    os << "  \"rss_ratio\": " << rssRatio << ",\n";
    os << "  \"materialized\": {\"refs\": " << mat.refs
       << ", \"seconds\": " << mat.seconds << ", \"refs_per_sec\": "
       << static_cast<std::uint64_t>(mat.refsPerSec) << "},\n";
    os << "  \"streamed\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const ChunkPoint &p = points[i];
        os << "    {\"chunk_refs\": " << p.chunkRefs << ", "
           << "\"refs\": " << p.refs << ", "
           << "\"seconds\": " << p.seconds << ", "
           << "\"refs_per_sec\": "
           << static_cast<std::uint64_t>(p.refsPerSec) << ", "
           << "\"file_bytes\": " << p.fileBytes << "}"
           << (i + 1 < points.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
    std::cout << "  wrote " << opts.out << "\n";

    if (opts.rssFloor > 0.0) {
        if (rssRatio < opts.rssFloor) {
            std::cerr << "FAIL: RSS ratio " << rssRatio
                      << "x below floor " << opts.rssFloor << "x\n";
            return 1;
        }
        std::cout << "  RSS floor check passed (" << rssRatio
                  << "x >= " << opts.rssFloor << "x)\n";
    }
    return 0;
}
