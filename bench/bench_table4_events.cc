/**
 * @file
 * Reproduces Table 4: event frequencies for Dir1NB, WTI, Dir0B and
 * Dragon as percentages of all references (trace average), plus the
 * trace-driven simulation throughput of each state engine.
 */

#include "bench_common.hh"

#include "coherence/dragon_engine.hh"
#include "coherence/inval_engine.hh"
#include "coherence/limited_engine.hh"
#include "gen/workload.hh"
#include "sim/simulator.hh"

namespace
{

using namespace dirsim;

enum EngineSel { SelInval = 0, SelDir1NB = 1, SelDragon = 2 };

void
BM_EngineThroughput(benchmark::State &state)
{
    gen::WorkloadConfig cfg = gen::popsConfig();
    cfg.totalRefs = 200'000;
    const auto trace = gen::generateTrace(cfg);

    for (auto _ : state) {
        sim::Simulator simulator;
        switch (state.range(0)) {
          case SelInval: {
            coherence::InvalEngineConfig ecfg;
            ecfg.nUnits = 4;
            simulator.addEngine(
                std::make_unique<coherence::InvalEngine>(ecfg));
            break;
          }
          case SelDir1NB:
            simulator.addEngine(
                std::make_unique<coherence::LimitedEngine>(4, 1));
            break;
          default:
            simulator.addEngine(
                std::make_unique<coherence::DragonEngine>(4));
            break;
        }
        trace::MemoryTraceSource source(trace);
        benchmark::DoNotOptimize(simulator.run(source));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_EngineThroughput)
    ->Arg(SelInval)
    ->Arg(SelDir1NB)
    ->Arg(SelDragon);

void
BM_AllEnginesOnePass(benchmark::State &state)
{
    gen::WorkloadConfig cfg = gen::popsConfig();
    cfg.totalRefs = 200'000;
    const auto trace = gen::generateTrace(cfg);
    for (auto _ : state) {
        sim::Simulator simulator;
        coherence::InvalEngineConfig ecfg;
        ecfg.nUnits = 4;
        simulator.addEngine(
            std::make_unique<coherence::InvalEngine>(ecfg));
        simulator.addEngine(
            std::make_unique<coherence::LimitedEngine>(4, 1));
        simulator.addEngine(
            std::make_unique<coherence::DragonEngine>(4));
        trace::MemoryTraceSource source(trace);
        benchmark::DoNotOptimize(simulator.run(source));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_AllEnginesOnePass);

} // namespace

int
main(int argc, char **argv)
{
    return dirsim::bench::runBench(
        argc, argv,
        dirsim::analysis::table4(dirsim::bench::standardEval())
            .toString());
}
