/**
 * @file
 * Reproduces Section 5.1: the effect of adding a fixed overhead of q
 * bus cycles to every bus transaction (arbitration, controller
 * propagation, initial cache access).  The paper's published models:
 * Dragon 0.0336 + 0.0206 q and Dir0B 0.0491 + 0.0114 q — at q = 1 the
 * directory scheme is nearly on par with the best snoopy scheme.
 */

#include "bench_common.hh"

#include "sim/cost_model.hh"

namespace
{

using namespace dirsim;

void
BM_OverheadSweep(benchmark::State &state)
{
    const auto &eval = bench::standardEval();
    const auto pipe = bus::standardBuses().pipelined;
    for (auto _ : state) {
        double acc = 0.0;
        for (double q = 0.0; q <= 4.0; q += 0.5) {
            sim::CostOptions opts;
            opts.overheadQ = q;
            acc += sim::computeCost(sim::Scheme::Dir0B,
                                    eval.average.inval, pipe, opts)
                       .total();
            acc += sim::computeCost(sim::Scheme::Dragon,
                                    eval.average.dragon, pipe, opts)
                       .total();
        }
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_OverheadSweep);

} // namespace

int
main(int argc, char **argv)
{
    return dirsim::bench::runBench(
        argc, argv,
        dirsim::analysis::section51(dirsim::bench::standardEval(),
                                    {0.0, 1.0, 2.0, 4.0})
            .toString());
}
