/**
 * @file
 * Reproduces Section 5.2: the impact of spin-lock test reads.  The
 * paper reruns the evaluation with all lock tests excluded: Dir1NB
 * improves dramatically (0.32 -> 0.12 bus cycles per reference,
 * because contended locks bounce the single copy between spinners)
 * while Dir0B is unchanged.
 */

#include "bench_common.hh"

#include "trace/filter.hh"

namespace
{

using namespace dirsim;

const analysis::Evaluation &
filteredEval()
{
    static const analysis::Evaluation eval = [] {
        analysis::EvalOptions opts;
        opts.dropLockTests = true;
        return analysis::evaluateWorkloads(gen::standardWorkloads(),
                                           opts);
    }();
    return eval;
}

void
BM_FilteredSimulation(benchmark::State &state)
{
    gen::WorkloadConfig cfg = gen::popsConfig();
    cfg.totalRefs = 150'000;
    for (auto _ : state) {
        analysis::EvalOptions opts;
        opts.dropLockTests = true;
        const auto eval = analysis::evaluateWorkloads({cfg}, opts);
        benchmark::DoNotOptimize(
            eval.average.dir1nb.events.totalRefs());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(cfg.totalRefs));
}
BENCHMARK(BM_FilteredSimulation);

} // namespace

int
main(int argc, char **argv)
{
    return dirsim::bench::runBench(
        argc, argv,
        dirsim::analysis::section52(dirsim::bench::standardEval(),
                                    filteredEval())
            .toString());
}
