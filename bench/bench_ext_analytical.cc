/**
 * @file
 * Extension H: the Section 4 methodology argument, quantified.
 *
 * "Most previous studies that evaluated directory schemes used
 * analytical models ... the results are highly dependent on the
 * assumptions made."  This bench fits the canonical uniform-sharing
 * analytical model (Dubois-Briggs style) to each workload's measured
 * parameters and compares its predictions with trace-driven
 * simulation: the model tracks pero (genuinely unstructured sharing)
 * but misses the lock-structured pops/thor, which is precisely why
 * the paper insists on traces.
 */

#include "bench_common.hh"

#include "analysis/analytical.hh"

namespace
{

using namespace dirsim;

void
BM_AnalyticalPredict(benchmark::State &state)
{
    analysis::AnalyticalParams params;
    params.sharedRefFrac = 0.05;
    params.writeFrac = 0.2;
    params.nProcessors = 16;
    for (auto _ : state) {
        const auto pred = analysis::analyticalPredict(params);
        benchmark::DoNotOptimize(pred.coherenceMissesPerRef);
    }
}
BENCHMARK(BM_AnalyticalPredict);

void
BM_AnalyticalStudy(benchmark::State &state)
{
    auto workloads = gen::standardWorkloads();
    for (auto &cfg : workloads)
        cfg.totalRefs = 100'000;
    for (auto _ : state) {
        const auto rows = analysis::analyticalStudy(workloads);
        benchmark::DoNotOptimize(rows.size());
    }
}
BENCHMARK(BM_AnalyticalStudy);

} // namespace

int
main(int argc, char **argv)
{
    const auto rows =
        dirsim::analysis::analyticalStudy(dirsim::gen::standardWorkloads());
    return dirsim::bench::runBench(
        argc, argv, dirsim::analysis::renderAnalytical(rows).toString());
}
