/**
 * @file
 * Reproduces Tables 1 and 2: fundamental bus-operation timings and
 * the derived per-event bus-cycle costs for the pipelined and
 * non-pipelined bus models.
 */

#include "bench_common.hh"

#include "bus/bus_model.hh"
#include "sim/cost_model.hh"

namespace
{

using namespace dirsim;

void
BM_BuildBusModels(benchmark::State &state)
{
    for (auto _ : state) {
        const bus::BusModels buses = bus::standardBuses();
        benchmark::DoNotOptimize(buses.pipelined.memoryAccess +
                                 buses.nonPipelined.memoryAccess);
    }
}
BENCHMARK(BM_BuildBusModels);

void
BM_CostEvaluation(benchmark::State &state)
{
    const auto &eval = bench::standardEval();
    const bus::BusCosts pipe = bus::standardBuses().pipelined;
    for (auto _ : state) {
        const auto cost = sim::computeCost(
            sim::Scheme::Dir0B, eval.average.inval, pipe);
        benchmark::DoNotOptimize(cost.total());
    }
}
BENCHMARK(BM_CostEvaluation);

} // namespace

int
main(int argc, char **argv)
{
    const std::string exhibit = dirsim::analysis::table1().toString() +
                                "\n" +
                                dirsim::analysis::table2().toString();
    return dirsim::bench::runBench(argc, argv, exhibit);
}
