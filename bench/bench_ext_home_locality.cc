/**
 * @file
 * Extension G: distributed directories and locality.
 *
 * Sections 2 and 7 of the paper answer the "directory bottleneck"
 * concern by distributing memory and its directory across the
 * processor boards, so bandwidth scales with the machine.  How much
 * of the directory traffic actually stays on the local board depends
 * on block placement: this bench measures the local fraction of
 * home-node transactions under interleaved (block mod n) and
 * first-touch placement as the machine grows.
 */

#include "bench_common.hh"

#include "analysis/extensions.hh"
#include "coherence/inval_engine.hh"
#include "gen/workload.hh"
#include "sim/simulator.hh"

namespace
{

using namespace dirsim;

void
BM_HomeTracking(benchmark::State &state)
{
    gen::WorkloadConfig cfg = gen::scaledConfig(8, 120'000);
    for (auto _ : state) {
        sim::Simulator simulator;
        coherence::InvalEngineConfig icfg;
        icfg.nUnits = 8;
        icfg.homePolicy = coherence::HomePolicy::FirstTouch;
        auto &engine = simulator.addEngine(
            std::make_unique<coherence::InvalEngine>(icfg));
        gen::WorkloadSource source(cfg);
        simulator.run(source);
        benchmark::DoNotOptimize(
            engine.results().homeLocalTransactions);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(cfg.totalRefs));
}
BENCHMARK(BM_HomeTracking);

} // namespace

int
main(int argc, char **argv)
{
    const auto points =
        dirsim::analysis::homeLocalityStudy({2, 4, 8, 16, 32});
    return dirsim::bench::runBench(
        argc, argv,
        dirsim::analysis::renderHomeLocality(points).toString());
}
