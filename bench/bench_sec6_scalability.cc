/**
 * @file
 * Reproduces Section 6: scalable directory alternatives.
 *
 *  - DirnNB sequential invalidation versus Dir0B broadcast (published
 *    0.0491 -> 0.0499: nearly free, because most invalidations hit at
 *    most one cache);
 *  - the Dir1B model cycles/ref = base + slope * b;
 *  - the DiriB pointer sweep at a fixed broadcast cost;
 *  - the DiriNB pointer sweep (misses grow as i shrinks);
 *  - per-block directory storage for every organisation, including
 *    the 2*log2(n)-bit coarse-vector code.
 */

#include "bench_common.hh"

#include <sstream>

#include "analysis/extensions.hh"
#include "directory/storage.hh"
#include "sim/cost_model.hh"

namespace
{

using namespace dirsim;

constexpr double broadcastCost = 8.0;

std::string
storageExhibit()
{
    const std::vector<unsigned> counts = {4, 8, 16, 32, 64};
    const auto rows =
        directory::storageTable(counts, directory::StorageParams{});
    stats::TextTable table(
        "Section 6: directory storage (bits per main-memory block)",
        {"Scheme", "n=4", "n=8", "n=16", "n=32", "n=64"});
    for (const auto &row : rows) {
        std::vector<std::string> cells = {row.scheme};
        for (double bits : row.bitsPerBlock)
            cells.push_back(stats::TextTable::num(bits, 1));
        table.addRow(cells);
    }
    return table.toString();
}

std::string
exhibit()
{
    const auto &eval = dirsim::bench::standardEval();
    std::ostringstream os;
    const analysis::Section6 sec =
        analysis::section6(eval, broadcastCost);
    os << analysis::renderSection6(sec, broadcastCost).toString()
       << "\n";

    // The DiriNB pointer sweep is the widest fan-out in this exhibit
    // (workloads x pointer counts); run it on the sweep engine.
    const std::vector<unsigned> pointer_counts = {1, 2, 3, 4};
    dirsim::bench::WallTimer sweep_timer;
    const auto sweep = analysis::limitedSweep(
        gen::standardWorkloads(), pointer_counts,
        dirsim::bench::sweepOptions());
    os << analysis::limitedSweepTable(sweep, pointer_counts)
              .toString()
       << "\n";
    os << "[sweep] DiriNB pointer sweep (" << pointer_counts.size()
       << " pointer counts x 3 workloads, --jobs "
       << dirsim::bench::sweepJobs() << "): " << sweep_timer.seconds()
       << " s\n\n";

    os << analysis::renderDirectoryMessages(
              analysis::directoryMessageStudy())
              .toString()
       << "\n";
    os << storageExhibit();
    return os.str();
}

void
BM_Section6Analytics(benchmark::State &state)
{
    const auto &eval = dirsim::bench::standardEval();
    for (auto _ : state) {
        const auto sec = analysis::section6(eval, broadcastCost);
        benchmark::DoNotOptimize(sec.dirnnbSeq);
    }
}
BENCHMARK(BM_Section6Analytics);

void
BM_LimitedSweep(benchmark::State &state)
{
    auto workloads = gen::standardWorkloads();
    for (auto &cfg : workloads)
        cfg.totalRefs = 100'000;
    for (auto _ : state) {
        const auto sweep =
            analysis::limitedSweep(workloads, {1, 2, 4});
        benchmark::DoNotOptimize(sweep.size());
    }
}
BENCHMARK(BM_LimitedSweep);

} // namespace

int
main(int argc, char **argv)
{
    dirsim::bench::parseJobs(&argc, argv);
    return dirsim::bench::runBench(
        argc, argv,
        exhibit() + "\n" + dirsim::bench::sweepTimingReport());
}
