/**
 * @file
 * Reproduces Table 3: the characteristics of the three workload
 * traces (reference counts, instruction/read/write mix, user/system
 * split), plus generator and characteriser throughput.
 */

#include "bench_common.hh"

#include "trace/characterize.hh"

namespace
{

using namespace dirsim;

void
BM_GenerateReferences(benchmark::State &state)
{
    gen::WorkloadConfig cfg = gen::popsConfig();
    cfg.totalRefs = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        gen::WorkloadSource source(cfg);
        trace::TraceRecord rec;
        std::uint64_t checksum = 0;
        while (source.next(rec))
            checksum += rec.addr;
        benchmark::DoNotOptimize(checksum);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(cfg.totalRefs));
}
BENCHMARK(BM_GenerateReferences)->Arg(100'000)->Arg(400'000);

void
BM_Characterize(benchmark::State &state)
{
    gen::WorkloadConfig cfg = gen::thorConfig();
    cfg.totalRefs = 200'000;
    for (auto _ : state) {
        gen::WorkloadSource source(cfg);
        const auto ch = trace::characterize(source, cfg.name);
        benchmark::DoNotOptimize(ch.refs);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(cfg.totalRefs));
}
BENCHMARK(BM_Characterize);

} // namespace

int
main(int argc, char **argv)
{
    const auto chars = dirsim::analysis::characterizeWorkloads(
        dirsim::gen::standardWorkloads());
    return dirsim::bench::runBench(
        argc, argv, dirsim::analysis::table3(chars).toString());
}
