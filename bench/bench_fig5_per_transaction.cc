/**
 * @file
 * Reproduces Figure 5: average bus cycles per bus transaction.
 * Dragon's transactions are short one-word updates while Dir0B's are
 * block transfers, which is why fixed per-transaction overheads
 * (Section 5.1) erode Dragon's lead.
 */

#include "bench_common.hh"

namespace
{

using namespace dirsim;

void
BM_PerTransaction(benchmark::State &state)
{
    const auto &eval = bench::standardEval();
    for (auto _ : state) {
        double acc = 0.0;
        for (const auto &sc : analysis::schemeCosts(eval.average))
            acc += sc.pipelined.perTransaction();
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_PerTransaction);

} // namespace

int
main(int argc, char **argv)
{
    return dirsim::bench::runBench(
        argc, argv,
        dirsim::analysis::figure5(dirsim::bench::standardEval())
            .toString());
}
