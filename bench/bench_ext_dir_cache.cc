/**
 * @file
 * Extension: finite sparse directory caches.
 *
 * The paper's directory schemes assume an entry per memory block; a
 * real machine keeps directory entries in a finite set-associative
 * cache, and replacing an entry force-invalidates every cached copy
 * of the victim (a dirty owner writes back first).  This exhibit
 * sweeps the directory-cache size against bus cycles per reference
 * for every directory scheme the repo costs — DiriB (i = 1, 2, 4),
 * DirnNB, and DiriNB (i = 1, 2, 4) — over pops, thor and pero.
 *
 * Two limiting rows anchor each sweep:
 *  - entries = inf: the unbounded cache, identical to the paper's
 *    entry-per-block model (the golden suite pins this bit-for-bit);
 *  - Dir0B: the zero-directory-storage broadcast design — the same
 *    end point a directoryless LLC (DLS-style) design reaches by
 *    construction, so it bounds what shrinking the directory can
 *    cost before keeping *no* sharing state wins.
 *
 * Per-point replacement locality is reported too (hit rate,
 * evictions, and the spread of per-set replacement counts): a skewed
 * per-set histogram flags a set index that aliases the workload's
 * footprint.
 *
 * Plain main() like bench_hotpath: the measurement is a deterministic
 * replay, so google-benchmark adds nothing.
 *
 * Flags:
 *   --refs N    per-workload trace length (default: the standard
 *               quarter-size workloads' own lengths)
 *   --jobs N    worker threads for the point sweep (default 1)
 *   --assoc N   directory-cache associativity (default 4)
 *   --out PATH  JSON output path (default BENCH_dir_cache.json)
 *   --smoke     tiny CI configuration: short traces, two sizes
 */

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bus/bus_model.hh"
#include "cli/parse.hh"
#include "coherence/inval_engine.hh"
#include "coherence/limited_engine.hh"
#include "directory/dir_cache.hh"
#include "gen/workloads.hh"
#include "sim/cost_model.hh"
#include "sim/simulator.hh"
#include "sim/sweep.hh"
#include "sim/trace_repo.hh"
#include "stats/table.hh"
#include "trace/prepared.hh"

#include "bench_common.hh"

namespace
{

using namespace dirsim;

struct Options
{
    std::uint64_t refs = 0; //!< 0 = standard workload lengths.
    unsigned jobs = 1;
    unsigned assoc = 4;
    std::string out = "BENCH_dir_cache.json";
    bool smoke = false;
};

Options
parseOptions(int argc, char **argv)
{
    Options opts;
    for (int a = 1; a < argc; ++a) {
        const auto want = [&](const char *flag) -> const char * {
            if (a + 1 >= argc) {
                std::cerr << "error: " << flag
                          << " requires a value\n";
                std::exit(2);
            }
            return argv[++a];
        };
        if (std::strcmp(argv[a], "--refs") == 0) {
            opts.refs = cli::parseUnsigned(want("--refs"), "--refs");
        } else if (std::strcmp(argv[a], "--jobs") == 0) {
            opts.jobs = cli::parseUnsignedInRange(want("--jobs"),
                                                  "--jobs", 1, 256);
        } else if (std::strcmp(argv[a], "--assoc") == 0) {
            opts.assoc = cli::parseUnsignedInRange(want("--assoc"),
                                                   "--assoc", 1, 64);
        } else if (std::strcmp(argv[a], "--out") == 0) {
            opts.out = want("--out");
        } else if (std::strcmp(argv[a], "--smoke") == 0) {
            opts.smoke = true;
        } else {
            std::cerr
                << "error: unknown flag '" << argv[a] << "'\n"
                << "usage: bench_ext_dir_cache [--refs N] [--jobs N] "
                   "[--assoc N] [--out PATH] [--smoke]\n";
            std::exit(2);
        }
    }
    return opts;
}

/** Replacement-locality summary of one finite directory cache. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t sets = 0;
    /** Per-set replacement spread (all zero for unbounded caches). */
    std::uint64_t minSetRepl = 0;
    std::uint64_t maxSetRepl = 0;
    double meanSetRepl = 0.0;

    double
    hitRate() const
    {
        const std::uint64_t lookups = hits + misses;
        return lookups ? static_cast<double>(hits) / lookups : 0.0;
    }
};

CacheStats
summarize(const directory::DirectoryCache *cache)
{
    CacheStats s;
    if (!cache)
        return s;
    s.hits = cache->hits();
    s.misses = cache->misses();
    s.evictions = cache->evictions();
    const std::vector<std::uint64_t> &repl = cache->setReplacements();
    s.sets = repl.size();
    if (!repl.empty()) {
        s.minSetRepl = *std::min_element(repl.begin(), repl.end());
        s.maxSetRepl = *std::max_element(repl.begin(), repl.end());
        std::uint64_t total = 0;
        for (const std::uint64_t n : repl)
            total += n;
        s.meanSetRepl =
            static_cast<double>(total) / static_cast<double>(s.sets);
    }
    return s;
}

/** One (workload, directory-cache size) sweep point. */
struct Point
{
    std::string workload;
    std::uint64_t entries = 0; //!< 0 = unbounded.
    coherence::EngineResults inval;
    std::vector<coherence::EngineResults> limited; //!< i = 1, 2, 4.
    CacheStats invalCache;
    CacheStats limitedCache; //!< From the Dir1NB engine.
};

const std::vector<unsigned> kPointerCounts = {1, 2, 4};

/** Run every engine of one point over a shared prepared trace. */
Point
runPoint(const gen::WorkloadConfig &cfg,
         std::shared_ptr<const trace::PreparedTrace> prepared,
         std::uint64_t entries, unsigned assoc)
{
    directory::DirCacheConfig dc;
    dc.enabled = true;
    dc.entries = entries;
    dc.associativity =
        entries == 0 ? assoc
                     : static_cast<unsigned>(std::min<std::uint64_t>(
                           assoc, entries));

    const unsigned units = cfg.space.nProcesses;
    sim::Simulator simulator;
    coherence::InvalEngineConfig icfg;
    icfg.nUnits = units;
    icfg.dirCache = dc;
    auto &inval = static_cast<coherence::InvalEngine &>(
        simulator.addEngine(
            std::make_unique<coherence::InvalEngine>(icfg)));
    std::vector<coherence::LimitedEngine *> limited;
    for (const unsigned i : kPointerCounts)
        limited.push_back(static_cast<coherence::LimitedEngine *>(
            &simulator.addEngine(
                std::make_unique<coherence::LimitedEngine>(units, i,
                                                           dc))));
    simulator.run(*prepared);

    Point point;
    point.workload = cfg.name;
    point.entries = entries;
    point.inval = inval.results();
    for (const coherence::LimitedEngine *engine : limited)
        point.limited.push_back(engine->results());
    point.invalCache = summarize(inval.dirCache());
    point.limitedCache = summarize(limited.front()->dirCache());
    return point;
}

/** Bus cycles/ref of every costed scheme at one point. */
struct CostRow
{
    std::vector<double> dirIB;  //!< Dir1B, Dir2B, Dir4B.
    double dirNNB = 0.0;
    std::vector<double> dirINB; //!< Dir1NB, Dir2NB, Dir4NB.
};

CostRow
costPoint(const Point &point, const bus::BusCosts &bus)
{
    CostRow row;
    for (const unsigned i : kPointerCounts) {
        sim::CostOptions opts;
        opts.nPointers = i;
        row.dirIB.push_back(
            sim::computeCost(sim::Scheme::DirIB, point.inval, bus,
                             opts)
                .total());
    }
    row.dirNNB = sim::computeCost(sim::Scheme::DirNNBSeq, point.inval,
                                  bus, sim::CostOptions{})
                     .total();
    for (std::size_t p = 0; p < kPointerCounts.size(); ++p) {
        sim::CostOptions opts;
        opts.nPointers = kPointerCounts[p];
        const sim::Scheme scheme = kPointerCounts[p] == 1
                                       ? sim::Scheme::Dir1NB
                                       : sim::Scheme::DirINB;
        row.dirINB.push_back(
            sim::computeCost(scheme, point.limited[p], bus, opts)
                .total());
    }
    return row;
}

std::string
fmt(double v)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(3);
    os << v;
    return os.str();
}

std::string
entriesLabel(std::uint64_t entries)
{
    return entries == 0 ? "inf" : std::to_string(entries);
}

void
writeJson(const Options &opts, const std::vector<Point> &points,
          const std::vector<CostRow> &costs,
          const std::vector<std::pair<std::string, double>> &dir0b)
{
    std::ofstream os(opts.out);
    if (!os) {
        std::cerr << "error: cannot write '" << opts.out << "'\n";
        std::exit(1);
    }
    os << "{\n  \"bench\": \"ext-dir-cache\",\n";
    os << "  \"associativity\": " << opts.assoc << ",\n";
    os << "  \"dir0b_limit\": {";
    for (std::size_t i = 0; i < dir0b.size(); ++i)
        os << (i ? ", " : "") << "\"" << dir0b[i].first
           << "\": " << dir0b[i].second;
    os << "},\n";
    os << "  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        const CostRow &c = costs[i];
        os << "    {\"workload\": \"" << p.workload << "\", "
           << "\"entries\": " << p.entries << ", "
           << "\"refs\": " << p.inval.events.totalRefs() << ",\n";
        os << "     \"cycles_per_ref\": {"
           << "\"dir1b\": " << c.dirIB[0] << ", "
           << "\"dir2b\": " << c.dirIB[1] << ", "
           << "\"dir4b\": " << c.dirIB[2] << ", "
           << "\"dirnnb\": " << c.dirNNB << ", "
           << "\"dir1nb\": " << c.dirINB[0] << ", "
           << "\"dir2nb\": " << c.dirINB[1] << ", "
           << "\"dir4nb\": " << c.dirINB[2] << "},\n";
        os << "     \"inval_cache\": {"
           << "\"hits\": " << p.invalCache.hits << ", "
           << "\"misses\": " << p.invalCache.misses << ", "
           << "\"evictions\": " << p.invalCache.evictions << ", "
           << "\"eviction_invals\": "
           << p.inval.dirCacheEvictionInvals << ", "
           << "\"eviction_write_backs\": "
           << p.inval.dirCacheEvictionWriteBacks << ", "
           << "\"sets\": " << p.invalCache.sets << ", "
           << "\"set_repl_min\": " << p.invalCache.minSetRepl << ", "
           << "\"set_repl_mean\": " << p.invalCache.meanSetRepl
           << ", "
           << "\"set_repl_max\": " << p.invalCache.maxSetRepl << "}}"
           << (i + 1 < points.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);

    std::vector<gen::WorkloadConfig> workloads =
        gen::standardWorkloads();
    if (opts.smoke) {
        for (auto &cfg : workloads)
            cfg.totalRefs = 30'000;
    } else if (opts.refs != 0) {
        for (auto &cfg : workloads)
            cfg.totalRefs = opts.refs;
    }
    const std::vector<std::uint64_t> sizes =
        opts.smoke ? std::vector<std::uint64_t>{128, 0}
                   : std::vector<std::uint64_t>{128, 512, 2048, 8192,
                                                0};

    std::cout << "bench_ext_dir_cache: " << workloads.size()
              << " workloads x " << sizes.size()
              << " directory-cache sizes, assoc=" << opts.assoc
              << ", jobs=" << opts.jobs << "\n";

    // Decode each workload once; every point replays the shared SoA.
    std::vector<std::shared_ptr<const trace::PreparedTrace>> traces;
    dirsim::bench::WallTimer decodeTimer;
    for (const gen::WorkloadConfig &cfg : workloads)
        traces.push_back(sim::TraceRepository::global().get(cfg));
    std::cout << "  traces prepared in " << decodeTimer.seconds()
              << " s\n";

    // Fan the (workload, size) grid across workers; runOrdered keeps
    // results in submission order, so output is jobs-invariant.
    std::vector<std::function<Point()>> tasks;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        for (const std::uint64_t entries : sizes) {
            const gen::WorkloadConfig &cfg = workloads[w];
            auto prepared = traces[w];
            tasks.push_back([cfg, prepared, entries, &opts] {
                return runPoint(cfg, prepared, entries, opts.assoc);
            });
        }
    }
    dirsim::bench::WallTimer sweepTimer;
    const std::vector<Point> points =
        sim::runOrdered<Point>(opts.jobs, tasks);
    std::cout << "  " << points.size() << " points in "
              << sweepTimer.seconds() << " s\n";

    const bus::BusCosts bus = bus::pipelinedBus();
    std::vector<CostRow> costs;
    for (const Point &p : points)
        costs.push_back(costPoint(p, bus));

    // The zero-directory-storage limit: Dir0B costed from the
    // unbounded inval run of each workload (broadcast needs no
    // directory, so it is flat across every cache size).
    std::vector<std::pair<std::string, double>> dir0b;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const Point &unbounded =
            points[w * sizes.size() + sizes.size() - 1];
        dir0b.emplace_back(
            unbounded.workload,
            sim::computeCost(sim::Scheme::Dir0B, unbounded.inval, bus,
                             sim::CostOptions{})
                .total());
    }

    stats::TextTable table(
        "Directory-cache size vs bus cycles/ref (pipelined bus)",
        {"workload", "entries", "dir1b", "dir2b", "dir4b", "dirnnb",
         "dir1nb", "dir2nb", "dir4nb"});
    stats::TextTable locality(
        "Directory-cache replacement locality (inval engine)",
        {"workload", "entries", "hit rate", "evictions", "ev-invals",
         "ev-wbacks", "sets", "repl min/mean/max"});
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        for (std::size_t s = 0; s < sizes.size(); ++s) {
            const std::size_t i = w * sizes.size() + s;
            const Point &p = points[i];
            const CostRow &c = costs[i];
            table.addRow({p.workload, entriesLabel(p.entries),
                          fmt(c.dirIB[0]), fmt(c.dirIB[1]),
                          fmt(c.dirIB[2]), fmt(c.dirNNB),
                          fmt(c.dirINB[0]), fmt(c.dirINB[1]),
                          fmt(c.dirINB[2])});
            std::ostringstream spread;
            spread << p.invalCache.minSetRepl << "/"
                   << fmt(p.invalCache.meanSetRepl) << "/"
                   << p.invalCache.maxSetRepl;
            locality.addRow(
                {p.workload, entriesLabel(p.entries),
                 fmt(p.invalCache.hitRate()),
                 std::to_string(p.invalCache.evictions),
                 std::to_string(p.inval.dirCacheEvictionInvals),
                 std::to_string(p.inval.dirCacheEvictionWriteBacks),
                 std::to_string(p.invalCache.sets), spread.str()});
        }
        // The no-directory design point closes each workload group.
        table.addRow({workloads[w].name, "dir0b",
                      fmt(dir0b[w].second), fmt(dir0b[w].second),
                      fmt(dir0b[w].second), "-", "-", "-", "-"});
        table.addSeparator();
        locality.addSeparator();
    }

    std::cout << table.toString() << "\n" << locality.toString();
    writeJson(opts, points, costs, dir0b);
    std::cout << "  wrote " << opts.out << "\n";

    // Smoke sanity: finite caches must actually evict, and the
    // unbounded point must record zero evictions.
    for (const Point &p : points) {
        const bool finite = p.entries != 0;
        if (finite && p.inval.dirCacheEvictions == 0) {
            std::cerr << "FAIL: finite point " << p.workload << "/"
                      << p.entries << " never evicted\n";
            return 1;
        }
        if (!finite && p.inval.dirCacheEvictions != 0) {
            std::cerr << "FAIL: unbounded point " << p.workload
                      << " evicted\n";
            return 1;
        }
    }
    return 0;
}
