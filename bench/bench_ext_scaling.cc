/**
 * @file
 * Extension A: scaling beyond four CPUs — the study the paper calls
 * for ("We are trying to obtain traces for a much larger number of
 * processes and hope to extend our results shortly").  Runs the
 * generic scaled workload at 2..32 processors and tracks whether the
 * key directory result — most invalidations touch at most one cache —
 * survives scale.
 */

#include "bench_common.hh"

#include "analysis/extensions.hh"

namespace
{

using namespace dirsim;

void
BM_ScaledSimulation(benchmark::State &state)
{
    const unsigned cpus = static_cast<unsigned>(state.range(0));
    const gen::WorkloadConfig cfg =
        gen::scaledConfig(cpus, 20'000 * cpus);
    for (auto _ : state) {
        const auto eval = analysis::evaluateWorkloads({cfg});
        benchmark::DoNotOptimize(
            eval.average.inval.events.totalRefs());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(cfg.totalRefs));
}
BENCHMARK(BM_ScaledSimulation)->Arg(4)->Arg(16)->Arg(32);

} // namespace

int
main(int argc, char **argv)
{
    const auto points =
        dirsim::analysis::scalingStudy({2, 4, 8, 16, 32});
    return dirsim::bench::runBench(
        argc, argv, dirsim::analysis::renderScaling(points).toString());
}
