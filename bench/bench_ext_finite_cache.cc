/**
 * @file
 * Extension B: finite caches.  The paper evaluates infinite caches to
 * isolate coherence traffic and argues finite-cache behaviour can be
 * estimated "to first order by adding the costs due to the finite
 * cache size"; this study simulates 4-way LRU caches directly and
 * shows how the Dir0B cost decomposes as capacity shrinks.
 */

#include "bench_common.hh"

#include "analysis/extensions.hh"
#include "mem/set_assoc.hh"

namespace
{

using namespace dirsim;

void
BM_FiniteCacheSimulation(benchmark::State &state)
{
    mem::CacheGeometry geom;
    geom.capacityBytes = static_cast<std::uint64_t>(state.range(0));
    geom.blockBytes = 16;
    geom.ways = 4;
    auto workloads = gen::standardWorkloads();
    for (auto &cfg : workloads)
        cfg.totalRefs = 100'000;
    for (auto _ : state) {
        const auto results =
            analysis::invalWithFiniteCaches(workloads, geom);
        benchmark::DoNotOptimize(results.replacementEvictions);
    }
}
BENCHMARK(BM_FiniteCacheSimulation)
    ->Arg(16 * 1024)
    ->Arg(256 * 1024);

} // namespace

int
main(int argc, char **argv)
{
    const auto points = dirsim::analysis::finiteCacheStudy(
        {8 * 1024, 32 * 1024, 128 * 1024, 512 * 1024, 2048 * 1024});
    return dirsim::bench::runBench(
        argc, argv,
        dirsim::analysis::renderFiniteCache(points).toString());
}
