/**
 * @file
 * Shared plumbing for the exhibit benchmarks.
 *
 * Every bench binary prints its reproduced table/figure first (so
 * running all benches regenerates the paper's evaluation section) and
 * then runs google-benchmark timings of the simulation kernels behind
 * it.  The evaluation of the three standard workloads is cached per
 * process.
 *
 * Benches that run simulation sweeps take a `--jobs N` knob (parsed
 * and stripped by parseJobs() before google-benchmark sees argv):
 * N > 1 fans the protocol×workload matrix out over a sim::SweepRunner
 * with N worker threads, N = 0 uses one thread per hardware thread,
 * and the default of 1 keeps the serial single-pass path.  Parallel
 * results are bit-identical to serial ones; sweepTimingReport()
 * prints the wall-clock comparison.
 */

#ifndef DIRSIM_BENCH_COMMON_HH
#define DIRSIM_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/evaluation.hh"
#include "analysis/exhibits.hh"
#include "cli/parse.hh"
#include "gen/workloads.hh"

namespace dirsim::bench
{

/** Worker threads for sweep-based exhibits; set by parseJobs(). */
inline unsigned &
sweepJobs()
{
    static unsigned jobs = 1;
    return jobs;
}

/** Parse a --jobs value, exiting with a clear error on garbage. */
inline unsigned
parseJobsValue(const char *text)
{
    return cli::parseUnsigned(text, "--jobs");
}

/**
 * Consume `--jobs N` / `--jobs=N` from argv before google-benchmark
 * parses it.  Call first thing in main().
 */
inline void
parseJobs(int *argc, char **argv)
{
    int out = 1;
    for (int a = 1; a < *argc; ++a) {
        if (std::strcmp(argv[a], "--jobs") == 0) {
            if (a + 1 >= *argc) {
                std::cerr << "error: --jobs requires a value\n";
                std::exit(2);
            }
            sweepJobs() = parseJobsValue(argv[++a]);
        } else if (std::strncmp(argv[a], "--jobs=", 7) == 0) {
            sweepJobs() = parseJobsValue(argv[a] + 7);
        } else {
            argv[out++] = argv[a];
        }
    }
    *argc = out;
}

/** EvalOptions carrying the --jobs setting. */
inline analysis::EvalOptions
sweepOptions()
{
    analysis::EvalOptions opts;
    opts.jobs = sweepJobs();
    return opts;
}

/** Seconds elapsed on a steady clock since construction. */
class WallTimer
{
  public:
    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - _start)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point _start =
        std::chrono::steady_clock::now();
};

namespace detail
{

/** Standard eval computed once with the --jobs setting, plus timing. */
struct TimedStandardEval
{
    analysis::Evaluation eval;
    double seconds = 0.0;
    unsigned jobs = 1;

    TimedStandardEval()
    {
        jobs = sweepJobs();
        WallTimer timer;
        eval = analysis::evaluateWorkloads(gen::standardWorkloads(),
                                           sweepOptions());
        seconds = timer.seconds();
    }
};

inline const TimedStandardEval &
timedStandardEval()
{
    static const TimedStandardEval timed;
    return timed;
}

} // namespace detail

/** Quarter-size standard evaluation, computed once per binary. */
inline const analysis::Evaluation &
standardEval()
{
    return detail::timedStandardEval().eval;
}

/** Number of CPUs in the standard workloads (for rendering). */
constexpr unsigned standardCpus = 4;

/**
 * Uniform one-line throughput report: every bench prints wall clock
 * and refs/sec in the same shape, so runs are comparable across
 * binaries and greppable by "[bench]".
 */
inline std::string
throughputLine(const std::string &name, std::uint64_t refs,
               double seconds)
{
    std::ostringstream os;
    os << "[bench] " << name << ": " << seconds << " s wall, " << refs
       << " refs";
    if (seconds > 0.0 && refs > 0)
        os << ", "
           << static_cast<std::uint64_t>(
                  static_cast<double>(refs) / seconds)
           << " refs/sec";
    return os.str();
}

/**
 * Wall-clock report for the standard protocol×workload sweep.  With
 * --jobs > 1 it also times a serial reference run so the speedup of
 * the parallel sweep engine is visible (and the results comparable —
 * they are bit-identical by construction and by test).
 */
inline std::string
sweepTimingReport()
{
    const auto &timed = detail::timedStandardEval();
    std::uint64_t traceRefs = 0;
    for (const gen::WorkloadConfig &w : gen::standardWorkloads())
        traceRefs += w.totalRefs;
    std::ostringstream os;
    os << throughputLine("standard-sweep", traceRefs, timed.seconds)
       << "\n";
    os << "[sweep] standard workloads x 3 engines: ";
    if (timed.jobs == 1) {
        os << "serial " << timed.seconds
           << " s (pass --jobs N for the parallel sweep engine)\n";
        return os.str();
    }
    WallTimer timer;
    const analysis::Evaluation serial =
        analysis::evaluateWorkloads(gen::standardWorkloads());
    const double serial_s = timer.seconds();
    const bool identical =
        serial.average.inval == timed.eval.average.inval &&
        serial.average.dir1nb == timed.eval.average.dir1nb &&
        serial.average.dragon == timed.eval.average.dragon;
    os << "serial " << serial_s << " s, --jobs " << timed.jobs
       << " parallel " << timed.seconds << " s, speedup "
       << (timed.seconds > 0.0 ? serial_s / timed.seconds : 0.0)
       << "x, results " << (identical ? "bit-identical" : "DIVERGED!")
       << "\n";
    return os.str();
}

/**
 * Print the exhibit, then hand over to google-benchmark.  Call from
 * main() after registering benchmarks.
 */
inline int
runBench(int argc, char **argv, const std::string &exhibit)
{
    std::cout << exhibit << "\n";
    WallTimer timer;
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    std::cout << "[bench] timing phase: " << timer.seconds()
              << " s wall\n";
    return 0;
}

} // namespace dirsim::bench

#endif // DIRSIM_BENCH_COMMON_HH
