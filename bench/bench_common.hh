/**
 * @file
 * Shared plumbing for the exhibit benchmarks.
 *
 * Every bench binary prints its reproduced table/figure first (so
 * running all benches regenerates the paper's evaluation section) and
 * then runs google-benchmark timings of the simulation kernels behind
 * it.  The evaluation of the three standard workloads is cached per
 * process.
 */

#ifndef DIRSIM_BENCH_COMMON_HH
#define DIRSIM_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <iostream>

#include "analysis/evaluation.hh"
#include "analysis/exhibits.hh"
#include "gen/workloads.hh"

namespace dirsim::bench
{

/** Quarter-size standard evaluation, computed once per binary. */
inline const analysis::Evaluation &
standardEval()
{
    static const analysis::Evaluation eval =
        analysis::evaluateStandard();
    return eval;
}

/** Number of CPUs in the standard workloads (for rendering). */
constexpr unsigned standardCpus = 4;

/**
 * Print the exhibit, then hand over to google-benchmark.  Call from
 * main() after registering benchmarks.
 */
inline int
runBench(int argc, char **argv, const std::string &exhibit)
{
    std::cout << exhibit << "\n";
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

} // namespace dirsim::bench

#endif // DIRSIM_BENCH_COMMON_HH
