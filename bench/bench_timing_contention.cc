/**
 * @file
 * Timed-bus contention exhibit: what the paper's static tables hide.
 *
 * The static cost model prices traffic as frequency × cycles with an
 * always-free bus.  The timed subsystem replays the same streams
 * through a bus with real occupancy and arbitration, making queueing
 * visible.  This bench prints:
 *
 *  - bus utilization and queueing delay versus CPU count, per scheme
 *    (utilization climbs monotonically toward saturation);
 *  - the three arbitration disciplines at a saturated bus, where
 *    FCFS and round-robin spread the stall evenly and fixed priority
 *    starves the high-index CPUs.
 *
 * The timed sweep fans out with `--jobs N` (same knob as the other
 * sweep benches); results are bit-identical across worker counts.
 */

#include "bench_common.hh"

#include "coherence/dragon_engine.hh"
#include "coherence/inval_engine.hh"
#include "coherence/limited_engine.hh"
#include "gen/workloads.hh"
#include "stats/table.hh"
#include "timing/event_queue.hh"
#include "timing/sweep.hh"
#include "timing/timed_bus.hh"

namespace
{

using namespace dirsim;

const std::vector<sim::Scheme> contentionSchemes = {
    sim::Scheme::Dir0B, sim::Scheme::Dir1NB, sim::Scheme::Dragon,
    sim::Scheme::WTI};

constexpr std::uint64_t refsPerCpu = 20'000;

timing::TimedSweepPoint
pointFor(sim::Scheme scheme, unsigned nCpus, timing::Discipline d)
{
    const gen::WorkloadConfig workload =
        gen::scaledConfig(nCpus, refsPerCpu * nCpus);
    timing::TimedSweepPoint point;
    point.name = sim::schemeName(scheme) + "@" +
                 std::to_string(nCpus) + "/" +
                 timing::disciplineName(d);
    point.config.scheme = scheme;
    point.config.bus = timing::timedPipelinedBus();
    point.config.discipline = d;
    point.engine = [scheme, units = workload.space.nProcesses] {
        switch (sim::engineKindFor(scheme)) {
          case sim::EngineKind::Limited:
            return std::unique_ptr<coherence::CoherenceEngine>(
                std::make_unique<coherence::LimitedEngine>(units, 1));
          case sim::EngineKind::Dragon:
            return std::unique_ptr<coherence::CoherenceEngine>(
                std::make_unique<coherence::DragonEngine>(units));
          default: {
            coherence::InvalEngineConfig cfg;
            cfg.nUnits = units;
            return std::unique_ptr<coherence::CoherenceEngine>(
                std::make_unique<coherence::InvalEngine>(cfg));
          }
        }
    };
    point.source = [workload] {
        return std::make_unique<gen::WorkloadSource>(workload);
    };
    return point;
}

std::string
exhibit()
{
    const std::vector<unsigned> cpuCounts = {2, 4, 8, 16};

    // One sweep for the whole matrix, fanned out per --jobs.
    std::vector<timing::TimedSweepPoint> points;
    for (const sim::Scheme scheme : contentionSchemes)
        for (const unsigned n : cpuCounts)
            points.push_back(
                pointFor(scheme, n, timing::Discipline::FCFS));
    for (const auto d :
         {timing::Discipline::FCFS, timing::Discipline::RoundRobin,
          timing::Discipline::FixedPriority})
        points.push_back(pointFor(sim::Scheme::WTI, 8, d));

    bench::WallTimer timer;
    const auto runs =
        timing::runTimedSweep(points, bench::sweepJobs());
    const double sweep_s = timer.seconds();

    std::ostringstream os;

    std::vector<std::string> headers = {"Scheme"};
    for (const unsigned n : cpuCounts)
        headers.push_back("n=" + std::to_string(n));
    stats::TextTable util(
        "Timed pipelined bus: utilization (fraction of makespan busy)",
        headers);
    stats::TextTable delay(
        "Mean queueing delay per bus transaction (cycles)", headers);
    std::size_t r = 0;
    for (const sim::Scheme scheme : contentionSchemes) {
        std::vector<std::string> urow = {sim::schemeName(scheme)};
        std::vector<std::string> drow = {sim::schemeName(scheme)};
        for (std::size_t c = 0; c < cpuCounts.size(); ++c, ++r) {
            urow.push_back(
                stats::TextTable::num(runs[r].busUtilization()));
            drow.push_back(
                stats::TextTable::num(runs[r].meanQueueDelay()));
        }
        util.addRow(urow);
        delay.addRow(drow);
    }
    os << util.toString() << "\n" << delay.toString() << "\n";

    stats::TextTable disc(
        "Arbitration at a saturated bus (WTI, 8 CPUs): who eats the "
        "stall",
        {"Discipline", "Util", "Mean delay", "p95 delay",
         "Stall cpu0", "Stall cpu7"});
    for (; r < runs.size(); ++r) {
        const timing::TimedRun &run = runs[r];
        disc.addRow(
            {run.discipline,
             stats::TextTable::num(run.busUtilization()),
             stats::TextTable::num(run.meanQueueDelay()),
             stats::TextTable::num(run.p95QueueDelay()),
             stats::TextTable::num(run.cpus.front().stallFraction()),
             stats::TextTable::num(run.cpus.back().stallFraction())});
    }
    os << disc.toString() << "\n";
    os << "[sweep] " << points.size() << " timed runs in " << sweep_s
       << " s (--jobs " << bench::sweepJobs() << ")\n";
    return os.str();
}

void
BM_TimedBusRun(benchmark::State &state)
{
    const gen::WorkloadConfig workload = gen::scaledConfig(4, 40'000);
    for (auto _ : state) {
        timing::TimedBusConfig cfg;
        cfg.scheme = sim::Scheme::Dir0B;
        cfg.bus = timing::timedPipelinedBus();
        coherence::InvalEngineConfig ecfg;
        ecfg.nUnits = workload.space.nProcesses;
        timing::TimedBusSim sim(
            cfg, std::make_unique<coherence::InvalEngine>(ecfg));
        gen::WorkloadSource source(workload);
        benchmark::DoNotOptimize(sim.run(source).busBusyCycles);
    }
}
BENCHMARK(BM_TimedBusRun)->Unit(benchmark::kMillisecond);

void
BM_EventQueueChurn(benchmark::State &state)
{
    for (auto _ : state) {
        timing::EventQueue eq;
        std::uint64_t acc = 0;
        for (unsigned round = 0; round < 64; ++round) {
            for (unsigned c = 0; c < 16; ++c)
                eq.push((round * 37 + c * 11) % 101,
                        timing::EventKind::CpuReady, c);
            while (!eq.empty())
                acc += eq.pop().time;
        }
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_EventQueueChurn);

} // namespace

int
main(int argc, char **argv)
{
    dirsim::bench::parseJobs(&argc, argv);
    return dirsim::bench::runBench(argc, argv, exhibit());
}
