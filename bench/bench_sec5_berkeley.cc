/**
 * @file
 * Reproduces the Section 5 aside: estimating the Berkeley Ownership
 * protocol from the Dir0B event frequencies by pricing the directory
 * probe at zero (the cache's own block state answers whether an
 * invalidation is needed).  Also prints the Yen-Fu single-bit
 * refinement, which trades the same probe for single-bit maintenance
 * traffic (Section 2's discussion).
 */

#include "bench_common.hh"

#include "sim/cost_model.hh"
#include "stats/table.hh"

namespace
{

using namespace dirsim;

std::string
exhibit()
{
    const auto &eval = bench::standardEval();
    const auto buses = bus::standardBuses();
    // The real Berkeley Ownership engine run: ownership persists
    // across read misses, so more misses are serviced cache-to-cache
    // than the Dir0B-based estimate assumes.
    const coherence::EngineResults berkeley_own =
        analysis::berkeleyResults(gen::standardWorkloads());

    stats::TextTable table(
        "Section 5 aside: the Berkeley estimate vs the real protocol "
        "(and relatives), bus cycles per reference",
        {"Scheme", "Pipelined", "Non-pipelined"});
    auto row = [&](sim::Scheme scheme,
                   const coherence::EngineResults &results) {
        const auto pipe_cost =
            sim::computeCost(scheme, results, buses.pipelined);
        const auto np_cost =
            sim::computeCost(scheme, results, buses.nonPipelined);
        table.addRow({pipe_cost.scheme,
                      stats::TextTable::num(pipe_cost.total()),
                      stats::TextTable::num(np_cost.total())});
    };
    row(sim::Scheme::Dir0B, eval.average.inval);
    row(sim::Scheme::Berkeley, eval.average.inval);
    row(sim::Scheme::BerkeleyOwn, berkeley_own);
    row(sim::Scheme::MESI, eval.average.inval);
    row(sim::Scheme::YenFu, eval.average.inval);
    row(sim::Scheme::Dragon, eval.average.dragon);
    return table.toString();
}

void
BM_VariantCosts(benchmark::State &state)
{
    const auto &eval = bench::standardEval();
    const auto pipe = bus::standardBuses().pipelined;
    for (auto _ : state) {
        double acc = 0.0;
        acc += sim::computeCost(sim::Scheme::Berkeley,
                                eval.average.inval, pipe)
                   .total();
        acc += sim::computeCost(sim::Scheme::YenFu,
                                eval.average.inval, pipe)
                   .total();
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_VariantCosts);

} // namespace

int
main(int argc, char **argv)
{
    return dirsim::bench::runBench(argc, argv, exhibit());
}
