/**
 * @file
 * Hot-path throughput harness: raw engine replay speed in refs/sec.
 *
 * The exhibit benches measure whole evaluations (workload generation
 * plus simulation); this harness isolates the per-reference hot path
 * that PR 3's flat-storage refactor targets.  It materialises one
 * workload trace up front, then replays it through each engine
 * variant and through one timed-bus point, timing only the replay.
 * Results (refs/sec, resident-block count per engine, peak RSS) land
 * in a machine-readable JSON file so CI and the PR description can
 * compare before/after numbers.
 *
 * Unlike the exhibit benches this is a plain main(): google-benchmark
 * adds nothing to a best-of-N wall-clock measurement of a
 * deterministic replay loop.
 *
 * Each engine runs twice: once from the raw MemoryTrace (per-record
 * unit/block mapping on the replay path) and once from a
 * trace::PreparedTrace (decode-once SoA columns), so the decode-once
 * speedup is visible per engine.  The one-time decode cost is timed
 * and reported separately.
 *
 * `--sweep` switches to an end-to-end campaign measurement instead:
 * the fig2/fig3-style evaluation (standard engines, DiriNB pointer
 * sweep, Berkeley) runs once with prepared traces disabled and once
 * through the sim::TraceRepository, and BENCH_sweep.json records the
 * wall clocks, the decode-vs-replay split and the speedup.
 *
 * Flags:
 *   --refs N       trace length (default 2,000,000; ignored by --sweep,
 *                  which uses the standard quarter-size workloads)
 *   --reps N       repetitions per point, best-of (default 3)
 *   --out PATH     JSON output path (default BENCH_hotpath.json, or
 *                  BENCH_sweep.json in --sweep mode)
 *   --floor R      fail (exit 1) if any reported replay point runs
 *                  below R refs/sec — or, in --sweep mode, if the
 *                  prepared-over-raw speedup falls below R
 *                  (default 0 = disabled)
 *   --sweep        measure the end-to-end campaign instead of
 *                  single-engine replay
 *   --no-fused     sequential whole-stream replay per engine instead
 *                  of the fused multi-scheme column walk (A/B hatch;
 *                  results are bit-identical either way)
 *   --no-multi     independent LimitedEngines for the DiriNB row
 *                  instead of the shared-table multi-configuration
 *                  engine (A/B hatch; bit-identical either way)
 *   --multi-floor R  fail (exit 1) if the multi-configuration row's
 *                  speedup over the independent DiriNB engines falls
 *                  below R (sweep mode; default 0 = disabled)
 *   --schemes CSV  restrict the sweep's per-scheme attribution (and
 *                  the multi-config lanes) to the named schemes;
 *                  unknown names are a hard error (sweep mode)
 *   --no-direct-gen  route repository builds through the legacy
 *                  generateTrace + two-phase decode instead of the
 *                  single-pass direct pipeline, and skip the sweep's
 *                  cold attribution pass (A/B hatch; the prepared
 *                  columns are bit-identical either way)
 *   --gen-chunk-refs N  data references per direct-pipeline pack
 *                  chunk (default 65536)
 *   --cold-floor R  fail (exit 1) if the cold generate+prepare
 *                  speedup of the direct pipeline over the legacy
 *                  two-pass path falls below R (sweep mode; default
 *                  0 = disabled; fails if --no-direct-gen disabled
 *                  the cold pass)
 *   --no-reserve   skip the expectedBlocks reserve hint (measures the
 *                  growth-by-rehash path the seed code always paid)
 *   --trace-cache-dir PATH    persistent trace cache directory; the
 *                  prepared pass streams from warm store files and
 *                  spills on cold misses (sweep mode)
 *   --trace-cache-budget MiB  disk-tier byte budget (default 4096)
 *   --stream-chunk-refs N     refs per streamed chunk (bounds replay
 *                  RSS; default 1048576)
 *   --repo-stats   print the trace-repository counters after the run
 */

#include <sys/resource.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/evaluation.hh"
#include "cli/parse.hh"
#include "coherence/berkeley_engine.hh"
#include "coherence/dragon_engine.hh"
#include "coherence/inval_engine.hh"
#include "coherence/limited_engine.hh"
#include "coherence/multi_limited_engine.hh"
#include "coherence/wti_engine.hh"
#include "directory/full_map.hh"
#include "gen/workload.hh"
#include "gen/workloads.hh"
#include "gen/direct_prepare.hh"
#include "sim/fused_replay.hh"
#include "sim/simulator.hh"
#include "sim/trace_repo.hh"
#include "timing/timed_bus.hh"
#include "trace/prepared.hh"
#include "trace/trace.hh"
#include "util/thread_pool.hh"

#include "bench_common.hh"

namespace
{

using namespace dirsim;

struct Options
{
    std::uint64_t refs = 2'000'000;
    unsigned reps = 3;
    std::string out;
    double floor = 0.0;
    bool sweep = false;
    bool reserve = true;
    std::string traceCacheDir;
    std::uint64_t traceCacheBudgetMiB = 4096;
    std::uint64_t streamChunkRefs = trace::kDefaultChunkRefs;
    bool repoStats = false;
    bool fused = true;
    bool multi = true;
    double multiFloor = 0.0;
    bool directGen = true;
    std::uint64_t genChunkRefs = 0; //!< 0 = pipeline default.
    double coldFloor = 0.0;
    std::vector<std::string> schemes; //!< Empty = all.
};

/** The sweep campaign's scheme vocabulary (attribution row order). */
const std::vector<std::string> kSweepSchemes = {
    "inval", "dir1nb", "dir2nb", "dir4nb",
    "dir8nb", "dragon", "berkeley"};

struct PointResult
{
    std::string name;
    double seconds = 0.0;    //!< Best-of-reps replay wall clock.
    double refsPerSec = 0.0;
    std::uint64_t refs = 0;
    std::uint64_t blocksTracked = 0;
};

Options
parseOptions(int argc, char **argv)
{
    Options opts;
    for (int a = 1; a < argc; ++a) {
        const auto want = [&](const char *flag) -> const char * {
            if (a + 1 >= argc) {
                std::cerr << "error: " << flag
                          << " requires a value\n";
                std::exit(2);
            }
            return argv[++a];
        };
        if (std::strcmp(argv[a], "--refs") == 0) {
            opts.refs = cli::parseUnsigned(want("--refs"), "--refs");
        } else if (std::strcmp(argv[a], "--reps") == 0) {
            opts.reps = cli::parseUnsignedInRange(
                want("--reps"), "--reps", 1, 100);
        } else if (std::strcmp(argv[a], "--out") == 0) {
            opts.out = want("--out");
        } else if (std::strcmp(argv[a], "--floor") == 0) {
            opts.floor = cli::parseDoubleInRange(
                want("--floor"), "--floor", 0.0,
                std::numeric_limits<double>::max());
        } else if (std::strcmp(argv[a], "--sweep") == 0) {
            opts.sweep = true;
        } else if (std::strcmp(argv[a], "--no-reserve") == 0) {
            opts.reserve = false;
        } else if (std::strcmp(argv[a], "--trace-cache-dir") == 0) {
            opts.traceCacheDir = want("--trace-cache-dir");
        } else if (std::strcmp(argv[a], "--trace-cache-budget") ==
                   0) {
            opts.traceCacheBudgetMiB = cli::parseUnsignedInRange(
                want("--trace-cache-budget"), "--trace-cache-budget",
                1, 16u * 1024 * 1024);
        } else if (std::strcmp(argv[a], "--stream-chunk-refs") == 0) {
            opts.streamChunkRefs = cli::parseUnsignedInRange(
                want("--stream-chunk-refs"), "--stream-chunk-refs",
                1, 1u << 31);
        } else if (std::strcmp(argv[a], "--repo-stats") == 0) {
            opts.repoStats = true;
        } else if (std::strcmp(argv[a], "--no-fused") == 0) {
            opts.fused = false;
        } else if (std::strcmp(argv[a], "--no-multi") == 0) {
            opts.multi = false;
        } else if (std::strcmp(argv[a], "--multi-floor") == 0) {
            opts.multiFloor = cli::parseDoubleInRange(
                want("--multi-floor"), "--multi-floor", 0.0,
                std::numeric_limits<double>::max());
        } else if (std::strcmp(argv[a], "--no-direct-gen") == 0) {
            opts.directGen = false;
        } else if (std::strcmp(argv[a], "--gen-chunk-refs") == 0) {
            opts.genChunkRefs = cli::parseUnsignedInRange(
                want("--gen-chunk-refs"), "--gen-chunk-refs", 1,
                1u << 31);
        } else if (std::strcmp(argv[a], "--cold-floor") == 0) {
            opts.coldFloor = cli::parseDoubleInRange(
                want("--cold-floor"), "--cold-floor", 0.0,
                std::numeric_limits<double>::max());
        } else if (std::strcmp(argv[a], "--schemes") == 0) {
            opts.schemes = cli::parseNameList(
                want("--schemes"), "--schemes", kSweepSchemes);
        } else {
            std::cerr << "error: unknown flag '" << argv[a] << "'\n"
                      << "usage: bench_hotpath [--refs N] [--reps N] "
                         "[--out PATH] [--floor R] [--sweep] "
                         "[--schemes CSV] [--no-reserve] "
                         "[--no-fused] [--no-multi] "
                         "[--multi-floor R] [--no-direct-gen] "
                         "[--gen-chunk-refs N] [--cold-floor R] "
                         "[--trace-cache-dir PATH] "
                         "[--trace-cache-budget MiB] "
                         "[--stream-chunk-refs N] [--repo-stats]\n";
            std::exit(2);
        }
    }
    if (!opts.schemes.empty() && !opts.sweep) {
        std::cerr << "error: --schemes only applies to --sweep\n";
        std::exit(2);
    }
    if (opts.multiFloor > 0.0 && !opts.sweep) {
        std::cerr << "error: --multi-floor only applies to --sweep\n";
        std::exit(2);
    }
    if (opts.coldFloor > 0.0 && !opts.sweep) {
        std::cerr << "error: --cold-floor only applies to --sweep\n";
        std::exit(2);
    }
    if (opts.out.empty())
        opts.out = opts.sweep ? "BENCH_sweep.json"
                              : "BENCH_hotpath.json";
    return opts;
}

/** Engine variants on the replay hot path, most important first
 *  (the --floor gate checks every reported point). */
using EngineMaker =
    std::function<std::unique_ptr<coherence::CoherenceEngine>()>;

std::vector<std::pair<std::string, EngineMaker>>
enginePoints(unsigned units)
{
    static const directory::FullMapFactory fullMap;
    return {
        {"inval",
         [units] {
             coherence::InvalEngineConfig cfg;
             cfg.nUnits = units;
             return std::make_unique<coherence::InvalEngine>(cfg);
         }},
        {"inval+fullmap",
         [units] {
             coherence::InvalEngineConfig cfg;
             cfg.nUnits = units;
             cfg.dirFactory = &fullMap;
             return std::make_unique<coherence::InvalEngine>(cfg);
         }},
        {"dir1nb",
         [units] {
             return std::make_unique<coherence::LimitedEngine>(units,
                                                               1);
         }},
        {"wti",
         [units] {
             return std::make_unique<coherence::WtiEngine>(units,
                                                           true);
         }},
        {"dragon",
         [units] {
             return std::make_unique<coherence::DragonEngine>(units);
         }},
        {"berkeley",
         [units] {
             return std::make_unique<coherence::BerkeleyEngine>(units);
         }},
    };
}

/** Best-of-reps replay of @p trace through a fresh engine each rep. */
PointResult
runEnginePoint(const std::string &name, const EngineMaker &make,
               const trace::MemoryTrace &trace,
               const sim::SimConfig &simCfg, unsigned reps)
{
    PointResult pr;
    pr.name = name;
    for (unsigned rep = 0; rep < reps; ++rep) {
        sim::Simulator simulator(simCfg);
        coherence::CoherenceEngine &engine =
            simulator.addEngine(make());
        trace::MemoryTraceSource source(trace);
        bench::WallTimer timer;
        const std::uint64_t refs = simulator.run(source);
        const double s = timer.seconds();
        if (rep == 0 || s < pr.seconds) {
            pr.seconds = s;
            pr.refs = refs;
            pr.blocksTracked = engine.blocksTracked();
        }
    }
    pr.refsPerSec = pr.seconds > 0.0
                        ? static_cast<double>(pr.refs) / pr.seconds
                        : 0.0;
    return pr;
}

/** Best-of-reps decode-once replay of @p prepared. */
PointResult
runPreparedEnginePoint(const std::string &name, const EngineMaker &make,
                       const trace::PreparedTrace &prepared,
                       const sim::SimConfig &simCfg, unsigned reps)
{
    PointResult pr;
    pr.name = name + "+prep";
    for (unsigned rep = 0; rep < reps; ++rep) {
        sim::Simulator simulator(simCfg);
        coherence::CoherenceEngine &engine =
            simulator.addEngine(make());
        bench::WallTimer timer;
        const std::uint64_t refs = simulator.run(prepared);
        const double s = timer.seconds();
        if (rep == 0 || s < pr.seconds) {
            pr.seconds = s;
            pr.refs = refs;
            pr.blocksTracked = engine.blocksTracked();
        }
    }
    pr.refsPerSec = pr.seconds > 0.0
                        ? static_cast<double>(pr.refs) / pr.seconds
                        : 0.0;
    return pr;
}

/** One timed-bus point: the discrete-event layer on the same trace. */
PointResult
runTimedPoint(const trace::MemoryTrace &trace,
              const sim::SimConfig &simCfg, unsigned units,
              unsigned reps)
{
    PointResult pr;
    pr.name = "timed-dir0b";
    for (unsigned rep = 0; rep < reps; ++rep) {
        timing::TimedBusConfig cfg;
        cfg.scheme = sim::Scheme::Dir0B;
        cfg.bus = timing::timedPipelinedBus();
        cfg.sim = simCfg;
        coherence::InvalEngineConfig ecfg;
        ecfg.nUnits = units;
        timing::TimedBusSim sim(
            cfg, std::make_unique<coherence::InvalEngine>(ecfg));
        trace::MemoryTraceSource source(trace);
        bench::WallTimer timer;
        const timing::TimedRun run = sim.run(source);
        const double s = timer.seconds();
        if (rep == 0 || s < pr.seconds) {
            pr.seconds = s;
            pr.refs = run.refs;
        }
    }
    // TimedRun does not expose the engine's block table; the JSON
    // reports blocks_tracked = 0 for this point.
    pr.refsPerSec = pr.seconds > 0.0
                        ? static_cast<double>(pr.refs) / pr.seconds
                        : 0.0;
    return pr;
}

/** The timed-bus layer replaying the prepared per-CPU streams. */
PointResult
runTimedPreparedPoint(const trace::PreparedTrace &prepared,
                      const sim::SimConfig &simCfg, unsigned units,
                      unsigned reps)
{
    PointResult pr;
    pr.name = "timed-dir0b+prep";
    for (unsigned rep = 0; rep < reps; ++rep) {
        timing::TimedBusConfig cfg;
        cfg.scheme = sim::Scheme::Dir0B;
        cfg.bus = timing::timedPipelinedBus();
        cfg.sim = simCfg;
        coherence::InvalEngineConfig ecfg;
        ecfg.nUnits = units;
        timing::TimedBusSim sim(
            cfg, std::make_unique<coherence::InvalEngine>(ecfg));
        bench::WallTimer timer;
        const timing::TimedRun run = sim.run(prepared);
        const double s = timer.seconds();
        if (rep == 0 || s < pr.seconds) {
            pr.seconds = s;
            pr.refs = run.refs;
        }
    }
    pr.refsPerSec = pr.seconds > 0.0
                        ? static_cast<double>(pr.refs) / pr.seconds
                        : 0.0;
    return pr;
}

long
peakRssKb()
{
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    return ru.ru_maxrss; // KiB on Linux.
}

void
writeJson(const Options &opts, const gen::WorkloadConfig &workload,
          const std::vector<PointResult> &points,
          double decodeSeconds)
{
    std::ofstream os(opts.out);
    if (!os) {
        std::cerr << "error: cannot write '" << opts.out << "'\n";
        std::exit(1);
    }
    os << "{\n";
    os << "  \"bench\": \"hotpath\",\n";
    os << "  \"workload\": \"" << workload.name << "\",\n";
    os << "  \"refs\": " << opts.refs << ",\n";
    os << "  \"reps\": " << opts.reps << ",\n";
    os << "  \"reserve\": " << (opts.reserve ? "true" : "false")
       << ",\n";
    os << "  \"peak_rss_kb\": " << peakRssKb() << ",\n";
    os << "  \"decode_seconds\": " << decodeSeconds << ",\n";
    os << "  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const PointResult &p = points[i];
        os << "    {\"name\": \"" << p.name << "\", "
           << "\"refs\": " << p.refs << ", "
           << "\"seconds\": " << p.seconds << ", "
           << "\"refs_per_sec\": "
           << static_cast<std::uint64_t>(p.refsPerSec) << ", "
           << "\"blocks_tracked\": " << p.blocksTracked << "}"
           << (i + 1 < points.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
}

/**
 * End-to-end campaign: the fig2/fig3-style evaluation (standard
 * engines, DiriNB pointer sweep, Berkeley) over the quarter-size
 * standard workloads.  Returns the number of (workload, engine)
 * points it ran.
 */
unsigned
runCampaign(const std::vector<gen::WorkloadConfig> &cfgs,
            const analysis::EvalOptions &opts)
{
    const analysis::Evaluation eval =
        analysis::evaluateWorkloads(cfgs, opts);
    const std::vector<unsigned> pointers = {1, 2, 4, 8};
    const auto limited = analysis::limitedSweep(cfgs, pointers, opts);
    const auto berkeley = analysis::berkeleyResults(cfgs, opts);
    // Keep the results alive so the optimiser cannot elide a run.
    if (eval.traces.empty() || limited.empty() ||
        berkeley.events.totalRefs() == 0)
        std::cerr << "warning: campaign produced empty results\n";
    return static_cast<unsigned>(cfgs.size() * 3 +
                                 cfgs.size() * pointers.size() +
                                 cfgs.size());
}

/** Per-scheme replay attribution for the sweep JSON. */
struct SchemeResult
{
    std::string name;
    double seconds = 0.0; //!< Best-of-reps replay time, all workloads.
    std::uint64_t refs = 0;
    double refsPerSec = 0.0;
};

/**
 * The campaign's distinct schemes, one engine each (dir1nb appears in
 * both the standard evaluation and the pointer sweep; it is timed
 * once here).  Labels are by construction, not results().name —
 * LimitedEngine clamps its pointer count to the unit count, so
 * dir8nb reports itself as dir4nb on a four-process workload.
 */
std::vector<std::pair<std::string, EngineMaker>>
campaignEngines(unsigned units,
                const std::vector<std::string> &schemeFilter)
{
    const auto wanted = [&schemeFilter](const std::string &name) {
        return schemeFilter.empty() ||
               std::find(schemeFilter.begin(), schemeFilter.end(),
                         name) != schemeFilter.end();
    };
    std::vector<std::pair<std::string, EngineMaker>> makers;
    if (wanted("inval"))
        makers.emplace_back("inval", [units] {
            coherence::InvalEngineConfig cfg;
            cfg.nUnits = units;
            return std::make_unique<coherence::InvalEngine>(cfg);
        });
    for (unsigned p : {1u, 2u, 4u, 8u})
        if (wanted("dir" + std::to_string(p) + "nb"))
            makers.emplace_back("dir" + std::to_string(p) + "nb",
                                [units, p] {
                                    return std::make_unique<
                                        coherence::LimitedEngine>(
                                        units, p);
                                });
    if (wanted("dragon"))
        makers.emplace_back("dragon", [units] {
            return std::make_unique<coherence::DragonEngine>(units);
        });
    if (wanted("berkeley"))
        makers.emplace_back("berkeley", [units] {
            return std::make_unique<coherence::BerkeleyEngine>(units);
        });
    return makers;
}

/** The DiriNB pointer counts the scheme filter keeps, sweep order. */
std::vector<unsigned>
filteredLanePointers(const std::vector<std::string> &schemeFilter)
{
    std::vector<unsigned> lanes;
    for (unsigned p : {1u, 2u, 4u, 8u}) {
        const std::string name = "dir" + std::to_string(p) + "nb";
        if (schemeFilter.empty() ||
            std::find(schemeFilter.begin(), schemeFilter.end(),
                      name) != schemeFilter.end())
            lanes.push_back(p);
    }
    return lanes;
}

/**
 * Time each campaign scheme's replay over the (already warm) prepared
 * traces: one fused pass per workload with per-engine clocks, or —
 * with the --no-fused hatch — one sequential pass per engine.  The
 * campaign timings above measure end-to-end walls; this pass
 * attributes pure replay time to each scheme so a regression in one
 * protocol's hot path is visible in the JSON, not averaged away.
 */
std::vector<SchemeResult>
runSchemeAttribution(const std::vector<gen::WorkloadConfig> &cfgs,
                     const trace::PrepareOptions &prep, bool fused,
                     unsigned reps,
                     const std::vector<std::string> &schemeFilter)
{
    std::vector<SchemeResult> schemes;
    for (unsigned rep = 0; rep < reps; ++rep) {
        std::vector<SchemeResult> pass;
        for (const gen::WorkloadConfig &cfg : cfgs) {
            const auto prepared =
                sim::TraceRepository::global().get(cfg, prep);
            const unsigned units = cfg.space.nProcesses;
            const std::uint64_t expected =
                gen::expectedUniqueBlocks(cfg.space);
            std::vector<std::unique_ptr<coherence::CoherenceEngine>>
                engines;
            std::vector<coherence::CoherenceEngine *> ptrs;
            std::vector<std::string> names;
            for (const auto &[name, make] :
                 campaignEngines(units, schemeFilter)) {
                engines.push_back(make());
                engines.back()->reserveBlocks(expected);
                ptrs.push_back(engines.back().get());
                names.push_back(name);
            }
            if (pass.empty()) {
                pass.resize(engines.size());
                for (std::size_t e = 0; e < engines.size(); ++e)
                    pass[e].name = names[e];
            }
            sim::FusedReplayOptions fr;
            fr.timeEngines = true;
            if (fused) {
                trace::PreparedTraceSpans spans(*prepared);
                const sim::FusedReplayRun run =
                    sim::FusedReplay(fr).run(spans, ptrs);
                for (std::size_t e = 0; e < ptrs.size(); ++e) {
                    pass[e].seconds += run.engineSeconds[e];
                    pass[e].refs += run.totalRefs();
                }
            } else {
                fr.stripRefs = 0;
                for (std::size_t e = 0; e < ptrs.size(); ++e) {
                    trace::PreparedTraceSpans spans(*prepared);
                    const sim::FusedReplayRun run =
                        sim::FusedReplay(fr).run(spans, {ptrs[e]});
                    pass[e].seconds += run.engineSeconds[0];
                    pass[e].refs += run.totalRefs();
                }
            }
        }
        if (schemes.empty()) {
            schemes = std::move(pass);
        } else {
            for (std::size_t e = 0; e < schemes.size(); ++e)
                if (pass[e].seconds < schemes[e].seconds)
                    schemes[e].seconds = pass[e].seconds;
        }
    }
    for (SchemeResult &s : schemes)
        s.refsPerSec = s.seconds > 0.0
                           ? static_cast<double>(s.refs) / s.seconds
                           : 0.0;
    return schemes;
}

/** The collapsed DiriNB row's timing, for the multi-config A/B. */
struct MultiRowResult
{
    bool enabled = false;
    std::vector<unsigned> lanes; //!< Pointer counts, sweep order.
    double seconds = 0.0; //!< Best-of-reps, all workloads, one probe.
    std::uint64_t refs = 0; //!< Stream refs through the shared table.
    /** Sum of the same lanes' independent-engine rows (pass above). */
    double independentSeconds = 0.0;
    double speedup = 0.0;
};

/**
 * Time the collapsed pointer-count row: one MultiLimitedEngine whose
 * lanes are the sweep's DiriNB configurations, co-resident with the
 * other campaign engines so cache pressure matches the independent
 * attribution pass — but only the multi row's per-engine clock is
 * harvested.  Each reference costs one shared block-table probe plus
 * one update per lane, versus one probe per lane for the independent
 * engines; the speedup over the summed independent rows is the gate
 * the CI --multi-floor locks in.
 */
MultiRowResult
runMultiAttribution(const std::vector<gen::WorkloadConfig> &cfgs,
                    const trace::PrepareOptions &prep, unsigned reps,
                    const std::vector<unsigned> &lanes,
                    const std::vector<std::string> &schemeFilter)
{
    MultiRowResult mr;
    mr.lanes = lanes;
    for (unsigned rep = 0; rep < reps; ++rep) {
        double seconds = 0.0;
        std::uint64_t refs = 0;
        for (const gen::WorkloadConfig &cfg : cfgs) {
            const auto prepared =
                sim::TraceRepository::global().get(cfg, prep);
            const unsigned units = cfg.space.nProcesses;
            const std::uint64_t expected =
                gen::expectedUniqueBlocks(cfg.space);
            std::vector<std::unique_ptr<coherence::CoherenceEngine>>
                engines;
            std::vector<coherence::CoherenceEngine *> ptrs;
            std::size_t multiIndex = 0;
            bool multiPlaced = false;
            for (const auto &[name, make] :
                 campaignEngines(units, schemeFilter)) {
                if (name.rfind("dir", 0) == 0) {
                    // The whole DiriNB row becomes one engine.
                    if (multiPlaced)
                        continue;
                    multiIndex = engines.size();
                    multiPlaced = true;
                    engines.push_back(std::make_unique<
                                      coherence::MultiLimitedEngine>(
                        units, lanes));
                } else {
                    engines.push_back(make());
                }
                engines.back()->reserveBlocks(expected);
                ptrs.push_back(engines.back().get());
            }
            sim::FusedReplayOptions fr;
            fr.timeEngines = true;
            trace::PreparedTraceSpans spans(*prepared);
            const sim::FusedReplayRun run =
                sim::FusedReplay(fr).run(spans, ptrs);
            seconds += run.engineSeconds[multiIndex];
            refs += run.totalRefs();
        }
        if (rep == 0 || seconds < mr.seconds) {
            mr.seconds = seconds;
            mr.refs = refs;
        }
    }
    return mr;
}

/** Cold-path phase breakdown for one workload (sweep JSON). */
struct ColdResult
{
    std::string name;
    double generateSeconds = 0.0; //!< Legacy raw-trace generation.
    double prepareSeconds = 0.0;  //!< Legacy two-phase decode.
    double directSeconds = 0.0;   //!< Single-pass direct pipeline.
    double replaySeconds = 0.0;   //!< One fused campaign replay.
    std::uint64_t refs = 0;       //!< Kept refs in the prepared trace.
    double speedup = 0.0; //!< (generate + prepare) / direct.
};

/**
 * Time the cold generate+prepare cost both ways, per workload: the
 * legacy two-pass path (generateTrace, then the two-phase builder
 * decoding on a thread pool — the exact shape the repository ran
 * before the direct pipeline), and the single-pass direct pipeline.
 * The two results are compared column-for-column — a divergence is a
 * hard failure, not a statistic — and one fused replay of the full
 * campaign engine set is timed alongside so the JSON shows where a
 * cold campaign actually spends its wall clock.
 */
std::vector<ColdResult>
runColdAttribution(const std::vector<gen::WorkloadConfig> &cfgs,
                   const trace::PrepareOptions &prep, unsigned reps,
                   const gen::DirectGenConfig &dg)
{
    std::vector<ColdResult> cold;
    for (const gen::WorkloadConfig &cfg : cfgs) {
        ColdResult cr;
        cr.name = cfg.name;

        std::optional<trace::PreparedTrace> legacy;
        for (unsigned rep = 0; rep < reps; ++rep) {
            bench::WallTimer genTimer;
            const trace::MemoryTrace raw = gen::generateTrace(cfg);
            const double genS = genTimer.seconds();
            bench::WallTimer prepTimer;
            trace::PreparedTraceBuilder builder(raw, prep);
            const std::size_t chunks = builder.numChunks();
            const unsigned jobs = util::ThreadPool::resolveThreads(0);
            if (jobs > 1 && chunks > 1) {
                util::ThreadPool pool(jobs);
                for (std::size_t c = 0; c < chunks; ++c)
                    pool.submit(
                        [&builder, c] { builder.decodeChunk(c); });
                pool.wait();
            } else {
                for (std::size_t c = 0; c < chunks; ++c)
                    builder.decodeChunk(c);
            }
            trace::PreparedTrace p = builder.finish();
            const double prepS = prepTimer.seconds();
            if (rep == 0 || genS + prepS < cr.generateSeconds +
                                               cr.prepareSeconds) {
                cr.generateSeconds = genS;
                cr.prepareSeconds = prepS;
            }
            if (rep == 0)
                legacy = std::move(p);
        }

        std::optional<trace::PreparedTrace> direct;
        for (unsigned rep = 0; rep < reps; ++rep) {
            bench::WallTimer timer;
            trace::PreparedTrace p =
                gen::generatePrepared(cfg, prep, dg);
            const double s = timer.seconds();
            if (rep == 0 || s < cr.directSeconds)
                cr.directSeconds = s;
            if (rep == 0)
                direct = std::move(p);
        }

        // Self-check: the two paths must agree byte-for-byte — a
        // timing harness silently comparing different workloads
        // would gate nothing.
        const trace::PreparedTrace &a = *legacy;
        const trace::PreparedTrace &b = *direct;
        const bool same =
            a.dataRefs() == b.dataRefs() &&
            a.instrRefs() == b.instrRefs() &&
            a.numUnits() == b.numUnits() &&
            a.numCpus() == b.numCpus() &&
            (a.dataRefs() == 0 ||
             (std::memcmp(a.blockData(), b.blockData(),
                          a.dataRefs() * sizeof(std::uint32_t)) == 0 &&
              std::memcmp(a.unitData(), b.unitData(),
                          a.dataRefs()) == 0 &&
              std::memcmp(a.typeFlagsData(), b.typeFlagsData(),
                          a.dataRefs()) == 0));
        if (!same) {
            std::cerr << "FAIL: direct generate-prepare diverges "
                         "from the legacy path on workload '"
                      << cfg.name << "'\n";
            std::exit(1);
        }

        const unsigned units = cfg.space.nProcesses;
        const std::uint64_t expected =
            gen::expectedUniqueBlocks(cfg.space);
        for (unsigned rep = 0; rep < reps; ++rep) {
            std::vector<std::unique_ptr<coherence::CoherenceEngine>>
                engines;
            std::vector<coherence::CoherenceEngine *> ptrs;
            for (const auto &[name, make] : campaignEngines(units, {})) {
                engines.push_back(make());
                engines.back()->reserveBlocks(expected);
                ptrs.push_back(engines.back().get());
            }
            trace::PreparedTraceSpans spans(*direct);
            sim::FusedReplayOptions fr;
            bench::WallTimer timer;
            const sim::FusedReplayRun run =
                sim::FusedReplay(fr).run(spans, ptrs);
            const double s = timer.seconds();
            if (run.totalRefs() == 0)
                std::cerr << "warning: empty cold replay\n";
            if (rep == 0 || s < cr.replaySeconds)
                cr.replaySeconds = s;
        }

        cr.refs = direct->totalRefs();
        cr.speedup =
            cr.directSeconds > 0.0
                ? (cr.generateSeconds + cr.prepareSeconds) /
                      cr.directSeconds
                : 0.0;
        cold.push_back(std::move(cr));
    }
    return cold;
}

int
runSweepMode(const Options &opts)
{
    const std::vector<gen::WorkloadConfig> cfgs =
        gen::standardWorkloads();
    std::cout << "bench_hotpath --sweep: " << cfgs.size()
              << " workloads, fig2/fig3-style campaign\n";

    // Raw pass: regenerate and re-decode every workload per stage,
    // as every caller did before the trace repository existed.
    analysis::EvalOptions raw;
    raw.usePreparedTraces = false;
    bench::WallTimer rawTimer;
    const unsigned points = runCampaign(cfgs, raw);
    const double rawSeconds = rawTimer.seconds();
    std::cout << "  raw: " << points << " points in " << rawSeconds
              << " s\n";

    // Prepared pass from a cold repository: the decode split is the
    // one-time generate+prepare cost, the replay split is everything
    // the campaign does on top of the shared prepared traces.  With a
    // trace cache directory the campaign instead streams out-of-core
    // store files (warm files skip generate+prepare entirely).
    analysis::EvalOptions prepared;
    sim::TraceRepository &repo = sim::TraceRepository::global();
    repo.clear();
    trace::PrepareOptions prep;
    prep.blockBytes = prepared.sim.blockBytes;
    prep.domain = prepared.sim.domain;
    bench::WallTimer decodeTimer;
    if (!opts.traceCacheDir.empty()) {
        for (const gen::WorkloadConfig &cfg : cfgs)
            repo.getStored(cfg, prep);
    } else {
        for (const gen::WorkloadConfig &cfg : cfgs)
            repo.get(cfg, prep);
    }
    const double decodeSeconds = decodeTimer.seconds();
    bench::WallTimer replayTimer;
    const unsigned preparedPoints = runCampaign(cfgs, prepared);
    const double replaySeconds = replayTimer.seconds();
    const double preparedSeconds = decodeSeconds + replaySeconds;
    std::cout << "  prepared: decode " << decodeSeconds
              << " s + replay " << replaySeconds << " s = "
              << preparedSeconds << " s\n";

    const double speedup =
        preparedSeconds > 0.0 ? rawSeconds / preparedSeconds : 0.0;
    std::cout << "  speedup " << speedup << "x ("
              << repo.buildCount() << " repository builds)\n";

    // Per-scheme replay attribution over the now-warm repository.
    const std::vector<SchemeResult> schemes = runSchemeAttribution(
        cfgs, prep, opts.fused, opts.reps, opts.schemes);
    for (const SchemeResult &s : schemes)
        std::cout << "  "
                  << bench::throughputLine(s.name, s.refs, s.seconds)
                  << "\n";

    // Multi-configuration pass: the same DiriNB row collapsed into
    // one shared-table engine.  Needs fused replay (the per-engine
    // clocks) and at least two surviving lanes to be a collapse.
    MultiRowResult multi;
    const std::vector<unsigned> lanes =
        filteredLanePointers(opts.schemes);
    if (opts.fused && opts.multi && lanes.size() >= 2) {
        multi = runMultiAttribution(cfgs, prep, opts.reps, lanes,
                                    opts.schemes);
        multi.enabled = true;
        for (const SchemeResult &s : schemes)
            for (const unsigned p : lanes)
                if (s.name == "dir" + std::to_string(p) + "nb")
                    multi.independentSeconds += s.seconds;
        multi.speedup = multi.seconds > 0.0
                            ? multi.independentSeconds / multi.seconds
                            : 0.0;
        std::cout << "  "
                  << bench::throughputLine("multi(" +
                                               std::to_string(
                                                   lanes.size()) +
                                               " lanes)",
                                           multi.refs, multi.seconds)
                  << "\n";
        std::cout << "  multi-config speedup " << multi.speedup
                  << "x over " << lanes.size()
                  << " independent engines\n";
    }

    // Cold-path attribution: where a cold campaign's wall clock goes
    // (generate vs prepare vs replay), and the direct pipeline's
    // speedup over the legacy two-pass cold path — the --cold-floor
    // gate.  Skipped under --no-direct-gen (there is no direct run
    // to attribute).
    std::vector<ColdResult> cold;
    double coldLegacySeconds = 0.0;
    double coldDirectSeconds = 0.0;
    double coldSpeedup = 0.0;
    if (opts.directGen) {
        gen::DirectGenConfig dg;
        if (opts.genChunkRefs != 0)
            dg.chunkRefs = opts.genChunkRefs;
        cold = runColdAttribution(cfgs, prep, opts.reps, dg);
        for (const ColdResult &cr : cold) {
            coldLegacySeconds +=
                cr.generateSeconds + cr.prepareSeconds;
            coldDirectSeconds += cr.directSeconds;
            std::cout << "  cold " << cr.name << ": generate "
                      << cr.generateSeconds << " s + prepare "
                      << cr.prepareSeconds << " s legacy, direct "
                      << cr.directSeconds << " s (" << cr.speedup
                      << "x), replay " << cr.replaySeconds << " s\n";
        }
        coldSpeedup = coldDirectSeconds > 0.0
                          ? coldLegacySeconds / coldDirectSeconds
                          : 0.0;
        std::cout << "  cold generate+prepare speedup " << coldSpeedup
                  << "x (direct single-pass over legacy two-pass)\n";
    }

    std::ofstream os(opts.out);
    if (!os) {
        std::cerr << "error: cannot write '" << opts.out << "'\n";
        return 1;
    }
    os << "{\n";
    os << "  \"bench\": \"hotpath-sweep\",\n";
    os << "  \"workloads\": " << cfgs.size() << ",\n";
    os << "  \"points\": " << points << ",\n";
    os << "  \"raw_seconds\": " << rawSeconds << ",\n";
    os << "  \"raw_points_per_sec\": "
       << (rawSeconds > 0.0 ? points / rawSeconds : 0.0) << ",\n";
    os << "  \"decode_seconds\": " << decodeSeconds << ",\n";
    os << "  \"replay_seconds\": " << replaySeconds << ",\n";
    os << "  \"prepared_seconds\": " << preparedSeconds << ",\n";
    os << "  \"prepared_points_per_sec\": "
       << (preparedSeconds > 0.0 ? preparedPoints / preparedSeconds
                                 : 0.0)
       << ",\n";
    os << "  \"repository_builds\": " << repo.buildCount() << ",\n";
    os << "  \"peak_rss_kb\": " << peakRssKb() << ",\n";
    os << "  \"fused\": " << (opts.fused ? "true" : "false") << ",\n";
    os << "  \"schemes\": [\n";
    for (std::size_t i = 0; i < schemes.size(); ++i) {
        const SchemeResult &s = schemes[i];
        os << "    {\"name\": \"" << s.name << "\", "
           << "\"refs\": " << s.refs << ", "
           << "\"seconds\": " << s.seconds << ", "
           << "\"refs_per_sec\": "
           << static_cast<std::uint64_t>(s.refsPerSec) << ", "
           << "\"fused\": " << (opts.fused ? "true" : "false") << "}"
           << (i + 1 < schemes.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"multiConfig\": " << (multi.enabled ? "true" : "false")
       << ",\n";
    os << "  \"multi_config\": {\"enabled\": "
       << (multi.enabled ? "true" : "false") << ", "
       << "\"lanes\": " << multi.lanes.size() << ", "
       << "\"pointer_counts\": [";
    for (std::size_t i = 0; i < multi.lanes.size(); ++i)
        os << (i ? ", " : "") << multi.lanes[i];
    os << "], "
       << "\"refs\": " << multi.refs << ", "
       << "\"seconds\": " << multi.seconds << ", "
       << "\"refs_per_sec\": "
       << static_cast<std::uint64_t>(
              multi.seconds > 0.0
                  ? static_cast<double>(multi.refs) / multi.seconds
                  : 0.0)
       << ", "
       << "\"independent_seconds\": " << multi.independentSeconds
       << ", "
       << "\"speedup\": " << multi.speedup << "},\n";
    os << "  \"cold\": {\"enabled\": "
       << (opts.directGen ? "true" : "false") << ", "
       << "\"legacy_seconds\": " << coldLegacySeconds << ", "
       << "\"direct_seconds\": " << coldDirectSeconds << ", "
       << "\"speedup\": " << coldSpeedup << ", "
       << "\"workloads\": [";
    for (std::size_t i = 0; i < cold.size(); ++i) {
        const ColdResult &cr = cold[i];
        os << (i ? ",\n    " : "\n    ")
           << "{\"name\": \"" << cr.name << "\", "
           << "\"refs\": " << cr.refs << ", "
           << "\"generate_seconds\": " << cr.generateSeconds << ", "
           << "\"prepare_seconds\": " << cr.prepareSeconds << ", "
           << "\"direct_seconds\": " << cr.directSeconds << ", "
           << "\"replay_seconds\": " << cr.replaySeconds << ", "
           << "\"speedup\": " << cr.speedup << "}";
    }
    os << "]},\n";
    os << "  \"speedup\": " << speedup << "\n";
    os << "}\n";
    std::cout << "  wrote " << opts.out << "\n";

    if (opts.floor > 0.0) {
        if (speedup < opts.floor) {
            std::cerr << "FAIL: prepared-over-raw speedup " << speedup
                      << "x below floor " << opts.floor << "x\n";
            return 1;
        }
        std::cout << "  floor check passed (" << speedup
                  << "x >= " << opts.floor << "x)\n";
    }
    if (opts.multiFloor > 0.0) {
        if (!multi.enabled) {
            std::cerr << "FAIL: --multi-floor set but the "
                         "multi-configuration pass did not run\n";
            return 1;
        }
        if (multi.speedup < opts.multiFloor) {
            std::cerr << "FAIL: multi-config speedup " << multi.speedup
                      << "x below floor " << opts.multiFloor << "x\n";
            return 1;
        }
        std::cout << "  multi floor check passed (" << multi.speedup
                  << "x >= " << opts.multiFloor << "x)\n";
    }
    if (opts.coldFloor > 0.0) {
        if (!opts.directGen) {
            std::cerr << "FAIL: --cold-floor set but --no-direct-gen "
                         "disabled the cold attribution pass\n";
            return 1;
        }
        if (coldSpeedup < opts.coldFloor) {
            std::cerr << "FAIL: cold generate+prepare speedup "
                      << coldSpeedup << "x below floor "
                      << opts.coldFloor << "x\n";
            return 1;
        }
        std::cout << "  cold floor check passed (" << coldSpeedup
                  << "x >= " << opts.coldFloor << "x)\n";
    }
    if (opts.repoStats)
        std::cout << "  repo-stats: " << repo.stats().summary()
                  << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);
    if (!opts.directGen)
        sim::TraceRepository::global().setDirectGen(false);
    if (opts.genChunkRefs != 0)
        sim::TraceRepository::global().setDirectGenChunkRefs(
            opts.genChunkRefs);
    if (!opts.traceCacheDir.empty()) {
        sim::DiskCacheConfig disk;
        disk.dir = opts.traceCacheDir;
        disk.budgetBytes = opts.traceCacheBudgetMiB * 1024 * 1024;
        disk.chunkRefs = opts.streamChunkRefs;
        sim::TraceRepository::global().setDiskCache(disk);
        analysis::setDefaultStreamReplay(true);
    }
    if (!opts.fused)
        analysis::setDefaultFusedReplay(false);
    if (!opts.multi)
        analysis::setDefaultMultiConfig(false);
    if (opts.sweep)
        return runSweepMode(opts);

    gen::WorkloadConfig workload = gen::popsConfig();
    workload.totalRefs = opts.refs;
    const unsigned units = workload.space.nProcesses;

    sim::SimConfig simCfg;
    if (opts.reserve)
        simCfg.expectedBlocks =
            gen::expectedUniqueBlocks(workload.space);
    if (!opts.fused)
        simCfg.replayStripRefs = 0; // Whole-span prepared replay.

    std::cout << "bench_hotpath: workload=" << workload.name
              << " refs=" << opts.refs << " reps=" << opts.reps
              << " reserve=" << (opts.reserve ? "on" : "off") << "\n";

    bench::WallTimer total;
    const trace::MemoryTrace trace = gen::generateTrace(workload);
    std::cout << "  trace materialised in " << total.seconds()
              << " s\n";

    trace::PrepareOptions prep;
    prep.blockBytes = simCfg.blockBytes;
    prep.domain = simCfg.domain;
    prep.timedStreams = true;
    bench::WallTimer decodeTimer;
    const trace::PreparedTrace prepared =
        trace::PreparedTrace::build(trace, prep);
    const double decodeSeconds = decodeTimer.seconds();
    std::cout << "  prepared decode in " << decodeSeconds << " s ("
              << prepared.byteSize() / (1024 * 1024) << " MiB SoA)\n";

    std::vector<PointResult> points;
    for (const auto &[name, make] : enginePoints(units)) {
        points.push_back(
            runEnginePoint(name, make, trace, simCfg, opts.reps));
        points.push_back(runPreparedEnginePoint(name, make, prepared,
                                                simCfg, opts.reps));
    }
    points.push_back(runTimedPoint(trace, simCfg, units, opts.reps));
    points.push_back(
        runTimedPreparedPoint(prepared, simCfg, units, opts.reps));

    for (const PointResult &p : points) {
        std::cout << bench::throughputLine(p.name, p.refs, p.seconds);
        if (p.blocksTracked != 0)
            std::cout << " (" << p.blocksTracked << " blocks)";
        std::cout << "\n";
    }
    std::cout << "  peak RSS " << peakRssKb() << " KiB, total "
              << total.seconds() << " s\n";

    writeJson(opts, workload, points, decodeSeconds);
    std::cout << "  wrote " << opts.out << "\n";

    if (opts.floor > 0.0) {
        // Every reported point must clear the floor, so a regression
        // in a non-inval engine (or the timed layer) cannot land
        // silently behind a healthy leading point.
        const PointResult *slowest = &points.front();
        for (const PointResult &p : points)
            if (p.refsPerSec < slowest->refsPerSec)
                slowest = &p;
        if (slowest->refsPerSec < opts.floor) {
            std::cerr << "FAIL: " << slowest->name << " replay "
                      << static_cast<std::uint64_t>(
                             slowest->refsPerSec)
                      << " refs/sec below floor "
                      << static_cast<std::uint64_t>(opts.floor)
                      << "\n";
            return 1;
        }
        std::cout << "  floor check passed (slowest point "
                  << slowest->name << ", "
                  << static_cast<std::uint64_t>(slowest->refsPerSec)
                  << " >= " << static_cast<std::uint64_t>(opts.floor)
                  << " refs/sec)\n";
    }
    if (opts.repoStats)
        std::cout << "  repo-stats: "
                  << sim::TraceRepository::global().stats().summary()
                  << "\n";
    return 0;
}
