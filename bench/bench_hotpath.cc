/**
 * @file
 * Hot-path throughput harness: raw engine replay speed in refs/sec.
 *
 * The exhibit benches measure whole evaluations (workload generation
 * plus simulation); this harness isolates the per-reference hot path
 * that PR 3's flat-storage refactor targets.  It materialises one
 * workload trace up front, then replays it through each engine
 * variant and through one timed-bus point, timing only the replay.
 * Results (refs/sec, resident-block count per engine, peak RSS) land
 * in a machine-readable JSON file so CI and the PR description can
 * compare before/after numbers.
 *
 * Unlike the exhibit benches this is a plain main(): google-benchmark
 * adds nothing to a best-of-N wall-clock measurement of a
 * deterministic replay loop.
 *
 * Flags:
 *   --refs N       trace length (default 2,000,000)
 *   --reps N       repetitions per point, best-of (default 3)
 *   --out PATH     JSON output path (default BENCH_hotpath.json)
 *   --floor R      fail (exit 1) if the inval point runs below R
 *                  refs/sec (default 0 = disabled)
 *   --no-reserve   skip the expectedBlocks reserve hint (measures the
 *                  growth-by-rehash path the seed code always paid)
 */

#include <sys/resource.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cli/parse.hh"
#include "coherence/berkeley_engine.hh"
#include "coherence/dragon_engine.hh"
#include "coherence/inval_engine.hh"
#include "coherence/limited_engine.hh"
#include "coherence/wti_engine.hh"
#include "directory/full_map.hh"
#include "gen/workload.hh"
#include "gen/workloads.hh"
#include "sim/simulator.hh"
#include "timing/timed_bus.hh"
#include "trace/trace.hh"

#include "bench_common.hh"

namespace
{

using namespace dirsim;

struct Options
{
    std::uint64_t refs = 2'000'000;
    unsigned reps = 3;
    std::string out = "BENCH_hotpath.json";
    double floor = 0.0;
    bool reserve = true;
};

struct PointResult
{
    std::string name;
    double seconds = 0.0;    //!< Best-of-reps replay wall clock.
    double refsPerSec = 0.0;
    std::uint64_t refs = 0;
    std::uint64_t blocksTracked = 0;
};

Options
parseOptions(int argc, char **argv)
{
    Options opts;
    for (int a = 1; a < argc; ++a) {
        const auto want = [&](const char *flag) -> const char * {
            if (a + 1 >= argc) {
                std::cerr << "error: " << flag
                          << " requires a value\n";
                std::exit(2);
            }
            return argv[++a];
        };
        if (std::strcmp(argv[a], "--refs") == 0) {
            opts.refs = cli::parseUnsigned(want("--refs"), "--refs");
        } else if (std::strcmp(argv[a], "--reps") == 0) {
            opts.reps = cli::parseUnsignedInRange(
                want("--reps"), "--reps", 1, 100);
        } else if (std::strcmp(argv[a], "--out") == 0) {
            opts.out = want("--out");
        } else if (std::strcmp(argv[a], "--floor") == 0) {
            char *end = nullptr;
            const char *text = want("--floor");
            opts.floor = std::strtod(text, &end);
            if (end == text || *end != '\0' || opts.floor < 0.0) {
                std::cerr << "error: --floor expects a non-negative "
                             "number, got '" << text << "'\n";
                std::exit(2);
            }
        } else if (std::strcmp(argv[a], "--no-reserve") == 0) {
            opts.reserve = false;
        } else {
            std::cerr << "error: unknown flag '" << argv[a] << "'\n"
                      << "usage: bench_hotpath [--refs N] [--reps N] "
                         "[--out PATH] [--floor R] [--no-reserve]\n";
            std::exit(2);
        }
    }
    return opts;
}

/** Engine variants on the replay hot path, most important first
 *  (the --floor gate watches the leading inval point). */
using EngineMaker =
    std::function<std::unique_ptr<coherence::CoherenceEngine>()>;

std::vector<std::pair<std::string, EngineMaker>>
enginePoints(unsigned units)
{
    static const directory::FullMapFactory fullMap;
    return {
        {"inval",
         [units] {
             coherence::InvalEngineConfig cfg;
             cfg.nUnits = units;
             return std::make_unique<coherence::InvalEngine>(cfg);
         }},
        {"inval+fullmap",
         [units] {
             coherence::InvalEngineConfig cfg;
             cfg.nUnits = units;
             cfg.dirFactory = &fullMap;
             return std::make_unique<coherence::InvalEngine>(cfg);
         }},
        {"dir1nb",
         [units] {
             return std::make_unique<coherence::LimitedEngine>(units,
                                                               1);
         }},
        {"wti",
         [units] {
             return std::make_unique<coherence::WtiEngine>(units,
                                                           true);
         }},
        {"dragon",
         [units] {
             return std::make_unique<coherence::DragonEngine>(units);
         }},
        {"berkeley",
         [units] {
             return std::make_unique<coherence::BerkeleyEngine>(units);
         }},
    };
}

/** Best-of-reps replay of @p trace through a fresh engine each rep. */
PointResult
runEnginePoint(const std::string &name, const EngineMaker &make,
               const trace::MemoryTrace &trace,
               const sim::SimConfig &simCfg, unsigned reps)
{
    PointResult pr;
    pr.name = name;
    for (unsigned rep = 0; rep < reps; ++rep) {
        sim::Simulator simulator(simCfg);
        coherence::CoherenceEngine &engine =
            simulator.addEngine(make());
        trace::MemoryTraceSource source(trace);
        bench::WallTimer timer;
        const std::uint64_t refs = simulator.run(source);
        const double s = timer.seconds();
        if (rep == 0 || s < pr.seconds) {
            pr.seconds = s;
            pr.refs = refs;
            pr.blocksTracked = engine.blocksTracked();
        }
    }
    pr.refsPerSec = pr.seconds > 0.0
                        ? static_cast<double>(pr.refs) / pr.seconds
                        : 0.0;
    return pr;
}

/** One timed-bus point: the discrete-event layer on the same trace. */
PointResult
runTimedPoint(const trace::MemoryTrace &trace,
              const sim::SimConfig &simCfg, unsigned units,
              unsigned reps)
{
    PointResult pr;
    pr.name = "timed-dir0b";
    for (unsigned rep = 0; rep < reps; ++rep) {
        timing::TimedBusConfig cfg;
        cfg.scheme = sim::Scheme::Dir0B;
        cfg.bus = timing::timedPipelinedBus();
        cfg.sim = simCfg;
        coherence::InvalEngineConfig ecfg;
        ecfg.nUnits = units;
        timing::TimedBusSim sim(
            cfg, std::make_unique<coherence::InvalEngine>(ecfg));
        trace::MemoryTraceSource source(trace);
        bench::WallTimer timer;
        const timing::TimedRun run = sim.run(source);
        const double s = timer.seconds();
        if (rep == 0 || s < pr.seconds) {
            pr.seconds = s;
            pr.refs = run.refs;
        }
    }
    // TimedRun does not expose the engine's block table; the JSON
    // reports blocks_tracked = 0 for this point.
    pr.refsPerSec = pr.seconds > 0.0
                        ? static_cast<double>(pr.refs) / pr.seconds
                        : 0.0;
    return pr;
}

long
peakRssKb()
{
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    return ru.ru_maxrss; // KiB on Linux.
}

void
writeJson(const Options &opts, const gen::WorkloadConfig &workload,
          const std::vector<PointResult> &points)
{
    std::ofstream os(opts.out);
    if (!os) {
        std::cerr << "error: cannot write '" << opts.out << "'\n";
        std::exit(1);
    }
    os << "{\n";
    os << "  \"bench\": \"hotpath\",\n";
    os << "  \"workload\": \"" << workload.name << "\",\n";
    os << "  \"refs\": " << opts.refs << ",\n";
    os << "  \"reps\": " << opts.reps << ",\n";
    os << "  \"reserve\": " << (opts.reserve ? "true" : "false")
       << ",\n";
    os << "  \"peak_rss_kb\": " << peakRssKb() << ",\n";
    os << "  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const PointResult &p = points[i];
        os << "    {\"name\": \"" << p.name << "\", "
           << "\"refs\": " << p.refs << ", "
           << "\"seconds\": " << p.seconds << ", "
           << "\"refs_per_sec\": "
           << static_cast<std::uint64_t>(p.refsPerSec) << ", "
           << "\"blocks_tracked\": " << p.blocksTracked << "}"
           << (i + 1 < points.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);

    gen::WorkloadConfig workload = gen::popsConfig();
    workload.totalRefs = opts.refs;
    const unsigned units = workload.space.nProcesses;

    sim::SimConfig simCfg;
    if (opts.reserve)
        simCfg.expectedBlocks =
            gen::expectedUniqueBlocks(workload.space);

    std::cout << "bench_hotpath: workload=" << workload.name
              << " refs=" << opts.refs << " reps=" << opts.reps
              << " reserve=" << (opts.reserve ? "on" : "off") << "\n";

    bench::WallTimer total;
    const trace::MemoryTrace trace = gen::generateTrace(workload);
    std::cout << "  trace materialised in " << total.seconds()
              << " s\n";

    std::vector<PointResult> points;
    for (const auto &[name, make] : enginePoints(units))
        points.push_back(
            runEnginePoint(name, make, trace, simCfg, opts.reps));
    points.push_back(runTimedPoint(trace, simCfg, units, opts.reps));

    for (const PointResult &p : points) {
        std::cout << bench::throughputLine(p.name, p.refs, p.seconds);
        if (p.blocksTracked != 0)
            std::cout << " (" << p.blocksTracked << " blocks)";
        std::cout << "\n";
    }
    std::cout << "  peak RSS " << peakRssKb() << " KiB, total "
              << total.seconds() << " s\n";

    writeJson(opts, workload, points);
    std::cout << "  wrote " << opts.out << "\n";

    if (opts.floor > 0.0) {
        const PointResult &inval = points.front();
        if (inval.refsPerSec < opts.floor) {
            std::cerr << "FAIL: inval replay "
                      << static_cast<std::uint64_t>(inval.refsPerSec)
                      << " refs/sec below floor "
                      << static_cast<std::uint64_t>(opts.floor)
                      << "\n";
            return 1;
        }
        std::cout << "  floor check passed ("
                  << static_cast<std::uint64_t>(inval.refsPerSec)
                  << " >= " << static_cast<std::uint64_t>(opts.floor)
                  << " refs/sec)\n";
    }
    return 0;
}
