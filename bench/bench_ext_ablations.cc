/**
 * @file
 * Extension F: ablations of fixed design choices in the paper.
 *
 *  - Block size: the paper fixes 4-word (16-byte) blocks.  Sweeping
 *    the block size trades spatial prefetch (fewer misses) against
 *    false sharing (more invalidations) and longer transfers.
 *  - Lock placement: each lock word in its own block versus two lock
 *    words falsely shared per block — a classic layout pathology that
 *    multiplies coherence traffic without any change in program
 *    logic.
 *  - Migration rate: how quickly sharing induced purely by process
 *    migration pollutes the processor-domain numbers.
 */

#include "bench_common.hh"

#include "bus/bus_model.hh"
#include "sim/cost_model.hh"
#include "stats/table.hh"

namespace
{

using namespace dirsim;

std::string
blockSizeExhibit()
{
    const auto pipe_base = bus::BusPrimitives{};
    stats::TextTable table(
        "Ablation F1: coherence block size (pops workload, pipelined "
        "bus)",
        {"Block", "Dir0B rm %", "wh-cln %", "Dir0B cyc/ref",
         "Dragon cyc/ref"});
    for (unsigned block_bytes : {4u, 8u, 16u, 32u, 64u}) {
        // The workload's data layout is fixed (16-byte object
        // granularity); only the coherence block size varies, so
        // large blocks genuinely group neighbouring objects (false
        // sharing) and prefetch neighbours (fewer first misses).
        gen::WorkloadConfig cfg = gen::popsConfig();
        cfg.totalRefs = 300'000;

        analysis::EvalOptions opts = dirsim::bench::sweepOptions();
        opts.sim.blockBytes = block_bytes;
        const auto eval = analysis::evaluateWorkloads({cfg}, opts);

        // Larger blocks transfer more words per miss.
        bus::BusPrimitives prim = pipe_base;
        prim.wordsPerBlock = std::max(1u, block_bytes / 4);
        const bus::BusCosts pipe = bus::pipelinedBus(prim);

        const auto &iv = eval.average.inval;
        const double refs =
            static_cast<double>(iv.events.totalRefs());
        table.addRow(
            {std::to_string(block_bytes) + "B",
             stats::TextTable::pct(
                 static_cast<double>(iv.events.readMisses()) / refs),
             stats::TextTable::pct(
                 static_cast<double>(iv.events.writeHitsClean()) /
                 refs),
             stats::TextTable::num(
                 sim::computeCost(sim::Scheme::Dir0B, iv, pipe)
                     .total()),
             stats::TextTable::num(
                 sim::computeCost(sim::Scheme::Dragon,
                                  eval.average.dragon, pipe)
                     .total())});
    }
    return table.toString();
}

std::string
falseSharingExhibit()
{
    stats::TextTable table(
        "Ablation F2: lock placement (pops workload, pipelined bus "
        "cycles per reference)",
        {"Layout", "Dir1NB", "Dir0B", "Dragon"});
    const auto pipe = bus::standardBuses().pipelined;
    for (bool false_sharing : {false, true}) {
        gen::WorkloadConfig cfg = gen::popsConfig();
        cfg.totalRefs = 300'000;
        // Two equally hot locks so the falsely-shared pair is
        // actually contended concurrently.
        cfg.behavior.nHotLocks = 2;
        cfg.space.falseSharingLocks = false_sharing;
        const auto eval = analysis::evaluateWorkloads(
            {cfg}, dirsim::bench::sweepOptions());
        table.addRow(
            {false_sharing ? "2 locks / block" : "1 lock / block",
             stats::TextTable::num(
                 sim::computeCost(sim::Scheme::Dir1NB,
                                  eval.average.dir1nb, pipe)
                     .total()),
             stats::TextTable::num(
                 sim::computeCost(sim::Scheme::Dir0B,
                                  eval.average.inval, pipe)
                     .total()),
             stats::TextTable::num(
                 sim::computeCost(sim::Scheme::Dragon,
                                  eval.average.dragon, pipe)
                     .total())});
    }
    return table.toString();
}

std::string
migrationExhibit()
{
    stats::TextTable table(
        "Ablation F3: process migration rate (pops workload, "
        "processor-domain sharing, pipelined bus)",
        {"Migration/quantum", "Dir0B", "Dragon"});
    const auto pipe = bus::standardBuses().pipelined;
    for (double rate : {0.0, 0.05, 0.25}) {
        gen::WorkloadConfig cfg = gen::popsConfig();
        cfg.totalRefs = 300'000;
        cfg.migrationRate = rate;
        cfg.quantumRefs = 20'000;
        analysis::EvalOptions opts = dirsim::bench::sweepOptions();
        opts.sim.domain = sim::SharingDomain::Processor;
        opts.nUnits = cfg.space.nCpus;
        const auto eval = analysis::evaluateWorkloads({cfg}, opts);
        table.addRow(
            {stats::TextTable::num(rate, 2),
             stats::TextTable::num(
                 sim::computeCost(sim::Scheme::Dir0B,
                                  eval.average.inval, pipe)
                     .total()),
             stats::TextTable::num(
                 sim::computeCost(sim::Scheme::Dragon,
                                  eval.average.dragon, pipe)
                     .total())});
    }
    return table.toString();
}

void
BM_BlockSizeSweepPoint(benchmark::State &state)
{
    gen::WorkloadConfig cfg = gen::popsConfig();
    cfg.totalRefs = 100'000;
    cfg.space.blockBytes = static_cast<unsigned>(state.range(0));
    analysis::EvalOptions opts;
    opts.sim.blockBytes = cfg.space.blockBytes;
    for (auto _ : state) {
        const auto eval = analysis::evaluateWorkloads({cfg}, opts);
        benchmark::DoNotOptimize(
            eval.average.inval.events.totalRefs());
    }
}
BENCHMARK(BM_BlockSizeSweepPoint)->Arg(4)->Arg(64);

} // namespace

int
main(int argc, char **argv)
{
    dirsim::bench::parseJobs(&argc, argv);
    dirsim::bench::WallTimer timer;
    std::string exhibit = blockSizeExhibit() + "\n" +
                          falseSharingExhibit() + "\n" +
                          migrationExhibit();
    std::ostringstream timing;
    timing << "\n[sweep] ablation sweeps (--jobs "
           << dirsim::bench::sweepJobs() << "): " << timer.seconds()
           << " s\n";
    return dirsim::bench::runBench(argc, argv, exhibit + timing.str());
}
