/**
 * @file
 * Extension E: the paper's scaling thesis, quantified.
 *
 * Section 2: "Attempts to scale [snoopy schemes] by replacing the bus
 * with a higher bandwidth communication network will not be
 * successful since the consistency protocol relies on low-latency
 * broadcasts...  [directory] messages are directed (i.e., not
 * broadcast), they can be easily sent over any arbitrary
 * interconnection network."
 *
 * This bench prices the protocols on a point-to-point network of n
 * nodes (log2(n) hop diameter, broadcast emulated as n-1 directed
 * messages) and sweeps n: the broadcast-reliant schemes (snoopy WTI,
 * identity-free Dir0B) blow up with machine size while the directed
 * directory schemes (full map, limited pointers) stay nearly flat.
 */

#include "bench_common.hh"

#include "analysis/extensions.hh"
#include "bus/network.hh"

namespace
{

using namespace dirsim;

void
BM_NetworkStudyPoint(benchmark::State &state)
{
    const unsigned cpus = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        const auto points =
            analysis::networkStudy({cpus}, 30'000);
        benchmark::DoNotOptimize(points[0].dirnnbDirected);
    }
}
BENCHMARK(BM_NetworkStudyPoint)->Arg(4)->Arg(16);

void
BM_NetworkCostTables(benchmark::State &state)
{
    for (auto _ : state) {
        double acc = 0.0;
        for (unsigned n : {4u, 16u, 64u}) {
            bus::NetworkParams params;
            params.nNodes = n;
            acc += bus::networkCosts(params).memoryAccess;
            acc += bus::networkBroadcastCost(params);
        }
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_NetworkCostTables);

} // namespace

int
main(int argc, char **argv)
{
    const auto points =
        dirsim::analysis::networkStudy({2, 4, 8, 16, 32, 64});
    return dirsim::bench::runBench(
        argc, argv,
        dirsim::analysis::renderNetwork(points).toString());
}
