/**
 * @file
 * Reproduces Figure 3: bus cycles per memory reference for each
 * individual trace.  The paper's observation — pops and thor are
 * similar while pero is much cheaper because it shares far less —
 * should be visible in the rows.
 */

#include "bench_common.hh"

namespace
{

using namespace dirsim;

void
BM_PerTraceCosts(benchmark::State &state)
{
    const auto &eval = bench::standardEval();
    for (auto _ : state) {
        double acc = 0.0;
        for (const auto &te : eval.traces) {
            for (const auto &sc : analysis::schemeCosts(te))
                acc += sc.pipelined.total();
        }
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_PerTraceCosts);

} // namespace

int
main(int argc, char **argv)
{
    dirsim::bench::parseJobs(&argc, argv);
    const std::string exhibit =
        dirsim::analysis::figure3(dirsim::bench::standardEval())
            .toString() +
        "\n" + dirsim::bench::sweepTimingReport();
    return dirsim::bench::runBench(argc, argv, exhibit);
}
