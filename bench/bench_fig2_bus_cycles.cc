/**
 * @file
 * Reproduces Figure 2: bus cycles per memory reference for the four
 * schemes, with the pipelined and non-pipelined bus models as the
 * low/high ends of each bar (trace average).
 */

#include "bench_common.hh"

#include "sim/cost_model.hh"

namespace
{

using namespace dirsim;

void
BM_SchemeCosts(benchmark::State &state)
{
    const auto &eval = bench::standardEval();
    for (auto _ : state) {
        const auto costs = analysis::schemeCosts(eval.average);
        benchmark::DoNotOptimize(costs.size());
    }
}
BENCHMARK(BM_SchemeCosts);

} // namespace

int
main(int argc, char **argv)
{
    dirsim::bench::parseJobs(&argc, argv);
    const std::string exhibit =
        dirsim::analysis::figure2(dirsim::bench::standardEval())
            .toString() +
        "\n" + dirsim::bench::sweepTimingReport();
    return dirsim::bench::runBench(argc, argv, exhibit);
}
