/**
 * @file
 * Reproduces Figure 1: the histogram of the number of caches that
 * must be invalidated on a write to a previously-clean block.  The
 * paper's headline: over 85 % of such writes invalidate at most one
 * cache, which is what motivates limited-pointer directories.
 */

#include "bench_common.hh"

#include "coherence/inval_engine.hh"
#include "gen/workload.hh"

namespace
{

using namespace dirsim;

void
BM_FanoutCollection(benchmark::State &state)
{
    gen::WorkloadConfig cfg = gen::thorConfig();
    cfg.totalRefs = 150'000;
    const auto trace = gen::generateTrace(cfg);
    for (auto _ : state) {
        coherence::InvalEngineConfig ecfg;
        ecfg.nUnits = 4;
        coherence::InvalEngine engine(ecfg);
        for (const auto &rec : trace.records()) {
            engine.access(rec.pid, rec.type, rec.addr / 16);
        }
        benchmark::DoNotOptimize(
            engine.results().whClnFanout.totalSamples());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_FanoutCollection);

} // namespace

int
main(int argc, char **argv)
{
    using namespace dirsim;
    const analysis::Figure1 fig =
        analysis::figure1(bench::standardEval());
    return bench::runBench(
        argc, argv,
        analysis::renderFigure1(fig, bench::standardCpus + 1)
            .toString());
}
