/**
 * @file
 * Reproduces Table 5: the breakdown of bus cycles per reference by
 * operation class on the pipelined bus, with the cumulative row the
 * paper publishes as 0.3210 / 0.1466 / 0.0491 / 0.0336.
 */

#include "bench_common.hh"

#include "sim/cost_model.hh"

namespace
{

using namespace dirsim;

void
BM_BreakdownAllSchemes(benchmark::State &state)
{
    const auto &eval = bench::standardEval();
    const auto pipe = bus::standardBuses().pipelined;
    for (auto _ : state) {
        double acc = 0.0;
        acc += sim::computeCost(sim::Scheme::Dir1NB,
                                eval.average.dir1nb, pipe)
                   .total();
        acc += sim::computeCost(sim::Scheme::WTI, eval.average.inval,
                                pipe)
                   .total();
        acc += sim::computeCost(sim::Scheme::Dir0B, eval.average.inval,
                                pipe)
                   .total();
        acc += sim::computeCost(sim::Scheme::Dragon,
                                eval.average.dragon, pipe)
                   .total();
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_BreakdownAllSchemes);

} // namespace

int
main(int argc, char **argv)
{
    return dirsim::bench::runBench(
        argc, argv,
        dirsim::analysis::table5(dirsim::bench::standardEval())
            .toString());
}
