/**
 * @file
 * Strict command-line number parsing shared by the exhibit binaries.
 *
 * std::atoi-style parsing silently maps garbage and negative input to
 * values that pass later range checks ("-3abc" → huge unsigned, "x" →
 * 0); every binary taking a numeric argument uses these helpers
 * instead, so bad input always dies with a message naming the flag.
 * Header-only: the examples and benches link different library sets,
 * and a parse helper is not worth a library of its own.
 */

#ifndef DIRSIM_CLI_PARSE_HH
#define DIRSIM_CLI_PARSE_HH

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

namespace dirsim::cli
{

/**
 * Parse @p text as a non-negative decimal integer.
 *
 * Accepts only an all-digit string (no sign, no trailing junk, no
 * empty string); anything else prints an error naming @p what and
 * exits with status 2, the convention the benches already use for
 * bad flags.
 */
inline unsigned
parseUnsigned(const char *text, const std::string &what)
{
    const std::string s = text == nullptr ? "" : text;
    bool ok = !s.empty();
    unsigned long value = 0;
    for (const char c : s) {
        if (c < '0' || c > '9') {
            ok = false;
            break;
        }
        value = value * 10 + static_cast<unsigned long>(c - '0');
        if (value > 0xffffffffUL) {
            ok = false;
            break;
        }
    }
    if (!ok) {
        std::cerr << "error: invalid " << what << " value '" << s
                  << "' (expected a non-negative integer)\n";
        std::exit(2);
    }
    return static_cast<unsigned>(value);
}

/**
 * parseUnsigned(), then require the value to lie in [@p lo, @p hi]
 * (inclusive); out-of-range input exits with status 2 and a message
 * stating the accepted range.
 */
inline unsigned
parseUnsignedInRange(const char *text, const std::string &what,
                     unsigned lo, unsigned hi)
{
    const unsigned value = parseUnsigned(text, what);
    if (value < lo || value > hi) {
        std::cerr << "error: " << what << " must be in [" << lo << ", "
                  << hi << "], got " << value << "\n";
        std::exit(2);
    }
    return value;
}

/**
 * Parse @p text as a finite decimal floating-point number.
 *
 * Rejects the empty string, trailing characters ("1.5x"), bare signs,
 * non-finite spellings ("nan", "inf") and magnitudes strtod cannot
 * represent; any of these prints an error naming @p what and exits
 * with status 2, matching parseUnsigned.
 */
inline double
parseDouble(const char *text, const std::string &what)
{
    const std::string s = text == nullptr ? "" : text;
    char *end = nullptr;
    errno = 0;
    const double value = std::strtod(s.c_str(), &end);
    const bool consumed =
        !s.empty() && end == s.c_str() + s.size();
    if (!consumed || errno == ERANGE || !std::isfinite(value)) {
        std::cerr << "error: invalid " << what << " value '" << s
                  << "' (expected a finite decimal number)\n";
        std::exit(2);
    }
    return value;
}

/**
 * parseDouble(), then require the value to lie in [@p lo, @p hi]
 * (inclusive); out-of-range input exits with status 2 and a message
 * stating the accepted range.
 */
inline double
parseDoubleInRange(const char *text, const std::string &what,
                   double lo, double hi)
{
    const double value = parseDouble(text, what);
    if (value < lo || value > hi) {
        std::cerr << "error: " << what << " must be in [" << lo << ", "
                  << hi << "], got " << value << "\n";
        std::exit(2);
    }
    return value;
}

/**
 * Parse @p text as a comma-separated list of names, each of which
 * must appear in @p allowed.
 *
 * An empty list, an empty element ("a,,b") or an unknown name exits
 * with status 2 and a message naming @p what plus the accepted
 * vocabulary — a misspelled scheme must be a hard error, not a
 * silently empty sweep.  Duplicates are allowed and preserved; order
 * is the caller's.
 */
inline std::vector<std::string>
parseNameList(const char *text, const std::string &what,
              const std::vector<std::string> &allowed)
{
    const auto die = [&](const std::string &why) {
        std::cerr << "error: invalid " << what << " value: " << why
                  << " (valid:";
        for (const std::string &name : allowed)
            std::cerr << " " << name;
        std::cerr << ")\n";
        std::exit(2);
    };
    const std::string s = text == nullptr ? "" : text;
    if (s.empty())
        die("empty list");
    std::vector<std::string> names;
    std::size_t begin = 0;
    while (begin <= s.size()) {
        const std::size_t comma = s.find(',', begin);
        const std::size_t end =
            comma == std::string::npos ? s.size() : comma;
        const std::string name = s.substr(begin, end - begin);
        if (name.empty())
            die("empty element in '" + s + "'");
        if (std::find(allowed.begin(), allowed.end(), name) ==
            allowed.end())
            die("unknown name '" + name + "'");
        names.push_back(name);
        if (comma == std::string::npos)
            break;
        begin = comma + 1;
    }
    return names;
}

} // namespace dirsim::cli

#endif // DIRSIM_CLI_PARSE_HH
