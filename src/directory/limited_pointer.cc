#include "directory/limited_pointer.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace dirsim::directory
{

LimitedPointerEntry::LimitedPointerEntry(unsigned nUnits,
                                         unsigned nPointers,
                                         bool allowBroadcast)
    : _nUnits(nUnits), _nPointers(nPointers),
      _allowBroadcast(allowBroadcast)
{
    if (nPointers == 0)
        throw std::invalid_argument(
            "LimitedPointerEntry: need at least one pointer "
            "(Dir0NB cannot grant exclusive access)");
    _pointers.reserve(nPointers);
}

bool
LimitedPointerEntry::holds(unsigned unit) const
{
    return std::find(_pointers.begin(), _pointers.end(), unit) !=
           _pointers.end();
}

bool
LimitedPointerEntry::wouldOverflow(unsigned unit) const
{
    return !_broadcast && !holds(unit) &&
           _pointers.size() >= _nPointers;
}

void
LimitedPointerEntry::addSharer(unsigned unit)
{
    assert(unit < _nUnits);
    if (_broadcast || holds(unit))
        return;
    if (_pointers.size() >= _nPointers) {
        if (!_allowBroadcast) {
            throw std::logic_error(
                "LimitedPointerEntry: pointer overflow in no-broadcast "
                "mode; caller must invalidate a copy first");
        }
        // Identities are lost from here on.
        _broadcast = true;
        _pointers.clear();
        return;
    }
    _pointers.push_back(unit);
}

void
LimitedPointerEntry::makeOwner(unsigned unit)
{
    assert(unit < _nUnits);
    _broadcast = false;
    _pointers.clear();
    _pointers.push_back(unit);
    _dirty = true;
}

void
LimitedPointerEntry::removeSharer(unsigned unit)
{
    // Under broadcast the identities are unknown; nothing to remove.
    auto it = std::find(_pointers.begin(), _pointers.end(), unit);
    if (it != _pointers.end())
        _pointers.erase(it);
    if (_pointers.empty() && !_broadcast)
        _dirty = false;
}

void
LimitedPointerEntry::cleanse()
{
    _dirty = false;
}

InvalTargets
LimitedPointerEntry::invalTargets(unsigned writer,
                                  bool writerHasCopy) const
{
    (void)writerHasCopy;
    InvalTargets targets;
    if (_broadcast) {
        targets.broadcast = true;
        return targets;
    }
    for (unsigned unit : _pointers) {
        if (unit != writer)
            targets.mask |= 1ULL << unit;
    }
    return targets;
}

std::unique_ptr<DirEntry>
LimitedPointerFactory::make(unsigned nUnits) const
{
    return std::make_unique<LimitedPointerEntry>(nUnits, _nPointers,
                                                 _allowBroadcast);
}

} // namespace dirsim::directory
