/**
 * @file
 * Finite sparse directory cache.
 *
 * The paper's cost model assumes the directory holds an entry for
 * every memory block.  Real machines keep directory state in a finite
 * set-associative store; when a lookup misses and the set is full, an
 * existing entry is replaced, and coherence demands that every cached
 * copy of the victim block be invalidated first (a dirty owner must
 * also write back).  DirectoryCache models exactly that structure:
 * the *engines* still keep precise sharing state per block, and this
 * class decides which blocks currently have a resident directory
 * entry and which resident entry each new entry displaces.
 *
 * Geometry follows SetAssocTagStore (true LRU, ways kept MRU-first),
 * with one deliberate difference: block identifiers arriving here are
 * BlockMapper's dense sequential ids, so indexing sets by low bits
 * would alias strided footprints systematically.  The set index is
 * therefore derived from util::mix64 of the block id (configurable).
 *
 * entries == 0 selects the unbounded mode: the cache records presence
 * (so hit/miss statistics stay meaningful) but never evicts, which by
 * construction reproduces the infinite-directory model bit-for-bit.
 */

#ifndef DIRSIM_DIRECTORY_DIR_CACHE_HH
#define DIRSIM_DIRECTORY_DIR_CACHE_HH

#include <cstdint>
#include <vector>

#include "mem/block.hh"
#include "util/flat_set.hh"

namespace dirsim::directory
{

/** Shape of the finite directory-entry store. */
struct DirCacheConfig
{
    /** Model a finite directory cache at all? */
    bool enabled = false;
    /** Total entries; 0 means unbounded (never evicts). */
    std::uint64_t entries = 0;
    /** Ways per set; entries/associativity sets (power of two). */
    unsigned associativity = 4;
    /**
     * Spread dense block ids across sets with util::mix64 before
     * masking.  Off, sequential ids map to consecutive sets and
     * strided footprints collapse onto a few sets.
     */
    bool mixSetIndex = true;
};

/** Outcome of one directory-cache lookup-and-fill. */
struct DirCacheTouch
{
    bool hit = false;
    /** A resident entry was replaced to make room. */
    bool evicted = false;
    /** Block whose entry was replaced (valid when evicted). */
    mem::BlockId victim = 0;
};

/** Set-associative, true-LRU cache of directory entries. */
class DirectoryCache
{
  public:
    /**
     * @param cfg Geometry; with finite entries, entries must be a
     *            multiple of associativity and entries/associativity
     *            a nonzero power of two.
     */
    explicit DirectoryCache(const DirCacheConfig &cfg);

    /**
     * Look up @p block's entry, allocating one on a miss; the caller
     * must invalidate all copies of DirCacheTouch::victim when the
     * fill replaced a resident entry.
     */
    DirCacheTouch touch(mem::BlockId block);

    bool contains(mem::BlockId block) const;

    /** Resident entries. */
    std::uint64_t size() const;
    /** True in the unbounded (never-evicting) mode. */
    bool unbounded() const { return _cfg.entries == 0; }
    /** Set count (0 in unbounded mode). */
    std::uint64_t numSets() const { return _numSets; }
    const DirCacheConfig &config() const { return _cfg; }

    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }
    std::uint64_t evictions() const { return _evictions; }

    /**
     * Replacements performed per set (empty in unbounded mode); a
     * skewed histogram means the set index is aliasing footprints.
     */
    const std::vector<std::uint64_t> &setReplacements() const
    {
        return _setReplacements;
    }

    /** Drop every entry and counter; keeps the storage. */
    void clear();
    /** Pre-size the unbounded store for @p blocks entries. */
    void reserveBlocks(std::uint64_t blocks);

  private:
    struct Way
    {
        mem::BlockId block = 0;
        bool valid = false;
    };

    std::uint64_t setIndexOf(mem::BlockId block) const;

    DirCacheConfig _cfg;
    std::uint64_t _numSets = 0;
    std::uint64_t _setMask = 0;
    /** Finite mode: _numSets * associativity ways, MRU-first per set. */
    std::vector<Way> _ways;
    std::vector<std::uint64_t> _setReplacements;
    /** Unbounded mode: presence only. */
    util::FlatSet<mem::BlockId> _present;
    std::uint64_t _resident = 0;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
    std::uint64_t _evictions = 0;
};

} // namespace dirsim::directory

#endif // DIRSIM_DIRECTORY_DIR_CACHE_HH
