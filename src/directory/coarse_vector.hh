/**
 * @file
 * Coarse-vector directory entry (Section 6's limited-broadcast code).
 *
 * The paper proposes storing a word of d = log2(n) digits where each
 * digit is 0, 1 or "both".  A digit pattern with no "both" digits
 * names exactly one cache; each "both" digit doubles the set of caches
 * denoted.  The code always denotes a *superset* of the true holders,
 * so invalidations sent to every denoted cache are correct but may
 * include caches without a copy ("limited broadcast").  Storage is
 * 2 bits per digit = 2*log2(n) bits.
 */

#ifndef DIRSIM_DIRECTORY_COARSE_VECTOR_HH
#define DIRSIM_DIRECTORY_COARSE_VECTOR_HH

#include "directory/entry.hh"

namespace dirsim::directory
{

/** Trinary-digit coded sharer-superset entry. */
class CoarseVectorEntry : public DirEntry
{
  public:
    /** @param nUnits Number of caches; must be a power of two <= 64. */
    explicit CoarseVectorEntry(unsigned nUnits);

    void addSharer(unsigned unit) override;
    void makeOwner(unsigned unit) override;
    void removeSharer(unsigned unit) override;
    void cleanse() override;

    bool dirty() const override { return _dirty; }
    InvalTargets invalTargets(unsigned writer,
                              bool writerHasCopy) const override;

    /** The denoted superset as a cache bitmask (empty when invalid). */
    std::uint64_t denotedMask() const;
    /** Number of digits coded "both". */
    unsigned bothDigits() const;

  private:
    unsigned _nUnits;
    unsigned _nDigits;
    bool _valid = false; //!< Some cache holds the block.
    bool _dirty = false;
    /** Per digit: the 0/1 value when known. */
    std::uint64_t _value = 0;
    /** Per digit: set when the digit is "both". */
    std::uint64_t _both = 0;
};

/** Factory for CoarseVectorEntry. */
class CoarseVectorFactory : public DirEntryFactory
{
  public:
    std::unique_ptr<DirEntry> make(unsigned nUnits) const override;
    std::size_t entryBytes() const override
    {
        return sizeof(CoarseVectorEntry);
    }
    std::size_t entryAlign() const override
    {
        return alignof(CoarseVectorEntry);
    }
    DirEntry *construct(void *mem, unsigned nUnits) const override
    {
        return new (mem) CoarseVectorEntry(nUnits);
    }
};

} // namespace dirsim::directory

#endif // DIRSIM_DIRECTORY_COARSE_VECTOR_HH
