#include "directory/coarse_vector.hh"

#include <cassert>
#include <stdexcept>

#include "mem/block.hh"

namespace dirsim::directory
{

CoarseVectorEntry::CoarseVectorEntry(unsigned nUnits) : _nUnits(nUnits)
{
    if (nUnits == 0 || nUnits > maxUnits || !mem::isPow2(nUnits))
        throw std::invalid_argument(
            "CoarseVectorEntry: cache count must be a power of two "
            "<= 64");
    _nDigits = mem::log2Exact(nUnits);
}

void
CoarseVectorEntry::addSharer(unsigned unit)
{
    assert(unit < _nUnits);
    if (!_valid) {
        _valid = true;
        _value = unit;
        _both = 0;
        return;
    }
    // Merge: any digit where the new index differs from the coded
    // value becomes "both".
    const std::uint64_t diff = (_value ^ unit) & ~_both;
    _both |= diff;
    _value &= ~_both;
}

void
CoarseVectorEntry::makeOwner(unsigned unit)
{
    assert(unit < _nUnits);
    _valid = true;
    _dirty = true;
    _value = unit;
    _both = 0;
}

void
CoarseVectorEntry::removeSharer(unsigned unit)
{
    // The code cannot subtract a member in general; only an exact
    // single-cache code naming this unit can be cleared.
    if (_valid && _both == 0 && _value == unit) {
        _valid = false;
        _dirty = false;
        _value = 0;
    }
}

void
CoarseVectorEntry::cleanse()
{
    _dirty = false;
}

std::uint64_t
CoarseVectorEntry::denotedMask() const
{
    if (!_valid)
        return 0;
    // Expand the trinary code: iterate over all assignments of the
    // "both" digits.
    std::uint64_t mask = 0;
    const std::uint64_t both = _both &
                               ((_nDigits == 64)
                                    ? ~0ULL
                                    : ((1ULL << _nDigits) - 1));
    // Iterate subsets of the "both" digit positions.
    std::uint64_t subset = 0;
    do {
        mask |= 1ULL << (_value | subset);
        subset = (subset - both) & both;
    } while (subset != 0);
    return mask;
}

unsigned
CoarseVectorEntry::bothDigits() const
{
    return static_cast<unsigned>(__builtin_popcountll(_both));
}

InvalTargets
CoarseVectorEntry::invalTargets(unsigned writer,
                                bool writerHasCopy) const
{
    (void)writerHasCopy;
    InvalTargets targets;
    targets.mask = denotedMask() & ~(1ULL << writer);
    return targets;
}

std::unique_ptr<DirEntry>
CoarseVectorFactory::make(unsigned nUnits) const
{
    return std::make_unique<CoarseVectorEntry>(nUnits);
}

} // namespace dirsim::directory
