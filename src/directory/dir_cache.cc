#include "directory/dir_cache.hh"

#include <stdexcept>

#include "util/flat_map.hh"

namespace dirsim::directory
{

DirectoryCache::DirectoryCache(const DirCacheConfig &cfg) : _cfg(cfg)
{
    if (_cfg.entries == 0)
        return; // Unbounded: FlatSet presence tracking only.
    if (_cfg.associativity == 0 ||
        _cfg.entries % _cfg.associativity != 0)
        throw std::invalid_argument(
            "DirectoryCache: entries must be a nonzero multiple of "
            "associativity");
    _numSets = _cfg.entries / _cfg.associativity;
    if (!mem::isPow2(_numSets))
        throw std::invalid_argument(
            "DirectoryCache: set count must be a power of two");
    _setMask = _numSets - 1;
    _ways.assign(_numSets * _cfg.associativity, Way{});
    _setReplacements.assign(_numSets, 0);
}

std::uint64_t
DirectoryCache::setIndexOf(mem::BlockId block) const
{
    const std::uint64_t key =
        _cfg.mixSetIndex ? util::mix64(block) : block;
    return key & _setMask;
}

DirCacheTouch
DirectoryCache::touch(mem::BlockId block)
{
    DirCacheTouch result;
    if (unbounded()) {
        if (_present.insert(block)) {
            ++_misses;
            ++_resident;
        } else {
            ++_hits;
            result.hit = true;
        }
        return result;
    }

    const std::uint64_t set = setIndexOf(block);
    Way *ways = &_ways[set * _cfg.associativity];
    const unsigned n = _cfg.associativity;

    // Search; on hit rotate the entry to the MRU (front) position.
    for (unsigned w = 0; w < n; ++w) {
        if (ways[w].valid && ways[w].block == block) {
            const Way hit_way = ways[w];
            for (unsigned v = w; v > 0; --v)
                ways[v] = ways[v - 1];
            ways[0] = hit_way;
            ++_hits;
            result.hit = true;
            return result;
        }
    }

    // Miss: replace the LRU (back) way if every way is valid.
    ++_misses;
    if (ways[n - 1].valid) {
        result.evicted = true;
        result.victim = ways[n - 1].block;
        ++_evictions;
        ++_setReplacements[set];
    } else {
        ++_resident;
    }
    for (unsigned v = n - 1; v > 0; --v)
        ways[v] = ways[v - 1];
    ways[0] = Way{block, true};
    return result;
}

bool
DirectoryCache::contains(mem::BlockId block) const
{
    if (unbounded())
        return _present.contains(block);
    const Way *ways = &_ways[setIndexOf(block) * _cfg.associativity];
    for (unsigned w = 0; w < _cfg.associativity; ++w) {
        if (ways[w].valid && ways[w].block == block)
            return true;
    }
    return false;
}

std::uint64_t
DirectoryCache::size() const
{
    return _resident;
}

void
DirectoryCache::clear()
{
    _ways.assign(_ways.size(), Way{});
    _setReplacements.assign(_setReplacements.size(), 0);
    _present.clear();
    _resident = 0;
    _hits = 0;
    _misses = 0;
    _evictions = 0;
}

void
DirectoryCache::reserveBlocks(std::uint64_t blocks)
{
    if (unbounded())
        _present.reserve(blocks);
}

} // namespace dirsim::directory
