/**
 * @file
 * Directory storage-overhead calculator.
 *
 * Section 2 and Section 6 of the paper discuss how much state each
 * directory organisation keeps per main-memory block; the scalability
 * bench prints the overhead as a function of the number of caches.
 * Tang's organisation duplicates every cache's tag store instead of
 * annotating memory blocks; its per-memory-block equivalent depends on
 * the cache-to-memory ratio, which the calculator takes as a
 * parameter.
 */

#ifndef DIRSIM_DIRECTORY_STORAGE_HH
#define DIRSIM_DIRECTORY_STORAGE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dirsim::directory
{

/** Directory organisations whose storage can be sized. */
enum class Organization
{
    Tang,           //!< Duplicate copies of all cache directories.
    FullMap,        //!< Censier-Feautrier presence bits (DirnNB).
    YenFu,          //!< Full map + per-cache-block single bits.
    TwoBit,         //!< Archibald-Baer (Dir0B).
    LimitedPointer, //!< i pointers + broadcast bit (DiriB).
    LimitedPointerNB, //!< i pointers, no broadcast (DiriNB).
    CoarseVector,   //!< 2*log2(n)-bit trinary code.
};

/** Machine parameters that determine storage overhead. */
struct StorageParams
{
    unsigned nCaches = 4;
    unsigned nPointers = 1;            //!< i for the pointer schemes.
    std::uint64_t memoryBlocks = 1 << 20;
    std::uint64_t cacheBlocksPerCache = 1 << 12;
    unsigned addressBits = 32;
    unsigned blockBytes = 16;
};

/** Name of an organisation, with i substituted for pointer schemes. */
std::string organizationName(Organization org, unsigned nPointers);

/**
 * Directory bits per main-memory block for @p org.
 *
 * For Tang the duplicate-tag storage is divided across memory blocks
 * to make the numbers comparable.
 */
double bitsPerMemoryBlock(Organization org, const StorageParams &params);

/** One row of the storage-overhead table. */
struct StorageRow
{
    std::string scheme;
    std::vector<double> bitsPerBlock; //!< One entry per cache count.
};

/**
 * Build the storage table for a sweep over cache counts.
 *
 * @param cacheCounts Cache counts (columns).
 * @param base Parameters shared by every column (nCaches overridden).
 */
std::vector<StorageRow> storageTable(
    const std::vector<unsigned> &cacheCounts, const StorageParams &base);

} // namespace dirsim::directory

#endif // DIRSIM_DIRECTORY_STORAGE_HH
