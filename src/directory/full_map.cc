#include "directory/full_map.hh"

#include <cassert>

namespace dirsim::directory
{

void
FullMapEntry::addSharer(unsigned unit)
{
    assert(unit < _nUnits);
    _presence |= 1ULL << unit;
}

void
FullMapEntry::makeOwner(unsigned unit)
{
    assert(unit < _nUnits);
    _presence = 1ULL << unit;
    _dirty = true;
}

void
FullMapEntry::removeSharer(unsigned unit)
{
    _presence &= ~(1ULL << unit);
    if (_presence == 0)
        _dirty = false;
}

void
FullMapEntry::cleanse()
{
    _dirty = false;
}

InvalTargets
FullMapEntry::invalTargets(unsigned writer, bool writerHasCopy) const
{
    (void)writerHasCopy;
    InvalTargets targets;
    targets.mask = _presence & ~(1ULL << writer);
    return targets;
}

std::unique_ptr<DirEntry>
FullMapFactory::make(unsigned nUnits) const
{
    return std::make_unique<FullMapEntry>(nUnits);
}

} // namespace dirsim::directory
