/**
 * @file
 * Limited-pointer directory entry (DiriB / DiriNB building block).
 *
 * Stores up to i cache indices.  In broadcast mode (DiriB) adding a
 * sharer beyond the i-th sets a broadcast bit: the directory no longer
 * knows the holders and must broadcast invalidations until the entry
 * is reset by a write.  In no-broadcast mode (DiriNB) the caller must
 * keep the holder count within i by invalidating an existing copy
 * before adding a new one; wouldOverflow() tells it when.
 */

#ifndef DIRSIM_DIRECTORY_LIMITED_POINTER_HH
#define DIRSIM_DIRECTORY_LIMITED_POINTER_HH

#include <vector>

#include "directory/entry.hh"

namespace dirsim::directory
{

/** i-pointer entry with optional broadcast fallback. */
class LimitedPointerEntry : public DirEntry
{
  public:
    /**
     * @param nUnits Number of caches in the system.
     * @param nPointers The i of DiriB/DiriNB; must be >= 1.
     * @param allowBroadcast True for DiriB, false for DiriNB.
     */
    LimitedPointerEntry(unsigned nUnits, unsigned nPointers,
                        bool allowBroadcast);

    void addSharer(unsigned unit) override;
    void makeOwner(unsigned unit) override;
    void removeSharer(unsigned unit) override;
    void cleanse() override;

    bool dirty() const override { return _dirty; }
    InvalTargets invalTargets(unsigned writer,
                              bool writerHasCopy) const override;

    /** Would recording @p unit exceed the pointer count? */
    bool wouldOverflow(unsigned unit) const;
    /** Broadcast bit state (DiriB only). */
    bool broadcastSet() const { return _broadcast; }
    /** Recorded pointers (exact holders in DiriNB mode). */
    const std::vector<unsigned> &pointers() const { return _pointers; }

  private:
    bool holds(unsigned unit) const;

    unsigned _nUnits;
    unsigned _nPointers;
    bool _allowBroadcast;
    bool _broadcast = false;
    bool _dirty = false;
    std::vector<unsigned> _pointers;
};

/** Factory for LimitedPointerEntry with fixed i and mode. */
class LimitedPointerFactory : public DirEntryFactory
{
  public:
    LimitedPointerFactory(unsigned nPointers, bool allowBroadcast)
        : _nPointers(nPointers), _allowBroadcast(allowBroadcast)
    {
    }

    std::unique_ptr<DirEntry> make(unsigned nUnits) const override;
    std::size_t entryBytes() const override
    {
        return sizeof(LimitedPointerEntry);
    }
    std::size_t entryAlign() const override
    {
        return alignof(LimitedPointerEntry);
    }
    DirEntry *construct(void *mem, unsigned nUnits) const override
    {
        return new (mem)
            LimitedPointerEntry(nUnits, _nPointers, _allowBroadcast);
    }

  private:
    unsigned _nPointers;
    bool _allowBroadcast;
};

} // namespace dirsim::directory

#endif // DIRSIM_DIRECTORY_LIMITED_POINTER_HH
