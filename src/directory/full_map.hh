/**
 * @file
 * Full-map directory entry (Censier and Feautrier).
 *
 * One presence bit per cache plus a dirty bit: the directory always
 * knows exactly which caches hold the block, so invalidations are
 * directed and never broadcast.  This is the DirnNB organisation in
 * the paper's taxonomy.
 */

#ifndef DIRSIM_DIRECTORY_FULL_MAP_HH
#define DIRSIM_DIRECTORY_FULL_MAP_HH

#include "directory/entry.hh"

namespace dirsim::directory
{

/** Presence-bit-vector entry; exact sharer knowledge. */
class FullMapEntry : public DirEntry
{
  public:
    explicit FullMapEntry(unsigned nUnits) : _nUnits(nUnits) {}

    void addSharer(unsigned unit) override;
    void makeOwner(unsigned unit) override;
    void removeSharer(unsigned unit) override;
    void cleanse() override;

    bool dirty() const override { return _dirty; }
    InvalTargets invalTargets(unsigned writer,
                              bool writerHasCopy) const override;

    /** Presence bits (for tests). */
    std::uint64_t presence() const { return _presence; }

  private:
    unsigned _nUnits;
    std::uint64_t _presence = 0;
    bool _dirty = false;
};

/** Factory for FullMapEntry. */
class FullMapFactory : public DirEntryFactory
{
  public:
    std::unique_ptr<DirEntry> make(unsigned nUnits) const override;
    std::size_t entryBytes() const override
    {
        return sizeof(FullMapEntry);
    }
    std::size_t entryAlign() const override
    {
        return alignof(FullMapEntry);
    }
    DirEntry *construct(void *mem, unsigned nUnits) const override
    {
        return new (mem) FullMapEntry(nUnits);
    }
};

} // namespace dirsim::directory

#endif // DIRSIM_DIRECTORY_FULL_MAP_HH
