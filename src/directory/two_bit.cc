#include "directory/two_bit.hh"

namespace dirsim::directory
{

void
TwoBitEntry::addSharer(unsigned unit)
{
    (void)unit;
    switch (_state) {
      case TwoBitState::NotCached:
        _state = TwoBitState::CleanExclusive;
        break;
      case TwoBitState::CleanExclusive:
      case TwoBitState::CleanMany:
        // A second (or later) cache obtained a copy; the count is now
        // unknown.
        _state = TwoBitState::CleanMany;
        break;
      case TwoBitState::DirtyOne:
        // Fill after a flush: the ex-owner keeps a clean copy, so two
        // caches now hold the block.
        _state = TwoBitState::CleanMany;
        break;
    }
}

void
TwoBitEntry::makeOwner(unsigned unit)
{
    (void)unit;
    _state = TwoBitState::DirtyOne;
}

void
TwoBitEntry::removeSharer(unsigned unit)
{
    (void)unit;
    switch (_state) {
      case TwoBitState::CleanExclusive:
      case TwoBitState::DirtyOne:
        _state = TwoBitState::NotCached;
        break;
      case TwoBitState::CleanMany:
        // The directory cannot count down from "unknown number";
        // a real implementation stays conservative.
        break;
      case TwoBitState::NotCached:
        break;
    }
}

void
TwoBitEntry::cleanse()
{
    if (_state == TwoBitState::DirtyOne)
        _state = TwoBitState::CleanExclusive;
}

InvalTargets
TwoBitEntry::invalTargets(unsigned writer, bool writerHasCopy) const
{
    (void)writer;
    InvalTargets targets;
    switch (_state) {
      case TwoBitState::NotCached:
        break;
      case TwoBitState::CleanExclusive:
        // The whole point of this state: a write hit by the sole
        // holder needs no broadcast.
        targets.broadcast = !writerHasCopy;
        break;
      case TwoBitState::CleanMany:
        targets.broadcast = true;
        break;
      case TwoBitState::DirtyOne:
        // A write hit in DirtyOne is local; anything else must flush
        // the (unknown) owner by broadcast.
        targets.broadcast = !writerHasCopy;
        break;
    }
    return targets;
}

std::unique_ptr<DirEntry>
TwoBitFactory::make(unsigned nUnits) const
{
    return std::make_unique<TwoBitEntry>(nUnits);
}

} // namespace dirsim::directory
