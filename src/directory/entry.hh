/**
 * @file
 * Directory-entry interface.
 *
 * Section 2 of the paper surveys four directory organisations (Tang's
 * duplicate directories, Censier-Feautrier presence bits, Yen-Fu's
 * single-bit refinement, and the Archibald-Baer two-bit scheme) and
 * Section 6 adds limited-pointer and coarse-vector codes.  Each
 * organisation stores a different *approximation* of the set of caches
 * holding a block; the coherence engines keep the exact holder set and
 * consult a DirEntry to learn what a real directory of that
 * organisation would do — in particular, which caches it would send
 * invalidations to, and whether it must fall back to broadcast.
 */

#ifndef DIRSIM_DIRECTORY_ENTRY_HH
#define DIRSIM_DIRECTORY_ENTRY_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>

namespace dirsim::directory
{

/** Maximum caches a directory entry tracks (bitmask width). */
constexpr unsigned maxUnits = 64;

/** What a directory would do to invalidate all other copies. */
struct InvalTargets
{
    /** Directory must broadcast: every cache gets the invalidation. */
    bool broadcast = false;
    /** Otherwise: bitmask of caches to send directed invalidations. */
    std::uint64_t mask = 0;

    /** Number of directed messages (meaningless when broadcasting). */
    unsigned count() const { return __builtin_popcountll(mask); }
};

/** One block's directory state under some organisation. */
class DirEntry
{
  public:
    virtual ~DirEntry() = default;

    /** A cache obtained a clean copy (read fill). */
    virtual void addSharer(unsigned unit) = 0;
    /** A cache wrote: it is now the sole (dirty) holder. */
    virtual void makeOwner(unsigned unit) = 0;
    /** A cache lost its copy (eviction or directed invalidation). */
    virtual void removeSharer(unsigned unit) = 0;
    /** The dirty block was written back; holders stay, all clean. */
    virtual void cleanse() = 0;

    /** Is some cache recorded as holding the block dirty? */
    virtual bool dirty() const = 0;
    /**
     * Which caches must a write by @p writer invalidate?
     *
     * @param writer The writing cache.
     * @param writerHasCopy True on a write hit (lets organisations
     *        that count copies but not identities, like the two-bit
     *        scheme, recognise the "clean in exactly one cache" case).
     */
    virtual InvalTargets invalTargets(unsigned writer,
                                      bool writerHasCopy) const = 0;
};

/**
 * Creates blank entries of one organisation.
 *
 * Two creation paths: make() heap-allocates an owned entry (tests,
 * ad-hoc use), while the size/align/construct triple lets
 * DirEntryArena placement-construct entries in bulk storage — the
 * hot path, where one malloc per block would dominate.
 */
class DirEntryFactory
{
  public:
    virtual ~DirEntryFactory() = default;
    /** @param nUnits Number of caches in the system. */
    virtual std::unique_ptr<DirEntry> make(unsigned nUnits) const = 0;

    /** Bytes one entry of this organisation occupies. */
    virtual std::size_t entryBytes() const = 0;
    /** Alignment one entry requires. */
    virtual std::size_t entryAlign() const = 0;
    /** Placement-construct a blank entry in @p mem (entryBytes()
     *  bytes, entryAlign()-aligned).  Destruction is the caller's:
     *  invoke the virtual destructor, do not delete. */
    virtual DirEntry *construct(void *mem, unsigned nUnits) const = 0;
};

} // namespace dirsim::directory

#endif // DIRSIM_DIRECTORY_ENTRY_HH
