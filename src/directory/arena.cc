#include "directory/arena.hh"

#include <cassert>
#include <stdexcept>

namespace dirsim::directory
{

DirEntryArena::DirEntryArena(const DirEntryFactory *factory,
                             unsigned nUnits)
    : _factory(factory), _nUnits(nUnits)
{
    if (!_factory)
        return;
    const std::size_t align = _factory->entryAlign();
    if (align > alignof(std::max_align_t))
        throw std::invalid_argument(
            "DirEntryArena: over-aligned entries are not supported");
    // Round the slot up so consecutive slots stay aligned.
    _slotBytes = (_factory->entryBytes() + align - 1) / align * align;
}

DirEntryArena::~DirEntryArena()
{
    clear();
}

DirEntryArena::DirEntryArena(DirEntryArena &&other) noexcept
    : _factory(other._factory), _nUnits(other._nUnits),
      _slotBytes(other._slotBytes), _chunks(std::move(other._chunks)),
      _entries(std::move(other._entries))
{
    other._factory = nullptr;
    other._chunks.clear();
    other._entries.clear();
}

DirEntryArena &
DirEntryArena::operator=(DirEntryArena &&other) noexcept
{
    if (this == &other)
        return *this;
    clear();
    _factory = other._factory;
    _nUnits = other._nUnits;
    _slotBytes = other._slotBytes;
    _chunks = std::move(other._chunks);
    _entries = std::move(other._entries);
    other._factory = nullptr;
    other._chunks.clear();
    other._entries.clear();
    return *this;
}

std::byte *
DirEntryArena::slot(std::size_t index)
{
    return _chunks[index / chunkEntries].get() +
           (index % chunkEntries) * _slotBytes;
}

void
DirEntryArena::addChunk()
{
    _chunks.push_back(
        std::make_unique<std::byte[]>(chunkEntries * _slotBytes));
}

DirEntryArena::Index
DirEntryArena::allocate()
{
    assert(enabled());
    const std::size_t index = _entries.size();
    assert(index < npos);
    if (index / chunkEntries >= _chunks.size())
        addChunk();
    _entries.push_back(_factory->construct(slot(index), _nUnits));
    return static_cast<Index>(index);
}

void
DirEntryArena::clear()
{
    for (DirEntry *entry : _entries)
        entry->~DirEntry();
    _entries.clear();
}

void
DirEntryArena::reserve(std::size_t entries)
{
    if (!enabled())
        return;
    _entries.reserve(entries);
    const std::size_t chunks =
        (entries + chunkEntries - 1) / chunkEntries;
    while (_chunks.size() < chunks)
        addChunk();
}

} // namespace dirsim::directory
