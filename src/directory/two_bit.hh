/**
 * @file
 * Two-bit directory entry (Archibald and Baer; Dir0B).
 *
 * Encodes one of four states with no cache identities: not cached,
 * clean in exactly one cache, clean in an unknown number of caches,
 * or dirty in exactly one cache.  Invalidations and write-back
 * requests rely on broadcast; the "clean in exactly one cache" state
 * exists precisely to avoid a broadcast when that one cache writes.
 */

#ifndef DIRSIM_DIRECTORY_TWO_BIT_HH
#define DIRSIM_DIRECTORY_TWO_BIT_HH

#include "directory/entry.hh"

namespace dirsim::directory
{

/** The four encodable states. */
enum class TwoBitState : std::uint8_t
{
    NotCached = 0,
    CleanExclusive = 1, //!< Clean in exactly one cache.
    CleanMany = 2,      //!< Clean in an unknown number of caches.
    DirtyOne = 3,       //!< Dirty in exactly one cache.
};

/** Identity-free two-bit entry. */
class TwoBitEntry : public DirEntry
{
  public:
    explicit TwoBitEntry(unsigned nUnits) { (void)nUnits; }

    void addSharer(unsigned unit) override;
    void makeOwner(unsigned unit) override;
    void removeSharer(unsigned unit) override;
    void cleanse() override;

    bool dirty() const override { return _state == TwoBitState::DirtyOne; }
    InvalTargets invalTargets(unsigned writer,
                              bool writerHasCopy) const override;

    TwoBitState state() const { return _state; }

  private:
    TwoBitState _state = TwoBitState::NotCached;
};

/** Factory for TwoBitEntry. */
class TwoBitFactory : public DirEntryFactory
{
  public:
    std::unique_ptr<DirEntry> make(unsigned nUnits) const override;
    std::size_t entryBytes() const override
    {
        return sizeof(TwoBitEntry);
    }
    std::size_t entryAlign() const override
    {
        return alignof(TwoBitEntry);
    }
    DirEntry *construct(void *mem, unsigned nUnits) const override
    {
        return new (mem) TwoBitEntry(nUnits);
    }
};

} // namespace dirsim::directory

#endif // DIRSIM_DIRECTORY_TWO_BIT_HH
