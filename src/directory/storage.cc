#include "directory/storage.hh"

#include <cmath>

#include "mem/block.hh"

namespace dirsim::directory
{

namespace
{

/** ceil(log2(n)), with log2(1) = 1 bit to keep pointers addressable. */
unsigned
ceilLog2(unsigned n)
{
    unsigned bits = 0;
    unsigned v = 1;
    while (v < n) {
        v <<= 1;
        ++bits;
    }
    return bits == 0 ? 1 : bits;
}

} // namespace

std::string
organizationName(Organization org, unsigned nPointers)
{
    switch (org) {
      case Organization::Tang:
        return "Tang (duplicate dirs)";
      case Organization::FullMap:
        return "Full map (DirnNB)";
      case Organization::YenFu:
        return "Yen-Fu (map+single)";
      case Organization::TwoBit:
        return "Two-bit (Dir0B)";
      case Organization::LimitedPointer:
        return "Dir" + std::to_string(nPointers) + "B";
      case Organization::LimitedPointerNB:
        return "Dir" + std::to_string(nPointers) + "NB";
      case Organization::CoarseVector:
        return "Coarse vector";
    }
    return "?";
}

double
bitsPerMemoryBlock(Organization org, const StorageParams &params)
{
    const unsigned n = params.nCaches;
    const unsigned ptr_bits = ceilLog2(n);
    switch (org) {
      case Organization::Tang: {
        // A duplicate of every cache directory: per cache block one
        // tag plus a dirty bit, amortised over memory blocks.
        const unsigned block_offset_bits =
            mem::log2Exact(params.blockBytes);
        const unsigned tag_bits =
            params.addressBits - block_offset_bits;
        const double total =
            static_cast<double>(n) *
            static_cast<double>(params.cacheBlocksPerCache) *
            (tag_bits + 1.0);
        return total / static_cast<double>(params.memoryBlocks);
      }
      case Organization::FullMap:
        // One presence bit per cache plus a dirty bit.
        return n + 1.0;
      case Organization::YenFu:
        // Full map at memory plus one single bit per resident cache
        // block, amortised over memory blocks.
        return (n + 1.0) +
               static_cast<double>(n) *
                   static_cast<double>(params.cacheBlocksPerCache) /
                   static_cast<double>(params.memoryBlocks);
      case Organization::TwoBit:
        return 2.0;
      case Organization::LimitedPointer:
        // i pointers, a broadcast bit, and a dirty bit.
        return params.nPointers * ptr_bits + 2.0;
      case Organization::LimitedPointerNB:
        // i pointers and a dirty bit.
        return params.nPointers * ptr_bits + 1.0;
      case Organization::CoarseVector:
        // 2 bits per digit, log2(n) digits, plus valid and dirty.
        return 2.0 * ptr_bits + 2.0;
    }
    return 0.0;
}

std::vector<StorageRow>
storageTable(const std::vector<unsigned> &cacheCounts,
             const StorageParams &base)
{
    const std::vector<std::pair<Organization, unsigned>> schemes = {
        {Organization::Tang, 0},
        {Organization::FullMap, 0},
        {Organization::YenFu, 0},
        {Organization::TwoBit, 0},
        {Organization::LimitedPointer, 1},
        {Organization::LimitedPointer, 2},
        {Organization::LimitedPointer, 4},
        {Organization::LimitedPointerNB, 4},
        {Organization::CoarseVector, 0},
    };

    std::vector<StorageRow> rows;
    for (const auto &[org, ptrs] : schemes) {
        StorageRow row;
        row.scheme = organizationName(org, ptrs);
        for (unsigned n : cacheCounts) {
            StorageParams params = base;
            params.nCaches = n;
            if (ptrs != 0)
                params.nPointers = ptrs;
            row.bitsPerBlock.push_back(bitsPerMemoryBlock(org, params));
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

} // namespace dirsim::directory
