/**
 * @file
 * Bulk storage for directory entries.
 *
 * The seed implementation gave every tracked block its own
 * heap-allocated DirEntry behind a unique_ptr — one malloc per block
 * and pointer-chasing on every directory consultation.  The arena
 * replaces that with placement-constructed entries in chunked byte
 * buffers: entries of one organisation all have the same size (the
 * factory reports it), so allocation is a bump of the entry count and
 * entries are addressed by a 32-bit index instead of a pointer.
 * clear() destroys the entries but keeps the chunks, so a reset()/
 * rerun cycle reuses the storage without touching the allocator.
 *
 * The arena may be constructed without a factory ("disabled"), for
 * engines not shadowing any directory organisation; allocate() must
 * not be called in that state.
 */

#ifndef DIRSIM_DIRECTORY_ARENA_HH
#define DIRSIM_DIRECTORY_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "directory/entry.hh"

namespace dirsim::directory
{

/** Chunked placement-new storage for one organisation's entries. */
class DirEntryArena
{
  public:
    /** Entry handle; stable across arena growth (unlike pointers
     *  into a reallocating container). */
    using Index = std::uint32_t;
    /** The "no entry" handle. */
    static constexpr Index npos = 0xffffffffu;

    /** Disabled arena: no factory, allocate() is invalid. */
    DirEntryArena() = default;
    /** Arena producing blank @p factory entries for @p nUnits caches.
     *  A null @p factory yields a disabled arena. */
    DirEntryArena(const DirEntryFactory *factory, unsigned nUnits);
    ~DirEntryArena();

    DirEntryArena(DirEntryArena &&other) noexcept;
    DirEntryArena &operator=(DirEntryArena &&other) noexcept;
    DirEntryArena(const DirEntryArena &) = delete;
    DirEntryArena &operator=(const DirEntryArena &) = delete;

    /** Does the arena have a factory to construct entries with? */
    bool enabled() const { return _factory != nullptr; }

    /** Construct one blank entry; returns its handle. */
    Index allocate();

    DirEntry &entry(Index index) { return *_entries[index]; }
    const DirEntry &entry(Index index) const
    {
        return *_entries[index];
    }

    /** Live entries. */
    std::size_t size() const { return _entries.size(); }

    /** Destroy every entry but keep the chunk storage. */
    void clear();

    /** Pre-allocate storage for @p entries entries (no-op when
     *  disabled). */
    void reserve(std::size_t entries);

  private:
    /** Entries per chunk: big enough to amortise the chunk malloc,
     *  small enough that over-reserve wastes little. */
    static constexpr std::size_t chunkEntries = 1024;

    /** Slot address of entry @p index (may be unconstructed). */
    std::byte *slot(std::size_t index);
    /** Append one chunk of raw storage. */
    void addChunk();

    const DirEntryFactory *_factory = nullptr;
    unsigned _nUnits = 0;
    std::size_t _slotBytes = 0;
    std::vector<std::unique_ptr<std::byte[]>> _chunks;
    /** Constructed entries, by index; the indirection keeps entry()
     *  a single load regardless of chunk geometry. */
    std::vector<DirEntry *> _entries;
};

} // namespace dirsim::directory

#endif // DIRSIM_DIRECTORY_ARENA_HH
