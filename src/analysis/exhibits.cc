#include "analysis/exhibits.hh"

#include "bus/bus_model.hh"
#include "coherence/events.hh"

namespace dirsim::analysis
{

using coherence::EngineResults;
using coherence::Event;
using stats::TextTable;

namespace
{

/** "-" placeholder used where the paper leaves a cell blank. */
const std::string blank = "-";

std::string
pctOf(const EngineResults &r, std::uint64_t count)
{
    if (r.events.totalRefs() == 0)
        return "0.00";
    return TextTable::pct(static_cast<double>(count) /
                              static_cast<double>(r.events.totalRefs()));
}

std::string
pctEvent(const EngineResults &r, Event e)
{
    return pctOf(r, r.events.count(e));
}

} // namespace

const std::vector<PaperScheme> &
paperSchemes()
{
    static const std::vector<PaperScheme> schemes = {
        PaperScheme::Dir1NB, PaperScheme::WTI, PaperScheme::Dir0B,
        PaperScheme::Dragon};
    return schemes;
}

const EngineResults &
resultsFor(PaperScheme scheme, const TraceEvaluation &te)
{
    switch (scheme) {
      case PaperScheme::Dir1NB:
        return te.dir1nb;
      case PaperScheme::Dragon:
        return te.dragon;
      case PaperScheme::WTI:
      case PaperScheme::Dir0B:
        // WTI and Dir0B share the same state-change model (Section 5
        // of the paper), hence the same engine run.
        return te.inval;
    }
    return te.inval;
}

sim::Scheme
simSchemeFor(PaperScheme scheme)
{
    switch (scheme) {
      case PaperScheme::Dir1NB:
        return sim::Scheme::Dir1NB;
      case PaperScheme::WTI:
        return sim::Scheme::WTI;
      case PaperScheme::Dir0B:
        return sim::Scheme::Dir0B;
      case PaperScheme::Dragon:
        return sim::Scheme::Dragon;
    }
    return sim::Scheme::Dir0B;
}

std::string
paperSchemeName(PaperScheme scheme)
{
    return sim::schemeName(simSchemeFor(scheme));
}

std::vector<SchemeCost>
schemeCosts(const TraceEvaluation &te, double overheadQ)
{
    const bus::BusModels buses = bus::standardBuses();
    std::vector<SchemeCost> costs;
    for (PaperScheme scheme : paperSchemes()) {
        sim::CostOptions opts;
        opts.overheadQ = overheadQ;
        SchemeCost sc;
        sc.name = paperSchemeName(scheme);
        sc.pipelined = sim::computeCost(simSchemeFor(scheme),
                                        resultsFor(scheme, te),
                                        buses.pipelined, opts);
        sc.nonPipelined = sim::computeCost(simSchemeFor(scheme),
                                           resultsFor(scheme, te),
                                           buses.nonPipelined, opts);
        costs.push_back(std::move(sc));
    }
    return costs;
}

TextTable
table1()
{
    const bus::BusPrimitives prim;
    TextTable table("Table 1: Timing for fundamental bus operations",
                    {"Operation", "Bus cycles"});
    table.addRow({"Transfer 1 data word",
                  std::to_string(prim.transferWord)});
    table.addRow({"Send address", std::to_string(prim.sendAddress)});
    table.addRow({"Invalidate", std::to_string(prim.invalidate)});
    table.addRow({"Wait for directory",
                  std::to_string(prim.waitDirectory)});
    table.addRow({"Wait for memory", std::to_string(prim.waitMemory)});
    table.addRow({"Wait for cache", std::to_string(prim.waitCache)});
    return table;
}

TextTable
table2()
{
    const bus::BusModels buses = bus::standardBuses();
    TextTable table("Table 2: Summary of bus cycle costs",
                    {"Access type", "Pipelined bus",
                     "Non-pipelined bus"});
    auto row = [&](const std::string &label, unsigned p, unsigned np) {
        table.addRow({label, std::to_string(p), std::to_string(np)});
    };
    row("Memory access", buses.pipelined.memoryAccess,
        buses.nonPipelined.memoryAccess);
    row("Cache access", buses.pipelined.cacheAccess,
        buses.nonPipelined.cacheAccess);
    row("Write-back", buses.pipelined.writeBack,
        buses.nonPipelined.writeBack);
    row("Write-through / update", buses.pipelined.writeWord,
        buses.nonPipelined.writeWord);
    row("Directory check", buses.pipelined.directoryCheck,
        buses.nonPipelined.directoryCheck);
    row("Invalidate", buses.pipelined.invalidate,
        buses.nonPipelined.invalidate);
    return table;
}

TextTable
table3(const std::vector<trace::TraceCharacteristics> &chars)
{
    TextTable table(
        "Table 3: Summary of trace characteristics (thousands)",
        {"Trace", "Refs", "Instr", "DRd", "DWrt", "User", "Sys",
         "Rd/Wrt", "Spin rds"});
    auto k = [](std::uint64_t v) {
        return std::to_string((v + 500) / 1000);
    };
    for (const auto &ch : chars) {
        table.addRow({ch.name, k(ch.refs), k(ch.instr),
                      k(ch.dataReads), k(ch.dataWrites), k(ch.user),
                      k(ch.system), TextTable::num(ch.readWriteRatio(), 2),
                      TextTable::pct(ch.lockTestReadFrac(), 1) + "%"});
    }
    return table;
}

TextTable
table4(const Evaluation &eval)
{
    const TraceEvaluation &avg = eval.average;
    const EngineResults &d1 = avg.dir1nb;
    const EngineResults &iv = avg.inval;
    const EngineResults &dg = avg.dragon;

    TextTable table(
        "Table 4: Event frequencies (% of all references, trace "
        "average)",
        {"Event", "Dir1NB", "WTI", "Dir0B", "Dragon"});

    auto pct4 = [&](Event e) {
        return std::vector<std::string>{pctEvent(d1, e),
                                        pctEvent(iv, e),
                                        pctEvent(iv, e),
                                        pctEvent(dg, e)};
    };

    table.addRow({"instr", pctEvent(d1, Event::Instr),
                  pctEvent(iv, Event::Instr), pctEvent(iv, Event::Instr),
                  pctEvent(dg, Event::Instr)});
    table.addRow({"read", pctOf(d1, d1.events.reads()),
                  pctOf(iv, iv.events.reads()),
                  pctOf(iv, iv.events.reads()),
                  pctOf(dg, dg.events.reads())});
    table.addRow({"  rd-hit", pctEvent(d1, Event::RdHit),
                  pctEvent(iv, Event::RdHit), pctEvent(iv, Event::RdHit),
                  pctEvent(dg, Event::RdHit)});
    table.addRow({"  rd-miss(rm)", pctOf(d1, d1.events.readMisses()),
                  pctOf(iv, iv.events.readMisses()),
                  pctOf(iv, iv.events.readMisses()),
                  pctOf(dg, dg.events.readMisses())});
    {
        auto row = pct4(Event::RmBlkCln);
        table.addRow({"    rm-blk-cln", row[0], blank, row[2], row[3]});
    }
    {
        auto row = pct4(Event::RmBlkDrty);
        table.addRow({"    rm-blk-drty", row[0], blank, row[2], row[3]});
    }
    {
        auto row = pct4(Event::RmFirstRef);
        table.addRow(
            {"  rm-first-ref", row[0], row[1], row[2], row[3]});
    }
    table.addRow({"write", pctOf(d1, d1.events.writes()),
                  pctOf(iv, iv.events.writes()),
                  pctOf(iv, iv.events.writes()),
                  pctOf(dg, dg.events.writes())});
    table.addRow({"  wrt-hit(wh)", pctOf(d1, d1.events.writeHits()),
                  pctOf(iv, iv.events.writeHits()),
                  pctOf(iv, iv.events.writeHits()),
                  pctOf(dg, dg.events.writeHits())});
    table.addRow({"    wh-blk-cln", blank, blank,
                  pctOf(iv, iv.events.writeHitsClean()), blank});
    table.addRow({"    wh-blk-drty", blank, blank,
                  pctEvent(iv, Event::WhBlkDrty), blank});
    table.addRow({"    wh-distrib", blank, blank, blank,
                  pctEvent(dg, Event::WhDistrib)});
    table.addRow({"    wh-local", blank, blank, blank,
                  pctEvent(dg, Event::WhLocal)});
    table.addRow({"  wrt-miss(wm)", pctOf(d1, d1.events.writeMisses()),
                  pctOf(iv, iv.events.writeMisses()),
                  pctOf(iv, iv.events.writeMisses()),
                  pctOf(dg, dg.events.writeMisses())});
    {
        auto row = pct4(Event::WmBlkCln);
        table.addRow({"    wm-blk-cln", row[0], blank, row[2], row[3]});
    }
    {
        auto row = pct4(Event::WmBlkDrty);
        table.addRow({"    wm-blk-drty", row[0], blank, row[2], row[3]});
    }
    {
        auto row = pct4(Event::WmFirstRef);
        table.addRow(
            {"  wm-first-ref", row[0], row[1], row[2], row[3]});
    }
    return table;
}

Figure1
figure1(const Evaluation &eval)
{
    Figure1 fig;
    fig.fanout.merge(eval.average.inval.whClnFanout);
    fig.fanout.merge(eval.average.inval.wmClnFanout);
    fig.fracAtMostOne = fig.fanout.fracAtMost(1);
    return fig;
}

TextTable
renderFigure1(const Figure1 &fig, unsigned nCaches)
{
    TextTable table(
        "Figure 1: Caches invalidated on a write to a previously-clean "
        "block (% of such writes)",
        {"Caches", "Percent"});
    for (unsigned k = 0; k < nCaches; ++k) {
        table.addRow({std::to_string(k),
                      TextTable::pct(fig.fanout.frac(k))});
    }
    table.addSeparator();
    table.addRow({"<= 1", TextTable::pct(fig.fracAtMostOne)});
    return table;
}

TextTable
figure2(const Evaluation &eval)
{
    TextTable table(
        "Figure 2: Bus cycles per memory reference (trace average; "
        "low = pipelined, high = non-pipelined)",
        {"Scheme", "Pipelined", "Non-pipelined"});
    for (const SchemeCost &sc : schemeCosts(eval.average)) {
        table.addRow({sc.name, TextTable::num(sc.pipelined.total()),
                      TextTable::num(sc.nonPipelined.total())});
    }
    return table;
}

TextTable
figure3(const Evaluation &eval)
{
    TextTable table(
        "Figure 3: Bus cycles per memory reference by trace "
        "(pipelined / non-pipelined)",
        {"Trace", "Dir1NB", "WTI", "Dir0B", "Dragon"});
    for (const TraceEvaluation &te : eval.traces) {
        std::vector<std::string> row = {te.trace};
        for (const SchemeCost &sc : schemeCosts(te)) {
            row.push_back(TextTable::num(sc.pipelined.total()) + " / " +
                          TextTable::num(sc.nonPipelined.total()));
        }
        table.addRow(row);
    }
    return table;
}

TextTable
table5(const Evaluation &eval)
{
    const std::vector<SchemeCost> costs = schemeCosts(eval.average);
    TextTable table(
        "Table 5: Breakdown of bus cycles per reference (pipelined "
        "bus)",
        {"Access", "Dir1NB", "WTI", "Dir0B", "Dragon"});
    auto row = [&](const std::string &label,
                   double(sim::CostBreakdown::*field)) {
        std::vector<std::string> cells = {label};
        for (const SchemeCost &sc : costs) {
            const double v = sc.pipelined.*field;
            cells.push_back(v == 0.0 ? blank : TextTable::num(v));
        }
        table.addRow(cells);
    };
    row("mem access", &sim::CostBreakdown::memAccess);
    row("cache access", &sim::CostBreakdown::cacheAccess);
    row("invalidates", &sim::CostBreakdown::invalidate);
    row("wrt-backs", &sim::CostBreakdown::writeBack);
    row("wt or wup", &sim::CostBreakdown::writeWord);
    row("dir access", &sim::CostBreakdown::dirCheck);
    table.addSeparator();
    std::vector<std::string> cum = {"cumulative"};
    for (const SchemeCost &sc : costs)
        cum.push_back(TextTable::num(sc.pipelined.total()));
    table.addRow(cum);
    return table;
}

TextTable
figure4(const Evaluation &eval)
{
    const std::vector<SchemeCost> costs = schemeCosts(eval.average);
    TextTable table(
        "Figure 4: Bus-cycle breakdown as a fraction of each scheme's "
        "total (pipelined bus, %)",
        {"Access", "Dir1NB", "WTI", "Dir0B", "Dragon"});
    auto row = [&](const std::string &label,
                   double(sim::CostBreakdown::*field)) {
        std::vector<std::string> cells = {label};
        for (const SchemeCost &sc : costs) {
            const double total = sc.pipelined.total();
            const double v =
                total == 0.0 ? 0.0 : sc.pipelined.*field / total;
            cells.push_back(v == 0.0 ? blank : TextTable::pct(v, 1));
        }
        table.addRow(cells);
    };
    row("mem access", &sim::CostBreakdown::memAccess);
    row("cache access", &sim::CostBreakdown::cacheAccess);
    row("invalidates", &sim::CostBreakdown::invalidate);
    row("wrt-backs", &sim::CostBreakdown::writeBack);
    row("wt or wup", &sim::CostBreakdown::writeWord);
    row("dir access", &sim::CostBreakdown::dirCheck);
    return table;
}

TextTable
figure5(const Evaluation &eval)
{
    TextTable table(
        "Figure 5: Average bus cycles per bus transaction (pipelined "
        "bus)",
        {"Scheme", "Cycles/transaction", "Transactions/ref"});
    for (const SchemeCost &sc : schemeCosts(eval.average)) {
        table.addRow({sc.name,
                      TextTable::num(sc.pipelined.perTransaction(), 2),
                      TextTable::num(sc.pipelined.transactionsPerRef)});
    }
    return table;
}

TextTable
section51(const Evaluation &eval, const std::vector<double> &qValues)
{
    std::vector<std::string> headers = {"Scheme",
                                        "base (cyc/ref)",
                                        "txn/ref (q coef)"};
    for (double q : qValues)
        headers.push_back("q=" + TextTable::num(q, 0));
    TextTable table(
        "Section 5.1: Fixed per-transaction overhead sensitivity "
        "(pipelined bus)",
        headers);
    for (PaperScheme scheme : paperSchemes()) {
        const auto &results = resultsFor(scheme, eval.average);
        sim::CostBreakdown base =
            sim::computeCost(simSchemeFor(scheme), results,
                             bus::standardBuses().pipelined);
        std::vector<std::string> row = {
            paperSchemeName(scheme), TextTable::num(base.total()),
            TextTable::num(base.transactionsPerRef)};
        for (double q : qValues) {
            row.push_back(TextTable::num(
                base.total() + q * base.transactionsPerRef));
        }
        table.addRow(row);
    }
    return table;
}

TextTable
section52(const Evaluation &withLocks, const Evaluation &withoutLocks)
{
    TextTable table(
        "Section 5.2: Impact of spin-lock test reads (pipelined bus, "
        "bus cycles per reference)",
        {"Scheme", "With lock tests", "Lock tests excluded"});
    const auto with_costs = schemeCosts(withLocks.average);
    const auto without_costs = schemeCosts(withoutLocks.average);
    for (std::size_t s = 0; s < with_costs.size(); ++s) {
        table.addRow({with_costs[s].name,
                      TextTable::num(with_costs[s].pipelined.total()),
                      TextTable::num(
                          without_costs[s].pipelined.total())});
    }
    return table;
}

Section6
section6(const Evaluation &eval, double broadcastCost)
{
    const bus::BusCosts pipe = bus::standardBuses().pipelined;
    const EngineResults &iv = eval.average.inval;
    Section6 sec;
    sec.dir0b = sim::computeCost(sim::Scheme::Dir0B, iv, pipe).total();
    sec.dirnnbSeq =
        sim::computeCost(sim::Scheme::DirNNBSeq, iv, pipe).total();
    sec.berkeley =
        sim::computeCost(sim::Scheme::Berkeley, iv, pipe).total();
    sec.yenfu = sim::computeCost(sim::Scheme::YenFu, iv, pipe).total();

    // Dir1B linear model in the broadcast cost b: evaluating at b = 0
    // and b = 1 recovers base and slope exactly (the model is affine).
    sim::CostOptions d1b;
    d1b.nPointers = 1;
    d1b.broadcastCost = 0.0;
    sec.dir1bBase =
        sim::computeCost(sim::Scheme::DirIB, iv, pipe, d1b).total();
    d1b.broadcastCost = 1.0;
    sec.dir1bCoef =
        sim::computeCost(sim::Scheme::DirIB, iv, pipe, d1b).total() -
        sec.dir1bBase;

    for (unsigned i = 1; i <= 4; ++i) {
        sim::CostOptions opts;
        opts.nPointers = i;
        opts.broadcastCost = broadcastCost;
        sec.diribTotals.emplace_back(
            i, sim::computeCost(sim::Scheme::DirIB, iv, pipe, opts)
                   .total());
    }
    return sec;
}

TextTable
renderSection6(const Section6 &sec, double broadcastCost)
{
    TextTable table(
        "Section 6: Scalable directory alternatives (pipelined bus, "
        "bus cycles per reference)",
        {"Scheme", "Cycles/ref"});
    table.addRow({"Dir0B (broadcast inval)", TextTable::num(sec.dir0b)});
    table.addRow({"DirnNB (sequential inval)",
                  TextTable::num(sec.dirnnbSeq)});
    table.addRow({"Berkeley estimate", TextTable::num(sec.berkeley)});
    table.addRow({"Yen-Fu single bit", TextTable::num(sec.yenfu)});
    table.addRow({"Dir1B model base", TextTable::num(sec.dir1bBase)});
    table.addRow({"Dir1B model slope (per b)",
                  TextTable::num(sec.dir1bCoef)});
    for (const auto &[i, total] : sec.diribTotals) {
        table.addRow({"Dir" + std::to_string(i) + "B (b=" +
                          TextTable::num(broadcastCost, 0) + ")",
                      TextTable::num(total)});
    }
    return table;
}

TextTable
limitedSweepTable(const std::vector<EngineResults> &sweep,
                  const std::vector<unsigned> &pointerCounts)
{
    const bus::BusModels buses = bus::standardBuses();
    TextTable table(
        "DiriNB pointer sweep (no broadcast; misses rise as i "
        "shrinks)",
        {"i", "rd-miss %", "displacements %", "Pipelined cyc/ref",
         "Non-pipelined cyc/ref"});
    for (std::size_t s = 0; s < sweep.size(); ++s) {
        const EngineResults &r = sweep[s];
        const unsigned i = pointerCounts[s];
        sim::CostOptions opts;
        opts.nPointers = i;
        const sim::Scheme scheme =
            i == 1 ? sim::Scheme::Dir1NB : sim::Scheme::DirINB;
        const double refs =
            static_cast<double>(r.events.totalRefs());
        table.addRow(
            {std::to_string(i),
             TextTable::pct(refs == 0.0
                                ? 0.0
                                : static_cast<double>(
                                      r.events.readMisses()) /
                                      refs),
             TextTable::pct(refs == 0.0
                                ? 0.0
                                : static_cast<double>(
                                      r.displacementInvals) /
                                      refs),
             TextTable::num(
                 sim::computeCost(scheme, r, buses.pipelined, opts)
                     .total()),
             TextTable::num(
                 sim::computeCost(scheme, r, buses.nonPipelined, opts)
                     .total())});
    }
    return table;
}

} // namespace dirsim::analysis
