#include "analysis/system_perf.hh"

namespace dirsim::analysis
{

namespace
{

/** Per-processor bus demand as a fraction of bus capacity. */
double
demandFraction(const SystemEstimate &est)
{
    const double refs_per_second = est.machine.processorMips * 1e6 *
                                   est.machine.refsPerInstr;
    const double bus_cycles_per_second =
        refs_per_second * est.busCyclesPerRef;
    return bus_cycles_per_second * est.machine.busCycleNs * 1e-9;
}

} // namespace

double
SystemEstimate::utilizationAt(unsigned processors) const
{
    return static_cast<double>(processors) * demandFraction(*this);
}

double
SystemEstimate::effectiveProcessorsAt(unsigned processors) const
{
    // Single-bottleneck queueing bound with think time (the classic
    // asymptotic interpolation): n processors each demanding fraction
    // d of the bus achieve n / (1 + (n-1) d) processors' worth of
    // work — n when d is negligible, 1/d as n grows.
    const double d = demandFraction(*this);
    const double n = static_cast<double>(processors);
    if (d <= 0.0)
        return n;
    return n / (1.0 + (n - 1.0) * d);
}

SystemEstimate
systemEstimate(const sim::CostBreakdown &cost,
               const MachineParams &machine)
{
    SystemEstimate est;
    est.scheme = cost.scheme;
    est.busCyclesPerRef = cost.total();
    est.machine = machine;
    const double refs_per_second =
        machine.processorMips * 1e6 * machine.refsPerInstr;
    if (est.busCyclesPerRef > 0.0 && refs_per_second > 0.0) {
        est.nsPerBusCycleDemand =
            1e9 / (refs_per_second * est.busCyclesPerRef);
        est.maxEffectiveProcessors =
            est.nsPerBusCycleDemand / machine.busCycleNs;
    }
    return est;
}

stats::TextTable
renderSystemLimits(const std::vector<SystemEstimate> &estimates,
                   const std::vector<unsigned> &processorCounts)
{
    std::vector<std::string> headers = {"Scheme", "cyc/ref",
                                        "ns/bus-cycle", "max CPUs"};
    for (unsigned n : processorCounts)
        headers.push_back("eff@" + std::to_string(n));
    stats::TextTable table(
        "Section 5 closing estimate: shared-bus system limits "
        "(10 MIPS processors, 100ns bus)",
        headers);
    for (const SystemEstimate &est : estimates) {
        std::vector<std::string> row = {
            est.scheme, stats::TextTable::num(est.busCyclesPerRef),
            stats::TextTable::num(est.nsPerBusCycleDemand, 0),
            stats::TextTable::num(est.maxEffectiveProcessors, 1)};
        for (unsigned n : processorCounts) {
            row.push_back(stats::TextTable::num(
                est.effectiveProcessorsAt(n), 1));
        }
        table.addRow(row);
    }
    return table;
}

} // namespace dirsim::analysis
