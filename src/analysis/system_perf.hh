/**
 * @file
 * System-level performance estimates from the bus-cycle metric.
 *
 * Section 5 of the paper closes with a back-of-envelope system limit:
 * "The number of bus cycles consumed by a reference in the best
 * scheme with a sophisticated bus is about 0.03 on average...  a
 * processor will use a bus cycle every 30 references, or a bus cycle
 * every 15 instructions since on average each instruction in the
 * traces makes one data reference.  A 10-MIPS processor will
 * therefore require a bus cycle every 1500ns, and a bus with a cycle
 * time of 100ns will only yield a maximum performance of 15 effective
 * processors."
 *
 * This module reproduces that estimate for any scheme and machine
 * parameters, and extends it with a standard open-queueing
 * (M/M/1-style) contention correction: as offered bus utilisation
 * approaches one, queueing delay erodes per-processor throughput, so
 * effective processors saturate smoothly instead of hitting a hard
 * ceiling.
 */

#ifndef DIRSIM_ANALYSIS_SYSTEM_PERF_HH
#define DIRSIM_ANALYSIS_SYSTEM_PERF_HH

#include <string>
#include <vector>

#include "sim/cost_model.hh"
#include "stats/table.hh"

namespace dirsim::analysis
{

/** Machine parameters for the system-limit estimate. */
struct MachineParams
{
    double processorMips = 10.0; //!< Instruction rate, millions/s.
    /**
     * Memory references per instruction.  The traces average one
     * *data* reference per instruction, and the instruction fetch
     * itself is a reference, so the per-reference cost metric is
     * demanded twice per instruction (this is what turns the paper's
     * 0.03 cycles/ref into "a bus cycle every 15 instructions").
     */
    double refsPerInstr = 2.0;
    double busCycleNs = 100.0;   //!< Bus cycle time.
};

/** System-level estimate for one protocol. */
struct SystemEstimate
{
    std::string scheme;
    double busCyclesPerRef = 0.0;
    /** Seconds-scale: ns between bus cycles demanded per processor. */
    double nsPerBusCycleDemand = 0.0;
    /** The paper's hard ceiling: bus bandwidth / per-CPU demand. */
    double maxEffectiveProcessors = 0.0;
    /** Offered bus utilisation with this many physical processors. */
    double utilizationAt(unsigned processors) const;
    /**
     * Effective processors with queueing: throughput of n processors
     * sharing the bus where each stalls on queued bus service.
     */
    double effectiveProcessorsAt(unsigned processors) const;

    MachineParams machine;
};

/** Build the estimate for one costed scheme. */
SystemEstimate systemEstimate(const sim::CostBreakdown &cost,
                              const MachineParams &machine);

/**
 * Render the Section 5 closing estimate for a set of scheme costs,
 * with an effective-processor column per entry in @p processorCounts.
 */
stats::TextTable
renderSystemLimits(const std::vector<SystemEstimate> &estimates,
                   const std::vector<unsigned> &processorCounts);

} // namespace dirsim::analysis

#endif // DIRSIM_ANALYSIS_SYSTEM_PERF_HH
