#include "analysis/extensions.hh"

#include <algorithm>

#include "bus/bus_model.hh"
#include "bus/network.hh"
#include "directory/coarse_vector.hh"
#include "directory/full_map.hh"
#include "directory/limited_pointer.hh"
#include "directory/two_bit.hh"
#include "coherence/inval_engine.hh"
#include "sim/cost_model.hh"

namespace dirsim::analysis
{

using stats::TextTable;

std::vector<ScalingPoint>
scalingStudy(const std::vector<unsigned> &cpuCounts,
             std::uint64_t refsPerCpu)
{
    const bus::BusCosts pipe = bus::standardBuses().pipelined;
    std::vector<ScalingPoint> points;
    for (unsigned n : cpuCounts) {
        const gen::WorkloadConfig cfg =
            gen::scaledConfig(n, refsPerCpu * n);
        const Evaluation eval = evaluateWorkloads({cfg});

        ScalingPoint pt;
        pt.nCpus = n;
        const auto &iv = eval.average.inval;
        pt.dir0bCycles =
            sim::computeCost(sim::Scheme::Dir0B, iv, pipe).total();
        pt.dirnnbCycles =
            sim::computeCost(sim::Scheme::DirNNBSeq, iv, pipe).total();
        pt.dir1nbCycles =
            sim::computeCost(sim::Scheme::Dir1NB, eval.average.dir1nb,
                             pipe)
                .total();
        pt.dragonCycles =
            sim::computeCost(sim::Scheme::Dragon, eval.average.dragon,
                             pipe)
                .total();

        stats::Histogram fanout;
        fanout.merge(iv.whClnFanout);
        fanout.merge(iv.wmClnFanout);
        pt.fracAtMostOne = fanout.fracAtMost(1);
        pt.meanFanout = fanout.mean();
        pt.broadcastEventFrac = 1.0 - fanout.fracAtMost(1);
        points.push_back(pt);
    }
    return points;
}

TextTable
renderScaling(const std::vector<ScalingPoint> &points)
{
    TextTable table(
        "Extension A: Scaling beyond 4 CPUs (pipelined bus cycles per "
        "reference)",
        {"CPUs", "Dir1NB", "Dir0B", "DirnNB", "Dragon", "<=1 inval %",
         "mean fanout"});
    for (const ScalingPoint &pt : points) {
        table.addRow({std::to_string(pt.nCpus),
                      TextTable::num(pt.dir1nbCycles),
                      TextTable::num(pt.dir0bCycles),
                      TextTable::num(pt.dirnnbCycles),
                      TextTable::num(pt.dragonCycles),
                      TextTable::pct(pt.fracAtMostOne, 1),
                      TextTable::num(pt.meanFanout, 2)});
    }
    return table;
}

std::vector<FiniteCachePoint>
finiteCacheStudy(const std::vector<std::uint64_t> &capacities,
                 bool fullSize)
{
    const bus::BusCosts pipe = bus::standardBuses().pipelined;
    const auto workloads = gen::standardWorkloads(fullSize);
    std::vector<FiniteCachePoint> points;

    auto analyse = [&](const coherence::EngineResults &r,
                       std::uint64_t capacity) {
        FiniteCachePoint pt;
        pt.capacityBytes = capacity;
        const double refs = static_cast<double>(r.events.totalRefs());
        if (refs > 0.0) {
            pt.readMissFrac =
                static_cast<double>(r.events.readMisses()) / refs;
            pt.writeMissFrac =
                static_cast<double>(r.events.writeMisses()) / refs;
            pt.memoryMissFrac =
                static_cast<double>(
                    r.events.count(coherence::Event::RmMemory) +
                    r.events.count(coherence::Event::WmMemory)) /
                refs;
            pt.replacementWbFrac =
                static_cast<double>(r.replacementWriteBacks) / refs;
        }
        pt.dir0bCycles =
            sim::computeCost(sim::Scheme::Dir0B, r, pipe).total();
        return pt;
    };

    // Infinite baseline first.
    const Evaluation base = evaluateWorkloads(workloads);
    points.push_back(analyse(base.average.inval, 0));

    for (std::uint64_t capacity : capacities) {
        mem::CacheGeometry geom;
        geom.capacityBytes = capacity;
        geom.blockBytes = 16;
        geom.ways = 4;
        points.push_back(analyse(
            invalWithFiniteCaches(workloads, geom), capacity));
    }
    return points;
}

TextTable
renderFiniteCache(const std::vector<FiniteCachePoint> &points)
{
    TextTable table(
        "Extension B: Finite data caches under Dir0B (4-way LRU, "
        "16-byte blocks)",
        {"Capacity", "rm %", "wm %", "uncached-miss %", "repl-wb %",
         "Dir0B cyc/ref"});
    for (const FiniteCachePoint &pt : points) {
        const std::string cap =
            pt.capacityBytes == 0
                ? "infinite"
                : std::to_string(pt.capacityBytes / 1024) + " KiB";
        table.addRow({cap, TextTable::pct(pt.readMissFrac),
                      TextTable::pct(pt.writeMissFrac),
                      TextTable::pct(pt.memoryMissFrac),
                      TextTable::pct(pt.replacementWbFrac),
                      TextTable::num(pt.dir0bCycles)});
    }
    return table;
}

SharingDomainComparison
sharingDomainStudy(double migrationRate, bool fullSize)
{
    // Enable a little process migration so the two domains can
    // actually differ, as in the paper's traces.
    std::vector<gen::WorkloadConfig> workloads =
        gen::standardWorkloads(fullSize);
    for (auto &cfg : workloads) {
        cfg.migrationRate = migrationRate;
        cfg.quantumRefs = 40'000;
    }

    SharingDomainComparison cmp;
    EvalOptions by_process;
    by_process.sim.domain = sim::SharingDomain::Process;
    cmp.byProcess = evaluateWorkloads(workloads, by_process);

    EvalOptions by_processor;
    by_processor.sim.domain = sim::SharingDomain::Processor;
    cmp.byProcessor = evaluateWorkloads(workloads, by_processor);
    return cmp;
}

TextTable
renderSharingDomain(const SharingDomainComparison &cmp)
{
    const bus::BusCosts pipe = bus::standardBuses().pipelined;
    TextTable table(
        "Extension C: Process- vs processor-based sharing (pipelined "
        "bus cycles per reference, with migration enabled)",
        {"Scheme", "By process", "By processor"});

    auto row = [&](const std::string &name, sim::Scheme scheme,
                   const coherence::EngineResults &proc,
                   const coherence::EngineResults &cpu) {
        table.addRow(
            {name,
             TextTable::num(sim::computeCost(scheme, proc, pipe)
                                .total()),
             TextTable::num(sim::computeCost(scheme, cpu, pipe)
                                .total())});
    };
    row("Dir1NB", sim::Scheme::Dir1NB, cmp.byProcess.average.dir1nb,
        cmp.byProcessor.average.dir1nb);
    row("Dir0B", sim::Scheme::Dir0B, cmp.byProcess.average.inval,
        cmp.byProcessor.average.inval);
    row("Dragon", sim::Scheme::Dragon, cmp.byProcess.average.dragon,
        cmp.byProcessor.average.dragon);
    return table;
}

std::vector<NetworkPoint>
networkStudy(const std::vector<unsigned> &cpuCounts,
             std::uint64_t refsPerCpu)
{
    std::vector<NetworkPoint> points;
    for (unsigned n : cpuCounts) {
        const gen::WorkloadConfig cfg =
            gen::scaledConfig(n, refsPerCpu * n);
        const Evaluation eval = evaluateWorkloads({cfg});
        const auto &iv = eval.average.inval;
        const auto &dg = eval.average.dragon;

        bus::NetworkParams net;
        net.nNodes = n;
        const bus::BusCosts directed = bus::networkCosts(net);
        const double bcast = bus::networkBroadcastCost(net);

        NetworkPoint pt;
        pt.nCpus = n;

        // Two-bit directory: no identities, every invalidation and
        // flush request is an emulated broadcast.
        bus::BusCosts broadcast_costs = directed;
        broadcast_costs.invalidate = static_cast<unsigned>(bcast);
        pt.dir0bBroadcast =
            sim::computeCost(sim::Scheme::Dir0B, iv, broadcast_costs)
                .total();

        pt.dirnnbDirected =
            sim::computeCost(sim::Scheme::DirNNBSeq, iv, directed)
                .total();

        sim::CostOptions opts;
        opts.broadcastCost = bcast;
        opts.nPointers = 1;
        pt.dir1b = sim::computeCost(sim::Scheme::DirIB, iv, directed,
                                    opts)
                       .total();
        opts.nPointers = 4;
        pt.dir4b = sim::computeCost(sim::Scheme::DirIB, iv, directed,
                                    opts)
                       .total();

        // Snoopy write-through: every write must reach every cache.
        bus::BusCosts wti_costs = directed;
        wti_costs.writeWord =
            static_cast<unsigned>(bcast) + 1;
        pt.wtiBroadcast =
            sim::computeCost(sim::Scheme::WTI, iv, wti_costs).total();

        // Directory-assisted update protocol: one directed update per
        // actual remote copy (the engines record update fanouts).
        const sim::CostBreakdown dragon_base =
            sim::computeCost(sim::Scheme::Dragon, dg, directed);
        const double refs =
            static_cast<double>(dg.events.totalRefs());
        const double update_events =
            static_cast<double>(dg.events.count(
                coherence::Event::WhDistrib)) +
            static_cast<double>(dg.events.count(
                coherence::Event::WmBlkCln)) +
            static_cast<double>(dg.events.count(
                coherence::Event::WmBlkDrty));
        const double update_messages =
            static_cast<double>(dg.whClnFanout.totalWeight()) +
            static_cast<double>(dg.wmClnFanout.totalWeight());
        // The base model charged one writeWord per update event;
        // charge the extra messages beyond the first.
        const double extra =
            refs == 0.0 ? 0.0
                        : (update_messages - update_events) *
                              directed.writeWord / refs;
        pt.dragonDirected = dragon_base.total() + std::max(0.0, extra);

        points.push_back(pt);
    }
    return points;
}

TextTable
renderNetwork(const std::vector<NetworkPoint> &points)
{
    TextTable table(
        "Extension E: protocols on a point-to-point network "
        "(channel cycles per reference; broadcast = n-1 messages)",
        {"CPUs", "Dir0B (bcast)", "DirnNB", "Dir1B", "Dir4B",
         "WTI (snoop)", "Dragon (dir)"});
    for (const NetworkPoint &pt : points) {
        table.addRow({std::to_string(pt.nCpus),
                      TextTable::num(pt.dir0bBroadcast),
                      TextTable::num(pt.dirnnbDirected),
                      TextTable::num(pt.dir1b),
                      TextTable::num(pt.dir4b),
                      TextTable::num(pt.wtiBroadcast),
                      TextTable::num(pt.dragonDirected)});
    }
    return table;
}

std::vector<HomeLocalityPoint>
homeLocalityStudy(const std::vector<unsigned> &cpuCounts,
                  std::uint64_t refsPerCpu)
{
    std::vector<HomeLocalityPoint> points;
    for (unsigned n : cpuCounts) {
        const gen::WorkloadConfig cfg =
            gen::scaledConfig(n, refsPerCpu * n);

        auto run = [&](coherence::HomePolicy policy) {
            sim::Simulator simulator;
            coherence::InvalEngineConfig icfg;
            icfg.nUnits = n;
            icfg.homePolicy = policy;
            auto &engine = simulator.addEngine(
                std::make_unique<coherence::InvalEngine>(icfg));
            gen::WorkloadSource source(cfg);
            simulator.run(source);
            return engine.results();
        };
        const auto modulo = run(coherence::HomePolicy::Modulo);
        const auto first = run(coherence::HomePolicy::FirstTouch);

        auto local_frac = [](const coherence::EngineResults &r) {
            const double total = static_cast<double>(
                r.homeLocalTransactions + r.homeRemoteTransactions);
            return total == 0.0
                       ? 0.0
                       : static_cast<double>(r.homeLocalTransactions) /
                             total;
        };
        auto remote_per_ref = [](const coherence::EngineResults &r) {
            const double refs =
                static_cast<double>(r.events.totalRefs());
            return refs == 0.0
                       ? 0.0
                       : static_cast<double>(
                             r.homeRemoteTransactions) /
                             refs;
        };

        HomeLocalityPoint pt;
        pt.nCpus = n;
        pt.moduloLocalFrac = local_frac(modulo);
        pt.firstTouchLocalFrac = local_frac(first);
        pt.moduloRemotePerRef = remote_per_ref(modulo);
        pt.firstTouchRemotePerRef = remote_per_ref(first);
        points.push_back(pt);
    }
    return points;
}

TextTable
renderHomeLocality(const std::vector<HomeLocalityPoint> &points)
{
    TextTable table(
        "Extension G: distributed-directory locality (fraction of "
        "home-node transactions kept local)",
        {"CPUs", "Interleaved local %", "First-touch local %",
         "Interleaved remote/ref", "First-touch remote/ref"});
    for (const HomeLocalityPoint &pt : points) {
        table.addRow({std::to_string(pt.nCpus),
                      TextTable::pct(pt.moduloLocalFrac, 1),
                      TextTable::pct(pt.firstTouchLocalFrac, 1),
                      TextTable::num(pt.moduloRemotePerRef),
                      TextTable::num(pt.firstTouchRemotePerRef)});
    }
    return table;
}

std::vector<DirectoryMessageStats>
directoryMessageStudy(bool fullSize)
{
    const auto workloads = gen::standardWorkloads(fullSize);

    struct Named
    {
        std::string name;
        std::unique_ptr<directory::DirEntryFactory> factory;
    };
    std::vector<Named> organizations;
    organizations.push_back(
        {"Full map (DirnNB)",
         std::make_unique<directory::FullMapFactory>()});
    organizations.push_back(
        {"Two-bit (Dir0B)",
         std::make_unique<directory::TwoBitFactory>()});
    organizations.push_back(
        {"Dir1B", std::make_unique<directory::LimitedPointerFactory>(
                      1, true)});
    organizations.push_back(
        {"Dir2B", std::make_unique<directory::LimitedPointerFactory>(
                      2, true)});
    organizations.push_back(
        {"Coarse vector",
         std::make_unique<directory::CoarseVectorFactory>()});

    std::vector<DirectoryMessageStats> rows;
    for (const Named &org : organizations) {
        const coherence::EngineResults r =
            invalWithDirectory(workloads, *org.factory);
        const double events = static_cast<double>(
            r.whClnFanout.totalSamples() + r.wmClnFanout.totalSamples() +
            r.events.count(coherence::Event::WmBlkDrty));
        DirectoryMessageStats stats;
        stats.organization = org.name;
        if (events > 0.0) {
            stats.directedPerInvalEvent =
                static_cast<double>(r.dirDirectedInvals) / events;
            stats.broadcastFrac =
                static_cast<double>(r.dirBroadcasts) / events;
            stats.overshootPerEvent =
                static_cast<double>(r.dirOvershoot) / events;
        }
        rows.push_back(stats);
    }
    return rows;
}

TextTable
renderDirectoryMessages(const std::vector<DirectoryMessageStats> &rows)
{
    TextTable table(
        "Extension D: Invalidation messages by directory organisation "
        "(per invalidating event)",
        {"Organisation", "Directed msgs", "Broadcast %",
         "Overshoot msgs"});
    for (const DirectoryMessageStats &row : rows) {
        table.addRow({row.organization,
                      TextTable::num(row.directedPerInvalEvent, 3),
                      TextTable::pct(row.broadcastFrac, 1),
                      TextTable::num(row.overshootPerEvent, 3)});
    }
    return table;
}

} // namespace dirsim::analysis
