/**
 * @file
 * Evaluation runner: executes the paper's simulation campaign.
 *
 * One Evaluation holds, per trace and averaged, the results of the
 * three state-change engines the paper's protocols reduce to:
 *
 *  - inval:  multiple-clean / single-dirty write-invalidate (costs
 *            Dir0B, WTI, DirnNB, DiriB, Berkeley and Yen-Fu);
 *  - dir1nb: the single-copy engine;
 *  - dragon: the update engine.
 *
 * Helper runners cover the variants that need their own state
 * dynamics: the DiriNB pointer sweep, directory-organisation shadows,
 * lock-test filtering (Section 5.2), finite caches, and processor-
 * rather than process-based sharing.
 */

#ifndef DIRSIM_ANALYSIS_EVALUATION_HH
#define DIRSIM_ANALYSIS_EVALUATION_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "coherence/results.hh"
#include "directory/dir_cache.hh"
#include "directory/entry.hh"
#include "gen/workloads.hh"
#include "mem/set_assoc.hh"
#include "sim/simulator.hh"
#include "trace/characterize.hh"

namespace dirsim::analysis
{

/** Engine results for one trace. */
struct TraceEvaluation
{
    std::string trace;
    coherence::EngineResults inval;
    coherence::EngineResults dir1nb;
    coherence::EngineResults dragon;
};

/** Results for a set of traces plus their merge. */
struct Evaluation
{
    std::vector<TraceEvaluation> traces;
    /** All traces merged (the paper reports averages across traces). */
    TraceEvaluation average;
};

/**
 * @name Process-wide default for EvalOptions::jobs.
 *
 * The extension studies build their EvalOptions internally; setting
 * the default once (e.g.\ from a --jobs flag) fans every defaulted
 * evaluation in the process out over the sweep engine without
 * threading a parameter through each study's signature.  Explicitly
 * constructed options can still override the field.  Not thread-safe:
 * set it during start-up, before evaluations run.
 * @{
 */
void setDefaultEvalJobs(unsigned jobs);
unsigned defaultEvalJobs();
/** @} */

/**
 * @name Process-wide default for EvalOptions::streamReplay.
 *
 * Same pattern as setDefaultEvalJobs(): a driver that enables the
 * out-of-core trace cache (e.g.\ from --trace-cache-dir) flips this
 * once and every defaulted evaluation streams from disk.  Requires
 * sim::TraceRepository::global() to have a configured disk tier.
 * @{
 */
void setDefaultStreamReplay(bool stream);
bool defaultStreamReplay();
/** @} */

/**
 * @name Process-wide default for EvalOptions::fusedReplay.
 *
 * Same pattern again: the A/B escape hatch (--no-fused on the
 * drivers) flips this once to make every defaulted evaluation replay
 * engines sequentially, pre-fusion style, for comparison runs.
 * @{
 */
void setDefaultFusedReplay(bool fused);
bool defaultFusedReplay();
/** @} */

/**
 * @name Process-wide default for EvalOptions::multiConfig.
 *
 * Same pattern again: the multi-configuration A/B hatch (--no-multi
 * on the drivers) flips this once to make every defaulted evaluation
 * run its DiriNB cells as independent LimitedEngines, pre-collapse
 * style, for comparison runs.
 * @{
 */
void setDefaultMultiConfig(bool multi);
bool defaultMultiConfig();
/** @} */

/** Options for evaluation runs. */
struct EvalOptions
{
    sim::SimConfig sim;
    /** Drop spin-lock test reads first (the Section 5.2 experiment). */
    bool dropLockTests = false;
    /** Units for the engines; 0 = use each workload's process count. */
    unsigned nUnits = 0;
    /**
     * Worker threads for the run.  1 (the default) streams every
     * workload serially through one Simulator, exactly as the paper's
     * single simulation pass does.  >1 fans the workload×engine
     * matrix out over a sim::SweepRunner: each workload is
     * materialised once into an immutable MemoryTrace, shared
     * zero-copy across per-engine jobs.  0 means one thread per
     * hardware thread.  Parallel runs are bit-identical to serial
     * ones (the test suite enforces this).
     *
     * Initialised from defaultEvalJobs() (1 unless a driver raised
     * it).
     */
    unsigned jobs = defaultEvalJobs();
    /**
     * Replay decode-once prepared traces from the process-wide
     * sim::TraceRepository instead of re-generating and re-decoding
     * each workload per run.  Results are bit-identical either way
     * (the golden suite enforces it); the flag exists so benches can
     * A/B the raw path.
     */
    bool usePreparedTraces = true;
    /**
     * Replay each workload as an out-of-core StoredTrace via the
     * repository's disk tier (sim::TraceRepository::getStored)
     * instead of holding the prepared columns in memory: peak RSS per
     * replay is one chunk window, and warm cache files carry the
     * generate+decode work across processes.  Results are
     * bit-identical to the in-memory prepared path (golden suite).
     * Only meaningful with usePreparedTraces; requires the global
     * repository's disk cache to be configured.  Initialised from
     * defaultStreamReplay().
     */
    bool streamReplay = defaultStreamReplay();
    /**
     * Fused multi-scheme replay (sim/fused_replay.hh): one strip-
     * mined pass over each workload's prepared columns drives every
     * engine of the run, and parallel runs group the scheme axis by
     * workload so each SweepRunner job fuses all of a workload's
     * engines.  Bit-identical to sequential replay (golden suite);
     * the flag exists as the A/B escape hatch.  Initialised from
     * defaultFusedReplay() (true unless a driver lowered it).
     */
    bool fusedReplay = defaultFusedReplay();
    /**
     * Collapse a run's DiriNB cells into one
     * coherence::MultiLimitedEngine: one shared block table whose
     * entries hold every pointer count's state side by side, so the
     * Dir1NB…Dir8NB axis costs one probe + k lane updates per
     * reference instead of k probes.  Applies wherever a run (serial)
     * or a fused sweep group (parallel) carries at least two DiriNB
     * cells; results are bit-identical to independent engines (golden
     * + differential suites).  Automatically falls back to
     * independent LimitedEngines when a finite directory cache is
     * configured — eviction state is per-configuration, which would
     * undo the sharing.  Initialised from defaultMultiConfig() (true
     * unless a driver lowered it via --no-multi).
     */
    bool multiConfig = defaultMultiConfig();
    /**
     * Finite directory-entry cache applied to the directory-based
     * engines (inval and DiriNB; the snoopy engines have no directory
     * to cache).  Disabled by default — the paper's entry-per-block
     * model.
     */
    directory::DirCacheConfig dirCache;
};

/** Run the three standard engines over each workload. */
Evaluation evaluateWorkloads(const std::vector<gen::WorkloadConfig> &cfgs,
                             const EvalOptions &opts = EvalOptions{});

/** The paper's campaign: pops, thor and pero. */
Evaluation evaluateStandard(bool fullSize = false);

/** Characterise each workload (Table 3). */
std::vector<trace::TraceCharacteristics>
characterizeWorkloads(const std::vector<gen::WorkloadConfig> &cfgs);

/**
 * Run the DiriNB engine for each pointer count in @p pointerCounts,
 * merged across the workloads.
 *
 * @return One merged EngineResults per pointer count, in order.
 */
std::vector<coherence::EngineResults>
limitedSweep(const std::vector<gen::WorkloadConfig> &cfgs,
             const std::vector<unsigned> &pointerCounts,
             const EvalOptions &opts = EvalOptions{});

/**
 * Run the invalidation engine shadowing a real directory organisation,
 * merged across workloads; the result's dir* counters report what that
 * organisation would have sent.
 */
coherence::EngineResults
invalWithDirectory(const std::vector<gen::WorkloadConfig> &cfgs,
                   const directory::DirEntryFactory &factory,
                   const EvalOptions &opts = EvalOptions{});

/**
 * Run the real Berkeley Ownership engine, merged across workloads
 * (the clean/dirty miss split differs from the invalidation model
 * because ownership persists across read misses).
 */
coherence::EngineResults
berkeleyResults(const std::vector<gen::WorkloadConfig> &cfgs,
                const EvalOptions &opts = EvalOptions{});

/**
 * Run the invalidation engine with finite caches of the given
 * geometry, merged across workloads.
 */
coherence::EngineResults
invalWithFiniteCaches(const std::vector<gen::WorkloadConfig> &cfgs,
                      const mem::CacheGeometry &geometry,
                      const EvalOptions &opts = EvalOptions{});

/**
 * Run the invalidation engine behind a finite directory cache,
 * merged across workloads.  Equivalent to setting opts.dirCache but
 * keeps call sites that sweep cache sizes compact.
 */
coherence::EngineResults
invalWithDirCache(const std::vector<gen::WorkloadConfig> &cfgs,
                  const directory::DirCacheConfig &dirCache,
                  const EvalOptions &opts = EvalOptions{});

/**
 * Run the DiriNB engine behind a finite directory cache, merged
 * across workloads.
 */
coherence::EngineResults
limitedWithDirCache(const std::vector<gen::WorkloadConfig> &cfgs,
                    unsigned nPointers,
                    const directory::DirCacheConfig &dirCache,
                    const EvalOptions &opts = EvalOptions{});

} // namespace dirsim::analysis

#endif // DIRSIM_ANALYSIS_EVALUATION_HH
