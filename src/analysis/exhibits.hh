/**
 * @file
 * Reproductions of the paper's tables and figures.
 *
 * Each function computes one exhibit from evaluation results and (for
 * text output) renders it as a TextTable whose rows mirror the
 * published layout.  Numeric accessors are exposed so tests can assert
 * on the reproduced shapes (orderings, ratios, crossovers) rather than
 * on rendered text.
 */

#ifndef DIRSIM_ANALYSIS_EXHIBITS_HH
#define DIRSIM_ANALYSIS_EXHIBITS_HH

#include <utility>
#include <vector>

#include "analysis/evaluation.hh"
#include "sim/cost_model.hh"
#include "stats/histogram.hh"
#include "stats/table.hh"

namespace dirsim::analysis
{

/** The four protocols of the paper's main comparison, in its order. */
enum class PaperScheme
{
    Dir1NB,
    WTI,
    Dir0B,
    Dragon,
};

/** All four, in paper order. */
const std::vector<PaperScheme> &paperSchemes();

/** Engine results the scheme is costed from. */
const coherence::EngineResults &resultsFor(PaperScheme scheme,
                                           const TraceEvaluation &te);
/** Cost-model scheme id. */
sim::Scheme simSchemeFor(PaperScheme scheme);
/** Display name. */
std::string paperSchemeName(PaperScheme scheme);

/** Pipelined and non-pipelined costs for one scheme (Figure 2 bar). */
struct SchemeCost
{
    std::string name;
    sim::CostBreakdown pipelined;
    sim::CostBreakdown nonPipelined;
};

/** Costs of all four schemes for one trace (or the average). */
std::vector<SchemeCost> schemeCosts(const TraceEvaluation &te,
                                    double overheadQ = 0.0);

/** Table 1: fundamental bus-operation timings. */
stats::TextTable table1();
/** Table 2: per-event bus-cycle costs for both buses. */
stats::TextTable table2();
/** Table 3: trace characteristics. */
stats::TextTable
table3(const std::vector<trace::TraceCharacteristics> &chars);
/** Table 4: event frequencies as percentages of all references. */
stats::TextTable table4(const Evaluation &eval);

/** Figure 1 data: invalidation-fanout histogram at clean writes. */
struct Figure1
{
    stats::Histogram fanout;
    /** Fraction of clean-block writes invalidating <= 1 cache. */
    double fracAtMostOne = 0.0;
};
Figure1 figure1(const Evaluation &eval);
stats::TextTable renderFigure1(const Figure1 &fig, unsigned nCaches);

/** Figure 2: bus cycles/ref per scheme, both buses, trace average. */
stats::TextTable figure2(const Evaluation &eval);
/** Figure 3: as Figure 2 but per individual trace. */
stats::TextTable figure3(const Evaluation &eval);
/** Table 5: breakdown by operation class, pipelined bus. */
stats::TextTable table5(const Evaluation &eval);
/** Figure 4: breakdown as fractions of each scheme's total. */
stats::TextTable figure4(const Evaluation &eval);
/** Figure 5: average bus cycles per bus transaction. */
stats::TextTable figure5(const Evaluation &eval);

/** Section 5.1: cost with q overhead cycles per transaction. */
stats::TextTable section51(const Evaluation &eval,
                           const std::vector<double> &qValues);

/** Section 5.2: spin-lock sensitivity (lock tests kept vs dropped). */
stats::TextTable section52(const Evaluation &withLocks,
                           const Evaluation &withoutLocks);

/** Section 6 scalability analytics. */
struct Section6
{
    double dir0b = 0.0;     //!< Broadcast invalidates (baseline).
    double dirnnbSeq = 0.0; //!< Full map, sequential invalidates.
    double berkeley = 0.0;  //!< Berkeley Ownership estimate.
    double yenfu = 0.0;     //!< Yen-Fu single-bit refinement.
    /** Dir1B linear model: cycles/ref = dir1bBase + dir1bCoef * b. */
    double dir1bBase = 0.0;
    double dir1bCoef = 0.0;
    /** DiriB totals for i = 1..4 at the given broadcast cost. */
    std::vector<std::pair<unsigned, double>> diribTotals;
};
Section6 section6(const Evaluation &eval, double broadcastCost = 8.0);
stats::TextTable renderSection6(const Section6 &sec,
                                double broadcastCost);

/** DiriNB sweep rendering (misses vs pointer count). */
stats::TextTable
limitedSweepTable(const std::vector<coherence::EngineResults> &sweep,
                  const std::vector<unsigned> &pointerCounts);

} // namespace dirsim::analysis

#endif // DIRSIM_ANALYSIS_EXHIBITS_HH
