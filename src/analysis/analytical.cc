#include "analysis/analytical.hh"

#include <cmath>

#include "coherence/events.hh"

namespace dirsim::analysis
{

AnalyticalPrediction
analyticalPredict(const AnalyticalParams &params)
{
    AnalyticalPrediction pred;
    const double fs = params.sharedRefFrac;
    const double w = params.writeFrac;
    const double p = static_cast<double>(params.nProcessors);
    if (fs <= 0.0 || w <= 0.0 || params.nProcessors < 2)
        return pred;

    // Uniform mixing: between consecutive writes to a shared block
    // there are r = (1-w)/w reads, issued by uniformly random
    // processors.  Each of the P-1 remote processors therefore reads
    // the block in that window with probability q.
    const double r = (1.0 - w) / w;
    const double q = 1.0 - std::pow(1.0 - 1.0 / p, r);

    // Remote copies at the write ~ Binomial(P-1, q).
    pred.meanFanout = (p - 1.0) * q;
    pred.fracAtMostOne =
        std::pow(1.0 - q, p - 1.0) +
        (p - 1.0) * q * std::pow(1.0 - q, p - 2.0);

    // Every shared write invalidates unless the writer still holds
    // the block dirty (previous access was its own write: w / P).
    pred.invalEventsPerRef = fs * w * (1.0 - w / p);

    // First-order: every invalidated copy is eventually re-fetched,
    // so coherence misses track invalidations times fanout.
    pred.coherenceMissesPerRef =
        pred.invalEventsPerRef * pred.meanFanout;
    return pred;
}

std::vector<AnalyticalComparison>
analyticalStudy(const std::vector<gen::WorkloadConfig> &cfgs)
{
    std::vector<AnalyticalComparison> rows;
    for (const gen::WorkloadConfig &cfg : cfgs) {
        const Evaluation eval = evaluateWorkloads({cfg});
        gen::WorkloadSource source(cfg);
        const trace::TraceCharacteristics ch = trace::characterize(
            source, cfg.name, cfg.space.blockBytes);

        AnalyticalComparison row;
        row.trace = cfg.name;
        row.fitted.nProcessors = cfg.space.nProcesses;
        row.fitted.sharedRefFrac =
            ch.refs == 0 ? 0.0
                         : static_cast<double>(ch.refsToSharedBlocks) /
                               static_cast<double>(ch.refs);
        row.fitted.writeFrac =
            ch.refsToSharedBlocks == 0
                ? 0.0
                : static_cast<double>(ch.writesToSharedBlocks) /
                      static_cast<double>(ch.refsToSharedBlocks);
        row.predicted = analyticalPredict(row.fitted);

        const auto &iv = eval.average.inval;
        const auto &dg = eval.average.dragon;
        const double refs =
            static_cast<double>(iv.events.totalRefs());
        if (refs > 0.0) {
            stats::Histogram fanout;
            fanout.merge(iv.whClnFanout);
            fanout.merge(iv.wmClnFanout);
            row.simInvalEventsPerRef =
                static_cast<double>(fanout.totalSamples()) / refs;
            row.simMeanFanout = fanout.mean();
            row.simFracAtMostOne = fanout.fracAtMost(1);
            // Coherence misses = invalidation-model misses minus the
            // update protocol's native misses (Section 5's method).
            const double inval_misses = static_cast<double>(
                iv.events.readMisses() + iv.events.writeMisses());
            const double native_misses = static_cast<double>(
                dg.events.readMisses() + dg.events.writeMisses());
            row.simCoherenceMissesPerRef =
                (inval_misses - native_misses) / refs;
        }
        rows.push_back(row);
    }
    return rows;
}

stats::TextTable
renderAnalytical(const std::vector<AnalyticalComparison> &rows)
{
    using stats::TextTable;
    TextTable table(
        "Extension H: uniform-sharing analytical model vs simulation "
        "(per-reference rates; the Section 4 methodology argument)",
        {"Trace", "fs %", "w(shared) %", "inval/ref pred", "sim",
         "coh-miss/ref pred", "sim", "<=1 pred %", "sim %"});
    for (const AnalyticalComparison &row : rows) {
        table.addRow({row.trace,
                      TextTable::pct(row.fitted.sharedRefFrac, 1),
                      TextTable::pct(row.fitted.writeFrac, 1),
                      TextTable::num(row.predicted.invalEventsPerRef),
                      TextTable::num(row.simInvalEventsPerRef),
                      TextTable::num(
                          row.predicted.coherenceMissesPerRef),
                      TextTable::num(row.simCoherenceMissesPerRef),
                      TextTable::pct(row.predicted.fracAtMostOne, 1),
                      TextTable::pct(row.simFracAtMostOne, 1)});
    }
    return table;
}

} // namespace dirsim::analysis
