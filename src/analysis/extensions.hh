/**
 * @file
 * Extension studies beyond the paper's published exhibits.
 *
 * The paper explicitly flags two limitations of its data — only four
 * CPUs ("We are trying to obtain traces for a much larger number of
 * processes and hope to extend our results shortly") and infinite
 * caches — and checks a third (process- vs processor-based sharing)
 * without printing numbers.  These runners produce all three studies,
 * plus a directory-organisation message study that quantifies the
 * coarse-vector limited broadcast of Section 6.
 */

#ifndef DIRSIM_ANALYSIS_EXTENSIONS_HH
#define DIRSIM_ANALYSIS_EXTENSIONS_HH

#include <vector>

#include "analysis/evaluation.hh"
#include "stats/table.hh"

namespace dirsim::analysis
{

/** One processor-count point of the scaling study. */
struct ScalingPoint
{
    unsigned nCpus = 0;
    double dir0bCycles = 0.0;   //!< Pipelined cycles/ref.
    double dirnnbCycles = 0.0;  //!< Sequential invalidates.
    double dir1nbCycles = 0.0;
    double dragonCycles = 0.0;
    double fracAtMostOne = 0.0; //!< Figure 1 statistic at this scale.
    double broadcastEventFrac = 0.0; //!< Inval events with fanout > 1.
    double meanFanout = 0.0;    //!< Mean copies invalidated per event.
};

/**
 * Scaling study: run the evaluation at each processor count using the
 * generic scaled workload.
 *
 * @param cpuCounts Processor counts (powers of two, <= 64).
 * @param refsPerCpu References generated per processor.
 */
std::vector<ScalingPoint>
scalingStudy(const std::vector<unsigned> &cpuCounts,
             std::uint64_t refsPerCpu = 150'000);
stats::TextTable renderScaling(const std::vector<ScalingPoint> &points);

/** One cache-size point of the finite-cache study. */
struct FiniteCachePoint
{
    std::uint64_t capacityBytes = 0; //!< 0 encodes infinite.
    double readMissFrac = 0.0;
    double writeMissFrac = 0.0;
    double memoryMissFrac = 0.0;   //!< Misses to uncached blocks.
    double replacementWbFrac = 0.0;
    double dir0bCycles = 0.0;
};

/**
 * Finite-cache study: Dir0B with set-associative caches of each
 * capacity, against the infinite-cache baseline (capacity 0).
 */
std::vector<FiniteCachePoint>
finiteCacheStudy(const std::vector<std::uint64_t> &capacities,
                 bool fullSize = false);
stats::TextTable
renderFiniteCache(const std::vector<FiniteCachePoint> &points);

/** Process- vs processor-based sharing (the Section 4.4 check). */
struct SharingDomainComparison
{
    Evaluation byProcess;
    Evaluation byProcessor;
};
SharingDomainComparison sharingDomainStudy(double migrationRate = 0.02,
                                           bool fullSize = false);
stats::TextTable
renderSharingDomain(const SharingDomainComparison &cmp);

/** One machine-size point of the network study. */
struct NetworkPoint
{
    unsigned nCpus = 0;
    /** Two-bit directory: every invalidation is an emulated
     *  broadcast of n-1 directed messages. */
    double dir0bBroadcast = 0.0;
    /** Full-map directory: directed invalidations only. */
    double dirnnbDirected = 0.0;
    double dir1b = 0.0; //!< One pointer + broadcast fallback.
    double dir4b = 0.0; //!< Four pointers + broadcast fallback.
    /** Snoopy WTI: every write must be visible to all caches. */
    double wtiBroadcast = 0.0;
    /** Directory-assisted update protocol: directed updates to the
     *  actual sharers. */
    double dragonDirected = 0.0;
};

/**
 * Network study: the paper's scaling argument made quantitative.
 * Prices the protocols on a point-to-point network of n nodes
 * (bus/network.hh) where a broadcast costs n-1 directed messages,
 * using the scaled workload at each size.  Broadcast-reliant schemes
 * (two-bit directory, snoopy write-through) should degrade with n
 * while directed directory schemes stay nearly flat.
 */
std::vector<NetworkPoint>
networkStudy(const std::vector<unsigned> &cpuCounts,
             std::uint64_t refsPerCpu = 120'000);
stats::TextTable renderNetwork(const std::vector<NetworkPoint> &points);

/** One point of the distributed-directory locality study. */
struct HomeLocalityPoint
{
    unsigned nCpus = 0;
    /** Fraction of home-node transactions that are local under
     *  interleaved (block mod n) home assignment. */
    double moduloLocalFrac = 0.0;
    /** Same under first-touch (NUMA-style) home assignment. */
    double firstTouchLocalFrac = 0.0;
    /** Remote transactions per reference under each policy. */
    double moduloRemotePerRef = 0.0;
    double firstTouchRemotePerRef = 0.0;
};

/**
 * Distributed-directory locality study (Sections 2 and 7: "memory is
 * distributed together with individual processors ... the bandwidth
 * to both the memory and the directory [scales] with the number of
 * processors").  Measures what fraction of home-node traffic a
 * distributed directory keeps local under interleaved versus
 * first-touch block placement.
 */
std::vector<HomeLocalityPoint>
homeLocalityStudy(const std::vector<unsigned> &cpuCounts,
                  std::uint64_t refsPerCpu = 120'000);
stats::TextTable
renderHomeLocality(const std::vector<HomeLocalityPoint> &points);

/** Message statistics of one directory organisation. */
struct DirectoryMessageStats
{
    std::string organization;
    double directedPerInvalEvent = 0.0;
    double broadcastFrac = 0.0; //!< Fraction of events broadcast.
    double overshootPerEvent = 0.0; //!< Messages to non-holders.
};

/**
 * Shadow each directory organisation through the standard workloads
 * and report what it would have sent (Section 6's limited-broadcast
 * discussion made quantitative).
 */
std::vector<DirectoryMessageStats>
directoryMessageStudy(bool fullSize = false);
stats::TextTable
renderDirectoryMessages(const std::vector<DirectoryMessageStats> &rows);

} // namespace dirsim::analysis

#endif // DIRSIM_ANALYSIS_EXTENSIONS_HH
