#include "analysis/evaluation.hh"

#include "coherence/berkeley_engine.hh"
#include "coherence/dragon_engine.hh"
#include "coherence/inval_engine.hh"
#include "coherence/limited_engine.hh"
#include "gen/workload.hh"
#include "trace/filter.hh"

namespace dirsim::analysis
{

namespace
{

unsigned
unitsFor(const gen::WorkloadConfig &cfg, const EvalOptions &opts)
{
    if (opts.nUnits != 0)
        return opts.nUnits;
    return opts.sim.domain == sim::SharingDomain::Process
               ? cfg.space.nProcesses
               : cfg.space.nCpus;
}

/**
 * Run @p build-provided engines over one workload, optionally with the
 * lock-test filter, and return the simulator for result harvesting.
 */
void
runWorkload(const gen::WorkloadConfig &cfg, const EvalOptions &opts,
            sim::Simulator &simulator)
{
    gen::WorkloadSource source(cfg);
    if (opts.dropLockTests) {
        trace::FilteredSource filtered = trace::dropLockTests(source);
        simulator.run(filtered);
    } else {
        simulator.run(source);
    }
}

} // namespace

Evaluation
evaluateWorkloads(const std::vector<gen::WorkloadConfig> &cfgs,
                  const EvalOptions &opts)
{
    Evaluation eval;
    eval.average.trace = "average";
    for (const gen::WorkloadConfig &cfg : cfgs) {
        const unsigned units = unitsFor(cfg, opts);

        sim::Simulator simulator(opts.sim);
        coherence::InvalEngineConfig inval_cfg;
        inval_cfg.nUnits = units;
        auto &inval = simulator.addEngine(
            std::make_unique<coherence::InvalEngine>(inval_cfg));
        auto &dir1nb = simulator.addEngine(
            std::make_unique<coherence::LimitedEngine>(units, 1));
        auto &dragon = simulator.addEngine(
            std::make_unique<coherence::DragonEngine>(units));

        runWorkload(cfg, opts, simulator);

        TraceEvaluation te;
        te.trace = cfg.name;
        te.inval = inval.results();
        te.dir1nb = dir1nb.results();
        te.dragon = dragon.results();

        eval.average.inval.merge(te.inval);
        eval.average.dir1nb.merge(te.dir1nb);
        eval.average.dragon.merge(te.dragon);
        eval.traces.push_back(std::move(te));
    }
    return eval;
}

Evaluation
evaluateStandard(bool fullSize)
{
    return evaluateWorkloads(gen::standardWorkloads(fullSize));
}

std::vector<trace::TraceCharacteristics>
characterizeWorkloads(const std::vector<gen::WorkloadConfig> &cfgs)
{
    std::vector<trace::TraceCharacteristics> out;
    for (const gen::WorkloadConfig &cfg : cfgs) {
        gen::WorkloadSource source(cfg);
        out.push_back(trace::characterize(source, cfg.name,
                                          cfg.space.blockBytes));
    }
    return out;
}

std::vector<coherence::EngineResults>
limitedSweep(const std::vector<gen::WorkloadConfig> &cfgs,
             const std::vector<unsigned> &pointerCounts,
             const EvalOptions &opts)
{
    std::vector<coherence::EngineResults> merged(pointerCounts.size());
    for (const gen::WorkloadConfig &cfg : cfgs) {
        const unsigned units = unitsFor(cfg, opts);
        sim::Simulator simulator(opts.sim);
        std::vector<coherence::CoherenceEngine *> engines;
        for (unsigned i : pointerCounts) {
            engines.push_back(&simulator.addEngine(
                std::make_unique<coherence::LimitedEngine>(units, i)));
        }
        runWorkload(cfg, opts, simulator);
        for (std::size_t e = 0; e < engines.size(); ++e) {
            merged[e].name = engines[e]->results().name;
            merged[e].merge(engines[e]->results());
        }
    }
    return merged;
}

coherence::EngineResults
invalWithDirectory(const std::vector<gen::WorkloadConfig> &cfgs,
                   const directory::DirEntryFactory &factory,
                   const EvalOptions &opts)
{
    coherence::EngineResults merged;
    for (const gen::WorkloadConfig &cfg : cfgs) {
        sim::Simulator simulator(opts.sim);
        coherence::InvalEngineConfig inval_cfg;
        inval_cfg.nUnits = unitsFor(cfg, opts);
        inval_cfg.dirFactory = &factory;
        auto &engine = simulator.addEngine(
            std::make_unique<coherence::InvalEngine>(inval_cfg));
        runWorkload(cfg, opts, simulator);
        merged.name = engine.results().name;
        merged.merge(engine.results());
    }
    return merged;
}

coherence::EngineResults
berkeleyResults(const std::vector<gen::WorkloadConfig> &cfgs,
                const EvalOptions &opts)
{
    coherence::EngineResults merged;
    for (const gen::WorkloadConfig &cfg : cfgs) {
        sim::Simulator simulator(opts.sim);
        auto &engine = simulator.addEngine(
            std::make_unique<coherence::BerkeleyEngine>(
                unitsFor(cfg, opts)));
        runWorkload(cfg, opts, simulator);
        merged.name = engine.results().name;
        merged.merge(engine.results());
    }
    return merged;
}

coherence::EngineResults
invalWithFiniteCaches(const std::vector<gen::WorkloadConfig> &cfgs,
                      const mem::CacheGeometry &geometry,
                      const EvalOptions &opts)
{
    coherence::EngineResults merged;
    for (const gen::WorkloadConfig &cfg : cfgs) {
        sim::Simulator simulator(opts.sim);
        coherence::InvalEngineConfig inval_cfg;
        inval_cfg.nUnits = unitsFor(cfg, opts);
        inval_cfg.cacheFactory = [&geometry]() {
            return std::make_unique<mem::SetAssocTagStore>(geometry);
        };
        auto &engine = simulator.addEngine(
            std::make_unique<coherence::InvalEngine>(inval_cfg));
        runWorkload(cfg, opts, simulator);
        merged.name = engine.results().name;
        merged.merge(engine.results());
    }
    return merged;
}

} // namespace dirsim::analysis
