#include "analysis/evaluation.hh"

#include "coherence/berkeley_engine.hh"
#include "coherence/dragon_engine.hh"
#include "coherence/inval_engine.hh"
#include "coherence/limited_engine.hh"
#include "coherence/multi_limited_engine.hh"
#include "gen/workload.hh"
#include "sim/sweep.hh"
#include "sim/thread_pool.hh"
#include "sim/trace_repo.hh"
#include "trace/filter.hh"
#include "trace/prepared.hh"
#include "trace/trace.hh"

#include <algorithm>
#include <exception>
#include <mutex>

namespace dirsim::analysis
{

namespace
{

unsigned defaultJobs = 1;
bool defaultStream = false;
bool defaultFused = true;
bool defaultMulti = true;

} // namespace

void
setDefaultEvalJobs(unsigned jobs)
{
    defaultJobs = jobs;
}

unsigned
defaultEvalJobs()
{
    return defaultJobs;
}

void
setDefaultStreamReplay(bool stream)
{
    defaultStream = stream;
}

bool
defaultStreamReplay()
{
    return defaultStream;
}

void
setDefaultFusedReplay(bool fused)
{
    defaultFused = fused;
}

bool
defaultFusedReplay()
{
    return defaultFused;
}

void
setDefaultMultiConfig(bool multi)
{
    defaultMulti = multi;
}

bool
defaultMultiConfig()
{
    return defaultMulti;
}

namespace
{

unsigned
unitsFor(const gen::WorkloadConfig &cfg, const EvalOptions &opts)
{
    if (opts.nUnits != 0)
        return opts.nUnits;
    return opts.sim.domain == sim::SharingDomain::Process
               ? cfg.space.nProcesses
               : cfg.space.nCpus;
}

/** Per-workload SimConfig: the caller's options plus the workload's
 *  expected-unique-blocks reserve hint (unless explicitly set). */
sim::SimConfig
simConfigFor(const gen::WorkloadConfig &cfg, const EvalOptions &opts)
{
    sim::SimConfig sc = opts.sim;
    if (sc.expectedBlocks == 0)
        sc.expectedBlocks = gen::expectedUniqueBlocks(cfg.space);
    // The A/B hatch: sequential whole-stream passes per engine.
    if (!opts.fusedReplay)
        sc.replayStripRefs = 0;
    return sc;
}

/**
 * Run @p build-provided engines over one workload, optionally with the
 * lock-test filter, and return the simulator for result harvesting.
 */
void
runWorkload(const gen::WorkloadConfig &cfg, const EvalOptions &opts,
            sim::Simulator &simulator)
{
    gen::WorkloadSource source(cfg);
    if (opts.dropLockTests) {
        trace::FilteredSource filtered = trace::dropLockTests(source);
        simulator.run(filtered);
    } else {
        simulator.run(source);
    }
}

/** Builds one engine for a given unit count. */
using EngineFactory =
    std::function<std::unique_ptr<coherence::CoherenceEngine>(unsigned)>;

/**
 * One cell of the workload×engine matrix: the factory that builds
 * its engine, plus the multi-configuration collapse hint.  A nonzero
 * limitedPointers marks the cell as a plain DiriNB run (no directory
 * cache) with that pointer count — runMatrix may then run it as one
 * lane of a shared coherence::MultiLimitedEngine instead of invoking
 * the factory, one probe per reference for the whole pointer-count
 * row.  The factory stays the fallback (and the only path when
 * opts.multiConfig is off or the run has fewer than two such cells).
 */
struct EngineSpec
{
    EngineFactory make;
    unsigned limitedPointers = 0;
};

/** Replays a shared trace, re-applying the lock-test filter. */
class ReplaySource : public trace::RefSource
{
  public:
    explicit ReplaySource(const trace::MemoryTrace &trace)
        : _base(trace), _filtered(trace::dropLockTests(_base))
    {
    }

    bool next(trace::TraceRecord &rec) override
    {
        return _filtered.next(rec);
    }
    void rewind() override { _filtered.rewind(); }

  private:
    trace::MemoryTraceSource _base;
    trace::FilteredSource _filtered;
};

std::unique_ptr<trace::RefSource>
replaySource(const trace::MemoryTrace &trace, bool dropLockTests)
{
    if (!dropLockTests)
        return std::make_unique<trace::MemoryTraceSource>(trace);
    return std::make_unique<ReplaySource>(trace);
}

/** Decode parameters matching this run's options: the lock-test
 *  filter folds into the decode, so the prepared stream replays with
 *  no per-record filtering at all. */
trace::PrepareOptions
prepareOptionsFor(const EvalOptions &opts)
{
    trace::PrepareOptions prep;
    prep.blockBytes = opts.sim.blockBytes;
    prep.domain = opts.sim.domain;
    prep.dropLockTests = opts.dropLockTests;
    return prep;
}

/**
 * Run a workload×engine matrix and harvest every engine's results.
 *
 * This is the one place serial and parallel evaluation meet.  With
 * opts.jobs == 1 each workload streams once through a Simulator
 * carrying all the engines (the paper's one-pass-per-trace shape).
 * With more jobs the matrix fans out over a SweepRunner: phase one
 * materialises each workload into an immutable MemoryTrace (in
 * parallel, one job per workload), phase two runs one job per
 * (workload, engine) cell, each replaying the shared trace zero-copy.
 * Both paths visit identical reference streams in identical order per
 * engine, so their results are bit-identical.
 *
 * With opts.multiConfig (the default), the DiriNB cells of a run
 * (EngineSpec::limitedPointers) collapse into one shared
 * coherence::MultiLimitedEngine — serially within each workload's
 * Simulator, in parallel within each workload's fused sweep group —
 * and each cell harvests its own lane.  Bit-identical either way.
 *
 * @return results[workload][spec].
 */
std::vector<std::vector<coherence::EngineResults>>
runMatrix(const std::vector<gen::WorkloadConfig> &cfgs,
          const EvalOptions &opts,
          const std::vector<EngineSpec> &specs)
{
    constexpr std::size_t kNone = static_cast<std::size_t>(-1);
    // The pointer counts that collapse into shared lanes (needs at
    // least two to be worth one extra engine); identical for every
    // workload, so planned once.
    std::vector<unsigned> lanePointers;
    if (opts.multiConfig) {
        for (const EngineSpec &spec : specs)
            if (spec.limitedPointers != 0)
                lanePointers.push_back(spec.limitedPointers);
    }
    const bool collapse = lanePointers.size() >= 2;

    std::vector<std::vector<coherence::EngineResults>> results(
        cfgs.size());
    const unsigned jobs = sim::ThreadPool::resolveThreads(opts.jobs);
    if (jobs <= 1 || cfgs.empty() || specs.empty()) {
        for (std::size_t c = 0; c < cfgs.size(); ++c) {
            const unsigned units = unitsFor(cfgs[c], opts);
            sim::Simulator simulator(simConfigFor(cfgs[c], opts));
            coherence::MultiLimitedEngine *multi = nullptr;
            std::vector<std::size_t> lane(specs.size(), kNone);
            std::vector<std::size_t> slot(specs.size(), kNone);
            std::size_t nextSlot = 0;
            std::size_t nextLane = 0;
            for (std::size_t f = 0; f < specs.size(); ++f) {
                if (collapse && specs[f].limitedPointers != 0) {
                    if (!multi) {
                        auto engine = std::make_unique<
                            coherence::MultiLimitedEngine>(
                            units, lanePointers);
                        multi = engine.get();
                        simulator.addEngine(std::move(engine));
                        ++nextSlot;
                    }
                    lane[f] = nextLane++;
                    continue;
                }
                simulator.addEngine(specs[f].make(units));
                slot[f] = nextSlot++;
            }
            if (opts.usePreparedTraces && opts.streamReplay) {
                // Out-of-core: one chunk window resident per replay.
                const auto stored =
                    sim::TraceRepository::global().getStored(
                        cfgs[c], prepareOptionsFor(opts));
                const auto spans = stored->spanCursor();
                simulator.run(*spans);
            } else if (opts.usePreparedTraces) {
                simulator.run(*sim::TraceRepository::global().get(
                    cfgs[c], prepareOptionsFor(opts)));
            } else {
                runWorkload(cfgs[c], opts, simulator);
            }
            for (std::size_t f = 0; f < specs.size(); ++f)
                results[c].push_back(
                    lane[f] != kNone
                        ? multi->laneResults(lane[f])
                        : simulator.engine(slot[f]).results());
        }
        return results;
    }

    // Phase 1: materialise each workload once.  The traces are
    // immutable from here on and shared read-only by every engine
    // job.  On the prepared path the repository supplies decode-once
    // SoA traces (already cached across runs); the raw path
    // materialises throwaway MemoryTraces as before.
    const bool stream = opts.usePreparedTraces && opts.streamReplay;
    std::vector<std::shared_ptr<const trace::PreparedTrace>> prepared(
        cfgs.size());
    std::vector<std::shared_ptr<const trace::StoredTrace>> stored(
        cfgs.size());
    std::vector<trace::MemoryTrace> traces(
        opts.usePreparedTraces ? 0 : cfgs.size());
    {
        std::mutex collect;
        std::exception_ptr firstError;
        sim::ThreadPool pool(static_cast<unsigned>(
            std::min<std::size_t>(jobs, cfgs.size())));
        for (std::size_t c = 0; c < cfgs.size(); ++c) {
            pool.submit([&, c] {
                try {
                    if (stream) {
                        auto ptr =
                            sim::TraceRepository::global().getStored(
                                cfgs[c], prepareOptionsFor(opts));
                        std::lock_guard<std::mutex> lock(collect);
                        stored[c] = std::move(ptr);
                    } else if (opts.usePreparedTraces) {
                        auto ptr = sim::TraceRepository::global().get(
                            cfgs[c], prepareOptionsFor(opts));
                        std::lock_guard<std::mutex> lock(collect);
                        prepared[c] = std::move(ptr);
                    } else {
                        trace::MemoryTrace trace =
                            gen::generateTrace(cfgs[c]);
                        std::lock_guard<std::mutex> lock(collect);
                        traces[c] = std::move(trace);
                    }
                } catch (...) {
                    std::lock_guard<std::mutex> lock(collect);
                    if (!firstError)
                        firstError = std::current_exception();
                }
            });
        }
        pool.wait();
        if (firstError)
            std::rethrow_exception(firstError);
    }

    // Phase 2: one sweep point per (workload, engine) cell.
    sim::SweepRunner runner(jobs);
    for (std::size_t c = 0; c < cfgs.size(); ++c) {
        const unsigned units = unitsFor(cfgs[c], opts);
        for (const EngineSpec &spec : specs) {
            sim::SweepPoint point;
            point.name = cfgs[c].name;
            point.sim = simConfigFor(cfgs[c], opts);
            // Fuse the scheme axis: all of a workload's cells carry
            // one key (unique per index — names can repeat), so the
            // runner collapses them into a single fused column pass.
            if (opts.fusedReplay)
                point.fuseKey = "workload#" + std::to_string(c);
            // Multi-configuration hint: the runner collapses the
            // fused group's DiriNB cells into one shared-table
            // engine (sim/sweep.hh).  Without fusion the cells stay
            // standalone jobs, where the hint has nothing to pair
            // with — the factory below is always the fallback.
            if (opts.multiConfig) {
                point.multiPointers = spec.limitedPointers;
                point.multiUnits = units;
            }
            point.engines = [&factory = spec.make, units] {
                std::vector<
                    std::unique_ptr<coherence::CoherenceEngine>>
                    engines;
                engines.push_back(factory(units));
                return engines;
            };
            if (stream) {
                // Each job builds its own windowed cursor over the
                // shared store; concurrent cells replay the same file
                // with one chunk resident per job.
                point.spans = [st = stored[c]] {
                    return st->spanCursor();
                };
            } else if (opts.usePreparedTraces) {
                point.prepared = prepared[c];
            } else {
                point.source = [trace = &traces[c],
                                drop = opts.dropLockTests] {
                    return replaySource(*trace, drop);
                };
            }
            runner.add(std::move(point));
        }
    }
    std::vector<sim::SweepPointResult> points = runner.run();
    for (std::size_t c = 0; c < cfgs.size(); ++c) {
        for (std::size_t f = 0; f < specs.size(); ++f) {
            results[c].push_back(std::move(
                points[c * specs.size() + f].engines.front()));
        }
    }
    return results;
}

EngineFactory
invalFactory(const directory::DirEntryFactory *dirFactory = nullptr,
             const directory::DirCacheConfig &dirCache = {})
{
    return [dirFactory, dirCache](unsigned units) {
        coherence::InvalEngineConfig cfg;
        cfg.nUnits = units;
        cfg.dirFactory = dirFactory;
        cfg.dirCache = dirCache;
        return std::make_unique<coherence::InvalEngine>(cfg);
    };
}

EngineFactory
limitedFactory(unsigned nPointers,
               const directory::DirCacheConfig &dirCache = {})
{
    return [nPointers, dirCache](unsigned units) {
        return std::make_unique<coherence::LimitedEngine>(
            units, nPointers, dirCache);
    };
}

/**
 * A DiriNB cell.  Collapsible into a multi-config lane only without
 * a directory cache: eviction state is per-configuration, so finite-
 * cache runs always use the independent engine.
 */
EngineSpec
limitedSpec(unsigned nPointers,
            const directory::DirCacheConfig &dirCache = {})
{
    return {limitedFactory(nPointers, dirCache),
            dirCache.enabled ? 0u : nPointers};
}

} // namespace

Evaluation
evaluateWorkloads(const std::vector<gen::WorkloadConfig> &cfgs,
                  const EvalOptions &opts)
{
    const std::vector<EngineSpec> specs = {
        {invalFactory(nullptr, opts.dirCache)},
        limitedSpec(1, opts.dirCache),
        {[](unsigned units) {
            return std::make_unique<coherence::DragonEngine>(units);
        }},
    };
    const auto matrix = runMatrix(cfgs, opts, specs);

    Evaluation eval;
    eval.average.trace = "average";
    for (std::size_t c = 0; c < cfgs.size(); ++c) {
        TraceEvaluation te;
        te.trace = cfgs[c].name;
        te.inval = matrix[c][0];
        te.dir1nb = matrix[c][1];
        te.dragon = matrix[c][2];

        eval.average.inval.merge(te.inval);
        eval.average.dir1nb.merge(te.dir1nb);
        eval.average.dragon.merge(te.dragon);
        eval.traces.push_back(std::move(te));
    }
    return eval;
}

Evaluation
evaluateStandard(bool fullSize)
{
    return evaluateWorkloads(gen::standardWorkloads(fullSize));
}

std::vector<trace::TraceCharacteristics>
characterizeWorkloads(const std::vector<gen::WorkloadConfig> &cfgs)
{
    std::vector<trace::TraceCharacteristics> out;
    for (const gen::WorkloadConfig &cfg : cfgs) {
        gen::WorkloadSource source(cfg);
        out.push_back(trace::characterize(source, cfg.name,
                                          cfg.space.blockBytes));
    }
    return out;
}

std::vector<coherence::EngineResults>
limitedSweep(const std::vector<gen::WorkloadConfig> &cfgs,
             const std::vector<unsigned> &pointerCounts,
             const EvalOptions &opts)
{
    std::vector<EngineSpec> specs;
    for (unsigned i : pointerCounts)
        specs.push_back(limitedSpec(i, opts.dirCache));
    const auto matrix = runMatrix(cfgs, opts, specs);

    std::vector<coherence::EngineResults> merged(pointerCounts.size());
    for (std::size_t c = 0; c < cfgs.size(); ++c) {
        for (std::size_t e = 0; e < pointerCounts.size(); ++e) {
            merged[e].name = matrix[c][e].name;
            merged[e].merge(matrix[c][e]);
        }
    }
    return merged;
}

coherence::EngineResults
invalWithDirectory(const std::vector<gen::WorkloadConfig> &cfgs,
                   const directory::DirEntryFactory &factory,
                   const EvalOptions &opts)
{
    const auto matrix = runMatrix(
        cfgs, opts, {{invalFactory(&factory, opts.dirCache)}});

    coherence::EngineResults merged;
    for (std::size_t c = 0; c < cfgs.size(); ++c) {
        merged.name = matrix[c][0].name;
        merged.merge(matrix[c][0]);
    }
    return merged;
}

coherence::EngineResults
berkeleyResults(const std::vector<gen::WorkloadConfig> &cfgs,
                const EvalOptions &opts)
{
    const auto matrix = runMatrix(
        cfgs, opts, {{[](unsigned units) {
            return std::make_unique<coherence::BerkeleyEngine>(units);
        }}});

    coherence::EngineResults merged;
    for (std::size_t c = 0; c < cfgs.size(); ++c) {
        merged.name = matrix[c][0].name;
        merged.merge(matrix[c][0]);
    }
    return merged;
}

coherence::EngineResults
invalWithFiniteCaches(const std::vector<gen::WorkloadConfig> &cfgs,
                      const mem::CacheGeometry &geometry,
                      const EvalOptions &opts)
{
    const auto matrix = runMatrix(
        cfgs, opts, {{[&geometry](unsigned units) {
            coherence::InvalEngineConfig cfg;
            cfg.nUnits = units;
            cfg.cacheFactory = [&geometry]() {
                return std::make_unique<mem::SetAssocTagStore>(
                    geometry);
            };
            return std::make_unique<coherence::InvalEngine>(cfg);
        }}});

    coherence::EngineResults merged;
    for (std::size_t c = 0; c < cfgs.size(); ++c) {
        merged.name = matrix[c][0].name;
        merged.merge(matrix[c][0]);
    }
    return merged;
}

coherence::EngineResults
invalWithDirCache(const std::vector<gen::WorkloadConfig> &cfgs,
                  const directory::DirCacheConfig &dirCache,
                  const EvalOptions &opts)
{
    const auto matrix =
        runMatrix(cfgs, opts, {{invalFactory(nullptr, dirCache)}});

    coherence::EngineResults merged;
    for (std::size_t c = 0; c < cfgs.size(); ++c) {
        merged.name = matrix[c][0].name;
        merged.merge(matrix[c][0]);
    }
    return merged;
}

coherence::EngineResults
limitedWithDirCache(const std::vector<gen::WorkloadConfig> &cfgs,
                    unsigned nPointers,
                    const directory::DirCacheConfig &dirCache,
                    const EvalOptions &opts)
{
    const auto matrix =
        runMatrix(cfgs, opts, {limitedSpec(nPointers, dirCache)});

    coherence::EngineResults merged;
    for (std::size_t c = 0; c < cfgs.size(); ++c) {
        merged.name = matrix[c][0].name;
        merged.merge(matrix[c][0]);
    }
    return merged;
}

} // namespace dirsim::analysis
