/**
 * @file
 * Uniform-sharing analytical model of coherence traffic.
 *
 * Section 4 of the paper motivates trace-driven simulation by noting
 * that earlier directory evaluations used analytical models (Dubois
 * and Briggs [14]; Censier and Feautrier [9]) whose "results are
 * highly dependent on the assumptions made".  This module implements
 * the canonical assumption set of those models — shared references
 * are spread uniformly over the shared blocks and issued by uniformly
 * random processors — and predicts the invalidation-protocol event
 * rates from three measurable workload parameters: the fraction of
 * references to shared blocks, the write fraction, and the processor
 * count.
 *
 * The companion study (analyticalStudy) fits those parameters from
 * the actual traces and compares prediction against simulation.  The
 * result demonstrates the paper's methodological point quantitatively:
 * the model tracks a workload whose sharing really is unstructured
 * (pero) far better than lock-structured workloads (pops/thor), where
 * spins and migratory data violate uniformity.
 */

#ifndef DIRSIM_ANALYSIS_ANALYTICAL_HH
#define DIRSIM_ANALYSIS_ANALYTICAL_HH

#include <string>
#include <vector>

#include "analysis/evaluation.hh"
#include "stats/table.hh"

namespace dirsim::analysis
{

/** Inputs to the uniform-sharing model. */
struct AnalyticalParams
{
    double sharedRefFrac = 0.0; //!< Data refs touching shared blocks.
    double writeFrac = 0.0;     //!< Writes among shared references.
    unsigned nProcessors = 4;
};

/** Model outputs, in events per (all-type) reference. */
struct AnalyticalPrediction
{
    /** Expected distinct remote readers of a shared block between
     *  consecutive writes to it (the predicted mean fanout). */
    double meanFanout = 0.0;
    /** Writes to shared blocks that must invalidate (wh/wm-cln). */
    double invalEventsPerRef = 0.0;
    /** Coherence-induced misses (re-fetches of invalidated copies). */
    double coherenceMissesPerRef = 0.0;
    /** Probability an invalidating write touches <= 1 remote copy. */
    double fracAtMostOne = 0.0;
};

/** Evaluate the closed-form model. */
AnalyticalPrediction analyticalPredict(const AnalyticalParams &params);

/** Prediction-vs-simulation comparison for one workload. */
struct AnalyticalComparison
{
    std::string trace;
    AnalyticalParams fitted;
    AnalyticalPrediction predicted;
    /** Simulated counterparts (invalidation state model). */
    double simInvalEventsPerRef = 0.0;
    double simCoherenceMissesPerRef = 0.0;
    double simMeanFanout = 0.0;
    double simFracAtMostOne = 0.0;
};

/**
 * Fit the model per workload and compare against simulation.  Shared
 * references and the shared-write fraction are measured with the
 * trace characteriser; coherence misses are simulated events minus
 * the Dragon (native) miss baseline, as in Section 5 of the paper.
 */
std::vector<AnalyticalComparison>
analyticalStudy(const std::vector<gen::WorkloadConfig> &cfgs);

stats::TextTable
renderAnalytical(const std::vector<AnalyticalComparison> &rows);

} // namespace dirsim::analysis

#endif // DIRSIM_ANALYSIS_ANALYTICAL_HH
