/**
 * @file
 * Finite set-associative tag store with LRU replacement.
 */

#ifndef DIRSIM_MEM_SET_ASSOC_HH
#define DIRSIM_MEM_SET_ASSOC_HH

#include <cstdint>
#include <vector>

#include "mem/tag_store.hh"

namespace dirsim::mem
{

/** Geometry of a finite cache. */
struct CacheGeometry
{
    std::uint64_t capacityBytes = 64 * 1024;
    unsigned blockBytes = 16;
    unsigned ways = 4;
    /**
     * Spread block ids across sets with util::mix64 before masking.
     * BlockMapper hands engines dense sequential ids, so the default
     * low-bits index aliases strided footprints (every numSets-th
     * block lands in one set); mixing breaks that up.  Off by default:
     * the original fixed mapping is what hardware indexed by address
     * bits does, and the finite-cache golden digests pin it.
     */
    bool mixSetIndex = false;

    std::uint64_t
    numSets() const
    {
        const std::uint64_t way_bytes =
            static_cast<std::uint64_t>(blockBytes) * ways;
        return way_bytes == 0 ? 0 : capacityBytes / way_bytes;
    }
};

/**
 * A set-associative cache directory with true-LRU replacement.
 *
 * Each set keeps its ways ordered most- to least-recently used; a
 * touch moves the block to the front, a fill evicts the back.
 */
class SetAssocTagStore : public TagStore
{
  public:
    /**
     * @param geometry Cache shape; capacity, block size and ways must
     *                 yield a power-of-two, nonzero set count.
     */
    explicit SetAssocTagStore(const CacheGeometry &geometry);

    TouchResult touch(BlockId block) override;
    void invalidate(BlockId block) override;
    bool contains(BlockId block) const override;
    std::uint64_t size() const override;
    void clear() override;

    const CacheGeometry &geometry() const { return _geometry; }

  private:
    struct Way
    {
        BlockId block = 0;
        bool valid = false;
    };

    std::uint64_t setIndex(BlockId block) const;
    /** Ways of one set, MRU first. */
    Way *setBase(std::uint64_t set);
    const Way *setBase(std::uint64_t set) const;

    CacheGeometry _geometry;
    std::uint64_t _numSets;
    std::uint64_t _setMask;
    std::vector<Way> _ways;
    std::uint64_t _resident = 0;
};

} // namespace dirsim::mem

#endif // DIRSIM_MEM_SET_ASSOC_HH
