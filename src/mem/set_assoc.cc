#include "mem/set_assoc.hh"

#include <cassert>
#include <stdexcept>

#include "util/flat_map.hh"

namespace dirsim::mem
{

SetAssocTagStore::SetAssocTagStore(const CacheGeometry &geometry)
    : _geometry(geometry), _numSets(geometry.numSets())
{
    if (_numSets == 0 || !isPow2(_numSets))
        throw std::invalid_argument(
            "SetAssocTagStore: set count must be a nonzero power of 2");
    if (_geometry.ways == 0)
        throw std::invalid_argument(
            "SetAssocTagStore: at least one way required");
    _setMask = _numSets - 1;
    _ways.assign(_numSets * _geometry.ways, Way{});
}

std::uint64_t
SetAssocTagStore::setIndex(BlockId block) const
{
    const std::uint64_t key =
        _geometry.mixSetIndex ? util::mix64(block) : block;
    return key & _setMask;
}

SetAssocTagStore::Way *
SetAssocTagStore::setBase(std::uint64_t set)
{
    return &_ways[set * _geometry.ways];
}

const SetAssocTagStore::Way *
SetAssocTagStore::setBase(std::uint64_t set) const
{
    return &_ways[set * _geometry.ways];
}

TouchResult
SetAssocTagStore::touch(BlockId block)
{
    TouchResult result;
    Way *ways = setBase(setIndex(block));
    const unsigned n = _geometry.ways;

    // Search; on hit rotate the block to the MRU (front) position.
    for (unsigned w = 0; w < n; ++w) {
        if (ways[w].valid && ways[w].block == block) {
            const Way hit_way = ways[w];
            for (unsigned v = w; v > 0; --v)
                ways[v] = ways[v - 1];
            ways[0] = hit_way;
            result.hit = true;
            return result;
        }
    }

    // Miss: evict the LRU (back) way if every way is valid.
    if (ways[n - 1].valid) {
        result.evicted = true;
        result.evictedBlock = ways[n - 1].block;
    } else {
        ++_resident;
    }
    for (unsigned v = n - 1; v > 0; --v)
        ways[v] = ways[v - 1];
    ways[0] = Way{block, true};
    return result;
}

void
SetAssocTagStore::invalidate(BlockId block)
{
    Way *ways = setBase(setIndex(block));
    const unsigned n = _geometry.ways;
    for (unsigned w = 0; w < n; ++w) {
        if (ways[w].valid && ways[w].block == block) {
            // Compact the remaining ways towards the front; the freed
            // way becomes the LRU slot.
            for (unsigned v = w; v + 1 < n; ++v)
                ways[v] = ways[v + 1];
            ways[n - 1] = Way{};
            --_resident;
            return;
        }
    }
}

bool
SetAssocTagStore::contains(BlockId block) const
{
    const Way *ways = setBase(setIndex(block));
    for (unsigned w = 0; w < _geometry.ways; ++w) {
        if (ways[w].valid && ways[w].block == block)
            return true;
    }
    return false;
}

std::uint64_t
SetAssocTagStore::size() const
{
    return _resident;
}

void
SetAssocTagStore::clear()
{
    _ways.assign(_ways.size(), Way{});
    _resident = 0;
}

} // namespace dirsim::mem
