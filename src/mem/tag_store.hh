/**
 * @file
 * Cache tag-store interface.
 *
 * Coherence engines track global block state themselves; a TagStore
 * models one cache's *capacity*: which blocks fit.  The paper's
 * evaluation uses infinite caches ("to isolate the traffic incurred in
 * maintaining coherence"); the finite set-associative store powers the
 * finite-cache extension study.
 */

#ifndef DIRSIM_MEM_TAG_STORE_HH
#define DIRSIM_MEM_TAG_STORE_HH

#include <cstdint>

#include "mem/block.hh"

namespace dirsim::mem
{

/** Result of touching a tag store with a reference. */
struct TouchResult
{
    bool hit = false;          //!< Block was already resident.
    bool evicted = false;      //!< A block was displaced to make room.
    BlockId evictedBlock = 0;  //!< Valid when evicted is true.
};

/** Abstract per-cache tag store. */
class TagStore
{
  public:
    virtual ~TagStore() = default;

    /**
     * Reference @p block, allocating it if absent.
     * @return Hit/eviction outcome.
     */
    virtual TouchResult touch(BlockId block) = 0;
    /** Remove @p block if present (coherence invalidation). */
    virtual void invalidate(BlockId block) = 0;
    /** True when @p block is resident. */
    virtual bool contains(BlockId block) const = 0;
    /** Number of resident blocks. */
    virtual std::uint64_t size() const = 0;
    /** Drop all contents. */
    virtual void clear() = 0;
};

} // namespace dirsim::mem

#endif // DIRSIM_MEM_TAG_STORE_HH
