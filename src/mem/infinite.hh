/**
 * @file
 * Infinite-capacity tag store (the paper's cache model).
 */

#ifndef DIRSIM_MEM_INFINITE_HH
#define DIRSIM_MEM_INFINITE_HH

#include "mem/tag_store.hh"
#include "util/flat_set.hh"

namespace dirsim::mem
{

/** A cache that never evicts: misses are exactly first touches. */
class InfiniteTagStore : public TagStore
{
  public:
    TouchResult
    touch(BlockId block) override
    {
        TouchResult result;
        result.hit = !_resident.insert(block);
        return result;
    }

    void invalidate(BlockId block) override { _resident.erase(block); }

    bool
    contains(BlockId block) const override
    {
        return _resident.contains(block);
    }

    std::uint64_t size() const override { return _resident.size(); }

    void clear() override { _resident.clear(); }

  private:
    util::FlatSet<BlockId> _resident;
};

} // namespace dirsim::mem

#endif // DIRSIM_MEM_INFINITE_HH
