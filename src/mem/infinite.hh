/**
 * @file
 * Infinite-capacity tag store (the paper's cache model).
 */

#ifndef DIRSIM_MEM_INFINITE_HH
#define DIRSIM_MEM_INFINITE_HH

#include <unordered_set>

#include "mem/tag_store.hh"

namespace dirsim::mem
{

/** A cache that never evicts: misses are exactly first touches. */
class InfiniteTagStore : public TagStore
{
  public:
    TouchResult
    touch(BlockId block) override
    {
        TouchResult result;
        result.hit = !_resident.insert(block).second;
        return result;
    }

    void invalidate(BlockId block) override { _resident.erase(block); }

    bool
    contains(BlockId block) const override
    {
        return _resident.count(block) != 0;
    }

    std::uint64_t size() const override { return _resident.size(); }

    void clear() override { _resident.clear(); }

  private:
    std::unordered_set<BlockId> _resident;
};

} // namespace dirsim::mem

#endif // DIRSIM_MEM_INFINITE_HH
