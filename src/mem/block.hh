/**
 * @file
 * Block-address arithmetic helpers.
 *
 * The paper fixes the coherence unit at 4 words (16 bytes); the
 * simulator keeps the block size configurable but power-of-two.
 */

#ifndef DIRSIM_MEM_BLOCK_HH
#define DIRSIM_MEM_BLOCK_HH

#include <cassert>
#include <cstdint>

namespace dirsim::mem
{

/** A block-aligned address identifier (byte address / block size). */
using BlockId = std::uint64_t;

/** True when @p v is a power of two (and nonzero). */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned
log2Exact(std::uint64_t v)
{
    unsigned bits = 0;
    while (v > 1) {
        v >>= 1;
        ++bits;
    }
    return bits;
}

/** Map a byte address to its block identifier. */
constexpr BlockId
blockId(std::uint64_t addr, unsigned blockBytes)
{
    return addr / blockBytes;
}

/** First byte address of a block. */
constexpr std::uint64_t
blockBase(BlockId block, unsigned blockBytes)
{
    return block * blockBytes;
}

} // namespace dirsim::mem

#endif // DIRSIM_MEM_BLOCK_HH
