/**
 * @file
 * Block-address arithmetic helpers.
 *
 * The paper fixes the coherence unit at 4 words (16 bytes); the
 * simulator keeps the block size configurable but power-of-two.
 */

#ifndef DIRSIM_MEM_BLOCK_HH
#define DIRSIM_MEM_BLOCK_HH

#include <bit>
#include <cassert>
#include <cstdint>

namespace dirsim::mem
{

/** A block-aligned address identifier (byte address / block size). */
using BlockId = std::uint64_t;

/** True when @p v is a power of two (and nonzero). */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned
log2Exact(std::uint64_t v)
{
    assert(isPow2(v));
    return static_cast<unsigned>(std::countr_zero(v));
}

static_assert(log2Exact(1) == 0);
static_assert(log2Exact(2) == 1);
static_assert(log2Exact(16) == 4);
static_assert(log2Exact(1ULL << 63) == 63);

/** Map a byte address to its block identifier. */
constexpr BlockId
blockId(std::uint64_t addr, unsigned blockBytes)
{
    return addr / blockBytes;
}

/**
 * Per-record address→block mapping with the divisor analysed once.
 *
 * blockId()'s 64-bit division by a runtime divisor costs tens of
 * cycles; every realistic block size is a power of two, for which a
 * shift suffices.  Construct once per stream, apply per record.
 */
class BlockMapper
{
  public:
    explicit constexpr BlockMapper(unsigned blockBytes)
        : _bytes(blockBytes),
          _shift(isPow2(blockBytes) ? log2Exact(blockBytes) : 0),
          _pow2(isPow2(blockBytes))
    {
    }

    constexpr BlockId
    operator()(std::uint64_t addr) const
    {
        return _pow2 ? addr >> _shift : addr / _bytes;
    }

  private:
    unsigned _bytes;
    unsigned _shift;
    bool _pow2;
};

/** First byte address of a block. */
constexpr std::uint64_t
blockBase(BlockId block, unsigned blockBytes)
{
    return block * blockBytes;
}

} // namespace dirsim::mem

#endif // DIRSIM_MEM_BLOCK_HH
