#include "stats/distribution.hh"

#include <cmath>

namespace dirsim::stats
{

void
Distribution::sample(double value)
{
    if (_count == 0) {
        _min = value;
        _max = value;
    } else {
        if (value < _min)
            _min = value;
        if (value > _max)
            _max = value;
    }
    ++_count;
    const double delta = value - _mean;
    _mean += delta / static_cast<double>(_count);
    _m2 += delta * (value - _mean);
}

void
Distribution::reset()
{
    _count = 0;
    _min = 0.0;
    _max = 0.0;
    _mean = 0.0;
    _m2 = 0.0;
}

double
Distribution::variance() const
{
    if (_count == 0)
        return 0.0;
    return _m2 / static_cast<double>(_count);
}

double
Distribution::stddev() const
{
    return std::sqrt(variance());
}

} // namespace dirsim::stats
