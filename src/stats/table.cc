#include "stats/table.hh"

#include "stats/csv.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <utility>

namespace dirsim::stats
{

TextTable::TextTable(std::string title, std::vector<std::string> headers)
    : _title(std::move(title)), _headers(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    cells.resize(_headers.size());
    _rows.push_back(std::move(cells));
}

void
TextTable::addSeparator()
{
    _rows.emplace_back();
}

std::string
TextTable::toString() const
{
    std::vector<std::size_t> widths(_headers.size(), 0);
    for (std::size_t c = 0; c < _headers.size(); ++c)
        widths[c] = _headers[c].size();
    for (const auto &row : _rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;

    std::ostringstream os;
    os << _title << "\n";
    os << std::string(total, '=') << "\n";
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            // Left-align the first column (labels), right-align the
            // numeric columns.
            if (c == 0)
                os << std::left;
            else
                os << std::right;
            os << std::setw(static_cast<int>(widths[c])) << cells[c]
               << "  ";
        }
        os << "\n";
    };
    emit_row(_headers);
    os << std::string(total, '-') << "\n";
    for (const auto &row : _rows) {
        if (row.empty())
            os << std::string(total, '-') << "\n";
        else
            emit_row(row);
    }
    return os.str();
}

std::string
TextTable::toCsv() const
{
    std::ostringstream os;
    os << "# " << _title << "\n";
    CsvWriter csv(os);
    csv.writeRow(_headers);
    for (const auto &row : _rows) {
        if (!row.empty())
            csv.writeRow(row);
    }
    return os.str();
}

std::string
TextTable::num(double value, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << value;
    return os.str();
}

std::string
TextTable::pct(double frac, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << 100.0 * frac;
    return os.str();
}

} // namespace dirsim::stats
