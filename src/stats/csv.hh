/**
 * @file
 * Minimal CSV emitter.
 *
 * Benches can dump every reproduced exhibit as CSV alongside the text
 * rendering so results are easy to plot externally.
 */

#ifndef DIRSIM_STATS_CSV_HH
#define DIRSIM_STATS_CSV_HH

#include <ostream>
#include <string>
#include <vector>

namespace dirsim::stats
{

/** Writes RFC-4180-style CSV rows to an ostream. */
class CsvWriter
{
  public:
    /** @param os Destination stream; must outlive the writer. */
    explicit CsvWriter(std::ostream &os) : _os(os) {}

    /** Write one row, quoting cells that need it. */
    void writeRow(const std::vector<std::string> &cells);

    /** Quote a cell per RFC 4180 if it contains , " or newline. */
    static std::string escape(const std::string &cell);

  private:
    std::ostream &_os;
};

} // namespace dirsim::stats

#endif // DIRSIM_STATS_CSV_HH
