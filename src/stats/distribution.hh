/**
 * @file
 * Running scalar distribution (min / max / mean / stddev).
 *
 * Uses Welford's online algorithm so the variance is numerically stable
 * for long runs.
 */

#ifndef DIRSIM_STATS_DISTRIBUTION_HH
#define DIRSIM_STATS_DISTRIBUTION_HH

#include <cstdint>

namespace dirsim::stats
{

/** Streaming summary statistics over double-valued samples. */
class Distribution
{
  public:
    Distribution() = default;

    /** Record one sample. */
    void sample(double value);
    /** Discard all samples. */
    void reset();

    std::uint64_t count() const { return _count; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }
    double mean() const { return _count ? _mean : 0.0; }
    /** Population variance. */
    double variance() const;
    /** Population standard deviation. */
    double stddev() const;

  private:
    std::uint64_t _count = 0;
    double _min = 0.0;
    double _max = 0.0;
    double _mean = 0.0;
    double _m2 = 0.0;
};

} // namespace dirsim::stats

#endif // DIRSIM_STATS_DISTRIBUTION_HH
