#include "stats/csv.hh"

namespace dirsim::stats
{

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (std::size_t c = 0; c < cells.size(); ++c) {
        if (c != 0)
            _os << ',';
        _os << escape(cells[c]);
    }
    _os << '\n';
}

std::string
CsvWriter::escape(const std::string &cell)
{
    const bool needs_quotes =
        cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += "\"\"";
        else
            out += ch;
    }
    out += '"';
    return out;
}

} // namespace dirsim::stats
