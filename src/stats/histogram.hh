/**
 * @file
 * Integer-bucketed histogram.
 *
 * Used throughout the simulator for invalidation-fanout distributions
 * (Figure 1 of the paper) and similar small-integer-valued statistics.
 * Buckets grow on demand; bucket index equals the sample value.
 */

#ifndef DIRSIM_STATS_HISTOGRAM_HH
#define DIRSIM_STATS_HISTOGRAM_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dirsim::stats
{

/** A histogram over non-negative integer sample values. */
class Histogram
{
  public:
    Histogram() = default;

    /** Record one sample with value @p value. */
    void sample(std::size_t value);
    /** Record @p count samples with value @p value. */
    void sample(std::size_t value, std::uint64_t count);
    /** Merge another histogram into this one. */
    void merge(const Histogram &other);
    /** Discard all samples. */
    void reset();

    /** Total number of samples recorded. */
    std::uint64_t totalSamples() const { return _totalSamples; }
    /** Sum of all sample values (for means of fanouts etc.). */
    std::uint64_t totalWeight() const { return _totalWeight; }
    /** Number of samples with value exactly @p value. */
    std::uint64_t count(std::size_t value) const;
    /** Largest sample value seen (0 if empty). */
    std::size_t maxValue() const;

    /** Mean sample value (0 if empty). */
    double mean() const;
    /** Fraction of samples with value exactly @p value. */
    double frac(std::size_t value) const;
    /** Fraction of samples with value less than or equal to @p value. */
    double fracAtMost(std::size_t value) const;
    /**
     * Nearest-rank percentile: the smallest sample value whose
     * cumulative count reaches ceil(p/100 × totalSamples), with the
     * rank clamped to at least 1.  p = 0 therefore yields the minimum
     * sample, p = 100 the maximum; an empty histogram yields 0.
     */
    double percentile(double p) const;
    /**
     * Sum over samples of max(value - threshold, 0).
     *
     * This is the number of *extra* sequential operations incurred when
     * a broadcast that would have cost one message is replaced by one
     * message per destination (Section 6 of the paper).
     */
    std::uint64_t excessOver(std::size_t threshold) const;

    /** Render as "value: count (frac%)" lines, values 0..maxValue(). */
    std::string toString() const;

    /**
     * Exact sample-for-sample equality (trailing empty buckets are
     * ignored, so growth history does not matter).
     */
    bool operator==(const Histogram &other) const;

  private:
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _totalSamples = 0;
    std::uint64_t _totalWeight = 0;
};

} // namespace dirsim::stats

#endif // DIRSIM_STATS_HISTOGRAM_HH
