/**
 * @file
 * Plain-text table formatter.
 *
 * The benchmark harness reprints every table and figure of the paper as
 * aligned text; this class owns the column sizing and number formatting
 * so every exhibit renders consistently.
 */

#ifndef DIRSIM_STATS_TABLE_HH
#define DIRSIM_STATS_TABLE_HH

#include <cstddef>
#include <string>
#include <vector>

namespace dirsim::stats
{

/** A simple column-aligned text table. */
class TextTable
{
  public:
    /**
     * @param title Table caption printed above the body.
     * @param headers Column headers; fixes the column count.
     */
    TextTable(std::string title, std::vector<std::string> headers);

    /** Append a row of preformatted cells; padded/truncated to fit. */
    void addRow(std::vector<std::string> cells);
    /** Append a horizontal separator line. */
    void addSeparator();

    /** Number of data rows added so far. */
    std::size_t rows() const { return _rows.size(); }

    /** Render the table, including title and header rule. */
    std::string toString() const;

    /**
     * Render as CSV (header row + data rows; separators skipped).
     * The title becomes a leading comment line ("# title").
     */
    std::string toCsv() const;

    /** Format a double with @p decimals digits after the point. */
    static std::string num(double value, int decimals = 4);
    /** Format a value as a percentage with @p decimals digits. */
    static std::string pct(double frac, int decimals = 2);

  private:
    std::string _title;
    std::vector<std::string> _headers;
    /** Empty vector encodes a separator row. */
    std::vector<std::vector<std::string>> _rows;
};

} // namespace dirsim::stats

#endif // DIRSIM_STATS_TABLE_HH
