#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dirsim::stats
{

void
Histogram::sample(std::size_t value)
{
    sample(value, 1);
}

void
Histogram::sample(std::size_t value, std::uint64_t count)
{
    if (value >= _buckets.size())
        _buckets.resize(value + 1, 0);
    _buckets[value] += count;
    _totalSamples += count;
    _totalWeight += value * count;
}

void
Histogram::merge(const Histogram &other)
{
    if (other._buckets.size() > _buckets.size())
        _buckets.resize(other._buckets.size(), 0);
    for (std::size_t v = 0; v < other._buckets.size(); ++v)
        _buckets[v] += other._buckets[v];
    _totalSamples += other._totalSamples;
    _totalWeight += other._totalWeight;
}

void
Histogram::reset()
{
    _buckets.clear();
    _totalSamples = 0;
    _totalWeight = 0;
}

std::uint64_t
Histogram::count(std::size_t value) const
{
    return value < _buckets.size() ? _buckets[value] : 0;
}

std::size_t
Histogram::maxValue() const
{
    for (std::size_t v = _buckets.size(); v-- > 0;) {
        if (_buckets[v] != 0)
            return v;
    }
    return 0;
}

double
Histogram::mean() const
{
    if (_totalSamples == 0)
        return 0.0;
    return static_cast<double>(_totalWeight) /
           static_cast<double>(_totalSamples);
}

double
Histogram::frac(std::size_t value) const
{
    if (_totalSamples == 0)
        return 0.0;
    return static_cast<double>(count(value)) /
           static_cast<double>(_totalSamples);
}

double
Histogram::fracAtMost(std::size_t value) const
{
    if (_totalSamples == 0)
        return 0.0;
    std::uint64_t acc = 0;
    const std::size_t last = std::min(value + 1, _buckets.size());
    for (std::size_t v = 0; v < last; ++v)
        acc += _buckets[v];
    return static_cast<double>(acc) / static_cast<double>(_totalSamples);
}

double
Histogram::percentile(double p) const
{
    if (_totalSamples == 0)
        return 0.0;
    const double exact =
        p / 100.0 * static_cast<double>(_totalSamples);
    std::uint64_t rank =
        static_cast<std::uint64_t>(std::ceil(exact));
    rank = std::clamp<std::uint64_t>(rank, 1, _totalSamples);
    std::uint64_t acc = 0;
    for (std::size_t v = 0; v < _buckets.size(); ++v) {
        acc += _buckets[v];
        if (acc >= rank)
            return static_cast<double>(v);
    }
    return static_cast<double>(maxValue());
}

std::uint64_t
Histogram::excessOver(std::size_t threshold) const
{
    std::uint64_t excess = 0;
    for (std::size_t v = threshold + 1; v < _buckets.size(); ++v)
        excess += (v - threshold) * _buckets[v];
    return excess;
}

std::string
Histogram::toString() const
{
    std::ostringstream os;
    const std::size_t top = maxValue();
    for (std::size_t v = 0; v <= top; ++v) {
        os << v << ": " << count(v) << " ("
           << 100.0 * frac(v) << "%)\n";
    }
    return os.str();
}

bool
Histogram::operator==(const Histogram &other) const
{
    if (_totalSamples != other._totalSamples ||
        _totalWeight != other._totalWeight)
        return false;
    const std::size_t top =
        std::max(_buckets.size(), other._buckets.size());
    for (std::size_t v = 0; v < top; ++v) {
        if (count(v) != other.count(v))
            return false;
    }
    return true;
}

} // namespace dirsim::stats
