/**
 * @file
 * Simple event counters and derived ratios.
 *
 * The simulator accumulates raw event counts during a trace run and
 * converts them to per-reference frequencies afterwards.  Counter is a
 * thin wrapper over a 64-bit integer that makes the accumulate /
 * normalise split explicit in signatures.
 */

#ifndef DIRSIM_STATS_COUNTER_HH
#define DIRSIM_STATS_COUNTER_HH

#include <cstdint>

namespace dirsim::stats
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    /** Add one occurrence. */
    void operator++() { ++_value; }
    /** Add @p n occurrences. */
    void add(std::uint64_t n) { _value += n; }
    /** Merge another counter into this one. */
    void merge(const Counter &other) { _value += other._value; }
    /** Reset to zero. */
    void reset() { _value = 0; }

    /** Raw count. */
    std::uint64_t value() const { return _value; }

    /**
     * Frequency of this event relative to a denominator.
     *
     * @param total The denominator (e.g.\ total references).
     * @return value()/total, or 0 when total is zero.
     */
    double
    frac(std::uint64_t total) const
    {
        return total == 0 ? 0.0 : static_cast<double>(_value) /
                                      static_cast<double>(total);
    }

  private:
    std::uint64_t _value = 0;
};

} // namespace dirsim::stats

#endif // DIRSIM_STATS_COUNTER_HH
