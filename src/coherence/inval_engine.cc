#include "coherence/inval_engine.hh"

#include "coherence/prepared_loop.hh"

#include <cassert>
#include <stdexcept>

namespace dirsim::coherence
{

namespace
{

unsigned
popcount(std::uint64_t mask)
{
    return static_cast<unsigned>(__builtin_popcountll(mask));
}

} // namespace

InvalEngine::InvalEngine(const InvalEngineConfig &cfg)
    : _cfg(cfg), _dirArena(cfg.dirFactory, cfg.nUnits)
{
    if (cfg.nUnits == 0 || cfg.nUnits > directory::maxUnits)
        throw std::invalid_argument(
            "InvalEngine: unit count must be in [1, 64]");
    _results.name = "inval";
    if (_cfg.cacheFactory) {
        for (unsigned u = 0; u < _cfg.nUnits; ++u)
            _caches.push_back(_cfg.cacheFactory());
    }
    if (_cfg.dirCache.enabled)
        _dirCache = std::make_unique<directory::DirectoryCache>(
            _cfg.dirCache);
}

void
InvalEngine::reset()
{
    _results = EngineResults{};
    _results.name = "inval";
    _blocks.clear();
    _dirArena.clear();
    for (auto &cache : _caches)
        cache->clear();
    if (_dirCache)
        _dirCache->clear();
}

void
InvalEngine::reserveBlocks(std::uint64_t blocks)
{
    _blocks.reserve(blocks);
    _dirArena.reserve(blocks);
    if (_dirCache)
        _dirCache->reserveBlocks(blocks);
}

InvalEngine::BlockState &
InvalEngine::lookup(mem::BlockId block)
{
    auto [st, inserted] = _blocks.tryEmplace(block);
    if (inserted && _dirArena.enabled())
        st.dir = _dirArena.allocate();
    return st;
}

void
InvalEngine::recordHomeUse(unsigned unit, BlockState &st,
                           mem::BlockId block)
{
    if (_cfg.homePolicy == HomePolicy::None)
        return;
    if (st.home < 0) {
        st.home = _cfg.homePolicy == HomePolicy::Modulo
                      ? static_cast<std::int16_t>(block % _cfg.nUnits)
                      : static_cast<std::int16_t>(unit);
    }
    if (st.home == static_cast<int>(unit))
        ++_results.homeLocalTransactions;
    else
        ++_results.homeRemoteTransactions;
}

std::uint64_t
InvalEngine::holders(mem::BlockId block) const
{
    const BlockState *st = _blocks.find(block);
    return st ? st->holders : 0;
}

int
InvalEngine::dirtyOwner(mem::BlockId block) const
{
    const BlockState *st = _blocks.find(block);
    return st ? st->owner : -1;
}

void
InvalEngine::fillCache(unsigned unit, mem::BlockId block)
{
    if (_caches.empty())
        return;
    const mem::TouchResult touch = _caches[unit]->touch(block);
    if (!touch.evicted)
        return;
    ++_results.replacementEvictions;
    // The victim came out of a tag store, so it was filled by an
    // earlier miss and is necessarily tracked already.  The
    // non-inserting find keeps this call rehash-free: our callers
    // hold a BlockState reference across it.
    BlockState *victim = _blocks.find(touch.evictedBlock);
    assert(victim && "evicted block must be tracked");
    victim->holders &= ~(1ULL << unit);
    if (victim->owner == static_cast<int>(unit)) {
        victim->owner = -1;
        ++_results.replacementWriteBacks;
    }
    if (directory::DirEntry *dir = dirOf(*victim))
        dir->removeSharer(unit);
}

void
InvalEngine::touchDirCache(mem::BlockId block)
{
    if (!_dirCache)
        return;
    const directory::DirCacheTouch touch = _dirCache->touch(block);
    if (touch.hit) {
        ++_results.dirCacheHits;
        return;
    }
    ++_results.dirCacheMisses;
    if (!touch.evicted)
        return;
    ++_results.dirCacheEvictions;
    // Any block that ever got a directory entry is tracked.  The
    // non-inserting find keeps this call rehash-free: our callers
    // hold a BlockState reference across it (same contract as
    // fillCache).
    BlockState *victim = _blocks.find(touch.victim);
    assert(victim && "dir-cache victim must be tracked");
    _results.dirCacheEvictionInvals += popcount(victim->holders);
    if (victim->owner >= 0) {
        // The sole dirty copy is flushed to memory before it dies.
        victim->owner = -1;
        ++_results.dirCacheEvictionWriteBacks;
        if (directory::DirEntry *dir = dirOf(*victim))
            dir->cleanse();
    }
    if (directory::DirEntry *dir = dirOf(*victim)) {
        // The shadowed organisation forgets the entry's state too.
        for (unsigned u = 0; u < _cfg.nUnits; ++u) {
            if (victim->holders & (1ULL << u))
                dir->removeSharer(u);
        }
    }
    invalidateMask(touch.victim, *victim, victim->holders);
}

void
InvalEngine::invalidateMask(mem::BlockId block, BlockState &st,
                            std::uint64_t mask)
{
    st.holders &= ~mask;
    if (!_caches.empty()) {
        for (unsigned u = 0; u < _cfg.nUnits; ++u) {
            if (mask & (1ULL << u))
                _caches[u]->invalidate(block);
        }
    }
}

void
InvalEngine::access(unsigned unit, trace::RefType type,
                    mem::BlockId block)
{
    assert(unit < _cfg.nUnits);
    if (type == trace::RefType::Instr) {
        _results.events.record(Event::Instr);
        return;
    }
    BlockState &st = lookup(block);
    if (type == trace::RefType::Read)
        handleRead(unit, block, st);
    else
        handleWrite(unit, block, st);
}

void
InvalEngine::accessBatch(const BlockAccess *accs, std::size_t n)
{
    // The class is final, so these calls devirtualise and inline.
    for (std::size_t i = 0; i < n; ++i)
        access(accs[i].unit, accs[i].type, accs[i].block);
}

void
InvalEngine::accessPrepared(const PreparedSlice &slice)
{
    stripMinedAccessPrepared(*this, _blocks, slice);
}

void
InvalEngine::recordInstrs(std::uint64_t n)
{
    _results.events.record(Event::Instr, n);
}

void
InvalEngine::handleRead(unsigned unit, mem::BlockId block,
                        BlockState &st)
{
    const std::uint64_t unit_bit = 1ULL << unit;

    if (st.holders & unit_bit) {
        _results.events.record(Event::RdHit);
        if (!_caches.empty())
            _caches[unit]->touch(block); // Refresh LRU.
        return;
    }

    // Every miss involves the block's home node (memory + directory).
    recordHomeUse(unit, st, block);
    touchDirCache(block);

    if (!st.referenced) {
        st.referenced = true;
        _results.events.record(Event::RmFirstRef);
    } else if (st.owner >= 0) {
        // Flush: the ex-owner writes back and keeps a clean copy; the
        // requester snarfs the data.
        _results.events.record(Event::RmBlkDrty);
        st.owner = -1;
        if (directory::DirEntry *dir = dirOf(st))
            dir->cleanse();
    } else if (st.holders != 0) {
        _results.events.record(Event::RmBlkCln);
    } else {
        _results.events.record(Event::RmMemory);
    }

    if (popcount(st.holders) == 1)
        ++_results.holderGrowth12;
    st.holders |= unit_bit;
    if (directory::DirEntry *dir = dirOf(st))
        dir->addSharer(unit);
    fillCache(unit, block);
}

void
InvalEngine::recordDirActivity(unsigned unit, bool unitHasCopy,
                               const BlockState &st)
{
    const directory::DirEntry *dir = dirOf(st);
    if (!dir)
        return;
    const directory::InvalTargets targets =
        dir->invalTargets(unit, unitHasCopy);
    if (targets.broadcast) {
        ++_results.dirBroadcasts;
        return;
    }
    const std::uint64_t others = st.holders & ~(1ULL << unit);
    _results.dirDirectedInvals += targets.count();
    _results.dirOvershoot += popcount(targets.mask & ~others);
    // A directory must reach every real copy: directed targets may
    // overshoot but never miss a holder.
    assert((others & ~targets.mask) == 0);
}

void
InvalEngine::handleWrite(unsigned unit, mem::BlockId block,
                         BlockState &st)
{
    const std::uint64_t unit_bit = 1ULL << unit;
    const bool has_copy = (st.holders & unit_bit) != 0;

    if (has_copy && st.owner == static_cast<int>(unit)) {
        _results.events.record(Event::WhBlkDrty);
        if (!_caches.empty())
            _caches[unit]->touch(block);
        return;
    }

    // Reaching here means a directory transaction: a miss, or a hit
    // to a clean copy whose write permission the directory grants.
    touchDirCache(block);

    if (has_copy) {
        // Write hit to a clean copy.  A dirty copy elsewhere is
        // impossible: dirty implies sole holder.
        assert(st.owner < 0);
        recordHomeUse(unit, st, block);
        const std::uint64_t others = st.holders & ~unit_bit;
        const unsigned fanout = popcount(others);
        _results.events.record(fanout == 0 ? Event::WhBlkClnExcl
                                           : Event::WhBlkClnShared);
        _results.whClnFanout.sample(fanout);
        recordDirActivity(unit, true, st);
        invalidateMask(block, st, others);
        if (!_caches.empty())
            _caches[unit]->touch(block);
    } else if (!st.referenced) {
        st.referenced = true;
        recordHomeUse(unit, st, block);
        _results.events.record(Event::WmFirstRef);
        fillCache(unit, block);
    } else if (st.owner >= 0) {
        // Flush the dirty copy and invalidate it; the requester
        // receives the data.
        recordHomeUse(unit, st, block);
        _results.events.record(Event::WmBlkDrty);
        recordDirActivity(unit, false, st);
        invalidateMask(block, st, st.holders);
        fillCache(unit, block);
    } else if (st.holders != 0) {
        recordHomeUse(unit, st, block);
        _results.events.record(Event::WmBlkCln);
        _results.wmClnFanout.sample(popcount(st.holders));
        recordDirActivity(unit, false, st);
        invalidateMask(block, st, st.holders);
        fillCache(unit, block);
    } else {
        recordHomeUse(unit, st, block);
        _results.events.record(Event::WmMemory);
        fillCache(unit, block);
    }

    st.holders = unit_bit;
    st.owner = static_cast<std::int16_t>(unit);
    if (directory::DirEntry *dir = dirOf(st))
        dir->makeOwner(unit);
}

} // namespace dirsim::coherence
