/**
 * @file
 * Berkeley Ownership state engine.
 *
 * The paper *estimates* Berkeley from the Dir0B engine by zeroing the
 * directory-check cost, noting that "the Berkeley scheme, in
 * addition, uses a different state for a dirty block that becomes
 * shared to enable the cache to supply a block rather than memory.
 * This optimization does not impact our performance metric in the
 * pipelined bus."  This engine implements the real protocol — states
 * Invalid / Valid / SharedDirty (owned) / Dirty — so the test suite
 * can verify both halves of that sentence: on a read miss to an owned
 * block the owner supplies the data *without a memory write-back* and
 * keeps ownership, so (a) the pipelined-bus cost equals the estimate,
 * and (b) the non-pipelined costs differ, because a cache access and
 * a flush-plus-snarf are no longer the same price.
 */

#ifndef DIRSIM_COHERENCE_BERKELEY_ENGINE_HH
#define DIRSIM_COHERENCE_BERKELEY_ENGINE_HH

#include "coherence/engine.hh"
#include "util/flat_map.hh"

namespace dirsim::coherence
{

/** Ownership-based snoopy engine (Berkeley protocol). */
class BerkeleyEngine final : public CoherenceEngine
{
  public:
    explicit BerkeleyEngine(unsigned nUnits);

    void access(unsigned unit, trace::RefType type,
                mem::BlockId block) override;
    void accessBatch(const BlockAccess *accs, std::size_t n) override;
    void accessPrepared(const PreparedSlice &slice) override;
    void recordInstrs(std::uint64_t n) override;
    const EngineResults &results() const override { return _results; }
    unsigned numUnits() const override { return _nUnits; }
    void reset() override;
    void reserveBlocks(std::uint64_t blocks) override
    {
        _blocks.reserve(blocks);
    }
    std::uint64_t blocksTracked() const override
    {
        return _blocks.size();
    }

    /** Current owner of @p block (supplies data), or -1 if memory. */
    int owner(mem::BlockId block) const;

  private:
    struct BlockState
    {
        std::uint64_t holders = 0;
        /** Owning cache; memory is stale while >= 0. */
        std::int16_t owner = -1;
        bool referenced = false;
    };

    void handleRead(unsigned unit, BlockState &st);
    void handleWrite(unsigned unit, BlockState &st);

    unsigned _nUnits;
    EngineResults _results;
    util::FlatMap<mem::BlockId, BlockState> _blocks;
};

} // namespace dirsim::coherence

#endif // DIRSIM_COHERENCE_BERKELEY_ENGINE_HH
