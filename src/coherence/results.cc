#include "coherence/results.hh"

namespace dirsim::coherence
{

void
EngineResults::merge(const EngineResults &other)
{
    events.merge(other.events);
    whClnFanout.merge(other.whClnFanout);
    wmClnFanout.merge(other.wmClnFanout);
    holderGrowth12 += other.holderGrowth12;
    displacementInvals += other.displacementInvals;
    dirDirectedInvals += other.dirDirectedInvals;
    dirBroadcasts += other.dirBroadcasts;
    dirOvershoot += other.dirOvershoot;
    homeLocalTransactions += other.homeLocalTransactions;
    homeRemoteTransactions += other.homeRemoteTransactions;
    replacementEvictions += other.replacementEvictions;
    replacementWriteBacks += other.replacementWriteBacks;
    dirCacheHits += other.dirCacheHits;
    dirCacheMisses += other.dirCacheMisses;
    dirCacheEvictions += other.dirCacheEvictions;
    dirCacheEvictionInvals += other.dirCacheEvictionInvals;
    dirCacheEvictionWriteBacks += other.dirCacheEvictionWriteBacks;
}

bool
EngineResults::operator==(const EngineResults &other) const
{
    return name == other.name && events == other.events &&
           whClnFanout == other.whClnFanout &&
           wmClnFanout == other.wmClnFanout &&
           holderGrowth12 == other.holderGrowth12 &&
           displacementInvals == other.displacementInvals &&
           dirDirectedInvals == other.dirDirectedInvals &&
           dirBroadcasts == other.dirBroadcasts &&
           dirOvershoot == other.dirOvershoot &&
           homeLocalTransactions == other.homeLocalTransactions &&
           homeRemoteTransactions == other.homeRemoteTransactions &&
           replacementEvictions == other.replacementEvictions &&
           replacementWriteBacks == other.replacementWriteBacks &&
           dirCacheHits == other.dirCacheHits &&
           dirCacheMisses == other.dirCacheMisses &&
           dirCacheEvictions == other.dirCacheEvictions &&
           dirCacheEvictionInvals == other.dirCacheEvictionInvals &&
           dirCacheEvictionWriteBacks ==
               other.dirCacheEvictionWriteBacks;
}

} // namespace dirsim::coherence
