#include "coherence/berkeley_engine.hh"

#include "coherence/prepared_loop.hh"

#include <cassert>
#include <stdexcept>

namespace dirsim::coherence
{

namespace
{

unsigned
popcount(std::uint64_t mask)
{
    return static_cast<unsigned>(__builtin_popcountll(mask));
}

} // namespace

BerkeleyEngine::BerkeleyEngine(unsigned nUnits) : _nUnits(nUnits)
{
    if (nUnits == 0 || nUnits > 64)
        throw std::invalid_argument(
            "BerkeleyEngine: unit count must be in [1, 64]");
    _results.name = "berkeley";
}

void
BerkeleyEngine::reset()
{
    _results = EngineResults{};
    _results.name = "berkeley";
    _blocks.clear();
}

int
BerkeleyEngine::owner(mem::BlockId block) const
{
    const BlockState *st = _blocks.find(block);
    return st ? st->owner : -1;
}

void
BerkeleyEngine::access(unsigned unit, trace::RefType type,
                       mem::BlockId block)
{
    assert(unit < _nUnits);
    if (type == trace::RefType::Instr) {
        _results.events.record(Event::Instr);
        return;
    }
    BlockState &st = _blocks[block];
    if (type == trace::RefType::Read)
        handleRead(unit, st);
    else
        handleWrite(unit, st);
}

void
BerkeleyEngine::accessBatch(const BlockAccess *accs, std::size_t n)
{
    // The class is final, so these calls devirtualise and inline.
    for (std::size_t i = 0; i < n; ++i)
        access(accs[i].unit, accs[i].type, accs[i].block);
}

void
BerkeleyEngine::accessPrepared(const PreparedSlice &slice)
{
    stripMinedAccessPrepared(*this, _blocks, slice);
}

void
BerkeleyEngine::recordInstrs(std::uint64_t n)
{
    _results.events.record(Event::Instr, n);
}

void
BerkeleyEngine::handleRead(unsigned unit, BlockState &st)
{
    const std::uint64_t unit_bit = 1ULL << unit;
    if (st.holders & unit_bit) {
        _results.events.record(Event::RdHit);
        return;
    }
    if (!st.referenced) {
        st.referenced = true;
        _results.events.record(Event::RmFirstRef);
    } else if (st.owner >= 0) {
        // The owner supplies the block cache-to-cache and *keeps*
        // ownership (SharedDirty); memory is not updated.
        _results.events.record(Event::RmBlkDrty);
    } else if (st.holders != 0) {
        _results.events.record(Event::RmBlkCln);
    } else {
        _results.events.record(Event::RmMemory);
    }
    if (popcount(st.holders) == 1)
        ++_results.holderGrowth12;
    st.holders |= unit_bit;
}

void
BerkeleyEngine::handleWrite(unsigned unit, BlockState &st)
{
    const std::uint64_t unit_bit = 1ULL << unit;
    const bool has_copy = (st.holders & unit_bit) != 0;
    const std::uint64_t others = st.holders & ~unit_bit;

    if (has_copy && st.owner == static_cast<int>(unit) &&
        others == 0) {
        // Dirty (exclusive owned): silent upgrade.
        _results.events.record(Event::WhBlkDrty);
        return;
    }

    if (has_copy) {
        // Valid copy, or SharedDirty owner with other sharers: the
        // write must invalidate the other copies.  Classified exactly
        // as the invalidation state model classifies the same
        // reference, which keeps the event-frequency equivalence the
        // paper relies on testable.
        const unsigned fanout = popcount(others);
        _results.events.record(fanout == 0 ? Event::WhBlkClnExcl
                                           : Event::WhBlkClnShared);
        _results.whClnFanout.sample(fanout);
    } else if (!st.referenced) {
        st.referenced = true;
        _results.events.record(Event::WmFirstRef);
    } else if (st.owner >= 0) {
        // Owner supplies, everyone else invalidates.
        _results.events.record(Event::WmBlkDrty);
    } else if (st.holders != 0) {
        _results.events.record(Event::WmBlkCln);
        _results.wmClnFanout.sample(popcount(st.holders));
    } else {
        _results.events.record(Event::WmMemory);
    }

    st.holders = unit_bit;
    st.owner = static_cast<std::int16_t>(unit);
}

} // namespace dirsim::coherence
