#include "coherence/multi_limited_engine.hh"

#include "coherence/prepared_loop.hh"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <string>

namespace dirsim::coherence
{

MultiLimitedEngine::MultiLimitedEngine(
    unsigned nUnits, const std::vector<unsigned> &pointerCounts)
    : _nUnits(nUnits),
      _k(static_cast<unsigned>(pointerCounts.size())),
      _stride(2 * pointerCounts.size())
{
    if (nUnits == 0 || nUnits > 64)
        throw std::invalid_argument(
            "MultiLimitedEngine: unit count must be in [1, 64]");
    if (pointerCounts.empty())
        throw std::invalid_argument(
            "MultiLimitedEngine: need at least one lane");
    _pointers.reserve(_k);
    _results.resize(_k);
    for (std::size_t l = 0; l < _k; ++l) {
        // Exactly LimitedEngine's validation and clamping, so lane l
        // names and behaves as LimitedEngine(nUnits, counts[l]).
        const unsigned requested = pointerCounts[l];
        if (requested == 0)
            throw std::invalid_argument(
                "MultiLimitedEngine: Dir0NB makes no sense (no way "
                "to obtain exclusive access)");
        const unsigned clamped = std::min(requested, nUnits);
        if (clamped > 8)
            throw std::invalid_argument(
                "MultiLimitedEngine: at most 8 pointers per lane "
                "(the paper's no-broadcast sweep tops out at Dir8NB; "
                "the bound keeps the per-lane fill queue inline)");
        _pointers.push_back(clamped);
        _results[l].name = "dir" + std::to_string(clamped) + "nb";
    }
}

void
MultiLimitedEngine::reset()
{
    for (EngineResults &r : _results) {
        const std::string name = r.name;
        r = EngineResults{};
        r.name = name;
    }
    _blocks.clear();
    _words.clear();
    _owners.clear();
    _referenced.clear();
    _entries = 0;
}

void
MultiLimitedEngine::reserveBlocks(std::uint64_t blocks)
{
    _blocks.reserve(blocks);
    _words.reserve(blocks * _stride);
    _owners.reserve(blocks * _k);
    _referenced.reserve(blocks * _k);
}

std::uint32_t
MultiLimitedEngine::entryFor(mem::BlockId block)
{
    const auto slot = _blocks.tryEmplace(block);
    if (!slot.inserted)
        return slot.value;
    assert(_entries < std::numeric_limits<std::uint32_t>::max());
    slot.value = _entries++;
    // Fresh entry: every lane starts empty, exactly like a fresh
    // LimitedEngine block.
    _words.resize(_words.size() + _stride, 0);
    _owners.resize(_owners.size() + _k, -1);
    _referenced.resize(_referenced.size() + _k, 0);
    return slot.value;
}

void
MultiLimitedEngine::handleRead(unsigned unit, std::uint32_t entry)
{
    std::uint64_t *masks = _words.data() + std::size_t(entry) * _stride;
    std::uint64_t *fillqs = masks + _k;
    std::int16_t *owners = _owners.data() + std::size_t(entry) * _k;
    std::uint8_t *referenced =
        _referenced.data() + std::size_t(entry) * _k;
    for (unsigned l = 0; l < _k; ++l) {
        // Gather the lane, run the shared transition, scatter back —
        // hits store nothing, so read-mostly lanes keep their cache
        // lines clean.
        if (laneHolds(masks[l], unit)) {
            _results[l].events.record(Event::RdHit);
            continue;
        }
        LimitedLane lane{masks[l], fillqs[l], owners[l],
                         referenced[l] != 0};
        laneReadMiss(lane, unit, _pointers[l], _results[l]);
        masks[l] = lane.mask;
        fillqs[l] = lane.fillq;
        owners[l] = lane.owner;
        referenced[l] = lane.referenced;
    }
}

void
MultiLimitedEngine::handleWrite(unsigned unit, std::uint32_t entry)
{
    std::uint64_t *masks = _words.data() + std::size_t(entry) * _stride;
    std::uint64_t *fillqs = masks + _k;
    std::int16_t *owners = _owners.data() + std::size_t(entry) * _k;
    std::uint8_t *referenced =
        _referenced.data() + std::size_t(entry) * _k;
    for (unsigned l = 0; l < _k; ++l) {
        if (laneHolds(masks[l], unit) &&
            owners[l] == static_cast<int>(unit)) {
            _results[l].events.record(Event::WhBlkDrty);
            continue;
        }
        LimitedLane lane{masks[l], fillqs[l], owners[l],
                         referenced[l] != 0};
        laneWrite(lane, unit, _results[l]);
        masks[l] = lane.mask;
        fillqs[l] = lane.fillq;
        owners[l] = lane.owner;
        referenced[l] = lane.referenced;
    }
}

void
MultiLimitedEngine::access(unsigned unit, trace::RefType type,
                           mem::BlockId block)
{
    assert(unit < _nUnits);
    if (type == trace::RefType::Instr) {
        for (EngineResults &r : _results)
            r.events.record(Event::Instr);
        return;
    }
    // The one probe that replaces k per-engine probes.
    const std::uint32_t entry = entryFor(block);
    if (type == trace::RefType::Read)
        handleRead(unit, entry);
    else
        handleWrite(unit, entry);
}

void
MultiLimitedEngine::accessBatch(const BlockAccess *accs, std::size_t n)
{
    // The class is final, so these calls devirtualise and inline.
    for (std::size_t i = 0; i < n; ++i)
        access(accs[i].unit, accs[i].type, accs[i].block);
}

void
MultiLimitedEngine::accessPrepared(const PreparedSlice &slice)
{
    stripMinedAccessPrepared(*this, _blocks, slice);
}

void
MultiLimitedEngine::recordInstrs(std::uint64_t n)
{
    for (EngineResults &r : _results)
        r.events.record(Event::Instr, n);
}

} // namespace dirsim::coherence
