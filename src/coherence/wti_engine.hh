/**
 * @file
 * True write-through-with-invalidate (WTI) state engine.
 *
 * The paper costs WTI from the Dir0B engine run, on the observation
 * that both protocols share one state-change model.  This engine
 * implements WTI's semantics directly — every write goes through to
 * memory, so no cached copy is ever dirty and every miss is serviced
 * by (always current) memory — which lets the test suite *verify* the
 * paper's frequency-equivalence claim instead of assuming it: hit and
 * miss totals must match the invalidation engine reference for
 * reference, while the dirty sub-classification collapses.
 *
 * A no-allocate mode is provided as an ablation: real write-through
 * caches often do not allocate on a write miss, which changes the
 * state dynamics (the writer gains no copy) and breaks the
 * equivalence — measurably.
 */

#ifndef DIRSIM_COHERENCE_WTI_ENGINE_HH
#define DIRSIM_COHERENCE_WTI_ENGINE_HH

#include "coherence/engine.hh"
#include "util/flat_map.hh"

namespace dirsim::coherence
{

/** Snoopy write-through-with-invalidate engine. */
class WtiEngine final : public CoherenceEngine
{
  public:
    /**
     * @param nUnits Number of caches.
     * @param allocateOnWriteMiss Fetch the block on a write miss
     *        (true matches the paper's state model; false is the
     *        classic write-around ablation).
     */
    explicit WtiEngine(unsigned nUnits,
                       bool allocateOnWriteMiss = true);

    void access(unsigned unit, trace::RefType type,
                mem::BlockId block) override;
    void accessBatch(const BlockAccess *accs, std::size_t n) override;
    void accessPrepared(const PreparedSlice &slice) override;
    void recordInstrs(std::uint64_t n) override;
    const EngineResults &results() const override { return _results; }
    unsigned numUnits() const override { return _nUnits; }
    void reset() override;
    void reserveBlocks(std::uint64_t blocks) override
    {
        _blocks.reserve(blocks);
    }
    std::uint64_t blocksTracked() const override
    {
        return _blocks.size();
    }

  private:
    struct BlockState
    {
        std::uint64_t holders = 0;
        bool referenced = false;
    };

    void handleRead(unsigned unit, BlockState &st);
    void handleWrite(unsigned unit, BlockState &st);

    unsigned _nUnits;
    bool _allocate;
    EngineResults _results;
    util::FlatMap<mem::BlockId, BlockState> _blocks;
};

} // namespace dirsim::coherence

#endif // DIRSIM_COHERENCE_WTI_ENGINE_HH
