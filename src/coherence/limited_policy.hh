/**
 * @file
 * The DiriNB transition core, shared by the single- and
 * multi-configuration engines.
 *
 * LimitedEngine (one pointer count per instance) and
 * MultiLimitedEngine (every pointer count of a sweep over one shared
 * block table) must classify every reference identically — the golden
 * digests are compared bit for bit across the two paths.  Rather than
 * rely on two copies of the protocol staying in sync, the transition
 * functions live here once, header-inline, and both engines call
 * them.  A lane is the per-configuration slice of a block's directory
 * state: the holder mask, the fill-order queue, the dirty owner and
 * the referenced bit.
 *
 * Call protocol (the split exists because the engines interpose a
 * directory-cache touch between the hit test and the miss service,
 * and hits must not touch the directory):
 *
 *   read:   if (laneReadHit(lane, unit, r)) return;      // no state
 *           <directory transaction bookkeeping>
 *           laneReadMiss(lane, unit, nPointers, r);
 *   write:  if (laneWriteDirtyHit(lane, unit, r)) return; // no state
 *           <directory transaction bookkeeping>
 *           laneWrite(lane, unit, r);
 *
 * Semantics (paper Sections 3-4): at most nPointers caches hold a
 * block; an (nPointers+1)-th read miss displaces the oldest holder
 * ("displacement invalidation"); a read miss to a dirty block writes
 * the owner's copy back, and with nPointers == 1 also invalidates the
 * ex-owner; a write invalidates every other copy and takes ownership.
 */

#ifndef DIRSIM_COHERENCE_LIMITED_POLICY_HH
#define DIRSIM_COHERENCE_LIMITED_POLICY_HH

#include <bit>
#include <cassert>
#include <cstdint>

#include "coherence/results.hh"

namespace dirsim::coherence
{

/** One configuration's directory state for one block. */
struct LimitedLane
{
    /**
     * Holder membership, one bit per unit (engines cap units at 64),
     * giving the hot-path holds() test a single mask probe with no
     * heap indirection.  The holder count is popcount(mask).
     */
    std::uint64_t mask = 0;
    /**
     * The same holders as a byte queue in fill order, oldest in the
     * low byte (hence <= 8 pointers): pushing is an OR at byte
     * popcount(mask), displacing the oldest is a right shift.
     * Keeping the queue inline means a lane is two words with no
     * heap spill.
     */
    std::uint64_t fillq = 0;
    std::int16_t owner = -1;
    bool referenced = false;
};

/** Does @p unit hold a copy under this holder mask? */
inline bool
laneHolds(std::uint64_t mask, unsigned unit)
{
    return (mask >> unit) & 1;
}

/**
 * Read-hit test: records RdHit and returns true when @p unit already
 * holds a copy (no state change, no directory transaction).
 */
inline bool
laneReadHit(const LimitedLane &st, unsigned unit, EngineResults &r)
{
    if (!laneHolds(st.mask, unit))
        return false;
    r.events.record(Event::RdHit);
    return true;
}

/**
 * Write-hit-to-owned test: records WhBlkDrty and returns true when
 * @p unit holds the block dirty (no state change, no directory
 * transaction).  A hit to a *clean* copy is not silent — it needs
 * the directory, so it falls through to laneWrite().
 */
inline bool
laneWriteDirtyHit(const LimitedLane &st, unsigned unit,
                  EngineResults &r)
{
    if (!(laneHolds(st.mask, unit) &&
          st.owner == static_cast<int>(unit)))
        return false;
    r.events.record(Event::WhBlkDrty);
    return true;
}

/**
 * Service a read miss for @p unit: classify it, write back (and with
 * nPointers == 1 invalidate) a dirty owner, displace the oldest
 * holder if all @p nPointers pointers are in use, and install the new
 * copy at the back of the fill queue.
 */
inline void
laneReadMiss(LimitedLane &st, unsigned unit, unsigned nPointers,
             EngineResults &r)
{
    if (!st.referenced) {
        st.referenced = true;
        r.events.record(Event::RmFirstRef);
    } else if (st.owner >= 0) {
        // Write back; with a single pointer the ex-owner is also
        // invalidated, otherwise it keeps a clean copy.
        r.events.record(Event::RmBlkDrty);
        st.owner = -1;
        if (nPointers == 1) {
            st.mask = 0;
            st.fillq = 0;
            // The forced removal of the ex-owner's copy is part of
            // the miss service, not an extra displacement.
        }
    } else if (st.mask != 0) {
        r.events.record(Event::RmBlkCln);
    } else {
        r.events.record(Event::RmMemory);
    }

    unsigned nHolders = std::popcount(st.mask);
    if (nHolders == 1)
        ++r.holderGrowth12;
    if (nHolders == nPointers) {
        // Displace the oldest holder (the queue's low byte) to free
        // a pointer for the new copy.
        st.mask &= ~(std::uint64_t(1) << (st.fillq & 0xff));
        st.fillq >>= 8;
        --nHolders;
        ++r.displacementInvals;
    }
    st.mask |= std::uint64_t(1) << unit;
    st.fillq |= std::uint64_t(unit) << (8 * nHolders);
}

/**
 * Service a write that needs the directory (a miss, or a hit to a
 * clean copy): classify it, invalidate every other copy and make
 * @p unit the sole dirty owner.
 */
inline void
laneWrite(LimitedLane &st, unsigned unit, EngineResults &r)
{
    if (laneHolds(st.mask, unit)) {
        // Hit to a clean copy (a dirty hit never reaches here).
        assert(st.owner < 0);
        const unsigned fanout =
            static_cast<unsigned>(std::popcount(st.mask)) - 1u;
        r.events.record(fanout == 0 ? Event::WhBlkClnExcl
                                    : Event::WhBlkClnShared);
        r.whClnFanout.sample(fanout);
    } else if (!st.referenced) {
        st.referenced = true;
        r.events.record(Event::WmFirstRef);
    } else if (st.owner >= 0) {
        r.events.record(Event::WmBlkDrty);
    } else if (st.mask != 0) {
        r.events.record(Event::WmBlkCln);
        r.wmClnFanout.sample(
            static_cast<unsigned>(std::popcount(st.mask)));
    } else {
        r.events.record(Event::WmMemory);
    }

    st.mask = std::uint64_t(1) << unit;
    st.fillq = unit;
    st.owner = static_cast<std::int16_t>(unit);
}

} // namespace dirsim::coherence

#endif // DIRSIM_COHERENCE_LIMITED_POLICY_HH
