/**
 * @file
 * Per-engine simulation results.
 *
 * Everything the paper's cost models need from one trace run: the
 * event frequencies of Table 4, the invalidation-fanout histograms of
 * Figure 1 (split by event class so Section 6's sequential-invalidate
 * and limited-pointer analytics are exact), and a handful of auxiliary
 * counters for protocol variants and extensions.
 */

#ifndef DIRSIM_COHERENCE_RESULTS_HH
#define DIRSIM_COHERENCE_RESULTS_HH

#include <string>

#include "coherence/events.hh"
#include "stats/histogram.hh"

namespace dirsim::coherence
{

/** Results of running one coherence engine over a trace. */
struct EngineResults
{
    std::string name; //!< Engine/state-model label.

    EventCounts events;

    /**
     * @name Invalidation fanout histograms.
     *
     * Sample value = number of *other* caches holding the block at the
     * event.  whClnFanout and wmClnFanout together are the
     * "writes to previously-clean blocks" of Figure 1.
     * @{
     */
    stats::Histogram whClnFanout; //!< At write hits to clean blocks.
    stats::Histogram wmClnFanout; //!< At write misses, block clean.
    /** @} */

    /**
     * Holder-count transitions from one to two caches; this is the
     * traffic the Yen-Fu single-bit refinement spends keeping single
     * bits current.
     */
    std::uint64_t holderGrowth12 = 0;

    /**
     * Invalidations issued to make room in a limited-pointer
     * (no-broadcast) directory on a read fill.
     */
    std::uint64_t displacementInvals = 0;

    /** @name Directory-representation message accounting.
     *
     * Filled when the engine carries a DirEntry organisation: what a
     * real directory of that organisation would have sent.
     * @{ */
    std::uint64_t dirDirectedInvals = 0; //!< Directed messages sent.
    std::uint64_t dirBroadcasts = 0;     //!< Broadcast fallbacks.
    /** Directed messages to caches that held no copy (coarse-vector
     *  overshoot). */
    std::uint64_t dirOvershoot = 0;
    /** @} */

    /** @name Distributed-directory locality counters.
     *
     * When home tracking is enabled, every bus transaction (miss or
     * clean-write-hit directory access) is classified by whether the
     * block's home node is the requesting unit.  The paper argues
     * distributing memory and directory with the processors scales
     * their bandwidth; the local fraction is what that buys.
     * @{ */
    std::uint64_t homeLocalTransactions = 0;
    std::uint64_t homeRemoteTransactions = 0;
    /** @} */

    /** @name Finite-cache extension counters.
     *  @{ */
    std::uint64_t replacementEvictions = 0;
    std::uint64_t replacementWriteBacks = 0;
    /** @} */

    /** @name Finite directory-cache (sparse directory) counters.
     *
     * Filled when the engine runs behind a directory::DirectoryCache.
     * Conservation invariant, checked by the test suite: every entry
     * eviction force-invalidates exactly the copies the engine tracked
     * for the victim block, so dirCacheEvictionInvals equals the sum
     * over evictions of the victim's holder count at eviction time.
     * @{ */
    std::uint64_t dirCacheHits = 0;
    std::uint64_t dirCacheMisses = 0;
    std::uint64_t dirCacheEvictions = 0;
    /** Cached copies force-invalidated by entry evictions. */
    std::uint64_t dirCacheEvictionInvals = 0;
    /** Dirty victims written back before invalidation. */
    std::uint64_t dirCacheEvictionWriteBacks = 0;
    /** @} */

    /** Merge another run (e.g.\ averaging across traces). */
    void merge(const EngineResults &other);

    /** Field-for-field equality (bit-identical runs compare equal). */
    bool operator==(const EngineResults &other) const;
};

} // namespace dirsim::coherence

#endif // DIRSIM_COHERENCE_RESULTS_HH
