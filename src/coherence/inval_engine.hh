/**
 * @file
 * Write-invalidate state engine with unbounded copies.
 *
 * Implements the state-change model shared by Dir0B, WTI, DirnNB,
 * DiriB, the Berkeley-Ownership estimate and the Yen-Fu refinement:
 * a clean block may reside in any number of caches, a dirty block in
 * exactly one; a write invalidates all other copies; a read miss to a
 * dirty block flushes it to memory and the ex-owner keeps a clean
 * copy.
 *
 * Optionally carries a real directory organisation (DirEntry) per
 * block, recording what that organisation would have done —
 * directed invalidations, broadcasts, and overshoot — and optionally
 * a finite TagStore per cache for the finite-cache extension.
 */

#ifndef DIRSIM_COHERENCE_INVAL_ENGINE_HH
#define DIRSIM_COHERENCE_INVAL_ENGINE_HH

#include <functional>
#include <memory>
#include <vector>

#include "coherence/engine.hh"
#include "directory/arena.hh"
#include "directory/dir_cache.hh"
#include "directory/entry.hh"
#include "mem/tag_store.hh"
#include "util/flat_map.hh"

namespace dirsim::coherence
{

/** How memory blocks are assigned home nodes (Section 2/7: memory
 *  and directory distributed with the processors). */
enum class HomePolicy
{
    None,      //!< Centralised memory; no locality tracking.
    Modulo,    //!< Home = block id mod unit count (interleaved).
    FirstTouch,//!< Home = first unit to reference the block (NUMA).
};

/** Configuration for InvalEngine. */
struct InvalEngineConfig
{
    unsigned nUnits = 4;
    /** Distributed-directory home assignment to track. */
    HomePolicy homePolicy = HomePolicy::None;
    /** Optional directory organisation to shadow (may be null). */
    const directory::DirEntryFactory *dirFactory = nullptr;
    /**
     * Optional finite-cache factory: invoked once per unit.  Null
     * means infinite caches (the paper's model).
     */
    std::function<std::unique_ptr<mem::TagStore>()> cacheFactory;
    /**
     * Finite directory-entry cache; disabled means the paper's
     * entry-per-block directory.
     */
    directory::DirCacheConfig dirCache;
};

/** The multiple-clean / single-dirty invalidation engine. */
class InvalEngine final : public CoherenceEngine
{
  public:
    explicit InvalEngine(const InvalEngineConfig &cfg);

    void access(unsigned unit, trace::RefType type,
                mem::BlockId block) override;
    void accessBatch(const BlockAccess *accs, std::size_t n) override;
    void accessPrepared(const PreparedSlice &slice) override;
    void recordInstrs(std::uint64_t n) override;
    const EngineResults &results() const override { return _results; }
    unsigned numUnits() const override { return _cfg.nUnits; }
    void reset() override;
    void reserveBlocks(std::uint64_t blocks) override;
    std::uint64_t blocksTracked() const override
    {
        return _blocks.size();
    }

    /** Exact holder mask of @p block (tests / diagnostics). */
    std::uint64_t holders(mem::BlockId block) const;
    /** Dirty-owner unit of @p block, or -1. */
    int dirtyOwner(mem::BlockId block) const;
    /** The finite directory cache, or null when disabled. */
    const directory::DirectoryCache *dirCache() const
    {
        return _dirCache.get();
    }

  private:
    struct BlockState
    {
        std::uint64_t holders = 0;
        std::int16_t owner = -1; //!< Dirty owner, -1 when clean.
        std::int16_t home = -1;  //!< Home node (when tracked).
        bool referenced = false;
        /** Arena handle of the shadowed directory entry (npos when
         *  no organisation is shadowed). */
        directory::DirEntryArena::Index dir =
            directory::DirEntryArena::npos;
    };

    BlockState &lookup(mem::BlockId block);
    /** The shadowed entry of @p st, or null when none. */
    directory::DirEntry *dirOf(const BlockState &st)
    {
        return st.dir == directory::DirEntryArena::npos
                   ? nullptr
                   : &_dirArena.entry(st.dir);
    }
    void handleRead(unsigned unit, mem::BlockId block, BlockState &st);
    void handleWrite(unsigned unit, mem::BlockId block, BlockState &st);
    /** Classify a directory/memory transaction by home locality. */
    void recordHomeUse(unsigned unit, BlockState &st,
                       mem::BlockId block);
    /** Record what the shadowed directory would send for this write. */
    void recordDirActivity(unsigned unit, bool unitHasCopy,
                           const BlockState &st);
    /** Install @p block in @p unit's finite cache, evicting as needed. */
    void fillCache(unsigned unit, mem::BlockId block);
    /** Remove copies in @p mask (tag stores + holder bits). */
    void invalidateMask(mem::BlockId block, BlockState &st,
                        std::uint64_t mask);
    /**
     * Look up @p block in the finite directory cache (no-op when
     * disabled), force-invalidating every copy of the entry the fill
     * displaced.  Called on every directory transaction — all misses
     * and write hits to clean blocks — never on pure cache hits.
     */
    void touchDirCache(mem::BlockId block);

    InvalEngineConfig _cfg;
    EngineResults _results;
    util::FlatMap<mem::BlockId, BlockState> _blocks;
    directory::DirEntryArena _dirArena;
    std::vector<std::unique_ptr<mem::TagStore>> _caches;
    std::unique_ptr<directory::DirectoryCache> _dirCache;
};

} // namespace dirsim::coherence

#endif // DIRSIM_COHERENCE_INVAL_ENGINE_HH
