/**
 * @file
 * Multi-configuration DiriNB engine: every pointer count of a sweep
 * in one pass over one shared block table.
 *
 * The paper's central axis re-runs the same protocol at pointer
 * counts i = 1..8.  The per-block *key set* is identical across those
 * runs — only the per-configuration state differs — so replaying them
 * as k independent LimitedEngines costs k FlatMap probes per
 * reference on identical keys.  In the spirit of single-pass
 * multi-configuration cache simulation (Sugumar/Abraham), this engine
 * keeps ONE FlatMap from block to an arena entry whose lanes hold
 * each configuration's state side by side: per entry, k holder masks
 * then k fill-order queues, packed contiguously (at the default
 * four-lane sweep the whole entry is exactly one cache line), with
 * the cold owner/referenced words in parallel side arenas.  Each
 * reference is one probe + k lane transitions, demultiplexing into k
 * independent EngineResults.
 *
 * The lane transitions are the *same inline functions* LimitedEngine
 * executes (coherence/limited_policy.hh), so lane l is bit-identical
 * to LimitedEngine(nUnits, pointerCounts[l]) — the differential and
 * golden suites hold it to that, per lane, including the engine name.
 *
 * Finite directory caches are out of scope by design: eviction state
 * (LRU order, victim choice) is per-configuration, which would undo
 * the sharing — callers fall back to independent engines when a
 * DirCacheConfig is set (analysis/evaluation.cc does this
 * automatically).
 */

#ifndef DIRSIM_COHERENCE_MULTI_LIMITED_ENGINE_HH
#define DIRSIM_COHERENCE_MULTI_LIMITED_ENGINE_HH

#include <cstdint>
#include <vector>

#include "coherence/engine.hh"
#include "coherence/limited_policy.hh"
#include "util/flat_map.hh"
#include "util/simd.hh"

namespace dirsim::coherence
{

/** k DiriNB configurations over one shared block table. */
class MultiLimitedEngine final : public CoherenceEngine
{
  public:
    /**
     * @param nUnits Number of caches, in [1, 64].
     * @param pointerCounts One DiriNB pointer count per lane, each
     *        validated and clamped exactly as LimitedEngine does
     *        (>= 1, clamped to nUnits, at most 8 after clamping).
     *        Duplicates are allowed (clamping can create them) and
     *        simply run as independent identical lanes.
     */
    MultiLimitedEngine(unsigned nUnits,
                       const std::vector<unsigned> &pointerCounts);

    void access(unsigned unit, trace::RefType type,
                mem::BlockId block) override;
    void accessBatch(const BlockAccess *accs, std::size_t n) override;
    void accessPrepared(const PreparedSlice &slice) override;
    void recordInstrs(std::uint64_t n) override;
    /** Lane 0's results — harvest per lane via laneResults(). */
    const EngineResults &results() const override
    {
        return _results.front();
    }
    unsigned numUnits() const override { return _nUnits; }
    void reset() override;
    void reserveBlocks(std::uint64_t blocks) override;
    std::uint64_t blocksTracked() const override
    {
        return _blocks.size();
    }

    std::size_t numLanes() const { return _results.size(); }
    /** Lane @p lane's pointer count, after clamping. */
    unsigned lanePointers(std::size_t lane) const
    {
        return _pointers[lane];
    }
    /**
     * Lane @p lane's results — bit-identical to a
     * LimitedEngine(nUnits, pointerCounts[lane]) run over the same
     * stream, name included.
     */
    const EngineResults &laneResults(std::size_t lane) const
    {
        return _results[lane];
    }

  private:
    /** The arena entry for @p block, appending a fresh one (all
     *  lanes empty) on first touch. */
    std::uint32_t entryFor(mem::BlockId block);
    void handleRead(unsigned unit, std::uint32_t entry);
    void handleWrite(unsigned unit, std::uint32_t entry);

    unsigned _nUnits;
    unsigned _k; //!< Lane count.
    /**
     * u64 words per arena entry: k masks then k fill queues.  The
     * base is 64-byte aligned (AlignedVector), so the paper's
     * four-lane {1,2,4,8} sweep packs each block's hot state into
     * exactly one cache line.
     */
    std::size_t _stride;
    std::vector<unsigned> _pointers; //!< Clamped, one per lane.
    std::vector<EngineResults> _results;
    util::FlatMap<mem::BlockId, std::uint32_t> _blocks;
    /** Hot lane words: [entry * _stride): masks[k], fillqs[k]. */
    util::AlignedVector<std::uint64_t> _words;
    /** Cold lane fields, k per entry. */
    std::vector<std::int16_t> _owners;
    std::vector<std::uint8_t> _referenced;
    std::uint32_t _entries = 0;
};

} // namespace dirsim::coherence

#endif // DIRSIM_COHERENCE_MULTI_LIMITED_ENGINE_HH
