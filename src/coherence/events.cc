#include "coherence/events.hh"

namespace dirsim::coherence
{

const std::string &
eventName(Event event)
{
    static const std::array<std::string, numEvents> names = {
        "instr",
        "rd-hit",
        "rm-blk-cln",
        "rm-blk-drty",
        "rm-memory",
        "rm-first-ref",
        "wh-blk-drty",
        "wh-blk-cln-excl",
        "wh-blk-cln-shared",
        "wh-distrib",
        "wh-local",
        "wm-blk-cln",
        "wm-blk-drty",
        "wm-memory",
        "wm-first-ref",
    };
    return names[static_cast<std::size_t>(event)];
}

void
EventCounts::merge(const EventCounts &other)
{
    for (std::size_t e = 0; e < numEvents; ++e)
        _counts[e] += other._counts[e];
    _totalRefs += other._totalRefs;
}

double
EventCounts::frac(Event event) const
{
    if (_totalRefs == 0)
        return 0.0;
    return static_cast<double>(count(event)) /
           static_cast<double>(_totalRefs);
}

std::uint64_t
EventCounts::reads() const
{
    return count(Event::RdHit) + count(Event::RmBlkCln) +
           count(Event::RmBlkDrty) + count(Event::RmMemory) +
           count(Event::RmFirstRef);
}

std::uint64_t
EventCounts::writes() const
{
    return writeHits() + writeMisses() + count(Event::WmFirstRef);
}

std::uint64_t
EventCounts::readMisses() const
{
    return count(Event::RmBlkCln) + count(Event::RmBlkDrty) +
           count(Event::RmMemory);
}

std::uint64_t
EventCounts::writeMisses() const
{
    return count(Event::WmBlkCln) + count(Event::WmBlkDrty) +
           count(Event::WmMemory);
}

std::uint64_t
EventCounts::writeHits() const
{
    return count(Event::WhBlkDrty) + count(Event::WhBlkClnExcl) +
           count(Event::WhBlkClnShared) + count(Event::WhDistrib) +
           count(Event::WhLocal);
}

std::uint64_t
EventCounts::writeHitsClean() const
{
    return count(Event::WhBlkClnExcl) + count(Event::WhBlkClnShared);
}

} // namespace dirsim::coherence
