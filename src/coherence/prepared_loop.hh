/**
 * @file
 * Shared strip-mined dispatch loop for accessPrepared overrides.
 *
 * Every engine's accessPrepared is the same loop with a different
 * body: decode the packed type+flags byte, then run the protocol's
 * access logic against the per-block table.  This helper hoists the
 * decode out of the loop — util::decodeTypes() strips the whole
 * strip's type lane in one branchless SIMD/SWAR pass — and issues a
 * software prefetch for the block-table probe a few references ahead
 * of the dispatch point, so the probe's cache line is in flight while
 * earlier references are still being processed.
 *
 * The strip (util::kClassifyStripRefs) is sized so the decoded type
 * lane plus the column bytes it shadows stay L1-resident.  Dispatch
 * order is exactly slice order — the strip structure is invisible to
 * the coherence model, like span boundaries (trace/prepared.hh).
 *
 * Usage, from inside an engine member function (the lambdas capture
 * `this`, so private members stay private):
 *
 *   forEachPreparedRef(
 *       slice,
 *       [this](mem::BlockId b) { _blocks.prefetch(b); },
 *       [this](unsigned u, trace::RefType t, mem::BlockId b) {
 *           access(u, t, b);
 *       });
 *
 * The engine classes are final, so the access() call devirtualises
 * and inlines into the strip loop.
 */

#ifndef DIRSIM_COHERENCE_PREPARED_LOOP_HH
#define DIRSIM_COHERENCE_PREPARED_LOOP_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "coherence/engine.hh"
#include "trace/record.hh"
#include "util/simd.hh"

namespace dirsim::coherence
{

/**
 * Dispatch every reference of @p slice, in order, to @p access
 * (unit, type, block), with the packed byte pre-decoded per strip and
 * @p prefetchProbe (block) invoked util::kPrefetchDistance references
 * ahead of the dispatch point.
 */
template <typename PrefetchFn, typename AccessFn>
inline void
forEachPreparedRef(const PreparedSlice &slice, PrefetchFn &&prefetchProbe,
                   AccessFn &&access)
{
    alignas(util::kCacheLineBytes)
        std::uint8_t types[util::kClassifyStripRefs];
    for (std::size_t base = 0; base < slice.n;
         base += util::kClassifyStripRefs) {
        const std::size_t n =
            std::min(util::kClassifyStripRefs, slice.n - base);
        util::decodeTypes(slice.typeFlags + base, types, n);
        const std::uint32_t *block = slice.block + base;
        const std::uint8_t *unit = slice.unit + base;
        const std::size_t fetchable =
            n > util::kPrefetchDistance ? n - util::kPrefetchDistance
                                        : 0;
        for (std::size_t i = 0; i < fetchable; ++i) {
            prefetchProbe(block[i + util::kPrefetchDistance]);
            access(unit[i], static_cast<trace::RefType>(types[i]),
                   block[i]);
        }
        for (std::size_t i = fetchable; i < n; ++i)
            access(unit[i], static_cast<trace::RefType>(types[i]),
                   block[i]);
    }
}

/**
 * Prefetch-free variant: the same strip-mined dispatch with no probe
 * hints.  Engines pick this when their block table is small enough
 * to be cache-resident (util::FlatMap::prefetchProfitable()) — the
 * hint's extra hash per reference would be pure overhead there, and
 * hoisting that decision out of the loop keeps the hot path free of
 * a per-reference capacity check.
 */
template <typename AccessFn>
inline void
forEachPreparedRef(const PreparedSlice &slice, AccessFn &&access)
{
    alignas(util::kCacheLineBytes)
        std::uint8_t types[util::kClassifyStripRefs];
    for (std::size_t base = 0; base < slice.n;
         base += util::kClassifyStripRefs) {
        const std::size_t n =
            std::min(util::kClassifyStripRefs, slice.n - base);
        util::decodeTypes(slice.typeFlags + base, types, n);
        const std::uint32_t *block = slice.block + base;
        const std::uint8_t *unit = slice.unit + base;
        for (std::size_t i = 0; i < n; ++i)
            access(unit[i], static_cast<trace::RefType>(types[i]),
                   block[i]);
    }
}

/**
 * The whole accessPrepared body every block-table engine shares:
 * strip-mined dispatch into @p engine .access(), with the probe
 * prefetch enabled iff @p blocks (the engine's per-block FlatMap) has
 * outgrown the cache (util::FlatMap::prefetchProfitable()).  The
 * prefetch-or-not branch is hoisted out of the loop here, once, so
 * every engine's override is a single call:
 *
 *   void Engine::accessPrepared(const PreparedSlice &slice)
 *   {
 *       stripMinedAccessPrepared(*this, _blocks, slice);
 *   }
 *
 * The engine classes are final, so the access() call devirtualises
 * and inlines into the strip loop.
 */
template <typename Engine, typename BlockTable>
inline void
stripMinedAccessPrepared(Engine &engine, BlockTable &blocks,
                         const PreparedSlice &slice)
{
    const auto dispatch =
        [&engine](unsigned unit, trace::RefType type,
                  mem::BlockId block) {
            engine.access(unit, type, block);
        };
    if (blocks.prefetchProfitable()) {
        forEachPreparedRef(
            slice,
            [&blocks](mem::BlockId block) { blocks.prefetch(block); },
            dispatch);
    } else {
        forEachPreparedRef(slice, dispatch);
    }
}

} // namespace dirsim::coherence

#endif // DIRSIM_COHERENCE_PREPARED_LOOP_HH
