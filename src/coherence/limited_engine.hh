/**
 * @file
 * Limited-copy (no-broadcast) state engine: DiriNB.
 *
 * At most i caches may hold a block simultaneously; the directory
 * keeps i pointers and never broadcasts.  When an (i+1)-th cache read
 * misses, the directory invalidates one existing copy (oldest first)
 * to free a pointer — a "displacement invalidation".  Dir1NB, the
 * most restrictive scheme the paper evaluates, is the i = 1 instance:
 * every miss moves the sole copy between caches, which is what makes
 * spin locks bounce (Section 5.2).
 *
 * On a read miss to a dirty block the ex-owner's copy is written back;
 * with i = 1 the ex-owner must also be invalidated, with i >= 2 it
 * keeps a clean copy.
 */

#ifndef DIRSIM_COHERENCE_LIMITED_ENGINE_HH
#define DIRSIM_COHERENCE_LIMITED_ENGINE_HH

#include <cstdint>
#include <memory>

#include "coherence/engine.hh"
#include "coherence/limited_policy.hh"
#include "directory/dir_cache.hh"
#include "util/flat_map.hh"

namespace dirsim::coherence
{

/** The DiriNB engine; i = 1 gives Dir1NB. */
class LimitedEngine final : public CoherenceEngine
{
  public:
    /**
     * @param nUnits Number of caches.
     * @param nPointers The i of DiriNB; 1 <= i <= nUnits, and at
     *        most 8 after clamping to nUnits — the paper's no-
     *        broadcast sweep tops out at Dir8NB, and the bound keeps
     *        every block's fill-order queue inline in one 64-bit
     *        word (see LimitedLane::fillq).
     * @param dirCache Optional finite directory-entry cache; the
     *        default (disabled) keeps an entry per block.
     */
    LimitedEngine(unsigned nUnits, unsigned nPointers,
                  const directory::DirCacheConfig &dirCache = {});

    void access(unsigned unit, trace::RefType type,
                mem::BlockId block) override;
    void accessBatch(const BlockAccess *accs, std::size_t n) override;
    void accessPrepared(const PreparedSlice &slice) override;
    void recordInstrs(std::uint64_t n) override;
    const EngineResults &results() const override { return _results; }
    unsigned numUnits() const override { return _nUnits; }
    void reset() override;
    void reserveBlocks(std::uint64_t blocks) override
    {
        _blocks.reserve(blocks);
        if (_dirCache)
            _dirCache->reserveBlocks(blocks);
    }
    std::uint64_t blocksTracked() const override
    {
        return _blocks.size();
    }

    unsigned numPointers() const { return _nPointers; }
    /** The finite directory cache, or null when disabled. */
    const directory::DirectoryCache *dirCache() const
    {
        return _dirCache.get();
    }

  private:
    /**
     * A block's whole directory state is one LimitedLane — the shared
     * transition core in limited_policy.hh operates on it directly,
     * so this engine and MultiLimitedEngine provably execute the same
     * protocol.
     */
    using BlockState = LimitedLane;

    void handleRead(unsigned unit, mem::BlockId block, BlockState &st);
    void handleWrite(unsigned unit, mem::BlockId block,
                     BlockState &st);
    /** Directory-cache lookup on a directory transaction; evicting a
     *  resident entry force-invalidates the victim's copies. */
    void touchDirCache(mem::BlockId block);

    unsigned _nUnits;
    unsigned _nPointers;
    EngineResults _results;
    util::FlatMap<mem::BlockId, BlockState> _blocks;
    std::unique_ptr<directory::DirectoryCache> _dirCache;
};

} // namespace dirsim::coherence

#endif // DIRSIM_COHERENCE_LIMITED_ENGINE_HH
