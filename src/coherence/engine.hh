/**
 * @file
 * Coherence engine interface.
 *
 * An engine implements one *state-change specification* (the paper's
 * term): how the set of cached copies evolves as references stream by.
 * It classifies every reference into an Event and maintains the
 * statistics of EngineResults.  Costing is entirely separate (see
 * sim/cost_model.hh): several protocols that share a state model —
 * Dir0B, WTI, Berkeley, Yen-Fu, DirnNB, DiriB — are costed from a
 * single engine run, exactly as the paper does.
 */

#ifndef DIRSIM_COHERENCE_ENGINE_HH
#define DIRSIM_COHERENCE_ENGINE_HH

#include "coherence/results.hh"
#include "mem/block.hh"
#include "trace/record.hh"

namespace dirsim::coherence
{

/** Abstract trace-driven coherence state engine. */
class CoherenceEngine
{
  public:
    virtual ~CoherenceEngine() = default;

    /**
     * Process one reference.
     *
     * @param unit Sharing-domain index (process or processor) in
     *             [0, nUnits).
     * @param type Reference type; instruction fetches are counted but
     *             cause no coherence action (Section 4 of the paper).
     * @param block Coherence block identifier.
     */
    virtual void access(unsigned unit, trace::RefType type,
                        mem::BlockId block) = 0;

    /** Accumulated statistics. */
    virtual const EngineResults &results() const = 0;

    /** Number of caches in the sharing domain. */
    virtual unsigned numUnits() const = 0;

    /** Drop all state and statistics. */
    virtual void reset() = 0;
};

} // namespace dirsim::coherence

#endif // DIRSIM_COHERENCE_ENGINE_HH
