/**
 * @file
 * Coherence engine interface.
 *
 * An engine implements one *state-change specification* (the paper's
 * term): how the set of cached copies evolves as references stream by.
 * It classifies every reference into an Event and maintains the
 * statistics of EngineResults.  Costing is entirely separate (see
 * sim/cost_model.hh): several protocols that share a state model —
 * Dir0B, WTI, Berkeley, Yen-Fu, DirnNB, DiriB — are costed from a
 * single engine run, exactly as the paper does.
 */

#ifndef DIRSIM_COHERENCE_ENGINE_HH
#define DIRSIM_COHERENCE_ENGINE_HH

#include "coherence/results.hh"
#include "mem/block.hh"
#include "trace/record.hh"

namespace dirsim::coherence
{

/** One decoded reference, ready for engine consumption. */
struct BlockAccess
{
    unsigned unit;
    trace::RefType type;
    mem::BlockId block;
};

static_assert(std::is_trivially_copyable_v<BlockAccess>,
              "BlockAccess must be memcpy-safe for batched replay");

/**
 * A view over prepared-trace SoA columns (see trace/prepared.hh):
 * @p n data references as parallel arrays of 32-bit block index,
 * 8-bit dense unit index, and packed type+flags byte (decode with
 * trace::packedRefType / trace::packedFlags).  Instruction fetches
 * never appear in a slice — they are reported via recordInstrs().
 */
struct PreparedSlice
{
    const std::uint32_t *block;
    const std::uint8_t *unit;
    const std::uint8_t *typeFlags;
    std::size_t n;
};

/** Abstract trace-driven coherence state engine. */
class CoherenceEngine
{
  public:
    virtual ~CoherenceEngine() = default;

    /**
     * Process one reference.
     *
     * @param unit Sharing-domain index (process or processor) in
     *             [0, nUnits).
     * @param type Reference type; instruction fetches are counted but
     *             cause no coherence action (Section 4 of the paper).
     * @param block Coherence block identifier.
     */
    virtual void access(unsigned unit, trace::RefType type,
                        mem::BlockId block) = 0;

    /**
     * Process @p n decoded references in order.  Semantically exactly
     * n access() calls; concrete engines override it with an internal
     * loop so the per-reference virtual dispatch disappears (the
     * engine classes are final, letting the compiler devirtualise and
     * inline the body).
     */
    virtual void
    accessBatch(const BlockAccess *accs, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            access(accs[i].unit, accs[i].type, accs[i].block);
    }

    /**
     * Process a prepared SoA slice in order.  Semantically exactly
     * slice.n access() calls with the unpacked columns; concrete
     * engines override it with an internal loop, exactly like
     * accessBatch(), so the whole scan devirtualises.
     */
    virtual void
    accessPrepared(const PreparedSlice &slice)
    {
        for (std::size_t i = 0; i < slice.n; ++i)
            access(slice.unit[i],
                   trace::packedRefType(slice.typeFlags[i]),
                   slice.block[i]);
    }

    /**
     * Count @p n instruction fetches.  Equivalent to n access() calls
     * with RefType::Instr: no engine changes coherence state on an
     * instruction fetch, so the driver may strip them from batches
     * and report them in bulk.
     */
    virtual void
    recordInstrs(std::uint64_t n)
    {
        for (std::uint64_t i = 0; i < n; ++i)
            access(0, trace::RefType::Instr, 0);
    }

    /** Accumulated statistics. */
    virtual const EngineResults &results() const = 0;

    /** Number of caches in the sharing domain. */
    virtual unsigned numUnits() const = 0;

    /** Drop all state and statistics. */
    virtual void reset() = 0;

    /**
     * Pre-size per-block state for an expected working set.  A hint:
     * engines that track per-block state reserve their tables so the
     * hot loop never rehashes; others ignore it.
     */
    virtual void reserveBlocks(std::uint64_t /*blocks*/) {}

    /** Number of blocks with tracked state (0 if not applicable). */
    virtual std::uint64_t blocksTracked() const { return 0; }
};

} // namespace dirsim::coherence

#endif // DIRSIM_COHERENCE_ENGINE_HH
