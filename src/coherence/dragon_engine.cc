#include "coherence/dragon_engine.hh"

#include "coherence/prepared_loop.hh"

#include <cassert>
#include <stdexcept>

namespace dirsim::coherence
{

DragonEngine::DragonEngine(unsigned nUnits) : _nUnits(nUnits)
{
    if (nUnits == 0 || nUnits > 64)
        throw std::invalid_argument(
            "DragonEngine: unit count must be in [1, 64]");
    _results.name = "dragon";
}

void
DragonEngine::reset()
{
    _results = EngineResults{};
    _results.name = "dragon";
    _blocks.clear();
}

void
DragonEngine::access(unsigned unit, trace::RefType type,
                     mem::BlockId block)
{
    assert(unit < _nUnits);
    if (type == trace::RefType::Instr) {
        _results.events.record(Event::Instr);
        return;
    }
    BlockState &st = _blocks[block];
    if (type == trace::RefType::Read)
        handleRead(unit, st);
    else
        handleWrite(unit, st);
}

void
DragonEngine::accessBatch(const BlockAccess *accs, std::size_t n)
{
    // The class is final, so these calls devirtualise and inline.
    for (std::size_t i = 0; i < n; ++i)
        access(accs[i].unit, accs[i].type, accs[i].block);
}

void
DragonEngine::accessPrepared(const PreparedSlice &slice)
{
    stripMinedAccessPrepared(*this, _blocks, slice);
}

void
DragonEngine::recordInstrs(std::uint64_t n)
{
    _results.events.record(Event::Instr, n);
}

void
DragonEngine::handleRead(unsigned unit, BlockState &st)
{
    const std::uint64_t unit_bit = 1ULL << unit;
    if (st.holders & unit_bit) {
        _results.events.record(Event::RdHit);
        return;
    }
    if (!st.referenced) {
        st.referenced = true;
        _results.events.record(Event::RmFirstRef);
    } else if (st.owner >= 0) {
        // Supplied cache-to-cache by the owner; memory stays stale.
        _results.events.record(Event::RmBlkDrty);
    } else if (st.holders != 0) {
        _results.events.record(Event::RmBlkCln);
    } else {
        _results.events.record(Event::RmMemory);
    }
    st.holders |= unit_bit;
}

void
DragonEngine::handleWrite(unsigned unit, BlockState &st)
{
    const std::uint64_t unit_bit = 1ULL << unit;
    if (st.holders & unit_bit) {
        if (st.holders == unit_bit) {
            _results.events.record(Event::WhLocal);
        } else {
            // The shared line is pulled: distribute the update.  The
            // fanout histogram records how many remote copies the
            // update must reach (used by the network cost model; on a
            // bus one broadcast reaches them all).
            _results.events.record(Event::WhDistrib);
            _results.whClnFanout.sample(static_cast<std::size_t>(
                __builtin_popcountll(st.holders & ~unit_bit)));
        }
        st.owner = static_cast<std::int16_t>(unit);
        return;
    }
    if (!st.referenced) {
        st.referenced = true;
        _results.events.record(Event::WmFirstRef);
    } else if (st.owner >= 0) {
        _results.events.record(Event::WmBlkDrty);
        _results.wmClnFanout.sample(static_cast<std::size_t>(
            __builtin_popcountll(st.holders)));
    } else if (st.holders != 0) {
        _results.events.record(Event::WmBlkCln);
        _results.wmClnFanout.sample(static_cast<std::size_t>(
            __builtin_popcountll(st.holders)));
    } else {
        _results.events.record(Event::WmMemory);
    }
    st.holders |= unit_bit;
    st.owner = static_cast<std::int16_t>(unit);
}

} // namespace dirsim::coherence
