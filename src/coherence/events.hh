/**
 * @file
 * Coherence event taxonomy (the legend of Table 4 in the paper).
 *
 * Every memory reference is classified into exactly one event by a
 * coherence engine.  The paper's observation that event frequencies
 * depend only on the *state-change specification* (not on how the
 * protocol implements it) is what lets a single engine run serve
 * several protocols' cost models.
 *
 * Beyond the paper's legend we split "write hit to a clean block" into
 * the exclusive and shared cases (the Archibald-Baer "clean in exactly
 * one cache" state makes the two cost differently) and add *-Memory
 * events for misses that find the block in no cache, which occur only
 * with finite caches.
 */

#ifndef DIRSIM_COHERENCE_EVENTS_HH
#define DIRSIM_COHERENCE_EVENTS_HH

#include <array>
#include <cstdint>
#include <string>

namespace dirsim::coherence
{

/** Per-reference event classification. */
enum class Event : unsigned
{
    Instr,          //!< Instruction fetch (no coherence action).

    RdHit,          //!< Read hit.
    RmBlkCln,       //!< Read miss, block clean in another cache.
    RmBlkDrty,      //!< Read miss, block dirty in another cache.
    RmMemory,       //!< Read miss, block in no cache (finite only).
    RmFirstRef,     //!< Read miss, first reference to the block.

    WhBlkDrty,      //!< Write hit, block already dirty in this cache.
    WhBlkClnExcl,   //!< Write hit to a clean block held nowhere else.
    WhBlkClnShared, //!< Write hit to a clean block in other caches too.
    WhDistrib,      //!< Dragon: write hit, block in other caches.
    WhLocal,        //!< Dragon: write hit, block in no other cache.
    WmBlkCln,       //!< Write miss, block clean in other cache(s).
    WmBlkDrty,      //!< Write miss, block dirty in another cache.
    WmMemory,       //!< Write miss, block in no cache (finite only).
    WmFirstRef,     //!< Write miss, first reference to the block.

    NumEvents,
};

constexpr std::size_t numEvents =
    static_cast<std::size_t>(Event::NumEvents);

/** Short name used in tables ("rm-blk-cln" etc.). */
const std::string &eventName(Event event);

/** Raw counts for every event plus the reference total. */
class EventCounts
{
  public:
    EventCounts() { _counts.fill(0); }

    void
    record(Event event)
    {
        ++_counts[static_cast<std::size_t>(event)];
        ++_totalRefs;
    }

    /** Record @p n occurrences at once (bulk instruction counting). */
    void
    record(Event event, std::uint64_t n)
    {
        _counts[static_cast<std::size_t>(event)] += n;
        _totalRefs += n;
    }

    void merge(const EventCounts &other);

    std::uint64_t totalRefs() const { return _totalRefs; }
    std::uint64_t
    count(Event event) const
    {
        return _counts[static_cast<std::size_t>(event)];
    }

    /** Frequency of one event relative to all references. */
    double frac(Event event) const;

    /** @name Table 4 aggregates.
     *  @{ */
    /** All reads (hits + all miss kinds). */
    std::uint64_t reads() const;
    /** All writes. */
    std::uint64_t writes() const;
    /** Read misses excluding first references. */
    std::uint64_t readMisses() const;
    /** Write misses excluding first references. */
    std::uint64_t writeMisses() const;
    /** Write hits (all kinds). */
    std::uint64_t writeHits() const;
    /** Write hits to clean blocks (exclusive + shared). */
    std::uint64_t writeHitsClean() const;
    /** @} */

    bool
    operator==(const EventCounts &other) const
    {
        return _totalRefs == other._totalRefs &&
               _counts == other._counts;
    }

  private:
    std::array<std::uint64_t, numEvents> _counts;
    std::uint64_t _totalRefs = 0;
};

} // namespace dirsim::coherence

#endif // DIRSIM_COHERENCE_EVENTS_HH
