#include "coherence/limited_engine.hh"

#include "coherence/prepared_loop.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

namespace dirsim::coherence
{

LimitedEngine::LimitedEngine(unsigned nUnits, unsigned nPointers,
                             const directory::DirCacheConfig &dirCache)
    : _nUnits(nUnits), _nPointers(nPointers)
{
    if (nUnits == 0 || nUnits > 64)
        throw std::invalid_argument(
            "LimitedEngine: unit count must be in [1, 64]");
    if (nPointers == 0)
        throw std::invalid_argument(
            "LimitedEngine: Dir0NB makes no sense (no way to obtain "
            "exclusive access)");
    _nPointers = std::min(nPointers, nUnits);
    if (_nPointers > 8)
        throw std::invalid_argument(
            "LimitedEngine: at most 8 pointers (the paper's no-"
            "broadcast sweep tops out at Dir8NB; the bound keeps the "
            "per-block fill queue inline)");
    _results.name = "dir" + std::to_string(_nPointers) + "nb";
    if (dirCache.enabled)
        _dirCache =
            std::make_unique<directory::DirectoryCache>(dirCache);
}

void
LimitedEngine::reset()
{
    const std::string name = _results.name;
    _results = EngineResults{};
    _results.name = name;
    _blocks.clear();
    if (_dirCache)
        _dirCache->clear();
}

bool
LimitedEngine::holds(const BlockState &st, unsigned unit) const
{
    return (st.mask >> unit) & 1;
}

void
LimitedEngine::access(unsigned unit, trace::RefType type,
                      mem::BlockId block)
{
    assert(unit < _nUnits);
    if (type == trace::RefType::Instr) {
        _results.events.record(Event::Instr);
        return;
    }
    BlockState &st = _blocks[block];
    if (type == trace::RefType::Read)
        handleRead(unit, block, st);
    else
        handleWrite(unit, block, st);
}

void
LimitedEngine::accessBatch(const BlockAccess *accs, std::size_t n)
{
    // The class is final, so these calls devirtualise and inline.
    for (std::size_t i = 0; i < n; ++i)
        access(accs[i].unit, accs[i].type, accs[i].block);
}

void
LimitedEngine::accessPrepared(const PreparedSlice &slice)
{
    // Strip-mined dispatch: the type lane is pre-decoded per strip
    // and the block-table probe prefetched ahead (prepared_loop.hh).
    // The class is final, so the access() call devirtualises and
    // inlines into the strip loop.
    const auto dispatch =
        [this](unsigned unit, trace::RefType type, mem::BlockId block) {
            access(unit, type, block);
        };
    if (_blocks.prefetchProfitable()) {
        forEachPreparedRef(
            slice,
            [this](mem::BlockId block) { _blocks.prefetch(block); },
            dispatch);
    } else {
        forEachPreparedRef(slice, dispatch);
    }
}

void
LimitedEngine::recordInstrs(std::uint64_t n)
{
    _results.events.record(Event::Instr, n);
}

void
LimitedEngine::touchDirCache(mem::BlockId block)
{
    if (!_dirCache)
        return;
    const directory::DirCacheTouch touch = _dirCache->touch(block);
    if (touch.hit) {
        ++_results.dirCacheHits;
        return;
    }
    ++_results.dirCacheMisses;
    if (!touch.evicted)
        return;
    ++_results.dirCacheEvictions;
    // Non-inserting find: access() holds a BlockState reference for
    // the current block across this call.
    BlockState *victim = _blocks.find(touch.victim);
    assert(victim && "dir-cache victim must be tracked");
    _results.dirCacheEvictionInvals += std::popcount(victim->mask);
    if (victim->owner >= 0) {
        // The sole dirty copy is flushed to memory before it dies.
        victim->owner = -1;
        ++_results.dirCacheEvictionWriteBacks;
    }
    victim->mask = 0;
    victim->fillq = 0;
}

void
LimitedEngine::handleRead(unsigned unit, mem::BlockId block,
                          BlockState &st)
{
    if (holds(st, unit)) {
        _results.events.record(Event::RdHit);
        return;
    }

    touchDirCache(block);

    if (!st.referenced) {
        st.referenced = true;
        _results.events.record(Event::RmFirstRef);
    } else if (st.owner >= 0) {
        // Write back; with a single pointer the ex-owner is also
        // invalidated, otherwise it keeps a clean copy.
        _results.events.record(Event::RmBlkDrty);
        st.owner = -1;
        if (_nPointers == 1) {
            st.mask = 0;
            st.fillq = 0;
            // The forced removal of the ex-owner's copy is part of
            // the miss service, not an extra displacement.
        }
    } else if (st.mask != 0) {
        _results.events.record(Event::RmBlkCln);
    } else {
        _results.events.record(Event::RmMemory);
    }

    unsigned nHolders = std::popcount(st.mask);
    if (nHolders == 1)
        ++_results.holderGrowth12;
    if (nHolders == _nPointers) {
        // Displace the oldest holder (the queue's low byte) to free
        // a pointer for the new copy.
        st.mask &= ~(std::uint64_t(1) << (st.fillq & 0xff));
        st.fillq >>= 8;
        --nHolders;
        ++_results.displacementInvals;
    }
    st.mask |= std::uint64_t(1) << unit;
    st.fillq |= std::uint64_t(unit) << (8 * nHolders);
}

void
LimitedEngine::handleWrite(unsigned unit, mem::BlockId block,
                           BlockState &st)
{
    if (holds(st, unit) && st.owner == static_cast<int>(unit)) {
        _results.events.record(Event::WhBlkDrty);
        return;
    }

    // A miss, or a hit to a clean copy: the directory is consulted.
    touchDirCache(block);

    if (holds(st, unit)) {
        assert(st.owner < 0);
        const unsigned fanout =
            std::popcount(st.mask) - 1u;
        _results.events.record(fanout == 0 ? Event::WhBlkClnExcl
                                           : Event::WhBlkClnShared);
        _results.whClnFanout.sample(fanout);
    } else if (!st.referenced) {
        st.referenced = true;
        _results.events.record(Event::WmFirstRef);
    } else if (st.owner >= 0) {
        _results.events.record(Event::WmBlkDrty);
    } else if (st.mask != 0) {
        _results.events.record(Event::WmBlkCln);
        _results.wmClnFanout.sample(
            static_cast<unsigned>(std::popcount(st.mask)));
    } else {
        _results.events.record(Event::WmMemory);
    }

    st.mask = std::uint64_t(1) << unit;
    st.fillq = unit;
    st.owner = static_cast<std::int16_t>(unit);
}

} // namespace dirsim::coherence
