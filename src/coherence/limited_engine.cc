#include "coherence/limited_engine.hh"

#include "coherence/prepared_loop.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

namespace dirsim::coherence
{

LimitedEngine::LimitedEngine(unsigned nUnits, unsigned nPointers,
                             const directory::DirCacheConfig &dirCache)
    : _nUnits(nUnits), _nPointers(nPointers)
{
    if (nUnits == 0 || nUnits > 64)
        throw std::invalid_argument(
            "LimitedEngine: unit count must be in [1, 64]");
    if (nPointers == 0)
        throw std::invalid_argument(
            "LimitedEngine: Dir0NB makes no sense (no way to obtain "
            "exclusive access)");
    _nPointers = std::min(nPointers, nUnits);
    if (_nPointers > 8)
        throw std::invalid_argument(
            "LimitedEngine: at most 8 pointers (the paper's no-"
            "broadcast sweep tops out at Dir8NB; the bound keeps the "
            "per-block fill queue inline)");
    _results.name = "dir" + std::to_string(_nPointers) + "nb";
    if (dirCache.enabled)
        _dirCache =
            std::make_unique<directory::DirectoryCache>(dirCache);
}

void
LimitedEngine::reset()
{
    const std::string name = _results.name;
    _results = EngineResults{};
    _results.name = name;
    _blocks.clear();
    if (_dirCache)
        _dirCache->clear();
}

void
LimitedEngine::access(unsigned unit, trace::RefType type,
                      mem::BlockId block)
{
    assert(unit < _nUnits);
    if (type == trace::RefType::Instr) {
        _results.events.record(Event::Instr);
        return;
    }
    BlockState &st = _blocks[block];
    if (type == trace::RefType::Read)
        handleRead(unit, block, st);
    else
        handleWrite(unit, block, st);
}

void
LimitedEngine::accessBatch(const BlockAccess *accs, std::size_t n)
{
    // The class is final, so these calls devirtualise and inline.
    for (std::size_t i = 0; i < n; ++i)
        access(accs[i].unit, accs[i].type, accs[i].block);
}

void
LimitedEngine::accessPrepared(const PreparedSlice &slice)
{
    stripMinedAccessPrepared(*this, _blocks, slice);
}

void
LimitedEngine::recordInstrs(std::uint64_t n)
{
    _results.events.record(Event::Instr, n);
}

void
LimitedEngine::touchDirCache(mem::BlockId block)
{
    if (!_dirCache)
        return;
    const directory::DirCacheTouch touch = _dirCache->touch(block);
    if (touch.hit) {
        ++_results.dirCacheHits;
        return;
    }
    ++_results.dirCacheMisses;
    if (!touch.evicted)
        return;
    ++_results.dirCacheEvictions;
    // Non-inserting find: access() holds a BlockState reference for
    // the current block across this call.
    BlockState *victim = _blocks.find(touch.victim);
    assert(victim && "dir-cache victim must be tracked");
    _results.dirCacheEvictionInvals += std::popcount(victim->mask);
    if (victim->owner >= 0) {
        // The sole dirty copy is flushed to memory before it dies.
        victim->owner = -1;
        ++_results.dirCacheEvictionWriteBacks;
    }
    victim->mask = 0;
    victim->fillq = 0;
}

void
LimitedEngine::handleRead(unsigned unit, mem::BlockId block,
                          BlockState &st)
{
    // The transition core lives in limited_policy.hh, shared with
    // MultiLimitedEngine; only the directory-cache touch between the
    // hit test and the miss service is this engine's own.
    if (laneReadHit(st, unit, _results))
        return;
    touchDirCache(block);
    laneReadMiss(st, unit, _nPointers, _results);
}

void
LimitedEngine::handleWrite(unsigned unit, mem::BlockId block,
                           BlockState &st)
{
    if (laneWriteDirtyHit(st, unit, _results))
        return;
    // A miss, or a hit to a clean copy: the directory is consulted.
    touchDirCache(block);
    laneWrite(st, unit, _results);
}

} // namespace dirsim::coherence
