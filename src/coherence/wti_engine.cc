#include "coherence/wti_engine.hh"

#include "coherence/prepared_loop.hh"

#include <cassert>
#include <stdexcept>

namespace dirsim::coherence
{

namespace
{

unsigned
popcount(std::uint64_t mask)
{
    return static_cast<unsigned>(__builtin_popcountll(mask));
}

} // namespace

WtiEngine::WtiEngine(unsigned nUnits, bool allocateOnWriteMiss)
    : _nUnits(nUnits), _allocate(allocateOnWriteMiss)
{
    if (nUnits == 0 || nUnits > 64)
        throw std::invalid_argument(
            "WtiEngine: unit count must be in [1, 64]");
    _results.name = "wti";
}

void
WtiEngine::reset()
{
    _results = EngineResults{};
    _results.name = "wti";
    _blocks.clear();
}

void
WtiEngine::access(unsigned unit, trace::RefType type,
                  mem::BlockId block)
{
    assert(unit < _nUnits);
    if (type == trace::RefType::Instr) {
        _results.events.record(Event::Instr);
        return;
    }
    BlockState &st = _blocks[block];
    if (type == trace::RefType::Read)
        handleRead(unit, st);
    else
        handleWrite(unit, st);
}

void
WtiEngine::accessBatch(const BlockAccess *accs, std::size_t n)
{
    // The class is final, so these calls devirtualise and inline.
    for (std::size_t i = 0; i < n; ++i)
        access(accs[i].unit, accs[i].type, accs[i].block);
}

void
WtiEngine::accessPrepared(const PreparedSlice &slice)
{
    stripMinedAccessPrepared(*this, _blocks, slice);
}

void
WtiEngine::recordInstrs(std::uint64_t n)
{
    _results.events.record(Event::Instr, n);
}

void
WtiEngine::handleRead(unsigned unit, BlockState &st)
{
    const std::uint64_t unit_bit = 1ULL << unit;
    if (st.holders & unit_bit) {
        _results.events.record(Event::RdHit);
        return;
    }
    if (!st.referenced) {
        st.referenced = true;
        _results.events.record(Event::RmFirstRef);
    } else if (st.holders != 0) {
        // Copies are never dirty under write-through, so any cached
        // copy is clean and memory is current.
        _results.events.record(Event::RmBlkCln);
    } else {
        _results.events.record(Event::RmMemory);
    }
    if (popcount(st.holders) == 1)
        ++_results.holderGrowth12;
    st.holders |= unit_bit;
}

void
WtiEngine::handleWrite(unsigned unit, BlockState &st)
{
    const std::uint64_t unit_bit = 1ULL << unit;
    const bool has_copy = (st.holders & unit_bit) != 0;
    const std::uint64_t others = st.holders & ~unit_bit;

    if (has_copy) {
        // The write-through is snooped; other copies invalidate.
        const unsigned fanout = popcount(others);
        _results.events.record(fanout == 0 ? Event::WhBlkClnExcl
                                           : Event::WhBlkClnShared);
        _results.whClnFanout.sample(fanout);
        st.holders = unit_bit;
        return;
    }

    if (!st.referenced) {
        st.referenced = true;
        _results.events.record(Event::WmFirstRef);
    } else if (st.holders != 0) {
        _results.events.record(Event::WmBlkCln);
        _results.wmClnFanout.sample(popcount(st.holders));
    } else {
        _results.events.record(Event::WmMemory);
    }
    // Other copies are invalidated by the snooped write-through
    // whether or not the writer allocates the block.
    st.holders = _allocate ? unit_bit : 0;
}

} // namespace dirsim::coherence
