/**
 * @file
 * Dragon (write-update) state engine.
 *
 * The update protocol of Section 3: stale copies are refreshed, never
 * invalidated, so with infinite caches a block stays in every cache
 * that ever loaded it.  The interesting events are write hits that
 * must be distributed over the bus (wh-distrib) versus purely local
 * write hits (wh-local), discriminated in hardware by the "shared"
 * bus line.  A dirty block is supplied by its owning cache on a miss
 * (rm-blk-drty / wm-blk-drty); ownership moves to the last writer.
 */

#ifndef DIRSIM_COHERENCE_DRAGON_ENGINE_HH
#define DIRSIM_COHERENCE_DRAGON_ENGINE_HH

#include "coherence/engine.hh"
#include "util/flat_map.hh"

namespace dirsim::coherence
{

/** The Dragon update-protocol engine. */
class DragonEngine final : public CoherenceEngine
{
  public:
    explicit DragonEngine(unsigned nUnits);

    void access(unsigned unit, trace::RefType type,
                mem::BlockId block) override;
    void accessBatch(const BlockAccess *accs, std::size_t n) override;
    void accessPrepared(const PreparedSlice &slice) override;
    void recordInstrs(std::uint64_t n) override;
    const EngineResults &results() const override { return _results; }
    unsigned numUnits() const override { return _nUnits; }
    void reset() override;
    void reserveBlocks(std::uint64_t blocks) override
    {
        _blocks.reserve(blocks);
    }
    std::uint64_t blocksTracked() const override
    {
        return _blocks.size();
    }

  private:
    struct BlockState
    {
        std::uint64_t holders = 0;
        /** Owning cache (memory is stale), -1 when memory is current. */
        std::int16_t owner = -1;
        bool referenced = false;
    };

    void handleRead(unsigned unit, BlockState &st);
    void handleWrite(unsigned unit, BlockState &st);

    unsigned _nUnits;
    EngineResults _results;
    util::FlatMap<mem::BlockId, BlockState> _blocks;
};

} // namespace dirsim::coherence

#endif // DIRSIM_COHERENCE_DRAGON_ENGINE_HH
