#include "bus/network.hh"

namespace dirsim::bus
{

unsigned
networkHops(const NetworkParams &params)
{
    unsigned hops = 0;
    unsigned reach = 1;
    while (reach < params.nNodes) {
        reach *= 2;
        ++hops;
    }
    return hops == 0 ? 1 : hops;
}

BusCosts
networkCosts(const NetworkParams &params)
{
    const unsigned hop_cycles =
        networkHops(params) * params.cyclesPerHop;
    BusCosts costs;
    costs.name = "network-n" + std::to_string(params.nNodes);
    // Request header traverses the network; the data words follow
    // pipelined behind it.
    costs.memoryAccess = hop_cycles + params.wordsPerBlock;
    costs.cacheAccess = hop_cycles + params.wordsPerBlock;
    // Write-back: header + words to the home node; the requester
    // snarfs nothing for free on a network, but the forwarded copy is
    // pipelined with the write-back, so the same occupancy is charged.
    costs.writeBack = hop_cycles + params.wordsPerBlock;
    costs.writeWord = hop_cycles + 1;
    // The directory lives with the (distributed) memory home node.
    costs.directoryCheck = hop_cycles;
    costs.directoryOverlapsMemory = true;
    costs.invalidate = hop_cycles;
    costs.requestAddress = hop_cycles;
    return costs;
}

double
networkBroadcastCost(const NetworkParams &params)
{
    const double hop_cycles =
        static_cast<double>(networkHops(params)) * params.cyclesPerHop;
    if (params.hardwareBroadcast) {
        // One traversal of a broadcast tree.
        return hop_cycles;
    }
    // Emulated: a directed message to every other node.
    return static_cast<double>(params.nNodes - 1) * hop_cycles;
}

} // namespace dirsim::bus
