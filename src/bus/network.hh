/**
 * @file
 * Interconnection-network cost model.
 *
 * The paper's central argument is architectural: snoopy protocols
 * need low-latency broadcast, which only a bus provides, while
 * directory protocols send *directed* messages "over any arbitrary
 * interconnection network" (Section 2).  The bus models of Table 2
 * cannot express that asymmetry — on a bus a broadcast costs one
 * cycle.  This model prices operations on a point-to-point network of
 * n nodes with logarithmic diameter (hypercube/butterfly-like):
 *
 *  - a directed message costs its hop count (we charge the average
 *    diameter, ceil(log2 n) hops);
 *  - a block transfer adds one cycle per data word after the header
 *    (wormhole-style pipelining);
 *  - a broadcast without hardware support must be sent as n-1
 *    directed messages.
 *
 * The "bus cycles per reference" metric generalises to network cycles
 * of channel occupancy per reference.  networkBroadcastCost() feeds
 * CostOptions::broadcastCost so the DiriB schemes pay the true price
 * of their broadcast fallback, which is exactly the experiment the
 * paper's Section 6 taxonomy anticipates.
 */

#ifndef DIRSIM_BUS_NETWORK_HH
#define DIRSIM_BUS_NETWORK_HH

#include "bus/bus_model.hh"

namespace dirsim::bus
{

/** Parameters of the point-to-point network. */
struct NetworkParams
{
    unsigned nNodes = 16;      //!< Caches + distributed memory nodes.
    unsigned cyclesPerHop = 1; //!< Channel cycles per traversed link.
    unsigned wordsPerBlock = 4;
    /**
     * True if the network has a hardware broadcast/multicast tree
     * (cost: one tree traversal); false (default) means a broadcast
     * is emulated by n-1 directed messages.
     */
    bool hardwareBroadcast = false;
};

/** Average message distance in hops: ceil(log2 n), at least 1. */
unsigned networkHops(const NetworkParams &params);

/**
 * Per-operation cost table on the network, in channel cycles.
 * Directed invalidations cost one message; see
 * networkBroadcastCost() for the broadcast fallback price.
 */
BusCosts networkCosts(const NetworkParams &params);

/** Cycles consumed by one invalidation broadcast on this network. */
double networkBroadcastCost(const NetworkParams &params);

} // namespace dirsim::bus

#endif // DIRSIM_BUS_NETWORK_HH
