#include "bus/bus_model.hh"

namespace dirsim::bus
{

BusCosts
pipelinedBus(const BusPrimitives &prim)
{
    BusCosts costs;
    costs.name = "pipelined";
    // Separate address/data paths; the bus is not held during the
    // access, so wait states contribute no bus cycles.
    costs.memoryAccess =
        prim.sendAddress + prim.wordsPerBlock * prim.transferWord;
    costs.cacheAccess = costs.memoryAccess;
    // The address rides with the first data word.
    costs.writeBack = prim.wordsPerBlock * prim.transferWord;
    // Address and data issue together on the split paths.
    costs.writeWord = 1;
    costs.directoryCheck = prim.sendAddress;
    costs.directoryOverlapsMemory = true;
    costs.invalidate = prim.invalidate;
    costs.requestAddress = prim.sendAddress;
    return costs;
}

BusCosts
nonPipelinedBus(const BusPrimitives &prim)
{
    BusCosts costs;
    costs.name = "non-pipelined";
    // Multiplexed address/data; the bus is held while memory or a
    // remote cache responds.
    costs.memoryAccess = prim.sendAddress + prim.waitMemory +
                         prim.wordsPerBlock * prim.transferWord;
    costs.cacheAccess = prim.sendAddress + prim.waitCache +
                        prim.wordsPerBlock * prim.transferWord;
    // Memory accepts the block without holding the bus afterwards
    // (interleaved memory); the requester snarfs the data meanwhile.
    costs.writeBack = prim.wordsPerBlock * prim.transferWord;
    costs.writeWord = prim.sendAddress + prim.transferWord;
    costs.directoryCheck = prim.sendAddress + prim.waitDirectory;
    costs.directoryOverlapsMemory = true;
    costs.invalidate = prim.invalidate;
    costs.requestAddress = prim.sendAddress;
    return costs;
}

BusModels
standardBuses()
{
    return {pipelinedBus(), nonPipelinedBus()};
}

} // namespace dirsim::bus
