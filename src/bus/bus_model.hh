/**
 * @file
 * Bus timing models (Tables 1 and 2 of the paper).
 *
 * The evaluation never simulates a bus cycle-by-cycle; it multiplies
 * event frequencies by per-operation cycle costs.  Two models span the
 * sophistication range the paper considers:
 *
 *  - Pipelined: separate address and data paths; the bus is released
 *    during memory access.  Memory or remote-cache read: 5 cycles
 *    (1 address + 4 data words).  Write-back: 4 cycles (address rides
 *    with the first data word; the requester snarfs the data).
 *    Write-through / write-update: 1.  Directory check: 1.
 *    Invalidate: 1.
 *  - Non-pipelined: multiplexed address/data; the bus is held during
 *    the access.  Memory read: 7 (1 address + 2 memory wait + 4 data);
 *    remote-cache read: 6 (cache wait is 1); write-back: 4 (memory
 *    wait is not on the bus); write-through/update: 2; directory
 *    check: 3 (1 address + 2 directory wait), overlapped with a
 *    concurrent memory access when one exists; invalidate: 1.
 *
 * Both models derive from the fundamental operation timings of
 * Table 1, exposed as BusPrimitives so custom models can be composed.
 */

#ifndef DIRSIM_BUS_BUS_MODEL_HH
#define DIRSIM_BUS_BUS_MODEL_HH

#include <string>

namespace dirsim::bus
{

/** Table 1: timings of fundamental bus operations, in bus cycles. */
struct BusPrimitives
{
    unsigned sendAddress = 1;   //!< Send an address over the bus.
    unsigned transferWord = 1;  //!< Transfer one 32-bit data word.
    unsigned invalidate = 1;    //!< Deliver an invalidation.
    unsigned waitDirectory = 2; //!< Directory access latency.
    unsigned waitMemory = 2;    //!< Main-memory access latency.
    unsigned waitCache = 1;     //!< Remote-cache access latency.
    unsigned wordsPerBlock = 4; //!< Block size in words (16 bytes).
};

/** Table 2: per-operation bus-cycle costs for one bus organisation. */
struct BusCosts
{
    std::string name;
    /** Read a block from main memory. */
    unsigned memoryAccess = 0;
    /** Read a block from another cache. */
    unsigned cacheAccess = 0;
    /** Write a dirty block back (requester receives the data too). */
    unsigned writeBack = 0;
    /** Write one word through to memory or update a remote copy. */
    unsigned writeWord = 0;
    /** Query the directory (when not overlapped). */
    unsigned directoryCheck = 0;
    /**
     * True when a directory check issued alongside a memory access
     * costs no extra bus cycles (the paper overlaps them whenever a
     * memory access is already in flight).
     */
    bool directoryOverlapsMemory = true;
    /** Deliver one invalidation (single or broadcast). */
    unsigned invalidate = 0;
    /**
     * Bare address send for a request that is answered by another
     * cache's write-back (no memory read, directory overlapped).
     */
    unsigned requestAddress = 1;
};

/** Build the pipelined-bus cost table from primitives. */
BusCosts pipelinedBus(const BusPrimitives &prim = BusPrimitives{});
/** Build the non-pipelined-bus cost table from primitives. */
BusCosts nonPipelinedBus(const BusPrimitives &prim = BusPrimitives{});

/** Both standard models, pipelined first (Figure 2's bar endpoints). */
struct BusModels
{
    BusCosts pipelined;
    BusCosts nonPipelined;
};

/** The paper's two bus models with default primitives. */
BusModels standardBuses();

} // namespace dirsim::bus

#endif // DIRSIM_BUS_BUS_MODEL_HH
