/**
 * @file
 * Preset workload configurations.
 *
 * Three presets stand in for the paper's three ATUM traces (Table 3):
 *
 *  - pops: parallel OPS5 rule engine.  Lock-bound: roughly one third
 *    of its data reads are test-and-test-and-set spins; read/write
 *    ratio ~4.8; ~10 % system references.
 *  - thor: parallel logic simulator.  Also spin-heavy, lower
 *    instruction fraction, ~15 % system references, read/write ~3.8.
 *  - pero: parallel VLSI router.  Few locks; its high read ratio
 *    (~3.1) comes from the algorithm; much smaller fraction of shared
 *    references, so coherence traffic is low.
 *
 * Reference counts are scaled to ~1/4 of the published traces by
 * default so the full evaluation runs in seconds; pass fullSize=true
 * to match the published ~3.1-3.5 M references.  Event *frequencies*
 * are insensitive to this scaling (verified by the test suite).
 */

#ifndef DIRSIM_GEN_WORKLOADS_HH
#define DIRSIM_GEN_WORKLOADS_HH

#include <cstdint>
#include <vector>

#include "gen/workload.hh"

namespace dirsim::gen
{

/** The parallel OPS5 rule-engine analogue. */
WorkloadConfig popsConfig(bool fullSize = false);
/** The parallel logic-simulator analogue. */
WorkloadConfig thorConfig(bool fullSize = false);
/** The parallel VLSI-router analogue. */
WorkloadConfig peroConfig(bool fullSize = false);

/** All three presets, in paper order. */
std::vector<WorkloadConfig> standardWorkloads(bool fullSize = false);

/**
 * A generic workload scaled to @p nCpus processors (one process per
 * CPU), used for the large-machine extension study the paper proposes
 * as future work.  Shared-region sizes and reference counts scale with
 * the processor count.
 */
WorkloadConfig scaledConfig(unsigned nCpus, std::uint64_t totalRefs);

} // namespace dirsim::gen

#endif // DIRSIM_GEN_WORKLOADS_HH
