#include "gen/address_space.hh"

namespace dirsim::gen
{

std::uint64_t
expectedUniqueBlocks(const AddressSpaceConfig &cfg)
{
    std::uint64_t blocks = 0;
    blocks += static_cast<std::uint64_t>(cfg.codeBlocksPerProc) *
              cfg.nProcesses;
    blocks += static_cast<std::uint64_t>(cfg.privateBlocksPerProc) *
              cfg.nProcesses;
    blocks += cfg.sharedReadBlocks;
    blocks += cfg.sharedWriteBlocks;
    blocks += static_cast<std::uint64_t>(cfg.migratoryObjects) *
              cfg.blocksPerMigratoryObject;
    // Each lock word gets its own block unless the false-sharing mode
    // packs two per block.
    blocks += cfg.falseSharingLocks ? (cfg.nLocks + 1) / 2 : cfg.nLocks;
    blocks += static_cast<std::uint64_t>(cfg.nLocks) *
              cfg.protectedBlocksPerLock;
    blocks += cfg.osCodeBlocks;
    blocks += cfg.osSharedBlocks;
    blocks += static_cast<std::uint64_t>(cfg.osPerCpuBlocks) * cfg.nCpus;
    return blocks;
}

} // namespace dirsim::gen
