#include "gen/address_space.hh"

#include <algorithm>

namespace dirsim::gen
{

std::uint64_t
AddressSpace::codeAddr(unsigned pid, std::uint64_t block) const
{
    return codeBase + pid * perProcStride +
           (block % _cfg.codeBlocksPerProc) * _cfg.blockBytes;
}

std::uint64_t
AddressSpace::privateAddr(unsigned pid, Rng &rng) const
{
    const std::uint64_t base = privateBase + pid * perProcStride;
    std::uint64_t block;
    if (rng.chance(_cfg.privateHotFrac))
        block = rng.nextBelow(_cfg.privateHotBlocks);
    else
        block = rng.nextBelow(_cfg.privateBlocksPerProc);
    // Random word within the block so word-level addresses vary.
    return base + block * _cfg.blockBytes +
           rng.nextBelow(_cfg.blockBytes / _cfg.wordBytes) *
               _cfg.wordBytes;
}

std::uint64_t
AddressSpace::sharedReadAddr(Rng &rng) const
{
    const std::uint64_t block = rng.nextBelow(_cfg.sharedReadBlocks);
    return sharedReadBase + block * _cfg.blockBytes;
}

std::uint64_t
AddressSpace::sharedWriteAddr(Rng &rng) const
{
    const std::uint64_t block = rng.nextBelow(_cfg.sharedWriteBlocks);
    return sharedWriteBase + block * _cfg.blockBytes;
}

std::uint64_t
AddressSpace::sharedWriteOwnAddr(unsigned pid, Rng &rng) const
{
    // Slots are partitioned round-robin across producers.
    const std::uint32_t per_proc =
        std::max(1u, _cfg.sharedWriteBlocks / _cfg.nProcesses);
    const std::uint64_t k = rng.nextBelow(per_proc);
    const std::uint64_t block =
        (k * _cfg.nProcesses + pid) % _cfg.sharedWriteBlocks;
    return sharedWriteBase + block * _cfg.blockBytes;
}

std::uint64_t
AddressSpace::migratoryAddr(std::uint32_t obj,
                            std::uint32_t blockIdx) const
{
    return migratoryBase +
           (static_cast<std::uint64_t>(obj) *
                _cfg.blocksPerMigratoryObject +
            blockIdx % _cfg.blocksPerMigratoryObject) *
               _cfg.blockBytes;
}

std::uint64_t
AddressSpace::lockAddr(std::uint32_t lock) const
{
    if (_cfg.falseSharingLocks) {
        // Two lock words share one block.
        return lockBase + (lock / 2) * _cfg.blockBytes +
               (lock % 2) * _cfg.wordBytes;
    }
    return lockBase + static_cast<std::uint64_t>(lock) * _cfg.blockBytes;
}

std::uint64_t
AddressSpace::protectedAddr(std::uint32_t lock, Rng &rng) const
{
    const std::uint64_t block =
        static_cast<std::uint64_t>(lock) * _cfg.protectedBlocksPerLock +
        rng.nextBelow(_cfg.protectedBlocksPerLock);
    return protectedBase + block * _cfg.blockBytes;
}

std::uint64_t
AddressSpace::osCodeAddr(Rng &rng) const
{
    return osCodeBase + rng.nextBelow(_cfg.osCodeBlocks) *
                            _cfg.blockBytes;
}

std::uint64_t
AddressSpace::osSharedAddr(Rng &rng) const
{
    return osSharedBase + rng.nextBelow(_cfg.osSharedBlocks) *
                              _cfg.blockBytes;
}

std::uint64_t
AddressSpace::osPerCpuAddr(unsigned cpu, Rng &rng) const
{
    return osPerCpuBase + cpu * perCpuStride +
           rng.nextBelow(_cfg.osPerCpuBlocks) * _cfg.blockBytes;
}

std::uint64_t
expectedUniqueBlocks(const AddressSpaceConfig &cfg)
{
    std::uint64_t blocks = 0;
    blocks += static_cast<std::uint64_t>(cfg.codeBlocksPerProc) *
              cfg.nProcesses;
    blocks += static_cast<std::uint64_t>(cfg.privateBlocksPerProc) *
              cfg.nProcesses;
    blocks += cfg.sharedReadBlocks;
    blocks += cfg.sharedWriteBlocks;
    blocks += static_cast<std::uint64_t>(cfg.migratoryObjects) *
              cfg.blocksPerMigratoryObject;
    // Each lock word gets its own block unless the false-sharing mode
    // packs two per block.
    blocks += cfg.falseSharingLocks ? (cfg.nLocks + 1) / 2 : cfg.nLocks;
    blocks += static_cast<std::uint64_t>(cfg.nLocks) *
              cfg.protectedBlocksPerLock;
    blocks += cfg.osCodeBlocks;
    blocks += cfg.osSharedBlocks;
    blocks += static_cast<std::uint64_t>(cfg.osPerCpuBlocks) * cfg.nCpus;
    return blocks;
}

} // namespace dirsim::gen
