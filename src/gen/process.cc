#include "gen/process.hh"

#include <algorithm>

namespace dirsim::gen
{

using trace::FlagLockTest;
using trace::FlagLockWrite;
using trace::FlagSystem;
using trace::RefType;
using trace::TraceRecord;

ProcessEngine::ProcessEngine(std::uint16_t pid, const BehaviorConfig &cfg,
                             const BehaviorSamplers &samplers,
                             const AddressSpace &space,
                             SharedState &shared, Rng &rng)
    : _pid(pid), _cfg(cfg), _smp(samplers), _space(space),
      _shared(shared), _rng(rng)
{
    // Start each process at a distinct point in its code region.
    _pc = pid * 17;
}

TraceRecord
ProcessEngine::step(unsigned cpu)
{
    TraceRecord rec;
    // Kernel entries happen regardless of user-level mode: interrupts
    // and system calls interleave with spinning and critical sections
    // alike.  Lock state is not advanced by a kernel step.
    if (_smp.system(_rng)) {
        rec = stepSystem(cpu);
    } else {
        switch (_mode) {
          case Mode::Normal:
            rec = stepNormal();
            break;
          case Mode::Spinning:
            rec = stepSpinning();
            break;
          case Mode::Critical:
            rec = stepCritical();
            break;
        }
    }
    rec.pid = _pid;
    rec.cpu = static_cast<std::uint8_t>(cpu);
    return rec;
}

TraceRecord
ProcessEngine::stepSystem(unsigned cpu)
{
    TraceRecord rec;
    if (_smp.osInstr(_rng)) {
        rec = read(_space.osCodeAddr(_rng));
        rec.type = RefType::Instr;
    } else {
        const std::uint64_t addr = _smp.osShared(_rng)
                                       ? _space.osSharedAddr(_rng)
                                       : _space.osPerCpuAddr(cpu, _rng);
        rec = _smp.osWrite(_rng) ? write(addr) : read(addr);
    }
    rec.flags |= FlagSystem;
    return rec;
}

TraceRecord
ProcessEngine::stepNormal()
{
    if (_smp.instr(_rng))
        return instrFetch();

    // Finish read-modify-write sequences before new work.
    if (!_pendingWrites.empty()) {
        const std::uint64_t addr = _pendingWrites.back();
        _pendingWrites.pop_back();
        return write(addr);
    }

    const std::size_t category = _smp.category(_rng);
    switch (category) {
      case 0: { // Private data.
        const std::uint64_t addr = _space.privateAddr(_pid, _rng);
        return _smp.privateRead(_rng) ? read(addr) : write(addr);
      }
      case 1: { // Read-mostly shared data.
        const std::uint64_t addr = _space.sharedReadAddr(_rng);
        return _smp.sharedReadWrite(_rng) ? write(addr) : read(addr);
      }
      case 2: { // Producer/consumer shared slots.
        if (_smp.sharedSlotWrite(_rng))
            return write(_space.sharedWriteOwnAddr(_pid, _rng));
        return read(_space.sharedWriteAddr(_rng));
      }
      case 3: { // Migratory object: read, then a write burst.
        const std::uint32_t obj = pickMigratoryObject();
        _shared.migratoryOwner[obj] = _pid;
        const std::uint64_t addr = _space.migratoryAddr(obj, 0);
        for (std::uint32_t w = 0; w < _cfg.migratoryWriteBurst; ++w)
            _pendingWrites.push_back(addr);
        if (_space.config().blocksPerMigratoryObject > 1 &&
            _smp.secondMigratoryBlock(_rng)) {
            _pendingWrites.push_back(_space.migratoryAddr(obj, 1));
        }
        return read(addr);
      }
      default: { // Lock acquisition attempt.
        _lock = pickLock();
        Lock &lk = _shared.locks[_lock];
        _mode = Mode::Spinning;
        _sawFree = !lk.held;
        ++lk.waiters;
        return read(lk.addr, FlagLockTest);
      }
    }
}

TraceRecord
ProcessEngine::stepSpinning()
{
    Lock &lk = _shared.locks[_lock];
    if (_sawFree) {
        if (!lk.held) {
            // Atomic test-and-set succeeds.
            --lk.waiters;
            _shared.locks.acquire(_lock, _pid);
            _mode = Mode::Critical;
            _critRemaining = static_cast<std::uint32_t>(
                _rng.nextInRange(_cfg.critMin, _cfg.critMax));
            return write(lk.addr, FlagLockWrite);
        }
        // Lost the race: another process grabbed it first.
        _sawFree = false;
    }
    // Spin loop body: a test read, interleaved with the loop's own
    // instruction fetches.
    if (_smp.spinInstr(_rng))
        return instrFetch();
    _sawFree = !lk.held;
    return read(lk.addr, FlagLockTest);
}

TraceRecord
ProcessEngine::stepCritical()
{
    if (_critRemaining == 0) {
        // Release: a plain write to the lock word.
        _shared.locks.release(_lock);
        _mode = Mode::Normal;
        return write(_shared.locks[_lock].addr, FlagLockWrite);
    }
    --_critRemaining;
    if (_smp.instr(_rng))
        return instrFetch();
    const std::uint64_t addr =
        _smp.critProtected(_rng)
            ? _space.protectedAddr(static_cast<std::uint32_t>(_lock),
                                   _rng)
            : _space.privateAddr(_pid, _rng);
    return _smp.critWrite(_rng) ? write(addr) : read(addr);
}

TraceRecord
ProcessEngine::instrFetch()
{
    // Sequential fetch with occasional branches back into the region.
    if (_smp.instrBranch(_rng))
        _pc = _rng.nextBelow(_space.codeBlocks() * 4);
    else
        ++_pc;
    TraceRecord rec;
    rec.type = RefType::Instr;
    rec.addr = _space.codeAddr(_pid, _pc / 4);
    return rec;
}

TraceRecord
ProcessEngine::read(std::uint64_t addr, std::uint8_t flags)
{
    TraceRecord rec;
    rec.type = RefType::Read;
    rec.addr = addr;
    rec.flags = flags;
    return rec;
}

TraceRecord
ProcessEngine::write(std::uint64_t addr, std::uint8_t flags)
{
    TraceRecord rec;
    rec.type = RefType::Write;
    rec.addr = addr;
    rec.flags = flags;
    return rec;
}

std::size_t
ProcessEngine::pickLock()
{
    const std::size_t n_locks = _shared.locks.size();
    const std::size_t n_hot =
        std::min<std::size_t>(_cfg.nHotLocks, n_locks);
    if (n_hot > 0 && _smp.hotLock(_rng))
        return _rng.nextBelow(n_hot);
    return _rng.nextBelow(n_locks);
}

std::uint32_t
ProcessEngine::pickMigratoryObject()
{
    const auto n_objects =
        static_cast<std::uint32_t>(_shared.migratoryOwner.size());
    auto obj = static_cast<std::uint32_t>(_rng.nextBelow(n_objects));
    // Bias towards objects last owned by another process so the
    // migratory (dirty hand-off) pattern is exercised.
    if (_shared.migratoryOwner[obj] == _pid && _smp.migratoryRebias(_rng))
        obj = static_cast<std::uint32_t>(_rng.nextBelow(n_objects));
    return obj;
}

} // namespace dirsim::gen
