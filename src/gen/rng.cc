#include "gen/rng.hh"

namespace dirsim::gen
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : _state)
        word = splitmix64(sm);
}

std::uint64_t
Rng::nextU64()
{
    const std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
    const std::uint64_t t = _state[1] << 17;
    _state[2] ^= _state[0];
    _state[3] ^= _state[1];
    _state[1] ^= _state[2];
    _state[0] ^= _state[3];
    _state[2] ^= t;
    _state[3] = rotl(_state[3], 45);
    return result;
}

double
Rng::nextDouble()
{
    // 53 high-quality bits -> [0, 1).
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    // Multiply-shift bounded sampling; bias is negligible for the
    // bounds used here (all far below 2^32).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(nextU64()) * bound) >> 64);
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

std::uint64_t
Rng::nextInRange(std::uint64_t lo, std::uint64_t hi)
{
    return lo + nextBelow(hi - lo + 1);
}

std::size_t
Rng::pickWeighted(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights)
        total += w;
    double roll = nextDouble() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        roll -= weights[i];
        if (roll < 0.0)
            return i;
    }
    return weights.size() - 1;
}

std::uint64_t
Rng::burstLength(double p, std::uint64_t cap)
{
    std::uint64_t len = 1;
    while (len < cap && chance(p))
        ++len;
    return len;
}

} // namespace dirsim::gen
