/**
 * @file
 * Address-space layout for synthetic workloads.
 *
 * Carves a 64-bit virtual address space into the regions the paper's
 * applications exhibit: per-process code and private data, globally
 * shared read-mostly data (e.g.\ the routing grid of the PERO router),
 * write-first shared slots (producer/consumer style), migratory
 * objects handed between processes, lock words, per-lock protected
 * data, and operating-system regions.  Each lock word lives in its own
 * block by default; an optional false-sharing mode packs two lock
 * words per block to study pathological layouts.
 */

#ifndef DIRSIM_GEN_ADDRESS_SPACE_HH
#define DIRSIM_GEN_ADDRESS_SPACE_HH

#include <algorithm>
#include <cstdint>

#include "gen/rng.hh"

namespace dirsim::gen
{

/** Sizing parameters for the synthetic address space. */
struct AddressSpaceConfig
{
    unsigned nProcesses = 4;
    unsigned nCpus = 4;
    unsigned blockBytes = 16;       //!< 4 words of 4 bytes (paper).
    unsigned wordBytes = 4;

    std::uint32_t codeBlocksPerProc = 4096;
    std::uint32_t privateBlocksPerProc = 2048;
    /** Hot subset of the private region receiving most references. */
    std::uint32_t privateHotBlocks = 256;
    double privateHotFrac = 0.9;

    std::uint32_t sharedReadBlocks = 2048;
    std::uint32_t sharedWriteBlocks = 64;
    std::uint32_t migratoryObjects = 512;
    std::uint32_t blocksPerMigratoryObject = 2;
    std::uint32_t nLocks = 16;
    std::uint32_t protectedBlocksPerLock = 4;

    std::uint32_t osCodeBlocks = 2048;
    std::uint32_t osSharedBlocks = 256;
    std::uint32_t osPerCpuBlocks = 512;

    /** Pack two lock words per block (false-sharing study). */
    bool falseSharingLocks = false;
};

/**
 * Expected distinct coherence blocks a workload over @p cfg can touch:
 * the sum of every region's block count.  An upper bound (cold private
 * blocks may never be referenced) used as the reserve() hint for the
 * engines' per-block tables via sim::SimConfig::expectedBlocks.
 */
std::uint64_t expectedUniqueBlocks(const AddressSpaceConfig &cfg);

/**
 * Computes concrete byte addresses for every region.
 *
 * The samplers are defined inline: generation calls one per emitted
 * data reference, and each is a couple of multiply-adds around an Rng
 * draw — exactly the shape that wants to fold into the process
 * engines' step functions.
 */
class AddressSpace
{
  public:
    explicit AddressSpace(const AddressSpaceConfig &cfg)
        : _cfg(cfg), _privateHot(cfg.privateHotFrac)
    {
    }

    const AddressSpaceConfig &config() const { return _cfg; }

    /** Instruction address for code offset @p block of @p pid. */
    std::uint64_t codeAddr(unsigned pid, std::uint64_t block) const
    {
        return codeBase + pid * perProcStride +
               (block % _cfg.codeBlocksPerProc) * _cfg.blockBytes;
    }
    /** Number of code blocks per process. */
    std::uint64_t codeBlocks() const { return _cfg.codeBlocksPerProc; }

    /** Random private-data address for @p pid (hot/cold biased). */
    std::uint64_t privateAddr(unsigned pid, Rng &rng) const
    {
        const std::uint64_t base = privateBase + pid * perProcStride;
        std::uint64_t block;
        if (_privateHot(rng))
            block = rng.nextBelow(_cfg.privateHotBlocks);
        else
            block = rng.nextBelow(_cfg.privateBlocksPerProc);
        // Random word within the block so word-level addresses vary.
        return base + block * _cfg.blockBytes +
               rng.nextBelow(_cfg.blockBytes / _cfg.wordBytes) *
                   _cfg.wordBytes;
    }
    /** Random shared read-mostly address. */
    std::uint64_t sharedReadAddr(Rng &rng) const
    {
        const std::uint64_t block =
            rng.nextBelow(_cfg.sharedReadBlocks);
        return sharedReadBase + block * _cfg.blockBytes;
    }
    /** Random write-first shared slot address (any producer's). */
    std::uint64_t sharedWriteAddr(Rng &rng) const
    {
        const std::uint64_t block =
            rng.nextBelow(_cfg.sharedWriteBlocks);
        return sharedWriteBase + block * _cfg.blockBytes;
    }
    /** Random slot owned (produced) by @p pid. */
    std::uint64_t sharedWriteOwnAddr(unsigned pid, Rng &rng) const
    {
        // Slots are partitioned round-robin across producers.
        const std::uint32_t per_proc = std::max(
            1u, _cfg.sharedWriteBlocks / _cfg.nProcesses);
        const std::uint64_t k = rng.nextBelow(per_proc);
        const std::uint64_t block =
            (k * _cfg.nProcesses + pid) % _cfg.sharedWriteBlocks;
        return sharedWriteBase + block * _cfg.blockBytes;
    }
    /** Address of block @p blockIdx within migratory object @p obj. */
    std::uint64_t migratoryAddr(std::uint32_t obj,
                                std::uint32_t blockIdx) const
    {
        return migratoryBase +
               (static_cast<std::uint64_t>(obj) *
                    _cfg.blocksPerMigratoryObject +
                blockIdx % _cfg.blocksPerMigratoryObject) *
                   _cfg.blockBytes;
    }
    /** Address of lock word @p lock. */
    std::uint64_t lockAddr(std::uint32_t lock) const
    {
        if (_cfg.falseSharingLocks) {
            // Two lock words share one block.
            return lockBase + (lock / 2) * _cfg.blockBytes +
                   (lock % 2) * _cfg.wordBytes;
        }
        return lockBase +
               static_cast<std::uint64_t>(lock) * _cfg.blockBytes;
    }
    /** Random address within the data protected by @p lock. */
    std::uint64_t protectedAddr(std::uint32_t lock, Rng &rng) const
    {
        const std::uint64_t block =
            static_cast<std::uint64_t>(lock) *
                _cfg.protectedBlocksPerLock +
            rng.nextBelow(_cfg.protectedBlocksPerLock);
        return protectedBase + block * _cfg.blockBytes;
    }

    /** OS instruction address. */
    std::uint64_t osCodeAddr(Rng &rng) const
    {
        return osCodeBase +
               rng.nextBelow(_cfg.osCodeBlocks) * _cfg.blockBytes;
    }
    /** Random OS data address shared between CPUs. */
    std::uint64_t osSharedAddr(Rng &rng) const
    {
        return osSharedBase +
               rng.nextBelow(_cfg.osSharedBlocks) * _cfg.blockBytes;
    }
    /** Random OS data address private to @p cpu. */
    std::uint64_t osPerCpuAddr(unsigned cpu, Rng &rng) const
    {
        return osPerCpuBase + cpu * perCpuStride +
               rng.nextBelow(_cfg.osPerCpuBlocks) * _cfg.blockBytes;
    }

  private:
    // Region bases; generously spaced so regions never collide for any
    // realistic configuration.
    static constexpr std::uint64_t codeBase = 0x0100'0000ULL;
    static constexpr std::uint64_t privateBase = 0x4000'0000ULL;
    static constexpr std::uint64_t sharedReadBase = 0x1'0000'0000ULL;
    static constexpr std::uint64_t sharedWriteBase = 0x1'1000'0000ULL;
    static constexpr std::uint64_t migratoryBase = 0x1'2000'0000ULL;
    static constexpr std::uint64_t lockBase = 0x1'3000'0000ULL;
    static constexpr std::uint64_t protectedBase = 0x1'4000'0000ULL;
    static constexpr std::uint64_t osCodeBase = 0x2'0000'0000ULL;
    static constexpr std::uint64_t osSharedBase = 0x2'1000'0000ULL;
    static constexpr std::uint64_t osPerCpuBase = 0x2'2000'0000ULL;
    static constexpr std::uint64_t perProcStride = 0x0100'0000ULL;
    static constexpr std::uint64_t perCpuStride = 0x0010'0000ULL;

    AddressSpaceConfig _cfg;
    /** Precomputed hot/cold threshold (same draw sequence as the
     *  chance(privateHotFrac) call it replaces; see rng.hh). */
    FixedChance _privateHot;
};

} // namespace dirsim::gen

#endif // DIRSIM_GEN_ADDRESS_SPACE_HH
