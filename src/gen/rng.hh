/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * xoshiro256** seeded through splitmix64.  A self-contained generator
 * (rather than <random> engines) keeps trace generation bit-identical
 * across standard libraries, which the test suite relies on.
 *
 * Header-only: generation draws several values per emitted reference,
 * so the samplers must inline into the process engines' step
 * functions — an out-of-line call per draw is measurable across a
 * multi-million-reference trace.
 */

#ifndef DIRSIM_GEN_RNG_HH
#define DIRSIM_GEN_RNG_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>

namespace dirsim::gen
{

/** xoshiro256** PRNG with convenience sampling helpers. */
class Rng
{
  public:
    /** Seed deterministically from a 64-bit value. */
    explicit Rng(std::uint64_t seed = 0x5eed)
    {
        std::uint64_t sm = seed;
        for (auto &word : _state)
            word = splitmix64(sm);
    }

    /** Next raw 64-bit value. */
    std::uint64_t nextU64()
    {
        const std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
        const std::uint64_t t = _state[1] << 17;
        _state[2] ^= _state[0];
        _state[3] ^= _state[1];
        _state[1] ^= _state[2];
        _state[0] ^= _state[3];
        _state[2] ^= t;
        _state[3] = rotl(_state[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double nextDouble()
    {
        // 53 high-quality bits -> [0, 1).
        return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t nextBelow(std::uint64_t bound)
    {
        // Multiply-shift bounded sampling; bias is negligible for the
        // bounds used here (all far below 2^32).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(nextU64()) * bound) >> 64);
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return nextDouble() < p;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t nextInRange(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + nextBelow(hi - lo + 1);
    }

    /**
     * Sample an index with probability proportional to @p weights.
     * Returns weights.size()-1 on accumulated rounding error; at least
     * one weight must be positive.  Takes the weights as an
     * initializer list so the per-reference category draw in the
     * process engines never touches the heap.
     */
    std::size_t pickWeighted(std::initializer_list<double> weights)
    {
        const double *w = weights.begin();
        const std::size_t n = weights.size();
        double total = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            total += w[i];
        double roll = nextDouble() * total;
        for (std::size_t i = 0; i < n; ++i) {
            roll -= w[i];
            if (roll < 0.0)
                return i;
        }
        return n - 1;
    }

    /**
     * Geometric-like burst length: number of successes before failure
     * with continue-probability @p p, clamped to [1, cap].
     */
    std::uint64_t burstLength(double p, std::uint64_t cap)
    {
        std::uint64_t len = 1;
        while (len < cap && chance(p))
            ++len;
        return len;
    }

  private:
    static std::uint64_t splitmix64(std::uint64_t &state)
    {
        state += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    static std::uint64_t rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> _state;
};

} // namespace dirsim::gen

#endif // DIRSIM_GEN_RNG_HH
