/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * xoshiro256** seeded through splitmix64.  A self-contained generator
 * (rather than <random> engines) keeps trace generation bit-identical
 * across standard libraries, which the test suite relies on.
 *
 * Header-only: generation draws several values per emitted reference,
 * so the samplers must inline into the process engines' step
 * functions — an out-of-line call per draw is measurable across a
 * multi-million-reference trace.
 */

#ifndef DIRSIM_GEN_RNG_HH
#define DIRSIM_GEN_RNG_HH

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <initializer_list>

namespace dirsim::gen
{

/** xoshiro256** PRNG with convenience sampling helpers. */
class Rng
{
  public:
    /** Seed deterministically from a 64-bit value. */
    explicit Rng(std::uint64_t seed = 0x5eed)
    {
        std::uint64_t sm = seed;
        for (auto &word : _state)
            word = splitmix64(sm);
    }

    /** Next raw 64-bit value. */
    std::uint64_t nextU64()
    {
        const std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
        const std::uint64_t t = _state[1] << 17;
        _state[2] ^= _state[0];
        _state[3] ^= _state[1];
        _state[1] ^= _state[2];
        _state[0] ^= _state[3];
        _state[2] ^= t;
        _state[3] = rotl(_state[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double nextDouble()
    {
        // 53 high-quality bits -> [0, 1).
        return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t nextBelow(std::uint64_t bound)
    {
        // Multiply-shift bounded sampling; bias is negligible for the
        // bounds used here (all far below 2^32).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(nextU64()) * bound) >> 64);
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return nextDouble() < p;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t nextInRange(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + nextBelow(hi - lo + 1);
    }

    /**
     * Sample an index with probability proportional to @p weights.
     * Returns weights.size()-1 on accumulated rounding error; at least
     * one weight must be positive.  Takes the weights as an
     * initializer list so the per-reference category draw in the
     * process engines never touches the heap.
     */
    std::size_t pickWeighted(std::initializer_list<double> weights)
    {
        const double *w = weights.begin();
        const std::size_t n = weights.size();
        double total = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            total += w[i];
        double roll = nextDouble() * total;
        for (std::size_t i = 0; i < n; ++i) {
            roll -= w[i];
            if (roll < 0.0)
                return i;
        }
        return n - 1;
    }

    /**
     * Geometric-like burst length: number of successes before failure
     * with continue-probability @p p, clamped to [1, cap].
     */
    std::uint64_t burstLength(double p, std::uint64_t cap)
    {
        std::uint64_t len = 1;
        while (len < cap && chance(p))
            ++len;
        return len;
    }

  private:
    static std::uint64_t splitmix64(std::uint64_t &state)
    {
        state += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    static std::uint64_t rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> _state;
};

/**
 * Precomputed Bernoulli sampler, draw-for-draw identical to
 * Rng::chance(p).
 *
 * chance(p) costs an int→double convert, a double multiply and a
 * double compare per call; across the several draws every generated
 * reference makes, that is a measurable slice of the cold path.  The
 * probability is constant per workload, so the comparison folds into
 * one integer threshold computed once:
 *
 *     nextDouble() < p
 *   ⟺ (u >> 11) * 2^-53 < p          u = nextU64(), exact product
 *   ⟺ (u >> 11) < p * 2^53           both sides scale exactly: the
 *                                     53-bit integer times 2^-53 and,
 *                                     for p in (0,1), p * 2^53 round
 *                                     to no bits lost in IEEE double
 *   ⟺ (u >> 11) < ceil(p * 2^53)     integer left-hand side
 *
 * The p<=0 / p>=1 early-outs consume no draw, exactly as chance()'s
 * do, so replacing chance(p) with a FixedChance emits the same draw
 * sequence bit for bit — the golden digest suite enforces this.
 */
class FixedChance
{
  public:
    FixedChance() : FixedChance(0.0) {}

    explicit FixedChance(double p)
    {
        if (p <= 0.0) {
            _mode = Mode::AlwaysFalse;
        } else if (p >= 1.0) {
            _mode = Mode::AlwaysTrue;
        } else {
            _mode = Mode::Draw;
            // p in (0,1) here, but a NaN slips past both guards the
            // same way it does in chance(); it must still draw (and
            // always fail) without tripping the UB of casting NaN.
            _threshold = std::isnan(p)
                             ? 0
                             : static_cast<std::uint64_t>(
                                   std::ceil(p * 0x1.0p53));
        }
    }

    /** Bernoulli trial; consumes a draw iff chance(p) would. */
    bool operator()(Rng &rng) const
    {
        if (_mode != Mode::Draw)
            return _mode == Mode::AlwaysTrue;
        return (rng.nextU64() >> 11) < _threshold;
    }

    /** Decision for mantissa @p u = nextU64() >> 11 (test hook; only
     *  meaningful in draw mode). */
    bool evalDraw(std::uint64_t u) const { return u < _threshold; }
    /** True when operator() consumes a draw. */
    bool draws() const { return _mode == Mode::Draw; }

  private:
    enum class Mode : std::uint8_t { AlwaysFalse, AlwaysTrue, Draw };

    Mode _mode = Mode::AlwaysFalse;
    std::uint64_t _threshold = 0;
};

/**
 * Precomputed categorical sampler, draw-for-draw identical to
 * Rng::pickWeighted over a fixed weight list.
 *
 * pickWeighted() always consumes exactly one draw and then classifies
 * roll = fl(fl(u * 2^-53) * total) by sequential subtraction.  Every
 * operation in that chain is a rounded multiply/subtract by constants
 * — monotone non-decreasing in u — so the category as a function of
 * the 53-bit mantissa u is a step function.  The constructor finds
 * each step's exact integer boundary by binary search against a
 * bit-faithful reimplementation of the double arithmetic
 * (referencePick), and sampling becomes one draw plus at most
 * kMaxCategories-1 integer compares.  No approximation is involved:
 * the boundaries are exact, so the picked category matches
 * pickWeighted for every possible u.
 */
class FixedWeighted
{
  public:
    /** Most categories a sampler supports (the process engines use 5). */
    static constexpr std::size_t kMaxCategories = 8;

    FixedWeighted() = default;

    explicit FixedWeighted(std::initializer_list<double> weights)
    {
        _n = weights.size();
        std::array<double, kMaxCategories> w{};
        std::size_t i = 0;
        for (double v : weights)
            w[i++] = v;
        constexpr std::uint64_t top = 1ULL << 53;
        for (std::size_t k = 0; k + 1 < _n; ++k) {
            // Smallest u whose reference category is > k (monotone in
            // u, so plain binary search over [0, 2^53]).
            std::uint64_t lo = 0;
            std::uint64_t hi = top;
            while (lo < hi) {
                const std::uint64_t mid = lo + (hi - lo) / 2;
                if (referencePick(mid, w.data(), _n) > k)
                    hi = mid;
                else
                    lo = mid + 1;
            }
            _cut[k] = lo;
        }
    }

    /** Sample a category; consumes exactly one draw, like
     *  pickWeighted. */
    std::size_t operator()(Rng &rng) const
    {
        return pickFromDraw(rng.nextU64() >> 11);
    }

    /** Category for mantissa @p u = nextU64() >> 11 (test hook). */
    std::size_t pickFromDraw(std::uint64_t u) const
    {
        std::size_t k = 0;
        while (k + 1 < _n && u >= _cut[k])
            ++k;
        return k;
    }

    /**
     * Bit-faithful reimplementation of Rng::pickWeighted's arithmetic
     * for mantissa @p u: same accumulation order, same rounding, same
     * fallthrough.  Public so equivalence tests can sweep it directly.
     */
    static std::size_t
    referencePick(std::uint64_t u, const double *w, std::size_t n)
    {
        double total = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            total += w[i];
        // (u * 2^-53) is exact for u < 2^53; only the * total rounds —
        // identical to nextDouble() * total in pickWeighted.
        double roll = static_cast<double>(u) * 0x1.0p-53 * total;
        for (std::size_t i = 0; i < n; ++i) {
            roll -= w[i];
            if (roll < 0.0)
                return i;
        }
        return n - 1;
    }

  private:
    std::array<std::uint64_t, kMaxCategories> _cut{};
    std::size_t _n = 0;
};

} // namespace dirsim::gen

#endif // DIRSIM_GEN_RNG_HH
