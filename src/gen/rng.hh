/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * xoshiro256** seeded through splitmix64.  A self-contained generator
 * (rather than <random> engines) keeps trace generation bit-identical
 * across standard libraries, which the test suite relies on.
 */

#ifndef DIRSIM_GEN_RNG_HH
#define DIRSIM_GEN_RNG_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dirsim::gen
{

/** xoshiro256** PRNG with convenience sampling helpers. */
class Rng
{
  public:
    /** Seed deterministically from a 64-bit value. */
    explicit Rng(std::uint64_t seed = 0x5eed);

    /** Next raw 64-bit value. */
    std::uint64_t nextU64();
    /** Uniform double in [0, 1). */
    double nextDouble();
    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t nextBelow(std::uint64_t bound);
    /** Bernoulli trial with probability @p p. */
    bool chance(double p);
    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t nextInRange(std::uint64_t lo, std::uint64_t hi);
    /**
     * Sample an index with probability proportional to @p weights.
     * Returns weights.size()-1 on accumulated rounding error; at least
     * one weight must be positive.
     */
    std::size_t pickWeighted(const std::vector<double> &weights);
    /**
     * Geometric-like burst length: number of successes before failure
     * with continue-probability @p p, clamped to [1, cap].
     */
    std::uint64_t burstLength(double p, std::uint64_t cap);

  private:
    std::array<std::uint64_t, 4> _state;
};

} // namespace dirsim::gen

#endif // DIRSIM_GEN_RNG_HH
