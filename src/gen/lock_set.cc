#include "gen/lock_set.hh"

#include <cassert>

namespace dirsim::gen
{

void
LockSet::acquire(std::size_t lock, std::uint16_t pid)
{
    Lock &lk = _locks[lock];
    assert(!lk.held && "acquire of a held lock");
    lk.held = true;
    lk.owner = pid;
    ++lk.acquisitions;
}

void
LockSet::release(std::size_t lock)
{
    Lock &lk = _locks[lock];
    assert(lk.held && "release of a free lock");
    lk.held = false;
}

std::uint64_t
LockSet::totalAcquisitions() const
{
    std::uint64_t total = 0;
    for (const Lock &lk : _locks)
        total += lk.acquisitions;
    return total;
}

} // namespace dirsim::gen
