/**
 * @file
 * Synthetic multiprocessor workload: configuration and the RefSource
 * that drives process engines through a CPU scheduler.
 *
 * This is the repository's substitute for the multiprocessor ATUM
 * traces of the paper (Section 4.4): it produces an interleaved
 * per-CPU reference stream with CPU and process identifiers, real
 * test-and-test-and-set lock ordering, optional process migration, and
 * ~10 % operating-system activity.
 */

#ifndef DIRSIM_GEN_WORKLOAD_HH
#define DIRSIM_GEN_WORKLOAD_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "gen/address_space.hh"
#include "gen/process.hh"
#include "gen/rng.hh"
#include "trace/ref_source.hh"
#include "trace/trace.hh"

namespace dirsim::gen
{

/** Complete description of one synthetic workload. */
struct WorkloadConfig
{
    std::string name = "generic";
    std::uint64_t totalRefs = 1'000'000;
    std::uint64_t seed = 0x15CA1988; // ISCA 1988.

    AddressSpaceConfig space;
    BehaviorConfig behavior;

    /**
     * References a CPU executes between scheduling decisions.  Only
     * relevant when processes outnumber CPUs or migration is enabled.
     */
    std::uint64_t quantumRefs = 50'000;
    /**
     * Probability that a quantum boundary migrates the process to a
     * different CPU rather than resuming it in place.  The paper notes
     * its traces contain few migrations; presets keep this small.
     */
    double migrationRate = 0.0;
};

/** Generates the reference stream for a WorkloadConfig. */
class WorkloadSource final : public trace::RefSource
{
  public:
    explicit WorkloadSource(WorkloadConfig cfg);

    bool next(trace::TraceRecord &record) override;
    void rewind() override;

    const WorkloadConfig &config() const { return _cfg; }
    /** Trace metadata (name, CPUs, lock addresses). */
    trace::TraceMeta meta() const;
    /** Lock/migratory state (for tests and diagnostics). */
    const SharedState &sharedState() const { return _shared; }

  private:
    void reset();
    /** Rotate / migrate the process running on @p cpu. */
    void reschedule(unsigned cpu);

    WorkloadConfig _cfg;
    AddressSpace _space;
    BehaviorSamplers _samplers;
    Rng _rng;
    SharedState _shared;
    std::vector<std::unique_ptr<ProcessEngine>> _processes;

    /** Process index currently on each CPU. */
    std::vector<std::size_t> _procOnCpu;
    /** FIFO of runnable process indices not currently on a CPU.  A
     *  deque: reschedule() pops the front every quantum, which on a
     *  vector is an O(n) erase — quadratic over a many-process run. */
    std::deque<std::size_t> _readyQueue;
    /** Remaining references in each CPU's quantum. */
    std::vector<std::uint64_t> _quantumLeft;

    std::uint64_t _emitted = 0;
    unsigned _nextCpu = 0;
};

/**
 * Convenience: materialise a workload into a MemoryTrace.
 */
trace::MemoryTrace generateTrace(const WorkloadConfig &cfg);

} // namespace dirsim::gen

#endif // DIRSIM_GEN_WORKLOAD_HH
