#include "gen/workloads.hh"

#include <algorithm>

namespace dirsim::gen
{

namespace
{

/** Baseline shared by all presets; presets adjust from here. */
WorkloadConfig
baseConfig()
{
    WorkloadConfig cfg;
    cfg.space.nCpus = 4;
    cfg.space.nProcesses = 4;
    cfg.space.blockBytes = 16; // 4 words, as in the paper.

    // Region sizes are chosen so the unique-block count (and with it
    // the first-reference miss fraction, Table 4's rm-first-ref of
    // ~0.3 %) lands near the published traces at the default
    // quarter-size reference counts.
    cfg.space.privateBlocksPerProc = 512;
    cfg.space.privateHotBlocks = 96;
    cfg.space.privateHotFrac = 0.90;
    cfg.space.sharedReadBlocks = 512;
    cfg.space.sharedWriteBlocks = 24;
    cfg.space.migratoryObjects = 160;
    cfg.space.blocksPerMigratoryObject = 2;
    cfg.space.nLocks = 6;
    cfg.space.protectedBlocksPerLock = 2;
    cfg.space.osCodeBlocks = 1024;
    cfg.space.osSharedBlocks = 48;
    cfg.space.osPerCpuBlocks = 128;
    return cfg;
}

} // namespace

WorkloadConfig
popsConfig(bool fullSize)
{
    WorkloadConfig cfg = baseConfig();
    cfg.name = "pops";
    cfg.seed = 0x15CA1988'0001ULL;
    cfg.totalRefs = fullSize ? 3'142'000 : 785'000;

    cfg.behavior.pInstr = 0.53;
    cfg.behavior.pSystem = 0.103;
    cfg.behavior.pPrivateRead = 0.80;

    // Lock-bound rule engine: one very hot lock serialises the shared
    // working memory.  Long critical sections produce occasional long
    // multi-waiter episodes, so processes spend a large share of time
    // in test-and-test-and-set spin loops (about a third of all data
    // reads become lock tests, as in the published trace) while the
    // number of lock *hand-offs* stays small.
    cfg.behavior.wPrivate = 0.91;
    cfg.behavior.wSharedRead = 0.034;
    cfg.behavior.wSharedWrite = 0.042;
    cfg.behavior.wMigratory = 0.008;
    cfg.behavior.wLockAttempt = 0.0029;
    cfg.behavior.nHotLocks = 1;
    cfg.behavior.hotLockFrac = 0.85;
    cfg.behavior.critMin = 250;
    cfg.behavior.critMax = 550;
    cfg.behavior.pCritProtected = 0.08;
    cfg.behavior.pOsShared = 0.08;
    cfg.behavior.pOsWrite = 0.18;
    return cfg;
}

WorkloadConfig
thorConfig(bool fullSize)
{
    WorkloadConfig cfg = baseConfig();
    cfg.name = "thor";
    cfg.seed = 0x15CA1988'0002ULL;
    cfg.totalRefs = fullSize ? 3'222'000 : 805'000;

    cfg.behavior.pInstr = 0.45;
    cfg.behavior.pSystem = 0.154;
    cfg.behavior.pPrivateRead = 0.78;

    // The logic simulator's event wheel is lock-protected; critical
    // sections are a little shorter and more frequent than pops'.
    cfg.behavior.wPrivate = 0.9087;
    cfg.behavior.wSharedRead = 0.036;
    cfg.behavior.wSharedWrite = 0.042;
    cfg.behavior.wMigratory = 0.009;
    cfg.behavior.wLockAttempt = 0.0033;
    cfg.behavior.nHotLocks = 1;
    cfg.behavior.hotLockFrac = 0.80;
    cfg.behavior.critMin = 200;
    cfg.behavior.critMax = 480;
    cfg.behavior.pCritProtected = 0.08;
    cfg.behavior.pOsShared = 0.08;
    cfg.behavior.pOsWrite = 0.18;

    cfg.space.nLocks = 8;
    cfg.space.sharedReadBlocks = 640;
    cfg.space.migratoryObjects = 192;
    return cfg;
}

WorkloadConfig
peroConfig(bool fullSize)
{
    WorkloadConfig cfg = baseConfig();
    cfg.name = "pero";
    cfg.seed = 0x15CA1988'0003ULL;
    cfg.totalRefs = fullSize ? 3'508'000 : 877'000;

    cfg.behavior.pInstr = 0.521;
    cfg.behavior.pSystem = 0.076;
    // The router's read ratio comes from the algorithm, not locks.
    cfg.behavior.pPrivateRead = 0.72;

    // Mostly independent routing work on private state; a small
    // read-shared grid and very little synchronisation, so the
    // fraction of shared references is much smaller than in pops or
    // thor (the paper's explanation for pero's low bus traffic).
    cfg.behavior.wPrivate = 0.98525;
    cfg.behavior.wSharedRead = 0.0075;
    cfg.behavior.wSharedWrite = 0.0045;
    cfg.behavior.wMigratory = 0.002;
    cfg.behavior.wLockAttempt = 0.0006;
    cfg.behavior.nHotLocks = 1;
    cfg.behavior.hotLockFrac = 0.50;
    cfg.behavior.critMin = 40;
    cfg.behavior.critMax = 100;
    cfg.behavior.pCritProtected = 0.10;
    cfg.behavior.pOsShared = 0.08;
    cfg.behavior.pOsWrite = 0.18;

    cfg.space.nLocks = 4;
    cfg.space.sharedReadBlocks = 384;
    cfg.space.migratoryObjects = 64;
    return cfg;
}

std::vector<WorkloadConfig>
standardWorkloads(bool fullSize)
{
    return {popsConfig(fullSize), thorConfig(fullSize),
            peroConfig(fullSize)};
}

WorkloadConfig
scaledConfig(unsigned nCpus, std::uint64_t totalRefs)
{
    WorkloadConfig cfg = baseConfig();
    cfg.name = "scaled" + std::to_string(nCpus);
    cfg.seed = 0x15CA1988'1000ULL + nCpus;
    cfg.totalRefs = totalRefs;
    cfg.space.nCpus = nCpus;
    cfg.space.nProcesses = nCpus;

    // Shared structures grow with the machine; per-process private
    // working sets stay fixed.
    cfg.space.sharedReadBlocks = 128 * nCpus;
    cfg.space.migratoryObjects = 40 * nCpus;
    cfg.space.nLocks = std::max(4u, nCpus / 2);
    cfg.behavior.nHotLocks = std::max(1u, nCpus / 4);

    cfg.behavior.pInstr = 0.52;
    cfg.behavior.wPrivate = 0.957;
    cfg.behavior.wSharedRead = 0.028;
    cfg.behavior.wSharedWrite = 0.001;
    cfg.behavior.wMigratory = 0.007;
    cfg.behavior.wLockAttempt = 0.007;
    cfg.behavior.critMin = 60;
    cfg.behavior.critMax = 160;
    cfg.behavior.pCritProtected = 0.10;
    return cfg;
}

} // namespace dirsim::gen
