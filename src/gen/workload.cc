#include "gen/workload.hh"

#include <cassert>

namespace dirsim::gen
{

WorkloadSource::WorkloadSource(WorkloadConfig cfg)
    : _cfg(std::move(cfg)), _space(_cfg.space),
      _samplers(_cfg.behavior), _rng(_cfg.seed)
{
    assert(_cfg.space.nProcesses >= _cfg.space.nCpus &&
           "need at least one process per CPU");
    reset();
}

void
WorkloadSource::reset()
{
    _rng = Rng(_cfg.seed);
    _shared = SharedState{};
    for (std::uint32_t l = 0; l < _cfg.space.nLocks; ++l)
        _shared.locks.add(_space.lockAddr(l));
    _shared.migratoryOwner.assign(_cfg.space.migratoryObjects, 0xffff);

    _processes.clear();
    for (unsigned p = 0; p < _cfg.space.nProcesses; ++p) {
        _processes.push_back(std::make_unique<ProcessEngine>(
            static_cast<std::uint16_t>(p), _cfg.behavior, _samplers,
            _space, _shared, _rng));
    }

    _procOnCpu.clear();
    _readyQueue.clear();
    for (unsigned c = 0; c < _cfg.space.nCpus; ++c)
        _procOnCpu.push_back(c);
    for (std::size_t p = _cfg.space.nCpus; p < _processes.size(); ++p)
        _readyQueue.push_back(p);
    _quantumLeft.assign(_cfg.space.nCpus, _cfg.quantumRefs);

    _emitted = 0;
    _nextCpu = 0;
}

void
WorkloadSource::rewind()
{
    reset();
}

void
WorkloadSource::reschedule(unsigned cpu)
{
    _quantumLeft[cpu] = _cfg.quantumRefs;
    if (!_readyQueue.empty()) {
        // Time-slice: descheduled process goes to the back of the
        // ready queue.  Whether this migrates the process depends on
        // which CPU next picks it up.
        const std::size_t incoming = _readyQueue.front();
        _readyQueue.pop_front();
        _readyQueue.push_back(_procOnCpu[cpu]);
        _procOnCpu[cpu] = incoming;
        return;
    }
    if (_cfg.migrationRate > 0.0 && _rng.chance(_cfg.migrationRate) &&
        _cfg.space.nCpus > 1) {
        // Swap with a random other CPU: both processes migrate.
        unsigned other = static_cast<unsigned>(
            _rng.nextBelow(_cfg.space.nCpus - 1));
        if (other >= cpu)
            ++other;
        std::swap(_procOnCpu[cpu], _procOnCpu[other]);
    }
}

bool
WorkloadSource::next(trace::TraceRecord &record)
{
    if (_emitted >= _cfg.totalRefs)
        return false;

    const unsigned cpu = _nextCpu;
    // Wrap without the integer division a modulo would cost per ref.
    if (++_nextCpu == _cfg.space.nCpus)
        _nextCpu = 0;

    record = _processes[_procOnCpu[cpu]]->step(cpu);
    ++_emitted;

    if (--_quantumLeft[cpu] == 0)
        reschedule(cpu);
    return true;
}

trace::TraceMeta
WorkloadSource::meta() const
{
    trace::TraceMeta meta;
    meta.name = _cfg.name;
    meta.nCpus = _cfg.space.nCpus;
    meta.nProcesses = _cfg.space.nProcesses;
    for (std::size_t l = 0; l < _shared.locks.size(); ++l)
        meta.lockAddrs.insert(_shared.locks[l].addr);
    return meta;
}

trace::MemoryTrace
generateTrace(const WorkloadConfig &cfg)
{
    WorkloadSource source(cfg);
    trace::MemoryTrace trace(source.meta());
    trace.reserve(cfg.totalRefs);
    // Direct loop over the concrete (final) source: next() and the
    // process-engine step chain inline, where fillFrom()'s RefSource
    // indirection would cost a virtual dispatch per record.
    trace::TraceRecord record;
    while (source.next(record))
        trace.append(record);
    return trace;
}

} // namespace dirsim::gen
