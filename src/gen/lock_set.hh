/**
 * @file
 * Spin-lock state shared between synthetic processes.
 *
 * The generator simulates real test-and-test-and-set semantics: a lock
 * is a word with a held/free state and an owner, and processes observe
 * and mutate that state through the references they emit.  This keeps
 * the temporal ordering of synchronisation in the trace faithful, which
 * the paper calls out as a property of its ATUM traces.
 */

#ifndef DIRSIM_GEN_LOCK_SET_HH
#define DIRSIM_GEN_LOCK_SET_HH

#include <cstdint>
#include <vector>

namespace dirsim::gen
{

/** State of one spin lock. */
struct Lock
{
    std::uint64_t addr = 0;   //!< Byte address of the lock word.
    bool held = false;
    std::uint16_t owner = 0;  //!< Valid only when held.
    std::uint64_t acquisitions = 0;
    std::uint32_t waiters = 0;//!< Processes currently spinning.
};

/** The workload's locks plus bookkeeping helpers. */
class LockSet
{
  public:
    LockSet() = default;

    void add(std::uint64_t addr) { _locks.push_back(Lock{addr}); }

    std::size_t size() const { return _locks.size(); }
    Lock &operator[](std::size_t i) { return _locks[i]; }
    const Lock &operator[](std::size_t i) const { return _locks[i]; }

    /** Mark @p lock acquired by @p pid. */
    void acquire(std::size_t lock, std::uint16_t pid);
    /** Mark @p lock released; owner relinquishes. */
    void release(std::size_t lock);

    /** Total acquisitions across all locks. */
    std::uint64_t totalAcquisitions() const;

  private:
    std::vector<Lock> _locks;
};

} // namespace dirsim::gen

#endif // DIRSIM_GEN_LOCK_SET_HH
