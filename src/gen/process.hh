/**
 * @file
 * Synthetic process behaviour engine.
 *
 * Each ProcessEngine models one application process as a small state
 * machine that emits one memory reference per scheduling step:
 *
 *  - Normal:  instruction fetches and data references drawn from a
 *             weighted mix of private data, read-mostly shared data,
 *             write-first shared slots, migratory objects (read-modify-
 *             write handed between processes) and lock acquisition
 *             attempts.
 *  - Spinning: a test-and-test-and-set wait loop on a held lock; emits
 *             flagged lock-test reads interleaved with loop
 *             instructions until the lock is observed free, then
 *             attempts the atomic set (a write) on the next step.
 *  - Critical: the lock-protected region; touches protected and
 *             private data, then emits the releasing write.
 *
 * Operating-system activity is interleaved: with probability pSystem a
 * step executes "in the kernel", referencing OS code, per-CPU OS data
 * or (rarely written) OS shared data, flagged FlagSystem.
 *
 * The mix weights below are the calibration knobs used to land the
 * preset workloads near the published Table 3/Table 4 characteristics.
 */

#ifndef DIRSIM_GEN_PROCESS_HH
#define DIRSIM_GEN_PROCESS_HH

#include <cstdint>
#include <vector>

#include "gen/address_space.hh"
#include "gen/lock_set.hh"
#include "gen/rng.hh"
#include "trace/record.hh"

namespace dirsim::gen
{

/** Behaviour mix parameters for synthetic processes. */
struct BehaviorConfig
{
    double pInstr = 0.50;  //!< Instruction-fetch probability per step.
    double pSystem = 0.10; //!< Probability a step runs kernel code.

    /** @name Data reference category weights (user mode, normalised).
     *  @{ */
    double wPrivate = 0.90;
    double wSharedRead = 0.06;
    double wSharedWrite = 0.004;
    double wMigratory = 0.015;
    double wLockAttempt = 0.004;
    /** @} */

    double pPrivateRead = 0.78;    //!< Private touch is a read.
    double pSharedReadWrite = 0.002;//!< Read-mostly touch is a write.
    /**
     * Producer/consumer slots: with this probability the touch is the
     * producer writing one of its own slots (repeatedly rewritten, so
     * an update protocol pays on every write while an invalidation
     * protocol pays only after a consumer read); otherwise it is a
     * consumer read of a random slot.
     */
    double pSharedSlotWrite = 0.90;
    /** Writes per migratory hand-off (read-modify-write burst). */
    std::uint32_t migratoryWriteBurst = 4;

    double pSpinInstr = 0.40;      //!< Spin-loop instruction fraction.
    std::uint32_t critMin = 12;    //!< Min critical-section length.
    std::uint32_t critMax = 48;    //!< Max critical-section length.
    double pCritProtected = 0.60;  //!< Critical data is lock-protected.
    double pCritWrite = 0.30;      //!< Critical data touch is a write.

    double hotLockFrac = 0.85;     //!< Lock picks go to the hot set.
    std::uint32_t nHotLocks = 2;   //!< Size of the hot lock set.

    /** OS data mix. */
    double pOsInstr = 0.55;
    double pOsShared = 0.05;       //!< OS data touch hits shared region.
    double pOsWrite = 0.20;        //!< OS data touch is a write.
};

/**
 * Fixed-point samplers precomputed from one BehaviorConfig.
 *
 * Every probability the step functions consult per reference becomes
 * a FixedChance/FixedWeighted threshold, built once per workload and
 * shared (const) by all of its processes.  Kept outside BehaviorConfig
 * so the config stays a plain value type — it is serialised field by
 * field into the trace repository's cache key.  The draw sequence is
 * provably identical to the double-math it replaces (see rng.hh), so
 * traces stay bit-identical.
 */
struct BehaviorSamplers
{
    explicit BehaviorSamplers(const BehaviorConfig &cfg)
        : system(cfg.pSystem), instr(cfg.pInstr),
          category({cfg.wPrivate, cfg.wSharedRead, cfg.wSharedWrite,
                    cfg.wMigratory, cfg.wLockAttempt}),
          privateRead(cfg.pPrivateRead),
          sharedReadWrite(cfg.pSharedReadWrite),
          sharedSlotWrite(cfg.pSharedSlotWrite),
          spinInstr(cfg.pSpinInstr), critProtected(cfg.pCritProtected),
          critWrite(cfg.pCritWrite), hotLock(cfg.hotLockFrac),
          osInstr(cfg.pOsInstr), osShared(cfg.pOsShared),
          osWrite(cfg.pOsWrite), secondMigratoryBlock(0.5),
          instrBranch(0.1), migratoryRebias(0.7)
    {
    }

    FixedChance system;
    FixedChance instr;
    FixedWeighted category;
    FixedChance privateRead;
    FixedChance sharedReadWrite;
    FixedChance sharedSlotWrite;
    FixedChance spinInstr;
    FixedChance critProtected;
    FixedChance critWrite;
    FixedChance hotLock;
    FixedChance osInstr;
    FixedChance osShared;
    FixedChance osWrite;
    /** The step functions' literal probabilities, precomputed too. */
    FixedChance secondMigratoryBlock;
    FixedChance instrBranch;
    FixedChance migratoryRebias;
};

/** Shared mutable state that all processes of a workload act on. */
struct SharedState
{
    LockSet locks;
    /** Last process to own each migratory object. */
    std::vector<std::uint16_t> migratoryOwner;
};

/** One synthetic process; emits one TraceRecord per step. */
class ProcessEngine
{
  public:
    /**
     * @param pid Process identifier stamped on emitted records.
     * @param cfg Behaviour mix (shared by all processes of a workload).
     * @param samplers Fixed-point samplers built from @p cfg; must
     *        outlive the engine (shared by all of a workload's
     *        processes).
     * @param space Address-space layout; must outlive the engine.
     * @param shared Workload-wide lock/migratory state.
     * @param rng Workload-wide RNG (single stream for determinism).
     */
    ProcessEngine(std::uint16_t pid, const BehaviorConfig &cfg,
                  const BehaviorSamplers &samplers,
                  const AddressSpace &space, SharedState &shared,
                  Rng &rng);

    /**
     * Emit the next reference for this process.
     *
     * @param cpu CPU the process is currently scheduled on (stamped on
     *            the record and used for per-CPU OS data).
     */
    trace::TraceRecord step(unsigned cpu);

    std::uint16_t pid() const { return _pid; }
    /** True while the process is spin-waiting on a lock. */
    bool spinning() const { return _mode == Mode::Spinning; }

  private:
    enum class Mode { Normal, Spinning, Critical };

    trace::TraceRecord stepSystem(unsigned cpu);
    trace::TraceRecord stepNormal();
    trace::TraceRecord stepSpinning();
    trace::TraceRecord stepCritical();

    trace::TraceRecord instrFetch();
    trace::TraceRecord read(std::uint64_t addr, std::uint8_t flags = 0);
    trace::TraceRecord write(std::uint64_t addr, std::uint8_t flags = 0);

    /** Pick a lock index, biased towards the hot set. */
    std::size_t pickLock();
    /** Pick a migratory object, biased away from self-owned ones. */
    std::uint32_t pickMigratoryObject();

    const std::uint16_t _pid;
    const BehaviorConfig &_cfg;
    const BehaviorSamplers &_smp;
    const AddressSpace &_space;
    SharedState &_shared;
    Rng &_rng;

    Mode _mode = Mode::Normal;
    std::uint64_t _pc = 0;          //!< Code-region walker.
    std::size_t _lock = 0;          //!< Lock being waited on / held.
    bool _sawFree = false;          //!< Spin observed the lock free.
    std::uint32_t _critRemaining = 0;
    /** Pending read-modify-write writes (migratory pattern). */
    std::vector<std::uint64_t> _pendingWrites;
};

} // namespace dirsim::gen

#endif // DIRSIM_GEN_PROCESS_HH
