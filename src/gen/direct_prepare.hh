/**
 * @file
 * Single-pass pipelined cold path: generate a synthetic workload
 * straight into PreparedTrace SoA columns.
 *
 * The legacy cold path materialises every reference twice — a 16-byte
 * TraceRecord into a MemoryTrace, then a second two-phase scan
 * (planning + chunk decode) into the ~6-byte prepared columns.  This
 * pipeline does neither: the generator thread streams records out of
 * a WorkloadSource and appends them directly to per-chunk column
 * buffers, and a pool worker packs each finished chunk into its final
 * destination while the next chunk is being generated.
 *
 * Division of labour (the determinism invariant, DESIGN.md §16):
 *
 *  - Generator thread (inherently serial — one RNG stream and the
 *    shared lock state define the interleaving): runs the process
 *    engines, applies the dropLockTests filter, assigns first-seen
 *    dense unit/CPU numbers (the same discipline as sim::UnitMapper
 *    and PreparedTraceBuilder's planning scan), packs the type+flags
 *    byte, counts instruction fetches, and accumulates each chunk's
 *    global column offset.  Everything order-dependent happens here.
 *
 *  - Pack worker (one, double-buffered): pure per-chunk column
 *    packing — the address→block shift into the chunk's precomputed
 *    disjoint output range, or the store writer's chunk append.  No
 *    shared mutable state with the generator except the two chunk
 *    buffers, handed off through the pool's queue mutex.
 *
 * The output is bit-identical to generateTrace + PreparedTraceBuilder
 * (and spillFromSource for the store path) by construction; the
 * differential suite in tests/direct_gen_test.cc and the golden
 * digests enforce it.
 */

#ifndef DIRSIM_GEN_DIRECT_PREPARE_HH
#define DIRSIM_GEN_DIRECT_PREPARE_HH

#include <cstdint>
#include <string>

#include "gen/workload.hh"
#include "trace/prepared.hh"
#include "trace/store.hh"

namespace dirsim::gen
{

/** Tuning knobs for the direct generate→prepare pipeline. */
struct DirectGenConfig
{
    /**
     * Kept data references per pack chunk.  Large enough that the
     * handoff cost vanishes, small enough that two in-flight buffers
     * stay cache-resident; matches the prepared builder's decode
     * granularity.
     */
    std::uint64_t chunkRefs = 64 * 1024;
    /**
     * Overlap column packing with generation on one pool worker.
     * Off = pack inline on the generator thread (A/B hatch and the
     * deterministic-by-inspection reference the tests compare
     * against; columns are bit-identical either way).
     */
    bool pipeline = true;
};

/**
 * Generate @p cfg directly into a PreparedTrace.
 *
 * Column-for-column identical to
 * PreparedTrace built from generateTrace(cfg) with @p opts.  With
 * opts.timedStreams the per-CPU streams interleave instruction
 * fetches back in — that diagnostic path falls back to the two-phase
 * builder internally.
 *
 * @throws std::invalid_argument when the stream does not fit the
 *         prepared widths (same limits as PreparedTraceBuilder).
 */
trace::PreparedTrace
generatePrepared(const WorkloadConfig &cfg,
                 const trace::PrepareOptions &opts = {},
                 const DirectGenConfig &dg = {});

/**
 * Generate @p cfg straight into a stored-trace file at @p path —
 * byte-identical to spillFromSource over a fresh WorkloadSource, with
 * chunk packing and the writer's digest+flush work overlapped with
 * generation.  Peak memory stays O(chunk).  Falls back to
 * spillFromSource when opts.timedStreams is set.
 *
 * @throws std::invalid_argument / std::runtime_error as
 *         spillFromSource; either way the partial file is removed.
 */
trace::StoredTraceInfo
spillPrepared(const WorkloadConfig &cfg,
              const trace::PrepareOptions &opts, const std::string &path,
              const trace::StoreWriteOptions &store = {},
              const DirectGenConfig &dg = {});

} // namespace dirsim::gen

#endif // DIRSIM_GEN_DIRECT_PREPARE_HH
