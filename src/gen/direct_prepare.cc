#include "gen/direct_prepare.hh"

#include <cstring>
#include <exception>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "mem/block.hh"
#include "util/thread_pool.hh"

namespace dirsim::gen
{

namespace
{

/** Largest block index the 32-bit column can hold. */
constexpr std::uint64_t maxBlockIndex = 0xffffffffULL;

/** Dense indices the 8-bit unit column can hold. */
constexpr unsigned maxDenseUnits = 256;

/** First-seen dense numbering (same discipline as sim::UnitMapper and
 *  PreparedTraceBuilder's planning scan). */
unsigned
mapDense(std::vector<std::int32_t> &table, unsigned key, unsigned &seen)
{
    if (key >= table.size())
        table.resize(key + 1, -1);
    std::int32_t &slot = table[key];
    if (slot < 0)
        slot = static_cast<std::int32_t>(seen++);
    return static_cast<unsigned>(slot);
}

/**
 * One generation chunk, already in final column form: the
 * order-dependent work is done (the filter, the dense unit numbers,
 * the block shift, the packed type+flags byte), so what remains —
 * copying into the destination columns, or the store writer's
 * append+digest — is pure and position-independent.  The generator
 * emits 6 bytes per data reference here, versus the 16-byte
 * TraceRecord the legacy path materialises.
 */
struct GenChunk
{
    /** Columns stay at full chunk capacity; @ref n is the fill level
     *  (raw index stores beat three push_back bound checks in the
     *  per-record loop). */
    util::AlignedVector<std::uint32_t> block;
    util::AlignedVector<std::uint8_t> unit;
    util::AlignedVector<std::uint8_t> typeFlags;
    std::size_t n = 0;          //!< Data references filled.
    std::uint64_t instr = 0;    //!< Instruction fetches in this chunk.
    std::size_t dataOffset = 0; //!< Global index of the first data ref.

    std::size_t size() const { return n; }
};

/** Counts the generator accumulates across the whole stream. */
struct StreamTotals
{
    unsigned nUnits = 0;
    unsigned nCpus = 0;
    std::uint64_t instrRefs = 0;
    std::size_t dataRefs = 0;
};

/**
 * Schedules per-chunk pack work: on the single pool worker when
 * pipelining (FIFO, so chunks retire in submission order — the store
 * writer depends on that), inline otherwise.  run() drains the
 * previous task first, so at most one task is ever in flight — that
 * wait is exactly the double-buffer handoff: when the generator
 * refills a buffer, the pack of the chunk *before last* has retired.
 * Worker exceptions (e.g. disk-full from the store writer) are
 * captured and rethrown on the generator thread at the next
 * run()/drain(); the pool's wait() orders the capture before the
 * read.
 */
class ChunkRunner
{
  public:
    explicit ChunkRunner(bool pipelined)
    {
        if (pipelined)
            _pool.emplace(1);
    }

    template <typename Fn>
    void run(Fn &&fn)
    {
        if (!_pool) {
            fn();
            return;
        }
        sync();
        _pool->submit([this, fn = std::forward<Fn>(fn)]() mutable {
            try {
                fn();
            } catch (...) {
                _error = std::current_exception();
            }
        });
    }

    /** Wait for outstanding work; rethrows a captured task error. */
    void drain() { sync(); }

    /** Wait only — for unwind paths where a second throw would
     *  terminate; the captured error (if any) stays for drain(). */
    void waitQuiet() noexcept
    {
        if (_pool)
            _pool->wait();
    }

  private:
    void sync()
    {
        if (_pool)
            _pool->wait();
        if (_error)
            std::rethrow_exception(
                std::exchange(_error, nullptr));
    }

    std::optional<util::ThreadPool> _pool;
    std::exception_ptr _error;
};

/**
 * The serial generator loop: streams @p source, does every
 * order-dependent step (filter, first-seen numbering, width checks,
 * the block shift, type packing, offset accounting), and hands each
 * filled chunk — already in final column form — to @p onChunk in
 * stream order.  The callee owns scheduling; it may
 * keep a chunk in flight until the *next* onChunk call for the same
 * buffer parity (double buffering — buffers alternate, and the
 * callee's internal sync must retire a chunk before its buffer is
 * refilled; ChunkRunner::run does exactly that).
 *
 * The chunk buffers live in THIS frame, so in-flight tasks are
 * retired here — normal return and unwind both — before the frame
 * (and with it the buffers the tasks read) goes away.
 */
template <typename OnChunk>
StreamTotals
streamChunks(WorkloadSource &source, const trace::PrepareOptions &opts,
             std::uint64_t chunkRefs, ChunkRunner &runner,
             OnChunk &&onChunk)
{
    GenChunk bufs[2];
    for (GenChunk &b : bufs) {
        b.block.resize(static_cast<std::size_t>(chunkRefs));
        b.unit.resize(static_cast<std::size_t>(chunkRefs));
        b.typeFlags.resize(static_cast<std::size_t>(chunkRefs));
    }

    std::vector<std::int32_t> unitOf;
    // The prepared format records only the CPU *count* (there is no
    // cpu column outside timedStreams), so first-seen numbering
    // reduces to a seen-bitmap — rec.cpu is 8 bits wide.
    bool cpuSeen[256] = {};
    StreamTotals totals;
    const mem::BlockMapper toBlock(opts.blockBytes);
    std::uint64_t maxAddr = 0;

    trace::TraceRecord rec;
    bool more = true;
    int cur = 0;
    try {
        while (more) {
            GenChunk &chunk = bufs[cur];
            cur ^= 1;
            chunk.instr = 0;
            chunk.dataOffset = totals.dataRefs;
            // Raw cursor stores into the full-capacity columns; the
            // width/overflow throws below run once per chunk, BEFORE
            // onChunk, so a poisoned (truncated) chunk never escapes —
            // the same throw-after-scan semantics as the legacy
            // builder.
            std::uint32_t *outBlock = chunk.block.data();
            std::uint8_t *outUnit = chunk.unit.data();
            std::uint8_t *outType = chunk.typeFlags.data();
            std::size_t n = 0;
            while (n < chunkRefs && (more = source.next(rec))) {
                if (opts.dropLockTests && rec.isLockTest())
                    continue;
                const unsigned unit =
                    mapDense(unitOf, sim::unitKey(rec, opts.domain),
                             totals.nUnits);
                if (!cpuSeen[rec.cpu]) {
                    cpuSeen[rec.cpu] = true;
                    ++totals.nCpus;
                }
                if (rec.addr > maxAddr)
                    maxAddr = rec.addr;
                if (rec.isInstr()) {
                    ++chunk.instr;
                    ++totals.instrRefs;
                    continue;
                }
                outBlock[n] =
                    static_cast<std::uint32_t>(toBlock(rec.addr));
                outUnit[n] = static_cast<std::uint8_t>(unit);
                outType[n] = trace::packTypeFlags(rec.type, rec.flags);
                ++n;
            }
            chunk.n = n;
            if (totals.nUnits > maxDenseUnits ||
                totals.nCpus > maxDenseUnits)
                throw std::invalid_argument(
                    "generatePrepared: trace '" +
                    source.config().name +
                    "' uses more than 256 sharing units or CPUs; the "
                    "prepared 8-bit unit column cannot hold it");
            if (toBlock(maxAddr) > maxBlockIndex)
                throw std::invalid_argument(
                    "generatePrepared: address " +
                    std::to_string(maxAddr) +
                    " exceeds the 32-bit block index at block size " +
                    std::to_string(opts.blockBytes));
            totals.dataRefs += chunk.size();
            onChunk(chunk);
        }
    } catch (...) {
        // A task may still be reading bufs; quiesce it (without a
        // second throw) before this frame unwinds the buffers away.
        runner.waitQuiet();
        throw;
    }
    runner.drain();
    return totals;
}

} // namespace

trace::PreparedTrace
generatePrepared(const WorkloadConfig &cfg,
                 const trace::PrepareOptions &opts,
                 const DirectGenConfig &dg)
{
    if (opts.timedStreams) {
        // Timed per-CPU streams re-interleave instruction fetches;
        // that diagnostic decode keeps the two-phase builder.
        return trace::PreparedTrace::build(generateTrace(cfg), opts);
    }

    WorkloadSource source(cfg);
    const std::uint64_t chunkRefs =
        dg.chunkRefs > 0 ? dg.chunkRefs : 1;

    // Staging columns sized to the upper bound (every reference kept
    // as a data reference); each chunk's pack task writes a disjoint
    // [dataOffset, dataOffset + n) range.
    util::AlignedVector<std::uint32_t> block(
        static_cast<std::size_t>(cfg.totalRefs));
    util::AlignedVector<std::uint8_t> unit(
        static_cast<std::size_t>(cfg.totalRefs));
    util::AlignedVector<std::uint8_t> typeFlags(
        static_cast<std::size_t>(cfg.totalRefs));

    ChunkRunner runner(dg.pipeline);
    const StreamTotals totals = streamChunks(
        source, opts, chunkRefs, runner, [&](GenChunk &chunk) {
            GenChunk *c = &chunk;
            runner.run([&block, &unit, &typeFlags, c] {
                const std::size_t n = c->size();
                const std::size_t at = c->dataOffset;
                if (n > 0) {
                    std::memcpy(block.data() + at, c->block.data(),
                                n * sizeof(std::uint32_t));
                    std::memcpy(unit.data() + at, c->unit.data(), n);
                    std::memcpy(typeFlags.data() + at,
                                c->typeFlags.data(), n);
                }
            });
        });

    // Exact-size final columns: the staging upper bound would
    // otherwise inflate byteSize() (the repository's LRU budget).
    util::AlignedVector<std::uint32_t> outBlock(totals.dataRefs);
    util::AlignedVector<std::uint8_t> outUnit(totals.dataRefs);
    util::AlignedVector<std::uint8_t> outTypeFlags(totals.dataRefs);
    if (totals.dataRefs > 0) {
        std::memcpy(outBlock.data(), block.data(),
                    totals.dataRefs * sizeof(std::uint32_t));
        std::memcpy(outUnit.data(), unit.data(), totals.dataRefs);
        std::memcpy(outTypeFlags.data(), typeFlags.data(),
                    totals.dataRefs);
    }
    return trace::PreparedTrace::fromColumns(
        cfg.name, opts, totals.instrRefs, totals.nUnits, totals.nCpus,
        std::move(outBlock), std::move(outUnit),
        std::move(outTypeFlags));
}

trace::StoredTraceInfo
spillPrepared(const WorkloadConfig &cfg,
              const trace::PrepareOptions &opts, const std::string &path,
              const trace::StoreWriteOptions &store,
              const DirectGenConfig &dg)
{
    if (opts.timedStreams) {
        WorkloadSource source(cfg);
        return trace::spillFromSource(source, cfg.name, opts, path,
                                      store);
    }

    WorkloadSource source(cfg);
    const std::uint64_t chunkRefs =
        dg.chunkRefs > 0 ? dg.chunkRefs : 1;

    // Declaration order matters: the runner joins (and so retires any
    // in-flight writer append) before the writer's destructor can
    // abandon a partial file on the error path.
    trace::PreparedTraceWriter writer(path, cfg.name, opts, store);
    ChunkRunner runner(dg.pipeline);
    const StreamTotals totals = streamChunks(
        source, opts, chunkRefs, runner, [&](GenChunk &chunk) {
            // The worker owns the writer between handoffs: chunks
            // retire in FIFO order on the single worker, so appends
            // land in stream order and digest/flush work overlaps
            // generation.  appendDataBulk re-chunks at the writer's
            // own flush boundaries — the file is byte-identical
            // whatever this pipeline's chunk size.
            GenChunk *c = &chunk;
            runner.run([&writer, c] {
                writer.appendDataBulk(c->block.data(), c->unit.data(),
                                      c->typeFlags.data(), c->size());
                writer.addInstrRefs(c->instr);
            });
        });

    writer.setUnits(totals.nUnits, totals.nCpus);
    trace::StoredTraceInfo info;
    info.instrRefs = writer.instrRefs();
    info.dataRefs = writer.dataRefs();
    info.nUnits = totals.nUnits;
    info.nCpus = totals.nCpus;
    writer.finish();
    std::error_code ec;
    const auto bytes = std::filesystem::file_size(path, ec);
    info.fileBytes = ec ? 0 : static_cast<std::uint64_t>(bytes);
    return info;
}

} // namespace dirsim::gen
