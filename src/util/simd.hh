/**
 * @file
 * SIMD-friendly batch kernels for the prepared-trace hot loop.
 *
 * The replay inner loop spends its time in two places: decoding the
 * packed type+flags byte of every reference and probing the per-block
 * FlatMap.  Both are batchable.  This header supplies the batch
 * primitives:
 *
 *  - decodeTypes(): strip the flag bits off a whole run of packed
 *    bytes at once (a pure byte-wise AND), so the per-reference
 *    dispatch reads a clean 0/1/2 type lane instead of re-masking.
 *    Backends: AVX2 and NEON intrinsics where the compiler targets
 *    them, otherwise a SWAR kernel over eight bytes at a time that
 *    GCC/Clang auto-vectorise under any baseline ISA.  The bytewise
 *    reference decodeTypesScalar() is always compiled, so differential
 *    tests can pin every backend against it.
 *
 *  - classifyCounts(): branchless read/write/lock lane counts for a
 *    strip, used by diagnostics and tests (the engines consume the
 *    type lane directly).
 *
 *  - prefetchRead(): the software-prefetch hint the engines issue a
 *    few references ahead of the FlatMap probe.
 *
 *  - AlignedVector: 64-byte-aligned column storage, so vector loads
 *    over the prepared columns never split a cache line.
 *
 * Backend selection is compile-time only: -DDIRSIM_SIMD_SCALAR (CMake
 * option DIRSIM_SIMD_SCALAR) forces the SWAR kernel even when AVX2 or
 * NEON is available, which CI uses to exercise the fallback under the
 * sanitizers.  All kernels tolerate unaligned and zero-length input;
 * alignment only affects speed, never correctness.
 */

#ifndef DIRSIM_UTIL_SIMD_HH
#define DIRSIM_UTIL_SIMD_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <vector>

#if !defined(DIRSIM_SIMD_SCALAR)
#if defined(__AVX2__)
#define DIRSIM_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__ARM_NEON)
#define DIRSIM_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace dirsim::util
{

/** Alignment unit for column storage and strip buffers. */
constexpr std::size_t kCacheLineBytes = 64;

/**
 * References classified per strip before dispatch.  The strip's type
 * lane (1 byte/ref) plus the columns it shadows (6 bytes/ref) must
 * stay L1-resident while the engine walks it; 4K refs ≈ 28 KiB.
 */
constexpr std::size_t kClassifyStripRefs = 4096;

/**
 * How many references ahead of the dispatch point the engines
 * prefetch their block-table probe.  Far enough to cover a memory
 * access, near enough that the line is still resident when used.
 */
constexpr std::size_t kPrefetchDistance = 8;

/** The packed byte's type field: low two bits.  Mirrors
 *  trace::packedTypeMask (static_assert'd at the trace layer — util
 *  cannot include trace headers without inverting the layering). */
constexpr std::uint8_t kTypeLaneMask = 0x03;

/**
 * Minimal 64-byte-aligning allocator.  std::allocator only guarantees
 * alignof(std::max_align_t) (16 on x86-64); the prepared columns want
 * cache-line alignment so a 64-byte vector load never splits lines.
 */
template <typename T>
struct AlignedAllocator
{
    using value_type = T;
    static constexpr std::align_val_t alignment{kCacheLineBytes};

    AlignedAllocator() = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U> &) noexcept
    {
    }

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(
            ::operator new(n * sizeof(T), alignment));
    }

    void
    deallocate(T *p, std::size_t) noexcept
    {
        ::operator delete(p, alignment);
    }

    template <typename U>
    bool
    operator==(const AlignedAllocator<U> &) const noexcept
    {
        return true;
    }
};

/** Cache-line-aligned vector: drop-in column storage. */
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/** Hint that @p p will be read soon (no-op where unsupported). */
inline void
prefetchRead(const void *p)
{
    __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
}

/**
 * Reference kernel: types[i] = packed[i] & kTypeLaneMask, one byte at
 * a time.  Deliberately the dumbest possible loop — every optimised
 * backend is differentially tested against it.
 */
inline void
decodeTypesScalar(const std::uint8_t *packed, std::uint8_t *types,
                  std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        types[i] = static_cast<std::uint8_t>(packed[i] & kTypeLaneMask);
}

/**
 * Decode the type lane for @p n packed bytes: types[i] = packed[i] &
 * kTypeLaneMask.  Input and output may be unaligned; they must not
 * overlap.
 */
inline void
decodeTypes(const std::uint8_t *packed, std::uint8_t *types,
            std::size_t n)
{
    std::size_t i = 0;
#if defined(DIRSIM_SIMD_AVX2)
    const __m256i mask = _mm256_set1_epi8(char(kTypeLaneMask));
    for (; i + 32 <= n; i += 32) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(packed + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(types + i),
                            _mm256_and_si256(v, mask));
    }
#elif defined(DIRSIM_SIMD_NEON)
    const uint8x16_t mask = vdupq_n_u8(kTypeLaneMask);
    for (; i + 16 <= n; i += 16)
        vst1q_u8(types + i, vandq_u8(vld1q_u8(packed + i), mask));
#else
    // SWAR: eight lanes per u64 op; memcpy compiles to plain loads and
    // stores, and the loop auto-vectorises under any baseline ISA.
    constexpr std::uint64_t laneMask = 0x0101010101010101ULL *
                                       kTypeLaneMask;
    for (; i + 8 <= n; i += 8) {
        std::uint64_t w;
        std::memcpy(&w, packed + i, 8);
        w &= laneMask;
        std::memcpy(types + i, &w, 8);
    }
#endif
    decodeTypesScalar(packed + i, types + i, n - i);
}

/** Per-strip reference classification (see classifyCounts). */
struct LaneCounts
{
    std::uint64_t reads = 0;  //!< Type field == RefType::Read.
    std::uint64_t writes = 0; //!< Type field == RefType::Write.
    /** References with any lock flag (test or write) set. */
    std::uint64_t locks = 0;

    bool operator==(const LaneCounts &) const = default;
};

/** Reference kernel for classifyCounts(): obviously-correct bytewise
 *  loop the optimised version is differentially tested against. */
inline LaneCounts
classifyCountsScalar(const std::uint8_t *packed, std::size_t n,
                     std::uint8_t lockFlagsMask)
{
    LaneCounts c;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t type = packed[i] & kTypeLaneMask;
        c.reads += type == 1;
        c.writes += type == 2;
        c.locks += (packed[i] & lockFlagsMask) != 0;
    }
    return c;
}

/**
 * Count the read/write/lock lanes of @p n packed bytes in one
 * branchless sweep.  @p lockFlagsMask selects the packed bits that
 * mark a lock reference (pass trace::packTypeFlags' encoding of
 * FlagLockTest|FlagLockWrite).
 */
inline LaneCounts
classifyCounts(const std::uint8_t *packed, std::size_t n,
               std::uint8_t lockFlagsMask)
{
    LaneCounts c;
    std::size_t i = 0;
#if defined(DIRSIM_SIMD_AVX2)
    const __m256i typeMask = _mm256_set1_epi8(char(kTypeLaneMask));
    const __m256i lockMask = _mm256_set1_epi8(char(lockFlagsMask));
    const __m256i one = _mm256_set1_epi8(1);
    const __m256i two = _mm256_set1_epi8(2);
    const __m256i zero = _mm256_setzero_si256();
    for (; i + 32 <= n; i += 32) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(packed + i));
        const __m256i type = _mm256_and_si256(v, typeMask);
        c.reads += unsigned(__builtin_popcount(unsigned(
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(type, one)))));
        c.writes += unsigned(__builtin_popcount(unsigned(
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(type, two)))));
        const __m256i lock = _mm256_and_si256(v, lockMask);
        c.locks += 32u - unsigned(__builtin_popcount(unsigned(
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(lock, zero)))));
    }
#endif
    const LaneCounts tail =
        classifyCountsScalar(packed + i, n - i, lockFlagsMask);
    c.reads += tail.reads;
    c.writes += tail.writes;
    c.locks += tail.locks;
    return c;
}

/** Compile-time selected kernel backend, for logs and bench JSON. */
inline const char *
simdBackendName()
{
#if defined(DIRSIM_SIMD_AVX2)
    return "avx2";
#elif defined(DIRSIM_SIMD_NEON)
    return "neon";
#else
    return "scalar";
#endif
}

} // namespace dirsim::util

#endif // DIRSIM_UTIL_SIMD_HH
