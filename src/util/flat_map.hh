/**
 * @file
 * Open-addressing hash map for the per-block hot path.
 *
 * Every simulated memory reference performs at least one block-table
 * lookup, so the container behind it dominates simulator throughput.
 * std::unordered_map is node-based: one heap allocation per block and
 * two dependent pointer loads per lookup.  FlatMap stores keys in one
 * contiguous array probed linearly (values in a parallel array touched
 * only on a hit), with power-of-two capacity, tombstone deletion, and
 * clear()-without-free so engines reset between runs without giving
 * the memory back.
 *
 * Contract differences from std::unordered_map, deliberate for the hot
 * path:
 *  - K and V must be default-constructible and assignable.
 *  - References returned by find()/tryEmplace()/operator[] are
 *    invalidated by any later *new-key* insertion (which may rehash).
 *    Inserting an existing key, erase() and clear() never invalidate.
 *  - Iteration (forEach) visits elements in table order, which is not
 *    insertion order; callers must be order-independent.
 */

#ifndef DIRSIM_UTIL_FLAT_MAP_HH
#define DIRSIM_UTIL_FLAT_MAP_HH

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dirsim::util
{

/**
 * splitmix64 finaliser.  Block identifiers arrive sequential or
 * strided; a multiplicative mix spreads them before the power-of-two
 * mask so linear probing sees no structured clustering.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

/** Default hash: mix the key's integer value. */
template <typename K>
struct FlatHash
{
    std::uint64_t
    operator()(const K &key) const
    {
        return mix64(static_cast<std::uint64_t>(key));
    }
};

/** Linear-probing open-addressing map; see file comment for contract. */
template <typename K, typename V, typename Hash = FlatHash<K>>
class FlatMap
{
  public:
    /** Result of tryEmplace: the (possibly fresh) value slot. */
    struct Emplaced
    {
        V &value;
        bool inserted;
    };

    FlatMap() = default;

    std::size_t size() const { return _size; }
    bool empty() const { return _size == 0; }
    /** Slot count (0 before the first insert/reserve). */
    std::size_t capacity() const { return _ctrl.size(); }

    /**
     * Value for @p key, default-constructing it on first use.
     *
     * @return The value slot; fresh slots hold V{}.
     */
    Emplaced
    tryEmplace(const K &key)
    {
        if (_ctrl.empty())
            rehash(minCapacity);
        std::size_t idx = _hash(key) & _mask;
        std::size_t tomb = npos;
        while (_ctrl[idx] != slotEmpty) {
            if (_ctrl[idx] == slotTomb) {
                if (tomb == npos)
                    tomb = idx;
            } else if (_keys[idx] == key) {
                return {_vals[idx], false};
            }
            idx = (idx + 1) & _mask;
        }
        if (tomb != npos) {
            // Reuse the first tombstone on the probe path; _used
            // already counts it.
            idx = tomb;
        } else {
            if (_used + 1 > (capacity() * 3) / 4) {
                // Past 3/4 occupancy linear probing degrades; double
                // when genuinely full, rehash in place when tombstones
                // are the bulk of the occupancy.
                rehash(_size + 1 > capacity() / 2 ? capacity() * 2
                                                  : capacity());
                idx = _hash(key) & _mask;
                while (_ctrl[idx] == slotFull)
                    idx = (idx + 1) & _mask;
            }
            ++_used;
        }
        _ctrl[idx] = slotFull;
        _keys[idx] = key;
        _vals[idx] = V{};
        ++_size;
        return {_vals[idx], true};
    }

    V &operator[](const K &key) { return tryEmplace(key).value; }

    V *
    find(const K &key)
    {
        const std::size_t idx = findIndex(key);
        return idx == npos ? nullptr : &_vals[idx];
    }

    const V *
    find(const K &key) const
    {
        const std::size_t idx = findIndex(key);
        return idx == npos ? nullptr : &_vals[idx];
    }

    bool contains(const K &key) const { return findIndex(key) != npos; }

    /**
     * Warm the probe path for @p key: software-prefetch the control,
     * key and value bytes the probe will touch first.  Purely
     * advisory; never dereferences.  Callers on a hot loop should
     * gate on prefetchProfitable() once per batch rather than paying
     * the hash for a table that is cache-resident anyway.
     */
    void
    prefetch(const K &key) const
    {
        const std::size_t idx = _hash(key) & _mask;
        __builtin_prefetch(&_ctrl[idx], 0, 3);
        __builtin_prefetch(&_keys[idx], 0, 3);
        __builtin_prefetch(&_vals[idx], 0, 3);
    }

    /**
     * Whether prefetch() hints plausibly help for this table: big
     * enough that probes miss cache.  Below the threshold the table
     * fits comfortably in L1/L2 and the extra hash per hint would
     * cost more than it saves.
     */
    bool
    prefetchProfitable() const
    {
        return capacity() >= prefetchMinCapacity;
    }

    /** Remove @p key.  @return true when it was present. */
    bool
    erase(const K &key)
    {
        const std::size_t idx = findIndex(key);
        if (idx == npos)
            return false;
        _ctrl[idx] = slotTomb; // Stays counted in _used.
        _vals[idx] = V{};      // Release the value's resources now.
        --_size;
        return true;
    }

    /** Drop every element but keep the table memory. */
    void
    clear()
    {
        std::fill(_ctrl.begin(), _ctrl.end(), slotEmpty);
        _size = 0;
        _used = 0;
    }

    /** Grow so @p count elements fit without rehashing. */
    void
    reserve(std::size_t count)
    {
        const std::size_t cap = capacityFor(count);
        if (cap > capacity())
            rehash(cap);
    }

    /** Visit every (key, value); table order, not insertion order. */
    template <typename F>
    void
    forEach(F &&f) const
    {
        for (std::size_t idx = 0; idx < _ctrl.size(); ++idx)
            if (_ctrl[idx] == slotFull)
                f(_keys[idx], _vals[idx]);
    }

  private:
    enum : std::uint8_t
    {
        slotEmpty = 0,
        slotFull = 1,
        slotTomb = 2,
    };

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
    static constexpr std::size_t minCapacity = 16;
    /** Smallest capacity (slots) at which prefetch() plausibly pays. */
    static constexpr std::size_t prefetchMinCapacity =
        std::size_t(1) << 15;

    static std::size_t
    capacityFor(std::size_t count)
    {
        std::size_t cap = minCapacity;
        while (count > (cap * 3) / 4)
            cap *= 2;
        return cap;
    }

    std::size_t
    findIndex(const K &key) const
    {
        if (_ctrl.empty())
            return npos;
        std::size_t idx = _hash(key) & _mask;
        while (_ctrl[idx] != slotEmpty) {
            if (_ctrl[idx] == slotFull && _keys[idx] == key)
                return idx;
            idx = (idx + 1) & _mask;
        }
        return npos;
    }

    void
    rehash(std::size_t newCapacity)
    {
        assert((newCapacity & (newCapacity - 1)) == 0);
        std::vector<std::uint8_t> ctrl(newCapacity, slotEmpty);
        std::vector<K> keys(newCapacity);
        std::vector<V> vals(newCapacity);
        const std::size_t mask = newCapacity - 1;
        for (std::size_t idx = 0; idx < _ctrl.size(); ++idx) {
            if (_ctrl[idx] != slotFull)
                continue;
            std::size_t at = _hash(_keys[idx]) & mask;
            while (ctrl[at] == slotFull)
                at = (at + 1) & mask;
            ctrl[at] = slotFull;
            keys[at] = _keys[idx];
            vals[at] = std::move(_vals[idx]);
        }
        _ctrl = std::move(ctrl);
        _keys = std::move(keys);
        _vals = std::move(vals);
        _mask = mask;
        _used = _size;
    }

    std::vector<std::uint8_t> _ctrl;
    std::vector<K> _keys;
    std::vector<V> _vals;
    std::size_t _mask = 0;
    std::size_t _size = 0; //!< Full slots.
    std::size_t _used = 0; //!< Full + tombstone slots.
    [[no_unique_address]] Hash _hash{};
};

} // namespace dirsim::util

#endif // DIRSIM_UTIL_FLAT_MAP_HH
