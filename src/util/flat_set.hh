/**
 * @file
 * Open-addressing hash set; the key-only sibling of util::FlatMap.
 *
 * Used where the hot path needs membership only (the infinite tag
 * stores: one touch per simulated reference per cache).  Same layout
 * and contract as FlatMap — linear probing over one contiguous key
 * array, power-of-two capacity, tombstone deletion with reuse, and
 * clear()-without-free — without the value array.
 */

#ifndef DIRSIM_UTIL_FLAT_SET_HH
#define DIRSIM_UTIL_FLAT_SET_HH

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/flat_map.hh"

namespace dirsim::util
{

/** Linear-probing open-addressing set of integer-like keys. */
template <typename K, typename Hash = FlatHash<K>>
class FlatSet
{
  public:
    FlatSet() = default;

    std::size_t size() const { return _size; }
    bool empty() const { return _size == 0; }
    /** Slot count (0 before the first insert/reserve). */
    std::size_t capacity() const { return _ctrl.size(); }

    /** Add @p key.  @return true when it was not already present. */
    bool
    insert(const K &key)
    {
        if (_ctrl.empty())
            rehash(minCapacity);
        std::size_t idx = _hash(key) & _mask;
        std::size_t tomb = npos;
        while (_ctrl[idx] != slotEmpty) {
            if (_ctrl[idx] == slotTomb) {
                if (tomb == npos)
                    tomb = idx;
            } else if (_keys[idx] == key) {
                return false;
            }
            idx = (idx + 1) & _mask;
        }
        if (tomb != npos) {
            idx = tomb;
        } else {
            if (_used + 1 > (capacity() * 3) / 4) {
                rehash(_size + 1 > capacity() / 2 ? capacity() * 2
                                                  : capacity());
                idx = _hash(key) & _mask;
                while (_ctrl[idx] == slotFull)
                    idx = (idx + 1) & _mask;
            }
            ++_used;
        }
        _ctrl[idx] = slotFull;
        _keys[idx] = key;
        ++_size;
        return true;
    }

    bool
    contains(const K &key) const
    {
        return findIndex(key) != npos;
    }

    /** Remove @p key.  @return true when it was present. */
    bool
    erase(const K &key)
    {
        const std::size_t idx = findIndex(key);
        if (idx == npos)
            return false;
        _ctrl[idx] = slotTomb;
        --_size;
        return true;
    }

    /** Drop every element but keep the table memory. */
    void
    clear()
    {
        std::fill(_ctrl.begin(), _ctrl.end(), slotEmpty);
        _size = 0;
        _used = 0;
    }

    /** Grow so @p count elements fit without rehashing. */
    void
    reserve(std::size_t count)
    {
        const std::size_t cap = capacityFor(count);
        if (cap > capacity())
            rehash(cap);
    }

    /** Visit every key; table order, not insertion order. */
    template <typename F>
    void
    forEach(F &&f) const
    {
        for (std::size_t idx = 0; idx < _ctrl.size(); ++idx)
            if (_ctrl[idx] == slotFull)
                f(_keys[idx]);
    }

  private:
    enum : std::uint8_t
    {
        slotEmpty = 0,
        slotFull = 1,
        slotTomb = 2,
    };

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
    static constexpr std::size_t minCapacity = 16;

    static std::size_t
    capacityFor(std::size_t count)
    {
        std::size_t cap = minCapacity;
        while (count > (cap * 3) / 4)
            cap *= 2;
        return cap;
    }

    std::size_t
    findIndex(const K &key) const
    {
        if (_ctrl.empty())
            return npos;
        std::size_t idx = _hash(key) & _mask;
        while (_ctrl[idx] != slotEmpty) {
            if (_ctrl[idx] == slotFull && _keys[idx] == key)
                return idx;
            idx = (idx + 1) & _mask;
        }
        return npos;
    }

    void
    rehash(std::size_t newCapacity)
    {
        assert((newCapacity & (newCapacity - 1)) == 0);
        std::vector<std::uint8_t> ctrl(newCapacity, slotEmpty);
        std::vector<K> keys(newCapacity);
        const std::size_t mask = newCapacity - 1;
        for (std::size_t idx = 0; idx < _ctrl.size(); ++idx) {
            if (_ctrl[idx] != slotFull)
                continue;
            std::size_t at = _hash(_keys[idx]) & mask;
            while (ctrl[at] == slotFull)
                at = (at + 1) & mask;
            ctrl[at] = slotFull;
            keys[at] = _keys[idx];
        }
        _ctrl = std::move(ctrl);
        _keys = std::move(keys);
        _mask = mask;
        _used = _size;
    }

    std::vector<std::uint8_t> _ctrl;
    std::vector<K> _keys;
    std::size_t _mask = 0;
    std::size_t _size = 0; //!< Full slots.
    std::size_t _used = 0; //!< Full + tombstone slots.
    [[no_unique_address]] Hash _hash{};
};

} // namespace dirsim::util

#endif // DIRSIM_UTIL_FLAT_SET_HH
