/**
 * @file
 * Streaming 64-bit content hash for on-disk integrity checks.
 *
 * The stored-trace format (trace/store.hh) frames multi-megabyte
 * column segments and needs a digest that (a) streams — segments are
 * written incrementally and verified window by window, (b) mixes well
 * enough that any single flipped byte, swapped word or truncation
 * changes the value, and (c) is a pure function of the byte sequence,
 * identical across processes, platforms and compiler versions (bytes
 * are combined little-endian explicitly, never through type punning).
 *
 * The construction is xxhash-style: 64-bit lanes folded into one
 * accumulator with multiply-rotate rounds, the total length folded in
 * at the end, and an xorshift-multiply avalanche finish.  It makes no
 * compatibility claim with any external library — the only consumer
 * is our own format, which records the format version next to every
 * digest.
 */

#ifndef DIRSIM_UTIL_HASH_HH
#define DIRSIM_UTIL_HASH_HH

#include <cstddef>
#include <cstdint>

namespace dirsim::util
{

/** Incremental 64-bit hash over an arbitrary byte stream. */
class StreamHash64
{
  public:
    explicit StreamHash64(std::uint64_t seed = 0)
        : _acc(seed ^ kPrime5)
    {
    }

    /** Fold @p n bytes at @p data into the running state. */
    void
    update(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        _len += n;
        // Finish a previously buffered partial lane first.
        while (_pending != 0 && n != 0) {
            _lane |= static_cast<std::uint64_t>(*p++) << (8 * _pending);
            if (++_pending == 8) {
                round(_lane);
                _lane = 0;
                _pending = 0;
            }
            --n;
        }
        while (n >= 8) {
            round(readLE64(p));
            p += 8;
            n -= 8;
        }
        // Buffer the tail bytes until a full lane accumulates.
        while (n != 0) {
            _lane |= static_cast<std::uint64_t>(*p++) << (8 * _pending);
            ++_pending;
            --n;
        }
    }

    /** Digest of everything updated so far (the state stays usable:
     *  further update() calls continue the same stream). */
    std::uint64_t
    value() const
    {
        std::uint64_t h = _acc;
        if (_pending != 0) {
            // Fold the partial lane tagged with its width so "ab" +
            // "c\0" and "abc" + "\0" digest differently.
            h ^= mix(_lane + kPrime3 * (_pending + 1));
            h = rotl(h, 27) * kPrime1 + kPrime4;
        }
        h ^= _len;
        h ^= h >> 33;
        h *= kPrime2;
        h ^= h >> 29;
        h *= kPrime3;
        h ^= h >> 32;
        return h;
    }

    /** One-shot convenience. */
    static std::uint64_t
    of(const void *data, std::size_t n, std::uint64_t seed = 0)
    {
        StreamHash64 h(seed);
        h.update(data, n);
        return h.value();
    }

  private:
    static constexpr std::uint64_t kPrime1 = 0x9e3779b185ebca87ULL;
    static constexpr std::uint64_t kPrime2 = 0xc2b2ae3d27d4eb4fULL;
    static constexpr std::uint64_t kPrime3 = 0x165667b19e3779f9ULL;
    static constexpr std::uint64_t kPrime4 = 0x85ebca77c2b2ae63ULL;
    static constexpr std::uint64_t kPrime5 = 0x27d4eb2f165667c5ULL;

    static constexpr std::uint64_t
    rotl(std::uint64_t v, unsigned r)
    {
        return (v << r) | (v >> (64 - r));
    }

    static constexpr std::uint64_t
    mix(std::uint64_t v)
    {
        v *= kPrime2;
        v = rotl(v, 31);
        v *= kPrime1;
        return v;
    }

    void
    round(std::uint64_t lane)
    {
        _acc ^= mix(lane);
        _acc = rotl(_acc, 27) * kPrime1 + kPrime4;
    }

    static std::uint64_t
    readLE64(const unsigned char *p)
    {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
        return v;
    }

    std::uint64_t _acc;
    std::uint64_t _len = 0;
    std::uint64_t _lane = 0;
    unsigned _pending = 0;
};

} // namespace dirsim::util

#endif // DIRSIM_UTIL_HASH_HH
