/**
 * @file
 * Minimal fixed-size thread pool.
 *
 * Workers pull std::function tasks from a mutex-guarded FIFO queue.
 * The pool supports one pattern well — submit a batch of independent
 * jobs, then wait for all of them — which is exactly what a
 * protocol×workload sweep or a double-buffered generate→pack pipeline
 * needs.  Tasks must not throw; callers wrap their work and capture
 * exceptions themselves (sim::runOrdered does).  A task that does
 * throw is a contract violation: the worker reports the exception's
 * message to stderr and aborts the process, rather than letting
 * std::thread's default std::terminate hide what happened.
 *
 * Lives in util (header-only) because both the sim layer (sweep
 * fan-out, chunked decode) and the gen layer (direct-to-prepared
 * column packing) drive it, and gen cannot depend on sim.
 */

#ifndef DIRSIM_UTIL_THREAD_POOL_HH
#define DIRSIM_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dirsim::util
{

/** Fixed set of worker threads draining a task queue. */
class ThreadPool
{
  public:
    /**
     * @param nThreads Worker count; 0 means one per hardware thread
     *        (at least one).
     */
    explicit ThreadPool(unsigned nThreads = 0)
    {
        const unsigned n = resolveThreads(nThreads);
        _workers.reserve(n);
        for (unsigned i = 0; i < n; ++i)
            _workers.emplace_back([this] { workerLoop(); });
    }

    /** Waits for queued tasks to finish, then joins the workers. */
    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(_mutex);
            _stopping = true;
        }
        _taskReady.notify_all();
        for (std::thread &worker : _workers)
            worker.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task for execution on some worker. */
    void submit(std::function<void()> task)
    {
        {
            std::lock_guard<std::mutex> lock(_mutex);
            _queue.push_back(std::move(task));
        }
        _taskReady.notify_one();
    }

    /** Block until the queue is empty and no task is running. */
    void wait()
    {
        std::unique_lock<std::mutex> lock(_mutex);
        _allIdle.wait(
            lock, [this] { return _queue.empty() && _active == 0; });
    }

    unsigned numThreads() const
    {
        return static_cast<unsigned>(_workers.size());
    }

    /** nThreads resolved the way the constructor resolves it. */
    static unsigned resolveThreads(unsigned nThreads)
    {
        if (nThreads != 0)
            return nThreads;
        const unsigned hw = std::thread::hardware_concurrency();
        return hw != 0 ? hw : 1;
    }

  private:
    /**
     * Run a task at the worker boundary.  Tasks must not throw (see
     * the contract above); if one does, an unwinding exception would
     * cross the std::thread boundary and std::terminate with no
     * context, so report what escaped and abort deliberately.
     */
    static void runGuarded(const std::function<void()> &task)
    {
        try {
            task();
        } catch (const std::exception &e) {
            std::fprintf(
                stderr,
                "dirsim::util::ThreadPool: task threw '%s'; tasks "
                "must not throw (see src/util/thread_pool.hh) — "
                "wrap work and capture exceptions as "
                "sim::runOrdered does\n",
                e.what());
            std::abort();
        } catch (...) {
            std::fprintf(
                stderr,
                "dirsim::util::ThreadPool: task threw a "
                "non-std::exception; tasks must not throw (see "
                "src/util/thread_pool.hh) — wrap work and capture "
                "exceptions as sim::runOrdered does\n");
            std::abort();
        }
    }

    void workerLoop()
    {
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(_mutex);
                _taskReady.wait(lock, [this] {
                    return _stopping || !_queue.empty();
                });
                if (_queue.empty())
                    return; // _stopping and nothing left to drain.
                task = std::move(_queue.front());
                _queue.pop_front();
                ++_active;
            }
            runGuarded(task);
            {
                std::lock_guard<std::mutex> lock(_mutex);
                --_active;
                if (_queue.empty() && _active == 0)
                    _allIdle.notify_all();
            }
        }
    }

    std::mutex _mutex;
    std::condition_variable _taskReady; //!< Signals workers.
    std::condition_variable _allIdle;   //!< Signals wait().
    std::deque<std::function<void()>> _queue;
    std::vector<std::thread> _workers;
    std::size_t _active = 0; //!< Tasks currently executing.
    bool _stopping = false;
};

} // namespace dirsim::util

#endif // DIRSIM_UTIL_THREAD_POOL_HH
